(* canopy-evaluate: run a trained checkpoint (and the TCP baselines) over
   the 22-trace evaluation suite, reporting empirical and certified
   metrics per trace and per category. *)

open Cmdliner
module Eval = Canopy.Eval

let schemes_of checkpoint distill history =
  let tcp =
    [
      ("cubic", `Tcp Eval.cubic_scheme);
      ("vegas", `Tcp Eval.vegas_scheme);
      ("bbr", `Tcp Eval.bbr_scheme);
    ]
  in
  ignore history;
  let learned =
    match checkpoint with
    | None -> []
    | Some path ->
        [ ("canopy", `Policy (`Mlp (Canopy.Trainer.load_actor path))) ]
  in
  let distilled =
    match distill with
    | None -> []
    | Some path ->
        [ ("canopy-tree", `Policy (`Tree (Canopy_distill.Tree.load path))) ]
  in
  learned @ distilled @ tcp

(* Distillation fidelity: action MSE of the tree against the MLP on a
   freshly harvested state set, plus (after the sweep) per-category
   utility deltas between the two schemes. *)
let report_fidelity ~checkpoint ~distill ~history ~bdp ~min_rtt =
  match (checkpoint, distill) with
  | Some ckpt, Some tree_path ->
      let actor = Canopy.Trainer.load_actor ckpt in
      let tree = Canopy_distill.Tree.load tree_path in
      if Canopy_distill.Tree.in_dim tree <> Canopy_nn.Mlp.in_dim actor then
        Format.printf "note: tree/actor input dims differ; skipping MSE@."
      else begin
        let trace =
          Canopy_trace.Trace.constant ~name:"fidelity" ~duration_ms:4_000
            ~mbps:48.
        in
        let cfg =
          {
            (Canopy_orca.Agent_env.default_config ~trace ~min_rtt_ms:min_rtt
               ~buffer_pkts:
                 (Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:bdp ~trace
                    ~min_rtt_ms:min_rtt)
               ~duration_ms:4_000)
            with
            history;
          }
        in
        let xs, ys =
          Canopy_distill.Harvest.collect ~actor (Array.make 4 cfg)
        in
        Format.printf
          "distillation fidelity: action MSE %.3e over %d states (tree: \
           %d leaves, depth %d)@."
          (Canopy_distill.Fit.mse tree ~xs ~ys)
          (Array.length ys)
          (Canopy_distill.Tree.n_leaves tree)
          (Canopy_distill.Tree.depth tree)
      end
  | _ -> ()

(* Coexistence mode: mixed Canopy-vs-TCP flows on one shared bottleneck,
   reporting per-flow throughput/delay/loss and Jain's index. Without a
   checkpoint an untrained seeded actor stands in (stated in the output)
   so the harness stays runnable end to end. *)
let run_coexist checkpoint history bdp min_rtt duration_ms =
  let actor =
    match checkpoint with
    | Some path -> Canopy.Trainer.load_actor path
    | None ->
        Format.printf
          "note: no --checkpoint given; using an UNTRAINED seed-1 actor \
           (coexistence mechanics demo, not a trained-policy result)@.@.";
        Canopy_nn.Mlp.actor
          ~rng:(Canopy_util.Prng.create 1)
          ~in_dim:(history * Canopy_orca.Observation.feature_count)
          ~hidden:64 ~out_dim:1
  in
  let trace =
    Canopy_trace.Trace.constant ~name:"const48" ~duration_ms ~mbps:48.
  in
  let link = Eval.link ~min_rtt_ms:min_rtt ~bdp ~duration_ms trace in
  let mixes =
    [
      ( "canopy-vs-cubic",
        [
          Eval.Coexist_canopy (`Mlp actor);
          Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
        ] );
      ( "canopy-vs-bbr",
        [
          Eval.Coexist_canopy (`Mlp actor);
          Eval.Coexist_tcp ("bbr", Eval.bbr_scheme);
        ] );
      ( "cubic-vs-cubic",
        [
          Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
          Eval.Coexist_tcp ("cubic", Eval.cubic_scheme);
        ] );
    ]
  in
  List.iter
    (fun (label, flows) ->
      let r = Eval.eval_coexist ~history ~flows link in
      Format.printf "== %s ==@.%a@." label Eval.pp_coexist r)
    mixes

let run checkpoint distill history bdp min_rtt duration_ms n_components
    with_cert property_name with_shield noise_mu refute_seed coexist
    scenario_dir =
  if coexist then
    run_coexist checkpoint history bdp min_rtt duration_ms
  else
  let property =
    match property_name with
    | "performance" -> Canopy.Property.performance ()
    | "robustness" -> Canopy.Property.robustness ()
    | other -> failwith (Printf.sprintf "unknown property %S" other)
  in
  (* Archived adversarial scenarios join the grid as a third category, so
     worst-found conditions are evaluated alongside the fixed suite. *)
  let adversarial =
    match scenario_dir with
    | None -> []
    | Some dir ->
        let ts = Canopy_trace.Suite.adversarial ~dir () in
        if ts = [] then
          Format.printf "note: no archived scenarios under %s@." dir;
        ts
  in
  let traces = Canopy_trace.Suite.all ~duration_ms () @ adversarial in
  let schemes = schemes_of checkpoint distill history in
  report_fidelity ~checkpoint ~distill ~history ~bdp ~min_rtt;
  (* Flatten the scheme × trace grid into independent tasks and fan them
     out over the domain pool. Per-task refutation streams are split from
     the master seed by task index before the fan-out, so the sweep is
     bit-identical to the sequential nested loops at any CANOPY_DOMAINS. *)
  let cells =
    List.concat_map
      (fun (name, scheme) -> List.map (fun trace -> (name, scheme, trace)) traces)
      schemes
  in
  let master = Option.map Canopy_util.Prng.create refute_seed in
  let tasks =
    List.mapi
      (fun idx (name, scheme, trace) ->
        let refute_rng =
          Option.map (fun m -> Canopy_util.Prng.split m idx) master
        in
        fun () ->
          let link = Eval.link ~min_rtt_ms:min_rtt ~bdp trace in
          match scheme with
          | `Tcp make -> Eval.eval_tcp ~name make link
          | `Policy policy ->
              let certificate =
                if with_cert then Some (property, n_components) else None
              in
              let shield =
                if with_shield then
                  Some
                    (Canopy.Shield.create
                       ~property:(Canopy.Property.performance ()) ~history)
                else None
              in
              let noise = Option.map (fun mu -> (17, mu)) noise_mu in
              fst
                (Eval.eval_policy ~name ?certificate ?shield ?noise ?refute_rng
                   ~policy ~history link))
      cells
  in
  let results = Eval.run_tasks tasks in
  List.iter (fun r -> Format.printf "%a@." Eval.pp_result r) results;
  (* category means *)
  Format.printf "@.-- category means --@.";
  List.iter
    (fun (name, _) ->
      List.iter
        (fun cat ->
          let of_cat =
            List.filter
              (fun (r : Eval.result) ->
                r.Eval.scheme = name
                && List.exists
                     (fun t ->
                       Canopy_trace.Trace.name t = r.Eval.trace
                       && Canopy_trace.Suite.category_of t = cat)
                     traces)
              results
          in
          if of_cat <> [] then
            Format.printf "%a@." Eval.pp_result
              (Eval.mean_results
                 (Format.asprintf "%a-mean" Canopy_trace.Suite.pp_category cat)
                 of_cat))
        [
          Canopy_trace.Suite.Synthetic;
          Canopy_trace.Suite.Real;
          Canopy_trace.Suite.Adversarial;
        ])
    schemes;
  (* distilled-vs-MLP utility delta per category *)
  if List.mem_assoc "canopy" schemes && List.mem_assoc "canopy-tree" schemes
  then begin
    Format.printf "@.-- distilled-vs-MLP utility delta --@.";
    List.iter
      (fun cat ->
        let mean_util scheme =
          let of_cat =
            List.filter
              (fun (r : Eval.result) ->
                r.Eval.scheme = scheme
                && List.exists
                     (fun t ->
                       Canopy_trace.Trace.name t = r.Eval.trace
                       && Canopy_trace.Suite.category_of t = cat)
                     traces)
              results
          in
          if of_cat = [] then None
          else Some (Eval.mean_results "cat" of_cat).Eval.utilization
        in
        match (mean_util "canopy", mean_util "canopy-tree") with
        | Some mlp, Some tree ->
            Format.printf
              "%a: mlp=%.1f%% tree=%.1f%% delta=%+.2f%% (%+.2f%% relative)@."
              Canopy_trace.Suite.pp_category cat (100. *. mlp) (100. *. tree)
              (100. *. (tree -. mlp))
              (if Float.abs mlp < 1e-9 then 0.
               else 100. *. (tree -. mlp) /. mlp)
        | _ -> ())
      [
        Canopy_trace.Suite.Synthetic;
        Canopy_trace.Suite.Real;
        Canopy_trace.Suite.Adversarial;
      ]
  end

let checkpoint =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~doc:"Actor checkpoint to evaluate.")

let distill =
  Arg.(value & opt (some string) None
       & info [ "distill" ]
           ~doc:
             "Distilled canopy-tree checkpoint: evaluated as the               'canopy-tree' scheme (with exact per-leaf certification               under --certify), plus fidelity reporting (action MSE and               per-suite utility delta) when --checkpoint is also given.")

let history = Arg.(value & opt int 5 & info [ "history" ] ~doc:"State frames.")
let bdp = Arg.(value & opt float 2. & info [ "bdp" ] ~doc:"Buffer in BDPs.")

let min_rtt =
  Arg.(value & opt int 40 & info [ "min-rtt" ] ~doc:"Propagation RTT (ms).")

let duration_ms =
  Arg.(value & opt int 15_000 & info [ "duration-ms" ] ~doc:"Trace length.")

let n_components =
  Arg.(value & opt int 50 & info [ "components" ] ~doc:"Certificate slices.")

let with_cert =
  Arg.(value & flag & info [ "certify" ] ~doc:"Compute FCC/FCS per step.")

let property_name =
  Arg.(value & opt string "performance"
       & info [ "property" ] ~doc:"Property to certify against.")

let with_shield =
  Arg.(value & flag
       & info [ "shield" ]
           ~doc:"Deploy the policy behind a runtime performance shield.")

let noise_mu =
  Arg.(value & opt (some float) None
       & info [ "noise" ] ~doc:"Add ±MU relative delay noise.")

let refute_seed =
  Arg.(value & opt (some int) None
       & info [ "refute-seed" ]
           ~doc:
             "With --certify: sample-refute uncertified components, \
              deriving one reproducible PRNG stream per scheme×trace cell \
              from this seed.")

let coexist =
  Arg.(value & flag
       & info [ "coexist" ]
           ~doc:
             "Instead of the per-scheme trace grid, run mixed \
              Canopy-vs-Cubic and Canopy-vs-BBR flows on one shared \
              bottleneck and report per-flow throughput, delay and \
              Jain's fairness index.")

let scenario_dir =
  Arg.(value & opt (some string) None
       & info [ "scenario-dir" ]
           ~doc:
             "Also evaluate every archived adversarial scenario trace \
              (*.trace) under this directory (e.g. _artifacts/scenarios), \
              reported as the 'adversarial' category.")

let cmd =
  let doc = "evaluate controllers over the 22-trace suite" in
  Cmd.v
    (Cmd.info "canopy-evaluate" ~doc)
    Term.(
      const run $ checkpoint $ distill $ history $ bdp $ min_rtt $ duration_ms
      $ n_components $ with_cert $ property_name $ with_shield $ noise_mu
      $ refute_seed $ coexist $ scenario_dir)

let () = exit (Cmd.eval cmd)
