(* canopy-tracegen: emit bandwidth traces (the Appendix-B families, plus
   archived adversarial scenarios) in Mahimahi's
   packet-delivery-opportunity format. *)

open Cmdliner

let run family duration_ms period_ms low high seed scenario out =
  let trace =
    match family with
    | "step" ->
        Canopy_trace.Synthetic.step_fluctuation ~duration_ms
          ~period_ms ~low_mbps:low ~high_mbps:high ()
    | "rampdrop" ->
        Canopy_trace.Synthetic.ramp_drop ~duration_ms ~cycle_ms:period_ms
          ~floor_mbps:low ~peak_mbps:high ()
    | "triangle" ->
        Canopy_trace.Synthetic.triangle ~duration_ms ~cycle_ms:period_ms
          ~floor_mbps:low ~peak_mbps:high ()
    | "lte" -> Canopy_trace.Lte.generate ~name:"lte" ~seed ~duration_ms ()
    | "constant" ->
        Canopy_trace.Trace.constant ~name:"constant" ~duration_ms ~mbps:high
    | "scenario" -> (
        (* Render a scenario record (found by `check.exe scenariocheck`,
           or hand-written) to a replayable trace: the compile is a pure
           function of the record, so the artifact can be shared and
           diffed. *)
        match scenario with
        | None -> failwith "family 'scenario' requires --scenario FILE.scn"
        | Some path ->
            Canopy_scenario.Corpus.trace ~duration_ms
              (Canopy_scenario.Corpus.load_file path))
    | other -> failwith (Printf.sprintf "unknown family %S" other)
  in
  Format.printf "%a@." Canopy_trace.Trace.pp trace;
  match out with
  | None -> print_string (Canopy_trace.Trace.to_mahimahi ~mtu_bytes:1500 trace)
  | Some path ->
      Canopy_trace.Trace.save ~mtu_bytes:1500 trace path;
      Format.printf "wrote %s@." path

let family =
  Arg.(value & pos 0 string "step"
       & info [] ~docv:"FAMILY"
           ~doc:"step | rampdrop | triangle | lte | constant | scenario")

let duration_ms =
  Arg.(value & opt int 30_000 & info [ "duration-ms" ] ~doc:"Trace length.")

let period_ms =
  Arg.(value & opt int 2000 & info [ "period-ms" ] ~doc:"Cycle length.")

let low = Arg.(value & opt float 12. & info [ "low" ] ~doc:"Low/floor Mbps.")
let high = Arg.(value & opt float 48. & info [ "high" ] ~doc:"High/peak Mbps.")
let seed = Arg.(value & opt int 101 & info [ "seed" ] ~doc:"LTE seed.")

let scenario =
  Arg.(value & opt (some string) None
       & info [ "scenario" ]
           ~doc:"Scenario record (.scn) to render; used by the 'scenario' \
                 family.")

let out =
  Arg.(value & opt (some string) None
       & info [ "o"; "out" ] ~doc:"Write to file instead of stdout.")

let cmd =
  let doc = "generate bandwidth traces in Mahimahi format" in
  Cmd.v
    (Cmd.info "canopy-tracegen" ~doc)
    Term.(
      const run $ family $ duration_ms $ period_ms $ low $ high $ seed
      $ scenario $ out)

let () = exit (Cmd.eval cmd)
