(* canopy-train: train an Orca (λ=0) or Canopy (λ>0) controller with
   certificate-in-the-loop TD3 and save the actor checkpoint. *)

open Cmdliner

let run lambda property_name p q mu epsilon n_components total_steps n_envs
    duration_ms seed hidden out distill_out distill_leaves snapshot_every
    snapshot resume scenario_dir quiet verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
  let property =
    match property_name with
    | "performance" -> Canopy.Property.performance ~p ~q ()
    | "robustness" -> Canopy.Property.robustness ~mu ~epsilon ()
    | other -> failwith (Printf.sprintf "unknown property %S" other)
  in
  (* Closing the hardening loop: archived worst-case scenarios join the
     stratified training links, so the next policy trains on the
     conditions that broke the last one. *)
  let scenario_envs =
    match scenario_dir with
    | None -> []
    | Some dir ->
        let records = Canopy_scenario.Corpus.load_dir dir in
        if records = [] then
          Format.printf "note: no archived scenarios under %s@." dir
        else
          Format.printf "training pool: +%d adversarial scenario link(s)@."
            (List.length records);
        List.map
          (Canopy_scenario.Corpus.env_config ~duration_ms)
          records
  in
  let envs =
    Canopy.Trainer.env_pool ~n:n_envs ~duration_ms ~seed () @ scenario_envs
  in
  let cfg =
    {
      (Canopy.Trainer.default_config ~seed ~lambda ~property ~n_components
         ~total_steps ~envs ())
      with
      hidden;
    }
  in
  let snapshot_every =
    match (snapshot_every, snapshot, resume) with
    | None, None, None -> None
    | None, _, _ -> Some 500 (* snapshotting requested without a period *)
    | some, _, _ -> some
  in
  let agent, _epochs =
    Canopy.Trainer.train
      ~on_epoch:(fun e ->
        if not quiet then
          Format.printf
            "epoch %3d (step %5d): raw=%6.3f verifier=%6.3f combined=%6.3f \
             fcc=%5.3f rollbacks=%d@."
            e.Canopy.Trainer.epoch e.steps e.raw_reward e.verifier_reward
            e.combined_reward e.fcc e.rollbacks)
      ?snapshot_every ?snapshot_path:snapshot ?resume cfg
  in
  Canopy.Trainer.save_actor agent out;
  Format.printf "saved actor checkpoint to %s@." out;
  (* Symbolic distillation: harvest the trained policy's served actions
     over the training links and fit the piecewise-affine serving tree. *)
  match distill_out with
  | None -> ()
  | Some tree_path ->
      let actor = Canopy_rl.Td3.actor agent in
      let xs, ys =
        Canopy_distill.Harvest.collect ~actor (Array.of_list envs)
      in
      let config =
        { Canopy_distill.Fit.default_config with max_leaves = distill_leaves }
      in
      let tree = Canopy_distill.Fit.fit ~config ~xs ~ys () in
      Canopy_distill.Tree.save tree_path tree;
      Format.printf
        "saved distilled tree to %s (%d leaves, depth %d; fidelity MSE %.3e \
         over %d states)@."
        tree_path
        (Canopy_distill.Tree.n_leaves tree)
        (Canopy_distill.Tree.depth tree)
        (Canopy_distill.Fit.mse tree ~xs ~ys)
        (Array.length ys)

let lambda =
  Arg.(value & opt float 0.25
       & info [ "lambda" ] ~doc:"Verifier-reward weight (0 = plain Orca).")

let property_name =
  Arg.(value & opt string "performance"
       & info [ "property" ] ~doc:"Property: performance or robustness.")

let p = Arg.(value & opt float 0.75 & info [ "p" ] ~doc:"Large-delay threshold.")
let q = Arg.(value & opt float 0.25 & info [ "q" ] ~doc:"Small-delay threshold.")
let mu = Arg.(value & opt float 0.05 & info [ "mu" ] ~doc:"Noise amplitude.")

let epsilon =
  Arg.(value & opt float 0.01 & info [ "epsilon" ] ~doc:"Allowed CWND change.")

let n_components =
  Arg.(value & opt int 5 & info [ "components"; "N" ] ~doc:"Certificate slices.")

let total_steps =
  Arg.(value & opt int 4000 & info [ "steps" ] ~doc:"Environment steps.")

let n_envs = Arg.(value & opt int 8 & info [ "envs" ] ~doc:"Training links.")

let duration_ms =
  Arg.(value & opt int 10_000 & info [ "episode-ms" ] ~doc:"Episode length.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")
let hidden = Arg.(value & opt int 64 & info [ "hidden" ] ~doc:"Hidden width.")

let out =
  Arg.(value & opt string "actor.ckpt"
       & info [ "o"; "out" ] ~doc:"Checkpoint output path.")

let distill_out =
  Arg.(value & opt (some string) None
       & info [ "distill-out" ]
           ~doc:"After training, distill the actor into a piecewise-affine \
                 canopy-tree checkpoint at this path (harvested from the \
                 training links; see canopy-evaluate --distill).")

let distill_leaves =
  Arg.(value & opt int 64
       & info [ "distill-leaves" ]
           ~doc:"Leaf budget for --distill-out.")

let snapshot_every =
  Arg.(value & opt (some int) None
       & info [ "snapshot-every" ]
           ~doc:"Steps between training snapshots; enables the divergence \
                 watchdog. Defaults to 500 when --snapshot or --resume is \
                 given.")

let snapshot =
  Arg.(value & opt (some string) None
       & info [ "snapshot" ]
           ~doc:"Persist a canopy-train v2 checkpoint here at every snapshot \
                 boundary (atomic write).")

let resume =
  Arg.(value & opt (some string) None
       & info [ "resume" ]
           ~doc:"Resume training from a canopy-train v2 checkpoint; the \
                 run's config must match the checkpoint's fingerprint.")

let scenario_dir =
  Arg.(value & opt (some string) None
       & info [ "scenario-dir" ]
           ~doc:"Append every archived adversarial scenario (*.scn) under \
                 this directory to the training pool (the hardening loop).")

let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress epoch logs.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug-level logging.")

let cmd =
  let doc = "train a certified congestion controller (Canopy/C3)" in
  Cmd.v
    (Cmd.info "canopy-train" ~doc)
    Term.(
      const run $ lambda $ property_name $ p $ q $ mu $ epsilon $ n_components
      $ total_steps $ n_envs $ duration_ms $ seed $ hidden $ out $ distill_out
      $ distill_leaves $ snapshot_every $ snapshot $ resume $ scenario_dir
      $ quiet $ verbose)

let () = exit (Cmd.eval cmd)
