(* canopy-check: correctness tooling for the repository itself.

   - lint:       deterministic source-level analyzer with a checked-in
                 baseline; exits non-zero on findings not in the baseline
                 or on stale baseline entries.
   - racecheck:  token-level effect/race analysis of Pool-parallel
                 regions (shared-mutable-in-parallel); same baseline
                 file, same exactness contract.
   - audit:      differential soundness sanitizer for the abstract
                 transformers backing every certificate.
   - netcheck:   static shape/finiteness validation of checkpoints.
   - faultcheck: fault-injection audit of the crash-safe training
                 runtime (kill/resume, corruption, NaN recovery). *)

open Cmdliner
module A = Canopy_analysis

let pp_diag ppf d = Format.fprintf ppf "%a@." A.Diagnostic.pp d

(* Shared baseline gate for the lint and racecheck passes: each owns the
   baseline entries carrying its rule names, is exact against them (no
   fresh findings, no stale entries), and updates only its own section. *)
let gate ~pass ~baseline_path ~update_baseline ~owns diags =
  if update_baseline then begin
    A.Suppress.update baseline_path ~rules:owns diags;
    Format.printf "%s: wrote %d finding(s) to %s@." pass (List.length diags)
      baseline_path;
    0
  end
  else begin
    let entries = A.Suppress.load_entries baseline_path in
    let fresh, suppressed =
      A.Suppress.filter (A.Suppress.load baseline_path) diags
    in
    let stale = A.Suppress.stale entries ~rules:owns diags in
    List.iter (pp_diag Format.std_formatter) fresh;
    List.iter
      (fun (e : A.Suppress.entry) ->
        Format.printf "stale baseline entry: %s %s %s@." e.e_rule e.e_key
          e.e_rest)
      stale;
    if fresh = [] && stale = [] then begin
      Format.printf "%s: clean (%d baselined finding(s))@." pass suppressed;
      0
    end
    else begin
      Format.printf
        "%s: %d new finding(s), %d stale baseline entr(ies), %d baselined \
         — add a fix, an inline (* lint-ignore: rule *) waiver, or re-run \
         with --update-baseline@."
        pass (List.length fresh) (List.length stale) suppressed;
      1
    end
  end

(* --- lint ------------------------------------------------------------- *)

let lint_owns rule =
  List.mem_assoc rule A.Lint.rules

let print_summary diags baseline =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (d : A.Diagnostic.t) ->
      let fresh_n, base_n =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tally d.rule)
      in
      if A.Suppress.mem baseline d then
        Hashtbl.replace tally d.rule (fresh_n, base_n + 1)
      else Hashtbl.replace tally d.rule (fresh_n + 1, base_n))
    diags;
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun r c acc -> (r, c) :: acc) tally [])
  in
  Format.printf "%-28s %8s %10s@." "rule" "fresh" "baselined";
  List.iter
    (fun (rule, (fresh_n, base_n)) ->
      Format.printf "%-28s %8d %10d@." rule fresh_n base_n)
    rows;
  let tf, tb =
    List.fold_left
      (fun (f, b) (_, (f', b')) -> (f + f', b + b'))
      (0, 0) rows
  in
  Format.printf "%-28s %8d %10d@." "total" tf tb

let run_lint root baseline_path update_baseline format =
  let diags = A.Lint.run ~root () in
  match format with
  | "summary" ->
      print_summary diags (A.Suppress.load baseline_path);
      let fresh, _ = A.Suppress.filter (A.Suppress.load baseline_path) diags in
      let stale =
        A.Suppress.stale
          (A.Suppress.load_entries baseline_path)
          ~rules:lint_owns diags
      in
      if stale <> [] then
        Format.printf "stale baseline entries: %d@." (List.length stale);
      if fresh = [] && stale = [] then 0 else 1
  | _ ->
      gate ~pass:"lint" ~baseline_path ~update_baseline ~owns:lint_owns diags

let root =
  Arg.(value & opt string "."
       & info [ "root" ] ~doc:"Repository root to lint (walks lib/ and bin/).")

let baseline_path =
  Arg.(value & opt string "lint.baseline"
       & info [ "baseline" ] ~doc:"Baseline (suppression) file path.")

let update_baseline =
  Arg.(value & flag
       & info [ "update-baseline" ]
           ~doc:"Accept all current findings into the baseline file.")

let lint_format =
  Arg.(value & opt string "full"
       & info [ "format" ]
           ~doc:"Output format: full (diagnostics) or summary (per-rule \
                 counts, so baseline drift is visible in CI logs).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"run the source-level lint pass")
    Term.(const run_lint $ root $ baseline_path $ update_baseline
          $ lint_format)

(* --- racecheck -------------------------------------------------------- *)

let race_owns rule = rule = A.Racecheck.rule_name

let run_racecheck root baseline_path update_baseline verbose =
  let report = A.Racecheck.run ~root () in
  if verbose then begin
    List.iter (fun r -> Format.printf "root: %s@." r)
      report.A.Racecheck.roots;
    Format.printf "reachable defs: %d@." report.A.Racecheck.reachable
  end;
  Format.printf
    "racecheck: %d parallel entry point(s), %d reachable def(s), %d mutable \
     global(s) over %d file(s)@."
    (List.length report.A.Racecheck.roots)
    report.A.Racecheck.reachable report.A.Racecheck.globals
    report.A.Racecheck.checked_files;
  gate ~pass:"racecheck" ~baseline_path ~update_baseline ~owns:race_owns
    report.A.Racecheck.diags

let race_verbose =
  Arg.(value & flag
       & info [ "verbose" ]
           ~doc:"List every parallel entry point and reachability stats.")

let racecheck_cmd =
  Cmd.v
    (Cmd.info "racecheck"
       ~doc:"token-level effect/race analysis of Pool-parallel regions")
    Term.(const run_racecheck $ root $ baseline_path $ update_baseline
          $ race_verbose)

(* --- audit ------------------------------------------------------------ *)

let run_audit samples seed max_report quiet =
  if samples <= 0 then begin
    Format.eprintf "audit: --samples must be positive (got %d)@." samples;
    exit 2
  end;
  let result = A.Soundcheck.run ~seed ~max_report ~samples () in
  List.iter
    (fun v -> Format.printf "%a@." A.Soundcheck.pp_violation v)
    result.violations;
  if not quiet then begin
    Format.printf "audit: %d samples over %d transformers (seed %d)@."
      result.samples
      (List.length result.per_op)
      seed;
    List.iter
      (fun (op, n) -> Format.printf "  %-22s %6d@." op n)
      result.per_op
  end;
  if result.violation_count = 0 then begin
    Format.printf "audit: all transformers sound on sampled points@.";
    0
  end
  else begin
    Format.printf
      "audit: %d SOUNDNESS VIOLATION(S) — the verifier cannot be trusted \
       until this is fixed@."
      result.violation_count;
    1
  end

let samples =
  Arg.(value & opt int 10_000
       & info [ "samples" ] ~doc:"Total sampled point checks.")

let seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.")

let max_report =
  Arg.(value & opt int 25
       & info [ "max-report" ] ~doc:"Cap on individually reported violations.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the per-op sample table.")

let audit_cmd =
  Cmd.v
    (Cmd.info "audit" ~doc:"differential soundness audit of the verifier")
    Term.(const run_audit $ samples $ seed $ max_report $ quiet)

(* --- netcheck --------------------------------------------------------- *)

let run_netcheck paths =
  if paths = [] then begin
    (* No checkpoint given: validate a freshly initialized actor/critic
       pair as a smoke test of the initializers. *)
    let rng = Canopy_util.Prng.create 1 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:30 ~hidden:64 ~out_dim:1
    in
    let critic =
      Canopy_nn.Mlp.critic ~rng ~state_dim:30 ~action_dim:1 ~hidden:64
    in
    let diags =
      A.Netcheck.check_mlp ~name:"fresh-actor" actor
      @ A.Netcheck.check_mlp ~name:"fresh-critic" critic
    in
    List.iter (pp_diag Format.std_formatter) diags;
    if diags = [] then begin
      Format.printf "netcheck: fresh actor/critic stacks valid@.";
      0
    end
    else 1
  end
  else begin
    let failures =
      List.fold_left
        (fun acc path ->
          match A.Netcheck.check_checkpoint path with
          | Error msg ->
              Format.printf "%s@." msg;
              acc + 1
          | Ok [] ->
              Format.printf "%s: ok@." path;
              acc
          | Ok diags ->
              List.iter (pp_diag Format.std_formatter) diags;
              acc + 1)
        0 paths
    in
    if failures = 0 then 0 else 1
  end

let ckpts =
  Arg.(value & pos_all string []
       & info [] ~docv:"CKPT"
           ~doc:"Checkpoint files to validate; none checks fresh networks.")

let netcheck_cmd =
  Cmd.v
    (Cmd.info "netcheck" ~doc:"validate network stacks and checkpoints")
    Term.(const run_netcheck $ ckpts)

(* --- faultcheck ------------------------------------------------------- *)

let run_faultcheck trials seed smoke =
  let trials = if smoke then 6 else trials in
  if trials <= 0 then begin
    Format.eprintf "faultcheck: --trials must be positive (got %d)@." trials;
    exit 2
  end;
  let outcome = A.Faultcheck.run ~seed ~trials () in
  List.iter (fun msg -> Format.printf "faultcheck: FAIL %s@." msg)
    outcome.failures;
  Format.printf
    "faultcheck: %d trials (%d kill/resume, %d corruption, %d nan-recovery, \
     seed %d)@."
    outcome.trials outcome.kill_resume outcome.corruption outcome.nan_recovery
    seed;
  if outcome.failures = [] then begin
    Format.printf
      "faultcheck: resume exact, corrupt checkpoints rejected, watchdog \
       recovers@.";
    0
  end
  else begin
    Format.printf
      "faultcheck: %d FAILURE(S) — the crash-safety guarantees do not hold@."
      (List.length outcome.failures);
    1
  end

let fc_trials =
  Arg.(value & opt int 60
       & info [ "trials" ] ~doc:"Randomized fault-injection trials.")

let fc_seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.")

let fc_smoke =
  Arg.(value & flag
       & info [ "smoke" ] ~doc:"Quick mode for CI: run 6 trials.")

let faultcheck_cmd =
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:"fault-injection audit of the crash-safe training runtime")
    Term.(const run_faultcheck $ fc_trials $ fc_seed $ fc_smoke)

(* ---------------------------------------------------------------------- *)

let cmd =
  let doc =
    "correctness tooling: lint, racecheck, verifier soundness audit, \
     netcheck, faultcheck"
  in
  Cmd.group (Cmd.info "canopy-check" ~doc)
    [ lint_cmd; racecheck_cmd; audit_cmd; netcheck_cmd; faultcheck_cmd ]

let () = exit (Cmd.eval' cmd)
