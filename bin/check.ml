(* canopy-check: correctness tooling for the repository itself.

   - lint:       deterministic source-level analyzer with a checked-in
                 baseline; exits non-zero on findings not in the baseline
                 or on stale baseline entries.
   - racecheck:  token-level effect/race analysis of Pool-parallel
                 regions (shared-mutable-in-parallel); same baseline
                 file, same exactness contract.
   - audit:      differential soundness sanitizer for the abstract
                 transformers backing every certificate.
   - netcheck:   static shape/finiteness validation of checkpoints.
   - faultcheck: fault-injection audit of the crash-safe training
                 runtime (kill/resume, corruption, NaN recovery).
   - scenariocheck: adversarial worst-case scenario search — compares
                 the searched worst case against the fixed 22-trace
                 suite's worst member, archives it to the scenario
                 corpus, and regression-checks the policy against the
                 archived corpus. *)

open Cmdliner
module A = Canopy_analysis

let pp_diag ppf d = Format.fprintf ppf "%a@." A.Diagnostic.pp d

(* Shared baseline gate for the lint and racecheck passes: each owns the
   baseline entries carrying its rule names, is exact against them (no
   fresh findings, no stale entries), and updates only its own section. *)
let gate ~pass ~baseline_path ~update_baseline ~owns diags =
  if update_baseline then begin
    A.Suppress.update baseline_path ~rules:owns diags;
    Format.printf "%s: wrote %d finding(s) to %s@." pass (List.length diags)
      baseline_path;
    0
  end
  else begin
    let entries = A.Suppress.load_entries baseline_path in
    let fresh, suppressed =
      A.Suppress.filter (A.Suppress.load baseline_path) diags
    in
    let stale = A.Suppress.stale entries ~rules:owns diags in
    List.iter (pp_diag Format.std_formatter) fresh;
    List.iter
      (fun (e : A.Suppress.entry) ->
        Format.printf "stale baseline entry: %s %s %s@." e.e_rule e.e_key
          e.e_rest)
      stale;
    if fresh = [] && stale = [] then begin
      Format.printf "%s: clean (%d baselined finding(s))@." pass suppressed;
      0
    end
    else begin
      Format.printf
        "%s: %d new finding(s), %d stale baseline entr(ies), %d baselined \
         — add a fix, an inline (* lint-ignore: rule *) waiver, or re-run \
         with --update-baseline@."
        pass (List.length fresh) (List.length stale) suppressed;
      1
    end
  end

(* --- lint ------------------------------------------------------------- *)

let lint_owns rule =
  List.mem_assoc rule A.Lint.rules

let print_summary diags baseline =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (d : A.Diagnostic.t) ->
      let fresh_n, base_n =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tally d.rule)
      in
      if A.Suppress.mem baseline d then
        Hashtbl.replace tally d.rule (fresh_n, base_n + 1)
      else Hashtbl.replace tally d.rule (fresh_n + 1, base_n))
    diags;
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun r c acc -> (r, c) :: acc) tally [])
  in
  Format.printf "%-28s %8s %10s@." "rule" "fresh" "baselined";
  List.iter
    (fun (rule, (fresh_n, base_n)) ->
      Format.printf "%-28s %8d %10d@." rule fresh_n base_n)
    rows;
  let tf, tb =
    List.fold_left
      (fun (f, b) (_, (f', b')) -> (f + f', b + b'))
      (0, 0) rows
  in
  Format.printf "%-28s %8d %10d@." "total" tf tb

let run_lint root baseline_path update_baseline format =
  let diags = A.Lint.run ~root () in
  match format with
  | "summary" ->
      print_summary diags (A.Suppress.load baseline_path);
      let fresh, _ = A.Suppress.filter (A.Suppress.load baseline_path) diags in
      let stale =
        A.Suppress.stale
          (A.Suppress.load_entries baseline_path)
          ~rules:lint_owns diags
      in
      if stale <> [] then
        Format.printf "stale baseline entries: %d@." (List.length stale);
      if fresh = [] && stale = [] then 0 else 1
  | _ ->
      gate ~pass:"lint" ~baseline_path ~update_baseline ~owns:lint_owns diags

let root =
  Arg.(value & opt string "."
       & info [ "root" ] ~doc:"Repository root to lint (walks lib/ and bin/).")

let baseline_path =
  Arg.(value & opt string "lint.baseline"
       & info [ "baseline" ] ~doc:"Baseline (suppression) file path.")

let update_baseline =
  Arg.(value & flag
       & info [ "update-baseline" ]
           ~doc:"Accept all current findings into the baseline file.")

let lint_format =
  Arg.(value & opt string "full"
       & info [ "format" ]
           ~doc:"Output format: full (diagnostics) or summary (per-rule \
                 counts, so baseline drift is visible in CI logs).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"run the source-level lint pass")
    Term.(const run_lint $ root $ baseline_path $ update_baseline
          $ lint_format)

(* --- racecheck -------------------------------------------------------- *)

let race_owns rule = rule = A.Racecheck.rule_name

let run_racecheck root baseline_path update_baseline verbose =
  let report = A.Racecheck.run ~root () in
  if verbose then begin
    List.iter (fun r -> Format.printf "root: %s@." r)
      report.A.Racecheck.roots;
    Format.printf "reachable defs: %d@." report.A.Racecheck.reachable
  end;
  Format.printf
    "racecheck: %d parallel entry point(s), %d reachable def(s), %d mutable \
     global(s) over %d file(s)@."
    (List.length report.A.Racecheck.roots)
    report.A.Racecheck.reachable report.A.Racecheck.globals
    report.A.Racecheck.checked_files;
  gate ~pass:"racecheck" ~baseline_path ~update_baseline ~owns:race_owns
    report.A.Racecheck.diags

let race_verbose =
  Arg.(value & flag
       & info [ "verbose" ]
           ~doc:"List every parallel entry point and reachability stats.")

let racecheck_cmd =
  Cmd.v
    (Cmd.info "racecheck"
       ~doc:"token-level effect/race analysis of Pool-parallel regions")
    Term.(const run_racecheck $ root $ baseline_path $ update_baseline
          $ race_verbose)

(* --- audit ------------------------------------------------------------ *)

let run_audit samples seed max_report quiet =
  if samples <= 0 then begin
    Format.eprintf "audit: --samples must be positive (got %d)@." samples;
    exit 2
  end;
  let result = A.Soundcheck.run ~seed ~max_report ~samples () in
  List.iter
    (fun v -> Format.printf "%a@." A.Soundcheck.pp_violation v)
    result.violations;
  if not quiet then begin
    Format.printf "audit: %d samples over %d transformers (seed %d)@."
      result.samples
      (List.length result.per_op)
      seed;
    List.iter
      (fun (op, n) -> Format.printf "  %-22s %6d@." op n)
      result.per_op
  end;
  if result.violation_count = 0 then begin
    Format.printf "audit: all transformers sound on sampled points@.";
    0
  end
  else begin
    Format.printf
      "audit: %d SOUNDNESS VIOLATION(S) — the verifier cannot be trusted \
       until this is fixed@."
      result.violation_count;
    1
  end

let samples =
  Arg.(value & opt int 10_000
       & info [ "samples" ] ~doc:"Total sampled point checks.")

let seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.")

let max_report =
  Arg.(value & opt int 25
       & info [ "max-report" ] ~doc:"Cap on individually reported violations.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the per-op sample table.")

let audit_cmd =
  Cmd.v
    (Cmd.info "audit" ~doc:"differential soundness audit of the verifier")
    Term.(const run_audit $ samples $ seed $ max_report $ quiet)

(* --- netcheck --------------------------------------------------------- *)

let run_netcheck paths =
  if paths = [] then begin
    (* No checkpoint given: validate a freshly initialized actor/critic
       pair as a smoke test of the initializers. *)
    let rng = Canopy_util.Prng.create 1 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:30 ~hidden:64 ~out_dim:1
    in
    let critic =
      Canopy_nn.Mlp.critic ~rng ~state_dim:30 ~action_dim:1 ~hidden:64
    in
    let diags =
      A.Netcheck.check_mlp ~name:"fresh-actor" actor
      @ A.Netcheck.check_mlp ~name:"fresh-critic" critic
    in
    List.iter (pp_diag Format.std_formatter) diags;
    if diags = [] then begin
      Format.printf "netcheck: fresh actor/critic stacks valid@.";
      0
    end
    else 1
  end
  else begin
    let failures =
      List.fold_left
        (fun acc path ->
          match A.Netcheck.check_checkpoint path with
          | Error msg ->
              Format.printf "%s@." msg;
              acc + 1
          | Ok [] ->
              Format.printf "%s: ok@." path;
              acc
          | Ok diags ->
              List.iter (pp_diag Format.std_formatter) diags;
              acc + 1)
        0 paths
    in
    if failures = 0 then 0 else 1
  end

let ckpts =
  Arg.(value & pos_all string []
       & info [] ~docv:"CKPT"
           ~doc:"Checkpoint files to validate; none checks fresh networks.")

let netcheck_cmd =
  Cmd.v
    (Cmd.info "netcheck" ~doc:"validate network stacks and checkpoints")
    Term.(const run_netcheck $ ckpts)

(* --- faultcheck ------------------------------------------------------- *)

let run_faultcheck trials seed smoke =
  let trials = if smoke then 6 else trials in
  if trials <= 0 then begin
    Format.eprintf "faultcheck: --trials must be positive (got %d)@." trials;
    exit 2
  end;
  let outcome = A.Faultcheck.run ~seed ~trials () in
  List.iter (fun msg -> Format.printf "faultcheck: FAIL %s@." msg)
    outcome.failures;
  Format.printf
    "faultcheck: %d trials (%d kill/resume, %d corruption, %d nan-recovery, \
     seed %d)@."
    outcome.trials outcome.kill_resume outcome.corruption outcome.nan_recovery
    seed;
  if outcome.failures = [] then begin
    Format.printf
      "faultcheck: resume exact, corrupt checkpoints rejected, watchdog \
       recovers@.";
    0
  end
  else begin
    Format.printf
      "faultcheck: %d FAILURE(S) — the crash-safety guarantees do not hold@."
      (List.length outcome.failures);
    1
  end

let fc_trials =
  Arg.(value & opt int 60
       & info [ "trials" ] ~doc:"Randomized fault-injection trials.")

let fc_seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.")

let fc_smoke =
  Arg.(value & flag
       & info [ "smoke" ] ~doc:"Quick mode for CI: run 6 trials.")

let faultcheck_cmd =
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:"fault-injection audit of the crash-safe training runtime")
    Term.(const run_faultcheck $ fc_trials $ fc_seed $ fc_smoke)

(* --- scenariocheck ---------------------------------------------------- *)

module Scn_space = Canopy_scenario.Space
module Scn_search = Canopy_scenario.Search
module Scn_corpus = Canopy_scenario.Corpus

(* A sandbox-local staging directory for smoke runs, so `dune runtest`
   never mutates the real corpus. *)
let fresh_tmp_dir () =
  let stem = Filename.temp_file "canopy-scn" "" in
  Sys.remove stem;
  Canopy_util.Atomic_file.mkdir_p stem;
  stem

let run_scenariocheck checkpoint objective dir seed duration_ms candidates
    rounds batch smoke =
  let objective = Scn_search.objective_of_name objective in
  let cfg =
    if smoke then Scn_search.smoke_config ~seed ()
    else
      {
        (Scn_search.default_config ~seed ()) with
        Scn_search.duration_ms;
        random_candidates = candidates;
        cem_rounds = rounds;
        cem_batch = batch;
      }
  in
  let history = cfg.Scn_search.history in
  let actor =
    match checkpoint with
    | Some path -> Canopy.Trainer.load_actor path
    | None ->
        Format.printf
          "note: no --checkpoint given; searching against an UNTRAINED \
           seed-1 actor@.";
        Canopy_nn.Mlp.actor
          ~rng:(Canopy_util.Prng.create 1)
          ~in_dim:(history * Canopy_orca.Observation.feature_count)
          ~hidden:(if smoke then 8 else 32)
          ~out_dim:1
  in
  let dir =
    match dir with
    | Some d -> d
    | None -> if smoke then fresh_tmp_dir () else "_artifacts/scenarios"
  in
  (* Regression pass first: re-score the archived corpus with this
     policy, so hardening progress (or regressions) is visible before
     the new search runs. *)
  let corpus = Scn_corpus.load_dir dir in
  if corpus <> [] then begin
    Format.printf "-- corpus regression (%d archived scenario(s)) --@."
      (List.length corpus);
    List.iter
      (fun (r : Scn_corpus.record) ->
        let obj = Scn_search.objective_of_name r.objective in
        let score =
          Scn_search.score_compiled
            ~refute_rng:(Canopy_util.Prng.create r.scn_seed)
            ~actor ~history ~duration_ms:cfg.Scn_search.duration_ms obj
            (Scn_corpus.compiled ~duration_ms:cfg.Scn_search.duration_ms r)
        in
        Format.printf "  %-28s archived=%+.4f now=%+.4f@." r.rec_name r.score
          score)
      corpus
  end;
  let suite_name, suite_score =
    Scn_search.suite_worst ~duration_ms:cfg.Scn_search.duration_ms ~history
      ~actor objective
  in
  let result = Scn_search.search cfg ~actor objective in
  let worst = result.Scn_search.worst in
  Format.printf
    "scenariocheck: objective=%s seed=%d evaluated=%d@.  suite worst:    \
     %-22s score=%+.4f@.  searched worst: scn_seed=%-12d score=%+.4f@.  \
     round best: %s@.  worst params: %a@."
    (Scn_search.objective_name objective)
    cfg.Scn_search.seed result.Scn_search.evaluated suite_name suite_score
    worst.Scn_search.scn_seed worst.Scn_search.score
    (String.concat " "
       (List.map (Printf.sprintf "%+.4f") result.Scn_search.round_best))
    Scn_space.pp_params worst.Scn_search.params;
  (* Archive the worst case and prove it replays: save, reload, and
     re-score both the in-memory and the reloaded record through the
     same scorer — any bit divergence in the vector round-trip or the
     compile path shows up as a score mismatch. *)
  let record = Scn_corpus.of_search ~search_seed:cfg.Scn_search.seed objective worst in
  let path =
    Scn_corpus.save ~dir ~duration_ms:cfg.Scn_search.duration_ms record
  in
  Format.printf "  archived: %s@." path;
  let rescore (r : Scn_corpus.record) =
    Scn_search.score_compiled
      ~refute_rng:(Canopy_util.Prng.create r.scn_seed)
      ~actor ~history ~duration_ms:cfg.Scn_search.duration_ms objective
      (Scn_corpus.compiled ~duration_ms:cfg.Scn_search.duration_ms r)
  in
  let direct = rescore record in
  let replayed = rescore (Scn_corpus.load_file path) in
  let replay_ok =
    Int64.bits_of_float direct = Int64.bits_of_float replayed
  in
  if not replay_ok then
    Format.printf
      "scenariocheck: REPLAY MISMATCH — archived record re-scores to %h, \
       in-memory to %h@."
      replayed direct;
  let gap = suite_score -. worst.Scn_search.score in
  Format.printf "  gap (suite worst − searched worst): %+.4f@." gap;
  let beats_suite = Float.compare worst.Scn_search.score suite_score < 0 in
  if not beats_suite then
    Format.printf
      "scenariocheck: searched worst case does NOT beat the fixed suite's \
       worst member@.";
  (* Machine-readable report next to the corpus (atomic). *)
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "{\n  \"objective\": %S,\n  \"seed\": %d,\n  \"evaluated\": %d,\n  \
     \"suite_worst_trace\": %S,\n  \"suite_worst_score\": %.6f,\n  \
     \"searched_worst_score\": %.6f,\n  \"searched_worst_record\": %S,\n  \
     \"gap\": %.6f\n}\n"
    (Scn_search.objective_name objective)
    cfg.Scn_search.seed result.Scn_search.evaluated suite_name suite_score
    worst.Scn_search.score record.Scn_corpus.rec_name gap;
  Canopy_util.Atomic_file.write
    (Filename.concat dir "REPORT.json")
    (Buffer.contents buf);
  if replay_ok && beats_suite then 0 else 1

let scn_checkpoint =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ]
           ~doc:"Actor checkpoint to search against; an untrained seed-1 \
                 actor stands in when absent.")

let scn_objective =
  Arg.(value & opt string "utility"
       & info [ "objective" ]
           ~doc:"Objective to minimize: utility | p95 | violation | jain.")

let scn_dir =
  Arg.(value & opt (some string) None
       & info [ "dir" ]
           ~doc:"Scenario corpus directory (default _artifacts/scenarios; a \
                 fresh temporary directory under --smoke).")

let scn_seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Search master seed.")

let scn_duration =
  Arg.(value & opt int 8_000
       & info [ "duration-ms" ] ~doc:"Candidate episode length.")

let scn_candidates =
  Arg.(value & opt int 24
       & info [ "candidates" ] ~doc:"Random-exploration evaluations.")

let scn_rounds =
  Arg.(value & opt int 3 & info [ "rounds" ] ~doc:"CEM refinement rounds.")

let scn_batch =
  Arg.(value & opt int 16
       & info [ "batch" ] ~doc:"Evaluations per refinement round.")

let scn_smoke =
  Arg.(value & flag
       & info [ "smoke" ]
           ~doc:"Quick mode for CI: tiny search budget, 2 s episodes, \
                 temporary corpus directory.")

let scenariocheck_cmd =
  Cmd.v
    (Cmd.info "scenariocheck"
       ~doc:"adversarial worst-case scenario search and corpus regression")
    Term.(
      const run_scenariocheck $ scn_checkpoint $ scn_objective $ scn_dir
      $ scn_seed $ scn_duration $ scn_candidates $ scn_rounds $ scn_batch
      $ scn_smoke)

(* --- bench-report ------------------------------------------------------ *)

(* Perf CI over the BENCH_*.json records: the committed repo-root files
   are the recorded baselines, the timestamped snapshots under
   _artifacts/bench_history/ are the local measurements. Renders the
   per-kernel markdown table and fails when any tracked kernel's latest
   full-run measurement regresses more than the threshold. When no local
   history exists (fresh checkout, sandboxed CI) there is nothing to
   gate — that is reported honestly and the gate passes. *)
let run_bench_report baseline_dir history_dir threshold out smoke =
  let module B = A.Bench_report in
  let baselines = B.load_baselines ~dir:baseline_dir in
  let history = B.load_history ~dir:history_dir in
  let report = B.build ~threshold_pct:threshold ~baselines ~history () in
  (match out with
  | Some path -> Canopy_util.Atomic_file.write path report.B.markdown
  | None -> if not smoke then print_string report.B.markdown);
  Format.printf
    "bench-report: %d baseline kernel(s) tracked, %d history snapshot(s), \
     %d compared, %d regression(s) beyond %.0f%%@."
    report.B.tracked (List.length history) report.B.compared
    (List.length report.B.regressions)
    threshold;
  if history = [] then
    Format.printf
      "bench-report: no local bench history under %s — nothing to gate \
       (run the full benches to populate it)@."
      history_dir;
  List.iter
    (fun (r : B.regression) ->
      Format.printf "REGRESSION %s: baseline %.1f -> latest %.1f (%+.1f%%)@."
        r.B.r_kernel r.B.baseline r.B.latest r.B.delta_pct)
    report.B.regressions;
  if report.B.regressions = [] then 0 else 1

let br_baseline_dir =
  Arg.(value & opt string "."
       & info [ "baseline-dir" ]
           ~doc:"Directory holding the committed BENCH_*.json baselines.")

let br_history_dir =
  Arg.(value & opt string "_artifacts/bench_history"
       & info [ "history" ] ~doc:"Bench-history snapshot directory.")

let br_threshold =
  Arg.(value & opt float 15.
       & info [ "threshold" ]
           ~doc:"Regression threshold in percent vs the baseline.")

let br_out =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~doc:"Write the markdown report here instead of stdout.")

let br_smoke =
  Arg.(value & flag
       & info [ "smoke" ]
           ~doc:"Quick mode for CI: summary and gate only, no full table.")

let bench_report_cmd =
  Cmd.v
    (Cmd.info "bench-report"
       ~doc:"per-kernel perf table over the bench history, with a \
             regression gate against the committed BENCH_*.json baselines")
    Term.(
      const run_bench_report $ br_baseline_dir $ br_history_dir $ br_threshold
      $ br_out $ br_smoke)

(* ---------------------------------------------------------------------- *)

let cmd =
  let doc =
    "correctness tooling: lint, racecheck, verifier soundness audit, \
     netcheck, faultcheck, scenariocheck, bench-report"
  in
  Cmd.group (Cmd.info "canopy-check" ~doc)
    [
      lint_cmd;
      racecheck_cmd;
      audit_cmd;
      netcheck_cmd;
      faultcheck_cmd;
      scenariocheck_cmd;
      bench_report_cmd;
    ]

let () = exit (Cmd.eval' cmd)
