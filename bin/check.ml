(* canopy-check: correctness tooling for the repository itself.

   - lint:       deterministic source-level analyzer with a checked-in
                 baseline; exits non-zero on findings not in the baseline.
   - audit:      differential soundness sanitizer for the abstract
                 transformers backing every certificate.
   - netcheck:   static shape/finiteness validation of checkpoints.
   - faultcheck: fault-injection audit of the crash-safe training
                 runtime (kill/resume, corruption, NaN recovery). *)

open Cmdliner
module A = Canopy_analysis

let pp_diag ppf d = Format.fprintf ppf "%a@." A.Diagnostic.pp d

(* --- lint ------------------------------------------------------------- *)

let run_lint root baseline_path update_baseline =
  let diags = A.Lint.run ~root () in
  if update_baseline then begin
    A.Suppress.save baseline_path diags;
    Format.printf "wrote %d finding(s) to %s@." (List.length diags)
      baseline_path;
    0
  end
  else begin
    let baseline = A.Suppress.load baseline_path in
    let fresh, suppressed = A.Suppress.filter baseline diags in
    List.iter (pp_diag Format.std_formatter) fresh;
    if fresh = [] then begin
      Format.printf "lint: clean (%d baselined finding(s))@." suppressed;
      0
    end
    else begin
      Format.printf
        "lint: %d new finding(s), %d baselined — add a fix, an inline \
         (* lint-ignore: rule *) waiver, or re-run with --update-baseline@."
        (List.length fresh) suppressed;
      1
    end
  end

let root =
  Arg.(value & opt string "."
       & info [ "root" ] ~doc:"Repository root to lint (walks lib/ and bin/).")

let baseline_path =
  Arg.(value & opt string "lint.baseline"
       & info [ "baseline" ] ~doc:"Baseline (suppression) file path.")

let update_baseline =
  Arg.(value & flag
       & info [ "update-baseline" ]
           ~doc:"Accept all current findings into the baseline file.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint" ~doc:"run the source-level lint pass")
    Term.(const run_lint $ root $ baseline_path $ update_baseline)

(* --- audit ------------------------------------------------------------ *)

let run_audit samples seed max_report quiet =
  if samples <= 0 then begin
    Format.eprintf "audit: --samples must be positive (got %d)@." samples;
    exit 2
  end;
  let result = A.Soundcheck.run ~seed ~max_report ~samples () in
  List.iter
    (fun v -> Format.printf "%a@." A.Soundcheck.pp_violation v)
    result.violations;
  if not quiet then begin
    Format.printf "audit: %d samples over %d transformers (seed %d)@."
      result.samples
      (List.length result.per_op)
      seed;
    List.iter
      (fun (op, n) -> Format.printf "  %-22s %6d@." op n)
      result.per_op
  end;
  if result.violation_count = 0 then begin
    Format.printf "audit: all transformers sound on sampled points@.";
    0
  end
  else begin
    Format.printf
      "audit: %d SOUNDNESS VIOLATION(S) — the verifier cannot be trusted \
       until this is fixed@."
      result.violation_count;
    1
  end

let samples =
  Arg.(value & opt int 10_000
       & info [ "samples" ] ~doc:"Total sampled point checks.")

let seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.")

let max_report =
  Arg.(value & opt int 25
       & info [ "max-report" ] ~doc:"Cap on individually reported violations.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the per-op sample table.")

let audit_cmd =
  Cmd.v
    (Cmd.info "audit" ~doc:"differential soundness audit of the verifier")
    Term.(const run_audit $ samples $ seed $ max_report $ quiet)

(* --- netcheck --------------------------------------------------------- *)

let run_netcheck paths =
  if paths = [] then begin
    (* No checkpoint given: validate a freshly initialized actor/critic
       pair as a smoke test of the initializers. *)
    let rng = Canopy_util.Prng.create 1 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:30 ~hidden:64 ~out_dim:1
    in
    let critic =
      Canopy_nn.Mlp.critic ~rng ~state_dim:30 ~action_dim:1 ~hidden:64
    in
    let diags =
      A.Netcheck.check_mlp ~name:"fresh-actor" actor
      @ A.Netcheck.check_mlp ~name:"fresh-critic" critic
    in
    List.iter (pp_diag Format.std_formatter) diags;
    if diags = [] then begin
      Format.printf "netcheck: fresh actor/critic stacks valid@.";
      0
    end
    else 1
  end
  else begin
    let failures =
      List.fold_left
        (fun acc path ->
          match A.Netcheck.check_checkpoint path with
          | Error msg ->
              Format.printf "%s@." msg;
              acc + 1
          | Ok [] ->
              Format.printf "%s: ok@." path;
              acc
          | Ok diags ->
              List.iter (pp_diag Format.std_formatter) diags;
              acc + 1)
        0 paths
    in
    if failures = 0 then 0 else 1
  end

let ckpts =
  Arg.(value & pos_all string []
       & info [] ~docv:"CKPT"
           ~doc:"Checkpoint files to validate; none checks fresh networks.")

let netcheck_cmd =
  Cmd.v
    (Cmd.info "netcheck" ~doc:"validate network stacks and checkpoints")
    Term.(const run_netcheck $ ckpts)

(* --- faultcheck ------------------------------------------------------- *)

let run_faultcheck trials seed smoke =
  let trials = if smoke then 6 else trials in
  if trials <= 0 then begin
    Format.eprintf "faultcheck: --trials must be positive (got %d)@." trials;
    exit 2
  end;
  let outcome = A.Faultcheck.run ~seed ~trials () in
  List.iter (fun msg -> Format.printf "faultcheck: FAIL %s@." msg)
    outcome.failures;
  Format.printf
    "faultcheck: %d trials (%d kill/resume, %d corruption, %d nan-recovery, \
     seed %d)@."
    outcome.trials outcome.kill_resume outcome.corruption outcome.nan_recovery
    seed;
  if outcome.failures = [] then begin
    Format.printf
      "faultcheck: resume exact, corrupt checkpoints rejected, watchdog \
       recovers@.";
    0
  end
  else begin
    Format.printf
      "faultcheck: %d FAILURE(S) — the crash-safety guarantees do not hold@."
      (List.length outcome.failures);
    1
  end

let fc_trials =
  Arg.(value & opt int 60
       & info [ "trials" ] ~doc:"Randomized fault-injection trials.")

let fc_seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.")

let fc_smoke =
  Arg.(value & flag
       & info [ "smoke" ] ~doc:"Quick mode for CI: run 6 trials.")

let faultcheck_cmd =
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:"fault-injection audit of the crash-safe training runtime")
    Term.(const run_faultcheck $ fc_trials $ fc_seed $ fc_smoke)

(* ---------------------------------------------------------------------- *)

let cmd =
  let doc =
    "correctness tooling: lint, verifier soundness audit, netcheck, faultcheck"
  in
  Cmd.group (Cmd.info "canopy-check" ~doc)
    [ lint_cmd; audit_cmd; netcheck_cmd; faultcheck_cmd ]

let () = exit (Cmd.eval' cmd)
