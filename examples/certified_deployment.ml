(* Certified deployment: a runtime shield on top of an unconstrained
   policy.

   Training with the verifier in the loop (Canopy) raises how often the
   policy provably satisfies the property; a shield goes further and
   makes the deployed trajectory satisfy the performance property at
   every step where its precondition is observed, by projecting actions
   into the admissible set. This example deploys the same untrained
   (random) policy with and without a shield on a congested link and
   compares behaviour and intervention counts.

   Run with: dune exec examples/certified_deployment.exe *)

let () =
  let rng = Canopy_util.Prng.create 2718 in
  let history = 5 in
  let actor =
    Canopy_nn.Mlp.actor ~rng
      ~in_dim:(history * Canopy_orca.Observation.feature_count)
      ~hidden:32 ~out_dim:1
  in
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:15_000
      ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ()
  in
  let link = Canopy.Eval.link ~min_rtt_ms:40 ~bdp:2. trace in
  let property = Canopy.Property.performance () in

  let bare, _ =
    Canopy.Eval.eval_policy ~name:"bare" ~certificate:(property, 20)
      ~policy:(`Mlp actor) ~history link
  in
  let shield = Canopy.Shield.create ~property ~history in
  let shielded, steps =
    Canopy.Eval.eval_policy ~name:"shielded" ~certificate:(property, 20)
      ~shield ~collect_steps:true ~policy:(`Mlp actor) ~history link
  in
  Format.printf "untrained policy, with and without a runtime shield:@.";
  Format.printf "  %a@." Canopy.Eval.pp_result bare;
  Format.printf "  %a@." Canopy.Eval.pp_result shielded;
  Format.printf "@.shield interventions: %d of %d steps@."
    (Canopy.Shield.interventions shield)
    (Canopy.Shield.steps shield);

  (* Verify the enforcement on the recorded trajectory. The shield's
     precondition is over the k observations BEFORE a step, so a step is
     applicable when the previous five records all reported high (resp.
     low) delay. *)
  let recent = Canopy_util.Ring.create ~capacity:history in
  let all_with pred =
    Canopy_util.Ring.is_full recent
    && Canopy_util.Ring.fold (fun acc d -> acc && pred d) true recent
  in
  let hi_app = ref 0 and hi_bad = ref 0 in
  let lo_app = ref 0 and lo_bad = ref 0 in
  let prev = ref 10. in
  List.iter
    (fun (s : Canopy.Eval.step_record) ->
      if all_with (fun d -> d >= 0.75) then begin
        incr hi_app;
        if s.cwnd_enforced > !prev +. 1e-9 then incr hi_bad
      end;
      if all_with (fun d -> d <= 0.25) then begin
        incr lo_app;
        if s.cwnd_enforced < !prev -. 1e-9 then incr lo_bad
      end;
      Canopy_util.Ring.push recent s.delay_norm;
      prev := s.cwnd_enforced)
    steps;
  Format.printf
    "high-delay history steps: %d (window grew on %d);@. low-delay history \
     steps: %d (window shrank on %d)@."
    !hi_app !hi_bad !lo_app !lo_bad;
  Format.printf
    "@.The shield turns property compliance from a statistical tendency@.";
  Format.printf
    "(the FCC/FCS certified metrics above) into a runtime guarantee at@.";
  Format.printf "the cost of occasional interventions.@."
