(* Noise robustness (the Fig. 1 / Fig. 12 experiment, in miniature):
   train one model with the raw reward only (Orca) and one with the
   robustness property in the loop (Canopy), then subject both to ±5%
   noise on the observed queueing delay and compare how much each
   metric moves.

   Run with: dune exec examples/noise_robustness.exe
   (trains two small models: takes a minute or two) *)

let train ~lambda ~tag =
  let envs =
    Canopy.Trainer.env_pool ~n:4 ~bw_range_mbps:(12., 96.)
      ~rtt_range_ms:(20, 60) ~duration_ms:5_000 ~seed:11 ()
  in
  let cfg =
    Canopy.Trainer.default_config ~seed:11 ~lambda
      ~property:(Canopy.Property.robustness ()) ~n_components:5
      ~total_steps:1_000 ~envs ()
  in
  Format.printf "training %s (lambda=%.2f)...@." tag lambda;
  let agent, _ = Canopy.Trainer.train cfg in
  Canopy_rl.Td3.actor agent

let () =
  let orca = train ~lambda:0. ~tag:"orca" in
  let canopy = train ~lambda:0.25 ~tag:"canopy" in
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:10_000
      ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ()
  in
  let link = Canopy.Eval.link ~min_rtt_ms:40 ~bdp:2. trace in
  Format.printf "@.%-8s %-7s %-10s %-12s %-10s@." "model" "noise" "util"
    "avg qdelay" "p95 qdelay";
  let evaluate name actor =
    let clean, _ = Canopy.Eval.eval_policy ~name ~policy:(`Mlp actor) ~history:5 link in
    let noisy, _ =
      Canopy.Eval.eval_policy ~name ~noise:(23, 0.05) ~policy:(`Mlp actor) ~history:5 link
    in
    List.iter
      (fun (label, (r : Canopy.Eval.result)) ->
        Format.printf "%-8s %-7s %8.1f%% %10.1fms %10.1fms@." name label
          (100. *. r.utilization) r.avg_qdelay_ms r.p95_qdelay_ms)
      [ ("clean", clean); ("±5%", noisy) ];
    let d = Canopy.Eval.noise_delta ~clean ~noisy in
    Format.printf
      "%-8s change under noise: utilization %+.1f%%, avg delay %+.1f%%, p95 \
       %+.1f%%@.@."
      name d.Canopy.Eval.d_utilization_pct d.d_avg_qdelay_pct d.d_p95_qdelay_pct
  in
  evaluate "orca" orca;
  evaluate "canopy" canopy;
  Format.printf
    "Closer-to-zero changes mean more robustness (the paper's Fig. 12).@."
