(* Quickstart: the full Canopy pipeline in one file.

   1. Build a pool of training links (Table 2).
   2. Train a small controller with certificate-in-the-loop TD3 (Eq. 11).
   3. Evaluate it on a fluctuating link with a 50-component certificate.
   4. Print empirical metrics (utilization, delay) and certified metrics
      (FCC, FCS) next to the TCP Cubic baseline.

   Run with: dune exec examples/quickstart.exe
   (2500 training steps: finishes in about half a minute) *)

let () =
  Format.printf "== Canopy quickstart ==@.@.";

  (* 1. Training links: stable bandwidths spanning part of Table 2. *)
  let envs =
    Canopy.Trainer.env_pool ~n:6 ~bw_range_mbps:(6., 96.)
      ~rtt_range_ms:(20, 80) ~duration_ms:8_000 ~seed:5 ()
  in
  Format.printf "training pool:@.";
  List.iter
    (fun (cfg : Canopy_orca.Agent_env.config) ->
      Format.printf "  %a@." Canopy_trace.Trace.pp cfg.trace)
    envs;

  (* 2. Certificate-in-the-loop training with the performance property. *)
  let property = Canopy.Property.performance () in
  let cfg =
    Canopy.Trainer.default_config ~seed:5 ~lambda:0.25 ~property
      ~n_components:5 ~total_steps:2500 ~envs ()
  in
  Format.printf "@.training (lambda=0.25, N=5, 2500 steps)...@.";
  let agent, epochs =
    Canopy.Trainer.train
      ~on_epoch:(fun e ->
        Format.printf
          "  epoch %d: raw=%.3f verifier=%.3f combined=%.3f fcc=%.3f@."
          e.Canopy.Trainer.epoch e.raw_reward e.verifier_reward
          e.combined_reward e.fcc)
      cfg
  in
  ignore epochs;
  let actor = Canopy_rl.Td3.actor agent in

  (* 3-4. Evaluate against Cubic on a step-fluctuating link. *)
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:10_000
      ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ()
  in
  let link = Canopy.Eval.link ~min_rtt_ms:40 ~bdp:2. trace in
  let canopy_result, _ =
    Canopy.Eval.eval_policy ~name:"canopy" ~certificate:(property, 50)
      ~policy:(`Mlp actor) ~history:5 link
  in
  let cubic_result =
    Canopy.Eval.eval_tcp ~name:"cubic" Canopy.Eval.cubic_scheme link
  in
  Format.printf "@.evaluation on %s:@." (Canopy_trace.Trace.name trace);
  Format.printf "  %a@." Canopy.Eval.pp_result canopy_result;
  Format.printf "  %a@." Canopy.Eval.pp_result cubic_result;
  Format.printf
    "@.FCC/FCS are the certified metrics of Section 6.1: the fraction of@.";
  Format.printf
    "certificate components (and of fully-certified steps) for which the@.";
  Format.printf "trained policy provably satisfies the performance property.@."
