(** The per-interval network observation of Table 1 and its normalized
    feature encoding.

    Each monitoring interval yields one observation; the agent state is
    the concatenation of the most recent [k] observations' feature
    vectors. The normalized queuing delay (feature index
    {!delay_index}) is defined as [qdelay / (qdelay + minRTT) =
    qdelay / RTT = 1 − invRTT ∈ [0,1)], which ties the property
    thresholds of Section 6.1 to the invRTT quantity plotted in the
    paper's figures: p = 0.75 means qdelay > 3·minRTT, q = 0.25 means
    qdelay < minRTT/3. *)

type t = {
  thr_mbps : float;  (** THR: average throughput over the interval *)
  loss_pkts : int;  (** packets lost during the interval *)
  avg_qdelay_ms : float;  (** DELAY: average queuing delay of ACKed packets *)
  n_acks : int;  (** n: valid acknowledgements in the interval *)
  interval_ms : int;  (** m: time since the previous report *)
  srtt_ms : float;  (** smoothed RTT *)
  cwnd_pkts : float;  (** effective window during the interval *)
  min_rtt_ms : float;  (** link propagation RTT, for normalization *)
}

val feature_count : int
(** Features per observation frame (7). *)

val delay_index : int
(** Index of the normalized-delay feature inside a frame (0) — the
    dimension the verifier abstracts. *)

val normalized_delay : t -> float
(** [qdelay / (qdelay + minRTT)] in [\[0,1)]. *)

val delay_norm_of_qdelay : qdelay_ms:float -> min_rtt_ms:float -> float
val qdelay_of_delay_norm : delay_norm:float -> min_rtt_ms:float -> float
(** Inverse of {!delay_norm_of_qdelay} on [\[0,1)]. *)

val to_features : thr_scale_mbps:float -> t -> float array
(** Normalized feature frame. [thr_scale_mbps] is the running maximum
    throughput (Orca's THR_max) used to scale the throughput feature. All
    features land in [\[0,1\]]. *)

val features_into : thr_scale_mbps:float -> t -> dst:float array -> off:int -> unit
(** {!to_features} written into [dst.(off .. off+feature_count-1)]
    (identical values, no allocation) — the batched observation-assembly
    path of the fleet's decision tick. Raises [Invalid_argument] when
    the slice is out of bounds. *)

val zero_features : float array
(** All-zero frame used to pad the history before [k] intervals have
    elapsed. *)

val pp : Format.formatter -> t -> unit
