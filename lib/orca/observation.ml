type t = {
  thr_mbps : float;
  loss_pkts : int;
  avg_qdelay_ms : float;
  n_acks : int;
  interval_ms : int;
  srtt_ms : float;
  cwnd_pkts : float;
  min_rtt_ms : float;
}

let feature_count = 7
let delay_index = 0

let delay_norm_of_qdelay ~qdelay_ms ~min_rtt_ms =
  if qdelay_ms <= 0. then 0. else qdelay_ms /. (qdelay_ms +. min_rtt_ms)

let qdelay_of_delay_norm ~delay_norm ~min_rtt_ms =
  if delay_norm <= 0. then 0.
  else if delay_norm >= 1. then invalid_arg "Observation.qdelay_of_delay_norm"
  else delay_norm *. min_rtt_ms /. (1. -. delay_norm)

let normalized_delay o =
  delay_norm_of_qdelay ~qdelay_ms:o.avg_qdelay_ms ~min_rtt_ms:o.min_rtt_ms

let saturating x = x /. (x +. 1.)

(* Allocation-free frame encoding for batched observation assembly: the
   fleet writes each flow's frame directly into its slice of the flat
   history block. [to_features] is this over a fresh array. *)
let features_into ~thr_scale_mbps o ~dst ~off =
  if off < 0 || off + feature_count > Array.length dst then
    invalid_arg "Observation.features_into: slice out of bounds";
  let clamp01 = Canopy_util.Mathx.clamp ~lo:0. ~hi:1. in
  let thr_norm =
    if thr_scale_mbps <= 0. then 0. else clamp01 (o.thr_mbps /. thr_scale_mbps)
  in
  let loss_frac =
    let total = o.loss_pkts + o.n_acks in
    if total = 0 then 0. else float_of_int o.loss_pkts /. float_of_int total
  in
  let n_norm = saturating (float_of_int o.n_acks /. 50.) in
  let m_norm = saturating (float_of_int o.interval_ms /. 100.) in
  let srtt_norm =
    if o.srtt_ms <= 0. then 1. else clamp01 (o.min_rtt_ms /. o.srtt_ms)
  in
  let cwnd_norm = clamp01 (Canopy_util.Mathx.log2 (1. +. o.cwnd_pkts) /. 16.) in
  dst.(off) <- clamp01 (normalized_delay o);
  dst.(off + 1) <- thr_norm;
  dst.(off + 2) <- loss_frac;
  dst.(off + 3) <- n_norm;
  dst.(off + 4) <- m_norm;
  dst.(off + 5) <- srtt_norm;
  dst.(off + 6) <- cwnd_norm

let to_features ~thr_scale_mbps o =
  let dst = Array.make feature_count 0. in
  features_into ~thr_scale_mbps o ~dst ~off:0;
  dst

let zero_features = Array.make feature_count 0.

let pp ppf o =
  Format.fprintf ppf
    "thr=%.2fMbps loss=%d qdelay=%.1fms n=%d m=%dms srtt=%.1fms cwnd=%.1f"
    o.thr_mbps o.loss_pkts o.avg_qdelay_ms o.n_acks o.interval_ms o.srtt_ms
    o.cwnd_pkts
