(* Vectorized agent environment: N [Agent_env]-equivalent episodes over
   one [Canopy_netsim.Fleet], with the observation assembly batched into
   a flat [n × history × feature_count] block so a decision tick can
   hand every flow's state to the policy as one [n × state_dim] matrix
   (one GEMM serves the whole fleet).

   Per flow the step sequence is exactly [Agent_env.step] — validate
   action, read the Cubic backbone, enforce Eq. 1's window, advance the
   link one interval with Cubic refreshing the live window after every
   millisecond, take the monitor observation, update the throughput
   scale, push the feature frame, score the reward — so a fleet of N
   single-flow links reproduces N scalar [Agent_env] trajectories
   bit-for-bit (pinned in test/test_fleet.ml). All per-flow work runs
   inside the fleet's pool chunks; every mutable cell involved (cubic,
   monitor, history slice, reward) is owned by exactly one flow. *)

module Env = Canopy_netsim.Env
module Fleet = Canopy_netsim.Fleet
module Mat = Canopy_tensor.Mat

type t = {
  cfgs : Agent_env.config array;
  n : int;
  history : int;
  interval_ms : int;
  duration_ms : int;
  state_dim : int;
  fleet : Fleet.t;
  cubic : Canopy_cc.Cubic.t array;
  monitor : Monitor.t array;
  reward : Reward.t array;
  handlers : Env.handlers array;
  after_tick : int -> unit;
  (* Flat history block: flow i's frame f lives at
     [(i*history + f) * feature_count]; [hist_head.(i)] is the index of
     flow i's oldest frame (frames are a per-flow ring). *)
  hist : float array;
  hist_head : int array;
  thr_scale : float array;
  prev_cwnd : float array;
  mutable finished : bool;
}

let interval_of (cfg : Agent_env.config) =
  match cfg.interval_ms with
  | Some ms ->
      if ms <= 0 then invalid_arg "Fleet_env.create: interval";
      ms
  | None -> max 20 cfg.min_rtt_ms

let create (cfgs : Agent_env.config array) =
  let n = Array.length cfgs in
  if n = 0 then invalid_arg "Fleet_env.create: no envs";
  Array.iter
    (fun (cfg : Agent_env.config) ->
      if cfg.history <= 0 then invalid_arg "Fleet_env.create: history";
      if cfg.duration_ms <= 0 then invalid_arg "Fleet_env.create: duration")
    cfgs;
  (* One batched decision tick serves every flow, so the decision
     cadence, episode length and state shape must agree across flows. *)
  let history = cfgs.(0).history in
  let interval_ms = interval_of cfgs.(0) in
  let duration_ms = cfgs.(0).duration_ms in
  Array.iter
    (fun (cfg : Agent_env.config) ->
      if cfg.history <> history then
        invalid_arg "Fleet_env.create: heterogeneous history";
      if interval_of cfg <> interval_ms then
        invalid_arg "Fleet_env.create: heterogeneous interval";
      if cfg.duration_ms <> duration_ms then
        invalid_arg "Fleet_env.create: heterogeneous duration")
    cfgs;
  let fleet =
    Fleet.create
      (Array.map
         (fun (cfg : Agent_env.config) ->
           {
             Env.trace = cfg.trace;
             min_rtt_ms = cfg.min_rtt_ms;
             buffer_pkts = cfg.buffer_pkts;
             mtu_bytes = Env.default_mtu;
             initial_cwnd = 10.;
             impairments = cfg.impairments;
           })
         cfgs)
  in
  let cubic = Array.init n (fun _ -> Canopy_cc.Cubic.create ()) in
  let monitor =
    Array.map
      (fun (cfg : Agent_env.config) ->
        Monitor.create ?delay_noise:cfg.delay_noise ~min_rtt_ms:cfg.min_rtt_ms
          ())
      cfgs
  in
  let handlers =
    Array.init n (fun i ->
        Env.chain
          (Canopy_cc.Controller.handlers
             (Canopy_cc.Cubic.to_controller cubic.(i)))
          (Monitor.handlers monitor.(i)))
  in
  let after_tick i = Fleet.set_cwnd fleet ~flow:i (Canopy_cc.Cubic.cwnd cubic.(i)) in
  {
    cfgs;
    n;
    history;
    interval_ms;
    duration_ms;
    state_dim = history * Observation.feature_count;
    fleet;
    cubic;
    monitor;
    reward =
      Array.map
        (fun (cfg : Agent_env.config) -> Reward.create ~config:cfg.reward ())
        cfgs;
    handlers;
    after_tick;
    hist = Array.make (n * history * Observation.feature_count) 0.;
    hist_head = Array.make n 0;
    thr_scale = Array.make n 0.;
    prev_cwnd = Array.make n 10.;
    finished = false;
  }

let flows t = t.n
let history t = t.history
let interval_ms t = t.interval_ms
let state_dim t = t.state_dim
let fleet t = t.fleet
let finished t = t.finished
let now_ms t = Fleet.now_ms t.fleet
let thr_scale_mbps t ~flow = t.thr_scale.(flow)
let prev_cwnd_enforced t ~flow = t.prev_cwnd.(flow)

let fc = Observation.feature_count

(* Oldest-first frame order, as [Agent_env.state]'s ring concatenation. *)
let write_state_row t i dst off =
  let hbase = i * t.history * fc in
  let head = t.hist_head.(i) in
  for f = 0 to t.history - 1 do
    let src = hbase + ((head + f) mod t.history * fc) in
    Array.blit t.hist src dst (off + (f * fc)) fc
  done

let state t ~flow =
  let dst = Array.make t.state_dim 0. in
  write_state_row t flow dst 0;
  dst

let write_states t ~dst =
  if Mat.rows dst <> t.n || Mat.cols dst <> t.state_dim then
    invalid_arg "Fleet_env.write_states: shape";
  let raw = Mat.raw dst in
  for i = 0 to t.n - 1 do
    write_state_row t i raw (i * t.state_dim)
  done

type step_result = {
  rewards : float array;
  cwnd_tcp : float array;
  cwnd_enforced : float array;
  finished : bool;
}

let step (t : t) ~actions =
  if t.finished then invalid_arg "Fleet_env.step: episode finished";
  if Array.length actions <> t.n then invalid_arg "Fleet_env.step: actions";
  let cwnd_tcp = Array.make t.n 0. in
  let cwnd_enforced = Array.make t.n 0. in
  for i = 0 to t.n - 1 do
    let action = actions.(i) in
    if Float.is_nan action || action < -1. || action > 1. then
      invalid_arg "Fleet_env.step: action out of range";
    let tcp = Canopy_cc.Cubic.cwnd t.cubic.(i) in
    let enforced = Agent_env.cwnd_of_action ~action ~cwnd_tcp:tcp in
    Canopy_cc.Cubic.force_cwnd t.cubic.(i) enforced;
    Fleet.set_cwnd t.fleet ~flow:i enforced;
    cwnd_tcp.(i) <- tcp;
    cwnd_enforced.(i) <- enforced
  done;
  Fleet.run ~after_tick:t.after_tick t.fleet t.handlers ~ms:t.interval_ms;
  let now = Fleet.now_ms t.fleet in
  let rewards = Array.make t.n 0. in
  for i = 0 to t.n - 1 do
    let obs = Monitor.take t.monitor.(i) ~now_ms:now ~cwnd_pkts:cwnd_enforced.(i) in
    t.thr_scale.(i) <- Float.max t.thr_scale.(i) obs.Observation.thr_mbps;
    (* Overwrite the oldest frame in place and advance the ring head:
       same frame sequence as [Agent_env]'s [Ring.push]. *)
    let off = (i * t.history * fc) + (t.hist_head.(i) * fc) in
    Observation.features_into ~thr_scale_mbps:t.thr_scale.(i) obs ~dst:t.hist
      ~off;
    t.hist_head.(i) <- (t.hist_head.(i) + 1) mod t.history;
    rewards.(i) <- Reward.of_observation t.reward.(i) obs;
    t.prev_cwnd.(i) <- cwnd_enforced.(i)
  done;
  if now >= t.duration_ms then t.finished <- true;
  { rewards; cwnd_tcp; cwnd_enforced; finished = t.finished }
