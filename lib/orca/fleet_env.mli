(** Vectorized agent environment: N [Agent_env]-equivalent episodes over
    one [Canopy_netsim.Fleet], with batched observation assembly.

    Per flow the step sequence is exactly [Agent_env.step], so a fleet
    of N single-flow links reproduces N scalar [Agent_env] trajectories
    bit-for-bit. The value added is the layout: all flows' feature
    histories live in one flat block, {!write_states} assembles the
    whole fleet's states into one [flows × state_dim] matrix row block,
    and {!step} takes the whole fleet's actions at once — the shape
    [Mlp.forward_eval_into] needs to serve every flow with a single
    GEMM per decision tick. *)

type t

val create : Agent_env.config array -> t
(** One episode per config. All configs must agree on [history],
    decision interval and [duration_ms] (the batched tick runs the
    whole fleet on one cadence); traces, buffers, minRTTs, impairments
    and reward configs may differ per flow. Raises [Invalid_argument]
    on an empty array or heterogeneous cadence. *)

val flows : t -> int
val history : t -> int
val interval_ms : t -> int

val state_dim : t -> int
(** [history × Observation.feature_count], per flow. *)

val fleet : t -> Canopy_netsim.Fleet.t
(** The underlying fleet, for per-flow link metrics. *)

val finished : t -> bool
val now_ms : t -> int
val thr_scale_mbps : t -> flow:int -> float
val prev_cwnd_enforced : t -> flow:int -> float

val state : t -> flow:int -> float array
(** Flow [flow]'s current state (oldest frame first), identical to
    [Agent_env.state] at the same point of the episode. *)

val write_states : t -> dst:Canopy_tensor.Mat.t -> unit
(** Write every flow's state into row [i] of [dst]
    ([flows × state_dim]), with no allocation. *)

type step_result = {
  rewards : float array;
  cwnd_tcp : float array;  (** Cubic backbone window per flow, pre-override *)
  cwnd_enforced : float array;  (** Eq. 1 window actually enforced *)
  finished : bool;
}

val step : t -> actions:float array -> step_result
(** Advance every flow by one decision interval under [actions.(i)] ∈
    [[-1,1]]. Per flow this is exactly [Agent_env.step]. Raises
    [Invalid_argument] on a finished episode, a wrong-length array or
    an out-of-range action. *)
