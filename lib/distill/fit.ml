module Mat = Canopy_tensor.Mat

type config = {
  max_depth : int;
  max_leaves : int;
  min_samples_leaf : int;
  candidate_splits : int;
  ridge : float;
}

let default_config =
  {
    max_depth = 8;
    max_leaves = 64;
    min_samples_leaf = 32;
    candidate_splits = 32;
    ridge = 1e-6;
  }

(* Mutable build-time node: a frontier leaf owns the segment
   [seg_lo, seg_hi) of the global sample-index array until it is split. *)
type bnode = {
  seg_lo : int;
  seg_hi : int;
  bdepth : int;
  mutable split : (int * float * bnode * bnode) option;
}

type candidate = {
  gain : float;
  cfeature : int;
  cthreshold : float;
  target : bnode;
}

let sse ~sum ~sum2 ~n =
  if n = 0 then 0. else sum2 -. (sum *. sum /. float_of_int n)

(* Best variance-reduction split of a segment, or None when no candidate
   respects the depth / min-samples constraints or improves on the parent.
   Deterministic: features scanned in order, ties keep the first winner. *)
let best_split cfg ~raw ~d ~ys ~idx node =
  let lo = node.seg_lo and hi = node.seg_hi in
  let n = hi - lo in
  if node.bdepth >= cfg.max_depth || n < 2 * cfg.min_samples_leaf then None
  else begin
    let vals = Array.make n (0., 0., 0) in
    let pre_sum = Array.make (n + 1) 0. and pre_sum2 = Array.make (n + 1) 0. in
    let best = ref None in
    for f = 0 to d - 1 do
      for k = 0 to n - 1 do
        let s = idx.(lo + k) in
        vals.(k) <- (raw.((s * d) + f), ys.(s), s)
      done;
      (* sample index as final key makes the order (hence the float prefix
         sums and tie-breaking) independent of the incoming permutation *)
      Array.sort
        (fun (v1, _, s1) (v2, _, s2) ->
          let c = Float.compare v1 v2 in
          if c <> 0 then c else Int.compare s1 s2)
        vals;
      for k = 0 to n - 1 do
        let _, y, _ = vals.(k) in
        pre_sum.(k + 1) <- pre_sum.(k) +. y;
        pre_sum2.(k + 1) <- pre_sum2.(k) +. (y *. y)
      done;
      let total = sse ~sum:pre_sum.(n) ~sum2:pre_sum2.(n) ~n in
      (* positions where the sorted feature value changes and both sides
         keep min_samples_leaf *)
      let positions = ref [] in
      let n_positions = ref 0 in
      for k = n - cfg.min_samples_leaf downto cfg.min_samples_leaf do
        let v0, _, _ = vals.(k - 1) and v1, _, _ = vals.(k) in
        if v0 < v1 then begin
          positions := k :: !positions;
          incr n_positions
        end
      done;
      let step =
        if !n_positions <= cfg.candidate_splits then 1
        else (!n_positions + cfg.candidate_splits - 1) / cfg.candidate_splits
      in
      List.iteri
        (fun pi k ->
          if pi mod step = 0 then begin
            let left_sse = sse ~sum:pre_sum.(k) ~sum2:pre_sum2.(k) ~n:k in
            let right_sse =
              sse
                ~sum:(pre_sum.(n) -. pre_sum.(k))
                ~sum2:(pre_sum2.(n) -. pre_sum2.(k))
                ~n:(n - k)
            in
            let gain = total -. left_sse -. right_sse in
            let improves =
              match !best with None -> gain > 0. | Some b -> gain > b.gain
            in
            if improves then begin
              let v0, _, _ = vals.(k - 1) and v1, _, _ = vals.(k) in
              let thr = v0 +. ((v1 -. v0) /. 2.) in
              (* guard against midpoints that round onto v0: route with the
                 strict rule x < thr, so thr must exceed v0 *)
              let thr = if thr > v0 then thr else v1 in
              best :=
                Some { gain; cfeature = f; cthreshold = thr; target = node }
            end
          end)
        !positions
    done;
    !best
  end

(* Stable in-place partition of idx[lo,hi) around x.(f) < thr. *)
let partition ~raw ~d ~idx ~lo ~hi ~f ~thr =
  let buf = Array.sub idx lo (hi - lo) in
  let w = ref lo in
  Array.iter
    (fun s -> if raw.((s * d) + f) < thr then (idx.(!w) <- s; incr w))
    buf;
  let mid = !w in
  Array.iter
    (fun s -> if not (raw.((s * d) + f) < thr) then (idx.(!w) <- s; incr w))
    buf;
  mid

(* Gaussian elimination with partial pivoting; true on success. *)
let solve_inplace a b m =
  let ok = ref true in
  (try
     for col = 0 to m - 1 do
       let piv = ref col in
       for r = col + 1 to m - 1 do
         if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
       done;
       if Float.abs a.(!piv).(col) < 1e-12 then raise Exit;
       if !piv <> col then begin
         let tmp = a.(col) in
         a.(col) <- a.(!piv);
         a.(!piv) <- tmp;
         let tb = b.(col) in
         b.(col) <- b.(!piv);
         b.(!piv) <- tb
       end;
       for r = col + 1 to m - 1 do
         let factor = a.(r).(col) /. a.(col).(col) in
         if factor <> 0. then begin
           for c = col to m - 1 do
             a.(r).(c) <- a.(r).(c) -. (factor *. a.(col).(c))
           done;
           b.(r) <- b.(r) -. (factor *. b.(col))
         end
       done
     done;
     for col = m - 1 downto 0 do
       let acc = ref b.(col) in
       for c = col + 1 to m - 1 do
         acc := !acc -. (a.(col).(c) *. b.(c))
       done;
       b.(col) <- !acc /. a.(col).(col);
       if not (Float.is_finite b.(col)) then raise Exit
     done
   with Exit -> ok := false);
  !ok

(* Ridge least-squares affine model for one leaf segment; falls back to the
   constant mean when the normal equations are degenerate. *)
let fit_leaf cfg ~raw ~d ~ys ~idx ~lo ~hi ~coef ~bias ~leaf_id =
  let m = d + 1 in
  let n = hi - lo in
  let a = Array.make_matrix m m 0. and b = Array.make m 0. in
  for k = lo to hi - 1 do
    let s = idx.(k) in
    let base = s * d in
    let y = ys.(s) in
    for i = 0 to d - 1 do
      let xi = raw.(base + i) in
      for j = i to d - 1 do
        a.(i).(j) <- a.(i).(j) +. (xi *. raw.(base + j))
      done;
      a.(i).(d) <- a.(i).(d) +. xi;
      b.(i) <- b.(i) +. (xi *. y)
    done;
    a.(d).(d) <- a.(d).(d) +. 1.;
    b.(d) <- b.(d) +. y
  done;
  for i = 0 to m - 1 do
    for j = 0 to i - 1 do
      a.(i).(j) <- a.(j).(i)
    done;
    a.(i).(i) <- a.(i).(i) +. (cfg.ridge *. float_of_int n)
  done;
  let mean =
    if n = 0 then 0.
    else begin
      let acc = ref 0. in
      for k = lo to hi - 1 do
        acc := !acc +. ys.(idx.(k))
      done;
      !acc /. float_of_int n
    end
  in
  if solve_inplace a b m then begin
    for j = 0 to d - 1 do
      coef.((leaf_id * d) + j) <- b.(j)
    done;
    bias.(leaf_id) <- b.(d)
  end
  else bias.(leaf_id) <- mean

let fit ?(config = default_config) ~xs ~ys () =
  let cfg = config in
  let n = Mat.rows xs and d = Mat.cols xs in
  if n = 0 then invalid_arg "Fit.fit: no samples";
  if Array.length ys <> n then invalid_arg "Fit.fit: xs/ys length mismatch";
  if cfg.max_leaves < 1 || cfg.min_samples_leaf < 1 then
    invalid_arg "Fit.fit: bad config";
  let raw = Mat.raw xs in
  let idx = Array.init n Fun.id in
  let root = { seg_lo = 0; seg_hi = n; bdepth = 0; split = None } in
  let frontier = ref [] in
  (match best_split cfg ~raw ~d ~ys ~idx root with
  | Some c -> frontier := [ c ]
  | None -> ());
  let leaves = ref 1 in
  while !leaves < cfg.max_leaves && !frontier <> [] do
    (* strict > keeps the earliest-enqueued candidate on ties *)
    let best =
      List.fold_left
        (fun acc c -> if c.gain > acc.gain then c else acc)
        (List.hd !frontier) (List.tl !frontier)
    in
    frontier := List.filter (fun c -> c != best) !frontier;
    let node = best.target in
    let mid =
      partition ~raw ~d ~idx ~lo:node.seg_lo ~hi:node.seg_hi ~f:best.cfeature
        ~thr:best.cthreshold
    in
    let l =
      { seg_lo = node.seg_lo; seg_hi = mid; bdepth = node.bdepth + 1;
        split = None }
    and r =
      { seg_lo = mid; seg_hi = node.seg_hi; bdepth = node.bdepth + 1;
        split = None }
    in
    node.split <- Some (best.cfeature, best.cthreshold, l, r);
    incr leaves;
    List.iter
      (fun child ->
        match best_split cfg ~raw ~d ~ys ~idx child with
        | Some c -> frontier := !frontier @ [ c ]
        | None -> ())
      [ l; r ]
  done;
  (* flatten to arrays in preorder (children strictly after parents) *)
  let count_nodes = ref 0 in
  let rec count nd =
    incr count_nodes;
    match nd.split with
    | Some (_, _, l, r) ->
        count l;
        count r
    | None -> ()
  in
  count root;
  let nn = !count_nodes in
  let nl = !leaves in
  let feature = Array.make nn (-1)
  and threshold = Array.make nn 0.
  and left = Array.make nn 0
  and right = Array.make nn 0
  and leaf = Array.make nn (-1) in
  let coef = Array.make (nl * d) 0. and bias = Array.make nl 0. in
  let next_node = ref 0 and next_leaf = ref 0 in
  let rec emit nd =
    let i = !next_node in
    incr next_node;
    match nd.split with
    | Some (f, thr, l, r) ->
        feature.(i) <- f;
        threshold.(i) <- thr;
        left.(i) <- !next_node;
        emit l;
        right.(i) <- !next_node;
        emit r
    | None ->
        let li = !next_leaf in
        incr next_leaf;
        leaf.(i) <- li;
        fit_leaf cfg ~raw ~d ~ys ~idx ~lo:nd.seg_lo ~hi:nd.seg_hi ~coef ~bias
          ~leaf_id:li
  in
  emit root;
  Tree.build ~in_dim:d ~feature ~threshold ~left ~right ~leaf ~coef ~bias

let mse tree ~xs ~ys =
  let n = Mat.rows xs and d = Mat.cols xs in
  if Array.length ys <> n then invalid_arg "Fit.mse: xs/ys length mismatch";
  if n = 0 then 0.
  else begin
    let raw = Mat.raw xs in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let p = Tree.predict_into tree ~src:raw ~src_off:(i * d) in
      let e = p -. ys.(i) in
      acc := !acc +. (e *. e)
    done;
    !acc /. float_of_int n
  end
