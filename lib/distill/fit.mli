(** CART-style fitting of a piecewise-affine regression tree.

    Splits greedily maximize variance reduction of the target (best-first
    over all frontier leaves, so the leaf budget goes where it pays most);
    each final leaf gets a ridge-regularized least-squares affine model.
    Fully deterministic: no randomness, ties broken by lowest feature /
    candidate index. *)

type config = {
  max_depth : int;  (** split no deeper than this (default 8) *)
  max_leaves : int;  (** total leaf budget (default 64) *)
  min_samples_leaf : int;  (** both children must keep this many (default 32) *)
  candidate_splits : int;  (** threshold candidates per feature (default 32) *)
  ridge : float;  (** Tikhonov strength for leaf models (default 1e-6) *)
}

val default_config : config

val fit :
  ?config:config -> xs:Canopy_tensor.Mat.t -> ys:float array -> unit -> Tree.t
(** Fit on rows of [xs] (one sample per row) against targets [ys].
    Raises [Invalid_argument] on empty data or mismatched lengths. *)

val mse : Tree.t -> xs:Canopy_tensor.Mat.t -> ys:float array -> float
(** Mean squared error of [Tree.predict] over the samples. *)
