module Mat = Canopy_tensor.Mat
module Mlp = Canopy_nn.Mlp
module Agent_env = Canopy_orca.Agent_env
module Fleet_env = Canopy_orca.Fleet_env

let clamp_action = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

(* Mirrors [Fleet_env]'s interval derivation so a mixed config pool can
   be pre-grouped instead of tripping its homogeneity check. *)
let interval_of (cfg : Agent_env.config) =
  match cfg.interval_ms with Some ms -> ms | None -> max 20 cfg.min_rtt_ms

let collect_group ~limit_ticks ~actor cfgs =
  let env = Fleet_env.create cfgs in
  let flows = Fleet_env.flows env and sd = Fleet_env.state_dim env in
  if Mlp.in_dim actor <> sd then
    invalid_arg "Harvest.collect: actor input dim does not match state dim";
  if Mlp.out_dim actor <> 1 then
    invalid_arg "Harvest.collect: actor must have a scalar head";
  let x = Mat.create ~rows:flows ~cols:sd in
  let y = Mat.create ~rows:flows ~cols:1 in
  let actions = Array.make flows 0. in
  let states_rev = ref [] and acts_rev = ref [] in
  let ticks = ref 0 in
  while (not (Fleet_env.finished env)) && !ticks < limit_ticks do
    Fleet_env.write_states env ~dst:x;
    Mlp.forward_eval_into ~dst:y actor x;
    let raw_y = Mat.raw y in
    for i = 0 to flows - 1 do
      (* the serving path clamps before acting, so the clamped action is
         the distillation target *)
      actions.(i) <- clamp_action raw_y.(i)
    done;
    states_rev := Array.copy (Mat.raw x) :: !states_rev;
    acts_rev := Array.copy actions :: !acts_rev;
    ignore (Fleet_env.step env ~actions : Fleet_env.step_result);
    incr ticks
  done;
  let total = flows * !ticks in
  let xs = Mat.create ~rows:total ~cols:sd in
  let ys = Array.make (max total 1) 0. in
  let raw_xs = Mat.raw xs in
  let row = ref (!ticks - 1) in
  List.iter
    (fun states ->
      Array.blit states 0 raw_xs (!row * flows * sd) (flows * sd);
      decr row)
    !states_rev;
  let row = ref (!ticks - 1) in
  List.iter
    (fun acts ->
      Array.blit acts 0 ys (!row * flows) flows;
      decr row)
    !acts_rev;
  (xs, if total = 0 then [||] else ys)

let collect ?(limit_ticks = max_int) ~actor cfgs =
  if Array.length cfgs = 0 then invalid_arg "Harvest.collect: no episodes";
  (* [Fleet_env] requires one decision interval per fleet; a mixed pool
     (the trainer's stratified links derive theirs from min-RTT) becomes
     one fleet per interval, groups in first-appearance order. *)
  let by_interval = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun cfg ->
      let k = interval_of cfg in
      match Hashtbl.find_opt by_interval k with
      | Some group -> group := cfg :: !group
      | None ->
          Hashtbl.add by_interval k (ref [ cfg ]);
          order := k :: !order)
    cfgs;
  let groups =
    List.rev_map
      (fun k -> Array.of_list (List.rev !(Hashtbl.find by_interval k)))
      !order
  in
  match groups with
  | [ cfgs ] -> collect_group ~limit_ticks ~actor cfgs
  | groups ->
      let parts = List.map (collect_group ~limit_ticks ~actor) groups in
      let sd = Mat.cols (fst (List.hd parts)) in
      let total = List.fold_left (fun n (xs, _) -> n + Mat.rows xs) 0 parts in
      let xs = Mat.create ~rows:total ~cols:sd in
      let raw_xs = Mat.raw xs in
      let off = ref 0 in
      List.iter
        (fun (part, _) ->
          let len = Mat.rows part * sd in
          Array.blit (Mat.raw part) 0 raw_xs !off len;
          off := !off + len)
        parts;
      (xs, Array.concat (List.map snd parts))
