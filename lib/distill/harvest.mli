(** State–action pair harvesting for distillation.

    Rolls the trained actor through a batched [Fleet_env] episode set (one
    MLP GEMM per decision tick, exactly the fleet serving path) and records
    every (observation row, clamped action) pair the actor produced.
    Config pools with mixed decision intervals (e.g. the trainer's
    stratified links) are grouped into one fleet per interval. *)

val collect :
  ?limit_ticks:int ->
  actor:Canopy_nn.Mlp.t ->
  Canopy_orca.Agent_env.config array ->
  Canopy_tensor.Mat.t * float array
(** [collect ~actor cfgs] returns [(xs, ys)]: one row of [xs] per flow per
    decision tick (flows vary fastest) and the matching clamped actions in
    [ys].  The recorded action is post-clamp because that is what serving
    enforces — the tree learns the served policy, not the raw head.
    [limit_ticks] caps the number of decision ticks harvested. *)
