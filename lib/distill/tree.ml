module Mat = Canopy_tensor.Mat
module Interval = Canopy_absint.Interval
module Pool = Canopy_util.Pool

type t = {
  in_dim : int;
  feature : int array; (* split feature per node, -1 for leaves *)
  threshold : float array; (* split threshold per node, 0. for leaves *)
  left : int array; (* child for x.(feature) < threshold *)
  right : int array; (* child for x.(feature) >= threshold *)
  leaf : int array; (* leaf-model index per node, -1 for internal *)
  coef : float array; (* n_leaves * in_dim, row-major *)
  bias : float array; (* n_leaves *)
  generation : int;
}

let in_dim t = t.in_dim
let out_dim (_ : t) = 1
let n_nodes t = Array.length t.feature
let n_leaves t = Array.length t.bias
let generation t = t.generation

let gen_counter = Atomic.make 0

let validate ~in_dim ~feature ~threshold ~left ~right ~leaf ~coef ~bias =
  let n = Array.length feature in
  let l = Array.length bias in
  if in_dim <= 0 then invalid_arg "Tree.build: in_dim must be positive";
  if n = 0 then invalid_arg "Tree.build: empty node array";
  if
    Array.length threshold <> n
    || Array.length left <> n
    || Array.length right <> n
    || Array.length leaf <> n
  then invalid_arg "Tree.build: node array length mismatch";
  if Array.length coef <> l * in_dim then
    invalid_arg "Tree.build: coef length mismatch";
  let seen_leaf = Array.make (max l 1) false in
  for i = 0 to n - 1 do
    if feature.(i) >= 0 then begin
      if feature.(i) >= in_dim then
        invalid_arg "Tree.build: split feature out of range";
      if Float.is_nan threshold.(i) then
        invalid_arg "Tree.build: NaN threshold";
      (* Children strictly after the parent: guarantees the compare chain
         terminates and the tree is a DAG rooted at node 0. *)
      if left.(i) <= i || left.(i) >= n || right.(i) <= i || right.(i) >= n
      then invalid_arg "Tree.build: child index out of range";
      if leaf.(i) <> -1 then invalid_arg "Tree.build: internal node with leaf id"
    end
    else begin
      if feature.(i) <> -1 then invalid_arg "Tree.build: bad feature marker";
      if leaf.(i) < 0 || leaf.(i) >= l then
        invalid_arg "Tree.build: leaf id out of range";
      if seen_leaf.(leaf.(i)) then invalid_arg "Tree.build: duplicate leaf id";
      seen_leaf.(leaf.(i)) <- true
    end
  done;
  for j = 0 to l - 1 do
    if not seen_leaf.(j) then invalid_arg "Tree.build: unreferenced leaf model"
  done

let build ~in_dim ~feature ~threshold ~left ~right ~leaf ~coef ~bias =
  validate ~in_dim ~feature ~threshold ~left ~right ~leaf ~coef ~bias;
  {
    in_dim;
    feature = Array.copy feature;
    threshold = Array.copy threshold;
    left = Array.copy left;
    right = Array.copy right;
    leaf = Array.copy leaf;
    coef = Array.copy coef;
    bias = Array.copy bias;
    generation = Atomic.fetch_and_add gen_counter 1;
  }

let constant ~in_dim value =
  build ~in_dim ~feature:[| -1 |] ~threshold:[| 0. |] ~left:[| 0 |]
    ~right:[| 0 |] ~leaf:[| 0 |]
    ~coef:(Array.make in_dim 0.)
    ~bias:[| value |]

let depth t =
  let n = n_nodes t in
  let d = Array.make n 0 in
  let deepest = ref 0 in
  (* children always follow parents, so one forward pass suffices *)
  for i = 0 to n - 1 do
    if t.feature.(i) >= 0 then begin
      let c = d.(i) + 1 in
      if c > d.(t.left.(i)) then d.(t.left.(i)) <- c;
      if c > d.(t.right.(i)) then d.(t.right.(i)) <- c
    end
    else if d.(i) > !deepest then deepest := d.(i)
  done;
  !deepest

let node_of ~src ~src_off t =
  let i = ref 0 in
  while t.feature.(!i) >= 0 do
    i :=
      if src.(src_off + t.feature.(!i)) < t.threshold.(!i) then t.left.(!i)
      else t.right.(!i)
  done;
  !i

let predict_into t ~src ~src_off =
  let node = node_of ~src ~src_off t in
  let l = t.leaf.(node) in
  let base = l * t.in_dim in
  let acc = ref t.bias.(l) in
  for j = 0 to t.in_dim - 1 do
    acc := !acc +. (t.coef.(base + j) *. src.(src_off + j))
  done;
  !acc

let predict t x =
  if Array.length x <> t.in_dim then invalid_arg "Tree.predict: bad input dim";
  predict_into t ~src:x ~src_off:0

let leaf_of t x =
  if Array.length x <> t.in_dim then invalid_arg "Tree.leaf_of: bad input dim";
  t.leaf.(node_of ~src:x ~src_off:0 t)

(* Routing plus one fused multiply-add per input dim: cheap enough that the
   chunk planner only parallelizes very large batches. *)
let row_flops t = (2 * t.in_dim) + depth t + 4

let predict_rows_into ~dst t x =
  if Mat.cols x <> t.in_dim then
    invalid_arg "Tree.predict_rows_into: bad input dim";
  if Mat.cols dst <> 1 || Mat.rows dst <> Mat.rows x then
    invalid_arg "Tree.predict_rows_into: bad output shape";
  let rows = Mat.rows x in
  let src = Mat.raw x in
  let out = Mat.raw dst in
  let body ~lo ~hi =
    for i = lo to hi - 1 do
      out.(i) <- predict_into t ~src ~src_off:(i * t.in_dim)
    done
  in
  match Mat.plan_chunks ~rows ~row_flops:(row_flops t) with
  | Some chunk -> Pool.parallel_for_chunks ~chunk rows body
  | None -> body ~lo:0 ~hi:rows

(* ------------------------------------------------------------------ *)
(* Leaf cells and exact interval bounds                                *)

let leaf_node_index t ~leaf =
  let found = ref (-1) in
  for i = 0 to n_nodes t - 1 do
    if t.leaf.(i) = leaf then found := i
  done;
  if !found < 0 then invalid_arg "Tree.leaf_cell: leaf out of range";
  !found

let leaf_cell t ~leaf =
  let target = leaf_node_index t ~leaf in
  let lo = Array.make t.in_dim neg_infinity in
  let hi = Array.make t.in_dim infinity in
  (* Walk down from the root, following the unique path to [target].
     Node indices increase along any path, so [target] is under node [i]
     iff i <= target and target is reachable; we recompute reachability
     with a descent that picks whichever child's subtree contains the
     target node.  Subtrees are contiguous?  Not guaranteed — instead mark
     ancestors with a reverse pass. *)
  let n = n_nodes t in
  let on_path = Array.make n false in
  on_path.(target) <- true;
  for i = n - 1 downto 0 do
    if t.feature.(i) >= 0 && (on_path.(t.left.(i)) || on_path.(t.right.(i)))
    then on_path.(i) <- true
  done;
  let i = ref 0 in
  while !i <> target do
    let f = t.feature.(!i) and thr = t.threshold.(!i) in
    if on_path.(t.left.(!i)) then begin
      (* closed on both sides: boundary points stay in both cells *)
      if thr < hi.(f) then hi.(f) <- thr;
      i := t.left.(!i)
    end
    else begin
      if thr > lo.(f) then lo.(f) <- thr;
      i := t.right.(!i)
    end
  done;
  Array.init t.in_dim (fun j -> Interval.make lo.(j) hi.(j))

(* Tight bound of [bias + coef . x] over a box: each term's extremum is at
   an endpoint, accumulated in the same order as [predict_into], so the
   bound equals the float evaluation at the minimizing/maximizing corner. *)
let affine_bound t ~leaf box =
  let base = leaf * t.in_dim in
  let lo = ref t.bias.(leaf) and hi = ref t.bias.(leaf) in
  for j = 0 to t.in_dim - 1 do
    let c = t.coef.(base + j) in
    (* zero coefficients contribute exactly 0 even over infinite cells
       (0 * inf would otherwise poison the bound with NaN) *)
    let a, b =
      if c = 0. then (0., 0.)
      else
        let a = c *. Interval.lo box.(j) and b = c *. Interval.hi box.(j) in
        if a <= b then (a, b) else (b, a)
    in
    lo := !lo +. a;
    hi := !hi +. b
  done;
  Interval.make !lo !hi

let output_interval ?(exact = true) t box =
  if Array.length box <> t.in_dim then
    invalid_arg "Tree.output_interval: bad box dim";
  let acc = ref None in
  let join iv =
    acc := Some (match !acc with None -> iv | Some a -> Interval.hull a iv)
  in
  for l = 0 to n_leaves t - 1 do
    if exact then begin
      let cell = leaf_cell t ~leaf:l in
      let clipped = Array.make t.in_dim (Interval.of_point 0.) in
      let reachable = ref true in
      (try
         for j = 0 to t.in_dim - 1 do
           match Interval.intersect box.(j) cell.(j) with
           | Some iv -> clipped.(j) <- iv
           | None ->
               reachable := false;
               raise Exit
         done
       with Exit -> ());
      if !reachable then join (affine_bound t ~leaf:l clipped)
    end
    else join (affine_bound t ~leaf:l box)
  done;
  match !acc with
  | Some iv -> iv
  | None -> assert false (* cells cover R^in_dim, so some leaf intersects *)

(* ------------------------------------------------------------------ *)
(* Checkpoint format: "canopy-tree v1" (hex floats, strict parse)      *)

let magic = "canopy-tree v1"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "in_dim %d\nnodes %d\nleaves %d\n" t.in_dim (n_nodes t)
       (n_leaves t));
  for i = 0 to n_nodes t - 1 do
    if t.feature.(i) >= 0 then
      Buffer.add_string buf
        (Printf.sprintf "split %d %h %d %d\n" t.feature.(i) t.threshold.(i)
           t.left.(i) t.right.(i))
    else Buffer.add_string buf (Printf.sprintf "leaf %d\n" t.leaf.(i))
  done;
  for l = 0 to n_leaves t - 1 do
    let base = l * t.in_dim in
    for j = 0 to t.in_dim - 1 do
      if j > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%h" t.coef.(base + j))
    done;
    Buffer.add_string buf (Printf.sprintf " %h\n" t.bias.(l))
  done;
  Buffer.contents buf

let parse_float s =
  match float_of_string_opt s with
  | Some f when not (Float.is_nan f) -> f
  | Some _ -> failwith "tree checkpoint: NaN value"
  | None -> failwith (Printf.sprintf "tree checkpoint: malformed float %S" s)

let parse_int s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "tree checkpoint: malformed int %S" s)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let cursor = ref lines in
  let next what =
    match !cursor with
    | [] -> failwith (Printf.sprintf "tree checkpoint: missing %s" what)
    | line :: rest ->
        cursor := rest;
        line
  in
  if next "magic" <> magic then failwith "tree checkpoint: bad magic";
  let header name =
    match String.split_on_char ' ' (next name) with
    | [ key; value ] when key = name -> parse_int value
    | _ -> failwith (Printf.sprintf "tree checkpoint: expected %s header" name)
  in
  let in_dim = header "in_dim" in
  let n = header "nodes" in
  let l = header "leaves" in
  if in_dim <= 0 || n <= 0 || l <= 0 then
    failwith "tree checkpoint: non-positive dimensions";
  let feature = Array.make n (-1)
  and threshold = Array.make n 0.
  and left = Array.make n 0
  and right = Array.make n 0
  and leaf = Array.make n (-1) in
  for i = 0 to n - 1 do
    match String.split_on_char ' ' (next "node line") with
    | [ "split"; f; thr; lc; rc ] ->
        feature.(i) <- parse_int f;
        threshold.(i) <- parse_float thr;
        left.(i) <- parse_int lc;
        right.(i) <- parse_int rc
    | [ "leaf"; id ] -> leaf.(i) <- parse_int id
    | _ -> failwith "tree checkpoint: malformed node line"
  done;
  let coef = Array.make (l * in_dim) 0. and bias = Array.make l 0. in
  for li = 0 to l - 1 do
    let parts =
      String.split_on_char ' ' (next "leaf model line")
      |> List.filter (fun s -> s <> "")
    in
    if List.length parts <> in_dim + 1 then
      failwith "tree checkpoint: wrong leaf model arity";
    List.iteri
      (fun j s ->
        if j < in_dim then coef.((li * in_dim) + j) <- parse_float s
        else bias.(li) <- parse_float s)
      parts
  done;
  List.iter
    (fun line ->
      String.iter
        (fun c ->
          if not (c = ' ' || c = '\t' || c = '\r') then
            failwith "tree checkpoint: trailing garbage")
        line)
    !cursor;
  try build ~in_dim ~feature ~threshold ~left ~right ~leaf ~coef ~bias
  with Invalid_argument msg -> failwith ("tree checkpoint: " ^ msg)

let save path t = Canopy_util.Atomic_file.write path (to_string t)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
