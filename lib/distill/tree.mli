(** Piecewise-affine regression tree: the distilled serving policy.

    A tree is a flat array of nodes.  Internal node [i] routes an input [x]
    to the left child when [x.(feature.(i)) < threshold.(i)] and to the
    right child otherwise; every leaf carries an affine model
    [coef . x + bias].  Because each leaf's region is an axis-aligned box
    (the conjunction of the split half-spaces on its root path) and the
    leaf model is a single affine stage, interval bounds over a leaf are
    {e exact} (attained at a box corner), which is what
    [Canopy.Certify.certify_tree] exploits. *)

type t

val in_dim : t -> int
(** Input dimensionality (flattened observation history). *)

val out_dim : t -> int
(** Always [1]: the tree predicts the scalar cwnd action. *)

val n_nodes : t -> int
val n_leaves : t -> int
val depth : t -> int
(** Maximum root-to-leaf path length (0 for a single-leaf tree). *)

val generation : t -> int
(** Monotone identity stamp, distinct per loaded/built tree (mirrors
    [Mlp.generation]; lets caches key on the policy). *)

val build :
  in_dim:int ->
  feature:int array ->
  threshold:float array ->
  left:int array ->
  right:int array ->
  leaf:int array ->
  coef:float array ->
  bias:float array ->
  t
(** Assemble a tree from flat arrays.  [feature.(i) >= 0] marks an internal
    node with children [left.(i)]/[right.(i)]; [feature.(i) = -1] marks a
    leaf whose model index is [leaf.(i)].  [coef] is row-major
    [n_leaves * in_dim]; [bias] has length [n_leaves].  Children must have
    larger indices than their parent (node [0] is the root) so evaluation
    terminates; raises [Invalid_argument] on any structural violation. *)

val constant : in_dim:int -> float -> t
(** Single-leaf tree returning the given constant. *)

val predict : t -> float array -> float
(** Route [x] to its leaf and evaluate the affine model.  Raw model output:
    callers clamp to the action range exactly as for the MLP. *)

val predict_into : t -> src:float array -> src_off:int -> float
(** [predict] over a row embedded in a larger flat buffer (row starts at
    [src_off]).  Bit-identical to [predict] on a copied row. *)

val predict_rows_into : dst:Canopy_tensor.Mat.t -> t -> Canopy_tensor.Mat.t -> unit
(** Batched serving: row [i] of [dst] (a [rows x 1] matrix) receives
    [predict] of row [i] of [x].  Pool-parallel over row chunks for large
    batches; bit-identical to the sequential loop (and to [predict] per
    row) at any domain count. *)

val leaf_cell : t -> leaf:int -> Canopy_absint.Interval.t array
(** The axis-aligned box of leaf [leaf]: per input dimension, the interval
    implied by the split constraints on the root path (unconstrained
    dimensions are [(-inf, +inf)]).  Cells are closed on both sides — the
    shared boundary [x = threshold] belongs to both children — a
    measure-zero over-approximation that keeps every bound sound. *)

val leaf_of : t -> float array -> int
(** Index of the leaf that [predict] routes [x] to. *)

val output_interval :
  ?exact:bool -> t -> Canopy_absint.Interval.t array -> Canopy_absint.Interval.t
(** Bound the tree output over the input box (length [in_dim]).

    With [~exact:true] (default), each leaf's affine model is bounded over
    the {e intersection} of the input box with the leaf's cell — tight for
    one affine stage, so the result is the exact hull of reachable leaf
    ranges (up to closed-boundary ties).  With [~exact:false] every leaf is
    bounded over the whole input box with no cell intersection — the
    conservative reading a structure-blind engine would produce.  The exact
    interval is always contained in the conservative one. *)

val to_string : t -> string
(** Serialize in the ["canopy-tree v1"] checkpoint format: a magic line,
    integer header lines, then one line per node and per leaf model with
    floats rendered as ["%h"] hex so round-trips are bit-exact. *)

val of_string : string -> t
(** Strict parser for [to_string] output.  Fails ([Failure]) on a bad magic
    line, malformed numbers, wrong counts, structural violations, or
    trailing garbage. *)

val save : string -> t -> unit
(** Atomically write (stage + rename) the checkpoint to [path]. *)

val load : string -> t
(** Read and [of_string] a checkpoint file. *)
