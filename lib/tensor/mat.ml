type t = { rows : int; cols : int; data : float array (* row-major *) }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: dims";
  { rows; cols; data = Array.make (rows * cols) 0. }

(* Internal: uninitialized allocation, only for kernels that overwrite
   every cell before the matrix escapes. *)
let create_uninit ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: dims";
  { rows; cols; data = Array.create_float (rows * cols) }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Mat.of_arrays: empty row";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index";
  m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }
let fill m x = Array.fill m.data 0 (Array.length m.data) x
let row m i = Array.sub m.data (i * m.cols) m.cols

let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: shape mismatch" name)

let add a b =
  check_same "add" a b;
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.mapi (fun i x -> x -. b.data.(i)) a.data }

let scale alpha m = { m with data = Array.map (fun x -> alpha *. x) m.data }
let map f m = { m with data = Array.map f m.data }
let abs m = map Float.abs m

let mat_vec m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mat_vec: dims";
  let out = Array.make m.rows 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    out.(i) <- !acc
  done;
  out

let mat_vec_into ~dst m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mat_vec_into: dims";
  if m.rows <> Array.length dst then invalid_arg "Mat.mat_vec_into: dst";
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    dst.(i) <- !acc
  done

let mat_tvec m y =
  if m.rows <> Array.length y then invalid_arg "Mat.mat_tvec: dims";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let yi = y.(i) in
    if yi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. yi)
      done
  done;
  out

(* The batched kernels below validate every dimension up front and then
   run on the flat arrays with unsafe accesses: the index arithmetic is
   affine in loop counters whose bounds were just checked, and dropping
   the per-element bounds checks is a large fraction of the batching
   speedup these kernels exist to provide. *)

(* dst.(dbase+j) += s *. x.(xbase+j) for j < len; updates touch distinct
   cells so the unrolling cannot change the result. *)
let[@inline] saxpy_row ~dst ~dbase ~s ~x ~xbase ~len =
  let j4 = len - (len land 3) in
  let j = ref 0 in
  while !j < j4 do
    let d = dbase + !j and v = xbase + !j in
    Array.unsafe_set dst d
      (Array.unsafe_get dst d +. (s *. Array.unsafe_get x v));
    Array.unsafe_set dst (d + 1)
      (Array.unsafe_get dst (d + 1) +. (s *. Array.unsafe_get x (v + 1)));
    Array.unsafe_set dst (d + 2)
      (Array.unsafe_get dst (d + 2) +. (s *. Array.unsafe_get x (v + 2)));
    Array.unsafe_set dst (d + 3)
      (Array.unsafe_get dst (d + 3) +. (s *. Array.unsafe_get x (v + 3)));
    j := !j + 4
  done;
  for j = j4 to len - 1 do
    Array.unsafe_set dst (dbase + j)
      (Array.unsafe_get dst (dbase + j) +. (s *. Array.unsafe_get x (xbase + j)))
  done

(* dst.(dbase+j) += s0*x0 + s1*x1 + s2*x2 + s3*x3 row-wise: four source
   rows are folded into [dst] per pass, quartering the load/store traffic
   on [dst] relative to four single-row saxpys. The four products are
   summed before the add to [dst], so the accumulation order differs from
   the per-sample reference by rounding only. *)
let[@inline] saxpy_row4 ~dst ~dbase ~s0 ~s1 ~s2 ~s3 ~x ~x0 ~x1 ~x2 ~x3 ~len =
  for j = 0 to len - 1 do
    Array.unsafe_set dst (dbase + j)
      (Array.unsafe_get dst (dbase + j)
      +. (s0 *. Array.unsafe_get x (x0 + j))
      +. (s1 *. Array.unsafe_get x (x1 + j))
      +. (s2 *. Array.unsafe_get x (x2 + j))
      +. (s3 *. Array.unsafe_get x (x3 + j)))
  done

(* Two (resp. four) dst rows fold the same four source rows per pass: the
   four [x] loads are shared between all the accumulation chains. *)
let[@inline] saxpy_row4x2 ~dst ~d0 ~d1 ~s0 ~s1 ~s2 ~s3 ~t0 ~t1 ~t2 ~t3 ~x ~x0
    ~x1 ~x2 ~x3 ~len =
  for j = 0 to len - 1 do
    let bv0 = Array.unsafe_get x (x0 + j) in
    let bv1 = Array.unsafe_get x (x1 + j) in
    let bv2 = Array.unsafe_get x (x2 + j) in
    let bv3 = Array.unsafe_get x (x3 + j) in
    Array.unsafe_set dst (d0 + j)
      (Array.unsafe_get dst (d0 + j)
      +. (s0 *. bv0) +. (s1 *. bv1) +. (s2 *. bv2) +. (s3 *. bv3));
    Array.unsafe_set dst (d1 + j)
      (Array.unsafe_get dst (d1 + j)
      +. (t0 *. bv0) +. (t1 *. bv1) +. (t2 *. bv2) +. (t3 *. bv3))
  done

let[@inline] saxpy_row4x4 ~dst ~d0 ~d1 ~d2 ~d3 ~s0 ~s1 ~s2 ~s3 ~t0 ~t1 ~t2 ~t3
    ~u0 ~u1 ~u2 ~u3 ~w0 ~w1 ~w2 ~w3 ~x ~x0 ~x1 ~x2 ~x3 ~len =
  for j = 0 to len - 1 do
    let bv0 = Array.unsafe_get x (x0 + j) in
    let bv1 = Array.unsafe_get x (x1 + j) in
    let bv2 = Array.unsafe_get x (x2 + j) in
    let bv3 = Array.unsafe_get x (x3 + j) in
    Array.unsafe_set dst (d0 + j)
      (Array.unsafe_get dst (d0 + j)
      +. (s0 *. bv0) +. (s1 *. bv1) +. (s2 *. bv2) +. (s3 *. bv3));
    Array.unsafe_set dst (d1 + j)
      (Array.unsafe_get dst (d1 + j)
      +. (t0 *. bv0) +. (t1 *. bv1) +. (t2 *. bv2) +. (t3 *. bv3));
    Array.unsafe_set dst (d2 + j)
      (Array.unsafe_get dst (d2 + j)
      +. (u0 *. bv0) +. (u1 *. bv1) +. (u2 *. bv2) +. (u3 *. bv3));
    Array.unsafe_set dst (d3 + j)
      (Array.unsafe_get dst (d3 + j)
      +. (w0 *. bv0) +. (w1 *. bv1) +. (w2 *. bv2) +. (w3 *. bv3))
  done

(* ------------------------------------------------------------------ *)
(* Parallel dispatch.

   The three GEMM kernels below ([mat_mul_into], [mat_mul_nt_into] /
   [mat_mul_nt_bias_into], [mat_mul_tn_acc]) are implemented as range
   kernels over a half-open interval [lo, hi) of output rows, and large
   calls fan the row ranges out over [Canopy_util.Pool]. Determinism
   contract (DESIGN §10): chunk boundaries are a pure function of the
   matrix dimensions and the (global) grain settings — never the domain
   count — every output row is written by exactly one chunk, and each
   range kernel performs, per row, exactly the operation sequence of the
   sequential reference. Chunks are multiples of 4 rows so the 4-row
   register blocks and the remainder rows of a chunked run coincide with
   the sequential blocking (the remainder paths differ from the blocked
   ones in accumulation shape and zero-skipping, so rows must not change
   region when the matrix is split). *)

module Scratch = Canopy_util.Scratch

(* Per-domain scratch arena for kernel workspaces. Slot assignments are
   module-private: slot 0 holds the packed B panel of the nt kernels.
   The DLS key makes the arena domain-local, so its only writer is the
   domain that fetched it; an array taken from it may be handed to pool
   workers read-only, published by the pool's mutex pair (DESIGN §10). *)
let scratch_key : Scratch.t Domain.DLS.key =
  Domain.DLS.new_key Scratch.create

let par_enabled = ref true

(* The grain: how many flops one region needs before fanning out at all
   ([par_min_flops]) and how many flops each chunk should carry
   ([par_chunk_flops]). The defaults are only a placeholder — the first
   pool with workers replaces them with a measured calibration (below)
   unless the env knob or [set_parallel_grain] pinned them first. Grain
   only moves chunk boundaries and the parallel/sequential choice, both
   of which the kernels are bit-invariant to, so calibration can never
   change a result. *)
let par_min_flops = ref 2_000_000
let par_chunk_flops = ref 1_000_000
let set_parallel_enabled b = par_enabled := b
let parallel_enabled () = !par_enabled

type calibration = {
  source : string;
      (* "default" | "env" | "measured" | "manual" — who set the grain *)
  min_flops : int;
  chunk_flops : int;
  chunk_overhead_ns : float; (* measured per-chunk hand-off cost *)
  flops_per_ns : float; (* measured sequential GEMM throughput *)
}

let calibration_state =
  ref
    {
      source = "default";
      min_flops = !par_min_flops;
      chunk_flops = !par_chunk_flops;
      chunk_overhead_ns = 0.;
      flops_per_ns = 0.;
    }

let calibration () = !calibration_state

(* Once true, the one-shot measured calibration (end of file) is
   disarmed: env and manual settings pin the grain. *)
let calibrated = ref false

let set_parallel_grain ~min_flops ~chunk_flops =
  if min_flops < 0 || chunk_flops <= 0 then
    invalid_arg "Mat.set_parallel_grain";
  par_min_flops := min_flops;
  par_chunk_flops := chunk_flops;
  calibrated := true;
  calibration_state :=
    { !calibration_state with source = "manual"; min_flops; chunk_flops }

let parallel_grain () = (!par_min_flops, !par_chunk_flops)

(* One chunk planner for every pool consumer (this module, Anet boxes,
   Zonotope boxes): [Some chunk] — fan out in chunks of [chunk] rows —
   or [None] for the sequential path. Chunks are rounded up to a
   multiple of 4 rows so the GEMM register blocks and remainder rows of
   a chunked run coincide with the sequential blocking; for row-
   independent box workloads the alignment is merely a harmless
   coarsening. The decision and the chunk size are pure functions of
   [(rows, row_flops)] and the process-global grain — never the domain
   count — so chunking is deterministic (DESIGN §10). *)
let plan_chunks ~rows ~row_flops =
  if
    !par_enabled && rows > 4
    && rows * row_flops >= !par_min_flops
    && (not (Canopy_util.Pool.in_task ()))
    && Canopy_util.Pool.(domains (default ())) > 1
  then begin
    let raw = max 1 (!par_chunk_flops / max 1 row_flops) in
    let chunk = (raw + 3) / 4 * 4 in
    (* A single-chunk plan would enter the pool only to run inline. *)
    if rows > chunk then Some chunk else None
  end
  else None

(* One k block of the normal-layout GEMM: accumulate
   a[·, klo..khi) · b[klo..khi), ·] into rows [lo, hi) of [dst]. [klo] is
   a multiple of 4 and [khi] is either a multiple of 4 or [a.cols], so
   the 4-wide k groups of [saxpy_row4x4]/[saxpy_row4] land on exactly the
   offsets of an unblocked sweep and the scalar k tail runs only in the
   final block. Each output cell's accumulation chain therefore continues
   in ascending k order across blocks (through an exact float64
   store/reload), bit-identical to one full sweep. *)
let mat_mul_into_kblock ~dst a b ~lo ~hi ~klo ~khi =
  let ad = a.data and bd = b.data and od = dst.data in
  let i4 = a.rows - (a.rows land 3) in
  let k4 = min khi (a.cols - (a.cols land 3)) in
  let stop4 = min hi i4 in
  let i = ref lo in
  while !i < stop4 do
    let ab0 = !i * a.cols in
    let ab1 = ab0 + a.cols in
    let ab2 = ab1 + a.cols in
    let ab3 = ab2 + a.cols in
    let ob0 = !i * b.cols in
    let ob1 = ob0 + b.cols in
    let ob2 = ob1 + b.cols in
    let ob3 = ob2 + b.cols in
    let k = ref klo in
    while !k < k4 do
      let x0 = !k * b.cols in
      saxpy_row4x4 ~dst:od ~d0:ob0 ~d1:ob1 ~d2:ob2 ~d3:ob3
        ~s0:(Array.unsafe_get ad (ab0 + !k))
        ~s1:(Array.unsafe_get ad (ab0 + !k + 1))
        ~s2:(Array.unsafe_get ad (ab0 + !k + 2))
        ~s3:(Array.unsafe_get ad (ab0 + !k + 3))
        ~t0:(Array.unsafe_get ad (ab1 + !k))
        ~t1:(Array.unsafe_get ad (ab1 + !k + 1))
        ~t2:(Array.unsafe_get ad (ab1 + !k + 2))
        ~t3:(Array.unsafe_get ad (ab1 + !k + 3))
        ~u0:(Array.unsafe_get ad (ab2 + !k))
        ~u1:(Array.unsafe_get ad (ab2 + !k + 1))
        ~u2:(Array.unsafe_get ad (ab2 + !k + 2))
        ~u3:(Array.unsafe_get ad (ab2 + !k + 3))
        ~w0:(Array.unsafe_get ad (ab3 + !k))
        ~w1:(Array.unsafe_get ad (ab3 + !k + 1))
        ~w2:(Array.unsafe_get ad (ab3 + !k + 2))
        ~w3:(Array.unsafe_get ad (ab3 + !k + 3))
        ~x:bd ~x0 ~x1:(x0 + b.cols)
        ~x2:(x0 + (2 * b.cols))
        ~x3:(x0 + (3 * b.cols))
        ~len:b.cols;
      k := !k + 4
    done;
    for k = k4 to khi - 1 do
      let s = Array.unsafe_get ad (ab0 + k) in
      let t = Array.unsafe_get ad (ab1 + k) in
      let u = Array.unsafe_get ad (ab2 + k) in
      let w = Array.unsafe_get ad (ab3 + k) in
      let xb = k * b.cols in
      for j = 0 to b.cols - 1 do
        let bv = Array.unsafe_get bd (xb + j) in
        Array.unsafe_set od (ob0 + j)
          (Array.unsafe_get od (ob0 + j) +. (s *. bv));
        Array.unsafe_set od (ob1 + j)
          (Array.unsafe_get od (ob1 + j) +. (t *. bv));
        Array.unsafe_set od (ob2 + j)
          (Array.unsafe_get od (ob2 + j) +. (u *. bv));
        Array.unsafe_set od (ob3 + j)
          (Array.unsafe_get od (ob3 + j) +. (w *. bv))
      done
    done;
    i := !i + 4
  done;
  for i = !i to hi - 1 do
    let abase = i * a.cols in
    let obase = i * b.cols in
    let k = ref klo in
    while !k < k4 do
      let x0 = !k * b.cols in
      saxpy_row4 ~dst:od ~dbase:obase
        ~s0:(Array.unsafe_get ad (abase + !k))
        ~s1:(Array.unsafe_get ad (abase + !k + 1))
        ~s2:(Array.unsafe_get ad (abase + !k + 2))
        ~s3:(Array.unsafe_get ad (abase + !k + 3))
        ~x:bd ~x0 ~x1:(x0 + b.cols)
        ~x2:(x0 + (2 * b.cols))
        ~x3:(x0 + (3 * b.cols))
        ~len:b.cols;
      k := !k + 4
    done;
    for k = k4 to khi - 1 do
      let aik = Array.unsafe_get ad (abase + k) in
      if aik <> 0. then
        saxpy_row ~dst:od ~dbase:obase ~s:aik ~x:bd ~xbase:(k * b.cols)
          ~len:b.cols
    done
  done

(* Rows of [b] consumed per k block: [mm_kc * b.cols] floats of [b] stay
   resident while every output row of the range folds them in, instead
   of streaming all of [b] once per 4-row stripe. Must stay a multiple
   of 4 (see [mat_mul_into_kblock]). *)
let mm_kc = 128

let mat_mul_into_range ~dst a b ~lo ~hi =
  (* The sequential kernel zero-fills all of [dst] up front; the range
     kernel owns exactly rows [lo, hi) and zero-fills just those, then
     accumulates one k block at a time. *)
  Array.fill dst.data (lo * b.cols) ((hi - lo) * b.cols) 0.;
  let klo = ref 0 in
  while !klo < a.cols do
    let khi = min a.cols (!klo + mm_kc) in
    mat_mul_into_kblock ~dst a b ~lo ~hi ~klo:!klo ~khi;
    klo := khi
  done

(* Per-output-row flop estimates live next to their kernels; dispatchers
   and external call sites (Anet, Zonotope, the bench) must take them
   from here rather than restating the formulas. *)
let mat_mul_row_flops a b = 2 * a.cols * b.cols

let mat_mul_into ~dst a b =
  if a.cols <> b.rows then invalid_arg "Mat.mat_mul_into: dims";
  if dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Mat.mat_mul_into: dst";
  match plan_chunks ~rows:a.rows ~row_flops:(mat_mul_row_flops a b) with
  | Some chunk ->
      Canopy_util.Pool.parallel_for_chunks ~chunk a.rows (fun ~lo ~hi ->
          mat_mul_into_range ~dst a b ~lo ~hi)
  | None -> mat_mul_into_range ~dst a b ~lo:0 ~hi:a.rows

let mat_mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mat_mul: dims";
  (* [mat_mul_into] zero-fills before accumulating. *)
  let out = create_uninit ~rows:a.rows ~cols:b.cols in
  mat_mul_into ~dst:out a b;
  out

(* dst <- a · bᵀ. Row-major makes this the cache-friendly GEMM shape: the
   inner product walks one row of [a] and one row of [b], both contiguous.
   It is the batched dense forward ([x · wᵀ] for an [out×in] weight
   matrix). Register-blocked over four rows of [b]: each [a] element is
   loaded once per four output cells and the four accumulator chains are
   independent. Every cell still sums in ascending k order, so each
   output row is bit-identical to a per-row [mat_vec]. *)
let mat_mul_nt_into_range ~dst a b ~lo ~hi =
  let inner = a.cols in
  let ad = a.data and bd = b.data and od = dst.data in
  let j4 = b.rows - (b.rows land 3) in
  let k4 = inner - (inner land 3) in
  (* Four rows of [b] at a time (each [a] load feeds four independent
     accumulator chains), with the k loop unrolled ×4 to amortize the
     loop overhead. Each accumulator still sums its products in ascending
     k order, so every cell is bit-identical to the scalar dot — and
     because output rows are fully independent here, any row partition
     of [0, a.rows) is bit-identical to the sequential sweep. *)
  for i = lo to hi - 1 do
    let abase = i * inner in
    let obase = i * dst.cols in
    let j = ref 0 in
    while !j < j4 do
      let b0 = !j * inner in
      let b1 = b0 + inner in
      let b2 = b1 + inner in
      let b3 = b2 + inner in
      let s0 = ref 0. and s1 = ref 0. and s2 = ref 0. and s3 = ref 0. in
      let k = ref 0 in
      while !k < k4 do
        let av = Array.unsafe_get ad (abase + !k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k));
        let av = Array.unsafe_get ad (abase + !k + 1) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k + 1));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k + 1));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k + 1));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k + 1));
        let av = Array.unsafe_get ad (abase + !k + 2) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k + 2));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k + 2));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k + 2));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k + 2));
        let av = Array.unsafe_get ad (abase + !k + 3) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k + 3));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k + 3));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k + 3));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k + 3));
        k := !k + 4
      done;
      while !k < inner do
        let av = Array.unsafe_get ad (abase + !k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k));
        incr k
      done;
      Array.unsafe_set od (obase + !j) !s0;
      Array.unsafe_set od (obase + !j + 1) !s1;
      Array.unsafe_set od (obase + !j + 2) !s2;
      Array.unsafe_set od (obase + !j + 3) !s3;
      j := !j + 4
    done;
    for j = j4 to b.rows - 1 do
      let bbase = j * inner in
      let acc = ref 0. in
      for k = 0 to inner - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (abase + k) *. Array.unsafe_get bd (bbase + k))
      done;
      Array.unsafe_set od (obase + j) !acc
    done
  done

(* ------------------------------------------------------------------ *)
(* Packed-panel nt kernel.

   For row counts worth blocking, the 4-aligned rows of [b] are repacked
   once per call into a contiguous panel that interleaves each 4-row
   tile k-major:

     panel.(4*jt*inner + 4*k + jj) = b.(4*jt + jj).(k)

   so the micro-kernel's inner loop reads the four [b] values of a tile
   from one linear stream instead of four strided rows. Packing is a
   pure relayout — same values, and every output cell still runs one
   accumulator chain in ascending k order — so the packed kernel is
   bit-identical to the direct kernel above, and the packed/direct
   choice (a pure function of the shapes) can never change a result.
   Two [a] rows are processed per panel pass (8 independent chains),
   halving panel traffic relative to the row-at-a-time sweep while
   keeping all live floats (8 accumulators, 4 panel values, 2 [a]
   values) inside a 16-register FP file — a 4-row pass needs 21 and
   spills every iteration. Chunk starts are multiples of 4, so a
   chunked run blocks the i loop exactly like the sequential sweep. The panel lives in the calling domain's
   scratch arena and is written before the parallel region; workers read
   it through the region closure, published by the pool's mutex pair. *)

(* Below this many [a] rows the pack cost is not worth amortizing. A
   shape threshold, never a domain-count one. *)
let nt_pack_rows = 12

let nt_use_panel ~rows b = rows >= nt_pack_rows && b.rows >= 4

let pack_nt_panel b =
  let inner = b.cols in
  let j4 = b.rows - (b.rows land 3) in
  let scratch = Domain.DLS.get scratch_key in
  let panel = Scratch.get scratch ~slot:0 ~len:(j4 * inner) in
  let bd = b.data in
  for jt = 0 to (j4 / 4) - 1 do
    let base = 4 * jt * inner in
    let b0 = base in
    let b1 = b0 + inner in
    let b2 = b1 + inner in
    let b3 = b2 + inner in
    for k = 0 to inner - 1 do
      let p = base + (4 * k) in
      Array.unsafe_set panel p (Array.unsafe_get bd (b0 + k));
      Array.unsafe_set panel (p + 1) (Array.unsafe_get bd (b1 + k));
      Array.unsafe_set panel (p + 2) (Array.unsafe_get bd (b2 + k));
      Array.unsafe_set panel (p + 3) (Array.unsafe_get bd (b3 + k))
    done
  done;
  panel

(* Unified packed kernel for a·bᵀ with and without a fused bias row:
   [bias = None] seeds every accumulator with 0., exactly like the
   direct [mat_mul_nt_into_range]. [lo] must be a multiple of 4. *)
let mat_mul_nt_packed_range ~dst a b ~bias ~panel ~lo ~hi =
  let inner = a.cols in
  let ad = a.data and bd = b.data and od = dst.data in
  let j4 = b.rows - (b.rows land 3) in
  let ncols = dst.cols in
  let seed j =
    match bias with None -> 0. | Some v -> Array.unsafe_get v j
  in
  let i2stop = hi - ((hi - lo) land 1) in
  let i = ref lo in
  while !i < i2stop do
    let a0 = !i * inner in
    let a1 = a0 + inner in
    let o0 = !i * ncols in
    let o1 = o0 + ncols in
    let j = ref 0 in
    while !j < j4 do
      let tb = !j * inner in
      let s00 = ref (seed !j) and s01 = ref (seed (!j + 1)) in
      let s02 = ref (seed (!j + 2)) and s03 = ref (seed (!j + 3)) in
      let s10 = ref !(s00) and s11 = ref !(s01) in
      let s12 = ref !(s02) and s13 = ref !(s03) in
      for k = 0 to inner - 1 do
        let p = tb + (4 * k) in
        let bv0 = Array.unsafe_get panel p in
        let bv1 = Array.unsafe_get panel (p + 1) in
        let bv2 = Array.unsafe_get panel (p + 2) in
        let bv3 = Array.unsafe_get panel (p + 3) in
        let av = Array.unsafe_get ad (a0 + k) in
        s00 := !s00 +. (av *. bv0);
        s01 := !s01 +. (av *. bv1);
        s02 := !s02 +. (av *. bv2);
        s03 := !s03 +. (av *. bv3);
        let av = Array.unsafe_get ad (a1 + k) in
        s10 := !s10 +. (av *. bv0);
        s11 := !s11 +. (av *. bv1);
        s12 := !s12 +. (av *. bv2);
        s13 := !s13 +. (av *. bv3)
      done;
      Array.unsafe_set od (o0 + !j) !s00;
      Array.unsafe_set od (o0 + !j + 1) !s01;
      Array.unsafe_set od (o0 + !j + 2) !s02;
      Array.unsafe_set od (o0 + !j + 3) !s03;
      Array.unsafe_set od (o1 + !j) !s10;
      Array.unsafe_set od (o1 + !j + 1) !s11;
      Array.unsafe_set od (o1 + !j + 2) !s12;
      Array.unsafe_set od (o1 + !j + 3) !s13;
      j := !j + 4
    done;
    (* Remainder columns straight from [b]'s unpacked rows. *)
    for j = j4 to b.rows - 1 do
      let bb = j * inner in
      let c0 = ref (seed j) and c1 = ref (seed j) in
      for k = 0 to inner - 1 do
        let bv = Array.unsafe_get bd (bb + k) in
        c0 := !c0 +. (Array.unsafe_get ad (a0 + k) *. bv);
        c1 := !c1 +. (Array.unsafe_get ad (a1 + k) *. bv)
      done;
      Array.unsafe_set od (o0 + j) !c0;
      Array.unsafe_set od (o1 + j) !c1
    done;
    i := !i + 2
  done;
  (* Remainder row of [a] (odd range length), alone over the same panel. *)
  for i = i2stop to hi - 1 do
    let ab = i * inner in
    let ob = i * ncols in
    let j = ref 0 in
    while !j < j4 do
      let tb = !j * inner in
      let s0 = ref (seed !j) and s1 = ref (seed (!j + 1)) in
      let s2 = ref (seed (!j + 2)) and s3 = ref (seed (!j + 3)) in
      for k = 0 to inner - 1 do
        let p = tb + (4 * k) in
        let av = Array.unsafe_get ad (ab + k) in
        s0 := !s0 +. (av *. Array.unsafe_get panel p);
        s1 := !s1 +. (av *. Array.unsafe_get panel (p + 1));
        s2 := !s2 +. (av *. Array.unsafe_get panel (p + 2));
        s3 := !s3 +. (av *. Array.unsafe_get panel (p + 3))
      done;
      Array.unsafe_set od (ob + !j) !s0;
      Array.unsafe_set od (ob + !j + 1) !s1;
      Array.unsafe_set od (ob + !j + 2) !s2;
      Array.unsafe_set od (ob + !j + 3) !s3;
      j := !j + 4
    done;
    for j = j4 to b.rows - 1 do
      let bb = j * inner in
      let acc = ref (seed j) in
      for k = 0 to inner - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (ab + k) *. Array.unsafe_get bd (bb + k))
      done;
      Array.unsafe_set od (ob + j) !acc
    done
  done

(* a · bᵀ with a broadcast row added: out[i,j] = bias[j] + Σk a[i,k]b[j,k].
   Fusing the bias into the GEMM epilogue saves a full extra pass over the
   output. Seeding the accumulator with the bias instead of adding it last
   changes the result only by rounding relative to dot-then-add. *)
let mat_mul_nt_bias_into_range ~dst a b bias ~lo ~hi =
  let inner = a.cols in
  let ad = a.data and bd = b.data and od = dst.data in
  let j4 = b.rows - (b.rows land 3) in
  let k4 = inner - (inner land 3) in
  for i = lo to hi - 1 do
    let abase = i * inner in
    let obase = i * dst.cols in
    let j = ref 0 in
    while !j < j4 do
      let b0 = !j * inner in
      let b1 = b0 + inner in
      let b2 = b1 + inner in
      let b3 = b2 + inner in
      let s0 = ref (Array.unsafe_get bias !j) in
      let s1 = ref (Array.unsafe_get bias (!j + 1)) in
      let s2 = ref (Array.unsafe_get bias (!j + 2)) in
      let s3 = ref (Array.unsafe_get bias (!j + 3)) in
      let k = ref 0 in
      while !k < k4 do
        let av = Array.unsafe_get ad (abase + !k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k));
        let av = Array.unsafe_get ad (abase + !k + 1) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k + 1));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k + 1));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k + 1));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k + 1));
        let av = Array.unsafe_get ad (abase + !k + 2) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k + 2));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k + 2));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k + 2));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k + 2));
        let av = Array.unsafe_get ad (abase + !k + 3) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k + 3));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k + 3));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k + 3));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k + 3));
        k := !k + 4
      done;
      while !k < inner do
        let av = Array.unsafe_get ad (abase + !k) in
        s0 := !s0 +. (av *. Array.unsafe_get bd (b0 + !k));
        s1 := !s1 +. (av *. Array.unsafe_get bd (b1 + !k));
        s2 := !s2 +. (av *. Array.unsafe_get bd (b2 + !k));
        s3 := !s3 +. (av *. Array.unsafe_get bd (b3 + !k));
        incr k
      done;
      Array.unsafe_set od (obase + !j) !s0;
      Array.unsafe_set od (obase + !j + 1) !s1;
      Array.unsafe_set od (obase + !j + 2) !s2;
      Array.unsafe_set od (obase + !j + 3) !s3;
      j := !j + 4
    done;
    for j = j4 to b.rows - 1 do
      let bbase = j * inner in
      let acc = ref (Array.unsafe_get bias j) in
      for k = 0 to inner - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (abase + k) *. Array.unsafe_get bd (bbase + k))
      done;
      Array.unsafe_set od (obase + j) !acc
    done
  done

(* Shared dispatcher for the nt family: pick packed vs direct by shape,
   then sequential vs chunked by the planner. Both axes preserve bits. *)
let nt_dispatch ~dst a b ~bias ~row_flops =
  if nt_use_panel ~rows:a.rows b then begin
    let panel = pack_nt_panel b in
    match plan_chunks ~rows:a.rows ~row_flops with
    | Some chunk ->
        Canopy_util.Pool.parallel_for_chunks ~chunk a.rows (fun ~lo ~hi ->
            mat_mul_nt_packed_range ~dst a b ~bias ~panel ~lo ~hi)
    | None -> mat_mul_nt_packed_range ~dst a b ~bias ~panel ~lo:0 ~hi:a.rows
  end
  else
    let direct ~lo ~hi =
      match bias with
      | None -> mat_mul_nt_into_range ~dst a b ~lo ~hi
      | Some v -> mat_mul_nt_bias_into_range ~dst a b v ~lo ~hi
    in
    match plan_chunks ~rows:a.rows ~row_flops with
    | Some chunk -> Canopy_util.Pool.parallel_for_chunks ~chunk a.rows direct
    | None -> direct ~lo:0 ~hi:a.rows

let mat_mul_nt_row_flops a b = 2 * a.cols * b.rows

let mat_mul_nt_into ~dst a b =
  if a.cols <> b.cols then invalid_arg "Mat.mat_mul_nt_into: dims";
  if dst.rows <> a.rows || dst.cols <> b.rows then
    invalid_arg "Mat.mat_mul_nt_into: dst";
  nt_dispatch ~dst a b ~bias:None ~row_flops:(mat_mul_nt_row_flops a b)

let mat_mul_nt a b =
  if a.cols <> b.cols then invalid_arg "Mat.mat_mul_nt_into: dims";
  let out = create_uninit ~rows:a.rows ~cols:b.rows in
  mat_mul_nt_into ~dst:out a b;
  out

let mat_mul_nt_bias_into ~dst a b bias =
  if a.cols <> b.cols then invalid_arg "Mat.mat_mul_nt_bias: dims";
  if Array.length bias <> b.rows then invalid_arg "Mat.mat_mul_nt_bias: bias";
  if dst.rows <> a.rows || dst.cols <> b.rows then
    invalid_arg "Mat.mat_mul_nt_bias_into: dst";
  nt_dispatch ~dst a b ~bias:(Some bias)
    ~row_flops:(mat_mul_nt_row_flops a b)

let mat_mul_nt_bias a b bias =
  if a.cols <> b.cols then invalid_arg "Mat.mat_mul_nt_bias: dims";
  let dst = create_uninit ~rows:a.rows ~cols:b.rows in
  mat_mul_nt_bias_into ~dst a b bias;
  dst

(* dst <- dst + aᵀ · b, the batched weight-gradient kernel
   (dw += doutᵀ · x). Register-blocked over four samples (rows of [a]/[b])
   per pass; the four per-sample contributions to a cell are summed before
   the add to [dst], so the result matches a sequence of per-sample
   [outer_acc]s to rounding rather than bit for bit. *)
(* Range kernel over dst rows [lo, hi) (lo a multiple of 4). The k loops
   stay outermost and complete per chunk, so each dst row receives its
   sample contributions in exactly the sequential order; the global
   i4/i2 region boundaries keep every row on the same saxpy variant
   (4×4 / 4×2 / single, with the remainder rows' zero-skip) it takes in
   the full sweep. *)
let mat_mul_tn_acc_block ~dst a b ~lo ~hi =
  let ad = a.data and bd = b.data and od = dst.data in
  let i4 = a.cols - (a.cols land 3) in
  let i2 = a.cols - (a.cols land 1) in
  let k4 = a.rows - (a.rows land 3) in
  let stop4 = min hi i4 in
  let stop2 = min hi i2 in
  let k = ref 0 in
  while !k < k4 do
    let a0 = !k * a.cols in
    let a1 = a0 + a.cols in
    let a2 = a1 + a.cols in
    let a3 = a2 + a.cols in
    let x0 = !k * b.cols in
    let x1 = x0 + b.cols in
    let x2 = x1 + b.cols in
    let x3 = x2 + b.cols in
    let i = ref lo in
    while !i < stop4 do
      let d0 = !i * dst.cols in
      saxpy_row4x4 ~dst:od ~d0 ~d1:(d0 + dst.cols) ~d2:(d0 + (2 * dst.cols))
        ~d3:(d0 + (3 * dst.cols))
        ~s0:(Array.unsafe_get ad (a0 + !i))
        ~s1:(Array.unsafe_get ad (a1 + !i))
        ~s2:(Array.unsafe_get ad (a2 + !i))
        ~s3:(Array.unsafe_get ad (a3 + !i))
        ~t0:(Array.unsafe_get ad (a0 + !i + 1))
        ~t1:(Array.unsafe_get ad (a1 + !i + 1))
        ~t2:(Array.unsafe_get ad (a2 + !i + 1))
        ~t3:(Array.unsafe_get ad (a3 + !i + 1))
        ~u0:(Array.unsafe_get ad (a0 + !i + 2))
        ~u1:(Array.unsafe_get ad (a1 + !i + 2))
        ~u2:(Array.unsafe_get ad (a2 + !i + 2))
        ~u3:(Array.unsafe_get ad (a3 + !i + 2))
        ~w0:(Array.unsafe_get ad (a0 + !i + 3))
        ~w1:(Array.unsafe_get ad (a1 + !i + 3))
        ~w2:(Array.unsafe_get ad (a2 + !i + 3))
        ~w3:(Array.unsafe_get ad (a3 + !i + 3))
        ~x:bd ~x0 ~x1 ~x2 ~x3 ~len:b.cols;
      i := !i + 4
    done;
    while !i < stop2 do
      saxpy_row4x2 ~dst:od ~d0:(!i * dst.cols) ~d1:((!i + 1) * dst.cols)
        ~s0:(Array.unsafe_get ad (a0 + !i))
        ~s1:(Array.unsafe_get ad (a1 + !i))
        ~s2:(Array.unsafe_get ad (a2 + !i))
        ~s3:(Array.unsafe_get ad (a3 + !i))
        ~t0:(Array.unsafe_get ad (a0 + !i + 1))
        ~t1:(Array.unsafe_get ad (a1 + !i + 1))
        ~t2:(Array.unsafe_get ad (a2 + !i + 1))
        ~t3:(Array.unsafe_get ad (a3 + !i + 1))
        ~x:bd ~x0 ~x1 ~x2 ~x3 ~len:b.cols;
      i := !i + 2
    done;
    for i = !i to hi - 1 do
      saxpy_row4 ~dst:od ~dbase:(i * dst.cols)
        ~s0:(Array.unsafe_get ad (a0 + i))
        ~s1:(Array.unsafe_get ad (a1 + i))
        ~s2:(Array.unsafe_get ad (a2 + i))
        ~s3:(Array.unsafe_get ad (a3 + i))
        ~x:bd ~x0 ~x1 ~x2 ~x3 ~len:b.cols
    done;
    k := !k + 4
  done;
  for k = k4 to a.rows - 1 do
    let abase = k * a.cols in
    let bbase = k * b.cols in
    for i = lo to hi - 1 do
      let aki = Array.unsafe_get ad (abase + i) in
      if aki <> 0. then
        saxpy_row ~dst:od ~dbase:(i * dst.cols) ~s:aki ~x:bd ~xbase:bbase
          ~len:b.cols
    done
  done

(* dst rows per pass of the i-blocked driver below: one stripe of [dst]
   stays hot across every sample instead of the whole gradient matrix
   being streamed once per 4-sample group. A multiple of 4, so block
   starts stay 4-aligned and the i4/i2 variant boundaries inside each
   block coincide with the full sweep's. Each stripe completes all
   samples in ascending order before the next stripe starts, so every
   cell's accumulation chain is unchanged — bit-identical. *)
let tn_ib = 64

let mat_mul_tn_acc_range ~dst a b ~lo ~hi =
  let i = ref lo in
  while !i < hi do
    let bhi = min hi (!i + tn_ib) in
    mat_mul_tn_acc_block ~dst a b ~lo:!i ~hi:bhi;
    i := bhi
  done

let mat_mul_tn_row_flops a b = 2 * a.rows * b.cols

let mat_mul_tn_acc ~dst a b =
  if a.rows <> b.rows then invalid_arg "Mat.mat_mul_tn_acc: dims";
  if dst.rows <> a.cols || dst.cols <> b.cols then
    invalid_arg "Mat.mat_mul_tn_acc: dst";
  match plan_chunks ~rows:a.cols ~row_flops:(mat_mul_tn_row_flops a b) with
  | Some chunk ->
      Canopy_util.Pool.parallel_for_chunks ~chunk a.cols (fun ~lo ~hi ->
          mat_mul_tn_acc_range ~dst a b ~lo ~hi)
  | None -> mat_mul_tn_acc_range ~dst a b ~lo:0 ~hi:a.cols

let outer_acc m y x =
  if m.rows <> Array.length y || m.cols <> Array.length x then
    invalid_arg "Mat.outer_acc: dims";
  for i = 0 to m.rows - 1 do
    let yi = y.(i) in
    if yi <> 0. then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        m.data.(base + j) <- m.data.(base + j) +. (yi *. x.(j))
      done
    end
  done

let axpy ~alpha ~x ~y =
  check_same "axpy" x y;
  for i = 0 to Array.length x.data - 1 do
    y.data.(i) <- y.data.(i) +. (alpha *. x.data.(i))
  done

let add_row m v =
  if m.cols <> Array.length v then invalid_arg "Mat.add_row: dims";
  let d = m.data in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set d (base + j)
        (Array.unsafe_get d (base + j) +. Array.unsafe_get v j)
    done
  done

let col_sum_acc ~dst m =
  if m.cols <> Array.length dst then invalid_arg "Mat.col_sum_acc: dims";
  let d = m.data in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set dst j
        (Array.unsafe_get dst j +. Array.unsafe_get d (base + j))
    done
  done

let map_into ~dst f m =
  check_same "map_into" dst m;
  for i = 0 to Array.length m.data - 1 do
    dst.data.(i) <- f m.data.(i)
  done

let set_row m i v =
  if i < 0 || i >= m.rows then invalid_arg "Mat.set_row: index";
  if Array.length v <> m.cols then invalid_arg "Mat.set_row: dims";
  Array.blit v 0 m.data (i * m.cols) m.cols

let of_rows rows_a =
  let n = Array.length rows_a in
  if n = 0 then invalid_arg "Mat.of_rows: empty";
  let cols = Array.length rows_a.(0) in
  if cols = 0 then invalid_arg "Mat.of_rows: empty row";
  let m = create ~rows:n ~cols in
  for i = 0 to n - 1 do
    set_row m i rows_a.(i)
  done;
  m

let concat_cols a b =
  if a.rows <> b.rows then invalid_arg "Mat.concat_cols: rows";
  let out = create ~rows:a.rows ~cols:(a.cols + b.cols) in
  for i = 0 to a.rows - 1 do
    Array.blit a.data (i * a.cols) out.data (i * out.cols) a.cols;
    Array.blit b.data (i * b.cols) out.data ((i * out.cols) + a.cols) b.cols
  done;
  out

let cols_slice m ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > m.cols then
    invalid_arg "Mat.cols_slice: range";
  let out = create ~rows:m.rows ~cols:len in
  for i = 0 to m.rows - 1 do
    Array.blit m.data ((i * m.cols) + pos) out.data (i * len) len
  done;
  out

let sub_rows m ~lo ~hi =
  if lo < 0 || hi > m.rows || lo >= hi then invalid_arg "Mat.sub_rows: range";
  {
    rows = hi - lo;
    cols = m.cols;
    data = Array.sub m.data (lo * m.cols) ((hi - lo) * m.cols);
  }

(* A matrix over a scratch-arena buffer: same uninitialized-contents
   contract as [create_uninit], same ownership rules as [Scratch.get]
   (the returned matrix aliases the arena — it is a workspace, not a
   value to retain across further [get]s on the same slot). *)
let scratch_mat scratch ~slot ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.scratch_mat: dims";
  { rows; cols; data = Scratch.get scratch ~slot ~len:(rows * cols) }

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for i = 0 to Array.length a.data - 1 do
         if not (Canopy_util.Mathx.approx_equal ~eps a.data.(i) b.data.(i))
         then ok := false
       done;
       !ok
     end

let to_arrays m = Array.init m.rows (fun i -> row m i)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "%a@," Vec.pp (row m i)
  done;
  Format.fprintf ppf "@]"

let raw m = m.data

(* ------------------------------------------------------------------ *)
(* Grain calibration.

   The grain defaults above are placeholders. The first pool created
   with workers triggers a one-shot measurement (via the init hook
   registered below) of (a) sequential GEMM throughput and (b) the
   per-chunk hand-off cost of a live pool, then sets the grain so one
   chunk carries roughly 50× its hand-off cost and a region fans out
   only once it has several chunks' worth of work. Precedence: a manual
   [set_parallel_grain] and the [CANOPY_PAR_GRAIN] env knob (format
   "<min_flops>:<chunk_flops>") both pin the grain and disarm the
   measurement. Calibration runs on the pool-creating domain, outside
   any task, against the explicit pool handle (never [Pool.default],
   which may be mid-initialization). It only moves chunk boundaries and
   the parallel/sequential choice — both bit-invariant for every kernel
   in this module — so a noisy measurement can change speed, never
   results. *)

let () =
  match Sys.getenv_opt "CANOPY_PAR_GRAIN" with
  | None -> ()
  | Some s -> (
      let fail () =
        invalid_arg
          (Printf.sprintf
             "Mat: CANOPY_PAR_GRAIN must be <min_flops>:<chunk_flops>, got %S"
             s)
      in
      match String.split_on_char ':' (String.trim s) with
      | [ mf; cf ] -> (
          match (int_of_string_opt mf, int_of_string_opt cf) with
          | Some min_flops, Some chunk_flops
            when min_flops >= 0 && chunk_flops > 0 ->
              par_min_flops := min_flops;
              par_chunk_flops := chunk_flops;
              calibration_state :=
                {
                  !calibration_state with
                  source = "env";
                  min_flops;
                  chunk_flops;
                };
              calibrated := true
          | _ -> fail ())
      | _ -> fail ())

(* Nanoseconds per call of [f], over a window long enough to trust. *)
let timed_ns f =
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 2e-3 then dt *. 1e9 /. float_of_int reps else go (reps * 4)
  in
  go 1

let measure_grain pool =
  let m = 48 and k = 64 and n = 64 in
  let a =
    init ~rows:m ~cols:k (fun i j ->
        float_of_int (((i * 31) + j) mod 13) *. 0.1)
  in
  let b =
    init ~rows:n ~cols:k (fun i j ->
        float_of_int (((i * 17) + j) mod 11) *. 0.1)
  in
  let bias = Array.make n 0.5 in
  let dst = create_uninit ~rows:m ~cols:n in
  let gemm_ns =
    (* The direct range kernel: throughput must be sampled sequentially,
       not through the dispatcher being calibrated. *)
    timed_ns (fun () -> mat_mul_nt_bias_into_range ~dst a b bias ~lo:0 ~hi:m)
  in
  let flops_per_ns = float_of_int (2 * m * k * n) /. gemm_ns in
  let probe_chunks = 128 in
  let marks = Array.make probe_chunks 0 in
  let region_ns =
    timed_ns (fun () ->
        Canopy_util.Pool.parallel_for_chunks ~pool ~chunk:1 probe_chunks
          (fun ~lo ~hi:_ -> marks.(lo) <- marks.(lo) + 1))
  in
  ignore (Array.fold_left ( + ) 0 marks);
  let chunk_overhead_ns = region_ns /. float_of_int probe_chunks in
  (* Clamp in float space (NaN-safe) before converting, so the int is
     always in range whatever the timers returned. *)
  let target = chunk_overhead_ns *. 50. *. flops_per_ns in
  let target = if Float.is_nan target then 65_536. else target in
  let chunk_flops =
    int_of_float (Float.max 65_536. (Float.min 16_777_216. target))
  in
  let min_flops = max 262_144 (min 33_554_432 (4 * chunk_flops)) in
  par_chunk_flops := chunk_flops;
  par_min_flops := min_flops;
  calibration_state :=
    { source = "measured"; min_flops; chunk_flops; chunk_overhead_ns;
      flops_per_ns }

let () =
  Canopy_util.Pool.add_init_hook (fun pool ->
      if (not !calibrated) && Canopy_util.Pool.domains pool > 1 then begin
        calibrated := true;
        measure_grain pool
      end)
