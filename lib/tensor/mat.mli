(** Dense row-major float matrices.

    Backs the fully-connected layers of the neural controller and the
    linear abstract transformers (|M| propagation of box deviations,
    Section 3.2 of the paper). *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val create_uninit : rows:int -> cols:int -> t
(** Uninitialized matrix. Only for staging buffers whose every cell is
    overwritten before being read (e.g. the destinations of the [_into]
    kernels); reading a cell before writing it is unspecified. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
(** Rows must be non-empty and rectangular. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val fill : t -> float -> unit
val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t
val abs : t -> t
(** Element-wise absolute value (used by box-domain propagation). *)

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec m x] is [m * x]; requires [cols m = dim x]. *)

val mat_vec_into : dst:Vec.t -> t -> Vec.t -> unit

val mat_tvec : t -> Vec.t -> Vec.t
(** [mat_tvec m y] is [mᵀ * y]; requires [rows m = dim y]. *)

val mat_mul : t -> t -> t

val mat_mul_into : dst:t -> t -> t -> unit
(** [mat_mul_into ~dst a b] computes [dst <- a·b] into the preallocated
    [dst] ([a.rows × b.cols]) without allocating. *)

val mat_mul_nt : t -> t -> t
(** [mat_mul_nt a b] is [a·bᵀ] ([a.rows × b.rows]); requires
    [cols a = cols b]. The batched dense forward: for a [batch × in]
    activation matrix [x] and an [out × in] weight matrix [w],
    [mat_mul_nt x w] is the [batch × out] pre-activation, with each row
    bit-identical to [mat_vec w row]. *)

val mat_mul_nt_into : dst:t -> t -> t -> unit
(** Allocation-free {!mat_mul_nt} into [dst] ([a.rows × b.rows]). *)

val mat_mul_nt_bias : t -> t -> Vec.t -> t
(** [mat_mul_nt_bias a b bias] is [a·bᵀ] with [bias] (length [rows b])
    added to every row — the fused dense forward
    [x·wᵀ + b]. The bias seeds the accumulator instead of being added
    after the dot product, so results differ from
    {!mat_mul_nt}-then-{!add_row} by rounding only. *)

val mat_mul_nt_bias_into : dst:t -> t -> t -> Vec.t -> unit
(** Allocation-free {!mat_mul_nt_bias} into [dst] ([a.rows × b.rows]).
    With {!mat_mul_nt_into} these are the two kernels of the batched
    abstract-interpretation engine: centers go through the bias form,
    radii through the plain [r·|W|ᵀ] form. *)

val mat_mul_tn_acc : dst:t -> t -> t -> unit
(** [mat_mul_tn_acc ~dst a b] accumulates [dst <- dst + aᵀ·b]; requires
    [rows a = rows b] and [dst] of shape [a.cols × b.cols]. The batched
    weight-gradient kernel ([dw += doutᵀ·x]). Register-blocked: the
    per-sample outer products are folded four rows at a time, so it
    matches a row-ascending sequence of {!outer_acc} calls to rounding
    (≲1e-15 relative), not bit for bit. *)

(** {2 Parallel dispatch}

    {!mat_mul_into}, {!mat_mul_nt_into} / {!mat_mul_nt_bias_into} and
    {!mat_mul_tn_acc} fan large calls out over
    [Canopy_util.Pool.default ()] as row-range chunks. Chunk boundaries
    are a pure function of the matrix shapes and the grain settings
    below, each output row is written by exactly one chunk, and the
    per-row operation order equals the sequential kernel's — so results
    are bit-identical at every domain count (DESIGN §10). Calls made
    from inside a pool task, or below the flop threshold, take the
    sequential path. The knobs are process-global and not intended to
    be mutated concurrently with running kernels. *)

val set_parallel_enabled : bool -> unit
(** Master switch for the parallel GEMM paths (default on). With the
    switch off every call runs the sequential reference kernel. *)

val parallel_enabled : unit -> bool

val set_parallel_grain : min_flops:int -> chunk_flops:int -> unit
(** [set_parallel_grain ~min_flops ~chunk_flops] tunes the dispatch: a
    kernel call goes parallel only when its total flop count reaches
    [min_flops], and rows are grouped into chunks of roughly
    [chunk_flops] (rounded up to a multiple of 4 rows, preserving the
    register-block alignment). Pins the grain: the one-shot measured
    calibration (see {!calibration}) is disarmed. Raises
    [Invalid_argument] if [min_flops < 0] or [chunk_flops <= 0]. Mainly
    a test/bench hook. *)

val parallel_grain : unit -> int * int
(** Current [(min_flops, chunk_flops)]. *)

val plan_chunks : rows:int -> row_flops:int -> int option
(** The single chunk planner behind every pool consumer (this module's
    dispatchers, [Anet]/[Zonotope] box sweeps): [Some chunk] when a
    workload of [rows] rows at [row_flops] flops each should fan out
    over [Pool.default ()] in chunks of [chunk] rows (a multiple of 4),
    [None] for the sequential path — including when called from inside
    a pool task or when the pool has no workers. The decision and the
    chunk size depend only on the arguments and the process-global
    grain, never on the domain count. *)

type calibration = {
  source : string;
      (** ["default"] (built-in placeholder), ["env"] ([CANOPY_PAR_GRAIN]),
          ["measured"] (one-shot sampling at pool init), or ["manual"]
          ({!set_parallel_grain}). *)
  min_flops : int;
  chunk_flops : int;
  chunk_overhead_ns : float;  (** 0. unless [source = "measured"]. *)
  flops_per_ns : float;  (** 0. unless [source = "measured"]. *)
}

val calibration : unit -> calibration
(** How the current grain was chosen. The first pool created with
    workers triggers a one-shot measurement of sequential GEMM
    throughput and per-chunk hand-off cost, and sizes the grain from
    them — unless [CANOPY_PAR_GRAIN="<min_flops>:<chunk_flops>"] or
    {!set_parallel_grain} pinned it first. Calibration only moves chunk
    boundaries, which every kernel is bit-invariant to. The bench
    records this value in [BENCH_par.json]. *)

val outer_acc : t -> Vec.t -> Vec.t -> unit
(** [outer_acc m y x] accumulates the outer product [y xᵀ] into [m]
    ([m.(i).(j) += y.(i) * x.(j)]); used for weight gradients. *)

val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y <- alpha*x + y]. *)

val add_row : t -> Vec.t -> unit
(** [add_row m v] adds the row vector [v] to every row of [m] in place
    (bias broadcast); requires [cols m = dim v]. *)

val col_sum_acc : dst:Vec.t -> t -> unit
(** [col_sum_acc ~dst m] accumulates each column sum of [m] into [dst]
    ([dst.(j) += Σ_i m.(i).(j)]); the batched bias gradient. *)

val map_into : dst:t -> (float -> float) -> t -> unit
(** Element-wise map into a preallocated matrix of the same shape
    ([dst] and the source may be the same matrix). *)

val set_row : t -> int -> Vec.t -> unit
(** [set_row m i v] overwrites row [i] of [m] with [v] (blit). *)

val of_rows : Vec.t array -> t
(** Pack an array of equal-length rows into a fresh [n × dim] matrix.
    Like {!of_arrays} but blit-based; rows must be non-empty. *)

val concat_cols : t -> t -> t
(** [concat_cols a b] is the horizontal concatenation [a | b]; requires
    equal row counts. Used to build [(state | action)] critic inputs. *)

val cols_slice : t -> pos:int -> len:int -> t
(** [cols_slice m ~pos ~len] copies columns [pos..pos+len-1] into a fresh
    matrix (e.g. the action block of a critic input gradient). *)

val sub_rows : t -> lo:int -> hi:int -> t
(** [sub_rows m ~lo ~hi] copies rows [lo..hi-1] into a fresh
    [(hi-lo) × cols] matrix (e.g. one shard of a training batch).
    Raises [Invalid_argument] unless [0 <= lo < hi <= rows m]. *)

val scratch_mat : Canopy_util.Scratch.t -> slot:int -> rows:int -> cols:int -> t
(** A matrix over a scratch-arena buffer: the data array is
    [Scratch.get scratch ~slot ~len:(rows*cols)], so contents are
    unspecified (as {!create_uninit}) and the matrix aliases the arena —
    a workspace to fully overwrite and consume before the next [get] on
    the same slot, never a value to retain. *)

val mat_mul_row_flops : t -> t -> int
(** Flops per output row of [mat_mul a b]. The kernels own their cost
    model: call sites planning chunks must use these instead of
    restating the formulas. *)

val mat_mul_nt_row_flops : t -> t -> int
(** Flops per output row of [mat_mul_nt a b] (bias form included). *)

val mat_mul_tn_row_flops : t -> t -> int
(** Flops per output ([dst]) row of [mat_mul_tn_acc ~dst a b]. *)

val frobenius : t -> float
val approx_equal : ?eps:float -> t -> t -> bool
val to_arrays : t -> float array array

val raw : t -> float array
(** The underlying row-major storage, shared with the matrix. Mutating it
    mutates the matrix; exposed so optimizers can update parameters and
    their gradients uniformly as flat arrays. *)

val pp : Format.formatter -> t -> unit
