(** Certificate-in-the-loop training (Sections 4.4–4.5 and 5).

    Wraps the TD3 learner in a loop that, at every environment step,
    builds a certificate for the current policy (Section 4.3) and mixes
    the resulting verifier reward into the raw Orca reward per Eq. 11:
    [r = (1−λ)·R + λ·R_verifier]. λ = 0 recovers plain Orca training
    (the verifier still runs so its reward can be reported, as in the
    paper's Fig. 14 comparison).

    Training runs against a pool of stable-bandwidth links sampled from
    the Table-2 ranges, stepping the environments round-robin — the
    sequential stand-in for the paper's 256 distributed actors. *)

type config = {
  seed : int;
  lambda : float;  (** verifier-reward weight, in [0,1] *)
  property : Property.t;
  engine : Certify.engine;  (** abstract-interpretation engine for the
      in-loop certificates (default [Batched]) *)
  n_components : int;  (** certificate slices during training (N) *)
  history : int;  (** k observation frames per state *)
  hidden : int;  (** actor/critic hidden width *)
  total_steps : int;  (** environment interactions *)
  updates_per_step : int;  (** TD3 gradient steps per interaction *)
  envs : Canopy_orca.Agent_env.config list;  (** training pool *)
  log_every : int;  (** steps per reported epoch *)
}

val default_config :
  ?seed:int ->
  ?lambda:float ->
  ?property:Property.t ->
  ?engine:Certify.engine ->
  ?n_components:int ->
  ?total_steps:int ->
  envs:Canopy_orca.Agent_env.config list ->
  unit ->
  config
(** λ = 0.25, performance property, N = 5, history 5, hidden 64,
    1 update/step, 4000 steps, log every 100. *)

val env_pool :
  ?n:int ->
  ?bw_range_mbps:float * float ->
  ?rtt_range_ms:int * int ->
  ?duration_ms:int ->
  ?history:int ->
  seed:int ->
  unit ->
  Canopy_orca.Agent_env.config list
(** Stable-bandwidth training links per Table 2: [n] (default 8) links
    with bandwidth and minRTT sampled by stratified jitter from the given
    ranges (defaults 6–192 Mbps, 10–200 ms) and buffers of 2 BDP. Env [i]
    draws both parameters from the [i]-th of [n] equal strata using a
    PRNG derived from [(seed, i)], so coverage is even but different
    seeds give different pools; the seed appears in each trace name. *)

type epoch = {
  epoch : int;
  steps : int;  (** cumulative environment steps *)
  raw_reward : float;  (** mean raw reward over the epoch *)
  verifier_reward : float;  (** mean R_verifier over the epoch *)
  combined_reward : float;  (** mean Eq. 11 reward *)
  fcc : float;  (** mean fraction of certified components *)
  rollbacks : int;
      (** cumulative divergence rollbacks up to this epoch (0 when the
          watchdog is off) *)
}

val config_fingerprint : config -> string
(** Canonical digest (CRC-32 hex) of every configuration field that
    shapes a training trajectory, including the env pool. Stored in
    snapshots and verified on resume. *)

val train :
  ?on_epoch:(epoch -> unit) ->
  ?snapshot_every:int ->
  ?snapshot_path:string ->
  ?resume:string ->
  ?fault_hook:(step:int -> Canopy_rl.Td3.t -> unit) ->
  config ->
  Canopy_rl.Td3.t * epoch list
(** Run the full loop; returns the trained agent and the per-epoch
    training curve (Fig. 14). The freshly initialized actor is validated
    with {!Canopy_analysis.Netcheck} before the first step; raises
    [Invalid_argument] if it fails.

    [snapshot_every] (steps; must be positive) turns on the crash-safety
    machinery: an in-memory snapshot of the complete training state is
    captured at every boundary, and a divergence watchdog probes
    parameter finiteness after every update (full netcheck at
    boundaries). On a fault it rolls the agent, accumulators and curve
    back to the last good snapshot, decorrelates the exploration stream
    ({!Canopy_rl.Td3.reseed}), rebuilds the env pool and continues,
    counting the event in {!type-epoch.rollbacks}; more than 10
    consecutive faults without reaching the next boundary raise
    [Failure]. With the watchdog on, the env pool is re-derived from
    config at each boundary so that an interrupted-and-resumed run is
    bit-identical to an uninterrupted one; a given [config] therefore
    has one deterministic trajectory per [snapshot_every] setting (and
    the watchdog-off trajectory is unchanged from previous releases).

    [snapshot_path] additionally persists each boundary snapshot as an
    atomic [canopy-train v2] checkpoint. [resume] restores one:
    training continues from its recorded step with identical results to
    a run that was never interrupted ([on_epoch] re-fires only for
    epochs after the resume point — and may re-fire for an epoch
    re-crossed after a rollback). Raises [Failure] if the file is
    corrupt or its config fingerprint does not match [config]. Both
    options require [snapshot_every].

    [fault_hook] runs after the gradient updates of every step (fault
    injection for tests and the faultcheck harness). *)

val save_actor : Canopy_rl.Td3.t -> string -> unit

val load_actor : string -> Canopy_nn.Mlp.t
(** Load an actor from either a [canopy-mlp v1] checkpoint or the actor
    section of a [canopy-train v2] snapshot, and validate it with
    {!Canopy_analysis.Netcheck} (shape chaining, parameter finiteness,
    batch-norm statistics) before returning it. Raises [Failure] on a
    corrupt file and [Invalid_argument] on a checkpoint that fails
    validation. *)

val save_curve : epoch list -> string -> unit
(** Write a training curve as CSV (epoch, steps, raw, verifier, combined,
    fcc, rollbacks), atomically. *)

val load_curve : string -> epoch list
(** Strict parser: raises [Failure] naming the file and line on any
    malformed row, so a torn curve file cannot masquerade as a short
    run. Accepts 6-column files from before the [rollbacks] column
    (read as [rollbacks = 0]). *)

val load_or_train :
  ?on_epoch:(epoch -> unit) ->
  cache_dir:string ->
  tag:string ->
  config ->
  Canopy_nn.Mlp.t * epoch list
(** Train once and cache the resulting actor and training curve under
    [cache_dir/tag] (directories created recursively); subsequent calls
    with the same tag reload both instead of retraining. A cached actor
    whose curve file is missing logs a warning and returns an empty
    curve rather than silently pretending the run produced no epochs. *)
