(** Evaluation harness for Section 6: run learned policies and TCP
    baselines over the trace suite, computing both the certified metrics
    (FCC, FCS — Section 6.1) and the empirical ones (utilization, average
    and p95 queueing delay, loss). *)

type result = {
  scheme : string;
  trace : string;
  utilization : float;
  avg_thr_mbps : float;
  avg_qdelay_ms : float;
  p95_qdelay_ms : float;
  loss_rate : float;
  fcc : float option;  (** mean fraction of certified components per step *)
  fcs : float option;  (** fraction of steps with a fully-satisfied certificate *)
  refuted : float option;
      (** among uncertified components across the run, the fraction with a
          concrete counterexample ([Some 0.] when every component was
          certified); [None] unless refutation was requested *)
}

val pp_result : Format.formatter -> result -> unit

type step_record = {
  t_ms : int;
  action : float;
  cwnd_tcp : float;
  cwnd_enforced : float;
  thr_mbps : float;
  qdelay_ms : float;
  delay_norm : float;  (** normalized delay of the newest frame (1−invRTT) *)
  raw_reward : float;
  certificate : Certify.t option;
}
(** Per-monitoring-step trajectory sample (Figs. 1, 2, 7, 9). *)

type link = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;
  bdp_multiplier : float;  (** buffer size in BDPs *)
  duration_ms : int;
}

val link : ?min_rtt_ms:int -> ?bdp:float -> ?duration_ms:int ->
  Canopy_trace.Trace.t -> link
(** Defaults: minRTT 40 ms, 2 BDP, trace duration. *)

val eval_policy :
  ?name:string ->
  ?noise:int * float ->
  ?engine:Certify.engine ->
  ?certificate:Property.t * int ->
  ?refute_seed:int ->
  ?refute_rng:Canopy_util.Prng.t ->
  ?shield:Shield.t ->
  ?impairments:Canopy_netsim.Env.impairments ->
  ?collect_steps:bool ->
  policy:Policy.t ->
  history:int ->
  link ->
  result * step_record list
(** Run the deterministic policy — the MLP actor or its distilled tree
    ([`Mlp] / [`Tree], see {!Policy}) — over the link. [noise (seed, mu)]
    perturbs the observed queueing delay as in Section 6.3;
    [certificate (property, n)] computes an n-component certificate at
    every step (the paper uses n = 50 for evaluation) on the chosen
    [engine] (default the batched verifier-IR engine); [refute_seed]
    additionally runs {!Certify.refute} over every uncertified component,
    threading one PRNG through the whole run, and reports the refuted
    fraction in [result.refuted] ([refute_rng] passes that stream
    directly and wins over [refute_seed] — parallel sweeps hand each
    task a [Prng.split] child derived by task index); [shield] projects
    each action through a runtime {!Shield} before it is applied;
    [impairments] applies link pathologies (random loss, ACK jitter,
    reordering — the adversarial scenario engine's knobs) to the run,
    default none; [collect_steps] returns the per-step trajectory (with
    certificates when enabled).

    Certificates dispatch on the policy kind: [`Mlp] runs the abstract
    engine ({!Certify.certify}), [`Tree] the exact per-leaf bounds
    ({!Certify.certify_tree}).  Refutation only applies to [`Mlp] —
    tree certificates carry no abstraction slack to refute — so
    [result.refuted] is [None] for trees. *)

val eval_tcp :
  name:string -> (unit -> Canopy_cc.Controller.t) -> link -> result

val run_tasks :
  ?pool:Canopy_util.Pool.t -> (unit -> result) list -> result list
(** [run_tasks tasks] evaluates independent sweep cells in parallel on
    the given (default ambient) pool, returning results in task order.
    Each task must own its state — environments are built per task, and
    any per-task PRNG must be split from the master stream by task index
    {i before} calling this — which makes the sweep bit-identical to a
    sequential [List.map] at every domain count. *)

val cubic_scheme : unit -> Canopy_cc.Controller.t
val vegas_scheme : unit -> Canopy_cc.Controller.t
val bbr_scheme : unit -> Canopy_cc.Controller.t
val vivace_scheme : unit -> Canopy_cc.Controller.t

val mean_results : string -> result list -> result
(** Aggregate (arithmetic mean of every metric) over a list of per-trace
    results, e.g. all synthetic traces. The [string] names the group.
    Raises [Invalid_argument] on an empty list. *)

type coexist_spec =
  | Coexist_canopy of Policy.t
      (** a Canopy flow served by this policy (Cubic backbone, Eq. 1
          override at every decision tick) *)
  | Coexist_tcp of string * (unit -> Canopy_cc.Controller.t)
      (** a classical flow, e.g. [("cubic", cubic_scheme)] *)

type coexist_flow = {
  scheme : string;
  throughput_mbps : float;
  avg_qdelay_ms : float;
  loss_rate : float;
  share : float;  (** fraction of total delivered packets *)
}

type coexist_result = {
  trace : string;
  duration_ms : int;
  interval_ms : int;
  flows : coexist_flow array;  (** in the order the specs were given *)
  jain : float;  (** Jain's index over per-flow delivered counts *)
  utilization : float;
}

val pp_coexist : Format.formatter -> coexist_result -> unit

val eval_coexist :
  ?history:int ->
  ?interval_ms:int ->
  ?arrivals:int array ->
  flows:coexist_spec list ->
  link ->
  coexist_result
(** Run a mix of Canopy and classical flows contending on one shared
    [Multiflow] bottleneck and report per-flow throughput/delay/loss
    plus Jain's fairness index — the Canopy-vs-Cubic/BBR coexistence
    experiment. Canopy flows keep the full [Agent_env] machinery
    (Cubic backbone refreshed every millisecond, monitor observation
    and feature-history push per interval) and are all served from a
    single batched {!Policy.predict_rows_into} pass per decision tick
    per distinct underlying model. [arrivals.(i)] delays flow [i]'s first transmission
    (staggered competing-flow arrivals; default all flows start at 0).
    Defaults: [history] 5 frames, [interval_ms] =
    [max 20 link.min_rtt_ms] (the [Agent_env] cadence). *)

type noise_delta = {
  scheme : string;
  d_avg_qdelay_pct : float;
  d_p95_qdelay_pct : float;
  d_utilization_pct : float;
}
(** Percentage change of each metric when noise is added (Fig. 12). *)

val noise_delta : clean:result -> noisy:result -> noise_delta
