(** Batched policy serving over a fleet of links: one batched
    {!Policy.predict_rows_into} pass decides every flow's action each
    tick, with all serving matrices allocated once up front. *)

type flow_result = {
  throughput_mbps : float;
  avg_qdelay_ms : float;
  loss_rate : float;
  utilization : float;
  avg_reward : float;
}

type result = {
  flows : int;
  duration_ms : int;  (** simulated time actually run *)
  decision_ticks : int;
  jain : float;  (** Jain's index over per-flow throughput *)
  mean_utilization : float;
  mean_qdelay_ms : float;
  per_flow : flow_result array;
}

val serve :
  ?on_tick:
    (tick:int ->
    actions:float array ->
    result:Canopy_orca.Fleet_env.step_result ->
    unit) ->
  policy:Policy.t ->
  Canopy_orca.Fleet_env.t ->
  result
(** Drive the fleet env to episode end under [policy] (MLP actor or
    distilled tree). Each decision
    tick assembles every flow's state into one [flows × state_dim]
    matrix ([Fleet_env.write_states]), runs exactly one batched forward,
    clamps the raw outputs into [[-1,1]] and steps the whole fleet.
    [on_tick] observes each tick's actions and step result (e.g. to
    record trajectories); the arrays it receives are reused across
    ticks and must be copied if retained. Requires
    [Policy.in_dim policy = state_dim] and [out_dim = 1]. *)

val run :
  ?on_tick:
    (tick:int ->
    actions:float array ->
    result:Canopy_orca.Fleet_env.step_result ->
    unit) ->
  policy:Policy.t ->
  Canopy_orca.Agent_env.config array ->
  result
(** [serve] over a freshly created [Fleet_env]. *)
