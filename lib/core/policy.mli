(** Serving policy: the one dispatch point shared by scalar ([Eval]) and
    fleet ([Fleet_eval]) serving, so the two paths cannot drift.

    A policy is either the trained MLP actor or its distilled
    piecewise-affine tree ([Canopy_distill.Tree]).  Both produce a raw
    scalar action per observation row; callers clamp to [\[-1, 1\]]
    identically for both kinds. *)

type t = [ `Mlp of Canopy_nn.Mlp.t | `Tree of Canopy_distill.Tree.t ]

val in_dim : t -> int
val out_dim : t -> int

val kind : t -> string
(** ["mlp"] or ["tree"] — for labels and reports. *)

val generation : t -> int
(** Underlying model's generation stamp (cache key component). *)

val predict_rows_into :
  dst:Canopy_tensor.Mat.t -> t -> Canopy_tensor.Mat.t -> unit
(** Batched inference: row [i] of [dst] ([rows x out_dim]) receives the raw
    (unclamped) action for row [i] of the input.  Dispatches to
    [Mlp.forward_eval_into] or [Tree.predict_rows_into]; both are
    bit-identical across batch shapes and domain counts. *)

val predict_row : t -> float array -> float
(** Scalar convenience used by shields and probes: the raw action for one
    observation row.  For MLPs this is [Mlp.forward]; bit-identical to the
    batched path's row result for both kinds. *)
