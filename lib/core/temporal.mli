(** Bounded-horizon temporal verification — the Section-8 "richer
    properties" direction.

    The paper's per-step properties constrain one decision at a time;
    temporal properties regulate {e sequences} of decisions, which
    requires a model of how the environment evolves between steps. This
    module verifies properties of the form

    {e "if the normalized queueing delay stays inside the case's region
    for the next [horizon] monitoring steps, the congestion window never
    rises above (large-delay case) / falls below (small-delay case) its
    starting value at any of those steps"}

    by abstractly unrolling the closed loop: at each future step the
    agent state is shifted by one frame whose delay dimension carries the
    case's whole precondition interval, the policy is propagated with the
    chosen abstract domain, the window is pushed through Eq. 1, and the
    backbone suggestion evolves inside an {e interval environment model}
    ([cwnd_tcp] drifts by at most a relative [cwnd_tcp_drift] per step;
    the non-delay features wander by at most [feature_slack] per step
    around their last observed values).

    The result is sound {e relative to the environment model}: any
    concrete trajectory whose backbone drift and feature wander stay
    within the stated bounds is covered by the per-step intervals. *)

open Canopy_nn
open Canopy_absint

type env_model = {
  cwnd_tcp_drift : float;
      (** per-step relative bound on the backbone's window adjustment
          between monitoring steps (Cubic moves slowly at this timescale) *)
  feature_slack : float;
      (** per-step absolute wander allowed on each non-delay feature *)
}

val default_env_model : env_model
(** drift 0.1, slack 0.05. *)

type step_bound = {
  step : int;  (** 1-based future step index *)
  action : Interval.t;  (** abstract action at that step *)
  cwnd : Interval.t;  (** abstract enforced window *)
  delta_vs_start : Interval.t;  (** cwnd − starting window *)
  distance : float;  (** Eq.-7 distance of [delta_vs_start] vs the target *)
  certified : bool;
}

type t = {
  case : Property.case;
  horizon : int;
  steps : step_bound list;  (** one bound per future step, in order *)
  certified : bool;  (** all steps certified *)
  r_verifier : float;  (** mean per-step distance (a smooth signal) *)
}

val verify :
  ?env_model:env_model ->
  ?engine:Certify.engine ->
  ?domain:Certify.domain ->
  actor:Mlp.t ->
  property:Property.t ->
  case:Property.case ->
  horizon:int ->
  history:int ->
  state:float array ->
  cwnd_tcp:float ->
  unit ->
  t
(** Raises [Invalid_argument] for a robustness property or the [Noise]
    case (temporal unrolling is defined for the performance cases), for
    [horizon <= 0], or on dimension mismatches. *)

val pp : Format.formatter -> t -> unit
