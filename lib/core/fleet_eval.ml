(* Batched policy serving over a [Canopy_orca.Fleet_env]: the decision
   loop that turns N per-flow inferences per tick into one
   [flows × state_dim] matrix assembly and exactly one batched
   [Policy.predict_rows_into] pass (a GEMM for the MLP, a pool-chunked
   compare chain for the distilled tree). The matrices are allocated
   once; a steady-state tick allocates nothing on the serving path. *)

module Fleet = Canopy_netsim.Fleet
module Fleet_env = Canopy_orca.Fleet_env
module Mat = Canopy_tensor.Mat
module Stats = Canopy_util.Stats

type flow_result = {
  throughput_mbps : float;
  avg_qdelay_ms : float;
  loss_rate : float;
  utilization : float;
  avg_reward : float;
}

type result = {
  flows : int;
  duration_ms : int;
  decision_ticks : int;
  jain : float;
  mean_utilization : float;
  mean_qdelay_ms : float;
  per_flow : flow_result array;
}

let clamp_action = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

let serve ?on_tick ~policy env =
  let n = Fleet_env.flows env in
  let sd = Fleet_env.state_dim env in
  if Policy.in_dim policy <> sd then
    invalid_arg "Fleet_eval.serve: policy in_dim";
  if Policy.out_dim policy <> 1 then
    invalid_arg "Fleet_eval.serve: policy out_dim";
  let x = Mat.create ~rows:n ~cols:sd in
  let y = Mat.create_uninit ~rows:n ~cols:1 in
  let actions = Array.make n 0. in
  let reward_sum = Array.make n 0. in
  let ticks = ref 0 in
  let finished = ref (Fleet_env.finished env) in
  while not !finished do
    Fleet_env.write_states env ~dst:x;
    (* The whole fleet's decisions in one batched pass. *)
    Policy.predict_rows_into ~dst:y policy x;
    let raw = Mat.raw y in
    for i = 0 to n - 1 do
      actions.(i) <- clamp_action raw.(i)
    done;
    let r = Fleet_env.step env ~actions in
    for i = 0 to n - 1 do
      reward_sum.(i) <- reward_sum.(i) +. r.Fleet_env.rewards.(i)
    done;
    incr ticks;
    (match on_tick with
    | Some f -> f ~tick:(!ticks - 1) ~actions ~result:r
    | None -> ());
    finished := r.Fleet_env.finished
  done;
  let fleet = Fleet_env.fleet env in
  let nt = float_of_int (max 1 !ticks) in
  let per_flow =
    Array.init n (fun i ->
        {
          throughput_mbps = Fleet.throughput_mbps fleet ~flow:i;
          avg_qdelay_ms = Fleet.avg_qdelay_ms fleet ~flow:i;
          loss_rate = Fleet.loss_rate fleet ~flow:i;
          utilization = Fleet.utilization fleet ~flow:i;
          avg_reward = reward_sum.(i) /. nt;
        })
  in
  {
    flows = n;
    duration_ms = Fleet.now_ms fleet;
    decision_ticks = !ticks;
    jain = Stats.jain_index (Array.map (fun f -> f.throughput_mbps) per_flow);
    mean_utilization = Stats.mean (Array.map (fun f -> f.utilization) per_flow);
    mean_qdelay_ms = Stats.mean (Array.map (fun f -> f.avg_qdelay_ms) per_flow);
    per_flow;
  }

let run ?on_tick ~policy cfgs =
  serve ?on_tick ~policy (Fleet_env.create cfgs)
