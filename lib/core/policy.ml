module Mlp = Canopy_nn.Mlp
module Tree = Canopy_distill.Tree

type t = [ `Mlp of Mlp.t | `Tree of Tree.t ]

let in_dim = function
  | `Mlp m -> Mlp.in_dim m
  | `Tree tr -> Tree.in_dim tr

let out_dim = function
  | `Mlp m -> Mlp.out_dim m
  | `Tree tr -> Tree.out_dim tr

let kind = function `Mlp _ -> "mlp" | `Tree _ -> "tree"

let generation = function
  | `Mlp m -> Mlp.generation m
  | `Tree tr -> Tree.generation tr

let predict_rows_into ~dst policy x =
  match policy with
  | `Mlp m -> Mlp.forward_eval_into ~dst m x
  | `Tree tr -> Tree.predict_rows_into ~dst tr x

let predict_row policy row =
  match policy with
  | `Mlp m -> (Mlp.forward m row).(0)
  | `Tree tr -> Tree.predict tr row
