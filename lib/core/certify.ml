open Canopy_nn
open Canopy_absint
module Observation = Canopy_orca.Observation
module Agent_env = Canopy_orca.Agent_env

type domain = Box_domain | Zonotope_domain
type engine = Batched | Per_slice

type component = {
  case : Property.case;
  index : int;
  slice : Interval.t;
  action : Interval.t;
  output : Interval.t;
  target : Interval.t;
  distance : float;
  certified : bool;
}

type t = {
  property : Property.t;
  components : component array;
  per_case_distance : (Property.case * float) list;
  r_verifier : float;
  fcc : float;
  fcs : bool;
}

let delay_indices ~history =
  List.init history (fun frame ->
      (frame * Observation.feature_count) + Observation.delay_index)

(* Abstract image of the window under Eq. 1 for an abstract action: the
   map a ↦ clamp(2^{2a}·CWND_TCP) is monotone non-decreasing in a. *)
let cwnd_interval ~cwnd_tcp action =
  Interval.monotone
    (fun a -> Agent_env.cwnd_of_action ~action:a ~cwnd_tcp)
    action

(* The single domain/engine dispatch of the certification stack: certify,
   certify_adaptive and Temporal.verify all obtain abstract action bounds
   here, so a new domain (or engine) is added in exactly one place. *)
let output_intervals ?(engine = Batched) ~domain ~actor boxes =
  match engine with
  | Per_slice ->
      (* The pre-IR reference: one layer-by-layer propagation per box. *)
      Array.map
        (fun box ->
          match domain with
          | Box_domain -> Ibp.output_interval actor box
          | Zonotope_domain -> Zonotope.output_interval actor box)
        boxes
  | Batched ->
      let ir = Anet.cached actor in
      (match domain with
      | Box_domain -> Anet.output_intervals ir boxes
      | Zonotope_domain -> Zonotope.output_intervals_anet ir boxes)

let output_interval ?engine ~domain ~actor box =
  (output_intervals ?engine ~domain ~actor [| box |]).(0)

let target_of_case property case =
  match (property, case) with
  | _, Property.Large_delay -> Interval.make Float.neg_infinity 0.
  | _, Property.Small_delay -> Interval.make 0. Float.infinity
  | Property.Robustness { epsilon; _ }, Property.Noise ->
      Interval.make (-.epsilon) epsilon
  | Property.Performance _, Property.Noise ->
      invalid_arg "Certify.target_of_case"

(* Model-independent part of a step-certificate context: everything the
   box construction and the CWND postcondition check need.  The
   model-specific part (MLP + abstract engine, or distilled tree) only
   supplies abstract action intervals per box. *)
type step_ctx = {
  property : Property.t;
  history : int;
  state : float array;
  cwnd_tcp : float;
  prev_cwnd : float;
  cwnd_concrete : float; (* the unperturbed decision, for robustness *)
}

(* The full evaluation context of an MLP step certificate. *)
type ctx = { engine : engine; domain : domain; actor : Mlp.t; step : step_ctx }

(* Abstract input for one component: substitute the slice (performance)
   or its multiplicative image (robustness) into each delay dimension of
   the concrete state. *)
let box_of_slice step case slice =
  let iv_of_observed =
    match case with
    | Property.Large_delay | Property.Small_delay -> fun _ -> slice
    | Property.Noise -> fun observed -> Interval.scale observed slice
  in
  let box = ref (Box.of_point step.state) in
  List.iter
    (fun idx ->
      box := Box.with_dimension !box idx (iv_of_observed step.state.(idx)))
    (delay_indices ~history:step.history);
  !box

(* Finish a component from its abstract action: push through the CWND map
   of Eq. 1 and compare against the postcondition (Eq. 7). *)
let finish_component step case index slice action =
  let target = target_of_case step.property case in
  let cwnd = cwnd_interval ~cwnd_tcp:step.cwnd_tcp action in
  let output =
    match case with
    | Property.Large_delay | Property.Small_delay ->
        Interval.add_scalar (-.step.prev_cwnd) cwnd
    | Property.Noise ->
        Interval.div_scalar
          (Interval.add_scalar (-.step.cwnd_concrete) cwnd)
          step.cwnd_concrete
  in
  let distance = Interval.overlap_fraction ~target output in
  {
    case;
    index;
    slice;
    action;
    output;
    target;
    distance;
    certified = distance >= 1.;
  }

(* Evaluate a workload of (case, index, slice) jobs in one engine call:
   with the batched engine, every slice of every case goes through the
   network together. *)
let components_of_jobs ctx jobs =
  let boxes =
    Array.of_list
      (List.map (fun (case, _, slice) -> box_of_slice ctx.step case slice) jobs)
  in
  let actions =
    output_intervals ~engine:ctx.engine ~domain:ctx.domain ~actor:ctx.actor
      boxes
  in
  List.mapi
    (fun k (case, index, slice) ->
      finish_component ctx.step case index slice actions.(k))
    jobs

let make_step_ctx ~property ~history ~state ~cwnd_tcp ~prev_cwnd
    ~concrete_action =
  {
    property;
    history;
    state;
    cwnd_tcp;
    prev_cwnd;
    cwnd_concrete = Agent_env.cwnd_of_action ~action:concrete_action ~cwnd_tcp;
  }

let make_ctx ~engine ~domain ~actor ~property ~history ~state ~cwnd_tcp
    ~prev_cwnd =
  let concrete_action =
    Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. (Mlp.forward actor state).(0)
  in
  {
    engine;
    domain;
    actor;
    step =
      make_step_ctx ~property ~history ~state ~cwnd_tcp ~prev_cwnd
        ~concrete_action;
  }

let validate ?(what = "Certify.certify") ~n_components ~history ~state ~in_dim
    () =
  if n_components <= 0 then invalid_arg (what ^ ": n_components");
  if history <= 0 then invalid_arg (what ^ ": history");
  if Array.length state <> history * Observation.feature_count then
    invalid_arg (what ^ ": state dimension");
  if in_dim <> Array.length state then
    invalid_arg (what ^ ": model input dimension")

let summarize property components =
  let components = Array.of_list components in
  let per_case_distance =
    List.map
      (fun case ->
        let ds =
          Array.to_list components
          |> List.filter_map (fun c ->
                 if c.case = case then Some c.distance else None)
        in
        let mean =
          Canopy_util.Mathx.fsum_list ds /. float_of_int (List.length ds)
        in
        (case, mean))
      (Property.cases property)
  in
  (* Eq. 8: average the per-case distances. *)
  let r_verifier =
    let ds = List.map snd per_case_distance in
    Canopy_util.Mathx.fsum_list ds /. float_of_int (List.length ds)
  in
  let certified_count =
    Array.fold_left (fun n c -> if c.certified then n + 1 else n) 0 components
  in
  {
    property;
    components;
    per_case_distance;
    r_verifier;
    fcc =
      float_of_int certified_count /. float_of_int (Array.length components);
    fcs = certified_count = Array.length components;
  }

let jobs_of_property property n_components =
  List.concat_map
    (fun case ->
      let precondition = Property.precondition_delay property case in
      List.mapi
        (fun index slice -> (case, index, slice))
        (Interval.split precondition n_components))
    (Property.cases property)

let certify ?(engine = Batched) ?(domain = Box_domain) ~actor ~property
    ~n_components ~history ~state ~cwnd_tcp ~prev_cwnd () =
  validate ~n_components ~history ~state ~in_dim:(Mlp.in_dim actor) ();
  let ctx =
    make_ctx ~engine ~domain ~actor ~property ~history ~state ~cwnd_tcp
      ~prev_cwnd
  in
  summarize property (components_of_jobs ctx (jobs_of_property property n_components))

(* Certification of the distilled piecewise-affine tree.  No abstract
   engine is involved: every leaf region is an axis-aligned box and its
   model one affine stage, so intersecting the component's input box with
   each leaf cell and bounding the affine model per term gives the exact
   hull of reachable outputs ([Tree.output_interval ~exact:true]) — the
   verifier distance is exact, not conservative.  [~conservative:true]
   instead bounds every leaf over the whole input box (what a
   structure-blind interval engine would compute), for side-by-side
   comparison; the exact action interval is always a subset of the
   conservative one, so exact certified rates dominate.  The abstract
   action is clamped to [-1, 1] exactly as the serving path clamps the
   concrete prediction. *)
let certify_tree ?(conservative = false) ~tree ~property ~n_components ~history
    ~state ~cwnd_tcp ~prev_cwnd () =
  validate ~what:"Certify.certify_tree" ~n_components ~history ~state
    ~in_dim:(Canopy_distill.Tree.in_dim tree)
    ();
  let clamp = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. in
  let step =
    make_step_ctx ~property ~history ~state ~cwnd_tcp ~prev_cwnd
      ~concrete_action:(clamp (Canopy_distill.Tree.predict tree state))
  in
  let components =
    List.map
      (fun (case, index, slice) ->
        let box = Box.to_intervals (box_of_slice step case slice) in
        let raw =
          Canopy_distill.Tree.output_interval ~exact:(not conservative) tree
            box
        in
        finish_component step case index slice (Interval.monotone clamp raw))
      (jobs_of_property property n_components)
  in
  summarize property components

(* Adaptive subdivision (Section 8, future work (ii)): start from a
   coarse split and keep bisecting only the undecided components — the
   ones whose distance is strictly between 0 and 1 and may therefore be
   suffering from over-approximation. Components proved (D = 1) or
   concretely refuted on their midpoint are left alone.

   Refinement proceeds in rounds so each round's open slices — across
   every case — are evaluated in one engine call. Slots keep their
   position (a split replaces its slot with the two ordered halves), so
   the final components come out in slice order per case, exactly as the
   depth-first reference did. *)
type slot = Final of component | Open of Property.case * Interval.t

let reindex components =
  let counters = ref [] in
  List.map
    (fun c ->
      let n = try List.assoc c.case !counters with Not_found -> 0 in
      counters := (c.case, n + 1) :: List.remove_assoc c.case !counters;
      { c with index = n })
    components

let certify_adaptive ?(engine = Batched) ?(domain = Box_domain)
    ?(initial_components = 2) ~actor ~property ~max_components ~history
    ~state ~cwnd_tcp ~prev_cwnd () =
  validate ~n_components:initial_components ~history ~state
    ~in_dim:(Mlp.in_dim actor) ();
  if max_components < initial_components then
    invalid_arg "Certify.certify_adaptive: max_components";
  let ctx =
    make_ctx ~engine ~domain ~actor ~property ~history ~state ~cwnd_tcp
      ~prev_cwnd
  in
  let budgets =
    List.map (fun case -> (case, ref max_components)) (Property.cases property)
  in
  let undecided c = c.distance > 0. && c.distance < 1. in
  let rec refine slots =
    let jobs =
      List.filter_map
        (function Open (case, slice) -> Some (case, 0, slice) | Final _ -> None)
        slots
    in
    if jobs = [] then
      List.map (function Final c -> c | Open _ -> assert false) slots
    else begin
      let fresh = ref (components_of_jobs ctx jobs) in
      let next =
        List.concat_map
          (function
            | Final c -> [ Final c ]
            | Open (case, slice) ->
                let c =
                  match !fresh with
                  | c :: tl ->
                      fresh := tl;
                      c
                  | [] -> assert false
                in
                let budget = List.assoc case budgets in
                if undecided c && !budget > 0 && Interval.width slice > 1e-4
                then begin
                  decr budget;
                  List.map
                    (fun half -> Open (case, half))
                    (Interval.split slice 2)
                end
                else [ Final c ])
          slots
      in
      refine next
    end
  in
  let slots =
    List.concat_map
      (fun case ->
        let precondition = Property.precondition_delay property case in
        List.map
          (fun slice -> Open (case, slice))
          (Interval.split precondition initial_components))
      (Property.cases property)
  in
  summarize property (reindex (refine slots))

let pp_component ppf c =
  Format.fprintf ppf "%s[%d]: a=%a out=%a Y=%a D=%.3f%s"
    (Property.case_name c.case) c.index Interval.pp c.action Interval.pp
    c.output Interval.pp c.target c.distance
    (if c.certified then " ✓" else "")

let pp ppf (t : t) =
  Format.fprintf ppf "@[<v>%a: r_verifier=%.3f fcc=%.3f fcs=%b@,%a@]"
    Property.pp t.property t.r_verifier t.fcc t.fcs
    (Format.pp_print_array ~pp_sep:Format.pp_print_cut pp_component)
    t.components

type refutation =
  | Violation of { state : float array; output : float }
  | Unknown

let case_ordinal = function
  | Property.Large_delay -> 0
  | Property.Small_delay -> 1
  | Property.Noise -> 2

let refute ?(samples = 64) ~rng ~actor ~property ~history ~state ~cwnd_tcp
    ~prev_cwnd component =
  if component.certified then Unknown
  else begin
    (* Derive a per-component stream via [Prng.split]: one draw advances
       the caller's sequence, and the component's identity keys the child
       index, so two components refuted from the same caller state still
       replay distinct, reproducible sample sequences. *)
    let rng =
      Canopy_util.Prng.split rng
        ((3 * component.index) + case_ordinal component.case)
    in
    let indices = delay_indices ~history in
    let concrete_output candidate_state =
      let a =
        Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
          (Mlp.forward actor candidate_state).(0)
      in
      let w = Agent_env.cwnd_of_action ~action:a ~cwnd_tcp in
      match component.case with
      | Property.Large_delay | Property.Small_delay -> w -. prev_cwnd
      | Property.Noise ->
          let a0 =
            Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
              (Mlp.forward actor state).(0)
          in
          let w0 = Agent_env.cwnd_of_action ~action:a0 ~cwnd_tcp in
          (w -. w0) /. w0
    in
    let candidate_of value =
      let s = Array.copy state in
      List.iter
        (fun idx ->
          s.(idx) <-
            (match component.case with
            | Property.Large_delay | Property.Small_delay -> value
            | Property.Noise -> state.(idx) *. value))
        indices;
      s
    in
    (* Endpoints first (monotone policies violate at an extreme), then
       uniform samples. Track the worst witness found. *)
    let witness = ref Unknown in
    let consider value =
      let s = candidate_of value in
      let out = concrete_output s in
      if not (Interval.contains component.target out) then begin
        match !witness with
        | Violation { output; _ } ->
            (* keep the more extreme violation *)
            let dist iv x =
              Float.max (Interval.lo iv -. x) (x -. Interval.hi iv)
            in
            if dist component.target out > dist component.target output then
              witness := Violation { state = s; output = out }
        | Unknown -> witness := Violation { state = s; output = out }
      end
    in
    ignore property;
    consider (Interval.lo component.slice);
    consider (Interval.hi component.slice);
    consider (Interval.midpoint component.slice);
    for _ = 4 to samples do
      consider (Interval.sample rng component.slice)
    done;
    !witness
  end
