(** Certificate construction via abstract interpretation (Section 4.3)
    and the quantitative certificate functions of Section 4.4.

    For a property case, the current concrete agent state is lifted to an
    abstract box in which only the normalized-delay dimensions (one per
    history frame) are symbolic: they carry the case's precondition
    interval, subdivided into [n_components] slices to curb
    over-approximation (Section 5). Each slice is propagated through the
    actor with IBP and through the CWND map of Eq. 1, yielding an output
    interval that is compared against the postcondition with the interval
    distance D of Eq. 7. *)

open Canopy_nn
open Canopy_absint

type domain =
  | Box_domain  (** hyper-intervals (Section 3.2) — the paper's choice *)
  | Zonotope_domain
      (** affine forms (the Section-8 "more complex domains" extension):
          tighter on affine chains, costlier per pass *)

type engine =
  | Batched
      (** the verifier-IR engine: the actor is normalized once per
          parameter generation to fused affine stages
          ({!Canopy_absint.Anet}) and a whole workload of boxes is pushed
          through each stage as two GEMMs in center–radius form *)
  | Per_slice
      (** the pre-IR reference: one layer-by-layer propagation per box;
          kept for equivalence tests and benchmarks *)

type component = {
  case : Property.case;
  index : int;  (** slice number within the case, 0-based *)
  slice : Interval.t;
      (** the precondition sub-interval this component covers: a
          normalized-delay range (performance) or a noise-factor range
          (robustness) *)
  action : Interval.t;  (** abstract action a♯ *)
  output : Interval.t;  (** ΔCWND♯ (performance) or CWNDCHANGE♯ (robustness) *)
  target : Interval.t;  (** postcondition Y *)
  distance : float;  (** D(Y, output♯) ∈ [0,1] *)
  certified : bool;  (** distance = 1, i.e. γ(output♯) ⊆ Y *)
}

type t = {
  property : Property.t;
  components : component array;
  per_case_distance : (Property.case * float) list;
      (** mean component distance per case *)
  r_verifier : float;  (** Eq. 8: per-case distances averaged *)
  fcc : float;  (** fraction of certified components (Section 6.1) *)
  fcs : bool;  (** all components certified at this step *)
}

val output_intervals :
  ?engine:engine -> domain:domain -> actor:Mlp.t -> Box.t array -> Interval.t array
(** The one engine entry point shared by {!certify}, {!certify_adaptive}
    and [Temporal.verify]: abstract action bounds for a workload of input
    boxes under the chosen domain. [engine] defaults to [Batched]. Adding
    a domain (or engine) means extending exactly this dispatch. *)

val output_interval :
  ?engine:engine -> domain:domain -> actor:Mlp.t -> Box.t -> Interval.t
(** {!output_intervals} on a single box. *)

val certify :
  ?engine:engine ->
  ?domain:domain ->
  actor:Mlp.t ->
  property:Property.t ->
  n_components:int ->
  history:int ->
  state:float array ->
  cwnd_tcp:float ->
  prev_cwnd:float ->
  unit ->
  t
(** [certify] builds the step certificate for the given policy and
    context. [state] is the concrete [history × feature_count] agent
    state; [cwnd_tcp] the backbone's current suggestion (CWND_TCP of
    Eq. 1); [prev_cwnd] the window enforced at the previous step
    (CWND_{i−1} of the performance property; ignored for robustness).
    [domain] defaults to the paper's box domain; [engine] to the batched
    verifier-IR engine, which evaluates every slice of every case in a
    single pass and agrees with [~engine:Per_slice] to reassociation
    rounding (≤1e-9 relative — see DESIGN.md §8). Raises
    [Invalid_argument] on dimension mismatches or [n_components <= 0]. *)

val certify_tree :
  ?conservative:bool ->
  tree:Canopy_distill.Tree.t ->
  property:Property.t ->
  n_components:int ->
  history:int ->
  state:float array ->
  cwnd_tcp:float ->
  prev_cwnd:float ->
  unit ->
  t
(** {!certify} for the distilled piecewise-affine tree policy
    ({!Canopy_distill.Tree}).  No abstract engine runs: each component's
    input box is intersected with every leaf's split polytope (an
    axis-aligned cell) and the leaf's single affine stage is bounded
    term-by-term — tight, so the abstract action interval is the {e exact}
    hull of the tree's reachable outputs over the box (up to the closed
    cell boundaries) and the reported distances carry no abstraction
    slack.  The action interval is clamped to [\[-1, 1\]] exactly as
    serving clamps the concrete prediction.  With [~conservative:true]
    the leaf-cell intersection is skipped (every leaf bounded over the
    whole box), reproducing what a structure-blind interval engine would
    report; the exact reading always certifies at least as much. *)

val certify_adaptive :
  ?engine:engine ->
  ?domain:domain ->
  ?initial_components:int ->
  actor:Mlp.t ->
  property:Property.t ->
  max_components:int ->
  history:int ->
  state:float array ->
  cwnd_tcp:float ->
  prev_cwnd:float ->
  unit ->
  t
(** Adaptive domain subdivision (the Section-8 future-work direction):
    start from [initial_components] (default 2) equal slices and bisect
    only the {e undecided} components — distance strictly in (0,1) —
    spending at most [max_components] additional splits per case. Decided
    components (fully certified, or fully refuted) are never refined, so
    the effort concentrates where over-approximation may be hiding a
    proof. Refinement runs in rounds; with the batched engine each
    round's open slices across all cases are evaluated in one pass. *)

val delay_indices : history:int -> int list
(** Indices of the normalized-delay dimensions inside the flat state. *)

val pp : Format.formatter -> t -> unit
val pp_component : Format.formatter -> component -> unit

(** {2 Counterexample search}

    Certificates are sound but incomplete (Section 8): an uncertified
    component may be a real violation or an artifact of
    over-approximation. {!refute} searches the component's slice for a
    concrete witness state whose action provably violates the
    postcondition, separating the two. *)

type refutation =
  | Violation of { state : float array; output : float }
      (** concrete witness: the state (with the delay dimensions set
          inside the component's slice) whose ΔCWND / CWNDCHANGE lies
          outside the target *)
  | Unknown
      (** no witness found within the sampling budget — the component may
          be certified-able with a more precise domain *)

val refute :
  ?samples:int ->
  rng:Canopy_util.Prng.t ->
  actor:Mlp.t ->
  property:Property.t ->
  history:int ->
  state:float array ->
  cwnd_tcp:float ->
  prev_cwnd:float ->
  component ->
  refutation
(** [refute ... component] samples delay values (default 64) inside the
    component's slice, evaluates the concrete policy, and returns the
    worst concrete witness if any violates the postcondition. A returned
    [Violation] is a genuine property violation (no abstraction
    involved); [Unknown] leaves the component's status open. Certified
    components always return [Unknown].

    The sample sequence is derived from one draw on [rng] (advancing the
    caller's stream) mixed with the component's case and index, so
    repeated refutations across steps and across components explore
    fresh points instead of replaying one fixed sequence, while a caller
    that reseeds its PRNG reproduces the run exactly. *)
