open Canopy_nn
open Canopy_absint
module Observation = Canopy_orca.Observation
module Agent_env = Canopy_orca.Agent_env

type env_model = { cwnd_tcp_drift : float; feature_slack : float }

let default_env_model = { cwnd_tcp_drift = 0.1; feature_slack = 0.05 }

type step_bound = {
  step : int;
  action : Interval.t;
  cwnd : Interval.t;
  delta_vs_start : Interval.t;
  distance : float;
  certified : bool;
}

type t = {
  case : Property.case;
  horizon : int;
  steps : step_bound list;
  certified : bool;
  r_verifier : float;
}

let clamp01 iv =
  match Interval.intersect iv (Interval.make 0. 1.) with
  | Some i -> i
  | None -> if Interval.hi iv < 0. then Interval.of_point 0. else Interval.of_point 1.

(* Abstract image of Eq. 1 when both the action and the backbone
   suggestion are intervals: 2^{2a} and cwnd_tcp are both positive, so
   the product's bounds are the products of the bounds, and the final
   clamp is monotone. *)
let cwnd_interval ~cwnd_tcp action =
  let factor = Interval.pow2 (Interval.scale 2. action) in
  let raw = Interval.mul factor cwnd_tcp in
  Interval.make
    (Canopy_util.Mathx.clamp ~lo:Agent_env.min_enforced
       ~hi:Agent_env.max_enforced (Interval.lo raw))
    (Canopy_util.Mathx.clamp ~lo:Agent_env.min_enforced
       ~hi:Agent_env.max_enforced (Interval.hi raw))

let verify ?(env_model = default_env_model) ?(engine = Certify.Batched)
    ?(domain = Certify.Box_domain) ~actor ~property ~case ~horizon ~history
    ~state ~cwnd_tcp () =
  if horizon <= 0 then invalid_arg "Temporal.verify: horizon";
  if history <= 0 then invalid_arg "Temporal.verify: history";
  if Array.length state <> history * Observation.feature_count then
    invalid_arg "Temporal.verify: state dimension";
  if Mlp.in_dim actor <> Array.length state then
    invalid_arg "Temporal.verify: actor input dimension";
  if env_model.cwnd_tcp_drift < 0. || env_model.feature_slack < 0. then
    invalid_arg "Temporal.verify: environment model";
  let delay_region =
    match (property, case) with
    | Property.Performance _, (Property.Large_delay | Property.Small_delay) ->
        Property.precondition_delay property case
    | Property.Performance _, Property.Noise | Property.Robustness _, _ ->
        invalid_arg "Temporal.verify: performance cases only"
  in
  let target =
    match case with
    | Property.Large_delay -> Interval.make Float.neg_infinity 0.
    | Property.Small_delay -> Interval.make 0. Float.infinity
    | Property.Noise -> assert false
  in
  let fc = Observation.feature_count in
  let start_cwnd = cwnd_tcp in
  (* Frames of the evolving abstract state, oldest first. *)
  let frames =
    ref
      (List.init history (fun frame ->
           Array.init fc (fun j -> Interval.of_point state.((frame * fc) + j))))
  in
  (* The most recent concrete frame anchors the wander of the non-delay
     features of synthesized future frames. *)
  let anchor = Array.sub state ((history - 1) * fc) fc in
  (* The horizon is inherently sequential (each step's frame depends on
     the previous window), so the engine sees one box per call — but the
     batched engine still amortizes IR extraction across the whole
     unrolling, and the domain dispatch lives in exactly one place. *)
  let propagate_state () =
    let ivs = Array.concat (List.map Array.copy !frames) in
    let box = Box.of_intervals ivs in
    Certify.output_interval ~engine ~domain ~actor box
  in
  let cwnd_tcp_iv = ref (Interval.of_point cwnd_tcp) in
  let bounds = ref [] in
  for step = 1 to horizon do
    (* Synthesize the next observation frame under the environment
       model: delay anywhere in the case's region, other features within
       a growing wander band around the anchor. *)
    let slack = env_model.feature_slack *. float_of_int step in
    let fresh =
      Array.init fc (fun j ->
          if j = Observation.delay_index then delay_region
          else
            clamp01 (Interval.make (anchor.(j) -. slack) (anchor.(j) +. slack)))
    in
    frames := List.tl !frames @ [ fresh ];
    let action = propagate_state () in
    let cwnd = cwnd_interval ~cwnd_tcp:!cwnd_tcp_iv action in
    let delta = Interval.add_scalar (-.start_cwnd) cwnd in
    let distance = Interval.overlap_fraction ~target delta in
    bounds :=
      {
        step;
        action;
        cwnd;
        delta_vs_start = delta;
        distance;
        certified = distance >= 1.;
      }
      :: !bounds;
    (* Backbone evolution: Cubic restarts from the enforced window and
       drifts by at most the modelled relative amount per interval. *)
    cwnd_tcp_iv :=
      Interval.make
        (Interval.lo cwnd *. (1. -. env_model.cwnd_tcp_drift))
        (Interval.hi cwnd *. (1. +. env_model.cwnd_tcp_drift))
  done;
  let steps = List.rev !bounds in
  let distances = List.map (fun (b : step_bound) -> b.distance) steps in
  {
    case;
    horizon;
    steps;
    certified = List.for_all (fun (b : step_bound) -> b.certified) steps;
    r_verifier =
      Canopy_util.Mathx.fsum_list distances /. float_of_int horizon;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>temporal[%s] horizon=%d certified=%b r=%.3f"
    (Property.case_name t.case) t.horizon t.certified t.r_verifier;
  List.iter
    (fun b ->
      Format.fprintf ppf "@,  step %d: a=%a cwnd=%a delta=%a D=%.3f%s" b.step
        Interval.pp b.action Interval.pp b.cwnd Interval.pp b.delta_vs_start
        b.distance
        (if b.certified then " ✓" else ""))
    t.steps;
  Format.fprintf ppf "@]"
