open Canopy_nn
module Agent_env = Canopy_orca.Agent_env
module Observation = Canopy_orca.Observation
module Stats = Canopy_util.Stats

type result = {
  scheme : string;
  trace : string;
  utilization : float;
  avg_thr_mbps : float;
  avg_qdelay_ms : float;
  p95_qdelay_ms : float;
  loss_rate : float;
  fcc : float option;
  fcs : float option;
  refuted : float option;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%-12s %-22s util=%5.1f%% thr=%6.2fMbps qdelay(avg/p95)=%6.1f/%6.1fms \
     loss=%5.2f%%"
    r.scheme r.trace (100. *. r.utilization) r.avg_thr_mbps r.avg_qdelay_ms
    r.p95_qdelay_ms (100. *. r.loss_rate);
  (match (r.fcc, r.fcs) with
  | Some fcc, Some fcs -> Format.fprintf ppf " fcc=%.3f fcs=%.3f" fcc fcs
  | _ -> ());
  match r.refuted with
  | Some rate -> Format.fprintf ppf " refuted=%.3f" rate
  | None -> ()

type step_record = {
  t_ms : int;
  action : float;
  cwnd_tcp : float;
  cwnd_enforced : float;
  thr_mbps : float;
  qdelay_ms : float;
  delay_norm : float;
  raw_reward : float;
  certificate : Certify.t option;
}

type link = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;
  bdp_multiplier : float;
  duration_ms : int;
}

let link ?(min_rtt_ms = 40) ?(bdp = 2.) ?duration_ms trace =
  let duration_ms =
    Option.value ~default:(Canopy_trace.Trace.duration_ms trace) duration_ms
  in
  { trace; min_rtt_ms; bdp_multiplier = bdp; duration_ms }

let buffer_pkts link =
  Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:link.bdp_multiplier
    ~trace:link.trace ~min_rtt_ms:link.min_rtt_ms

let clamp_action = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

let eval_policy ?(name = "canopy") ?noise ?(engine = Certify.Batched)
    ?certificate ?refute_seed ?refute_rng ?shield ?(collect_steps = false)
    ~actor ~history link =
  let delay_noise =
    Option.map
      (fun (seed, mu) -> (Canopy_util.Prng.create seed, mu))
      noise
  in
  (* One PRNG for the whole run: Certify.refute derives a per-component
     stream from it, so every step explores fresh sample points while
     the run as a whole stays reproducible from [refute_seed]. Parallel
     sweeps pass [?refute_rng] instead — a [Prng.split] child derived by
     task index before the fan-out, so sampling stays reproducible and
     identical at every domain count. *)
  let refute_rng =
    match refute_rng with
    | Some _ as r -> r
    | None -> Option.map Canopy_util.Prng.create refute_seed
  in
  let cfg =
    {
      (Agent_env.default_config ~trace:link.trace ~min_rtt_ms:link.min_rtt_ms
         ~buffer_pkts:(buffer_pkts link) ~duration_ms:link.duration_ms)
      with
      history;
      delay_noise;
    }
  in
  let env = Agent_env.create cfg in
  let steps = ref [] in
  let fcc_acc = ref 0. and fcs_acc = ref 0 and nsteps = ref 0 in
  let uncertified_acc = ref 0 and refuted_acc = ref 0 in
  let finished = ref false in
  while not !finished do
    let s = Agent_env.state env in
    let action = clamp_action (Mlp.forward actor s).(0) in
    let action =
      match shield with
      | None -> action
      | Some sh ->
          fst
            (Shield.filter sh ~state:s ~cwnd_tcp:(Agent_env.cwnd_tcp env)
               ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ~action)
    in
    let cert =
      Option.map
        (fun (property, n) ->
          Certify.certify ~engine ~actor ~property ~n_components:n ~history
            ~state:s
            ~cwnd_tcp:(Agent_env.cwnd_tcp env)
            ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ())
        certificate
    in
    (match cert with
    | Some c ->
        fcc_acc := !fcc_acc +. c.Certify.fcc;
        if c.Certify.fcs then incr fcs_acc;
        (* Counterexample search over the step's uncertified components,
           separating real violations from abstraction artifacts. *)
        Option.iter
          (fun rng ->
            Array.iter
              (fun comp ->
                if not comp.Certify.certified then begin
                  incr uncertified_acc;
                  match
                    Certify.refute ~rng ~actor
                      ~property:c.Certify.property ~history ~state:s
                      ~cwnd_tcp:(Agent_env.cwnd_tcp env)
                      ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) comp
                  with
                  | Certify.Violation _ -> incr refuted_acc
                  | Certify.Unknown -> ()
                end)
              c.Certify.components)
          refute_rng
    | None -> ());
    incr nsteps;
    let res = Agent_env.step env ~action in
    if collect_steps then
      steps :=
        {
          t_ms = Agent_env.interval_ms env * !nsteps;
          action;
          cwnd_tcp = res.cwnd_tcp;
          cwnd_enforced = res.cwnd_enforced;
          thr_mbps = res.observation.Observation.thr_mbps;
          qdelay_ms = res.observation.Observation.avg_qdelay_ms;
          delay_norm = Observation.normalized_delay res.observation;
          raw_reward = res.raw_reward;
          certificate = cert;
        }
        :: !steps;
    finished := res.finished
  done;
  let qdelays = Agent_env.qdelay_array_ms env in
  let st = Agent_env.env_stats env in
  let result =
    {
      scheme = name;
      trace = Canopy_trace.Trace.name link.trace;
      utilization = Agent_env.utilization env;
      avg_thr_mbps =
        float_of_int st.Canopy_netsim.Env.delivered
        *. float_of_int Canopy_netsim.Env.default_mtu *. 8. /. 1e6
        /. (float_of_int link.duration_ms /. 1000.);
      avg_qdelay_ms = Stats.mean qdelays;
      p95_qdelay_ms =
        (if Array.length qdelays = 0 then 0. else Stats.percentile qdelays 95.);
      loss_rate = Agent_env.loss_rate env;
      fcc =
        (if certificate = None || !nsteps = 0 then None
         else Some (!fcc_acc /. float_of_int !nsteps));
      fcs =
        (if certificate = None || !nsteps = 0 then None
         else Some (float_of_int !fcs_acc /. float_of_int !nsteps));
      refuted =
        (match refute_rng with
        | None -> None
        | Some _ when certificate = None -> None
        | Some _ ->
            if !uncertified_acc = 0 then Some 0.
            else
              Some
                (float_of_int !refuted_acc /. float_of_int !uncertified_acc));
    }
  in
  (result, List.rev !steps)

let eval_tcp ~name make link =
  let metrics, _ =
    Canopy_cc.Runner.run ~trace:link.trace ~min_rtt_ms:link.min_rtt_ms
      ~buffer_pkts:(buffer_pkts link) ~duration_ms:link.duration_ms make
  in
  {
    scheme = name;
    trace = metrics.Canopy_cc.Runner.trace;
    utilization = metrics.utilization;
    avg_thr_mbps = metrics.avg_throughput_mbps;
    avg_qdelay_ms = metrics.avg_qdelay_ms;
    p95_qdelay_ms = metrics.p95_qdelay_ms;
    loss_rate = metrics.loss_rate;
    fcc = None;
    fcs = None;
    refuted = None;
  }

(* Parallel sweep over independent evaluation cells. Each task builds its
   own simulator (environments are created per call and share nothing
   mutable), so tasks are embarrassingly parallel; [Pool.map] keeps
   results in task order, and any task RNG must be derived {i before}
   this call (e.g. [Prng.split] by task index), so the sweep is
   bit-identical to running the tasks sequentially in list order. *)
let run_tasks ?pool tasks =
  Canopy_util.Pool.map_list ?pool (fun task -> task ()) tasks

let cubic_scheme () = Canopy_cc.Cubic.to_controller (Canopy_cc.Cubic.create ())
let vegas_scheme () = Canopy_cc.Vegas.to_controller (Canopy_cc.Vegas.create ())
let bbr_scheme () = Canopy_cc.Bbr.to_controller (Canopy_cc.Bbr.create ())

let vivace_scheme () =
  Canopy_cc.Vivace.to_controller (Canopy_cc.Vivace.create ())

let mean_results group results =
  match results with
  | [] -> invalid_arg "Eval.mean_results: empty"
  | first :: _ ->
      let n = float_of_int (List.length results) in
      let mean f = Canopy_util.Mathx.fsum_list (List.map f results) /. n in
      let mean_opt f =
        let vals = List.filter_map f results in
        if vals = [] then None
        else
          Some
            (Canopy_util.Mathx.fsum_list vals
            /. float_of_int (List.length vals))
      in
      {
        scheme = first.scheme;
        trace = group;
        utilization = mean (fun r -> r.utilization);
        avg_thr_mbps = mean (fun r -> r.avg_thr_mbps);
        avg_qdelay_ms = mean (fun r -> r.avg_qdelay_ms);
        p95_qdelay_ms = mean (fun r -> r.p95_qdelay_ms);
        loss_rate = mean (fun r -> r.loss_rate);
        fcc = mean_opt (fun r -> r.fcc);
        fcs = mean_opt (fun r -> r.fcs);
        refuted = mean_opt (fun r -> r.refuted);
      }

type noise_delta = {
  scheme : string;
  d_avg_qdelay_pct : float;
  d_p95_qdelay_pct : float;
  d_utilization_pct : float;
}

let pct_change ~from ~to_ =
  if Float.abs from < 1e-9 then 0. else 100. *. (to_ -. from) /. from

let noise_delta ~(clean : result) ~(noisy : result) =
  {
    scheme = clean.scheme;
    d_avg_qdelay_pct =
      pct_change ~from:clean.avg_qdelay_ms ~to_:noisy.avg_qdelay_ms;
    d_p95_qdelay_pct =
      pct_change ~from:clean.p95_qdelay_ms ~to_:noisy.p95_qdelay_ms;
    d_utilization_pct =
      pct_change ~from:clean.utilization ~to_:noisy.utilization;
  }
