module Agent_env = Canopy_orca.Agent_env
module Observation = Canopy_orca.Observation
module Monitor = Canopy_orca.Monitor
module Multiflow = Canopy_netsim.Multiflow
module Stats = Canopy_util.Stats
module Mat = Canopy_tensor.Mat

type result = {
  scheme : string;
  trace : string;
  utilization : float;
  avg_thr_mbps : float;
  avg_qdelay_ms : float;
  p95_qdelay_ms : float;
  loss_rate : float;
  fcc : float option;
  fcs : float option;
  refuted : float option;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%-12s %-22s util=%5.1f%% thr=%6.2fMbps qdelay(avg/p95)=%6.1f/%6.1fms \
     loss=%5.2f%%"
    r.scheme r.trace (100. *. r.utilization) r.avg_thr_mbps r.avg_qdelay_ms
    r.p95_qdelay_ms (100. *. r.loss_rate);
  (match (r.fcc, r.fcs) with
  | Some fcc, Some fcs -> Format.fprintf ppf " fcc=%.3f fcs=%.3f" fcc fcs
  | _ -> ());
  match r.refuted with
  | Some rate -> Format.fprintf ppf " refuted=%.3f" rate
  | None -> ()

type step_record = {
  t_ms : int;
  action : float;
  cwnd_tcp : float;
  cwnd_enforced : float;
  thr_mbps : float;
  qdelay_ms : float;
  delay_norm : float;
  raw_reward : float;
  certificate : Certify.t option;
}

type link = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;
  bdp_multiplier : float;
  duration_ms : int;
}

let link ?(min_rtt_ms = 40) ?(bdp = 2.) ?duration_ms trace =
  let duration_ms =
    Option.value ~default:(Canopy_trace.Trace.duration_ms trace) duration_ms
  in
  { trace; min_rtt_ms; bdp_multiplier = bdp; duration_ms }

let buffer_pkts link =
  Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:link.bdp_multiplier
    ~trace:link.trace ~min_rtt_ms:link.min_rtt_ms

let clamp_action = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

let eval_policy ?(name = "canopy") ?noise ?(engine = Certify.Batched)
    ?certificate ?refute_seed ?refute_rng ?shield
    ?(impairments = Canopy_netsim.Env.no_impairments)
    ?(collect_steps = false) ~policy ~history link =
  let delay_noise =
    Option.map
      (fun (seed, mu) -> (Canopy_util.Prng.create seed, mu))
      noise
  in
  (* One PRNG for the whole run: Certify.refute derives a per-component
     stream from it, so every step explores fresh sample points while
     the run as a whole stays reproducible from [refute_seed]. Parallel
     sweeps pass [?refute_rng] instead — a [Prng.split] child derived by
     task index before the fan-out, so sampling stays reproducible and
     identical at every domain count. *)
  let refute_rng =
    match refute_rng with
    | Some _ as r -> r
    | None -> Option.map Canopy_util.Prng.create refute_seed
  in
  let cfg =
    {
      (Agent_env.default_config ~trace:link.trace ~min_rtt_ms:link.min_rtt_ms
         ~buffer_pkts:(buffer_pkts link) ~duration_ms:link.duration_ms)
      with
      history;
      delay_noise;
      impairments;
    }
  in
  let env = Agent_env.create cfg in
  (* Per-step inference goes through the batched scratch-backed path as
     a 1-row block: [Policy.predict_rows_into] rows are bit-identical to
     the scalar forward for both policy kinds, so this changes no
     trajectory — it just keeps the whole serving stack (scalar eval and
     fleet alike) on one code path with no per-step output allocation. *)
  if Policy.in_dim policy <> Agent_env.state_dim cfg then
    invalid_arg "Eval.eval_policy: policy input dim";
  let xrow = Mat.create ~rows:1 ~cols:(Policy.in_dim policy) in
  let yrow = Mat.create_uninit ~rows:1 ~cols:(Policy.out_dim policy) in
  let steps = ref [] in
  let fcc_acc = ref 0. and fcs_acc = ref 0 and nsteps = ref 0 in
  let uncertified_acc = ref 0 and refuted_acc = ref 0 in
  let finished = ref false in
  while not !finished do
    let s = Agent_env.state env in
    Array.blit s 0 (Mat.raw xrow) 0 (Array.length s);
    Policy.predict_rows_into ~dst:yrow policy xrow;
    let action = clamp_action (Mat.raw yrow).(0) in
    let action =
      match shield with
      | None -> action
      | Some sh ->
          fst
            (Shield.filter sh ~state:s ~cwnd_tcp:(Agent_env.cwnd_tcp env)
               ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ~action)
    in
    let cert =
      Option.map
        (fun (property, n) ->
          match policy with
          | `Mlp actor ->
              Certify.certify ~engine ~actor ~property ~n_components:n
                ~history ~state:s
                ~cwnd_tcp:(Agent_env.cwnd_tcp env)
                ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ()
          | `Tree tree ->
              (* exact per-leaf certification: no abstract engine *)
              Certify.certify_tree ~tree ~property ~n_components:n ~history
                ~state:s
                ~cwnd_tcp:(Agent_env.cwnd_tcp env)
                ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ())
        certificate
    in
    (match cert with
    | Some c ->
        fcc_acc := !fcc_acc +. c.Certify.fcc;
        if c.Certify.fcs then incr fcs_acc;
        (* Counterexample search over the step's uncertified components,
           separating real violations from abstraction artifacts.  Only
           meaningful for the MLP: tree certificates are exact, so an
           uncertified tree component already is a genuine overlap with
           the bad region — there is no abstraction slack to refute. *)
        (match policy with
        | `Tree _ -> ()
        | `Mlp actor ->
            Option.iter
              (fun rng ->
                Array.iter
                  (fun comp ->
                    if not comp.Certify.certified then begin
                      incr uncertified_acc;
                      match
                        Certify.refute ~rng ~actor
                          ~property:c.Certify.property ~history ~state:s
                          ~cwnd_tcp:(Agent_env.cwnd_tcp env)
                          ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) comp
                      with
                      | Certify.Violation _ -> incr refuted_acc
                      | Certify.Unknown -> ()
                    end)
                  c.Certify.components)
              refute_rng)
    | None -> ());
    incr nsteps;
    let res = Agent_env.step env ~action in
    if collect_steps then
      steps :=
        {
          t_ms = Agent_env.interval_ms env * !nsteps;
          action;
          cwnd_tcp = res.cwnd_tcp;
          cwnd_enforced = res.cwnd_enforced;
          thr_mbps = res.observation.Observation.thr_mbps;
          qdelay_ms = res.observation.Observation.avg_qdelay_ms;
          delay_norm = Observation.normalized_delay res.observation;
          raw_reward = res.raw_reward;
          certificate = cert;
        }
        :: !steps;
    finished := res.finished
  done;
  let qdelays = Agent_env.qdelay_array_ms env in
  let st = Agent_env.env_stats env in
  let result =
    {
      scheme = name;
      trace = Canopy_trace.Trace.name link.trace;
      utilization = Agent_env.utilization env;
      avg_thr_mbps =
        float_of_int st.Canopy_netsim.Env.delivered
        *. float_of_int Canopy_netsim.Env.default_mtu *. 8. /. 1e6
        /. (float_of_int link.duration_ms /. 1000.);
      avg_qdelay_ms = Stats.mean qdelays;
      p95_qdelay_ms =
        (if Array.length qdelays = 0 then 0. else Stats.percentile qdelays 95.);
      loss_rate = Agent_env.loss_rate env;
      fcc =
        (if certificate = None || !nsteps = 0 then None
         else Some (!fcc_acc /. float_of_int !nsteps));
      fcs =
        (if certificate = None || !nsteps = 0 then None
         else Some (float_of_int !fcs_acc /. float_of_int !nsteps));
      refuted =
        (match refute_rng with
        | None -> None
        | Some _ when certificate = None -> None
        | Some _ when (match policy with `Tree _ -> true | `Mlp _ -> false) ->
            None
        | Some _ ->
            if !uncertified_acc = 0 then Some 0.
            else
              Some
                (float_of_int !refuted_acc /. float_of_int !uncertified_acc));
    }
  in
  (result, List.rev !steps)

let eval_tcp ~name make link =
  let metrics, _ =
    Canopy_cc.Runner.run ~trace:link.trace ~min_rtt_ms:link.min_rtt_ms
      ~buffer_pkts:(buffer_pkts link) ~duration_ms:link.duration_ms make
  in
  {
    scheme = name;
    trace = metrics.Canopy_cc.Runner.trace;
    utilization = metrics.utilization;
    avg_thr_mbps = metrics.avg_throughput_mbps;
    avg_qdelay_ms = metrics.avg_qdelay_ms;
    p95_qdelay_ms = metrics.p95_qdelay_ms;
    loss_rate = metrics.loss_rate;
    fcc = None;
    fcs = None;
    refuted = None;
  }

(* Parallel sweep over independent evaluation cells. Each task builds its
   own simulator (environments are created per call and share nothing
   mutable), so tasks are embarrassingly parallel; [Pool.map] keeps
   results in task order, and any task RNG must be derived {i before}
   this call (e.g. [Prng.split] by task index), so the sweep is
   bit-identical to running the tasks sequentially in list order. *)
let run_tasks ?pool tasks =
  Canopy_util.Pool.map_list ?pool (fun task -> task ()) tasks

let cubic_scheme () = Canopy_cc.Cubic.to_controller (Canopy_cc.Cubic.create ())
let vegas_scheme () = Canopy_cc.Vegas.to_controller (Canopy_cc.Vegas.create ())
let bbr_scheme () = Canopy_cc.Bbr.to_controller (Canopy_cc.Bbr.create ())

let vivace_scheme () =
  Canopy_cc.Vivace.to_controller (Canopy_cc.Vivace.create ())

let mean_results group results =
  match results with
  | [] -> invalid_arg "Eval.mean_results: empty"
  | first :: _ ->
      let n = float_of_int (List.length results) in
      let mean f = Canopy_util.Mathx.fsum_list (List.map f results) /. n in
      let mean_opt f =
        let vals = List.filter_map f results in
        if vals = [] then None
        else
          Some
            (Canopy_util.Mathx.fsum_list vals
            /. float_of_int (List.length vals))
      in
      {
        scheme = first.scheme;
        trace = group;
        utilization = mean (fun r -> r.utilization);
        avg_thr_mbps = mean (fun r -> r.avg_thr_mbps);
        avg_qdelay_ms = mean (fun r -> r.avg_qdelay_ms);
        p95_qdelay_ms = mean (fun r -> r.p95_qdelay_ms);
        loss_rate = mean (fun r -> r.loss_rate);
        fcc = mean_opt (fun r -> r.fcc);
        fcs = mean_opt (fun r -> r.fcs);
        refuted = mean_opt (fun r -> r.refuted);
      }

(* ------------------------------------------------------------------ *)
(* Cross-traffic coexistence on a shared bottleneck *)

type coexist_spec =
  | Coexist_canopy of Policy.t
  | Coexist_tcp of string * (unit -> Canopy_cc.Controller.t)

type coexist_flow = {
  scheme : string;
  throughput_mbps : float;
  avg_qdelay_ms : float;
  loss_rate : float;
  share : float;
}

type coexist_result = {
  trace : string;
  duration_ms : int;
  interval_ms : int;
  flows : coexist_flow array;
  jain : float;
  utilization : float;
}

let pp_coexist ppf (r : coexist_result) =
  Format.fprintf ppf "%s (%d flows, %d ms): jain=%.3f util=%.1f%%@."
    r.trace (Array.length r.flows) r.duration_ms r.jain
    (100. *. r.utilization);
  Array.iteri
    (fun i f ->
      Format.fprintf ppf
        "  flow %d %-8s thr=%6.2fMbps share=%5.1f%% qdelay=%6.1fms \
         loss=%5.2f%%@."
        i f.scheme f.throughput_mbps (100. *. f.share) f.avg_qdelay_ms
        (100. *. f.loss_rate))
    r.flows

(* Per-flow driver state of a Canopy flow inside the shared bottleneck:
   the same Cubic-backbone + monitor + feature-history machinery as
   [Agent_env], but the link advancement is [Multiflow]'s. *)
type coexist_canopy_state = {
  cc_cubic : Canopy_cc.Cubic.t;
  cc_monitor : Monitor.t;
  cc_hist : float array; (* history × feature_count ring of frames *)
  mutable cc_head : int;
  mutable cc_thr_scale : float;
  mutable cc_enforced : float;
}

let eval_coexist ?(history = 5) ?interval_ms ?arrivals ~flows link =
  let specs = Array.of_list flows in
  let n = Array.length specs in
  if n = 0 then invalid_arg "Eval.eval_coexist: no flows";
  (match arrivals with
  | Some a when Array.length a <> n ->
      invalid_arg "Eval.eval_coexist: arrivals"
  | _ -> ());
  let interval_ms =
    match interval_ms with
    | Some ms ->
        if ms <= 0 then invalid_arg "Eval.eval_coexist: interval";
        ms
    | None -> max 20 link.min_rtt_ms
  in
  let fc = Observation.feature_count in
  let state_dim = history * fc in
  let mf =
    Multiflow.create ?start_ms:arrivals
      {
        Multiflow.trace = link.trace;
        min_rtt_ms = Array.make n link.min_rtt_ms;
        buffer_pkts = buffer_pkts link;
        mtu_bytes = Canopy_netsim.Env.default_mtu;
        initial_cwnd = 10.;
      }
  in
  (* Build per-flow drivers and handlers. *)
  let canopy = Array.make n None in
  let tcp = Array.make n None in
  let handlers =
    Array.init n (fun i ->
        match specs.(i) with
        | Coexist_canopy policy ->
            if Policy.in_dim policy <> state_dim then
              invalid_arg "Eval.eval_coexist: policy input dim";
            if Policy.out_dim policy <> 1 then
              invalid_arg "Eval.eval_coexist: policy output dim";
            let st =
              {
                cc_cubic = Canopy_cc.Cubic.create ();
                cc_monitor = Monitor.create ~min_rtt_ms:link.min_rtt_ms ();
                cc_hist = Array.make state_dim 0.;
                cc_head = 0;
                cc_thr_scale = 0.;
                cc_enforced = 10.;
              }
            in
            canopy.(i) <- Some st;
            Canopy_netsim.Env.chain
              (Canopy_cc.Controller.handlers
                 (Canopy_cc.Cubic.to_controller st.cc_cubic))
              (Monitor.handlers st.cc_monitor)
        | Coexist_tcp (_, make) ->
            let c = make () in
            tcp.(i) <- Some c;
            Canopy_cc.Controller.handlers c)
  in
  (* Group Canopy flows by underlying model (physical equality on the
     MLP or tree, not on the [Policy.t] wrapper, which callers may
     allocate per flow) so each distinct model serves all of its flows
     with a single batched forward per decision tick — with one shared
     model, one pass serves every Canopy flow. *)
  let same_model (p : Policy.t) (q : Policy.t) =
    match (p, q) with
    | `Mlp a, `Mlp b -> a == b
    | `Tree a, `Tree b -> a == b
    | (`Mlp _ | `Tree _), _ -> false
  in
  let groups =
    let acc = ref [] in
    Array.iteri
      (fun i spec ->
        match spec with
        | Coexist_tcp _ -> ()
        | Coexist_canopy policy -> (
            match List.find_opt (fun (a, _) -> same_model a policy) !acc with
            | Some (_, ids) -> ids := i :: !ids
            | None -> acc := !acc @ [ (policy, ref [ i ]) ]))
      specs;
    List.map
      (fun (policy, ids) ->
        let ids = Array.of_list (List.rev !ids) in
        let rows = Array.length ids in
        ( policy,
          ids,
          Mat.create ~rows ~cols:state_dim,
          Mat.create_uninit ~rows ~cols:1 ))
      !acc
  in
  let clamp = clamp_action in
  (* Decide from the current feature histories and enforce the Eq. 1
     windows; one forward_eval GEMM per actor group. *)
  let decide () =
    List.iter
      (fun (policy, ids, x, y) ->
        let raw = Mat.raw x in
        Array.iteri
          (fun row i ->
            let st = Option.get canopy.(i) in
            let base = row * state_dim in
            for f = 0 to history - 1 do
              Array.blit st.cc_hist
                ((st.cc_head + f) mod history * fc)
                raw
                (base + (f * fc))
                fc
            done)
          ids;
        Policy.predict_rows_into ~dst:y policy x;
        let out = Mat.raw y in
        Array.iteri
          (fun row i ->
            let st = Option.get canopy.(i) in
            let action = clamp out.(row) in
            let cwnd_tcp = Canopy_cc.Cubic.cwnd st.cc_cubic in
            let enforced = Agent_env.cwnd_of_action ~action ~cwnd_tcp in
            Canopy_cc.Cubic.force_cwnd st.cc_cubic enforced;
            Multiflow.set_cwnd mf ~flow:i enforced;
            st.cc_enforced <- enforced)
          ids)
      groups
  in
  (* Close the interval: take each Canopy flow's observation and push
     its feature frame (same sequencing as [Agent_env.step]). *)
  let take_observations () =
    Array.iter
      (fun st ->
        match st with
        | None -> ()
        | Some st ->
            let obs =
              Monitor.take st.cc_monitor ~now_ms:(Multiflow.now_ms mf)
                ~cwnd_pkts:st.cc_enforced
            in
            st.cc_thr_scale <-
              Float.max st.cc_thr_scale obs.Observation.thr_mbps;
            Observation.features_into ~thr_scale_mbps:st.cc_thr_scale obs
              ~dst:st.cc_hist ~off:(st.cc_head * fc);
            st.cc_head <- (st.cc_head + 1) mod history)
      canopy
  in
  decide ();
  for ms = 1 to link.duration_ms do
    Multiflow.tick mf handlers;
    (* Refresh each flow's live window from its controller backbone. *)
    for i = 0 to n - 1 do
      match (tcp.(i), canopy.(i)) with
      | Some c, _ -> Multiflow.set_cwnd mf ~flow:i (c.Canopy_cc.Controller.cwnd ())
      | _, Some st ->
          Multiflow.set_cwnd mf ~flow:i (Canopy_cc.Cubic.cwnd st.cc_cubic)
      | None, None -> ()
    done;
    if ms mod interval_ms = 0 then begin
      take_observations ();
      decide ()
    end
  done;
  let total_delivered =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + Multiflow.delivered mf ~flow:i
    done;
    !acc
  in
  let flows =
    Array.init n (fun i ->
        {
          scheme =
            (match specs.(i) with
            | Coexist_canopy _ -> "canopy"
            | Coexist_tcp (name, _) -> name);
          throughput_mbps = Multiflow.throughput_mbps mf ~flow:i;
          avg_qdelay_ms = Multiflow.avg_qdelay_ms mf ~flow:i;
          loss_rate = Multiflow.loss_rate mf ~flow:i;
          share =
            (if total_delivered = 0 then 0.
             else
               float_of_int (Multiflow.delivered mf ~flow:i)
               /. float_of_int total_delivered);
        })
  in
  {
    trace = Canopy_trace.Trace.name link.trace;
    duration_ms = link.duration_ms;
    interval_ms;
    flows;
    jain = Multiflow.jain_index mf;
    utilization = Multiflow.utilization mf;
  }

type noise_delta = {
  scheme : string;
  d_avg_qdelay_pct : float;
  d_p95_qdelay_pct : float;
  d_utilization_pct : float;
}

let pct_change ~from ~to_ =
  if Float.abs from < 1e-9 then 0. else 100. *. (to_ -. from) /. from

let noise_delta ~(clean : result) ~(noisy : result) =
  {
    scheme = clean.scheme;
    d_avg_qdelay_pct =
      pct_change ~from:clean.avg_qdelay_ms ~to_:noisy.avg_qdelay_ms;
    d_p95_qdelay_pct =
      pct_change ~from:clean.p95_qdelay_ms ~to_:noisy.p95_qdelay_ms;
    d_utilization_pct =
      pct_change ~from:clean.utilization ~to_:noisy.utilization;
  }
