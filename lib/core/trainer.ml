let log_src = Logs.Src.create "canopy.trainer" ~doc:"certificate-in-the-loop training"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Agent_env = Canopy_orca.Agent_env
module Observation = Canopy_orca.Observation
module Td3 = Canopy_rl.Td3
module Agent_snapshot = Canopy_rl.Agent_snapshot
module Prng = Canopy_util.Prng
module Atomic_file = Canopy_util.Atomic_file
module Crc32 = Canopy_util.Crc32

type config = {
  seed : int;
  lambda : float;
  property : Property.t;
  engine : Certify.engine;
  n_components : int;
  history : int;
  hidden : int;
  total_steps : int;
  updates_per_step : int;
  envs : Agent_env.config list;
  log_every : int;
}

let default_config ?(seed = 42) ?(lambda = 0.25)
    ?(property = Property.performance ()) ?(engine = Certify.Batched)
    ?(n_components = 5) ?(total_steps = 4000) ~envs () =
  {
    seed;
    lambda;
    property;
    engine;
    n_components;
    history = 5;
    hidden = 64;
    total_steps;
    updates_per_step = 1;
    envs;
    log_every = 100;
  }

let env_pool ?(n = 8) ?(bw_range_mbps = (6., 192.)) ?(rtt_range_ms = (10, 200))
    ?(duration_ms = 10_000) ?(history = 5) ~seed () =
  if n <= 0 then invalid_arg "Trainer.env_pool: n";
  let bw_lo, bw_hi = bw_range_mbps in
  let rtt_lo, rtt_hi = rtt_range_ms in
  List.init n (fun i ->
      (* Stratified sampling, as in the paper's actor pool: env [i] draws
         bandwidth and RTT from the [i]-th of [n] equal strata, jittered
         by a PRNG derived purely from [(seed, i)] — [List.init]'s
         evaluation order is unspecified, so the stream must not be
         shared across envs. *)
      let rng = Prng.create ((seed * 1_000_003) + i) in
      let stratum u = (float_of_int i +. u) /. float_of_int n in
      let bw_frac = stratum (Prng.float rng 1.) in
      let rtt_frac = stratum (Prng.float rng 1.) in
      let bw = Canopy_util.Mathx.lerp bw_lo bw_hi bw_frac in
      let rtt =
        rtt_lo
        + int_of_float
            (rtt_frac *. float_of_int (rtt_hi - rtt_lo))
      in
      let trace =
        Canopy_trace.Trace.constant
          ~name:(Printf.sprintf "train-s%d-%02d-%gmbps-%dms" seed i bw rtt)
          ~duration_ms ~mbps:bw
      in
      let buffer_pkts =
        Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace
          ~min_rtt_ms:rtt
      in
      {
        (Agent_env.default_config ~trace ~min_rtt_ms:rtt ~buffer_pkts
           ~duration_ms)
        with
        history;
      })

type epoch = {
  epoch : int;
  steps : int;
  raw_reward : float;
  verifier_reward : float;
  combined_reward : float;
  fcc : float;
  rollbacks : int;
}

(* ------------------------------------------------------------------ *)
(* Curve serialization                                                 *)
(* ------------------------------------------------------------------ *)

let curve_to_string epochs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "epoch,steps,raw,verifier,combined,fcc,rollbacks\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%h,%h,%h,%h,%d\n" e.epoch e.steps e.raw_reward
           e.verifier_reward e.combined_reward e.fcc e.rollbacks))
    epochs;
  Buffer.contents buf

(* Strict: a malformed row aborts with a diagnostic naming the line, so a
   half-written curve file cannot masquerade as a short run. Rows may
   have 6 fields (the pre-rollback format, rollbacks = 0) or 7. *)
let curve_of_string ~what s =
  let malformed lineno line =
    failwith
      (Printf.sprintf "Trainer.load_curve: %s: line %d: malformed row %S" what
         lineno line)
  in
  let parse_int lineno line s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> malformed lineno line
  in
  let parse_float lineno line s =
    match float_of_string_opt s with
    | Some x -> x
    | None -> malformed lineno line
  in
  let parse_row lineno line e st raw ver comb fcc rollbacks =
    {
      epoch = parse_int lineno line e;
      steps = parse_int lineno line st;
      raw_reward = parse_float lineno line raw;
      verifier_reward = parse_float lineno line ver;
      combined_reward = parse_float lineno line comb;
      fcc = parse_float lineno line fcc;
      rollbacks =
        (match rollbacks with
        | None -> 0
        | Some r -> parse_int lineno line r);
    }
  in
  let rows = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if String.trim line = "" then ()
      else
        match String.split_on_char ',' line with
        | "epoch" :: _ when lineno = 1 -> ()
        | [ e; st; raw; ver; comb; fcc ] ->
            rows := parse_row lineno line e st raw ver comb fcc None :: !rows
        | [ e; st; raw; ver; comb; fcc; rb ] ->
            rows :=
              parse_row lineno line e st raw ver comb fcc (Some rb) :: !rows
        | _ -> malformed lineno line)
    (String.split_on_char '\n' s);
  List.rev !rows

let save_curve epochs path = Atomic_file.write path (curve_to_string epochs)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_curve path = curve_of_string ~what:path (read_file path)

(* ------------------------------------------------------------------ *)
(* Config fingerprint                                                  *)
(* ------------------------------------------------------------------ *)

(* Canonical digest of everything that shapes a training trajectory.
   Stored in every snapshot and checked on resume: silently resuming a
   run under a different configuration would produce a curve that belongs
   to neither config. *)
let config_fingerprint cfg =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "seed=%d;lambda=%h;property=%s;engine=%s;N=%d;history=%d;hidden=%d;steps=%d;ups=%d;log=%d"
    cfg.seed cfg.lambda
    (Format.asprintf "%a" Property.pp cfg.property)
    (match cfg.engine with
    | Certify.Batched -> "batched"
    | Certify.Per_slice -> "per-slice")
    cfg.n_components cfg.history cfg.hidden cfg.total_steps
    cfg.updates_per_step cfg.log_every;
  List.iter
    (fun (e : Agent_env.config) ->
      Printf.bprintf buf ";env=%s:%d:%d:%d:%d"
        (Canopy_trace.Trace.name e.trace)
        e.min_rtt_ms e.buffer_pkts e.duration_ms e.history)
    cfg.envs;
  Crc32.to_hex (Crc32.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Trainer progress (the state the agent snapshot does not cover)      *)
(* ------------------------------------------------------------------ *)

type progress = {
  p_step : int;
  p_epoch : int;
  p_rollbacks : int;
  p_raw : float;
  p_ver : float;
  p_comb : float;
  p_fcc : float;
  p_n : int;
  p_epochs : epoch list;  (* reversed accumulation order *)
}

let trainer_section p =
  Printf.sprintf "step %d\nepoch %d\nrollbacks %d\nacc %h %h %h %h %d\n"
    p.p_step p.p_epoch p.p_rollbacks p.p_raw p.p_ver p.p_comb p.p_fcc p.p_n

let parse_trainer_section ~what payload =
  let fail detail =
    failwith (Printf.sprintf "Trainer.train: %s: trainer section: %s" what detail)
  in
  let int s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail (Printf.sprintf "malformed integer %S" s)
  in
  let fl s =
    match float_of_string_opt s with
    | Some x -> x
    | None -> fail (Printf.sprintf "malformed float %S" s)
  in
  let words line =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun x -> x <> "")
  in
  match
    String.split_on_char '\n' payload |> List.filter (fun l -> String.trim l <> "")
  with
  | [ l1; l2; l3; l4 ] -> (
      match (words l1, words l2, words l3, words l4) with
      | ( [ "step"; s ],
          [ "epoch"; e ],
          [ "rollbacks"; rb ],
          [ "acc"; raw; ver; comb; fcc; n ] ) ->
          {
            p_step = int s;
            p_epoch = int e;
            p_rollbacks = int rb;
            p_raw = fl raw;
            p_ver = fl ver;
            p_comb = fl comb;
            p_fcc = fl fcc;
            p_n = int n;
            p_epochs = [];
          }
      | _ -> fail "unexpected layout")
  | _ -> fail "expected 4 lines"

(* ------------------------------------------------------------------ *)
(* The training loop                                                   *)
(* ------------------------------------------------------------------ *)

(* Consecutive rollbacks to the same snapshot (i.e. without reaching the
   next boundary) before the watchdog gives up: the reseeded exploration
   stream almost always steers past a one-off numerical fault, so
   exhausting this budget means the divergence is systematic. *)
let max_consecutive_rollbacks = 10

let train ?on_epoch ?snapshot_every ?snapshot_path ?resume ?fault_hook cfg =
  if cfg.envs = [] then invalid_arg "Trainer.train: empty env pool";
  Log.info (fun m ->
      m "training: lambda=%.2f %a N=%d steps=%d envs=%d hidden=%d" cfg.lambda
        Property.pp cfg.property cfg.n_components cfg.total_steps
        (List.length cfg.envs) cfg.hidden);
  if cfg.lambda < 0. || cfg.lambda > 1. then
    invalid_arg "Trainer.train: lambda";
  List.iter
    (fun (e : Agent_env.config) ->
      if e.history <> cfg.history then
        invalid_arg "Trainer.train: env history mismatch")
    cfg.envs;
  (match snapshot_every with
  | Some k when k <= 0 -> invalid_arg "Trainer.train: snapshot_every"
  | _ -> ());
  let watchdog = snapshot_every <> None in
  let snap_k = Option.value snapshot_every ~default:0 in
  if (snapshot_path <> None || resume <> None) && not watchdog then
    invalid_arg "Trainer.train: snapshot_path/resume require snapshot_every";
  let rng = Prng.create cfg.seed in
  let state_dim = cfg.history * Observation.feature_count in
  let td3_cfg =
    { (Td3.default_config ~state_dim ~action_dim:1) with hidden = cfg.hidden }
  in
  let agent = Td3.create ~rng:(Prng.split rng 0) td3_cfg in
  (* Pre-flight netcheck: a dimension mismatch or non-finite initial
     weight invalidates every certificate computed during training, so
     refuse to start. *)
  Canopy_analysis.Netcheck.assert_valid ~what:"actor (pre-training)"
    (Td3.actor agent);
  let fingerprint = config_fingerprint cfg in
  (* The env pool is rebuilt from config at every snapshot boundary (and
     on rollback/resume): env internals are not serializable, but
     [Agent_env.create] is deterministic from its config, so "fresh pool"
     is a state both an uninterrupted run and a resumed one can agree
     on bit-for-bit. *)
  let make_envs () =
    (* Each env is created and reset purely from its own config entry, so
       the boundary rebuild fans out over the domain pool; [Pool.map]
       preserves list order, keeping the pool bit-identical to the
       sequential rebuild at any domain count. *)
    Canopy_util.Pool.map
      (fun env_cfg ->
        let env = Agent_env.create env_cfg in
        ignore (Agent_env.reset env);
        env)
      (Array.of_list cfg.envs)
  in
  let envs = ref (make_envs ()) in
  let epochs = ref [] in
  let acc_raw = ref 0. and acc_ver = ref 0. and acc_comb = ref 0. in
  let acc_fcc = ref 0. and acc_n = ref 0 in
  let epoch_idx = ref 0 in
  let step = ref 0 in
  let rollbacks = ref 0 in
  (match resume with
  | None -> ()
  | Some path ->
      let fp, sections = Agent_snapshot.decode (Agent_snapshot.read path) in
      if fp <> fingerprint then
        failwith
          (Printf.sprintf
             "Trainer.train: %s: config fingerprint mismatch (snapshot %s, \
              config %s): refusing to resume under a different configuration"
             path fp fingerprint);
      Agent_snapshot.restore agent sections;
      let p =
        match List.assoc_opt "trainer" sections with
        | Some payload -> parse_trainer_section ~what:path payload
        | None ->
            failwith
              (Printf.sprintf "Trainer.train: %s: missing trainer section" path)
      in
      let curve =
        match List.assoc_opt "curve" sections with
        | Some payload -> curve_of_string ~what:path payload
        | None ->
            failwith
              (Printf.sprintf "Trainer.train: %s: missing curve section" path)
      in
      step := p.p_step;
      epoch_idx := p.p_epoch;
      rollbacks := p.p_rollbacks;
      acc_raw := p.p_raw;
      acc_ver := p.p_ver;
      acc_comb := p.p_comb;
      acc_fcc := p.p_fcc;
      acc_n := p.p_n;
      epochs := List.rev curve;
      envs := make_envs ();
      Log.info (fun m ->
          m "resumed from %s at step %d (epoch %d, %d rollbacks)" path !step
            !epoch_idx !rollbacks));
  let capture () =
    ( Td3.snapshot agent,
      {
        p_step = !step;
        p_epoch = !epoch_idx;
        p_rollbacks = !rollbacks;
        p_raw = !acc_raw;
        p_ver = !acc_ver;
        p_comb = !acc_comb;
        p_fcc = !acc_fcc;
        p_n = !acc_n;
        p_epochs = !epochs;
      } )
  in
  let persist p =
    match snapshot_path with
    | None -> ()
    | Some path ->
        let extra =
          [
            ("trainer", trainer_section p);
            ("curve", curve_to_string (List.rev !epochs));
          ]
        in
        Agent_snapshot.write ~path (Agent_snapshot.encode ~fingerprint ~extra agent)
  in
  let last_good = ref None in
  let consecutive_faults = ref 0 in
  if watchdog then begin
    let snap, p = capture () in
    last_good := Some (snap, p);
    persist p
  end;
  while !step < cfg.total_steps do
    step := !step + 1;
    let env = (!envs).(!step mod Array.length !envs) in
    let s = Agent_env.state env in
    let action_vec = Td3.select_action ~explore:true agent s in
    let action = action_vec.(0) in
    (* Certificate of the current policy in the current context,
       computed before the action is applied (Section 4.3). *)
    let cert =
      Certify.certify ~engine:cfg.engine ~actor:(Td3.actor agent)
        ~property:cfg.property
        ~n_components:cfg.n_components ~history:cfg.history ~state:s
        ~cwnd_tcp:(Agent_env.cwnd_tcp env)
        ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ()
    in
    let res = Agent_env.step env ~action in
    let reward =
      ((1. -. cfg.lambda) *. res.raw_reward)
      +. (cfg.lambda *. cert.r_verifier)
    in
    Td3.observe agent
      {
        Canopy_rl.Replay_buffer.state = s;
        action = action_vec;
        reward;
        next_state = res.state;
        (* Agent_env episodes end only when the trace's [duration_ms]
           elapses — a time-limit truncation, not an absorbing state of
           the congestion-control MDP — so TD targets must keep
           bootstrapping through it (see Replay_buffer.transition). *)
        terminal = false;
        truncated = res.finished;
      };
    for _ = 1 to cfg.updates_per_step do
      Td3.update agent
    done;
    (match fault_hook with Some f -> f ~step:!step agent | None -> ());
    let boundary =
      watchdog && (!step mod snap_k = 0 || !step = cfg.total_steps)
    in
    let healthy =
      (not watchdog)
      || Td3.finite agent
         && (not boundary
            || Canopy_analysis.Netcheck.check_mlp ~name:"actor" (Td3.actor agent)
               = [])
    in
    if not healthy then begin
      (* Divergence: rewind to the last good snapshot and retry the
         segment under a decorrelated exploration stream. [rollbacks] is
         cumulative run history, deliberately outside the rolled-back
         state. *)
      rollbacks := !rollbacks + 1;
      consecutive_faults := !consecutive_faults + 1;
      if !consecutive_faults > max_consecutive_rollbacks then
        failwith
          (Printf.sprintf
             "Trainer.train: divergence watchdog: %d consecutive rollbacks \
              without reaching the next snapshot boundary; the divergence is \
              systematic, not transient"
             !consecutive_faults);
      (match !last_good with
      | None -> assert false (* watchdog implies an initial capture *)
      | Some (snap, p) ->
          Log.warn (fun m ->
              m
                "divergence at step %d: non-finite parameters; rolling back \
                 to step %d (rollback %d)"
                !step p.p_step !rollbacks);
          Td3.restore agent snap;
          Td3.reseed agent ~salt:!rollbacks;
          step := p.p_step;
          epoch_idx := p.p_epoch;
          acc_raw := p.p_raw;
          acc_ver := p.p_ver;
          acc_comb := p.p_comb;
          acc_fcc := p.p_fcc;
          acc_n := p.p_n;
          epochs := p.p_epochs;
          envs := make_envs ())
    end
    else begin
      if res.finished then ignore (Agent_env.reset env);
      acc_raw := !acc_raw +. res.raw_reward;
      acc_ver := !acc_ver +. cert.r_verifier;
      acc_comb := !acc_comb +. reward;
      acc_fcc := !acc_fcc +. cert.fcc;
      incr acc_n;
      if !step mod cfg.log_every = 0 || !step = cfg.total_steps then begin
        let n = float_of_int !acc_n in
        incr epoch_idx;
        let e =
          {
            epoch = !epoch_idx;
            steps = !step;
            raw_reward = !acc_raw /. n;
            verifier_reward = !acc_ver /. n;
            combined_reward = !acc_comb /. n;
            fcc = !acc_fcc /. n;
            rollbacks = !rollbacks;
          }
        in
        epochs := e :: !epochs;
        Log.debug (fun m ->
            m "epoch %d (step %d): raw=%.3f verifier=%.3f combined=%.3f fcc=%.3f"
              e.epoch e.steps e.raw_reward e.verifier_reward e.combined_reward
              e.fcc);
        (match on_epoch with Some f -> f e | None -> ());
        acc_raw := 0.;
        acc_ver := 0.;
        acc_comb := 0.;
        acc_fcc := 0.;
        acc_n := 0
      end;
      if boundary then begin
        consecutive_faults := 0;
        let snap, p = capture () in
        last_good := Some (snap, p);
        persist p;
        envs := make_envs ()
      end
    end
  done;
  (agent, List.rev !epochs)

let save_actor agent path = Canopy_nn.Checkpoint.save (Td3.actor agent) path

let load_actor path =
  let net = Agent_snapshot.actor_of_file path in
  (* Evaluation and certification must not run over a corrupt
     checkpoint: validate shapes and finiteness before handing it out. *)
  Canopy_analysis.Netcheck.assert_valid ~what:path net;
  net

let load_or_train ?on_epoch ~cache_dir ~tag cfg =
  let path = Filename.concat cache_dir (tag ^ ".actor.ckpt") in
  let curve_path = Filename.concat cache_dir (tag ^ ".curve.csv") in
  if Sys.file_exists path then begin
    let epochs =
      if Sys.file_exists curve_path then load_curve curve_path
      else begin
        Log.warn (fun m ->
            m
              "actor checkpoint %s exists but its curve %s is missing; \
               returning an empty curve (delete the checkpoint to retrain)"
              path curve_path);
        []
      end
    in
    (load_actor path, epochs)
  end
  else begin
    let agent, epochs = train ?on_epoch cfg in
    Atomic_file.mkdir_p cache_dir;
    save_actor agent path;
    save_curve epochs curve_path;
    (Canopy_rl.Td3.actor agent, epochs)
  end
