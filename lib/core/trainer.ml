let log_src = Logs.Src.create "canopy.trainer" ~doc:"certificate-in-the-loop training"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Agent_env = Canopy_orca.Agent_env
module Observation = Canopy_orca.Observation
module Td3 = Canopy_rl.Td3
module Prng = Canopy_util.Prng

type config = {
  seed : int;
  lambda : float;
  property : Property.t;
  engine : Certify.engine;
  n_components : int;
  history : int;
  hidden : int;
  total_steps : int;
  updates_per_step : int;
  envs : Agent_env.config list;
  log_every : int;
}

let default_config ?(seed = 42) ?(lambda = 0.25)
    ?(property = Property.performance ()) ?(engine = Certify.Batched)
    ?(n_components = 5) ?(total_steps = 4000) ~envs () =
  {
    seed;
    lambda;
    property;
    engine;
    n_components;
    history = 5;
    hidden = 64;
    total_steps;
    updates_per_step = 1;
    envs;
    log_every = 100;
  }

let env_pool ?(n = 8) ?(bw_range_mbps = (6., 192.)) ?(rtt_range_ms = (10, 200))
    ?(duration_ms = 10_000) ?(history = 5) ~seed () =
  if n <= 0 then invalid_arg "Trainer.env_pool: n";
  let bw_lo, bw_hi = bw_range_mbps in
  let rtt_lo, rtt_hi = rtt_range_ms in
  List.init n (fun i ->
      (* Stratified sampling, as in the paper's actor pool: env [i] draws
         bandwidth and RTT from the [i]-th of [n] equal strata, jittered
         by a PRNG derived purely from [(seed, i)] — [List.init]'s
         evaluation order is unspecified, so the stream must not be
         shared across envs. *)
      let rng = Prng.create ((seed * 1_000_003) + i) in
      let stratum u = (float_of_int i +. u) /. float_of_int n in
      let bw_frac = stratum (Prng.float rng 1.) in
      let rtt_frac = stratum (Prng.float rng 1.) in
      let bw = Canopy_util.Mathx.lerp bw_lo bw_hi bw_frac in
      let rtt =
        rtt_lo
        + int_of_float
            (rtt_frac *. float_of_int (rtt_hi - rtt_lo))
      in
      let trace =
        Canopy_trace.Trace.constant
          ~name:(Printf.sprintf "train-s%d-%02d-%gmbps-%dms" seed i bw rtt)
          ~duration_ms ~mbps:bw
      in
      let buffer_pkts =
        Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace
          ~min_rtt_ms:rtt
      in
      {
        (Agent_env.default_config ~trace ~min_rtt_ms:rtt ~buffer_pkts
           ~duration_ms)
        with
        history;
      })

type epoch = {
  epoch : int;
  steps : int;
  raw_reward : float;
  verifier_reward : float;
  combined_reward : float;
  fcc : float;
}

let train ?on_epoch cfg =
  if cfg.envs = [] then invalid_arg "Trainer.train: empty env pool";
  Log.info (fun m ->
      m "training: lambda=%.2f %a N=%d steps=%d envs=%d hidden=%d" cfg.lambda
        Property.pp cfg.property cfg.n_components cfg.total_steps
        (List.length cfg.envs) cfg.hidden);
  if cfg.lambda < 0. || cfg.lambda > 1. then
    invalid_arg "Trainer.train: lambda";
  List.iter
    (fun (e : Agent_env.config) ->
      if e.history <> cfg.history then
        invalid_arg "Trainer.train: env history mismatch")
    cfg.envs;
  let rng = Prng.create cfg.seed in
  let state_dim = cfg.history * Observation.feature_count in
  let td3_cfg =
    { (Td3.default_config ~state_dim ~action_dim:1) with hidden = cfg.hidden }
  in
  let agent = Td3.create ~rng:(Prng.split rng) td3_cfg in
  (* Pre-flight netcheck: a dimension mismatch or non-finite initial
     weight invalidates every certificate computed during training, so
     refuse to start. *)
  Canopy_analysis.Netcheck.assert_valid ~what:"actor (pre-training)"
    (Td3.actor agent);
  let envs = Array.of_list (List.map Agent_env.create cfg.envs) in
  Array.iter (fun env -> ignore (Agent_env.reset env)) envs;
  let epochs = ref [] in
  let acc_raw = ref 0. and acc_ver = ref 0. and acc_comb = ref 0. in
  let acc_fcc = ref 0. and acc_n = ref 0 in
  let epoch_idx = ref 0 in
  for step = 1 to cfg.total_steps do
    let env = envs.(step mod Array.length envs) in
    let s = Agent_env.state env in
    let action_vec = Td3.select_action ~explore:true agent s in
    let action = action_vec.(0) in
    (* Certificate of the current policy in the current context,
       computed before the action is applied (Section 4.3). *)
    let cert =
      Certify.certify ~engine:cfg.engine ~actor:(Td3.actor agent)
        ~property:cfg.property
        ~n_components:cfg.n_components ~history:cfg.history ~state:s
        ~cwnd_tcp:(Agent_env.cwnd_tcp env)
        ~prev_cwnd:(Agent_env.prev_cwnd_enforced env) ()
    in
    let res = Agent_env.step env ~action in
    let reward =
      ((1. -. cfg.lambda) *. res.raw_reward)
      +. (cfg.lambda *. cert.r_verifier)
    in
    Td3.observe agent
      {
        Canopy_rl.Replay_buffer.state = s;
        action = action_vec;
        reward;
        next_state = res.state;
        (* Agent_env episodes end only when the trace's [duration_ms]
           elapses — a time-limit truncation, not an absorbing state of
           the congestion-control MDP — so TD targets must keep
           bootstrapping through it (see Replay_buffer.transition). *)
        terminal = false;
        truncated = res.finished;
      };
    for _ = 1 to cfg.updates_per_step do
      Td3.update agent
    done;
    if res.finished then ignore (Agent_env.reset env);
    acc_raw := !acc_raw +. res.raw_reward;
    acc_ver := !acc_ver +. cert.r_verifier;
    acc_comb := !acc_comb +. reward;
    acc_fcc := !acc_fcc +. cert.fcc;
    incr acc_n;
    if step mod cfg.log_every = 0 || step = cfg.total_steps then begin
      let n = float_of_int !acc_n in
      incr epoch_idx;
      let e =
        {
          epoch = !epoch_idx;
          steps = step;
          raw_reward = !acc_raw /. n;
          verifier_reward = !acc_ver /. n;
          combined_reward = !acc_comb /. n;
          fcc = !acc_fcc /. n;
        }
      in
      epochs := e :: !epochs;
      Log.debug (fun m ->
          m "epoch %d (step %d): raw=%.3f verifier=%.3f combined=%.3f fcc=%.3f"
            e.epoch e.steps e.raw_reward e.verifier_reward e.combined_reward
            e.fcc);
      (match on_epoch with Some f -> f e | None -> ());
      acc_raw := 0.;
      acc_ver := 0.;
      acc_comb := 0.;
      acc_fcc := 0.;
      acc_n := 0
    end
  done;
  (agent, List.rev !epochs)

let save_actor agent path = Canopy_nn.Checkpoint.save (Td3.actor agent) path

let load_actor path =
  let net = Canopy_nn.Checkpoint.load path in
  (* Evaluation and certification must not run over a corrupt
     checkpoint: validate shapes and finiteness before handing it out. *)
  Canopy_analysis.Netcheck.assert_valid ~what:path net;
  net

let save_curve epochs path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "epoch,steps,raw,verifier,combined,fcc\n";
      List.iter
        (fun e ->
          Printf.fprintf oc "%d,%d,%h,%h,%h,%h\n" e.epoch e.steps
            e.raw_reward e.verifier_reward e.combined_reward e.fcc)
        epochs)

let load_curve path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            match String.split_on_char ',' line with
            | [ e; s; raw; ver; comb; fcc ] when e <> "epoch" ->
                read
                  ({
                     epoch = int_of_string e;
                     steps = int_of_string s;
                     raw_reward = float_of_string raw;
                     verifier_reward = float_of_string ver;
                     combined_reward = float_of_string comb;
                     fcc = float_of_string fcc;
                   }
                  :: acc)
            | _ -> read acc)
      in
      read [])

let load_or_train ?on_epoch ~cache_dir ~tag cfg =
  let path = Filename.concat cache_dir (tag ^ ".actor.ckpt") in
  let curve_path = Filename.concat cache_dir (tag ^ ".curve.csv") in
  if Sys.file_exists path then begin
    let epochs =
      if Sys.file_exists curve_path then load_curve curve_path else []
    in
    (load_actor path, epochs)
  end
  else begin
    let agent, epochs = train ?on_epoch cfg in
    if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
    save_actor agent path;
    save_curve epochs curve_path;
    (Canopy_rl.Td3.actor agent, epochs)
  end
