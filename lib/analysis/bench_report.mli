(** Perf-history reporting and regression gating over the BENCH_*.json
    records.

    Full bench runs write machine-readable records at the repo root
    (committed: the recorded baselines) and archive a timestamped copy
    under [_artifacts/bench_history/].  This module parses both (with a
    dependency-free JSON reader), flattens every record's [entries] into
    per-kernel time metrics, renders a markdown speedup/regression table
    across commits, and gates: a tracked kernel whose latest full-run
    measurement is more than [threshold_pct] slower than its committed
    baseline is a regression. *)

(** Minimal JSON value — just enough for the BENCH_* records. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_of_string : string -> json
(** Strict parser: raises [Failure] on malformed input or trailing
    garbage. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] otherwise. *)

type entry = {
  bench : string;  (** top-level ["bench"] tag of the record *)
  kernel : string;  (** derived key, e.g. [train_step/actor_forward_b64] *)
  metric : string;  (** which time field, e.g. [ns_per_op] *)
  value : float;  (** the time measurement — smaller is better *)
  skipped : bool;  (** entry carried a [skipped_reason]: not a claim *)
}

val entries_of_record : json -> entry list
(** Flatten one BENCH_* record.  Each element of its ["entries"] array
    contributes one entry keyed by the record's bench tag plus the
    element's identifying fields ([name]/[workload]/[batch]/[flows]/
    [domains]); the value is the first time-like field present
    ([ns_per_op], [ns_per_cert], [ns_per_decision], [wall_s]).  Records
    with ["mode": "smoke"] and elements without a time field yield
    nothing. *)

type snapshot = { stamp : string; entries : entry list }

val load_baselines : dir:string -> entry list
(** Parse every committed [BENCH_*.json] directly under [dir].
    Unreadable or malformed files are skipped with a warning on stderr. *)

val load_history : dir:string -> snapshot list
(** Parse every [*.json] under the bench-history directory (filenames
    [BENCH_<stem>-<stamp>.json]), grouped per timestamp and sorted
    chronologically.  A missing directory yields []. *)

type regression = {
  r_kernel : string;
  baseline : float;
  latest : float;
  delta_pct : float;  (** positive = slower than baseline *)
}

type report = {
  markdown : string;  (** per-bench tables: kernels x snapshots + baseline *)
  regressions : regression list;  (** kernels beyond the threshold *)
  tracked : int;  (** baseline kernels considered *)
  compared : int;  (** kernels with both a baseline and history *)
}

val build :
  ?threshold_pct:float -> baselines:entry list -> history:snapshot list ->
  unit -> report
(** Assemble the report.  [threshold_pct] defaults to 15.  Skipped
    entries (oversubscribed domain rows etc.) are shown in the table but
    never gate.  Kernels with no history are tracked but not compared —
    the gate only acts on measurements that exist, and the report says
    how many it could compare. *)
