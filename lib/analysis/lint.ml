let default_dirs = [ "lib"; "bin" ]

let rules =
  [
    ( "polymorphic-compare",
      "bare `compare` is NaN-unsound on floats and boxes all arguments; use \
       Float.compare / Int.compare or a typed comparator" );
    ( "float-min-max",
      "polymorphic `min`/`max` on floats is NaN-unsound and boxing-heavy; \
       use Float.min / Float.max" );
    ( "int-of-float",
      "`int_of_float` on a NaN or out-of-range value is unspecified; bound \
       the argument first, then baseline the reviewed call site" );
    ("obj-magic", "`Obj.magic` defeats the type system");
    ( "catch-all-exn",
      "catch-all `with _ ->` swallows Out_of_memory, Stack_overflow and \
       programming errors; match specific exceptions" );
    ( "array-make-alias",
      "`Array.make n e` with a mutable `e` (array literal or nested \
       Array.make) stores the SAME value in every slot, so writing one \
       row writes them all; use `Array.init n (fun _ -> ...)`" );
    ( "missing-mli",
      "library module has no .mli; interfaces are required under lib/ so \
       the public surface stays explicit" );
    ( "mlp-layer-walk",
      "direct `Mlp.layers` traversal re-forks the batch-norm folding \
       arithmetic; outside lib/nn only the Anet IR builder may walk the \
       layer list — go through Canopy_absint.Anet instead" );
    ( "non-atomic-write",
      "bare `open_out` replaces the target in place, so a crash mid-write \
       leaves a torn file that a later load trusts; persist through \
       Canopy_util.Atomic_file.write (stage + rename) instead" );
    ( "raw-domain-spawn",
      "bare `Domain.spawn`/`Thread.create` bypasses the deterministic \
       domain pool, so chunking (and with it float results) can depend \
       on scheduling; run parallel work through Canopy_util.Pool \
       instead" );
  ]

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Columns where [id] occurs as a bare (unqualified, whole-token)
   identifier: not preceded by an identifier char, '.', '~' or '?', and
   not followed by an identifier char. *)
let bare_occurrences line id =
  let n = String.length line and m = String.length id in
  let bad_prefix c = is_ident_char c || c = '.' || c = '~' || c = '?' in
  let rec go acc i =
    if i + m > n then List.rev acc
    else if
      String.sub line i m = id
      && (i = 0 || not (bad_prefix line.[i - 1]))
      && (i + m = n || not (is_ident_char line.[i + m]))
    then go (i :: acc) (i + m)
    else go acc (i + 1)
  in
  go [] 0

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let skip_spaces line i =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  go i

(* Does the text starting at [i] begin with a float literal, modulo an
   opening parenthesis and a sign? Matches e.g. "1.", "0.5", "(-3.)". *)
let starts_with_float_literal line i =
  let n = String.length line in
  let i = skip_spaces line i in
  let i = if i < n && line.[i] = '(' then skip_spaces line (i + 1) else i in
  let i = if i < n && (line.[i] = '-' || line.[i] = '+') then i + 1 else i in
  let j = ref i in
  while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
    incr j
  done;
  !j > i && !j < n && line.[!j] = '.'

let starts_with_int_literal line i =
  let n = String.length line in
  let i = skip_spaces line i in
  let j = ref i in
  while !j < n && ((line.[!j] >= '0' && line.[!j] <= '9') || line.[!j] = '_') do
    incr j
  done;
  !j > i && (!j = n || line.[!j] <> '.')

let ends_with_word line i word =
  (* the non-space text before column [i] ends with the token [word] *)
  let rec back i = if i > 0 && (line.[i - 1] = ' ' || line.[i - 1] = '\t') then back (i - 1) else i in
  let stop = back i in
  let m = String.length word in
  stop >= m
  && String.sub line (stop - m) m = word
  && (stop = m || not (is_ident_char line.[stop - m - 1]))

(* --- line-scoped rules ------------------------------------------------ *)

let check_polymorphic_compare line =
  if bare_occurrences line "compare" <> [] || contains line "Stdlib.compare"
  then Some (List.assoc "polymorphic-compare" rules)
  else None

let check_float_min_max line =
  let flagged id =
    List.exists
      (fun c ->
        let after = c + String.length id in
        let k = skip_spaces line after in
        let next = if k < String.length line then Some line.[k] else None in
        match next with
        | Some (':' | '=' | ';' | ',' | ')' | '}') | None ->
            (* record field, definition or bare mention — not an
               application with a visible argument *)
            false
        | Some _ ->
            if starts_with_float_literal line after then true
            else
              (ends_with_word line c "fold_left"
              || ends_with_word line c "fold_right")
              && not (starts_with_int_literal line after))
      (bare_occurrences line id)
  in
  if flagged "min" || flagged "max" then
    Some (List.assoc "float-min-max" rules)
  else None

let check_int_of_float line =
  if bare_occurrences line "int_of_float" <> [] then
    Some (List.assoc "int-of-float" rules)
  else None

let check_obj_magic line =
  if contains line "Obj.magic" then Some (List.assoc "obj-magic" rules)
  else None

let check_catch_all line =
  let matches_at c =
    let i = skip_spaces line (c + 4) in
    let n = String.length line in
    i < n
    && line.[i] = '_'
    && (i + 1 = n || not (is_ident_char line.[i + 1]))
    &&
    let j = skip_spaces line (i + 1) in
    j + 1 < n && line.[j] = '-' && line.[j + 1] = '>'
  in
  if List.exists matches_at (bare_occurrences line "with") then
    Some (List.assoc "catch-all-exn" rules)
  else None

let check_array_make_alias line =
  let n = String.length line in
  let starts_with i sub =
    let m = String.length sub in
    i + m <= n && String.sub line i m = sub
  in
  (* Skip Array.make's first argument: either a parenthesized expression
     or a simple (possibly qualified) identifier / literal. *)
  let skip_first_arg i =
    let i = skip_spaces line i in
    if i < n && line.[i] = '(' then begin
      let depth = ref 0 and j = ref i and stop = ref (-1) in
      while !stop < 0 && !j < n do
        (match line.[!j] with
        | '(' -> incr depth
        | ')' ->
            decr depth;
            if !depth = 0 then stop := !j + 1
        | _ -> ());
        incr j
      done;
      if !stop < 0 then None else Some !stop
    end
    else begin
      let j = ref i in
      while !j < n && (is_ident_char line.[!j] || line.[!j] = '.') do
        incr j
      done;
      if !j = i then None else Some !j
    end
  in
  let aliasing_at c =
    match skip_first_arg (c + String.length "Array.make") with
    | None -> false
    | Some j ->
        let j = skip_spaces line j in
        let j =
          if j < n && line.[j] = '(' then skip_spaces line (j + 1) else j
        in
        starts_with j "[|" || starts_with j "Array.make"
  in
  if List.exists aliasing_at (bare_occurrences line "Array.make") then
    Some (List.assoc "array-make-alias" rules)
  else None

let check_mlp_layer_walk line =
  if contains line "Mlp.layers" then Some (List.assoc "mlp-layer-walk" rules)
  else None

(* [open_out], [open_out_bin] and [open_out_gen] as bare identifiers.
   [bare_occurrences "open_out"] already refuses a following identifier
   char, so the variants need their own probes. *)
let check_non_atomic_write line =
  if
    bare_occurrences line "open_out" <> []
    || bare_occurrences line "open_out_bin" <> []
    || bare_occurrences line "open_out_gen" <> []
  then Some (List.assoc "non-atomic-write" rules)
  else None

let line_rules =
  [
    ("polymorphic-compare", check_polymorphic_compare);
    ("float-min-max", check_float_min_max);
    ("int-of-float", check_int_of_float);
    ("obj-magic", check_obj_magic);
    ("catch-all-exn", check_catch_all);
    ("array-make-alias", check_array_make_alias);
  ]

(* [mlp-layer-walk] is a path-scoped line rule: the layer list is
   the private business of lib/nn, and the single sanctioned external
   consumer is the verifier-IR builder (anet.ml), which owns the one
   restatement of the batch-norm folding arithmetic. *)
let mlp_layer_walk_exempt path =
  let has_prefix p =
    String.length path >= String.length p
    && String.sub path 0 (String.length p) = p
  in
  has_prefix (Filename.concat "lib" "nn" ^ Filename.dir_sep)
  || Filename.basename path = "anet.ml"

(* [non-atomic-write] is likewise path-scoped: the staging implementation
   inside Atomic_file is the one place a bare [open_out_gen] is the
   point, not a hazard. *)
let non_atomic_write_exempt path = Filename.basename path = "atomic_file.ml"

let check_raw_domain_spawn line =
  if contains line "Domain.spawn" || contains line "Thread.create" then
    Some (List.assoc "raw-domain-spawn" rules)
  else None

(* [raw-domain-spawn] funnels all parallelism through the deterministic
   pool; the pool implementation itself is the one sanctioned spawner. *)
let raw_domain_spawn_exempt path = Filename.basename path = "pool.ml"

let line_rules_for path =
  let line_rules =
    if mlp_layer_walk_exempt path then line_rules
    else line_rules @ [ ("mlp-layer-walk", check_mlp_layer_walk) ]
  in
  let line_rules =
    if non_atomic_write_exempt path then line_rules
    else line_rules @ [ ("non-atomic-write", check_non_atomic_write) ]
  in
  if raw_domain_spawn_exempt path then line_rules
  else line_rules @ [ ("raw-domain-spawn", check_raw_domain_spawn) ]

let check_source ?only ~path contents =
  let stripped = Sources.strip contents in
  let original = Array.of_list (String.split_on_char '\n' contents) in
  let line_rules = line_rules_for path in
  let line_rules =
    match only with
    | None -> line_rules
    | Some names ->
        List.filter (fun (rule, _) -> List.mem rule names) line_rules
  in
  let diags = ref [] in
  Array.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      List.iter
        (fun (rule, check) ->
          match check line with
          | Some message when not (Sources.ignored stripped ~line:lineno ~rule)
            ->
              let text =
                if idx < Array.length original then original.(idx) else ""
              in
              diags :=
                Diagnostic.make ~rule ~file:path ~line:lineno ~text message
                :: !diags
          | _ -> ())
        line_rules)
    stripped.lines;
  List.rev !diags

(* --- file-scoped rules ------------------------------------------------ *)

let check_missing_mli ~root ml_files =
  List.filter_map
    (fun rel ->
      if
        String.length rel >= 4
        && String.sub rel 0 4 = "lib" ^ Filename.dir_sep
        && not (Sys.file_exists (Filename.concat root (rel ^ "i")))
      then
        Some
          (Diagnostic.make ~rule:"missing-mli" ~file:rel
             (List.assoc "missing-mli" rules))
      else None)
    ml_files

(* The NaN-unsoundness rules also cover bench/ and test/: a
   NaN-swallowing comparison in a benchmark reducer or a test oracle
   silently accepts garbage, which is exactly where it hurts most. The
   remaining rules stay scoped to lib/ and bin/ (tests legitimately use
   open_out on temp files, catch-all handlers around expected failures,
   and so on). *)
let nan_rules = [ "polymorphic-compare"; "float-min-max" ]
let nan_rule_dirs = [ "bench"; "test" ]

let run ?(dirs = default_dirs) ~root () =
  let files = Sources.find_files ~root ~dirs ~ext:".ml" in
  let line_diags =
    List.concat_map
      (fun rel ->
        check_source ~path:rel (Sources.read_file (Filename.concat root rel)))
      files
  in
  let extra_dirs =
    List.filter (fun d -> not (List.mem d dirs)) nan_rule_dirs
  in
  let extra_diags =
    List.concat_map
      (fun rel ->
        check_source ~only:nan_rules ~path:rel
          (Sources.read_file (Filename.concat root rel)))
      (Sources.find_files ~root ~dirs:extra_dirs ~ext:".ml")
  in
  List.sort Diagnostic.compare
    (check_missing_mli ~root files @ line_diags @ extra_diags)
