(* Differential soundness audit of the abstract transformers.

   For every primitive transformer F over domain D and its concrete
   counterpart f, soundness demands f(x) ∈ γ(F(X)) for all x ∈ γ(X). We
   cannot prove that here, but we can sanitize it: sample concrete points
   inside random abstract inputs, push the point through f and the
   abstract element through F, and report any escape. A single violation
   means the verifier's certificates cannot be trusted.

   Scalar interval transformers are checked with *exact* containment:
   IEEE-754 rounding is monotone, so a sound implementation passes
   bit-for-bit and any escape is a real bug. Matrix and network passes
   accumulate sums in an order that may differ between the concrete and
   abstract paths, so those use a 1e-9 relative tolerance to avoid
   crying wolf on reassociation noise. *)

open Canopy_tensor
open Canopy_absint
module Prng = Canopy_util.Prng

type violation = { op : string; trial : int; seed : int; detail : string }

type result = {
  samples : int;
  per_op : (string * int) list;
  violation_count : int;
  violations : violation list;  (** reported subset, capped at [max_report] *)
}

let iv = Format.asprintf "%a" Interval.pp

let contains_tol ~tol i x =
  let slack = tol *. (1. +. Float.abs x) in
  Interval.lo i -. slack <= x && x <= Interval.hi i +. slack

(* Random interval: mixed signs, occasional degenerate width. *)
let gen_interval ?(span = 20.) rng =
  let c = Prng.uniform rng (-.span) span in
  let r = if Prng.float rng 1. < 0.1 then 0. else Prng.float rng (0.5 *. span) in
  Interval.make (c -. r) (c +. r)

let gen_box rng ~dim =
  Box.of_intervals (Array.init dim (fun _ -> gen_interval ~span:3. rng))

(* --- scalar interval transformers ------------------------------------- *)

let unary_check name f_abs f_conc rng trial =
  let a = gen_interval rng in
  let x = Interval.sample rng a in
  let out = f_abs a in
  let y = f_conc x in
  if Interval.contains out y then None
  else
    Some
      (Printf.sprintf "%s: f(%.17g) = %.17g escapes %s (input %s)" name x y
        (iv out) (iv a))
  |> Option.map (fun detail -> { op = name; trial; seed = 0; detail })

let binary_check name f_abs f_conc rng trial =
  let a = gen_interval rng and b = gen_interval rng in
  let x = Interval.sample rng a and y = Interval.sample rng b in
  let out = f_abs a b in
  let z = f_conc x y in
  if Interval.contains out z then None
  else
    Some
      {
        op = name;
        trial;
        seed = 0;
        detail =
          Printf.sprintf "%s: f(%.17g, %.17g) = %.17g escapes %s (inputs %s %s)"
            name x y z (iv out) (iv a) (iv b);
      }

(* Deterministic corner probes for the 0·∞ annihilation convention: the
   abstract product of closed intervals must never produce NaN bounds,
   and must keep containing every finite concrete product. *)
let interval_mul_edge _rng trial =
  let inf = Float.infinity in
  let full = Interval.make (-.inf) inf in
  let probes =
    [
      ("mul [0,0] [-inf,inf]", Interval.mul (Interval.of_point 0.) full, 0.);
      ("mul [-inf,inf] [0,0]", Interval.mul full (Interval.of_point 0.), 0.);
      ( "mul [0,5] [0,inf]",
        Interval.mul (Interval.make 0. 5.) (Interval.make 0. inf),
        4. *. 1e12 );
      ("scale 0 [-inf,inf]", Interval.scale 0. full, 0.);
      ("scale -0 [-inf,inf]", Interval.scale (-0.) full, 0.);
      ("mul [-inf,0] [0,3]", Interval.mul (Interval.make (-.inf) 0.) (Interval.make 0. 3.), -6.);
    ]
  in
  List.find_map
    (fun (what, out, witness) ->
      if Float.is_nan (Interval.lo out) || Float.is_nan (Interval.hi out) then
        Some (Printf.sprintf "%s: NaN bound %s" what (iv out))
      else if not (Interval.contains out witness) then
        Some
          (Printf.sprintf "%s: witness %.17g escapes %s" what witness (iv out))
      else None)
    probes
  |> Option.map (fun detail ->
         { op = "interval.mul.edge"; trial; seed = 0; detail })

(* --- box transformers -------------------------------------------------- *)

let box_contains_tol ~tol box y =
  let ok = ref true in
  for i = 0 to Box.dim box - 1 do
    if not (contains_tol ~tol (Box.dimension box i) y.(i)) then ok := false
  done;
  !ok

let pp_vec v =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") v))

let box_affine_check rng trial =
  let dim = 2 + Prng.int rng 4 in
  let rows = 1 + Prng.int rng 4 in
  let m =
    Mat.init ~rows ~cols:dim (fun _ _ -> Prng.uniform rng (-2.) 2.)
  in
  let b = Vec.init rows (fun _ -> Prng.uniform rng (-1.) 1.) in
  let box = gen_box rng ~dim in
  let x = Box.sample rng box in
  let out = Box.affine m b box in
  let y = Mat.mat_vec m x in
  Vec.axpy ~alpha:1. ~x:b ~y;
  if box_contains_tol ~tol:1e-9 out y then None
  else
    Some
      {
        op = "box.affine";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "box.affine: Mx+b (%s) escapes %s for x (%s)"
            (pp_vec y)
            (Format.asprintf "%a" Box.pp out)
            (pp_vec x);
      }

let box_diag_affine_check rng trial =
  let dim = 2 + Prng.int rng 4 in
  let box = gen_box rng ~dim in
  let scale = Vec.init dim (fun _ -> Prng.uniform rng (-3.) 3.) in
  let shift = Vec.init dim (fun _ -> Prng.uniform rng (-2.) 2.) in
  let x = Box.sample rng box in
  let out = Box.diag_affine ~scale ~shift box in
  let y = Vec.init dim (fun i -> (scale.(i) *. x.(i)) +. shift.(i)) in
  if box_contains_tol ~tol:1e-9 out y then None
  else
    Some
      {
        op = "box.diag_affine";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "box.diag_affine: image (%s) escapes %s" (pp_vec y)
            (Format.asprintf "%a" Box.pp out);
      }

let box_monotone_check rng trial =
  let dim = 2 + Prng.int rng 4 in
  let box = gen_box rng ~dim in
  let x = Box.sample rng box in
  let out = Box.map_monotone Float.tanh box in
  let y = Array.map Float.tanh x in
  if box_contains_tol ~tol:0. out y then None
  else
    Some
      {
        op = "box.map_monotone";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "box.map_monotone tanh: image (%s) escapes %s"
            (pp_vec y)
            (Format.asprintf "%a" Box.pp out);
      }

(* --- network passes ---------------------------------------------------- *)

type net_pool = { mutable net : Canopy_nn.Mlp.t option; mutable age : int }

let fresh_net rng =
  let in_dim = 3 + Prng.int rng 5 in
  let hidden = 6 + Prng.int rng 10 in
  Canopy_nn.Mlp.actor ~rng ~in_dim ~hidden ~out_dim:1

(* Re-use each random network for a handful of samples: building the net
   dominates the cost of one forward pass. *)
let pooled pool rng =
  (match pool.net with
  | Some _ when pool.age < 20 -> pool.age <- pool.age + 1
  | _ ->
      pool.net <- Some (fresh_net rng);
      pool.age <- 0);
  Option.get pool.net

let ibp_pool = { net = None; age = 0 }
let zono_pool = { net = None; age = 0 }

let net_box rng net =
  let in_dim = Canopy_nn.Mlp.in_dim net in
  Box.of_intervals
    (Array.init in_dim (fun _ ->
         let c = Prng.uniform rng (-1.) 1. in
         let r = Prng.float rng 0.7 in
         Interval.make (c -. r) (c +. r)))

let ibp_check rng trial =
  let net = pooled ibp_pool rng in
  let box = net_box rng net in
  let x = Box.sample rng box in
  let out = Ibp.output_interval net box in
  let y = (Canopy_nn.Mlp.forward net x).(0) in
  if contains_tol ~tol:1e-9 out y then None
  else
    Some
      {
        op = "ibp.mlp";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "ibp.mlp: forward %.17g escapes %s for x (%s)" y
            (iv out) (pp_vec x);
      }

let zono_mlp_check rng trial =
  let net = pooled zono_pool rng in
  let box = net_box rng net in
  let x = Box.sample rng box in
  let out = Zonotope.output_interval net box in
  let y = (Canopy_nn.Mlp.forward net x).(0) in
  if contains_tol ~tol:1e-9 out y then None
  else
    Some
      {
        op = "zonotope.mlp";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "zonotope.mlp: forward %.17g escapes %s for x (%s)" y
            (iv out) (pp_vec x);
      }

(* --- verifier-IR passes ------------------------------------------------ *)

let anet_pool = { net = None; age = 0 }

(* Mix in critic-shaped nets (no batch norm, linear head) so extraction
   covers both the flush-on-activation and trailing-affine paths. *)
let fresh_anet_net rng =
  if Prng.bool rng then fresh_net rng
  else
    let state_dim = 2 + Prng.int rng 4 in
    let hidden = 6 + Prng.int rng 10 in
    Canopy_nn.Mlp.critic ~rng ~state_dim ~action_dim:1 ~hidden

let pooled_anet rng =
  (match anet_pool.net with
  | Some _ when anet_pool.age < 20 -> anet_pool.age <- anet_pool.age + 1
  | _ ->
      anet_pool.net <- Some (fresh_anet_net rng);
      anet_pool.age <- 0);
  Option.get anet_pool.net

(* f(x) ∈ F(X) over the batched center–radius pass: a random workload of
   boxes through [Anet.output_intervals], then one box's sample checked
   against its interval. Uses the generation cache on purpose — a stale
   IR is exactly the kind of escape this audit must catch. *)
let anet_batched_check rng trial =
  let net = pooled_anet rng in
  let ir = Anet.cached net in
  let k = 1 + Prng.int rng 4 in
  let boxes = Array.init k (fun _ -> net_box rng net) in
  let outs = Anet.output_intervals ir boxes in
  let j = Prng.int rng k in
  let x = Box.sample rng boxes.(j) in
  let y = (Canopy_nn.Mlp.forward net x).(0) in
  if contains_tol ~tol:1e-9 outs.(j) y then None
  else
    Some
      {
        op = "anet.ibp.batched";
        trial;
        seed = 0;
        detail =
          Printf.sprintf
            "anet.ibp.batched: forward %.17g escapes %s (box %d of %d) for x \
             (%s)"
            y (iv outs.(j)) j k (pp_vec x);
      }

(* Fused multi-dimensional propagate: every output dimension of the IR
   image must contain the concrete forward (exercises critic heads with
   out_dim-agnostic [Anet.propagate]). *)
let anet_propagate_check rng trial =
  let net = pooled_anet rng in
  let ir = Anet.cached net in
  let box = net_box rng net in
  let x = Box.sample rng box in
  let out = Anet.propagate ir box in
  let y = Canopy_nn.Mlp.forward net x in
  if box_contains_tol ~tol:1e-9 out y then None
  else
    Some
      {
        op = "anet.propagate";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "anet.propagate: forward (%s) escapes %s for x (%s)"
            (pp_vec y)
            (Format.asprintf "%a" Box.pp out)
            (pp_vec x);
      }

let anet_zono_check rng trial =
  let net = pooled_anet rng in
  let ir = Anet.cached net in
  let box = net_box rng net in
  let x = Box.sample rng box in
  let out = (Zonotope.output_intervals_anet ir [| box |]).(0) in
  let y = (Canopy_nn.Mlp.forward net x).(0) in
  if contains_tol ~tol:1e-9 out y then None
  else
    Some
      {
        op = "anet.zonotope";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "anet.zonotope: forward %.17g escapes %s for x (%s)"
            y (iv out) (pp_vec x);
      }

let zono_activation_check name transform concrete rng trial =
  let dim = 2 + Prng.int rng 4 in
  let box = gen_box rng ~dim in
  let x = Box.sample rng box in
  let z = Zonotope.of_box box in
  let z' = transform z in
  let y = Array.map concrete x in
  let conc = Zonotope.concretize z' in
  if box_contains_tol ~tol:1e-9 conc y then None
  else
    Some
      {
        op = name;
        trial;
        seed = 0;
        detail =
          Printf.sprintf "%s: image (%s) of (%s) escapes %s" name (pp_vec y)
            (pp_vec x)
            (Format.asprintf "%a" Box.pp conc);
      }

let zono_affine_check rng trial =
  let dim = 2 + Prng.int rng 4 in
  let rows = 1 + Prng.int rng 4 in
  let m = Mat.init ~rows ~cols:dim (fun _ _ -> Prng.uniform rng (-2.) 2.) in
  let b = Vec.init rows (fun _ -> Prng.uniform rng (-1.) 1.) in
  let box = gen_box rng ~dim in
  let x = Box.sample rng box in
  let z = Zonotope.affine m b (Zonotope.of_box box) in
  let y = Mat.mat_vec m x in
  Vec.axpy ~alpha:1. ~x:b ~y;
  let conc = Zonotope.concretize z in
  if box_contains_tol ~tol:1e-9 conc y then None
  else
    Some
      {
        op = "zonotope.affine";
        trial;
        seed = 0;
        detail =
          Printf.sprintf "zonotope.affine: Mx+b (%s) escapes %s" (pp_vec y)
            (Format.asprintf "%a" Box.pp conc);
      }

(* --- the op table ------------------------------------------------------ *)

let leaky_slope = 0.01

let ops : (string * (Prng.t -> int -> violation option)) list =
  [
    ("interval.add", binary_check "interval.add" Interval.add ( +. ));
    ("interval.sub", binary_check "interval.sub" Interval.sub ( -. ));
    ("interval.mul", binary_check "interval.mul" Interval.mul ( *. ));
    ( "interval.neg",
      unary_check "interval.neg" Interval.neg (fun x -> -.x) );
    ( "interval.scale",
      fun rng trial ->
        let alpha = Prng.uniform rng (-5.) 5. in
        unary_check "interval.scale"
          (Interval.scale alpha)
          (fun x -> alpha *. x)
          rng trial );
    ( "interval.add_scalar",
      fun rng trial ->
        let c = Prng.uniform rng (-5.) 5. in
        unary_check "interval.add_scalar" (Interval.add_scalar c)
          (fun x -> x +. c)
          rng trial );
    ("interval.tanh", unary_check "interval.tanh" Interval.tanh Float.tanh);
    ( "interval.relu",
      unary_check "interval.relu" Interval.relu (fun x -> Float.max 0. x) );
    ( "interval.leaky_relu",
      unary_check "interval.leaky_relu"
        (Interval.leaky_relu ~slope:leaky_slope)
        (fun x -> if x >= 0. then x else leaky_slope *. x) );
    ( "interval.pow2",
      unary_check "interval.pow2" Interval.pow2 Canopy_util.Mathx.pow2 );
    ("interval.mul.edge", interval_mul_edge);
    ("box.affine", box_affine_check);
    ("box.diag_affine", box_diag_affine_check);
    ("box.map_monotone", box_monotone_check);
    ("ibp.mlp", ibp_check);
    ( "zonotope.relu",
      zono_activation_check "zonotope.relu" Zonotope.relu (fun x ->
          Float.max 0. x) );
    ( "zonotope.leaky_relu",
      zono_activation_check "zonotope.leaky_relu"
        (Zonotope.leaky_relu ~slope:leaky_slope)
        (fun x -> if x >= 0. then x else leaky_slope *. x) );
    ("zonotope.tanh", zono_activation_check "zonotope.tanh" Zonotope.tanh Float.tanh);
    ("zonotope.affine", zono_affine_check);
    ("zonotope.mlp", zono_mlp_check);
    ("anet.propagate", anet_propagate_check);
    ("anet.ibp.batched", anet_batched_check);
    ("anet.zonotope", anet_zono_check);
  ]

let op_names = List.map fst ops

let run ?(seed = 2026) ?(max_report = 25) ~samples () =
  if samples <= 0 then invalid_arg "Soundcheck.run: samples";
  ibp_pool.net <- None;
  zono_pool.net <- None;
  anet_pool.net <- None;
  let rng = Prng.create seed in
  let table = Array.of_list ops in
  let nops = Array.length table in
  let counts = Array.make nops 0 in
  let violations = ref [] in
  let nviol = ref 0 in
  for trial = 0 to samples - 1 do
    let k = trial mod nops in
    let name, check = table.(k) in
    counts.(k) <- counts.(k) + 1;
    match check rng trial with
    | None -> ()
    | Some v ->
        incr nviol;
        if !nviol <= max_report then
          violations := { v with seed; op = name } :: !violations
  done;
  {
    samples;
    per_op = List.mapi (fun i (name, _) -> (name, counts.(i))) ops;
    violation_count = !nviol;
    violations = List.rev !violations;
  }

let pp_violation ppf v =
  Format.fprintf ppf "UNSOUND [%s] trial=%d seed=%d %s" v.op v.trial v.seed
    v.detail
