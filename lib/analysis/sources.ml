let skip_dirs = [ "_build"; "_artifacts"; ".git"; "_opam"; "node_modules" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find_files ~root ~dirs ~ext =
  let results = ref [] in
  let rec walk rel =
    let abs = if rel = "" then root else Filename.concat root rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false ->
        if Filename.check_suffix rel ext then results := rel :: !results
    | true ->
        let base = Filename.basename abs in
        if
          (not (List.mem base skip_dirs))
          && not (String.length base > 0 && base.[0] = '.')
        then
          Array.iter
            (fun entry ->
              walk (if rel = "" then entry else Filename.concat rel entry))
            (Sys.readdir abs)
  in
  List.iter walk dirs;
  List.sort String.compare !results

type stripped = {
  lines : string array;
  ignores : (int * string) list;
}

(* The inline waiver marker, recognised inside comments:
     (* lint-ignore *)            waive every rule on this line
     (* lint-ignore: rule ... *)  waive the named rules on this line *)
let ignore_marker = "lint-ignore"

let parse_ignores line comment_text acc =
  match String.index_opt comment_text ':' with
  | _ when not (String.length comment_text >= String.length ignore_marker) ->
      acc
  | _ when String.sub comment_text 0 (String.length ignore_marker)
           <> ignore_marker ->
      acc
  | None -> (line, "*") :: acc
  | Some i ->
      let rest =
        String.sub comment_text (i + 1) (String.length comment_text - i - 1)
      in
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char ',')
      |> List.filter_map (fun s ->
             let s = String.trim s in
             if s = "" then None else Some (line, s))
      |> fun l -> l @ acc

(* Blank out comments, string literals and char literals, preserving
   newlines and column positions, so that the lint rules only ever match
   code. Handles nested comments and strings inside comments (OCaml lexes
   both). Quoted-string literals [{|...|}] are not handled; none appear in
   this repository. *)
let strip src =
  let n = String.length src in
  let buf = Bytes.of_string src in
  let ignores = ref [] in
  let line = ref 1 in
  let blank j = if Bytes.get buf j <> '\n' then Bytes.set buf j ' ' in
  let i = ref 0 in
  let step_blank () =
    if src.[!i] = '\n' then incr line else blank !i;
    incr i
  in
  (* Skips a string literal body starting after the opening quote, blanking
     as it goes. Returns at the char past the closing quote. *)
  let skip_string () =
    let closed = ref false in
    while (not !closed) && !i < n do
      if src.[!i] = '\\' && !i + 1 < n then begin
        step_blank ();
        step_blank ()
      end
      else if src.[!i] = '"' then begin
        blank !i;
        incr i;
        closed := true
      end
      else step_blank ()
    done
  in
  while !i < n do
    match src.[!i] with
    | '\n' -> incr i; incr line
    | '(' when !i + 1 < n && src.[!i + 1] = '*' ->
        let start_line = !line in
        let body = Buffer.create 32 in
        blank !i;
        blank (!i + 1);
        i := !i + 2;
        let depth = ref 1 in
        while !depth > 0 && !i < n do
          if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
            incr depth;
            step_blank ();
            step_blank ()
          end
          else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
            decr depth;
            step_blank ();
            step_blank ()
          end
          else if src.[!i] = '"' then begin
            (* strings must be balanced inside OCaml comments *)
            Buffer.add_char body ' ';
            step_blank ();
            skip_string ()
          end
          else begin
            Buffer.add_char body src.[!i];
            step_blank ()
          end
        done;
        ignores :=
          parse_ignores start_line (String.trim (Buffer.contents body)) !ignores
    | '"' ->
        blank !i;
        incr i;
        skip_string ()
    | '\'' ->
        (* Distinguish char literals from type variables: 'x' or '\...' *)
        if !i + 2 < n && src.[!i + 1] <> '\\' && src.[!i + 1] <> '\''
           && src.[!i + 2] = '\'' then begin
          blank !i;
          blank (!i + 1);
          blank (!i + 2);
          i := !i + 3
        end
        else if !i + 1 < n && src.[!i + 1] = '\\' then begin
          blank !i;
          incr i;
          while !i < n && src.[!i] <> '\'' do
            step_blank ()
          done;
          if !i < n then begin
            blank !i;
            incr i
          end
        end
        else incr i
    | _ -> incr i
  done;
  {
    lines = Array.of_list (String.split_on_char '\n' (Bytes.to_string buf));
    ignores = !ignores;
  }

let ignored stripped ~line ~rule =
  List.exists
    (fun (l, r) -> l = line && (r = "*" || r = rule))
    stripped.ignores
