(* [fixtures] is skipped because test/fixtures holds deliberately buggy
   sources (seeded race, rule keywords) that the repo-wide passes must
   not scan — tests load them explicitly by path. *)
let skip_dirs =
  [ "_build"; "_artifacts"; ".git"; "_opam"; "node_modules"; "fixtures" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find_files ~root ~dirs ~ext =
  let results = ref [] in
  let rec walk rel =
    let abs = if rel = "" then root else Filename.concat root rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false ->
        if Filename.check_suffix rel ext then results := rel :: !results
    | true ->
        let base = Filename.basename abs in
        if
          (not (List.mem base skip_dirs))
          && not (String.length base > 0 && base.[0] = '.')
        then
          Array.iter
            (fun entry ->
              walk (if rel = "" then entry else Filename.concat rel entry))
            (Sys.readdir abs)
  in
  List.iter walk dirs;
  List.sort String.compare !results

type stripped = {
  lines : string array;
  ignores : (int * string) list;
}

(* The inline waiver marker, recognised inside comments:
     (* lint-ignore *)            waive every rule on this line
     (* lint-ignore: rule ... *)  waive the named rules on this line *)
let ignore_marker = "lint-ignore"

let parse_ignores line comment_text acc =
  match String.index_opt comment_text ':' with
  | _ when not (String.length comment_text >= String.length ignore_marker) ->
      acc
  | _ when String.sub comment_text 0 (String.length ignore_marker)
           <> ignore_marker ->
      acc
  | None -> (line, "*") :: acc
  | Some i ->
      let rest =
        String.sub comment_text (i + 1) (String.length comment_text - i - 1)
      in
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char ',')
      |> List.filter_map (fun s ->
             let s = String.trim s in
             if s = "" then None else Some (line, s))
      |> fun l -> l @ acc

let ignores_of_comments comments =
  List.fold_left
    (fun acc (line, body) -> parse_ignores line body acc)
    [] comments

(* Token-level stripping: lex once, then render only the non-text tokens
   back onto a blank (space-filled, newline-preserving) canvas. Comments,
   string bodies and char literals never reach the lint rules, and —
   unlike the pre-lexer line scanner — quoted-string literals
   [{|...|}]/[{id|...|id}] are handled too. *)
let strip src =
  let lexed = Lexer.lex src in
  let buf =
    Bytes.map (fun c -> if c = '\n' then '\n' else ' ') (Bytes.of_string src)
  in
  Array.iter
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.String _ | Lexer.Char _ -> ()
      | _ -> Bytes.blit_string src t.off buf t.off t.len)
    lexed.Lexer.tokens;
  {
    lines = Array.of_list (String.split_on_char '\n' (Bytes.to_string buf));
    ignores = ignores_of_comments lexed.Lexer.comments;
  }

let ignored stripped ~line ~rule =
  List.exists
    (fun (l, r) -> l = line && (r = "*" || r = rule))
    stripped.ignores
