(** Approximate call graph over {!Lexer} token streams.

    Modules are keyed by file base name capitalized ([pool.ml] →
    [Pool]); definitions are column-0 [let]/[and] bindings whose span
    runs to the next column-0 structure keyword. References resolve as
    bare identifiers into the same module and as qualified paths whose
    last capitalized component (after [module X = ...] alias
    resolution) names a known module. Calls through function-valued
    parameters are invisible; see DESIGN §11 for the approximation
    contract. *)

type def = {
  module_ : string;
  name : string;
  path : string;
  line : int;
  start : int;  (** first token index of the body *)
  stop : int;   (** exclusive token index *)
}

type modul = {
  m_name : string;
  m_path : string;
  lexed : Lexer.t;
  defs : def list;
  aliases : (string * string) list;
}

type t = { modules : (string, modul) Hashtbl.t; ordered : modul list }

val is_boundary : Lexer.token -> bool
(** Whether a token starts a new column-0 structure item ([let],
    [type], [module], ...), ending the previous definition's span. *)

val build : (string * Lexer.t) list -> t
(** Build the graph substrate from [(path, lexed)] pairs. *)

val find_module : t -> string -> modul option

val resolve_module : modul -> string -> string
(** Apply [m]'s local module aliases to a module name. *)

val find_def : t -> module_:string -> name:string -> def option

val refs_in_span : t -> modul -> start:int -> stop:int -> def list
(** Definitions referenced from the token range [start, stop) of a
    module, deduplicated, in first-reference order. *)
