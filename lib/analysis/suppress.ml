type t = (string, unit) Hashtbl.t

type entry = { e_rule : string; e_key : string; e_rest : string }

let empty () : t = Hashtbl.create 16

let entry_key rule hash = rule ^ ":" ^ hash

let load_entries path =
  let entries = ref [] in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = String.trim (input_line ic) in
            if line <> "" && line.[0] <> '#' then
              match String.index_opt line ' ' with
              | None -> ()
              | Some i -> (
                  let rule = String.sub line 0 i in
                  let rest =
                    String.sub line (i + 1) (String.length line - i - 1)
                  in
                  match String.index_opt rest ' ' with
                  | None ->
                      entries :=
                        { e_rule = rule; e_key = rest; e_rest = "" }
                        :: !entries
                  | Some j ->
                      entries :=
                        {
                          e_rule = rule;
                          e_key = String.sub rest 0 j;
                          e_rest =
                            String.sub rest (j + 1)
                              (String.length rest - j - 1);
                        }
                        :: !entries)
          done
        with End_of_file -> ())
  end;
  List.rev !entries

let of_entries entries : t =
  let table = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace table (entry_key e.e_rule e.e_key) ())
    entries;
  table

let load path : t = of_entries (load_entries path)

let mem (t : t) diag =
  Hashtbl.mem t (entry_key diag.Diagnostic.rule (Diagnostic.key diag))

let filter t diags =
  let fresh, suppressed = List.partition (fun d -> not (mem t d)) diags in
  (fresh, List.length suppressed)

(* Entries owned by [rules] that no current diagnostic matches: drift
   the baseline must not silently accumulate. *)
let stale entries ~rules diags =
  let live = Hashtbl.create 64 in
  List.iter
    (fun (d : Diagnostic.t) ->
      Hashtbl.replace live (entry_key d.Diagnostic.rule (Diagnostic.key d)) ())
    diags;
  List.filter
    (fun e ->
      rules e.e_rule && not (Hashtbl.mem live (entry_key e.e_rule e.e_key)))
    entries

let entry_of_diag (d : Diagnostic.t) =
  {
    e_rule = d.Diagnostic.rule;
    e_key = Diagnostic.key d;
    e_rest = Printf.sprintf "%s:%d %s" d.file d.line d.text;
  }

let header =
  "# canopy lint baseline v1\n\
   # <rule> <key> <file>:<line> <source text>\n\
   # Keys hash (rule, file, line text): entries survive renumbering.\n\
   # Regenerate with: dune exec bin/check.exe -- lint --update-baseline\n\
   #              and dune exec bin/check.exe -- racecheck --update-baseline\n"

let save_entries path entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s\n" e.e_rule e.e_key e.e_rest))
    entries;
  Canopy_util.Atomic_file.write path (Buffer.contents buf)

(* Replace the [rules]-owned section of the baseline with [diags],
   leaving entries owned by other passes untouched — [lint] and
   [racecheck] share one baseline file. *)
let update path ~rules diags =
  let kept = List.filter (fun e -> not (rules e.e_rule)) (load_entries path) in
  let added = List.map entry_of_diag (List.sort Diagnostic.compare diags) in
  let cmp a b =
    let c = String.compare a.e_rule b.e_rule in
    if c <> 0 then c else String.compare a.e_rest b.e_rest
  in
  save_entries path (List.sort cmp (kept @ added))

let save path diags =
  save_entries path
    (List.map entry_of_diag (List.sort Diagnostic.compare diags))
