type t = (string, unit) Hashtbl.t

let empty () : t = Hashtbl.create 16

let entry_key rule hash = rule ^ ":" ^ hash

let load path : t =
  let table = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = String.trim (input_line ic) in
            if line <> "" && line.[0] <> '#' then
              match String.split_on_char ' ' line with
              | rule :: hash :: _ -> Hashtbl.replace table (entry_key rule hash) ()
              | _ -> ()
          done
        with End_of_file -> ())
  end;
  table

let mem (t : t) diag =
  Hashtbl.mem t (entry_key diag.Diagnostic.rule (Diagnostic.key diag))

let filter t diags =
  let fresh, suppressed = List.partition (fun d -> not (mem t d)) diags in
  (fresh, List.length suppressed)

let save path diags =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# canopy lint baseline v1\n\
     # <rule> <key> <file>:<line> <source text>\n\
     # Keys hash (rule, file, line text): entries survive renumbering.\n\
     # Regenerate with: dune exec bin/check.exe -- lint --update-baseline\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s:%d %s\n" d.Diagnostic.rule
           (Diagnostic.key d) d.file d.line d.text))
    (List.sort Diagnostic.compare diags);
  Canopy_util.Atomic_file.write path (Buffer.contents buf)
