(** Fault-injection harness for the crash-safe training runtime.

    The robustness analogue of {!Soundcheck}: a miniature TD3 loop over a
    deterministic bandit is adversarially killed at randomized snapshot
    boundaries, its checkpoints truncated and bit-flipped, and its
    weights poisoned with NaN. Each trial asserts the corresponding
    guarantee — resume is bit-exact, corrupt checkpoints are rejected
    rather than loaded, and the watchdog recovery path (restore + reseed)
    leaves a finite agent that keeps training. Driven by
    [bin/check.exe faultcheck]. *)

type outcome = {
  trials : int;
  kill_resume : int;  (** kill/resume determinism trials run *)
  corruption : int;  (** truncation / bit-flip rejection trials run *)
  nan_recovery : int;  (** NaN-injection recovery trials run *)
  failures : string list;  (** one diagnostic per failed trial; empty = pass *)
}

val run : ?seed:int -> ?trials:int -> unit -> outcome
(** Run [trials] (default 60, cycling the three kinds) deterministic in
    [seed]. Scratch checkpoints go to a unique temp directory, removed
    best-effort afterwards. *)
