(* Fault-injection harness for the crash-safe training runtime — the
   robustness analogue of the soundness audit: instead of sampling the
   abstract transformers, it adversarially kills, corrupts and poisons a
   miniature training loop and asserts the recovery machinery holds.

   Three randomized trial kinds, cycled per trial index:

   - kill/resume: a reference run snapshots at a random cadence; a second
     agent is killed at a random boundary, restored from the file written
     there, and run to completion. Every network must match the reference
     bit-for-bit.
   - corruption: an encoded checkpoint is truncated at a random offset or
     bit-flipped at a random byte; decode must reject it (and accept the
     pristine original).
   - NaN injection: weights are poisoned mid-run; the finiteness probe
     must detect it, and restore + reseed must leave a finite agent that
     keeps training.

   The environment here is a deterministic bandit whose state is a pure
   function of the step index, so exact resume needs no environment
   snapshot — precisely the property the real trainer gets by re-deriving
   its env pool at snapshot boundaries. *)

module Prng = Canopy_util.Prng
module Atomic_file = Canopy_util.Atomic_file
module Mlp = Canopy_nn.Mlp
module Td3 = Canopy_rl.Td3
module Replay_buffer = Canopy_rl.Replay_buffer
module Agent_snapshot = Canopy_rl.Agent_snapshot

type outcome = {
  trials : int;
  kill_resume : int;
  corruption : int;
  nan_recovery : int;
  failures : string list;
}

let fingerprint = "faultcheck-bandit-v1"

let agent_cfg =
  {
    (Td3.default_config ~state_dim:3 ~action_dim:1) with
    hidden = 8;
    batch_size = 16;
    buffer_capacity = 256;
    warmup = 32;
  }

let make_agent seed = Td3.create ~rng:(Prng.create seed) agent_cfg

(* Deterministic bandit: state is a pure function of the step index and
   the optimal action a pure function of the state. *)
let state_of i =
  let i = float_of_int i in
  [| sin (0.1 *. i); cos (0.07 *. i); 0.5 *. sin (0.013 *. i) |]

let target s = (0.6 *. s.(0)) -. (0.2 *. s.(1))

(* Advance [agent] from step [from] (exclusive) to [until] (inclusive),
   invoking [on_boundary] at multiples of [boundary_every]. *)
let run_steps ?on_boundary ?fault_at ~boundary_every agent ~from ~until =
  for i = from + 1 to until do
    let s = state_of (i - 1) in
    let a = Td3.select_action ~explore:true agent s in
    let r = -.((a.(0) -. target s) ** 2.) in
    Td3.observe agent
      {
        Replay_buffer.state = s;
        action = a;
        reward = r;
        next_state = state_of i;
        terminal = false;
        truncated = false;
      };
    Td3.update agent;
    (match fault_at with
    | Some (step, inject) when step = i -> inject ()
    | _ -> ());
    if i mod boundary_every = 0 then
      match on_boundary with Some f -> f i | None -> ()
  done

let net_bits net =
  List.concat_map
    (fun (value, _) -> Array.to_list (Array.map Int64.bits_of_float value))
    (Mlp.params net)

let agents_identical a b =
  let snap_a = Td3.snapshot a and snap_b = Td3.snapshot b in
  List.for_all2
    (fun (name_a, net_a) (name_b, net_b) ->
      name_a = name_b && net_bits net_a = net_bits net_b)
    snap_a.Td3.nets snap_b.Td3.nets

let all_finite net =
  List.for_all
    (fun (value, _) -> Array.for_all Float.is_finite value)
    (Mlp.params net)

let encode_at agent step =
  Agent_snapshot.encode ~fingerprint
    ~extra:[ ("faultstep", Printf.sprintf "%d\n" step) ]
    agent

let decode_step ~path sections =
  match List.assoc_opt "faultstep" sections with
  | Some payload -> (
      match int_of_string_opt (String.trim payload) with
      | Some n -> n
      | None -> failwith (path ^ ": malformed faultstep section"))
  | None -> failwith (path ^ ": missing faultstep section")

(* --- trial kinds ------------------------------------------------------ *)

let kill_resume_trial ~dir ~trial rng =
  let seed = 1 + Prng.int rng 1_000_000 in
  let total = 100 + Prng.int rng 60 in
  let boundary_every = 10 + Prng.int rng 21 in
  let path = Filename.concat dir (Printf.sprintf "trial-%d.ckpt" trial) in
  (* Reference run: snapshot to [path] at every boundary (each write
     atomically replaces the last, as in real training), remembering each
     file image so the kill can strike any boundary. *)
  let images = ref [] in
  let reference = make_agent seed in
  run_steps ~boundary_every reference ~from:0 ~until:total
    ~on_boundary:(fun step ->
      Atomic_file.write path (encode_at reference step);
      images := (step, Agent_snapshot.read path) :: !images);
  let images = Array.of_list (List.rev !images) in
  if Array.length images = 0 then Error "no boundary reached"
  else begin
    let _, image = images.(Prng.int rng (Array.length images)) in
    (* The killed process is gone; a fresh one (different init seed to
       prove restore overwrites everything) restores from the file. *)
    let resumed = make_agent (seed + 7919) in
    let fp, sections = Agent_snapshot.decode image in
    if fp <> fingerprint then Error "fingerprint mismatch on resume"
    else begin
      Agent_snapshot.restore resumed sections;
      let from = decode_step ~path sections in
      run_steps ~boundary_every resumed ~from ~until:total;
      if agents_identical reference resumed then Ok ()
      else
        Error
          (Printf.sprintf
             "resume from step %d of %d diverged from the uninterrupted run"
             from total)
    end
  end

let corruption_trial ~dir ~trial rng =
  let seed = 1 + Prng.int rng 1_000_000 in
  let agent = make_agent seed in
  run_steps ~boundary_every:max_int agent ~from:0 ~until:(40 + Prng.int rng 20);
  let pristine = encode_at agent 40 in
  match Agent_snapshot.decode pristine with
  | exception Failure msg ->
      Error (Printf.sprintf "pristine checkpoint rejected: %s" msg)
  | _ ->
      let n = String.length pristine in
      let corrupt =
        if Prng.bool rng then
          (* Truncation: what a crash mid-write (without the atomic
             rename) would have left behind. *)
          String.sub pristine 0 (Prng.int rng n)
        else begin
          (* Single bit flip; xor 1 always changes the byte. *)
          let b = Bytes.of_string pristine in
          let pos = Prng.int rng n in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
          Bytes.to_string b
        end
      in
      let rejected_in_memory =
        match Agent_snapshot.decode corrupt with
        | exception Failure _ -> true
        | _ -> false
      in
      let path = Filename.concat dir (Printf.sprintf "corrupt-%d.ckpt" trial) in
      Atomic_file.write path corrupt;
      let rejected_from_file =
        match Agent_snapshot.actor_of_file path with
        | exception Failure _ -> true
        | _ -> false
      in
      if rejected_in_memory && rejected_from_file then Ok ()
      else Error "corrupted checkpoint was accepted"

let nan_trial ~trial rng =
  let seed = 1 + Prng.int rng 1_000_000 in
  let agent = make_agent seed in
  run_steps ~boundary_every:max_int agent ~from:0 ~until:50;
  if not (Td3.finite agent) then Error "agent non-finite before injection"
  else begin
    let snap = Td3.snapshot agent in
    (match Mlp.params (Td3.actor agent) with
    | (value, _) :: _ -> value.(Prng.int rng (Array.length value)) <- Float.nan
    | [] -> ());
    if Td3.finite agent then Error "finiteness probe missed an injected NaN"
    else begin
      (* What the trainer's watchdog does: roll back, decorrelate, go on. *)
      Td3.restore agent snap;
      Td3.reseed agent ~salt:trial;
      if not (Td3.finite agent) then
        Error "restore left non-finite parameters"
      else begin
        run_steps ~boundary_every:max_int agent ~from:50 ~until:80;
        if Td3.finite agent && all_finite (Td3.actor agent) then Ok ()
        else Error "training diverged after rollback"
      end
    end
  end

(* --- driver ----------------------------------------------------------- *)

let run ?(seed = 2026) ?(trials = 60) () =
  if trials <= 0 then invalid_arg "Faultcheck.run: trials";
  (* A unique scratch directory without a Unix dependency: temp_file
     reserves a unique name, and the directory lives alongside it. *)
  let marker = Filename.temp_file "canopy-faultcheck" ".tmp" in
  let dir = marker ^ ".d" in
  Atomic_file.mkdir_p dir;
  let kill_resume = ref 0 and corruption = ref 0 and nan_recovery = ref 0 in
  let failures = ref [] in
  for trial = 0 to trials - 1 do
    let rng = Prng.create ((seed * 1_000_003) + trial) in
    let kind, result =
      match trial mod 3 with
      | 0 ->
          incr kill_resume;
          ("kill-resume", kill_resume_trial ~dir ~trial rng)
      | 1 ->
          incr corruption;
          ("corruption", corruption_trial ~dir ~trial rng)
      | _ ->
          incr nan_recovery;
          ("nan-recovery", nan_trial ~trial rng)
    in
    match result with
    | Ok () -> ()
    | Error msg ->
        failures := Printf.sprintf "trial %d (%s): %s" trial kind msg :: !failures
  done;
  (* Best-effort cleanup of the scratch directory. *)
  (match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries;
      (try Sys.rmdir dir with Sys_error _ -> ())
  | exception Sys_error _ -> ());
  (try Sys.remove marker with Sys_error _ -> ());
  {
    trials;
    kill_resume = !kill_resume;
    corruption = !corruption;
    nan_recovery = !nan_recovery;
    failures = List.rev !failures;
  }
