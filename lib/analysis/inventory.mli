(** Mutable-state inventory: module-level mutable values per source
    file, classified by constructor, plus [mutable] record-field
    declarations. Feeds {!Racecheck}, which flags writes reaching an
    inventoried global from a parallel region.

    Approximations: a [let] in column 0 is a structure item; a binding
    is a mutable global when it has no parameters and its right-hand
    side starts with a recognised mutable constructor ([ref],
    [Hashtbl.create], [Buffer.create], [Array.make]/[init], array
    literals, record literals, ...). *)

type kind =
  | Ref
  | Hashtbl
  | Buffer
  | Queue
  | Stack
  | Array
  | Bytes
  | Record
  | Atomic  (** blessed: cross-domain by design *)
  | Dls     (** blessed: per-domain by design *)
  | Mutex   (** blessed: a lock, not a hazard *)

val kind_name : kind -> string

val blessed : kind -> bool
(** [Atomic], [Dls] and [Mutex] globals are the sanctioned ways to share
    state across domains; writes through them are never race findings. *)

type entry = {
  module_ : string;  (** capitalized module name from the file basename *)
  name : string;
  kind : kind;
  line : int;
  path : string;
}

type t = {
  globals : entry list;
  mutable_fields : (string * string * int) list;
      (** (module, field name, line) per [mutable] record field *)
}

val module_of_path : string -> string
(** ["lib/util/pool.ml"] → ["Pool"]. *)

val scan : path:string -> Lexer.t -> t
(** Inventory one lexed file. *)
