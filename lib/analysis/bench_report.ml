(* Perf-history reporting over the BENCH_*.json records: a hand-rolled
   JSON reader (the repo deliberately has no JSON dependency), a generic
   flattener from bench records to per-kernel time metrics, a markdown
   table across history snapshots, and the >threshold regression gate
   against the committed baselines. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Parsing *)

let fail fmt = Printf.ksprintf failwith fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  let n = String.length c.src in
  while
    c.pos < n
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | Some got -> fail "bench-report json: expected %c, got %c at %d" ch got c.pos
  | None -> fail "bench-report json: expected %c at end of input" ch

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "bench-report json: bad literal at %d" c.pos

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "bench-report json: unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail "bench-report json: unterminated escape"
        | Some ch ->
            c.pos <- c.pos + 1;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'u' ->
                (* the records are ASCII; keep the escape verbatim *)
                Buffer.add_string buf "\\u"
            | other -> fail "bench-report json: bad escape \\%c" other);
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let n = String.length c.src in
  while
    c.pos < n
    &&
    match c.src.[c.pos] with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done;
  let span = String.sub c.src start (c.pos - start) in
  match float_of_string_opt span with
  | Some f when Float.is_finite f -> Num f
  | _ -> fail "bench-report json: malformed number %S at %d" span start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "bench-report json: unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((key, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail "bench-report json: expected , or } at %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail "bench-report json: expected , or ] at %d" c.pos
        in
        Arr (elems [])
      end
  | Some '"' -> Str (parse_string_raw c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let json_of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    fail "bench-report json: trailing garbage at %d" c.pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Flattening records to per-kernel metrics *)

type entry = {
  bench : string;
  kernel : string;
  metric : string;
  value : float;
  skipped : bool;
}

let time_fields = [ "ns_per_op"; "ns_per_cert"; "ns_per_decision"; "wall_s" ]

(* identifying fields, in key order; (field, prefix in the kernel key).
   A ["name"] field is the kernel key on its own (bench emitters already
   encode batch/domain variants in it); the rest compose one. *)
let id_fields =
  [ ("workload", ""); ("flows", "f"); ("batch", "b"); ("domains", "d");
    ("duration_ms", "ms") ]

let entry_of_element ~bench el =
  let time =
    List.find_map
      (fun f ->
        match member f el with Some (Num v) -> Some (f, v) | _ -> None)
      time_fields
  in
  match time with
  | None -> None
  | Some (metric, value) ->
      let key =
        match member "name" el with
        | Some (Str name) -> name
        | _ -> (
            let parts =
              List.filter_map
                (fun (f, prefix) ->
                  match member f el with
                  | Some (Str s) -> Some (prefix ^ s)
                  | Some (Num v) -> Some (Printf.sprintf "%s%g" prefix v)
                  | _ -> None)
                id_fields
            in
            match parts with [] -> metric | _ -> String.concat "_" parts)
      in
      Some
        {
          bench;
          kernel = bench ^ "/" ^ key;
          metric;
          value;
          skipped = member "skipped_reason" el <> None;
        }

let entries_of_record record =
  match member "mode" record with
  | Some (Str "smoke") -> []
  | _ -> (
      let bench =
        match member "bench" record with Some (Str b) -> b | _ -> "unknown"
      in
      match member "entries" record with
      | Some (Arr els) -> List.filter_map (entry_of_element ~bench) els
      | _ -> [])

(* ------------------------------------------------------------------ *)
(* Loading *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match entries_of_record (json_of_string (read_file path)) with
  | entries -> entries
  | exception (Failure msg | Sys_error msg) ->
      Printf.eprintf "bench-report: skipping %s: %s\n%!" path msg;
      []

let load_baselines ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             String.length n > 6
             && String.sub n 0 6 = "BENCH_"
             && Filename.check_suffix n ".json")
      |> List.sort String.compare
      |> List.concat_map (fun n -> parse_file (Filename.concat dir n))

type snapshot = { stamp : string; entries : entry list }

(* history filenames are BENCH_<stem>-<stamp>.json *)
let stamp_of_name name =
  let stem = Filename.remove_extension name in
  match String.rindex_opt stem '-' with
  | Some i -> String.sub stem (i + 1) (String.length stem - i - 1)
  | None -> stem

let load_history ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let by_stamp = Hashtbl.create 16 in
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".json" then begin
            let stamp = stamp_of_name n in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt by_stamp stamp)
            in
            Hashtbl.replace by_stamp stamp
              (prev @ parse_file (Filename.concat dir n))
          end)
        names;
      Hashtbl.fold (fun stamp entries acc -> { stamp; entries } :: acc)
        by_stamp []
      |> List.filter (fun s -> s.entries <> [])
      |> List.sort (fun a b -> String.compare a.stamp b.stamp)

(* ------------------------------------------------------------------ *)
(* Report *)

type regression = {
  r_kernel : string;
  baseline : float;
  latest : float;
  delta_pct : float;
}

type report = {
  markdown : string;
  regressions : regression list;
  tracked : int;
  compared : int;
}

let find_kernel entries kernel =
  List.find_opt (fun e -> e.kernel = kernel) entries

let pp_time metric v =
  if metric = "wall_s" then Printf.sprintf "%.3fs" v
  else Printf.sprintf "%.0fns" v

let build ?(threshold_pct = 15.) ~baselines ~history () =
  let buf = Buffer.create 4096 in
  let benches =
    List.sort_uniq String.compare (List.map (fun e -> e.bench) baselines)
  in
  let compared = ref 0 in
  let regressions = ref [] in
  Buffer.add_string buf "# Bench history\n";
  if history = [] then
    Buffer.add_string buf
      "\n_No local bench history found; table shows committed baselines \
       only._\n";
  List.iter
    (fun bench ->
      let kernels = List.filter (fun e -> e.bench = bench) baselines in
      Printf.bprintf buf "\n## %s\n\n" bench;
      Printf.bprintf buf "| kernel | baseline |%s vs baseline |\n"
        (String.concat ""
           (List.map (fun s -> " " ^ s.stamp ^ " |") history));
      Printf.bprintf buf "|---|---|%s---|\n"
        (String.concat "" (List.map (fun _ -> "---|") history));
      List.iter
        (fun base ->
          let cells =
            List.map
              (fun snap ->
                match find_kernel snap.entries base.kernel with
                | Some e when not e.skipped -> pp_time e.metric e.value
                | Some _ -> "(skipped)"
                | None -> "—")
              history
          in
          let latest =
            List.fold_left
              (fun acc snap ->
                match find_kernel snap.entries base.kernel with
                | Some e when not e.skipped -> Some e
                | _ -> acc)
              None history
          in
          let verdict =
            match latest with
            | _ when base.skipped -> "not gated"
            | None -> "no history"
            | Some e ->
                incr compared;
                let delta_pct =
                  100. *. (e.value -. base.value) /. Float.max 1e-12 base.value
                in
                if delta_pct > threshold_pct then begin
                  regressions :=
                    {
                      r_kernel = base.kernel;
                      baseline = base.value;
                      latest = e.value;
                      delta_pct;
                    }
                    :: !regressions;
                  Printf.sprintf "**%+.1f%% REGRESSION**" delta_pct
                end
                else Printf.sprintf "%+.1f%%" delta_pct
          in
          Printf.bprintf buf "| %s | %s |%s %s |\n" base.kernel
            (pp_time base.metric base.value)
            (String.concat "" (List.map (fun c -> " " ^ c ^ " |") cells))
            verdict)
        kernels)
    benches;
  {
    markdown = Buffer.contents buf;
    regressions = List.rev !regressions;
    tracked = List.length (List.filter (fun e -> not e.skipped) baselines);
    compared = !compared;
  }
