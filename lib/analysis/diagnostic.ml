type t = {
  rule : string;
  file : string;
  line : int;
  message : string;
  text : string;
}

let make ~rule ~file ?(line = 0) ?(text = "") message =
  { rule; file; line; message; text = String.trim text }

let compare a b = (* lint-ignore: polymorphic-compare *)
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule b.rule

(* Stable identity for baseline suppression: rule + file + the trimmed
   source text of the offending line. Line numbers are deliberately
   excluded so that edits elsewhere in a file do not invalidate the
   baseline. *)
let key t =
  let digest = Digest.to_hex (Digest.string (t.rule ^ "|" ^ t.file ^ "|" ^ t.text)) in
  String.sub digest 0 10

let pp ppf t =
  if t.line > 0 then
    Format.fprintf ppf "%s:%d: [%s] %s" t.file t.line t.rule t.message
  else Format.fprintf ppf "%s: [%s] %s" t.file t.rule t.message
