(** Token-level lexer for the repository's own OCaml sources.

    The substrate of every static pass in this library: lint rules match
    against token-rendered (string/comment-blanked) lines; the
    inventory, call-graph and racecheck passes walk the token stream
    directly. Not a full OCaml lexer — attributes and exotic literals
    degrade to operator/ident tokens — but strings (including
    [{|...|}]/[{id|...|id}] quoted strings), char literals and nested
    [(* *)] comments are lexed exactly, so downstream analyses never
    match inside text. *)

type kind =
  | Lident of string  (** lowercase identifier or keyword *)
  | Uident of string  (** capitalized identifier (module/constructor) *)
  | Int of string
  | Float of string
  | String of string  (** literal body, escapes not decoded *)
  | Char of string    (** literal body between the quotes *)
  | Op of string      (** operator run or single punctuation char *)

type token = {
  kind : kind;
  line : int;  (** 1-based line of the first char *)
  col : int;   (** 0-based column of the first char *)
  off : int;   (** byte offset in the source *)
  len : int;   (** byte length of the source text *)
}

type t = {
  tokens : token array;
  comments : (int * string) list;
      (** (start line, trimmed body) per comment, in source order *)
}

val keywords : string list

val is_keyword : string -> bool

val lex : string -> t
(** Tokenize one file's contents. Never raises; unterminated strings
    and comments consume to end of input. *)

val blank_non_code : string -> string
(** The source with string bodies, char literals and comments blanked
    to spaces — newlines and column positions preserved. *)
