(** Deterministic source-level lint for the repository's OCaml code.

    Rules (see {!rules} for the messages):
    - [polymorphic-compare]: bare [compare] (NaN-unsound on floats);
    - [float-min-max]: polymorphic [min]/[max] applied to a float literal
      or passed to a float-accumulating fold;
    - [int-of-float]: any [int_of_float] call — unspecified on NaN and
      out-of-range values; reviewed call sites go in the baseline;
    - [obj-magic]: any use of [Obj.magic];
    - [catch-all-exn]: [with _ ->] exception handlers;
    - [array-make-alias]: [Array.make] seeded with a mutable value;
    - [missing-mli]: a module under [lib/] with no interface file;
    - [mlp-layer-walk]: [Mlp.layers] traversal outside [lib/nn] and the
      verifier-IR builder ([anet.ml]) — every other consumer must go
      through [Canopy_absint.Anet] so the batch-norm folding arithmetic
      is never re-forked (grandfathered sites live in the baseline).

    All rules run on token-stripped source — the {!Lexer} token stream
    rendered with comments, strings (including [{|...|}] quoted
    strings) and char literals blanked — so matches in comments or
    string literals are never reported. A finding on a line carrying an
    [(* lint-ignore: rule *)] comment is waived. The NaN-unsoundness
    rules additionally scan [bench/] and [test/] (see {!nan_rules}). *)

val default_dirs : string list
(** [\["lib"; "bin"\]]. *)

val rules : (string * string) list
(** Rule identifiers and their one-line messages. *)

val nan_rules : string list
(** The NaN-unsoundness rules ([polymorphic-compare], [float-min-max])
    that additionally cover {!nan_rule_dirs}. *)

val nan_rule_dirs : string list
(** [\["bench"; "test"\]] — extra directories scanned with {!nan_rules}
    only. *)

val check_source : ?only:string list -> path:string -> string -> Diagnostic.t list
(** Run the line-scoped rules over one file's contents. [path] is used
    for reporting only; [only] restricts to the named rules. *)

val check_missing_mli : root:string -> string list -> Diagnostic.t list
(** [missing-mli] over a list of [.ml] paths relative to [root]; only
    files under [lib/] are required to have interfaces. *)

val run : ?dirs:string list -> root:string -> unit -> Diagnostic.t list
(** Walk [dirs] under [root], lint every [.ml] file and report findings
    sorted by file and line. *)
