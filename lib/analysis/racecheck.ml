(* Token-level effect/race analysis for Pool-parallel regions.

   The determinism contract of DESIGN §10 rests on a convention: a
   closure handed to [Canopy_util.Pool] must not write shared mutable
   state except through per-domain [Domain.DLS], [Atomic], a [Mutex],
   or ranges ([~lo ~hi]) no other chunk touches. This pass proves the
   convention syntactically:

   1. {!Inventory} lists every module-level mutable value (the only
      state two closures can share without one creating it);
   2. {!Callgraph} approximates who calls whom;
   3. parallel entry points are every argument of
      [Pool.parallel_for_chunks]/[map]/[map_list]/[map_reduce] — both
      [(fun ...)] literals and named range kernels;
   4. every function reachable from an entry point is scanned for
      writes ([:=], [<-], [incr]/[decr], stdlib mutator calls) whose
      target resolves to an inventoried global.

   A write is allowed when the global is blessed ([Atomic], [DLS],
   [Mutex]), the enclosing region takes a [Mutex.lock], the written
   index is derived from the chunk's [~lo ~hi] range, the write site
   carries an [(* lint-ignore: shared-mutable-in-parallel *)] waiver,
   or it lives in [pool.ml] itself (the pool's own synchronized state).
   Everything else is a diagnostic.

   Approximations (DESIGN §11): calls through function-valued
   parameters are invisible (e.g. [Eval.run_tasks] applying its task
   closures); nested (non column-0) functions are only checked when
   lexically inside a [(fun ...)] argument; argument spans extend to
   the end of the enclosing expression, so sibling branches of the
   dispatch [if] are conservatively treated as parallel too. *)

let rule_name = "shared-mutable-in-parallel"

let message =
  "write to shared mutable state from a Pool-parallel region breaks \
   determinism and soundness; share through Domain.DLS / Atomic, a \
   disjoint ~lo ~hi range, or a Mutex — or waive with (* lint-ignore: \
   shared-mutable-in-parallel *)"

let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

(* The pool implementation is the one module allowed to touch its own
   synchronized state from worker domains. *)
let pool_internal path = Filename.basename path = "pool.ml"

let pool_entry_fns =
  [ "parallel_for_chunks"; "map"; "map_list"; "map_reduce" ]

(* (module, function, position of the mutated argument) *)
let stdlib_mutators =
  [
    ("Hashtbl", "add", 1); ("Hashtbl", "replace", 1);
    ("Hashtbl", "remove", 1); ("Hashtbl", "reset", 1);
    ("Hashtbl", "clear", 1); ("Hashtbl", "filter_map_inplace", 2);
    ("Buffer", "add_char", 1); ("Buffer", "add_string", 1);
    ("Buffer", "add_bytes", 1); ("Buffer", "add_buffer", 1);
    ("Buffer", "add_substring", 1); ("Buffer", "add_subbytes", 1);
    ("Buffer", "clear", 1); ("Buffer", "reset", 1);
    ("Buffer", "truncate", 1);
    ("Queue", "add", 2); ("Queue", "push", 2); ("Queue", "pop", 1);
    ("Queue", "take", 1); ("Queue", "clear", 1);
    ("Stack", "push", 2); ("Stack", "pop", 1); ("Stack", "clear", 1);
    ("Array", "fill", 1); ("Array", "sort", 2);
    ("Array", "unsafe_set", 1); ("Array", "set", 1); ("Array", "blit", 3);
    ("Bytes", "set", 1); ("Bytes", "unsafe_set", 1);
    ("Bytes", "fill", 1); ("Bytes", "blit", 3);
  ]

type region = {
  r_modul : Callgraph.modul;
  r_start : int;  (* token index, inclusive *)
  r_stop : int;   (* token index, exclusive *)
  r_root : string;  (* human-readable origin, for the diagnostic *)
}

type report = {
  diags : Diagnostic.t list;
  roots : string list;       (* parallel entry points found *)
  reachable : int;           (* top-level defs reachable from the roots *)
  globals : int;             (* inventoried mutable globals *)
  checked_files : int;
}

(* --- token helpers ---------------------------------------------------- *)

let tok_kind (m : Callgraph.modul) i = m.lexed.Lexer.tokens.(i).Lexer.kind

(* Bracket depth before each token. *)
let depths (m : Callgraph.modul) =
  let ts = m.lexed.Lexer.tokens in
  let n = Array.length ts in
  let d = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let delta =
      match ts.(i).Lexer.kind with
      | Lexer.Op ("(" | "[" | "{") -> 1
      | Lexer.Op (")" | "]" | "}") -> -1
      | _ -> 0
    in
    d.(i + 1) <- d.(i) + delta
  done;
  d

(* Matching closer for the opener at [i] (depth array from {!depths}). *)
let match_close (m : Callgraph.modul) depth i =
  let n = Array.length m.lexed.Lexer.tokens in
  let target = depth.(i) in
  let j = ref (i + 1) in
  while !j < n && depth.(!j) > target do incr j done;
  !j

(* Matching opener for the closer at [i]: largest [o <= i] with
   [depth.(o) = depth.(i + 1)]. *)
let match_open depth i =
  let target = depth.(i + 1) in
  let o = ref i in
  while !o > 0 && depth.(!o) > target do decr o done;
  !o

(* --- assignment-target resolution ------------------------------------ *)

(* Walk backwards from the last token of an assignment's left-hand side
   and return the access path as [(module qualifier, value name, index
   spans)]: [Mod.g.(i).(j) <- e] gives [(Some "Mod", "g", [(i-span);
   (j-span)])], [t.field <- e] gives [(None, "t", [])]. [None] when the
   head is not a plain (possibly qualified) identifier. *)
let resolve_lhs (m : Callgraph.modul) depth last =
  let ts = m.lexed.Lexer.tokens in
  let index_spans = ref [] in
  let rec back j =
    (* [j] = last token index of the current chain element *)
    if j < 0 then None
    else
      match ts.(j).Lexer.kind with
      | Lexer.Op (")" | "]") ->
          let o = match_open depth j in
          index_spans := (o + 1, j) :: !index_spans;
          if o > 0 && ts.(o - 1).Lexer.kind = Lexer.Op "." then back (o - 2)
          else None  (* parenthesized head expression: unresolvable *)
      | Lexer.Lident _ | Lexer.Uident _ ->
          if j > 0 && ts.(j - 1).Lexer.kind = Lexer.Op "." then back (j - 2)
          else Some j
      | _ -> None
  in
  match back last with
  | None -> None
  | Some head -> (
      (* read the chain forward from [head]: Uidents (dotted) form the
         module path, the first Lident is the value name *)
      match ts.(head).Lexer.kind with
      | Lexer.Lident name -> Some (None, name, !index_spans)
      | Lexer.Uident u ->
          let last_u = ref u and j = ref head in
          let n = Array.length ts in
          let result = ref None in
          while
        !result = None
        && !j + 2 < n
            && ts.(!j + 1).Lexer.kind = Lexer.Op "."
          do
            (match ts.(!j + 2).Lexer.kind with
            | Lexer.Uident v ->
                last_u := v;
                j := !j + 2
            | Lexer.Lident f ->
                result := Some (Some !last_u, f, !index_spans);
                j := n
            | _ -> j := n)
          done;
          !result
      | _ -> None)

(* Forward-parse a simple argument starting at [j]: a parenthesized
   group, or a (possibly qualified, possibly indexed) identifier chain,
   or a literal. Returns the index past the argument. *)
let skip_simple_arg (m : Callgraph.modul) depth j =
  let ts = m.lexed.Lexer.tokens in
  let n = Array.length ts in
  if j >= n then j
  else
    match ts.(j).Lexer.kind with
    | Lexer.Op ("(" | "[" | "{") -> match_close m depth j + 1
    | Lexer.Op ("~" | "?") -> j + 1  (* label marker; caller re-skips *)
    | Lexer.Lident _ | Lexer.Uident _ | Lexer.Int _ | Lexer.Float _
    | Lexer.String _ | Lexer.Char _ ->
        let k = ref (j + 1) in
        let continue_ = ref true in
        while !continue_ && !k + 1 < n do
          if ts.(!k).Lexer.kind = Lexer.Op "." then
            match ts.(!k + 1).Lexer.kind with
            | Lexer.Lident _ | Lexer.Uident _ -> k := !k + 2
            | Lexer.Op ("(" | "[") -> k := match_close m depth (!k + 1) + 1
            | _ -> continue_ := false
          else continue_ := false
        done;
        !k
    | _ -> j + 1

(* Forward-resolve a (possibly qualified) identifier at [j]:
   [Some (module qualifier, name)]. *)
let resolve_fwd (m : Callgraph.modul) j =
  let ts = m.lexed.Lexer.tokens in
  let n = Array.length ts in
  if j >= n then None
  else
    match ts.(j).Lexer.kind with
    | Lexer.Lident name when not (Lexer.is_keyword name) ->
        Some (None, name)
    | Lexer.Uident u ->
        let last_u = ref u and k = ref j and result = ref None in
        while
          !result = None
          && !k + 2 < n
          && ts.(!k + 1).Lexer.kind = Lexer.Op "."
        do
          (match ts.(!k + 2).Lexer.kind with
          | Lexer.Uident v ->
              last_u := v;
              k := !k + 2
          | Lexer.Lident f ->
              result := Some (Some !last_u, f);
              k := n
          | _ -> k := n)
        done;
        !result
    | _ -> None

(* --- range-disjointness ----------------------------------------------- *)

(* Identifiers that carry the chunk's [~lo ~hi] range within a region:
   [lo], [hi] themselves plus every [for v = e1 to/downto e2] loop
   variable whose bounds mention a range ident. An indexed write whose
   index expression uses one of these is chunk-private by the §10
   convention. *)
let range_idents (m : Callgraph.modul) ~start ~stop =
  let ts = m.lexed.Lexer.tokens in
  let stop = min stop (Array.length ts) in
  let idents = ref [ "lo"; "hi" ] in
  (* iterate to a fixpoint so [for j = i to ...] nested under
     [for i = lo to ...] is recognized too *)
  let changed = ref true in
  while !changed do
    changed := false;
    let i = ref start in
    while !i + 3 < stop do
      (match
         (tok_kind m !i, tok_kind m (!i + 1), tok_kind m (!i + 2))
       with
      | Lexer.Lident "for", Lexer.Lident v, Lexer.Op "=" ->
          (* scan the bounds up to [do] for a known range ident *)
          let j = ref (!i + 3) and uses_range = ref false in
          while
            !j < stop
            && tok_kind m !j <> Lexer.Lident "do"
            && !j - !i < 40
          do
            (match tok_kind m !j with
            | Lexer.Lident x when List.mem x !idents -> uses_range := true
            | _ -> ());
            incr j
          done;
          if !uses_range && not (List.mem v !idents) then begin
            idents := v :: !idents;
            changed := true
          end
      | _ -> ());
      incr i
    done
  done;
  !idents

let span_mentions_ident (m : Callgraph.modul) ~start ~stop idents =
  let stop = min stop (Array.length m.lexed.Lexer.tokens) in
  let found = ref false in
  for i = start to stop - 1 do
    match tok_kind m i with
    | Lexer.Lident x when List.mem x idents -> found := true
    | _ -> ()
  done;
  !found

(* --- the analysis ----------------------------------------------------- *)

type program = {
  cg : Callgraph.t;
  globals : (string * string, Inventory.entry) Hashtbl.t;
  global_count : int;
  field_count : int;
  lines_of : (string, string array) Hashtbl.t;
  ignores_of : (string, (int * string) list) Hashtbl.t;
}

let load_program files =
  let lexed = List.map (fun (path, src) -> (path, Lexer.lex src)) files in
  let cg = Callgraph.build lexed in
  let globals = Hashtbl.create 64 in
  let global_count = ref 0 and field_count = ref 0 in
  List.iter
    (fun (path, lx) ->
      let inv = Inventory.scan ~path lx in
      List.iter
        (fun (e : Inventory.entry) ->
          incr global_count;
          Hashtbl.replace globals (e.module_, e.name) e)
        inv.Inventory.globals;
      field_count := !field_count + List.length inv.Inventory.mutable_fields)
    lexed;
  let lines_of = Hashtbl.create 64 in
  let ignores_of = Hashtbl.create 64 in
  List.iter
    (fun (path, src) ->
      Hashtbl.replace lines_of path
        (Array.of_list (String.split_on_char '\n' src)))
    files;
  List.iter
    (fun (path, lx) ->
      Hashtbl.replace ignores_of path
        (Sources.ignores_of_comments lx.Lexer.comments))
    lexed;
  {
    cg;
    globals;
    global_count = !global_count;
    field_count = !field_count;
    lines_of;
    ignores_of;
  }

(* Parallel entry points of one module: for each
   [<Pool-resolving module>.<entry fn>] call, the [(fun ...)] literal
   spans and the named definitions referenced in the argument span. The
   span ends at the first token that leaves the call's expression:
   depth below the call site, a statement [;], or one of the keywords
   closing the enclosing expression. *)
let find_roots p (m : Callgraph.modul) depth =
  let ts = m.lexed.Lexer.tokens in
  let n = Array.length ts in
  let closers = [ "in"; "else"; "then"; "end"; "done"; "do"; "with" ] in
  let regions = ref [] and seeds = ref [] and root_descs = ref [] in
  for i = 0 to n - 3 do
    match (ts.(i).Lexer.kind, ts.(i + 1).Lexer.kind, ts.(i + 2).Lexer.kind)
    with
    (* Matches both [Pool.map] and fully-qualified [Canopy_util.Pool.map]
       — [i] lands on the [Pool] component either way. *)
    | Lexer.Uident u, Lexer.Op ".", Lexer.Lident fn
      when Callgraph.resolve_module m u = "Pool" && List.mem fn pool_entry_fns
      ->
        let d0 = depth.(i) in
        let stop = ref (i + 3) in
        let continue_ = ref true in
        while !continue_ && !stop < n do
          let t = ts.(!stop) in
          if depth.(!stop) < d0 then continue_ := false
          else if Callgraph.is_boundary t then continue_ := false
          else
            match t.Lexer.kind with
            | Lexer.Op (";" | ";;") when depth.(!stop) = d0 ->
                continue_ := false
            | Lexer.Lident k when List.mem k closers && depth.(!stop) <= d0
              ->
                continue_ := false
            | _ -> incr stop
        done;
        let desc =
          Printf.sprintf "Pool.%s at %s:%d" fn m.m_path ts.(i).Lexer.line
        in
        root_descs := desc :: !root_descs;
        (* (fun ...) literal arguments become regions of their own *)
        let j = ref (i + 3) in
        while !j < !stop - 1 do
          (match (ts.(!j).Lexer.kind, ts.(!j + 1).Lexer.kind) with
          | Lexer.Op "(", Lexer.Lident ("fun" | "function") ->
              let close = match_close m depth !j in
              regions :=
                {
                  r_modul = m;
                  r_start = !j + 1;
                  r_stop = min close !stop;
                  r_root = desc;
                }
                :: !regions
          | _ -> ());
          incr j
        done;
        (* named definitions referenced anywhere in the argument span
           seed the reachability walk *)
        List.iter
          (fun d -> seeds := (d, desc) :: !seeds)
          (Callgraph.refs_in_span p.cg m ~start:(i + 3) ~stop:!stop)
    | _ -> ()
  done;
  (List.rev !regions, List.rev !seeds, List.rev !root_descs)

let check_region p acc (r : region) =
  if pool_internal r.r_modul.Callgraph.m_path then acc
  else begin
    let m = r.r_modul in
    let ts = m.lexed.Lexer.tokens in
    let depth = depths m in
    let stop = min r.r_stop (Array.length ts) in
    (* a region that takes the pool's locking discipline is exempt *)
    let guarded =
      let found = ref false in
      for i = r.r_start to stop - 3 do
        match (tok_kind m i, tok_kind m (i + 1), tok_kind m (i + 2)) with
        | Lexer.Uident "Mutex", Lexer.Op ".", Lexer.Lident "lock" ->
            found := true
        | _ -> ()
      done;
      !found
    in
    if guarded then acc
    else begin
      let ranged = range_idents m ~start:r.r_start ~stop in
      let lookup (mq, name) =
        let module_ =
          match mq with
          | Some u -> Callgraph.resolve_module m u
          | None -> m.m_name
        in
        Hashtbl.find_opt p.globals (module_, name)
      in
      let ignores =
        Option.value ~default:[]
          (Hashtbl.find_opt p.ignores_of m.m_path)
      in
      let waived line =
        List.exists
          (fun (l, r') -> l = line && (r' = "*" || r' = rule_name))
          ignores
      in
      let diag_at acc line (e : Inventory.entry) =
        if waived line then acc
        else begin
          let text =
            match Hashtbl.find_opt p.lines_of m.m_path with
            | Some lines when line - 1 < Array.length lines ->
                lines.(line - 1)
            | _ -> ""
          in
          let msg =
            Printf.sprintf "%s global `%s.%s` (%s:%d) written from %s — %s"
              (Inventory.kind_name e.kind)
              e.module_ e.name e.path e.line r.r_root message
          in
          Diagnostic.make ~rule:rule_name ~file:m.m_path ~line ~text msg
          :: acc
        end
      in
      let flag acc last_lhs site_line =
        match resolve_lhs m depth last_lhs with
        | None -> acc
        | Some (mq, name, index_spans) -> (
            match lookup (mq, name) with
            | Some e when not (Inventory.blessed e.kind) ->
                (* chunk-private by construction: every index is
                   derived from the ~lo ~hi range *)
                let range_disjoint =
                  index_spans <> []
                  && List.for_all
                       (fun (s, e') ->
                         span_mentions_ident m ~start:s ~stop:(e' + 1)
                           ranged)
                       index_spans
                in
                if range_disjoint then acc else diag_at acc site_line e
            | _ -> acc)
      in
      let acc = ref acc in
      for i = r.r_start to stop - 1 do
        match tok_kind m i with
        | Lexer.Op ":=" | Lexer.Op "<-" when i > r.r_start ->
            acc := flag !acc (i - 1) ts.(i).Lexer.line
        | Lexer.Lident ("incr" | "decr")
          when not (i > 0 && ts.(i - 1).Lexer.kind = Lexer.Op ".") -> (
            let j =
              if i + 1 < stop && tok_kind m (i + 1) = Lexer.Op "(" then i + 2
              else i + 1
            in
            match resolve_fwd m j with
            | Some key -> (
                match lookup key with
                | Some e when not (Inventory.blessed e.kind) ->
                    acc := diag_at !acc ts.(i).Lexer.line e
                | _ -> ())
            | None -> ())
        | Lexer.Uident u
          when (not (i > 0 && ts.(i - 1).Lexer.kind = Lexer.Op "."))
               && i + 2 < stop
               && ts.(i + 1).Lexer.kind = Lexer.Op "." -> (
            match ts.(i + 2).Lexer.kind with
            | Lexer.Lident fn -> (
                match
                  List.assoc_opt fn
                    (List.filter_map
                       (fun (m', f, pos) ->
                         if m' = u then Some (f, pos) else None)
                       stdlib_mutators)
                with
                | None -> ()
                | Some pos ->
                    (* skip to the mutated argument, then resolve it *)
                    let j = ref (i + 3) in
                    let argn = ref 1 in
                    (* labels don't count as arguments *)
                    let rec advance () =
                      if !j < stop && !argn < pos then begin
                        let k = skip_simple_arg m depth !j in
                        (match tok_kind m !j with
                        | Lexer.Op ("~" | "?") -> ()
                        | _ -> incr argn);
                        j := k;
                        advance ()
                      end
                    in
                    advance ();
                    (match resolve_fwd m !j with
                    | Some key -> (
                        match lookup key with
                        | Some e when not (Inventory.blessed e.kind) ->
                            (* writes at a ~lo ~hi-derived offset are
                               chunk-private (Array.fill od (lo * c)) *)
                            let arg_end = skip_simple_arg m depth !j in
                            let next_arg_end =
                              skip_simple_arg m depth arg_end
                            in
                            let ranged_offset =
                              (u = "Array" || u = "Bytes")
                              && span_mentions_ident m ~start:arg_end
                                   ~stop:next_arg_end ranged
                            in
                            if not ranged_offset then
                              acc := diag_at !acc ts.(i).Lexer.line e
                        | _ -> ())
                    | None -> ()))
            | _ -> ())
        | _ -> ()
      done;
      !acc
    end
  end

let check_files files =
  let p = load_program files in
  let all_regions = ref [] and all_seeds = ref [] and all_roots = ref [] in
  List.iter
    (fun (m : Callgraph.modul) ->
      if not (pool_internal m.Callgraph.m_path) then begin
        let depth = depths m in
        let regions, seeds, roots = find_roots p m depth in
        all_regions := !all_regions @ regions;
        all_seeds := !all_seeds @ seeds;
        all_roots := !all_roots @ roots
      end)
    p.cg.Callgraph.ordered;
  (* reachability: named seeds plus everything the (fun ...) regions
     reference, transitively over top-level definitions *)
  let visited : (string * string, string) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue (d : Callgraph.def) root =
    let key = (d.Callgraph.module_, d.Callgraph.name) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key root;
      Queue.add (d, root) queue
    end
  in
  List.iter (fun (d, root) -> enqueue d root) !all_seeds;
  List.iter
    (fun r ->
      List.iter
        (fun d -> enqueue d r.r_root)
        (Callgraph.refs_in_span p.cg r.r_modul ~start:r.r_start
           ~stop:r.r_stop))
    !all_regions;
  let def_regions = ref [] in
  while not (Queue.is_empty queue) do
    let (d : Callgraph.def), root = Queue.take queue in
    match Callgraph.find_module p.cg d.Callgraph.module_ with
    | None -> ()
    | Some dm ->
        let region =
          {
            r_modul = dm;
            r_start = d.Callgraph.start;
            r_stop = d.Callgraph.stop;
            r_root =
              Printf.sprintf "%s (via %s.%s)" root d.Callgraph.module_
                d.Callgraph.name;
          }
        in
        def_regions := region :: !def_regions;
        List.iter
          (fun d' -> enqueue d' root)
          (Callgraph.refs_in_span p.cg dm ~start:d.Callgraph.start
             ~stop:d.Callgraph.stop)
  done;
  let diags =
    List.fold_left (check_region p) [] (!all_regions @ List.rev !def_regions)
  in
  (* dedupe: the same write site can be reachable from several roots *)
  let seen = Hashtbl.create 16 in
  let diags =
    List.filter
      (fun (d : Diagnostic.t) ->
        let key = (d.Diagnostic.file, d.Diagnostic.line, d.Diagnostic.text) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (List.sort Diagnostic.compare diags)
  in
  {
    diags;
    roots = !all_roots;
    reachable = Hashtbl.length visited;
    globals = p.global_count;
    checked_files = List.length files;
  }

let run ?(dirs = default_dirs) ~root () =
  let files = Sources.find_files ~root ~dirs ~ext:".ml" in
  check_files
    (List.map
       (fun rel -> (rel, Sources.read_file (Filename.concat root rel)))
       files)
