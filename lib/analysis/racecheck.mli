(** Token-level effect/race analysis for [Canopy_util.Pool] parallel
    regions.

    Proves the DESIGN §10 convention syntactically: no function
    reachable from a closure handed to
    [Pool.parallel_for_chunks]/[map]/[map_list]/[map_reduce] writes an
    inventoried module-level mutable global, unless the global is
    blessed ([Atomic], [Domain.DLS], [Mutex]), the region locks a
    [Mutex], the written index derives from the chunk's [~lo ~hi]
    range, the site carries an
    [(* lint-ignore: shared-mutable-in-parallel *)] waiver, or the
    write is [pool.ml]'s own synchronized state. Approximations are
    documented in DESIGN §11. *)

val rule_name : string
(** ["shared-mutable-in-parallel"] — the {!Diagnostic} rule and the
    inline-waiver name. *)

val default_dirs : string list
(** [\["lib"; "bin"; "bench"; "test"\]]. *)

type report = {
  diags : Diagnostic.t list;
  roots : string list;  (** parallel entry points discovered *)
  reachable : int;      (** top-level defs reachable from the roots *)
  globals : int;        (** inventoried mutable globals *)
  checked_files : int;
}

val check_files : (string * string) list -> report
(** Analyze [(path, contents)] pairs as one program (fixture entry
    point — no filesystem access). *)

val run : ?dirs:string list -> root:string -> unit -> report
(** Walk [dirs] under [root] and analyze every [.ml] file. *)
