(** Source discovery and lexical stripping for the lint pass. *)

val read_file : string -> string

val find_files : root:string -> dirs:string list -> ext:string -> string list
(** [find_files ~root ~dirs ~ext] walks each of [dirs] (relative to
    [root]) recursively and returns the sorted relative paths of files
    with suffix [ext]. Build and VCS directories ([_build], [_artifacts],
    [.git], ...) are skipped. *)

type stripped = {
  lines : string array;
      (** source lines with comments, string literals and char literals
          blanked to spaces — column positions are preserved *)
  ignores : (int * string) list;
      (** inline waivers: [(line, rule)] pairs collected from
          [(* lint-ignore: rule *)] comments; rule ["*"] waives all *)
}

val strip : string -> stripped
(** Lexically strip OCaml source. Handles nested comments, strings inside
    comments and escaped char literals; [{|...|}] quoted strings are not
    supported. *)

val ignored : stripped -> line:int -> rule:string -> bool
(** Whether an inline waiver covers [rule] on [line]. *)
