(** Source discovery and token-level stripping for the static passes. *)

val read_file : string -> string

val find_files : root:string -> dirs:string list -> ext:string -> string list
(** [find_files ~root ~dirs ~ext] walks each of [dirs] (relative to
    [root]) recursively and returns the sorted relative paths of files
    with suffix [ext]. Build and VCS directories ([_build], [_artifacts],
    [.git], ...) and [fixtures] directories (deliberately buggy test
    inputs) are skipped. *)

type stripped = {
  lines : string array;
      (** source lines with comments, string literals and char literals
          blanked to spaces — column positions are preserved *)
  ignores : (int * string) list;
      (** inline waivers: [(line, rule)] pairs collected from
          [(* lint-ignore: rule *)] comments; rule ["*"] waives all *)
}

val strip : string -> stripped
(** Strip OCaml source by rendering the {!Lexer} token stream back onto
    a blank canvas: nested comments, strings inside comments, escaped
    char literals and [{|...|}] quoted strings are all handled. *)

val ignores_of_comments : (int * string) list -> (int * string) list
(** Parse [(* lint-ignore ... *)] waivers out of a {!Lexer.t}[.comments]
    list: [(line, rule)] pairs, rule ["*"] waiving all rules. *)

val ignored : stripped -> line:int -> rule:string -> bool
(** Whether an inline waiver covers [rule] on [line]. *)
