open Canopy_tensor
open Canopy_nn

let count_nonfinite v =
  Array.fold_left
    (fun acc x -> if Canopy_util.Mathx.is_finite x then acc else acc + 1)
    0 v

let diag ~name ~rule fmt =
  Format.kasprintf (fun message -> Diagnostic.make ~rule ~file:name message) fmt

let check_dense ~name ~idx ~dim (d : Layer.dense) acc =
  let acc =
    if Mat.cols d.w <> dim then
      diag ~name ~rule:"net-dim-mismatch"
        "layer %d (dense %dx%d): expects %d inputs but receives %d" idx
        (Mat.rows d.w) (Mat.cols d.w) (Mat.cols d.w) dim
      :: acc
    else acc
  in
  let bad_w = count_nonfinite (Mat.raw d.w)
  and bad_b = count_nonfinite d.b in
  let acc =
    if bad_w + bad_b > 0 then
      diag ~name ~rule:"net-nonfinite-param"
        "layer %d (dense %dx%d): %d non-finite weight(s), %d non-finite \
         bias(es)"
        idx (Mat.rows d.w) (Mat.cols d.w) bad_w bad_b
      :: acc
    else acc
  in
  (Mat.rows d.w, acc)

let check_batch_norm ~name ~idx ~dim (bn : Layer.batch_norm) acc =
  let acc =
    if Vec.dim bn.gamma <> dim then
      diag ~name ~rule:"net-dim-mismatch"
        "layer %d (batch_norm %d): dimension mismatch with incoming %d" idx
        (Vec.dim bn.gamma) dim
      :: acc
    else acc
  in
  let bad =
    count_nonfinite bn.gamma + count_nonfinite bn.beta
    + count_nonfinite bn.running_mean
    + count_nonfinite bn.running_var
  in
  let acc =
    if bad > 0 then
      diag ~name ~rule:"net-nonfinite-param"
        "layer %d (batch_norm): %d non-finite parameter/statistic value(s)"
        idx bad
      :: acc
    else acc
  in
  let neg_var = Array.exists (fun v -> v < 0.) bn.running_var in
  let all_zero_var = Array.for_all (fun v -> v = 0.) bn.running_var in
  let acc =
    if neg_var then
      diag ~name ~rule:"net-bn-uninitialized"
        "layer %d (batch_norm): negative running variance" idx
      :: acc
    else if Vec.dim bn.running_var > 0 && all_zero_var then
      diag ~name ~rule:"net-bn-uninitialized"
        "layer %d (batch_norm): running variance is identically zero — \
         statistics look uninitialized"
        idx
      :: acc
    else acc
  in
  let acc =
    if bn.eps <= 0. || not (Canopy_util.Mathx.is_finite bn.eps) then
      diag ~name ~rule:"net-bad-hyper" "layer %d (batch_norm): eps = %g" idx
        bn.eps
      :: acc
    else acc
  in
  let acc =
    if bn.momentum < 0. || bn.momentum > 1.
       || not (Canopy_util.Mathx.is_finite bn.momentum)
    then
      diag ~name ~rule:"net-bad-hyper" "layer %d (batch_norm): momentum = %g"
        idx bn.momentum
      :: acc
    else acc
  in
  (dim, acc)

let check_layers ?(name = "<network>") ~in_dim layers =
  let acc =
    if in_dim <= 0 then
      [ diag ~name ~rule:"net-dim-mismatch" "input dimension %d <= 0" in_dim ]
    else []
  in
  let _, acc =
    List.fold_left
      (fun (dim, acc) (idx, layer) ->
        match layer with
        | Layer.Dense d -> check_dense ~name ~idx ~dim d acc
        | Layer.Batch_norm bn -> check_batch_norm ~name ~idx ~dim bn acc
        | Layer.Leaky_relu slope ->
            let acc =
              if slope < 0. || slope > 1.
                 || not (Canopy_util.Mathx.is_finite slope)
              then
                diag ~name ~rule:"net-bad-hyper"
                  "layer %d (leaky_relu): slope %g outside [0,1] — the \
                   abstract transformers require it"
                  idx slope
                :: acc
              else acc
            in
            (dim, acc)
        | Layer.Relu | Layer.Tanh -> (dim, acc))
      (in_dim, acc)
      (List.mapi (fun i l -> (i, l)) layers)
  in
  List.rev acc

let check_mlp ?name net =
  check_layers ?name ~in_dim:(Mlp.in_dim net) (Mlp.layers net)

let check_checkpoint path =
  match Checkpoint.load path with
  | net -> Ok (check_mlp ~name:path net)
  | exception (Failure msg | Invalid_argument msg) ->
      Error (Printf.sprintf "%s: malformed checkpoint: %s" path msg)
  | exception Sys_error msg -> Error msg

let assert_valid ?(what = "network") net =
  match check_mlp ~name:what net with
  | [] -> ()
  | diags ->
      invalid_arg
        (Format.asprintf "Netcheck: %s failed validation:@\n%a" what
           (Format.pp_print_list Diagnostic.pp)
           diags)
