(* Approximate call graph over token streams. Modules are keyed by their
   file base name capitalized ([lib/util/pool.ml] → [Pool]) — the same
   name by which sibling modules and, after a library prefix, the rest
   of the tree refer to them. Definitions are column-0 [let]/[and]
   bindings; a definition's body runs to the next column-0 structure
   keyword. References are resolved two ways: a bare lowercase
   identifier matching a definition of the same module, and a
   module-qualified path whose last capitalized component (after local
   [module X = ...] alias resolution) names a known module. Calls
   through function-valued parameters are invisible — the analysis is
   deliberately an over/under-approximation documented in DESIGN §11. *)

type def = {
  module_ : string;
  name : string;
  path : string;
  line : int;
  start : int;  (* first token index of the body (after the name) *)
  stop : int;   (* exclusive token index *)
}

type modul = {
  m_name : string;
  m_path : string;
  lexed : Lexer.t;
  defs : def list;
  aliases : (string * string) list;  (* local alias → target base module *)
}

type t = { modules : (string, modul) Hashtbl.t; ordered : modul list }

(* Column-0 keywords that terminate the previous definition's span. *)
let boundary_kws =
  [ "let"; "and"; "type"; "module"; "open"; "include"; "exception";
    "val"; "external"; "class" ]

let is_boundary (tok : Lexer.token) =
  tok.Lexer.col = 0
  &&
  match tok.Lexer.kind with
  | Lexer.Lident k -> List.mem k boundary_kws
  | Lexer.Op ";;" -> true
  | _ -> false

let scan_defs ~path (lexed : Lexer.t) =
  let ts = lexed.Lexer.tokens in
  let n = Array.length ts in
  let module_ = Inventory.module_of_path path in
  let defs = ref [] in
  let next_boundary i =
    let j = ref (i + 1) in
    while !j < n && not (is_boundary ts.(!j)) do incr j done;
    !j
  in
  let i = ref 0 in
  while !i < n do
    (match ts.(!i).Lexer.kind with
    | Lexer.Lident ("let" | "and") when ts.(!i).Lexer.col = 0 ->
        let j =
          if
            !i + 1 < n
            && ts.(!i + 1).Lexer.kind = Lexer.Lident "rec"
          then !i + 2
          else !i + 1
        in
        (match if j < n then Some ts.(j) else None with
        | Some ({ Lexer.kind = Lexer.Lident name; _ } as nt)
          when not (Lexer.is_keyword name) ->
            let stop = next_boundary !i in
            defs :=
              {
                module_;
                name;
                path;
                line = nt.Lexer.line;
                start = j + 1;
                stop;
              }
              :: !defs;
            i := stop
        | _ -> incr i)
    | _ -> incr i)
  done;
  List.rev !defs

(* [module X = A.B.C] aliases, at any nesting ([let module] included). *)
let scan_aliases (lexed : Lexer.t) =
  let ts = lexed.Lexer.tokens in
  let n = Array.length ts in
  let aliases = ref [] in
  for i = 0 to n - 4 do
    match
      ( ts.(i).Lexer.kind, ts.(i + 1).Lexer.kind, ts.(i + 2).Lexer.kind,
        ts.(i + 3).Lexer.kind )
    with
    | Lexer.Lident "module", Lexer.Uident alias, Lexer.Op "=",
      Lexer.Uident first ->
        (* follow the dotted path to its last component *)
        let target = ref first and j = ref (i + 4) in
        while
          !j + 1 < n
          && ts.(!j).Lexer.kind = Lexer.Op "."
          &&
          match ts.(!j + 1).Lexer.kind with
          | Lexer.Uident u ->
              target := u;
              true
          | _ -> false
        do
          j := !j + 2
        done;
        aliases := (alias, !target) :: !aliases
    | _ -> ()
  done;
  List.rev !aliases

let build files =
  let ordered =
    List.map
      (fun (path, lexed) ->
        {
          m_name = Inventory.module_of_path path;
          m_path = path;
          lexed;
          defs = scan_defs ~path lexed;
          aliases = scan_aliases lexed;
        })
      files
  in
  let modules = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace modules m.m_name m) ordered;
  { modules; ordered }

let find_module t name = Hashtbl.find_opt t.modules name

let resolve_module m name =
  match List.assoc_opt name m.aliases with Some t -> t | None -> name

let find_def t ~module_ ~name =
  match find_module t module_ with
  | None -> None
  | Some m -> List.find_opt (fun d -> d.name = name) m.defs

(* All definitions referenced from tokens [start, stop) of module [m]:
   bare lowercase identifiers naming a definition of [m], and qualified
   [Path.To.Mod.f] references whose last module component (alias-
   resolved) is a known module with a definition [f]. *)
let refs_in_span t m ~start ~stop =
  let ts = m.lexed.Lexer.tokens in
  let n = Array.length ts in
  let stop = min stop n in
  let acc = ref [] in
  let add d =
    if
      not
        (List.exists
           (fun d' -> d'.module_ = d.module_ && d'.name = d.name)
           !acc)
    then acc := d :: !acc
  in
  let prev_is_dot i = i > 0 && ts.(i - 1).Lexer.kind = Lexer.Op "." in
  let i = ref (max 0 start) in
  while !i < stop do
    (match ts.(!i).Lexer.kind with
    | Lexer.Uident u when not (prev_is_dot !i) ->
        (* walk the dotted chain: U (. U)* then optionally [. lident] *)
        let last = ref u and k = ref !i in
        let continue_ = ref true in
        while !continue_ do
          if !k + 2 < n && ts.(!k + 1).Lexer.kind = Lexer.Op "." then
            match ts.(!k + 2).Lexer.kind with
            | Lexer.Uident v ->
                last := v;
                k := !k + 2
            | Lexer.Lident f when not (Lexer.is_keyword f) ->
                (match find_def t ~module_:(resolve_module m !last) ~name:f with
                | Some d -> add d
                | None -> ());
                k := !k + 2;
                continue_ := false
            | _ -> continue_ := false
          else continue_ := false
        done;
        i := !k + 1
    | Lexer.Lident f
      when (not (Lexer.is_keyword f)) && not (prev_is_dot !i) -> (
        (match List.find_opt (fun d -> d.name = f) m.defs with
        | Some d -> add d
        | None -> ());
        incr i)
    | _ -> incr i)
  done;
  List.rev !acc
