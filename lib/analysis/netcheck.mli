(** Static shape and finiteness validation for network stacks.

    Run before training and evaluation: a dimension-mismatched stack, a
    NaN weight or an uninitialized batch-norm statistic invalidates both
    the forward pass and every certificate computed over it. Rules:

    - [net-dim-mismatch]: layer input dimensions do not chain;
    - [net-nonfinite-param]: NaN/infinite weights, biases or statistics;
    - [net-bn-uninitialized]: negative or identically-zero running
      variance;
    - [net-bad-hyper]: eps, momentum or activation slope outside their
      valid ranges (the abstract transformers require slope ∈ [0,1]). *)

val check_layers :
  ?name:string -> in_dim:int -> Canopy_nn.Layer.t list -> Diagnostic.t list
(** Validate a raw layer stack against an input dimension. Unlike
    [Mlp.create] this never raises — it reports every problem found.
    [name] labels the diagnostics (default ["<network>"]). *)

val check_mlp : ?name:string -> Canopy_nn.Mlp.t -> Diagnostic.t list

val check_checkpoint : string -> (Diagnostic.t list, string) result
(** Load a checkpoint and validate it. [Error] covers unreadable or
    malformed files; [Ok diags] carries the validation findings. *)

val assert_valid : ?what:string -> Canopy_nn.Mlp.t -> unit
(** Raise [Invalid_argument] listing every finding if the network fails
    validation. Used as the pre-flight gate by the trainer. *)
