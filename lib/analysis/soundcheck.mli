(** Differential soundness audit — a sanitizer for the verifier itself.

    For every primitive abstract transformer F in [lib/absint] (interval
    arithmetic, box affine maps, zonotope relaxations, and the full
    IBP/zonotope passes over random MLPs), samples concrete points x
    inside random abstract inputs X and asserts [f(x) ∈ γ(F(X))]. Any
    escape is reported with the offending op, the inputs, the witness
    point and the run seed, so it can be replayed deterministically.

    Scalar interval transformers are checked with exact containment
    (IEEE-754 rounding is monotone, so an escape is a real soundness
    bug); matrix and network passes allow a 1e-9 relative tolerance for
    reassociation noise. *)

type violation = { op : string; trial : int; seed : int; detail : string }

type result = {
  samples : int;  (** total point checks performed *)
  per_op : (string * int) list;  (** samples spent on each transformer *)
  violation_count : int;  (** true number of violations *)
  violations : violation list;  (** reported subset, capped at [max_report] *)
}

val op_names : string list
(** The audited transformers, e.g. ["interval.mul"], ["ibp.mlp"]. *)

val run : ?seed:int -> ?max_report:int -> samples:int -> unit -> result
(** Distribute [samples] point checks round-robin over all transformers.
    Deterministic for a fixed [seed] (default 2026). Requires
    [samples > 0]. *)

val pp_violation : Format.formatter -> violation -> unit
