(* Token-level lexer for the repository's own OCaml sources. This is the
   substrate every static pass in this library stands on: the lint rules
   match against token-rendered (string/comment-blanked) lines, and the
   inventory / call-graph / racecheck passes walk the token stream
   directly. It is not a full OCaml lexer — attributes, extension nodes
   and exotic literals degrade to operator/ident tokens — but strings,
   char literals, nested comments and quoted-string literals are lexed
   exactly, which is what keeps the downstream analyses from matching
   inside text. *)

type kind =
  | Lident of string
  | Uident of string
  | Int of string
  | Float of string
  | String of string  (* literal body, escapes NOT decoded *)
  | Char of string
  | Op of string

type token = {
  kind : kind;
  line : int;  (* 1-based line of the first char *)
  col : int;   (* 0-based column of the first char *)
  off : int;   (* byte offset of the first char in the source *)
  len : int;   (* byte length of the token's source text *)
}

type t = {
  tokens : token array;
  comments : (int * string) list;
      (* (start line, trimmed body) per comment, source order *)
}

let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "or"; "private"; "rec"; "sig"; "struct"; "then";
    "to"; "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let is_keyword s = List.mem s keywords

let is_lower = function 'a' .. 'z' | '_' -> true | _ -> false
let is_upper = function 'A' .. 'Z' -> true | _ -> false
let is_digit = function '0' .. '9' -> true | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* OCaml symbolic-identifier / operator characters. A maximal run of
   these is one [Op] token ([:=], [<-], [->], [||], ...). Brackets,
   braces, commas and semicolons are single-char [Op] tokens. *)
let is_op_char = function
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
  | '>' | '?' | '@' | '^' | '|' | '~' ->
      true
  | _ -> false

exception Done

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let comments = ref [] in
  let line = ref 1 in
  let bol = ref 0 in (* offset of the current line start *)
  let i = ref 0 in
  let newline at = incr line; bol := at + 1 in
  let emit kind ~start ~start_line ~start_col =
    tokens :=
      { kind; line = start_line; col = start_col; off = start;
        len = !i - start }
      :: !tokens
  in
  (* Advance over one char, maintaining the line map. *)
  let step () =
    if src.[!i] = '\n' then newline !i;
    incr i
  in
  (* Skip a string literal body; [!i] is past the opening quote. Stops
     past the closing quote. Escaped chars (incl. escaped quotes and
     backslashes) are skipped as pairs; an unterminated string consumes
     to EOF. *)
  let skip_string () =
    (try
       while !i < n do
         match src.[!i] with
         | '\\' when !i + 1 < n -> step (); step ()
         | '"' -> incr i; raise Done
         | _ -> step ()
       done
     with Done -> ())
  in
  (* Quoted-string literal (brace, optional lowercase id, pipe ... pipe,
     id, brace). [!i] is at the opening brace. When the opener matches,
     consumes through the closing fence and returns [Some delim_len]
     where [delim_len] is the opener's length; else leaves [!i]
     unchanged and returns [None]. N.B. the opener sequence must not be
     written literally even in comments — it nests. *)
  let try_quoted_string () =
    let j = ref (!i + 1) in
    while !j < n && is_lower src.[!j] do incr j done;
    if !j < n && src.[!j] = '|' then begin
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let closing = "|" ^ id ^ "}" in
      let m = String.length closing in
      i := !j + 1;
      (try
         while !i < n do
           if !i + m <= n && String.sub src !i m = closing then begin
             i := !i + m;
             raise Done
           end
           else step ()
         done
       with Done -> ());
      Some m
    end
    else None
  in
  (* Comment starting at [!i] (at the opening paren). Consumes through
     the matching closer, recording the (possibly nested) body. Strings
     inside comments are lexed as strings (OCaml requires them
     balanced). *)
  let skip_comment () =
    let start_line = !line in
    let body = Buffer.create 32 in
    i := !i + 2;
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
        incr depth;
        Buffer.add_string body "(*";
        i := !i + 2
      end
      else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
        decr depth;
        if !depth > 0 then Buffer.add_string body "*)";
        i := !i + 2
      end
      else if src.[!i] = '"' then begin
        (* Strings inside comments must be balanced per the OCaml
           grammar; their text is part of the comment body. *)
        let s = !i in
        incr i;
        skip_string ();
        Buffer.add_string body (String.sub src s (!i - s))
      end
      else begin
        Buffer.add_char body src.[!i];
        step ()
      end
    done;
    comments := (start_line, String.trim (Buffer.contents body)) :: !comments
  in
  (* Is [src.[k]] the start of a char literal (as opposed to a type
     variable or a stray prime)? ['x'], ['\n'], ['\123'], ['\xFF']. *)
  let is_char_literal k =
    k + 1 < n
    &&
    if src.[k + 1] = '\\' then true
    else k + 2 < n && src.[k + 1] <> '\'' && src.[k + 2] = '\''
  in
  while !i < n do
    let c = src.[!i] in
    let start = !i and start_line = !line in
    let start_col = !i - !bol in
    if c = '\n' then begin newline !i; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then skip_comment ()
    else if c = '"' then begin
      incr i;
      let body_start = !i in
      skip_string ();
      let body_len = max 0 (!i - 1 - body_start) in
      emit (String (String.sub src body_start body_len))
        ~start ~start_line ~start_col
    end
    else if c = '{' then begin
      match try_quoted_string () with
      | Some delim_len ->
          (* the scan in [try_quoted_string] maintained the line map;
             the payload is the body between the two delimiter fences *)
          let body_len = max 0 (!i - start - (2 * delim_len)) in
          emit (String (String.sub src (start + delim_len) body_len))
            ~start ~start_line ~start_col
      | None ->
          incr i;
          emit (Op "{") ~start ~start_line ~start_col
    end
    else if c = '\'' && is_char_literal !i then begin
      incr i;
      if !i < n && src.[!i] = '\\' then begin
        incr i;
        (* escape body: one escape char, or digits, or x + hex digits *)
        while !i < n && src.[!i] <> '\'' do incr i done
      end
      else incr i;
      if !i < n && src.[!i] = '\'' then incr i;
      emit (Char (String.sub src (start + 1) (!i - start - 2)))
        ~start ~start_line ~start_col
    end
    else if is_digit c then begin
      if
        c = '0' && !i + 1 < n
        && (let x = src.[!i + 1] in
            x = 'x' || x = 'X' || x = 'o' || x = 'O' || x = 'b' || x = 'B')
      then begin
        i := !i + 2;
        while
          !i < n
          && (is_ident_char src.[!i])
        do incr i done;
        emit (Int (String.sub src start (!i - start)))
          ~start ~start_line ~start_col
      end
      else begin
        while !i < n && (is_digit src.[!i] || src.[!i] = '_') do incr i done;
        let is_float = ref false in
        (* a '.' not followed by a second '.' continues the literal *)
        if !i < n && src.[!i] = '.'
           && not (!i + 1 < n && src.[!i + 1] = '.')
        then begin
          is_float := true;
          incr i;
          while !i < n && (is_digit src.[!i] || src.[!i] = '_') do incr i done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E')
           && (!i + 1 < n
               && (is_digit src.[!i + 1]
                  || ((src.[!i + 1] = '+' || src.[!i + 1] = '-')
                     && !i + 2 < n && is_digit src.[!i + 2])))
        then begin
          is_float := true;
          incr i;
          if src.[!i] = '+' || src.[!i] = '-' then incr i;
          while !i < n && (is_digit src.[!i] || src.[!i] = '_') do incr i done
        end;
        (* int-literal suffixes l, L, n *)
        if (not !is_float) && !i < n
           && (src.[!i] = 'l' || src.[!i] = 'L' || src.[!i] = 'n')
        then incr i;
        let text = String.sub src start (!i - start) in
        emit (if !is_float then Float text else Int text)
          ~start ~start_line ~start_col
      end
    end
    else if is_lower c || is_upper c then begin
      while !i < n && is_ident_char src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      emit (if is_upper c then Uident text else Lident text)
        ~start ~start_line ~start_col
    end
    else if is_op_char c then begin
      while !i < n && is_op_char src.[!i] do incr i done;
      emit (Op (String.sub src start (!i - start)))
        ~start ~start_line ~start_col
    end
    else begin
      (* single-char punctuation: ( ) [ ] { } , ; ` and anything else *)
      incr i;
      emit (Op (String.make 1 c)) ~start ~start_line ~start_col
    end
  done;
  {
    tokens = Array.of_list (List.rev !tokens);
    comments = List.rev !comments;
  }

(* Render the source with string bodies, char literals and comments
   blanked to spaces (newlines preserved), so column positions survive.
   This is the token-stream footing under the line-oriented lint rules:
   a rule keyword inside a string or comment can no longer match. *)
let blank_non_code src =
  let { tokens; _ } = lex src in
  let buf =
    Bytes.map (fun c -> if c = '\n' then '\n' else ' ') (Bytes.of_string src)
  in
  Array.iter
    (fun t ->
      match t.kind with
      | String _ | Char _ -> ()
      | _ -> Bytes.blit_string src t.off buf t.off t.len)
    tokens;
  Bytes.to_string buf
