(** Checked-in lint baselines.

    A baseline file lists accepted findings, one per line:
    [<rule> <key> <file>:<line> <source text>]. Only the first two fields
    are significant; the rest is commentary for reviewers. [<key>] is
    {!Diagnostic.key}, which hashes the rule, file and trimmed line text
    — not the line number — so entries survive unrelated edits. Lines
    starting with [#] are comments. *)

type t

val empty : unit -> t
val load : string -> t
(** Loading a missing file yields an empty baseline. *)

val mem : t -> Diagnostic.t -> bool

val filter : t -> Diagnostic.t list -> Diagnostic.t list * int
(** [filter t diags] is [(fresh, suppressed_count)]. *)

val save : string -> Diagnostic.t list -> unit
(** Write a baseline accepting exactly [diags]. *)
