(** Checked-in analysis baselines.

    A baseline file lists accepted findings, one per line:
    [<rule> <key> <file>:<line> <source text>]. Only the first two fields
    are significant; the rest is commentary for reviewers. [<key>] is
    {!Diagnostic.key}, which hashes the rule, file and trimmed line text
    — not the line number — so entries survive unrelated edits. Lines
    starting with [#] are comments.

    One baseline file is shared by the [lint] and [racecheck] passes;
    each pass owns the entries carrying its rule names and updates only
    those ({!update}), so regenerating one pass's section never drops
    the other's. *)

type t

type entry = {
  e_rule : string;
  e_key : string;   (** {!Diagnostic.key} hash *)
  e_rest : string;  (** informational: [file:line source-text] *)
}

val empty : unit -> t

val load : string -> t
(** Loading a missing file yields an empty baseline. *)

val load_entries : string -> entry list
(** The raw entries, in file order. *)

val mem : t -> Diagnostic.t -> bool

val filter : t -> Diagnostic.t list -> Diagnostic.t list * int
(** [filter t diags] is [(fresh, suppressed_count)]. *)

val stale :
  entry list -> rules:(string -> bool) -> Diagnostic.t list -> entry list
(** Entries owned by [rules] that no current diagnostic matches —
    baseline drift that must be cleaned up, not accumulated. *)

val update : string -> rules:(string -> bool) -> Diagnostic.t list -> unit
(** Replace the [rules]-owned section of the baseline with [diags],
    preserving entries owned by other passes (atomic write). *)

val save : string -> Diagnostic.t list -> unit
(** Write a baseline accepting exactly [diags] (atomic write). *)
