(** Findings emitted by the static passes (lint, netcheck).

    A diagnostic pins a rule violation to a file and, when line-scoped, a
    line. [text] carries the trimmed source line and participates in the
    suppression {!key} so that baselines survive unrelated edits. *)

type t = {
  rule : string;  (** rule identifier, e.g. ["polymorphic-compare"] *)
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based; [0] for file-scoped findings *)
  message : string;
  text : string;  (** trimmed source line; [""] for file-scoped findings *)
}

val make :
  rule:string -> file:string -> ?line:int -> ?text:string -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then rule. *)

val key : t -> string
(** Stable 10-hex-char suppression key over (rule, file, line text) —
    line numbers excluded so baselines survive renumbering. *)

val pp : Format.formatter -> t -> unit
(** Renders [file:line: [rule] message]. *)
