(* Mutable-state inventory: the module-level mutable values of each
   source file, classified by constructor, plus every [mutable] record
   field declaration. This is the "what could possibly be shared"
   half of the race analysis — racecheck flags writes that reach an
   inventoried global from a parallel region.

   Top-level-ness is approximated syntactically: a [let] token in column
   0 is a structure item. A binding counts as a mutable global when it
   has no parameters (the name is immediately followed by [=] or a type
   annotation) and its right-hand side starts with a recognised mutable
   constructor. [Atomic.make], [Domain.DLS.new_key] and [Mutex.create]
   are inventoried as {e blessed}: writes through them are the sanctioned
   ways to share state across domains. *)

type kind =
  | Ref
  | Hashtbl
  | Buffer
  | Queue
  | Stack
  | Array
  | Bytes
  | Record
  | Atomic
  | Dls
  | Mutex

let kind_name = function
  | Ref -> "ref"
  | Hashtbl -> "Hashtbl"
  | Buffer -> "Buffer"
  | Queue -> "Queue"
  | Stack -> "Stack"
  | Array -> "array"
  | Bytes -> "bytes"
  | Record -> "record"
  | Atomic -> "Atomic"
  | Dls -> "Domain.DLS"
  | Mutex -> "Mutex"

let blessed = function Atomic | Dls | Mutex -> true | _ -> false

type entry = {
  module_ : string;
  name : string;
  kind : kind;
  line : int;
  path : string;
}

type t = {
  globals : entry list;
  mutable_fields : (string * string * int) list;
      (* (module, field name, line) *)
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Classify the tokens of a right-hand side by their head constructor.
   [ts.(j)] is the first RHS token. *)
let classify_rhs (ts : Lexer.token array) j =
  let n = Array.length ts in
  let kind_of_module_call m f =
    match (m, f) with
    | "Hashtbl", "create" -> Some Hashtbl
    | "Buffer", "create" -> Some Buffer
    | "Queue", "create" -> Some Queue
    | "Stack", "create" -> Some Stack
    | "Array", ("make" | "init" | "create_float" | "make_matrix") ->
        Some Array
    | "Bytes", ("create" | "make" | "init") -> Some Bytes
    | "Atomic", "make" -> Some Atomic
    | "Mutex", "create" -> Some Mutex
    | _ -> None
  in
  if j >= n then None
  else
    match ts.(j).Lexer.kind with
    | Lexer.Lident "ref" -> Some Ref
    | Lexer.Op "{" -> Some Record
    | Lexer.Op "[" when j + 1 < n && ts.(j + 1).Lexer.kind = Lexer.Op "|" ->
        Some Array
    | Lexer.Uident "Domain"
      when j + 4 < n
           && ts.(j + 1).Lexer.kind = Lexer.Op "."
           && ts.(j + 2).Lexer.kind = Lexer.Uident "DLS"
           && ts.(j + 3).Lexer.kind = Lexer.Op "."
           && ts.(j + 4).Lexer.kind = Lexer.Lident "new_key" ->
        Some Dls
    | Lexer.Uident m
      when j + 2 < n && ts.(j + 1).Lexer.kind = Lexer.Op "." -> (
        match ts.(j + 2).Lexer.kind with
        | Lexer.Lident f -> kind_of_module_call m f
        | _ -> None)
    | _ -> None

(* Bracket-depth delta of a token, for finding the [=] of a binding. *)
let depth_delta (t : Lexer.token) =
  match t.Lexer.kind with
  | Lexer.Op ("(" | "[" | "{") -> 1
  | Lexer.Op (")" | "]" | "}") -> -1
  | _ -> 0

let scan ~path (lexed : Lexer.t) =
  let ts = lexed.Lexer.tokens in
  let n = Array.length ts in
  let module_ = module_of_path path in
  let globals = ref [] in
  let fields = ref [] in
  let is_kw j kw =
    j < n && ts.(j).Lexer.kind = Lexer.Lident kw in
  for i = 0 to n - 1 do
    (match ts.(i).Lexer.kind with
    | Lexer.Lident "mutable" when i + 1 < n -> (
        match ts.(i + 1).Lexer.kind with
        | Lexer.Lident f ->
            fields := (module_, f, ts.(i + 1).Lexer.line) :: !fields
        | _ -> ())
    | Lexer.Lident "let" when ts.(i).Lexer.col = 0 ->
        let j = if is_kw (i + 1) "rec" then i + 2 else i + 1 in
        (match if j < n then ts.(j).Lexer.kind else Lexer.Op "" with
        | Lexer.Lident name when not (Lexer.is_keyword name) ->
            (* a value binding has no parameters: the name is followed
               directly by [=], or by [: type =] *)
            let k = j + 1 in
            let rhs_start =
              if k < n && ts.(k).Lexer.kind = Lexer.Op "=" then Some (k + 1)
              else if k < n && ts.(k).Lexer.kind = Lexer.Op ":" then begin
                (* scan the annotation for the [=] at bracket depth 0 *)
                let depth = ref 0 and found = ref None and p = ref (k + 1) in
                while !found = None && !p < n && ts.(!p).Lexer.col > 0 do
                  (match ts.(!p).Lexer.kind with
                  | Lexer.Op "=" when !depth = 0 -> found := Some (!p + 1)
                  | _ -> depth := !depth + depth_delta ts.(!p));
                  incr p
                done;
                !found
              end
              else None
            in
            (match rhs_start with
            | Some r -> (
                match classify_rhs ts r with
                | Some kind ->
                    globals :=
                      {
                        module_;
                        name;
                        kind;
                        line = ts.(j).Lexer.line;
                        path;
                      }
                      :: !globals
                | None -> ())
            | None -> ())
        | _ -> ())
    | _ -> ())
  done;
  { globals = List.rev !globals; mutable_fields = List.rev !fields }
