(** Gradient-based parameter optimizers.

    Operate on the [(value, gradient)] flat-array views exposed by
    {!Mlp.params}, so a single optimizer instance can drive any network.
    Adam is the default for TD3 as in the Orca/C3 training setup. *)

type t

val sgd : ?momentum:float -> lr:float -> unit -> t
val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t

val step : t -> (float array * float array) list -> unit
(** Apply one update using the current gradient values. The optimizer keeps
    per-parameter state keyed by position in the list, so the same
    parameter list (same order and shapes) must be passed on every call. *)

val set_lr : t -> float -> unit
val lr : t -> float

type snapshot = {
  step_count : int;
  moments : (int * float array * float array) list;
      (** [(slot index, first moment, second moment)], sorted by index.
          Arrays are deep copies — mutating them does not touch the live
          optimizer. *)
}

val snapshot : t -> snapshot
(** Capture the mutable update state (step counter and per-parameter
    moment vectors). The learning rate and algorithm constants are not
    included: they come from configuration, not training progress. *)

val restore : t -> snapshot -> unit
(** Overwrite [t]'s step counter and moments with a captured snapshot.
    Subsequent {!step} calls continue bit-for-bit as if the snapshot had
    never been interrupted. *)

val clip_gradients : norm:float -> (float array * float array) list -> unit
(** Global-norm gradient clipping applied in place. *)
