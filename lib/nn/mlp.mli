(** Multi-layer perceptron container.

    Composes {!Layer.t} values into the feed-forward networks used for the
    actor (policy) and the twin critics. The paper's actor architecture
    (Section 5) is [FC → BN → LeakyReLU → FC → BN → LeakyReLU → FC] with a
    tanh head mapping to the action range [\[-1,1\]]; {!actor} builds exactly
    that shape. *)

open Canopy_tensor

type t

val create : in_dim:int -> Layer.t list -> t
(** Wrap a layer stack, recording the input dimension. Raises
    [Invalid_argument] if a dense layer's input size is inconsistent with
    the running dimension. *)

val actor :
  rng:Canopy_util.Prng.t -> in_dim:int -> hidden:int -> out_dim:int -> t
(** The paper's actor shape with a tanh output head. *)

val critic :
  rng:Canopy_util.Prng.t -> state_dim:int -> action_dim:int -> hidden:int -> t
(** Q-network over concatenated (state, action), scalar output, no head. *)

val in_dim : t -> int
val out_dim : t -> int
val layers : t -> Layer.t list

val generation : t -> int
(** Parameter-generation counter. Starts at 0 and increments whenever the
    network's mutable state changes: training-mode forwards (batch-norm
    running statistics), {!soft_update} targets, optimizer steps (the
    caller of [Optimizer.step] is responsible for calling
    {!bump_generation}), and checkpoint loads. Derived read-only views —
    most importantly the verifier IR in [Canopy_absint.Anet] — cache
    against [(t, generation t)] and stay valid across the many rollout
    steps between gradient updates. *)

val bump_generation : t -> unit
(** Record that parameters changed through a channel the network cannot
    see itself (e.g. [Optimizer.step] mutating parameter arrays in
    place). Forgetting a bump leaves stale cached IRs; the soundness
    audit and the cache-staleness unit test guard the known channels. *)

val forward : t -> Vec.t -> Vec.t
(** Single-sample inference ([Eval] mode; batch-norm uses running stats).
    Runs over a per-domain scratch arena — no per-layer allocation on the
    rollout hot path — and returns a fresh vector the caller owns. *)

val forward_batch : t -> Mat.t -> Mat.t
(** Batched inference over a [batch × in_dim] matrix ([Eval] mode, no
    cache, no running-stat update); one GEMM per dense layer,
    element-wise layers applied in place on the chain's intermediates
    (the input matrix itself is never mutated). *)

val forward_eval_into : dst:Mat.t -> t -> Mat.t -> unit
(** Batched inference into a caller-owned [batch × out_dim] matrix with
    zero steady-state allocation: intermediates ping-pong between two
    slots of a per-domain scratch arena ([Domain.DLS]-keyed, warm ≡ cold
    bit-exactly), the last layer writes directly into [dst]. Every
    output row is bit-identical to {!forward} on the corresponding input
    row (see [Layer.forward_eval_into]) — the property that lets the
    fleet's one-GEMM-per-tick serving path reproduce scalar per-flow
    trajectories exactly. [dst] must not alias the input. *)

val forward_eval : t -> Mat.t -> Mat.t
(** {!forward_eval_into} into a fresh matrix the caller owns. Unlike
    {!forward_batch} the result rows are bit-identical to {!forward}
    (not merely equal up to rounding). *)

type tape
(** Activation record from a batched training-mode pass. *)

val forward_train : t -> Mat.t -> Mat.t * tape
(** Training-mode forward over a [batch × in_dim] matrix; batch-norm
    layers use batch statistics (batch > 1) and update running stats. *)

val backward : ?input_grad:bool -> t -> tape -> Mat.t -> Mat.t
(** Accumulates parameter gradients and returns input gradients, both as
    [batch × dim] matrices. Pass [~input_grad:false] when the input
    gradient is not consumed (e.g. a critic fit): the first layer then
    skips its input-gradient GEMM and the return value is unspecified. *)

type rows_tape
(** Activation record from the per-sample reference pass. *)

val forward_train_rows : t -> Vec.t array -> Vec.t array * rows_tape
(** Per-sample reference implementation of {!forward_train} (one
    [mat_vec] per sample); kept for equivalence tests and benchmarks. *)

val backward_rows : t -> rows_tape -> Vec.t array -> Vec.t array
(** Per-sample reference implementation of {!backward}. *)

val zero_grad : t -> unit
val params : t -> (float array * float array) list
val param_count : t -> int

val copy : t -> t
(** Deep copy, e.g. for target networks. *)

val has_batch_norm : t -> bool
(** Whether any layer carries batch statistics. Batch-norm training
    forwards couple the samples of a batch, so such nets cannot be
    sharded sample-wise ({!grad_shadow} refuses them). *)

val grad_shadow : t -> t
(** A shadow network sharing this net's parameter arrays but owning
    fresh gradient accumulators. Training forwards/backwards through the
    shadow read the live parameters and accumulate into the shadow's own
    buffers — one shadow per shard gives a data-parallel gradient pass
    whose per-shard results are reduced deterministically afterwards.
    [Optimizer.step] over the shadow's {!params} updates the real
    network (the value arrays are shared); only the gradient arrays
    differ. The shadow has its own generation counter — bump the real
    network after stepping through a shadow. Raises [Invalid_argument]
    on nets with batch norm (their training forward is batch-coupled, so
    shards would not reproduce the full-batch pass). *)

val assign : src:t -> dst:t -> unit
(** Overwrite all of [dst]'s mutable state (parameters and batch-norm
    running statistics) with [src]'s, by copy. Unlike
    [soft_update ~tau:1.] this is a plain blit, so it recovers a [dst]
    whose weights are already NaN/Inf — the divergence-rollback path
    depends on that. Bumps [dst]'s generation. The networks must share a
    shape. *)

val soft_update : tau:float -> src:t -> dst:t -> unit
(** Polyak averaging of all parameters and batch-norm running statistics:
    [dst <- (1-tau)*dst + tau*src]. The networks must share a shape. *)
