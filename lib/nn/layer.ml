open Canopy_tensor

type dense = { w : Mat.t; b : Vec.t; dw : Mat.t; db : Vec.t }

type batch_norm = {
  gamma : Vec.t;
  beta : Vec.t;
  dgamma : Vec.t;
  dbeta : Vec.t;
  running_mean : Vec.t;
  running_var : Vec.t;
  momentum : float;
  eps : float;
}

type t =
  | Dense of dense
  | Batch_norm of batch_norm
  | Leaky_relu of float
  | Relu
  | Tanh

type mode = Train | Eval

(* Batched caches carry [batch × dim] matrices. *)
type cache =
  | C_dense of Mat.t (* input batch *)
  | C_bn of { xhat : Mat.t; inv_std : Vec.t; batch_stats : bool }
  | C_leaky of float * Mat.t
  | C_relu of Mat.t
  | C_tanh of Mat.t (* outputs *)

(* Per-sample reference caches (one Vec.t per sample). Kept as an
   independently-implemented path so the batched kernels can be
   equivalence-tested against it, and so the bench can quantify the
   batching speedup. *)
type rows_cache =
  | R_dense of Vec.t array
  | R_bn of {
      xhat : Vec.t array;
      inv_std : Vec.t;
      batch_stats : bool;
    }
  | R_leaky of float * Vec.t array
  | R_relu of Vec.t array
  | R_tanh of Vec.t array (* outputs *)

let dense ~rng ~in_dim ~out_dim =
  if in_dim <= 0 || out_dim <= 0 then invalid_arg "Layer.dense: dims";
  (* He initialization suits the (leaky-)ReLU activations used here. *)
  let scale = sqrt (2. /. float_of_int in_dim) in
  let w =
    Mat.init ~rows:out_dim ~cols:in_dim (fun _ _ ->
        Canopy_util.Prng.gaussian_scaled rng ~mu:0. ~sigma:scale)
  in
  Dense
    {
      w;
      b = Vec.create out_dim;
      dw = Mat.create ~rows:out_dim ~cols:in_dim;
      db = Vec.create out_dim;
    }

let batch_norm ?(momentum = 0.1) ?(eps = 1e-5) ~dim () =
  if dim <= 0 then invalid_arg "Layer.batch_norm: dim";
  let ones = Vec.init dim (fun _ -> 1.) in
  Batch_norm
    {
      gamma = Vec.copy ones;
      beta = Vec.create dim;
      dgamma = Vec.create dim;
      dbeta = Vec.create dim;
      running_mean = Vec.create dim;
      running_var = Vec.copy ones;
      momentum;
      eps;
    }

(* A positive slope keeps the activation sign-preserving, which the
   batched cache relies on (backward reads its mask from the output). *)
let leaky_relu ?(slope = 0.01) () =
  if slope <= 0. then invalid_arg "Layer.leaky_relu: slope must be positive";
  Leaky_relu slope
let relu = Relu
let tanh = Tanh

let out_dim ~in_dim = function
  | Dense d -> Mat.rows d.w
  | Batch_norm _ | Leaky_relu _ | Relu | Tanh -> in_dim

let leaky_fwd slope x = Array.map (fun v -> if v >= 0. then v else slope *. v) x

let bn_affine bn x =
  Array.mapi
    (fun i v ->
      let inv = 1. /. sqrt (bn.running_var.(i) +. bn.eps) in
      (bn.gamma.(i) *. (v -. bn.running_mean.(i)) *. inv) +. bn.beta.(i))
    x

let forward1 mode layer x =
  match layer with
  | Dense d ->
      let y = Mat.mat_vec d.w x in
      Vec.axpy ~alpha:1. ~x:d.b ~y;
      y
  | Batch_norm bn ->
      (* A single sample has no batch statistics: use the running ones in
         both modes (this is also what the verifier certifies against). *)
      ignore mode;
      bn_affine bn x
  | Leaky_relu slope -> leaky_fwd slope x
  | Relu -> Array.map (fun v -> Float.max 0. v) x
  | Tanh -> Array.map Float.tanh x

(* Allocation-free [forward1] into a caller-owned buffer, bit-identical
   to it: [y +. 1.*.b = y +. b] exactly, and the other arms restate the
   same per-element expressions. [dst] must not alias [x]. *)
let forward1_into ~dst mode layer x =
  match layer with
  | Dense d ->
      Mat.mat_vec_into ~dst d.w x;
      for i = 0 to Vec.dim dst - 1 do
        dst.(i) <- dst.(i) +. d.b.(i)
      done
  | Batch_norm bn ->
      ignore mode;
      for i = 0 to Vec.dim dst - 1 do
        let inv = 1. /. sqrt (bn.running_var.(i) +. bn.eps) in
        dst.(i) <- (bn.gamma.(i) *. (x.(i) -. bn.running_mean.(i)) *. inv)
                   +. bn.beta.(i)
      done
  | Leaky_relu slope ->
      for i = 0 to Vec.dim dst - 1 do
        let v = x.(i) in
        dst.(i) <- (if v >= 0. then v else slope *. v)
      done
  | Relu ->
      for i = 0 to Vec.dim dst - 1 do
        dst.(i) <- Float.max 0. x.(i)
      done
  | Tanh ->
      for i = 0 to Vec.dim dst - 1 do
        dst.(i) <- Float.tanh x.(i)
      done

(* ------------------------------------------------------------------ *)
(* Batched passes over [batch × dim] matrices *)

(* Fold the batch statistics into the running estimates. *)
let bn_update_running bn mu var =
  for i = 0 to Vec.dim bn.gamma - 1 do
    bn.running_mean.(i) <-
      ((1. -. bn.momentum) *. bn.running_mean.(i)) +. (bn.momentum *. mu.(i));
    bn.running_var.(i) <-
      ((1. -. bn.momentum) *. bn.running_var.(i)) +. (bn.momentum *. var.(i))
  done

(* The batched passes below run on the flat [Mat.raw] arrays with unsafe
   accesses: shapes are validated at entry, every index is affine in loop
   counters bounded by those shapes, and avoiding the per-element bounds
   checks and closure calls of [Mat.get]/[Mat.init] is where most of the
   batching speedup over the per-sample reference comes from. *)

let forward ?(reuse_input = false) mode layer x =
  let n = Mat.rows x in
  if n = 0 then invalid_arg "Layer.forward: empty batch";
  (* With [~reuse_input:true] the element-wise layers write their output
     into [x]'s storage instead of allocating a fresh [batch × dim]
     matrix. A 64×64 float array lands directly on the major heap, so
     inside an MLP chain — where each layer's input is the previous
     layer's freshly-allocated output — the reuse removes most of the
     allocation churn of a training step. *)
  match layer with
  | Dense d ->
      if Mat.cols x <> Mat.cols d.w then invalid_arg "Layer.forward: dims";
      (* One bias-fused GEMM for the whole batch: y = x·wᵀ + b. The
         output shape differs from the input's and the cache needs [x]
         intact, so [reuse_input] does not apply. *)
      let y = Mat.mat_mul_nt_bias x d.w d.b in
      (y, C_dense x)
  | Batch_norm bn ->
      let dim = Vec.dim bn.gamma in
      if Mat.cols x <> dim then invalid_arg "Layer.forward: dims";
      let use_batch_stats = mode = Train && n > 1 in
      let nf = float_of_int n in
      let xd = Mat.raw x in
      let gamma = bn.gamma and beta = bn.beta in
      if use_batch_stats then begin
        (* Column-wise mean/variance over the batch dimension, summed in
           ascending sample order (matches the per-sample reference). *)
        let mu = Vec.create dim and var = Vec.create dim in
        let inv_n = 1. /. nf in
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            Array.unsafe_set mu i
              (Array.unsafe_get mu i
              +. (inv_n *. Array.unsafe_get xd (base + i)))
          done
        done;
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            let d = Array.unsafe_get xd (base + i) -. Array.unsafe_get mu i in
            Array.unsafe_set var i (Array.unsafe_get var i +. (d *. d /. nf))
          done
        done;
        let inv_std = Vec.init dim (fun i -> 1. /. sqrt (var.(i) +. bn.eps)) in
        let xhat = Mat.create ~rows:n ~cols:dim in
        let xh = Mat.raw xhat in
        (* Normalize and scale-shift in one pass; [out] may alias [x]
           (each cell is read before it is overwritten). *)
        let out = if reuse_input then x else Mat.create ~rows:n ~cols:dim in
        let od = Mat.raw out in
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            let h =
              (Array.unsafe_get xd (base + i) -. Array.unsafe_get mu i)
              *. Array.unsafe_get inv_std i
            in
            Array.unsafe_set xh (base + i) h;
            Array.unsafe_set od (base + i)
              ((Array.unsafe_get gamma i *. h) +. Array.unsafe_get beta i)
          done
        done;
        bn_update_running bn mu var;
        (out, C_bn { xhat; inv_std; batch_stats = true })
      end
      else begin
        let inv_std =
          Vec.init dim (fun i -> 1. /. sqrt (bn.running_var.(i) +. bn.eps))
        in
        let xhat = Mat.create ~rows:n ~cols:dim in
        let xh = Mat.raw xhat and rm = bn.running_mean in
        let out = if reuse_input then x else Mat.create ~rows:n ~cols:dim in
        let od = Mat.raw out in
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            let h =
              (Array.unsafe_get xd (base + i) -. Array.unsafe_get rm i)
              *. Array.unsafe_get inv_std i
            in
            Array.unsafe_set xh (base + i) h;
            Array.unsafe_set od (base + i)
              ((Array.unsafe_get gamma i *. h) +. Array.unsafe_get beta i)
          done
        done;
        (out, C_bn { xhat; inv_std; batch_stats = false })
      end
  | Leaky_relu slope ->
      (* Sign-preserving, so the backward mask is the same whether it
         reads pre- or post-activation values: under reuse the cache
         simply holds the (overwritten) output. *)
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:(Mat.cols x) in
      let xd = Mat.raw x and od = Mat.raw out in
      for i = 0 to Array.length xd - 1 do
        let v = Array.unsafe_get xd i in
        Array.unsafe_set od i (if v >= 0. then v else slope *. v)
      done;
      (out, C_leaky (slope, out))
  | Relu ->
      (* out > 0 exactly where x > 0, so caching the output keeps the
         backward mask identical under reuse. *)
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:(Mat.cols x) in
      let xd = Mat.raw x and od = Mat.raw out in
      for i = 0 to Array.length xd - 1 do
        Array.unsafe_set od i (Float.max 0. (Array.unsafe_get xd i))
      done;
      (out, C_relu out)
  | Tanh ->
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:(Mat.cols x) in
      let xd = Mat.raw x and od = Mat.raw out in
      for i = 0 to Array.length xd - 1 do
        Array.unsafe_set od i (Float.tanh (Array.unsafe_get xd i))
      done;
      (out, C_tanh out)

(* Cache-free eval-mode forward: skips the activation caches and, for
   batch-norm, the xhat matrix that only backward consumes. The running
   statistics fold into one per-channel affine map — the same folded
   form the abstract interpreter uses for its batch-norm transfer. *)
let forward_eval ?(reuse_input = false) layer x =
  let n = Mat.rows x in
  if n = 0 then invalid_arg "Layer.forward: empty batch";
  match layer with
  | Dense d ->
      if Mat.cols x <> Mat.cols d.w then invalid_arg "Layer.forward: dims";
      Mat.mat_mul_nt_bias x d.w d.b
  | Batch_norm bn ->
      let dim = Vec.dim bn.gamma in
      if Mat.cols x <> dim then invalid_arg "Layer.forward: dims";
      let scale =
        Vec.init dim (fun i -> bn.gamma.(i) /. sqrt (bn.running_var.(i) +. bn.eps))
      in
      let shift =
        Vec.init dim (fun i -> bn.beta.(i) -. (scale.(i) *. bn.running_mean.(i)))
      in
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:dim in
      let xd = Mat.raw x and od = Mat.raw out in
      for b = 0 to n - 1 do
        let base = b * dim in
        for i = 0 to dim - 1 do
          Array.unsafe_set od (base + i)
            ((Array.unsafe_get scale i *. Array.unsafe_get xd (base + i))
            +. Array.unsafe_get shift i)
        done
      done;
      out
  | Leaky_relu slope ->
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:(Mat.cols x) in
      let xd = Mat.raw x and od = Mat.raw out in
      for i = 0 to Array.length xd - 1 do
        let v = Array.unsafe_get xd i in
        Array.unsafe_set od i (if v >= 0. then v else slope *. v)
      done;
      out
  | Relu ->
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:(Mat.cols x) in
      let xd = Mat.raw x and od = Mat.raw out in
      for i = 0 to Array.length xd - 1 do
        Array.unsafe_set od i (Float.max 0. (Array.unsafe_get xd i))
      done;
      out
  | Tanh ->
      let out = if reuse_input then x else Mat.create ~rows:n ~cols:(Mat.cols x) in
      let xd = Mat.raw x and od = Mat.raw out in
      for i = 0 to Array.length xd - 1 do
        Array.unsafe_set od i (Float.tanh (Array.unsafe_get xd i))
      done;
      out

(* Allocation-free batched eval forward whose every output row is
   bit-identical to [forward1_into] on that row: the dense arm runs the
   plain GEMM and adds the bias afterwards (not the bias-seeded
   [mat_mul_nt_bias], which sums in a different order), and the
   batch-norm arm restates [forward1_into]'s unfolded per-element
   expression instead of [forward_eval]'s folded scale/shift. This is
   what lets the fleet serve thousands of flows from one GEMM while
   reproducing the scalar [Mlp.forward] trajectories exactly.
   [dst] must not alias [x]. *)
let forward_eval_into ~dst layer x =
  let n = Mat.rows x in
  if n = 0 then invalid_arg "Layer.forward_eval_into: empty batch";
  if Mat.rows dst <> n then invalid_arg "Layer.forward_eval_into: rows";
  match layer with
  | Dense d ->
      if Mat.cols x <> Mat.cols d.w then
        invalid_arg "Layer.forward_eval_into: dims";
      if Mat.cols dst <> Mat.rows d.w then
        invalid_arg "Layer.forward_eval_into: dims";
      (* Each output row of [mat_mul_nt_into] is bit-identical to
         [mat_vec w row]; adding the bias afterwards matches
         [forward1_into]'s [dst.(i) <- dst.(i) +. b.(i)]. *)
      Mat.mat_mul_nt_into ~dst x d.w;
      Mat.add_row dst d.b
  | Batch_norm bn ->
      let dim = Vec.dim bn.gamma in
      if Mat.cols x <> dim || Mat.cols dst <> dim then
        invalid_arg "Layer.forward_eval_into: dims";
      let xd = Mat.raw x and od = Mat.raw dst in
      let gamma = bn.gamma and beta = bn.beta in
      let rm = bn.running_mean and rv = bn.running_var in
      for b = 0 to n - 1 do
        let base = b * dim in
        for i = 0 to dim - 1 do
          let inv = 1. /. sqrt (Array.unsafe_get rv i +. bn.eps) in
          Array.unsafe_set od (base + i)
            ((Array.unsafe_get gamma i
             *. (Array.unsafe_get xd (base + i) -. Array.unsafe_get rm i)
             *. inv)
            +. Array.unsafe_get beta i)
        done
      done
  | Leaky_relu slope ->
      if Mat.cols x <> Mat.cols dst then
        invalid_arg "Layer.forward_eval_into: dims";
      let xd = Mat.raw x and od = Mat.raw dst in
      for i = 0 to Array.length xd - 1 do
        let v = Array.unsafe_get xd i in
        Array.unsafe_set od i (if v >= 0. then v else slope *. v)
      done
  | Relu ->
      if Mat.cols x <> Mat.cols dst then
        invalid_arg "Layer.forward_eval_into: dims";
      let xd = Mat.raw x and od = Mat.raw dst in
      for i = 0 to Array.length xd - 1 do
        Array.unsafe_set od i (Float.max 0. (Array.unsafe_get xd i))
      done
  | Tanh ->
      if Mat.cols x <> Mat.cols dst then
        invalid_arg "Layer.forward_eval_into: dims";
      let xd = Mat.raw x and od = Mat.raw dst in
      for i = 0 to Array.length xd - 1 do
        Array.unsafe_set od i (Float.tanh (Array.unsafe_get xd i))
      done

let backward ?(input_grad = true) ?(reuse_dout = false) layer cache dout =
  let n = Mat.rows dout in
  (* With [~reuse_dout:true] the element-wise layers write their input
     gradient into [dout]'s storage (every cell is read before it is
     overwritten), sparing one major-heap matrix per layer. Only valid
     when the caller is done with [dout] — inside an MLP backward walk
     each intermediate gradient is consumed exactly once. *)
  match (layer, cache) with
  | Dense d, C_dense x ->
      if Mat.rows x <> n then invalid_arg "Layer.backward: batch size";
      (* dw += doutᵀ·x, db += column sums, dx = dout·w — three batched
         kernels instead of 3n vector ops. The dx GEMM is skipped when the
         caller does not consume input gradients (a fit's first layer). *)
      Mat.mat_mul_tn_acc ~dst:d.dw dout x;
      Mat.col_sum_acc ~dst:d.db dout;
      if input_grad then Mat.mat_mul dout d.w else dout
  | Batch_norm bn, C_bn c ->
      let dim = Vec.dim bn.gamma in
      if Mat.rows c.xhat <> n then invalid_arg "Layer.backward: batch size";
      if Mat.cols dout <> dim then invalid_arg "Layer.backward: dims";
      let dod = Mat.raw dout and xh = Mat.raw c.xhat in
      (* Parameter gradients are identical in both statistic regimes. *)
      let dgamma = bn.dgamma and dbeta = bn.dbeta in
      for b = 0 to n - 1 do
        let base = b * dim in
        for i = 0 to dim - 1 do
          let g = Array.unsafe_get dod (base + i) in
          Array.unsafe_set dgamma i
            (Array.unsafe_get dgamma i
            +. (g *. Array.unsafe_get xh (base + i)));
          Array.unsafe_set dbeta i (Array.unsafe_get dbeta i +. g)
        done
      done;
      if not c.batch_stats then begin
        (* Running statistics are constants: the map is affine. *)
        let dx = if reuse_dout then dout else Mat.create ~rows:n ~cols:dim in
        let dxd = Mat.raw dx and gamma = bn.gamma and istd = c.inv_std in
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            Array.unsafe_set dxd (base + i)
              (Array.unsafe_get dod (base + i)
              *. Array.unsafe_get gamma i *. Array.unsafe_get istd i)
          done
        done;
        dx
      end
      else begin
        (* Full batch-norm backward through the batch mean and variance.
           dxhat is element-wise in dout, so under reuse it overwrites
           dout in place; the final dx map is element-wise in dxhat and
           lands in the same storage again. *)
        let nf = float_of_int n in
        let sum_dxhat = Vec.create dim in
        let sum_dxhat_xhat = Vec.create dim in
        let dxhat = if reuse_dout then dout else Mat.create ~rows:n ~cols:dim in
        let dxh = Mat.raw dxhat and gamma = bn.gamma in
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            Array.unsafe_set dxh (base + i)
              (Array.unsafe_get dod (base + i) *. Array.unsafe_get gamma i)
          done
        done;
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            let g = Array.unsafe_get dxh (base + i) in
            Array.unsafe_set sum_dxhat i (Array.unsafe_get sum_dxhat i +. g);
            Array.unsafe_set sum_dxhat_xhat i
              (Array.unsafe_get sum_dxhat_xhat i
              +. (g *. Array.unsafe_get xh (base + i)))
          done
        done;
        let dx = if reuse_dout then dxhat else Mat.create ~rows:n ~cols:dim in
        let dxd = Mat.raw dx and istd = c.inv_std in
        for b = 0 to n - 1 do
          let base = b * dim in
          for i = 0 to dim - 1 do
            Array.unsafe_set dxd (base + i)
              (Array.unsafe_get istd i /. nf
              *. ((nf *. Array.unsafe_get dxh (base + i))
                  -. Array.unsafe_get sum_dxhat i
                  -. (Array.unsafe_get xh (base + i)
                     *. Array.unsafe_get sum_dxhat_xhat i)))
          done
        done;
        dx
      end
  | Leaky_relu slope, C_leaky (slope', x) ->
      assert (slope = slope');
      if Mat.rows x <> n || Mat.cols x <> Mat.cols dout then
        invalid_arg "Layer.backward: dims";
      let dx = if reuse_dout then dout else Mat.create ~rows:n ~cols:(Mat.cols dout) in
      let dxd = Mat.raw dx and dod = Mat.raw dout and xd = Mat.raw x in
      for i = 0 to Array.length dod - 1 do
        let g = Array.unsafe_get dod i in
        Array.unsafe_set dxd i
          (if Array.unsafe_get xd i >= 0. then g else slope *. g)
      done;
      dx
  | Relu, C_relu x ->
      if Mat.rows x <> n || Mat.cols x <> Mat.cols dout then
        invalid_arg "Layer.backward: dims";
      let dx = if reuse_dout then dout else Mat.create ~rows:n ~cols:(Mat.cols dout) in
      let dxd = Mat.raw dx and dod = Mat.raw dout and xd = Mat.raw x in
      for i = 0 to Array.length dod - 1 do
        Array.unsafe_set dxd i
          (if Array.unsafe_get xd i > 0. then Array.unsafe_get dod i else 0.)
      done;
      dx
  | Tanh, C_tanh y ->
      if Mat.rows y <> n || Mat.cols y <> Mat.cols dout then
        invalid_arg "Layer.backward: dims";
      let dx = if reuse_dout then dout else Mat.create ~rows:n ~cols:(Mat.cols dout) in
      let dxd = Mat.raw dx and dod = Mat.raw dout and yd = Mat.raw y in
      for i = 0 to Array.length dod - 1 do
        let t = Array.unsafe_get yd i in
        Array.unsafe_set dxd i
          (Array.unsafe_get dod i *. (1. -. (t *. t)))
      done;
      dx
  | (Dense _ | Batch_norm _ | Leaky_relu _ | Relu | Tanh), _ ->
      invalid_arg "Layer.backward: cache does not match layer"

(* ------------------------------------------------------------------ *)
(* Per-sample reference passes (the pre-batching implementation) *)

let forward_rows mode layer batch =
  let n = Array.length batch in
  if n = 0 then invalid_arg "Layer.forward_rows: empty batch";
  match layer with
  | Dense d ->
      let out =
        Array.map
          (fun x ->
            let y = Mat.mat_vec d.w x in
            Vec.axpy ~alpha:1. ~x:d.b ~y;
            y)
          batch
      in
      (out, R_dense batch)
  | Batch_norm bn ->
      let dim = Vec.dim bn.gamma in
      let use_batch_stats = mode = Train && n > 1 in
      if use_batch_stats then begin
        let mu = Vec.create dim and var = Vec.create dim in
        Array.iter (fun x -> Vec.axpy ~alpha:(1. /. float_of_int n) ~x ~y:mu)
          batch;
        Array.iter
          (fun x ->
            for i = 0 to dim - 1 do
              let d = x.(i) -. mu.(i) in
              var.(i) <- var.(i) +. (d *. d /. float_of_int n)
            done)
          batch;
        let inv_std = Vec.init dim (fun i -> 1. /. sqrt (var.(i) +. bn.eps)) in
        let xhat =
          Array.map
            (fun x -> Vec.init dim (fun i -> (x.(i) -. mu.(i)) *. inv_std.(i)))
            batch
        in
        let out =
          Array.map
            (fun xh ->
              Vec.init dim (fun i -> (bn.gamma.(i) *. xh.(i)) +. bn.beta.(i)))
            xhat
        in
        bn_update_running bn mu var;
        (out, R_bn { xhat; inv_std; batch_stats = true })
      end
      else begin
        let inv_std =
          Vec.init dim (fun i -> 1. /. sqrt (bn.running_var.(i) +. bn.eps))
        in
        let xhat =
          Array.map
            (fun x ->
              Vec.init dim (fun i ->
                  (x.(i) -. bn.running_mean.(i)) *. inv_std.(i)))
            batch
        in
        let out =
          Array.map
            (fun xh ->
              Vec.init dim (fun i -> (bn.gamma.(i) *. xh.(i)) +. bn.beta.(i)))
            xhat
        in
        (out, R_bn { xhat; inv_std; batch_stats = false })
      end
  | Leaky_relu slope ->
      (Array.map (leaky_fwd slope) batch, R_leaky (slope, batch))
  | Relu -> (Array.map (Array.map (fun v -> Float.max 0. v)) batch, R_relu batch)
  | Tanh ->
      let out = Array.map (Array.map Float.tanh) batch in
      (out, R_tanh out)

let backward_rows layer cache dout =
  match (layer, cache) with
  | Dense d, R_dense xs ->
      let n = Array.length xs in
      if Array.length dout <> n then
        invalid_arg "Layer.backward_rows: batch size";
      for b = 0 to n - 1 do
        Mat.outer_acc d.dw dout.(b) xs.(b);
        Vec.axpy ~alpha:1. ~x:dout.(b) ~y:d.db
      done;
      Array.map (fun dy -> Mat.mat_tvec d.w dy) dout
  | Batch_norm bn, R_bn c ->
      let n = Array.length c.xhat in
      let dim = Vec.dim bn.gamma in
      if Array.length dout <> n then
        invalid_arg "Layer.backward_rows: batch size";
      (* Parameter gradients are identical in both statistic regimes. *)
      for b = 0 to n - 1 do
        for i = 0 to dim - 1 do
          bn.dgamma.(i) <- bn.dgamma.(i) +. (dout.(b).(i) *. c.xhat.(b).(i));
          bn.dbeta.(i) <- bn.dbeta.(i) +. dout.(b).(i)
        done
      done;
      if not c.batch_stats then
        (* Running statistics are constants: the map is affine. *)
        Array.map
          (fun dy ->
            Vec.init dim (fun i -> dy.(i) *. bn.gamma.(i) *. c.inv_std.(i)))
          dout
      else begin
        (* Full batch-norm backward through the batch mean and variance. *)
        let nf = float_of_int n in
        let sum_dxhat = Vec.create dim in
        let sum_dxhat_xhat = Vec.create dim in
        let dxhat =
          Array.map
            (fun dy -> Vec.init dim (fun i -> dy.(i) *. bn.gamma.(i)))
            dout
        in
        for b = 0 to n - 1 do
          for i = 0 to dim - 1 do
            sum_dxhat.(i) <- sum_dxhat.(i) +. dxhat.(b).(i);
            sum_dxhat_xhat.(i) <-
              sum_dxhat_xhat.(i) +. (dxhat.(b).(i) *. c.xhat.(b).(i))
          done
        done;
        Array.mapi
          (fun b _ ->
            Vec.init dim (fun i ->
                c.inv_std.(i) /. nf
                *. ((nf *. dxhat.(b).(i))
                    -. sum_dxhat.(i)
                    -. (c.xhat.(b).(i) *. sum_dxhat_xhat.(i)))))
          dout
      end
  | Leaky_relu slope, R_leaky (slope', xs) ->
      assert (slope = slope');
      Array.mapi
        (fun b dy ->
          Array.mapi (fun i g -> if xs.(b).(i) >= 0. then g else slope *. g) dy)
        dout
  | Relu, R_relu xs ->
      Array.mapi
        (fun b dy ->
          Array.mapi (fun i g -> if xs.(b).(i) > 0. then g else 0.) dy)
        dout
  | Tanh, R_tanh ys ->
      Array.mapi
        (fun b dy ->
          Array.mapi (fun i g -> g *. (1. -. (ys.(b).(i) *. ys.(b).(i)))) dy)
        dout
  | (Dense _ | Batch_norm _ | Leaky_relu _ | Relu | Tanh), _ ->
      invalid_arg "Layer.backward_rows: cache does not match layer"

let zero_grad = function
  | Dense d ->
      Mat.fill d.dw 0.;
      Vec.fill d.db 0.
  | Batch_norm bn ->
      Vec.fill bn.dgamma 0.;
      Vec.fill bn.dbeta 0.
  | Leaky_relu _ | Relu | Tanh -> ()

let params = function
  | Dense d -> [ (Mat.raw d.w, Mat.raw d.dw); (d.b, d.db) ]
  | Batch_norm bn -> [ (bn.gamma, bn.dgamma); (bn.beta, bn.dbeta) ]
  | Leaky_relu _ | Relu | Tanh -> []

let copy = function
  | Dense d ->
      Dense
        { w = Mat.copy d.w; b = Vec.copy d.b; dw = Mat.copy d.dw;
          db = Vec.copy d.db }
  | Batch_norm bn ->
      Batch_norm
        {
          bn with
          gamma = Vec.copy bn.gamma;
          beta = Vec.copy bn.beta;
          dgamma = Vec.copy bn.dgamma;
          dbeta = Vec.copy bn.dbeta;
          running_mean = Vec.copy bn.running_mean;
          running_var = Vec.copy bn.running_var;
        }
  | (Leaky_relu _ | Relu | Tanh) as l -> l

(* A gradient shadow shares the parameter arrays (so an optimizer step
   through the shadow's [params] updates the real network) but owns fresh
   gradient accumulators — the per-shard write targets of the data-parallel
   TD3 update. Batch-norm running statistics stay shared too: shadows are
   only legal for nets whose training forward has no batch statistics
   (no [Batch_norm] layer), which the caller must check via
   [Mlp.has_batch_norm]. *)
let grad_shadow = function
  | Dense d ->
      Dense
        { d with
          dw = Mat.create ~rows:(Mat.rows d.dw) ~cols:(Mat.cols d.dw);
          db = Vec.create (Vec.dim d.db) }
  | Batch_norm bn ->
      Batch_norm
        { bn with
          dgamma = Vec.create (Vec.dim bn.dgamma);
          dbeta = Vec.create (Vec.dim bn.dbeta) }
  | (Leaky_relu _ | Relu | Tanh) as l -> l
