type slot = { mutable m : float array; mutable v : float array }

type kind =
  | Sgd of { momentum : float }
  | Adam of { beta1 : float; beta2 : float; eps : float }

type t = {
  kind : kind;
  mutable lr : float;
  mutable t_step : int;
  slots : (int, slot) Hashtbl.t;
}

let sgd ?(momentum = 0.) ~lr () =
  { kind = Sgd { momentum }; lr; t_step = 0; slots = Hashtbl.create 16 }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  { kind = Adam { beta1; beta2; eps }; lr; t_step = 0; slots = Hashtbl.create 16 }

let slot_for t idx n =
  match Hashtbl.find_opt t.slots idx with
  | Some s ->
      if Array.length s.m <> n then
        invalid_arg "Optimizer.step: parameter shapes changed between calls";
      s
  | None ->
      let s = { m = Array.make n 0.; v = Array.make n 0. } in
      Hashtbl.add t.slots idx s;
      s

let step t params =
  t.t_step <- t.t_step + 1;
  List.iteri
    (fun idx (value, grad) ->
      let n = Array.length value in
      if Array.length grad <> n then invalid_arg "Optimizer.step: grad size";
      match t.kind with
      | Sgd { momentum } ->
          if momentum = 0. then
            for i = 0 to n - 1 do
              value.(i) <- value.(i) -. (t.lr *. grad.(i))
            done
          else begin
            let s = slot_for t idx n in
            for i = 0 to n - 1 do
              s.m.(i) <- (momentum *. s.m.(i)) +. grad.(i);
              value.(i) <- value.(i) -. (t.lr *. s.m.(i))
            done
          end
      | Adam { beta1; beta2; eps } ->
          let s = slot_for t idx n in
          let bc1 = 1. -. (beta1 ** float_of_int t.t_step) in
          let bc2 = 1. -. (beta2 ** float_of_int t.t_step) in
          (* lr·(m/bc1)/(√(v/bc2)+eps) = step·m/(√v+eps′) with the
             bias-correction divisions hoisted out of the loop; same
             value up to rounding, one sqrt and one division per
             element instead of three divisions. Array lengths were
             validated above, so the flat accesses are in bounds. *)
          let sb2 = sqrt bc2 in
          let step_size = t.lr *. sb2 /. bc1 in
          let eps' = eps *. sb2 in
          let one_m_b1 = 1. -. beta1 and one_m_b2 = 1. -. beta2 in
          let sm = s.m and sv = s.v in
          for i = 0 to n - 1 do
            let g = Array.unsafe_get grad i in
            let m =
              (beta1 *. Array.unsafe_get sm i) +. (one_m_b1 *. g)
            in
            let v =
              (beta2 *. Array.unsafe_get sv i) +. (one_m_b2 *. g *. g)
            in
            Array.unsafe_set sm i m;
            Array.unsafe_set sv i v;
            Array.unsafe_set value i
              (Array.unsafe_get value i
              -. (step_size *. m /. (sqrt v +. eps')))
          done)
    params

let set_lr t lr = t.lr <- lr
let lr t = t.lr

type snapshot = { step_count : int; moments : (int * float array * float array) list }

let snapshot t =
  let moments =
    Hashtbl.fold (fun idx s acc -> (idx, Array.copy s.m, Array.copy s.v) :: acc) t.slots []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  { step_count = t.t_step; moments }

let restore t snap =
  t.t_step <- snap.step_count;
  Hashtbl.reset t.slots;
  List.iter
    (fun (idx, m, v) ->
      if Array.length m <> Array.length v then
        invalid_arg "Optimizer.restore: moment arrays disagree in length";
      Hashtbl.add t.slots idx { m = Array.copy m; v = Array.copy v })
    snap.moments

let clip_gradients ~norm params =
  if norm <= 0. then invalid_arg "Optimizer.clip_gradients: norm";
  let total =
    List.fold_left
      (fun acc (_, grad) ->
        let s = ref acc in
        for i = 0 to Array.length grad - 1 do
          let g = Array.unsafe_get grad i in
          s := !s +. (g *. g)
        done;
        !s)
      0. params
  in
  let total = sqrt total in
  if total > norm then begin
    let scale = norm /. total in
    List.iter
      (fun (_, grad) ->
        for i = 0 to Array.length grad - 1 do
          Array.unsafe_set grad i (Array.unsafe_get grad i *. scale)
        done)
      params
  end
