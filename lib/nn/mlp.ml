open Canopy_tensor

type t = {
  in_dim : int;
  out_dim : int;
  layers : Layer.t list;
  mutable generation : int;
      (* Bumped whenever learned parameters or batch-norm running
         statistics change, so derived read-only views (e.g. the
         verifier IR in [Canopy_absint.Anet]) can cache against it. *)
}

let infer_out_dim in_dim layers =
  List.fold_left
    (fun dim layer ->
      (match layer with
      | Layer.Dense d ->
          if Mat.cols d.w <> dim then
            invalid_arg
              (Printf.sprintf "Mlp.create: dense expects %d inputs, got %d"
                 (Mat.cols d.w) dim)
      | Layer.Batch_norm bn ->
          if Vec.dim bn.gamma <> dim then
            invalid_arg "Mlp.create: batch-norm dimension mismatch"
      | Layer.Leaky_relu _ | Layer.Relu | Layer.Tanh -> ());
      Layer.out_dim ~in_dim:dim layer)
    in_dim layers

let create ~in_dim layers =
  if in_dim <= 0 then invalid_arg "Mlp.create: in_dim";
  { in_dim; out_dim = infer_out_dim in_dim layers; layers; generation = 0 }

let actor ~rng ~in_dim ~hidden ~out_dim =
  create ~in_dim
    [
      Layer.dense ~rng ~in_dim ~out_dim:hidden;
      Layer.batch_norm ~dim:hidden ();
      Layer.leaky_relu ();
      Layer.dense ~rng ~in_dim:hidden ~out_dim:hidden;
      Layer.batch_norm ~dim:hidden ();
      Layer.leaky_relu ();
      Layer.dense ~rng ~in_dim:hidden ~out_dim;
      Layer.tanh;
    ]

let critic ~rng ~state_dim ~action_dim ~hidden =
  let in_dim = state_dim + action_dim in
  create ~in_dim
    [
      Layer.dense ~rng ~in_dim ~out_dim:hidden;
      Layer.leaky_relu ();
      Layer.dense ~rng ~in_dim:hidden ~out_dim:hidden;
      Layer.leaky_relu ();
      Layer.dense ~rng ~in_dim:hidden ~out_dim:1;
    ]

let in_dim t = t.in_dim
let out_dim t = t.out_dim
let layers t = t.layers
let generation t = t.generation
let bump_generation t = t.generation <- t.generation + 1

(* Per-domain scratch arena for the rollout hot path: slot [s] holds the
   output buffer of layer [s]. The chain fully overwrites each slot
   before reading it back, so a warm arena returns the same bits as a
   cold one; the final activation is copied out because callers retain
   action vectors well past the next forward (DESIGN §10). *)
let eval_scratch_key : Canopy_util.Scratch.t Domain.DLS.key =
  Domain.DLS.new_key Canopy_util.Scratch.create

let forward t x =
  if Vec.dim x <> t.in_dim then invalid_arg "Mlp.forward: input dim";
  let scratch = Domain.DLS.get eval_scratch_key in
  let _, _, out =
    List.fold_left
      (fun (s, dim, acc) layer ->
        let od = Layer.out_dim ~in_dim:dim layer in
        let dst = Canopy_util.Scratch.get scratch ~slot:s ~len:od in
        Layer.forward1_into ~dst Layer.Eval layer acc;
        (s + 1, od, dst))
      (0, t.in_dim, x) t.layers
  in
  Array.copy out

(* Inside a chain every intermediate activation is owned by the chain
   (each layer's input is the previous layer's freshly-allocated output),
   so element-wise layers may overwrite it in place. Only the caller's
   input matrix — the first layer's input — must stay intact. *)
let forward_batch t x =
  if Mat.cols x <> t.in_dim then invalid_arg "Mlp.forward_batch: input dim";
  let _, out =
    List.fold_left
      (fun (first, acc) layer ->
        (false, Layer.forward_eval ~reuse_input:(not first) layer acc))
      (true, x) t.layers
  in
  out

(* Per-domain scratch arena for the batched serving hot path (the fleet
   decision tick): slots 0/1 ping-pong the [batch × dim] intermediates,
   the last layer writes straight into the caller's destination. Every
   slot is fully overwritten before it is read back, so a warm arena
   returns the same bits as a cold one (DESIGN §10 ownership rules). *)
let batch_scratch_key : Canopy_util.Scratch.t Domain.DLS.key =
  Domain.DLS.new_key Canopy_util.Scratch.create

let forward_eval_into ~dst t x =
  let n = Mat.rows x in
  if Mat.cols x <> t.in_dim then
    invalid_arg "Mlp.forward_eval_into: input dim";
  if Mat.rows dst <> n || Mat.cols dst <> t.out_dim then
    invalid_arg "Mlp.forward_eval_into: output shape";
  let nlayers = List.length t.layers in
  if nlayers = 0 then Array.blit (Mat.raw x) 0 (Mat.raw dst) 0 (n * t.in_dim)
  else begin
    let scratch = Domain.DLS.get batch_scratch_key in
    ignore
      (List.fold_left
         (fun (i, dim, acc) layer ->
           let od = Layer.out_dim ~in_dim:dim layer in
           let out =
             if i = nlayers - 1 then dst
             else Mat.scratch_mat scratch ~slot:(i land 1) ~rows:n ~cols:od
           in
           Layer.forward_eval_into ~dst:out layer acc;
           (i + 1, od, out))
         (0, t.in_dim, x) t.layers
        : int * int * Mat.t)
  end

let forward_eval t x =
  let dst = Mat.create_uninit ~rows:(Mat.rows x) ~cols:t.out_dim in
  forward_eval_into ~dst t x;
  dst

type tape = Layer.cache list (* in layer order *)

(* Unlike {!forward_batch}, the training pass leaves caches behind:
   activation layers cache their own output matrix, so the next layer
   may only overwrite its input when the previous layer does not hold
   on to it (dense caches its input, batch-norm a fresh xhat). The
   first layer's input is the caller's and is never reused. *)
let train_reuse_ok = function
  | Some (Layer.Dense _ | Layer.Batch_norm _) -> true
  | Some (Layer.Leaky_relu _ | Layer.Relu | Layer.Tanh) | None -> false

let forward_train t batch =
  if Mat.cols batch <> t.in_dim then
    invalid_arg "Mlp.forward_train: input dim";
  (* Train mode advances batch-norm running statistics. *)
  bump_generation t;
  let _, out, rev_caches =
    List.fold_left
      (fun (prev, acc, caches) layer ->
        let out, cache =
          Layer.forward ~reuse_input:(train_reuse_ok prev) Layer.Train layer
            acc
        in
        (Some layer, out, cache :: caches))
      (None, batch, []) t.layers
  in
  (out, List.rev rev_caches)

let backward ?(input_grad = true) t tape dout =
  let rev_layers = List.rev t.layers in
  let rev_caches = List.rev tape in
  (* The last step of the walk is the first layer of the net: its input
     gradient is the network's, which fits don't consume. Intermediate
     gradients are owned by the walk — each is consumed exactly once —
     so every step but the first may overwrite its [dout] in place; the
     first gets the caller's matrix, which must stay intact. *)
  let rec go first grad layers caches =
    match (layers, caches) with
    | [], [] -> grad
    | [ layer ], [ cache ] ->
        Layer.backward ~input_grad ~reuse_dout:(not first) layer cache grad
    | layer :: layers, cache :: caches ->
        go false
          (Layer.backward ~reuse_dout:(not first) layer cache grad)
          layers caches
    | _ -> invalid_arg "Mlp.backward: tape length"
  in
  go true dout rev_layers rev_caches

type rows_tape = Layer.rows_cache list (* in layer order *)

let forward_train_rows t batch =
  Array.iter
    (fun x ->
      if Vec.dim x <> t.in_dim then
        invalid_arg "Mlp.forward_train_rows: input dim")
    batch;
  bump_generation t;
  let out, rev_caches =
    List.fold_left
      (fun (acc, caches) layer ->
        let out, cache = Layer.forward_rows Layer.Train layer acc in
        (out, cache :: caches))
      (batch, []) t.layers
  in
  (out, List.rev rev_caches)

let backward_rows t tape dout =
  let rev_layers = List.rev t.layers in
  let rev_caches = List.rev tape in
  List.fold_left2
    (fun grad layer cache -> Layer.backward_rows layer cache grad)
    dout rev_layers rev_caches

let zero_grad t = List.iter Layer.zero_grad t.layers
let params t = List.concat_map Layer.params t.layers

let param_count t =
  List.fold_left (fun acc (v, _) -> acc + Array.length v) 0 (params t)

let copy t = { t with layers = List.map Layer.copy t.layers }

let has_batch_norm t =
  List.exists
    (function Layer.Batch_norm _ -> true | _ -> false)
    t.layers

let grad_shadow t =
  if has_batch_norm t then
    invalid_arg
      "Mlp.grad_shadow: batch-norm nets have batch-coupled training \
       forwards; shards would not reproduce the full-batch pass";
  { t with layers = List.map Layer.grad_shadow t.layers }

(* All mutable state of a layer that a target network must track: the
   learned parameters plus batch-norm running statistics. *)
let state_arrays layer =
  match layer with
  | Layer.Dense d -> [ Mat.raw d.w; d.b ]
  | Layer.Batch_norm bn -> [ bn.gamma; bn.beta; bn.running_mean; bn.running_var ]
  | Layer.Leaky_relu _ | Layer.Relu | Layer.Tanh -> []

(* A blit, not [soft_update ~tau:1.]: the interpolation form computes
   [(1-tau)·d + tau·s], which propagates a NaN already present in [dst]
   — exactly the situation a divergence rollback must recover from. *)
let assign ~src ~dst =
  if List.length src.layers <> List.length dst.layers then
    invalid_arg "Mlp.assign: shape mismatch";
  bump_generation dst;
  List.iter2
    (fun ls ld ->
      let ss = state_arrays ls and ds = state_arrays ld in
      if List.length ss <> List.length ds then
        invalid_arg "Mlp.assign: layer mismatch";
      List.iter2
        (fun s d ->
          if Array.length s <> Array.length d then
            invalid_arg "Mlp.assign: parameter size mismatch";
          Array.blit s 0 d 0 (Array.length s))
        ss ds)
    src.layers dst.layers

let soft_update ~tau ~src ~dst =
  if List.length src.layers <> List.length dst.layers then
    invalid_arg "Mlp.soft_update: shape mismatch";
  bump_generation dst;
  List.iter2
    (fun ls ld ->
      let ss = state_arrays ls and ds = state_arrays ld in
      if List.length ss <> List.length ds then
        invalid_arg "Mlp.soft_update: layer mismatch";
      List.iter2
        (fun s d ->
          if Array.length s <> Array.length d then
            invalid_arg "Mlp.soft_update: parameter size mismatch";
          for i = 0 to Array.length s - 1 do
            d.(i) <- ((1. -. tau) *. d.(i)) +. (tau *. s.(i))
          done)
        ss ds)
    src.layers dst.layers
