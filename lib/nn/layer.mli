(** Neural-network layers with explicit forward/backward passes.

    Implements exactly the pieces the paper's controller needs
    (Section 5): fully-connected layers, batch normalization, LeakyReLU,
    plus ReLU and a tanh output head for the bounded action space
    [a ∈ \[-1,1\]]. Layers are mutable records carrying both parameters and
    their gradient accumulators so that an optimizer can update them in
    place. *)

open Canopy_tensor

type dense = {
  w : Mat.t;  (** [out_dim × in_dim] weight matrix *)
  b : Vec.t;  (** bias, length [out_dim] *)
  dw : Mat.t;  (** gradient accumulator for [w] *)
  db : Vec.t;  (** gradient accumulator for [b] *)
}

type batch_norm = {
  gamma : Vec.t;
  beta : Vec.t;
  dgamma : Vec.t;
  dbeta : Vec.t;
  running_mean : Vec.t;
  running_var : Vec.t;
  momentum : float;  (** update rate for the running statistics *)
  eps : float;
}

type t =
  | Dense of dense
  | Batch_norm of batch_norm
  | Leaky_relu of float  (** negative-side slope *)
  | Relu
  | Tanh

type mode =
  | Train  (** batch statistics for BN, running stats updated *)
  | Eval  (** running statistics for BN (also used by the verifier) *)

type cache
(** Opaque per-layer activation cache produced by {!forward} and consumed
    by {!backward}. *)

type rows_cache
(** Cache of the per-sample reference path ({!forward_rows} /
    {!backward_rows}). *)

val dense : rng:Canopy_util.Prng.t -> in_dim:int -> out_dim:int -> t
(** He-initialized fully-connected layer. *)

val batch_norm : ?momentum:float -> ?eps:float -> dim:int -> unit -> t
(** Batch normalization initialized to the identity transform
    (gamma = 1, beta = 0, running mean 0, running variance 1). *)

val leaky_relu : ?slope:float -> unit -> t
(** Default slope 0.01. *)

val relu : t
val tanh : t

val out_dim : in_dim:int -> t -> int
(** Output dimension of the layer given its input dimension. *)

val forward : ?reuse_input:bool -> mode -> t -> Mat.t -> Mat.t * cache
(** Batched forward pass over a [batch × dim] activation matrix: a dense
    layer is one GEMM ([x·wᵀ] plus a bias broadcast), batch-norm and
    activations are column/element-wise passes. In [Train] mode a
    batch-norm layer with batch size > 1 uses the batch statistics and
    folds them into its running statistics. With [~reuse_input:true]
    (default false) an element-wise layer may write its output into the
    input's storage instead of allocating — only valid when the caller
    no longer needs the input values, as inside an MLP chain where the
    input is the previous layer's freshly-allocated output. *)

val forward_eval : ?reuse_input:bool -> t -> Mat.t -> Mat.t
(** Cache-free [Eval]-mode forward (no running-stat update): like
    {!forward} with [Eval] but skips the per-layer cache — in particular
    the batch-norm xhat matrix only backward consumes; the running
    statistics fold into one per-channel affine map (the same folded
    form the abstract-interpretation transfers use, so results differ
    from {!forward} by rounding only). [reuse_input] as in {!forward}. *)

val forward_eval_into : dst:Mat.t -> t -> Mat.t -> unit
(** Allocation-free [Eval]-mode forward into a caller-owned
    [batch × out_dim] matrix, with every output row bit-identical to
    {!forward1_into} on the corresponding input row (plain GEMM plus a
    bias broadcast, unfolded batch-norm expression) — unlike
    {!forward_eval}, which uses the bias-seeded GEMM and the folded
    batch-norm map and so differs by rounding. [dst] must not alias the
    input. This is the per-layer kernel of the fleet's batched decision
    tick. *)

val forward1 : mode -> t -> Vec.t -> Vec.t
(** Single-sample forward without a cache (no running-stat update even in
    [Train] mode); convenient for action selection. *)

val forward1_into : dst:Vec.t -> mode -> t -> Vec.t -> unit
(** {!forward1} into a caller-owned buffer of length
    [out_dim ~in_dim layer], bit-identical to it; [dst] must not alias
    the input. Lets [Mlp.forward] run the rollout hot path over a
    per-domain scratch arena instead of allocating per layer. *)

val backward : ?input_grad:bool -> ?reuse_dout:bool -> t -> cache -> Mat.t -> Mat.t
(** [backward layer cache dout] accumulates parameter gradients into the
    layer and returns the gradient with respect to the layer input, both
    as [batch × dim] matrices. Must be called with the cache of the
    matching {!forward} invocation. With [~input_grad:false] a dense
    layer skips the input-gradient GEMM and returns an unspecified
    matrix — only valid when the caller discards the result. With
    [~reuse_dout:true] (default false) an element-wise layer may write
    the returned gradient into [dout]'s storage — only valid when the
    caller is done with [dout], as inside an MLP backward walk where
    each intermediate gradient is consumed exactly once. *)

val forward_rows : mode -> t -> Vec.t array -> Vec.t array * rows_cache
(** Per-sample reference forward (the pre-batching implementation, one
    [mat_vec] per sample). Semantically identical to {!forward} — kept as
    an independent implementation for equivalence tests and benchmarks. *)

val backward_rows : t -> rows_cache -> Vec.t array -> Vec.t array
(** Per-sample reference backward; see {!forward_rows}. *)

val zero_grad : t -> unit
val params : t -> (float array * float array) list
(** [(value, gradient)] pairs viewed as flat arrays, in a stable order. *)

val copy : t -> t
(** Deep copy (used to instantiate target networks). *)

val grad_shadow : t -> t
(** A view sharing the layer's parameter (and batch-norm running-stat)
    arrays but carrying fresh zeroed gradient accumulators. Forward and
    backward passes through the shadow read the live parameters and
    accumulate into the shadow's own [dw]/[db] — the per-shard write
    targets of a data-parallel gradient computation. Only meaningful for
    nets without batch statistics; see [Mlp.grad_shadow]. *)
