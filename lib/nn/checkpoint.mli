(** Plain-text checkpointing of networks.

    A checkpoint stores the full layer stack — weights, biases, batch-norm
    parameters and running statistics — so a restored network certifies and
    acts identically to the saved one. The format is a line-oriented text
    file, dependency-free and stable across sessions. *)

val magic : string
(** First line of every checkpoint, ["canopy-mlp v1"]. Exposed so
    containers embedding checkpoint payloads (the [canopy-train v2]
    training snapshot) can sniff the format. *)

val save : Mlp.t -> string -> unit
(** [save net path] writes [net] to [path] atomically
    (via {!Canopy_util.Atomic_file.write}), overwriting any existing
    file. *)

val load : string -> Mlp.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val to_string : Mlp.t -> string

val of_string : string -> Mlp.t
(** Strict parser: raises [Failure] on malformed headers, non-numeric
    fields, missing lines, and trailing garbage after the declared layer
    count. *)
