open Canopy_tensor

let magic = "canopy-mlp v1"

let write_vec buf v =
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%h" x))
    v;
  Buffer.add_char buf '\n'

let to_string net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "in_dim %d\n" (Mlp.in_dim net));
  let layers = Mlp.layers net in
  Buffer.add_string buf (Printf.sprintf "layers %d\n" (List.length layers));
  List.iter
    (fun layer ->
      match layer with
      | Layer.Dense d ->
          Buffer.add_string buf
            (Printf.sprintf "dense %d %d\n" (Mat.rows d.w) (Mat.cols d.w));
          write_vec buf (Mat.raw d.w);
          write_vec buf d.b
      | Layer.Batch_norm bn ->
          Buffer.add_string buf
            (Printf.sprintf "batch_norm %d %h %h\n" (Vec.dim bn.gamma)
               bn.momentum bn.eps);
          write_vec buf bn.gamma;
          write_vec buf bn.beta;
          write_vec buf bn.running_mean;
          write_vec buf bn.running_var
      | Layer.Leaky_relu slope ->
          Buffer.add_string buf (Printf.sprintf "leaky_relu %h\n" slope)
      | Layer.Relu -> Buffer.add_string buf "relu\n"
      | Layer.Tanh -> Buffer.add_string buf "tanh\n")
    layers;
  Buffer.contents buf

let parse_float s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> failwith (Printf.sprintf "Checkpoint: malformed float %S" s)

let parse_int s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> failwith (Printf.sprintf "Checkpoint: malformed integer %S" s)

let parse_floats line expected =
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  if List.length parts <> expected then
    failwith
      (Printf.sprintf "Checkpoint: expected %d floats, found %d" expected
         (List.length parts));
  Array.of_list (List.map parse_float parts)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let lines = ref lines in
  let next () =
    match !lines with
    | [] -> failwith "Checkpoint: unexpected end of file"
    | l :: rest ->
        lines := rest;
        l
  in
  if String.trim (next ()) <> magic then failwith "Checkpoint: bad magic";
  let in_dim =
    match String.split_on_char ' ' (String.trim (next ())) with
    | [ "in_dim"; n ] -> parse_int n
    | _ -> failwith "Checkpoint: expected in_dim"
  in
  let count =
    match String.split_on_char ' ' (String.trim (next ())) with
    | [ "layers"; n ] -> parse_int n
    | _ -> failwith "Checkpoint: expected layers"
  in
  let read_layer () =
    let header =
      String.split_on_char ' ' (String.trim (next ()))
      |> List.filter (fun x -> x <> "")
    in
    match header with
    | [ "dense"; rows; cols ] ->
        let rows = parse_int rows and cols = parse_int cols in
        (* Sequence the reads explicitly: evaluation order inside record
           and tuple literals is unspecified. *)
        let wdata = parse_floats (next ()) (rows * cols) in
        let b = parse_floats (next ()) rows in
        let w = Mat.init ~rows ~cols (fun i j -> wdata.((i * cols) + j)) in
        Layer.Dense
          { w; b; dw = Mat.create ~rows ~cols; db = Vec.create rows }
    | [ "batch_norm"; dim; momentum; eps ] ->
        let dim = parse_int dim in
        let gamma = parse_floats (next ()) dim in
        let beta = parse_floats (next ()) dim in
        let running_mean = parse_floats (next ()) dim in
        let running_var = parse_floats (next ()) dim in
        Layer.Batch_norm
          {
            gamma;
            beta;
            running_mean;
            running_var;
            dgamma = Vec.create dim;
            dbeta = Vec.create dim;
            momentum = parse_float momentum;
            eps = parse_float eps;
          }
    | [ "leaky_relu"; slope ] -> Layer.Leaky_relu (parse_float slope)
    | [ "relu" ] -> Layer.Relu
    | [ "tanh" ] -> Layer.Tanh
    | _ -> failwith "Checkpoint: unknown layer header"
  in
  (* Read sequentially; List.init gives no order guarantee for the
     side-effecting reader. *)
  let layers = ref [] in
  for _ = 1 to count do
    layers := read_layer () :: !layers
  done;
  (* A concatenated, overwritten or mis-counted file must fail loudly:
     after the declared layer count only whitespace may remain. *)
  List.iter
    (fun l ->
      if String.trim l <> "" then
        failwith
          (Printf.sprintf
             "Checkpoint: trailing garbage after declared layer count: %S"
             (String.trim l)))
    !lines;
  Mlp.create ~in_dim (List.rev !layers)

let save net path = Canopy_util.Atomic_file.write path (to_string net)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)
