(** Deterministic domain pool: the single parallel-execution layer.

    A pool owns a fixed set of worker domains, spawned once and reused for
    every parallel region until {!shutdown}. All parallelism in the tree
    funnels through this module (the [raw-domain-spawn] lint rule rejects
    bare [Domain.spawn] elsewhere), and every entry point obeys one
    invariant:

    {b chunk boundaries are a pure function of the input size} — never of
    the domain count, the scheduler, or timing. Workers race only for
    {i which} chunk they execute next; the set of chunks, the work inside
    each chunk, and the slots each chunk writes are fixed up front. A path
    whose chunks write disjoint outputs with the same per-chunk operation
    order as its sequential reference is therefore bit-identical to that
    reference at any domain count, including 1 (see DESIGN §10).

    Pools are not reentrant: parallel entry points raise
    [Invalid_argument] when called from inside a pool task. Library code
    that may run on either side uses {!in_task} to fall back to its
    sequential kernel instead. *)

type t
(** A pool handle. Usable from the domain that created it. *)

val create : ?domains:int -> unit -> t
(** [create ()] spawns a pool of [domains - 1] worker domains; the caller
    participates in every parallel region, so [domains] is the total
    parallelism. Sizing, first match wins: the [?domains] argument, the
    [CANOPY_DOMAINS] environment variable, then
    [Domain.recommended_domain_count ()]. Values are clamped to at least
    1; [domains = 1] spawns no workers and runs every region inline (the
    degenerate pool is still valid and bit-identical). *)

val domains : t -> int
(** Total parallelism of the pool: worker domains + the calling domain. *)

val add_init_hook : (t -> unit) -> unit
(** Register [f] to run on every subsequently created pool, right after
    its workers are spawned (on the creating domain, outside any task;
    [f] may submit jobs to the pool it is handed). This is the inverted
    dependency channel for one-time machine sampling — notably the GEMM
    grain calibration in [Canopy_tensor.Mat], which must run against a
    live pool but cannot be called from here. Hooks should be idempotent
    or self-disarming: they run once per [create], not once ever. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Further parallel calls on the
    pool raise [Invalid_argument]. *)

val default : unit -> t
(** The ambient pool, created on first use with [create ()] (so
    [CANOPY_DOMAINS] sizes it) and torn down [at_exit]. Library code
    (GEMM kernels, the certificate engine, evaluation sweeps) uses this
    pool when no explicit one is given. *)

val set_default : t -> unit
(** Replace the ambient pool (the previous default, if any, keeps running
    until {!shutdown} — benchmarks swap sized pools in and out around
    measurements). *)

val in_task : unit -> bool
(** True while the current domain is executing a pool task (including the
    caller's own participation and the inline degenerate path). Kernels
    with a parallel fast path must check this and take their sequential
    reference instead of re-entering the pool. *)

val parallel_for_chunks :
  ?pool:t -> chunk:int -> int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for_chunks ~chunk n f] covers [0 .. n-1] with the fixed
    chunks [\[0,chunk)], [\[chunk,2·chunk)], …, [\[·,n)] and calls
    [f ~lo ~hi] exactly once per chunk, each chunk on exactly one domain.
    The chunk list depends only on [n] and [chunk]. [f] must write only
    state owned by its chunk. Exceptions raised by chunks are re-raised
    in the caller — deterministically the one from the lowest-numbered
    chunk — and the pool remains usable. Raises [Invalid_argument] if
    [chunk <= 0], [n < 0], or when called from inside a pool task. *)

val map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], one task per element (elements are assumed
    coarse: links to evaluate, environments to build). Results are placed
    in input order; [f] runs exactly once per element. Same exception and
    reentrancy contract as {!parallel_for_chunks}. *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_reduce :
  ?pool:t ->
  chunk:int ->
  int ->
  map:(lo:int -> hi:int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  'b ->
  'b
(** [map_reduce ~chunk n ~map ~combine init] runs [map] per chunk (same
    chunking as {!parallel_for_chunks}) and folds the chunk results with
    [combine] in ascending chunk order — the fold order is part of the
    determinism contract, so a non-commutative [combine] is safe. *)
