(** Deterministic, splittable pseudo-random number generation.

    All stochastic components in the repository (exploration noise, trace
    generators, weight initialization, workload sampling) draw from values of
    type {!t} so that every experiment is reproducible from a single seed and
    independent components never share a stream. The generator is
    splitmix64, which is small, fast and statistically adequate for
    simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators created from the same seed produce identical streams. *)

val split : t -> int -> t
(** [split t idx] derives an independent child generator from [t] and a
    non-negative task index, advancing [t] by exactly one draw. Children
    of the same parent state with distinct indices, and children of
    distinct parent states with any indices, get decorrelated streams —
    this is how parallel regions hand each task its own reproducible
    stream (child [i] is a pure function of the parent state and [i],
    never of scheduling). Raises [Invalid_argument] on a negative index. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays [t]'s future. *)

val state : t -> int64
(** Raw splitmix64 state word, for checkpointing. [of_state (state t)]
    replays exactly the stream [t] would produce. *)

val of_state : int64 -> t
(** Rebuild a generator from a captured {!state} word verbatim (no
    mixing — this is the inverse of {!state}, not a seeding function). *)

val set_state : t -> int64 -> unit
(** Overwrite the state word in place, e.g. when restoring a snapshot
    into a live generator shared by reference. *)

val reseed : t -> salt:int -> unit
(** Deterministic decorrelated jump: move [t] to a fresh stream that is a
    pure function of its current state and [salt]. Distinct salts give
    distinct streams. Used after a divergence rollback so the retried
    segment draws different exploration noise. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val gaussian_scaled : t -> mu:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. Requires [rate > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
