(** Per-domain scratch arenas: reusable float-array workspaces.

    An arena is a table of numbered slots; {!get} returns a cached array
    of the exact requested length for a slot, allocating only on the
    first request per (slot, length). Arenas are meant to be owned by a
    [Domain.DLS] key — one arena per domain — so parallel kernels stop
    allocating workspace per chunk (DESIGN §10 has the ownership rules:
    only the domain that fetched an arena from its DLS key may write
    through it; an array obtained from another domain's arena may be
    shared read-only across a pool region's mutex hand-off).

    Reused arrays come back {e uninitialized} (whatever the previous use
    left behind): callers must overwrite every cell they later read.
    That discipline is what keeps results bit-identical whether the
    arena is warm or cold. *)

type t

val create : unit -> t
(** Empty arena. Typical use:
    [let key = Domain.DLS.new_key Scratch.create]. *)

val get : t -> slot:int -> len:int -> float array
(** [get t ~slot ~len] returns a float array of exactly [len] cells,
    reusing the array previously returned for this (slot, length) pair
    when there is one. Contents are unspecified. Distinct slots never
    share storage, so two buffers needed at once must use two slots.
    Raises [Invalid_argument] if [slot < 0] or [len <= 0]. *)
