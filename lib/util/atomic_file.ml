(* Durable file writes: stage the contents in a temporary file created in
   the destination directory, flush it, then rename over the target.
   Readers therefore observe either the old file or the complete new one —
   never a torn intermediate — because rename(2) is atomic within a
   filesystem (the temp file must live next to the target, not in TMPDIR,
   which may be a different mount). *)

(* Distinct staging names across processes and retries: a per-process
   counter plus an Open_excl create, retried under a fresh suffix on
   collision. *)
let stamp = ref 0

let rec create_staging ~perm path attempt =
  if attempt > 1000 then
    raise
      (Sys_error
         (Printf.sprintf "Atomic_file.write: cannot create staging file for %s"
            path));
  incr stamp;
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp"
      (Filename.concat (Filename.dirname path)
         ("." ^ Filename.basename path))
      !stamp attempt
  in
  match open_out_gen [ Open_wronly; Open_creat; Open_excl; Open_binary ] perm tmp with
  | oc -> (tmp, oc)
  | exception Sys_error _ when Sys.file_exists tmp ->
      create_staging ~perm path (attempt + 1)

let write ?(perm = 0o644) path contents =
  let tmp, oc = create_staging ~perm path 0 in
  match
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc contents;
        flush oc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (* Best-effort cleanup of the staging file; the original target is
         untouched by construction. *)
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let rec mkdir_p ?(perm = 0o755) dir =
  if dir = "" || dir = Filename.current_dir_name then ()
  else if not (Sys.file_exists dir) then begin
    mkdir_p ~perm (Filename.dirname dir);
    (* A concurrent creator may win the race between the existence check
       and the mkdir: EEXIST is success, not failure. *)
    try Sys.mkdir dir perm with
    | Sys_error msg
      when Sys.file_exists dir && Sys.is_directory dir ->
        ignore msg
  end
  else if not (Sys.is_directory dir) then
    invalid_arg
      (Printf.sprintf "Atomic_file.mkdir_p: %s exists and is not a directory"
         dir)
