(** Streaming and batch statistics used by the evaluation harness.

    The evaluation section of the paper reports averages, standard
    deviations and tail percentiles (p95 delay); this module provides those
    over both streaming accumulators (Welford) and collected samples. *)

module Welford : sig
  type t
  (** Streaming mean/variance accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean of the observations; [0.] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float

  val merge : t -> t -> t
  (** Combine two accumulators as if their streams were concatenated. *)
end

val mean : float array -> float
(** Arithmetic mean; [0.] for the empty array. *)

val stddev : float array -> float
(** Sample standard deviation; [0.] with fewer than two samples. *)

val jain_index : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over per-flow allocations:
    [1.] when every flow gets an equal share, [1/n] when a single flow
    hogs the whole resource. Degenerate inputs (empty array, or all
    allocations zero) report [1.] — an empty bottleneck is trivially
    fair. Uses typed float folds only. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]] using linear interpolation
    between closest ranks. The input array is not modified. Raises
    [Invalid_argument] on an empty array. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}
(** Batch summary of a sample. *)

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
