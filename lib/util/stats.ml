module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
            /. float_of_int n)
      in
      { n; mean; m2 }
    end
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (acc /. float_of_int (n - 1))
  end

(* Typed float folds throughout — no polymorphic compare, and the
   ascending accumulation order is part of the contract: callers that
   migrated their own fold here (e.g. [Canopy_netsim.Multiflow]) rely on
   producing bit-identical indices. *)
let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let sum = Array.fold_left ( +. ) 0. xs in
    let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if sumsq <= 0. then 1. else sum *. sum /. (float_of_int n *. sumsq)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if not (p >= 0. && p <= 100.) then invalid_arg "Stats.percentile: p";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    p50 = percentile xs 50.;
    p95 = percentile xs 95.;
    p99 = percentile xs 99.;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
