(** CRC-32 checksums (IEEE 802.3, polynomial 0xEDB88320).

    Guards every section of the crash-safe training checkpoints: a file
    torn by a crash mid-write, truncated by a full disk, or bit-flipped
    in transit fails verification at load time with a precise diagnostic
    instead of being deserialized into a corrupt network. *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> int32
(** [update crc s] extends a running checksum, so
    [update (string a) b = string (a ^ b)]. [update 0l] is {!string}. *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex rendering (8 characters). *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless given exactly 8 hex digits. *)
