type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* Index-derived child streams: one parent draw keys a whole family of
   children, so deriving the stream for task [i] of a parallel region
   costs the parent exactly one advance regardless of how many siblings
   exist — the derivation order cannot depend on scheduling. Odd
   multiples of [golden] keep the per-index offsets distinct and coprime
   with 2^64; the outer [mix] decorrelates neighbouring indices. *)
let split t idx =
  if idx < 0 then invalid_arg "Prng.split: negative index";
  let key = bits64 t in
  { state = mix (Int64.add key (Int64.mul golden (Int64.of_int ((2 * idx) + 1)))) }

let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }
let set_state t s = t.state <- s

(* Deterministic decorrelated jump: each salt lands the generator on a
   distinct, well-mixed stream. Used by the divergence watchdog so a
   rolled-back run explores differently instead of replaying the exact
   trajectory that produced the fault. Odd multiples of [golden] keep the
   increment coprime with 2^64. *)
let reseed t ~salt =
  t.state <-
    mix (Int64.add t.state (Int64.mul golden (Int64.of_int ((2 * salt) + 1))))

(* Uniform float in [0,1) from the top 53 bits. *)
let unit_float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1p-53

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine for simulation purposes when bound is
     far below 2^62; keep it simple. The double shift keeps the value
     inside OCaml's 63-bit int range, hence non-negative. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod bound

let float t bound = unit_float t *. bound

let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Box–Muller; guard against log 0. *)
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let gaussian_scaled t ~mu ~sigma = mu +. (sigma *. gaussian t)

let exponential t ~rate =
  assert (rate > 0.);
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
