(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Checkpoint
   sections are checksummed with this so a torn or bit-flipped file is
   detected at load time instead of silently corrupting a training run. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let crc = ref (Int32.lognot crc) in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl)
      in
      crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.lognot !crc

let string s = update 0l s
let to_hex crc = Printf.sprintf "%08lx" crc

let is_hex_digit = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let of_hex s =
  if String.length s <> 8 || not (String.for_all is_hex_digit s) then None
  else Int32.of_string_opt ("0x" ^ s)
