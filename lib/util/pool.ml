(* Persistent domain pool with deterministic chunking. See the .mli and
   DESIGN §10 for the contract; the short version is that the chunk list
   of a parallel region is a pure function of the input size, workers race
   only for which chunk they run next, and each chunk writes state nobody
   else touches — so results cannot depend on the domain count.

   Synchronization is one mutex + two condition variables per pool.
   Workers park on [work_ready]; posting a job bumps [gen] and broadcasts.
   Chunks are claimed lock-free via [Atomic.fetch_and_add] on [job.next];
   per-chunk completion is tallied under the mutex and the last domain to
   finish broadcasts [work_done]. Those release/acquire pairs are also
   what publishes chunk writes to the caller under the OCaml memory
   model: every chunk's stores happen before its domain's completion
   tally, which happens before the caller's wake-up on the same mutex. *)

type job = {
  chunks : int;
  run : int -> unit;
  next : int Atomic.t; (* next unclaimed chunk index *)
  mutable completed : int; (* chunks finished; guarded by the pool mutex *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-chunk-index failure; guarded by the pool mutex *)
}

type t = {
  mutable workers : unit Domain.t array;
  size : int; (* workers + caller *)
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable gen : int; (* job generation, so a worker never re-runs a job *)
  mutable stop : bool;
  mutable busy : bool; (* a parallel region is in flight *)
  mutable alive : bool;
}

(* Per-domain "currently inside a pool task" flag. Kernels consult it via
   [in_task] to fall back to their sequential path instead of deadlocking
   on or re-entering the pool. *)
let in_task_key = Domain.DLS.new_key (fun () -> ref false)
let in_task () = !(Domain.DLS.get in_task_key)

let record_error pool job idx exn bt =
  Mutex.lock pool.m;
  (match job.error with
  | Some (i0, _, _) when i0 <= idx -> ()
  | _ -> job.error <- Some (idx, exn, bt));
  Mutex.unlock pool.m

(* Claim and run chunks until the job is exhausted; returns how many this
   domain ran. Exceptions are captured per chunk (preferring the lowest
   chunk index) so one failure neither kills a worker nor starves the
   caller of the remaining completion tallies. *)
let drain pool job =
  let flag = Domain.DLS.get in_task_key in
  flag := true;
  let ran = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.chunks then continue_ := false
    else begin
      incr ran;
      try job.run i
      with exn -> record_error pool job i exn (Printexc.get_raw_backtrace ())
    end
  done;
  flag := false;
  !ran

let worker_loop pool =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    let rec await () =
      if pool.stop then None
      else
        match pool.job with
        | Some j when pool.gen <> !last_gen ->
            last_gen := pool.gen;
            Some j
        | _ ->
            Condition.wait pool.work_ready pool.m;
            await ()
    in
    let task = await () in
    Mutex.unlock pool.m;
    match task with
    | None -> running := false
    | Some j ->
        let ran = drain pool j in
        Mutex.lock pool.m;
        j.completed <- j.completed + ran;
        if j.completed >= j.chunks then Condition.broadcast pool.work_done;
        Mutex.unlock pool.m
  done

let run_job pool job =
  Mutex.lock pool.m;
  if not pool.alive then begin
    Mutex.unlock pool.m;
    invalid_arg "Pool: pool has been shut down"
  end;
  if pool.busy then begin
    (* A single domain owns the caller side, so [busy] here means a task
       re-entered the pool (or two domains share one handle — same bug). *)
    Mutex.unlock pool.m;
    invalid_arg "Pool: nested or concurrent parallel call"
  end;
  pool.busy <- true;
  pool.gen <- pool.gen + 1;
  pool.job <- Some job;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.m;
  let ran = drain pool job in
  Mutex.lock pool.m;
  job.completed <- job.completed + ran;
  while job.completed < job.chunks do
    Condition.wait pool.work_done pool.m
  done;
  pool.job <- None;
  pool.busy <- false;
  let err = job.error in
  Mutex.unlock pool.m;
  match err with
  | None -> ()
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt

let resolve_domains = function
  | Some d -> max 1 d
  | None -> (
      match Sys.getenv_opt "CANOPY_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some d when d >= 1 -> d
          | _ ->
              invalid_arg
                (Printf.sprintf
                   "Pool: CANOPY_DOMAINS must be a positive integer, got %S" s))
      | None -> max 1 (Domain.recommended_domain_count ()))

(* Pool-creation hooks. [Canopy_tensor.Mat] registers its one-shot grain
   calibration here at module-init time: Pool cannot call Mat directly
   (the dependency points the other way), but calibration must sample
   the machine with a live pool — so [create] runs every registered hook
   once the workers are up. Hooks run on the creating domain, outside
   any task, and may submit jobs to the pool they are handed. *)
let init_hooks : (t -> unit) list ref = ref []
let init_hooks_m = Mutex.create ()

let add_init_hook f =
  Mutex.lock init_hooks_m;
  init_hooks := f :: !init_hooks;
  Mutex.unlock init_hooks_m

let create ?domains () =
  let size = resolve_domains domains in
  let pool =
    {
      workers = [||];
      size;
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      gen = 0;
      stop = false;
      busy = false;
      alive = true;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  let hooks =
    Mutex.lock init_hooks_m;
    let h = !init_hooks in
    Mutex.unlock init_hooks_m;
    h
  in
  List.iter (fun f -> f pool) hooks;
  pool

let domains pool = pool.size

let shutdown pool =
  Mutex.lock pool.m;
  if pool.alive then begin
    pool.alive <- false;
    pool.stop <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.m;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end
  else Mutex.unlock pool.m

(* Ambient pool: created lazily so processes that never hit a parallel
   threshold spawn no domains, torn down at exit so worker domains do not
   outlive the program. *)
let default_pool = ref None
let default_m = Mutex.create ()

let () =
  at_exit (fun () ->
      match !default_pool with Some p -> shutdown p | None -> ())

let default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_m;
  p

let set_default p =
  Mutex.lock default_m;
  default_pool := Some p;
  Mutex.unlock default_m

let nchunks ~chunk n = (n + chunk - 1) / chunk

let parallel_for_chunks ?pool ~chunk n f =
  if chunk <= 0 then invalid_arg "Pool.parallel_for_chunks: chunk";
  if n < 0 then invalid_arg "Pool.parallel_for_chunks: n";
  if in_task () then
    invalid_arg "Pool.parallel_for_chunks: nested parallel call";
  if n > 0 then begin
    let chunks = nchunks ~chunk n in
    let run i =
      let lo = i * chunk in
      f ~lo ~hi:(min n (lo + chunk))
    in
    let pool = match pool with Some p -> p | None -> default () in
    if not pool.alive then invalid_arg "Pool: pool has been shut down";
    if pool.size = 1 || chunks = 1 then begin
      (* Degenerate path: same chunk decomposition, ascending order, on
         the calling domain. Bit-identical by construction. *)
      let flag = Domain.DLS.get in_task_key in
      flag := true;
      Fun.protect
        ~finally:(fun () -> flag := false)
        (fun () ->
          for i = 0 to chunks - 1 do
            run i
          done)
    end
    else run_job pool { chunks; run; next = Atomic.make 0; completed = 0; error = None }
  end

let map ?pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for_chunks ?pool ~chunk:1 n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list ?pool f l = Array.to_list (map ?pool f (Array.of_list l))

let map_reduce ?pool ~chunk n ~map:mapf ~combine init =
  if chunk <= 0 then invalid_arg "Pool.map_reduce: chunk";
  if n = 0 then init
  else begin
    let parts = Array.make (nchunks ~chunk n) None in
    parallel_for_chunks ?pool ~chunk n (fun ~lo ~hi ->
        parts.(lo / chunk) <- Some (mapf ~lo ~hi));
    Array.fold_left
      (fun acc part ->
        match part with Some v -> combine acc v | None -> assert false)
      init parts
  end
