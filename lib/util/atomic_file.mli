(** Crash-safe persistence primitives.

    Every file the system writes and later trusts (actor checkpoints,
    training snapshots, curves, baselines, traces) must go through
    {!write}: a bare [open_out] replaces the target in place, so a crash
    mid-write leaves a truncated file that a later load happily parses.
    The [non-atomic-write] lint rule keeps new persistence sites on this
    path. *)

val write : ?perm:int -> string -> string -> unit
(** [write path contents] stages [contents] in a fresh temporary file in
    [Filename.dirname path], flushes it, and renames it over [path].
    Readers see the old contents or the new contents, never a prefix.
    [perm] (default [0o644]) applies to newly created files. Raises
    [Sys_error] on I/O failure; the original [path] is left intact and
    the staging file is removed best-effort. *)

val mkdir_p : ?perm:int -> string -> unit
(** Recursive [mkdir -p]: creates missing ancestors, tolerates
    directories that already exist (including ones that appear
    concurrently between check and create — EEXIST is success). Raises
    [Invalid_argument] if a non-directory occupies the path. *)
