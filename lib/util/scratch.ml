(* Per-domain scratch arenas. A [Scratch.t] is a small table of numbered
   slots, each caching the float arrays previously handed out for that
   slot, keyed by exact length. The intended owner is a [Domain.DLS] key
   (one arena per domain), so kernels running inside pool tasks reuse
   workspace buffers across chunks instead of allocating per chunk and
   fighting the GC — see DESIGN §10 for the ownership rules.

   Arrays are returned uninitialized on reuse: a caller must overwrite
   every cell it reads, which is also what makes results independent of
   whether the arena is warm or cold (the bit-equality tests exercise
   both states). Lengths are exact, never rounded up, so kernels that
   iterate [Array.length] see the shape they asked for. *)

type slot = { mutable entries : float array list }

type t = { mutable slots : slot array }

let create () = { slots = [||] }

(* A slot alternates between at most a couple of shapes in practice (the
   full-size chunk and the short tail chunk of a parallel region), so the
   per-slot cache is a short most-recently-used list. *)
let max_entries_per_slot = 8

let ensure_slot t slot =
  if slot >= Array.length t.slots then begin
    let grown =
      Array.init (max (slot + 1) ((2 * Array.length t.slots) + 1)) (fun i ->
          if i < Array.length t.slots then t.slots.(i)
          else { entries = [] })
    in
    t.slots <- grown
  end

let get t ~slot ~len =
  if slot < 0 then invalid_arg "Scratch.get: slot";
  if len <= 0 then invalid_arg "Scratch.get: len";
  ensure_slot t slot;
  let s = t.slots.(slot) in
  let rec find acc = function
    | [] ->
        let arr = Array.create_float len in
        let kept =
          if List.length s.entries >= max_entries_per_slot then
            List.filteri (fun i _ -> i < max_entries_per_slot - 1) s.entries
          else s.entries
        in
        s.entries <- arr :: kept;
        arr
    | a :: rest when Array.length a = len ->
        (* Move-to-front keeps the common shapes O(1) to find. *)
        s.entries <- a :: List.rev_append acc rest;
        a
    | a :: rest -> find (a :: acc) rest
  in
  find [] s.entries
