let synthetic ?duration_ms () = Synthetic.standard_suite ?duration_ms ()
let lte ?duration_ms () = Lte.standard_suite ?duration_ms ()
let all ?duration_ms () = synthetic ?duration_ms () @ lte ?duration_ms ()

(* Archived adversarial scenarios (worst cases found by the scenario
   search engine) rendered as plain Mahimahi traces next to their .scn
   records; sorted by file name so the list order is deterministic. *)
let adversarial ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort String.compare
    |> List.map (fun f ->
           Trace.load
             ~name:(Filename.chop_suffix f ".trace")
             ~mtu_bytes:1500 (Filename.concat dir f))

type category = Synthetic | Real | Adversarial

let category_of t =
  let n = Trace.name t in
  let has_prefix p =
    String.length n >= String.length p && String.sub n 0 (String.length p) = p
  in
  if has_prefix "lte-" then Real
  else if has_prefix "adv-" then Adversarial
  else Synthetic

let pp_category ppf = function
  | Synthetic -> Format.fprintf ppf "synthetic"
  | Real -> Format.fprintf ppf "real"
  | Adversarial -> Format.fprintf ppf "adversarial"
