type t = {
  name : string;
  (* Segment boundaries: start_ms.(i) is the first millisecond of segment
     i; mbps.(i) its capacity. start_ms is strictly increasing and starts
     at 0. *)
  start_ms : int array;
  mbps : float array;
  duration_ms : int;
}

let of_segments ~name segments =
  if segments = [] then invalid_arg "Trace.of_segments: empty";
  List.iter
    (fun (dur, rate) ->
      if dur <= 0 then invalid_arg "Trace.of_segments: duration";
      if rate < 0. || Float.is_nan rate then
        invalid_arg "Trace.of_segments: rate")
    segments;
  let n = List.length segments in
  let start_ms = Array.make n 0 and mbps = Array.make n 0. in
  let total =
    List.fold_left
      (fun (i, acc) (dur, rate) ->
        start_ms.(i) <- acc;
        mbps.(i) <- rate;
        (i + 1, acc + dur))
      (0, 0) segments
    |> snd
  in
  { name; start_ms; mbps; duration_ms = total }

let constant ~name ~duration_ms ~mbps =
  of_segments ~name [ (duration_ms, mbps) ]

let of_mbps_array ~name ~ms_per_sample samples =
  if ms_per_sample <= 0 then invalid_arg "Trace.of_mbps_array: ms_per_sample";
  of_segments ~name
    (Array.to_list (Array.map (fun r -> (ms_per_sample, r)) samples))

let name t = t.name
let duration_ms t = t.duration_ms

let segment_index t ms =
  (* Binary search for the last segment starting at or before ms. *)
  let lo = ref 0 and hi = ref (Array.length t.start_ms - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.start_ms.(mid) <= ms then lo := mid else hi := mid - 1
  done;
  !lo

let mbps_at t ms =
  if ms < 0 then invalid_arg "Trace.mbps_at: negative time";
  let ms = ms mod t.duration_ms in
  t.mbps.(segment_index t ms)

let avg_mbps t =
  let acc = ref 0. in
  let n = Array.length t.start_ms in
  for i = 0 to n - 1 do
    let finish = if i = n - 1 then t.duration_ms else t.start_ms.(i + 1) in
    acc := !acc +. (t.mbps.(i) *. float_of_int (finish - t.start_ms.(i)))
  done;
  !acc /. float_of_int t.duration_ms

let min_mbps t = Array.fold_left Float.min t.mbps.(0) t.mbps
let max_mbps t = Array.fold_left Float.max t.mbps.(0) t.mbps

let scale alpha t =
  if alpha < 0. then invalid_arg "Trace.scale: negative";
  { t with mbps = Array.map (fun r -> alpha *. r) t.mbps }

let rename name t = { t with name }

let packets_per_ms ~mtu_bytes t ms =
  (* mbps → bytes/ms is ×125. *)
  mbps_at t ms *. 125. /. float_of_int mtu_bytes

let to_mahimahi ~mtu_bytes t =
  let buf = Buffer.create 4096 in
  let credit = ref 0. in
  for ms = 0 to t.duration_ms - 1 do
    credit := !credit +. packets_per_ms ~mtu_bytes t ms;
    while !credit >= 1. do
      Buffer.add_string buf (string_of_int (ms + 1));
      Buffer.add_char buf '\n';
      credit := !credit -. 1.
    done
  done;
  Buffer.contents buf

let of_mahimahi ~name ~mtu_bytes s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None
           else
             match int_of_string_opt l with
             | Some ts when ts > 0 -> Some ts
             | _ -> failwith "Trace.of_mahimahi: bad timestamp")
  in
  match lines with
  | [] -> failwith "Trace.of_mahimahi: empty trace"
  | timestamps ->
      let duration = List.fold_left max 1 timestamps in
      let pkts = Array.make duration 0 in
      List.iter (fun ts -> pkts.(ts - 1) <- pkts.(ts - 1) + 1) timestamps;
      (* Group per-ms counts into 100 ms buckets to keep segments coarse. *)
      let bucket = 100 in
      let nbuckets = (duration + bucket - 1) / bucket in
      let samples =
        Array.init nbuckets (fun b ->
            let lo = b * bucket and hi = min duration ((b + 1) * bucket) in
            let total = ref 0 in
            for ms = lo to hi - 1 do
              total := !total + pkts.(ms)
            done;
            float_of_int (!total * mtu_bytes) /. 125. /. float_of_int (hi - lo))
      in
      of_mbps_array ~name ~ms_per_sample:bucket samples

let save ~mtu_bytes t path =
  Canopy_util.Atomic_file.write path (to_mahimahi ~mtu_bytes t)

let load ~name ~mtu_bytes path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_mahimahi ~name ~mtu_bytes (really_input_string ic n))

let pp ppf t =
  Format.fprintf ppf "%s: %dms, %.1f/%.1f/%.1f Mbps (min/avg/max)" t.name
    t.duration_ms (min_mbps t) (avg_mbps t) (max_mbps t)
