(** The 22-trace evaluation suite of Section 6.1: 18 synthetic plus 4
    LTE-like traces. *)

val synthetic : ?duration_ms:int -> unit -> Trace.t list
val lte : ?duration_ms:int -> unit -> Trace.t list
val all : ?duration_ms:int -> unit -> Trace.t list

val adversarial : dir:string -> unit -> Trace.t list
(** Archived adversarial scenarios (the worst cases found by the
    scenario search engine, rendered as Mahimahi [*.trace] files next
    to their records, e.g. under [_artifacts/scenarios/]), sorted by
    file name; [[]] when the directory does not exist. Their ["adv-"]
    name prefix puts them in the {!Adversarial} category. *)

type category = Synthetic | Real | Adversarial

val category_of : Trace.t -> category
(** Classify a suite trace by its name prefix. *)

val pp_category : Format.formatter -> category -> unit
