(** Twin Delayed Deep Deterministic policy gradient (TD3, Fujimoto et
    al.) — the learning algorithm underneath Orca and therefore Canopy
    (Section 5).

    Deterministic continuous-action actor with twin critics, target
    networks updated by Polyak averaging, target-policy smoothing noise,
    and delayed policy updates. Actions live in [\[-1, 1\]^action_dim]
    (tanh actor head). *)

open Canopy_nn

type config = {
  state_dim : int;
  action_dim : int;
  hidden : int;  (** hidden width of actor and critics *)
  gamma : float;  (** discount *)
  tau : float;  (** target-network soft-update rate *)
  actor_lr : float;
  critic_lr : float;
  policy_noise : float;  (** target-policy smoothing std *)
  noise_clip : float;
  policy_delay : int;  (** critic updates per actor update *)
  exploration_noise : float;  (** behaviour-policy Gaussian std *)
  batch_size : int;
  buffer_capacity : int;
  warmup : int;  (** transitions collected before updates start *)
}

val default_config : state_dim:int -> action_dim:int -> config
(** Orca-flavoured defaults: hidden 64, gamma 0.99, tau 0.005, lrs 1e-3 /
    1e-3, policy noise 0.2 clipped at 0.5, delay 2, exploration 0.1,
    batch 64, buffer 50k, warmup 256. *)

type t

val create : rng:Canopy_util.Prng.t -> config -> t
val config : t -> config

val actor : t -> Mlp.t
(** The live policy network — what the verifier certifies. *)

val select_action : ?explore:bool -> t -> float array -> float array
(** Deterministic policy output, plus clipped Gaussian exploration noise
    when [explore] is true (default false). *)

val observe : t -> Replay_buffer.transition -> unit
(** Record a transition; cheap, no learning. *)

type kernel =
  | Batched  (** GEMM-backed minibatch kernels; the deployed hot path *)
  | Per_sample
      (** one [mat_vec] per sample — the pre-batching reference
          implementation, kept for equivalence tests and benchmarks *)

val update : ?kernel:kernel -> t -> unit
(** One TD3 gradient step (both critics; actor and targets every
    [policy_delay] calls). No-op until [warmup] transitions have been
    observed. [kernel] (default {!Batched}) selects the implementation;
    both draw PRNG noise in the same order and produce identical
    parameter updates up to floating-point association — in practice
    bit-for-bit, because the batched kernels accumulate in the same
    order as the reference. *)

val q_values : t -> state:float array -> action:float array -> float * float
(** [(Q1, Q2)] of a (state, action) pair under the live critics, eval
    mode. Diagnostic accessor, e.g. for checking bootstrap semantics. *)

val updates_done : t -> int
val buffer_size : t -> int

(** {2 Snapshot / restore}

    The complete mutable training state of an agent, captured by value:
    restoring a snapshot and continuing replays bit-for-bit the run that
    would have happened without the interruption (same minibatches, same
    noise draws, same weights). *)

type snapshot = {
  nets : (string * Mlp.t) list;
      (** deep copies, keyed ["actor"], ["actor_target"], ["critic1"],
          ["critic2"], ["critic1_target"], ["critic2_target"] *)
  moments : (string * Optimizer.snapshot) list;
      (** keyed ["opt_actor"], ["opt_critic1"], ["opt_critic2"] *)
  transitions : Replay_buffer.transition array;
      (** replay contents in storage order (see {!Replay_buffer.iter}) *)
  cursor : int;  (** replay write cursor *)
  capacity : int;  (** replay capacity, validated on restore *)
  rng_state : int64;  (** exploration/minibatch PRNG state *)
  update_count : int;  (** gradient steps taken (drives policy delay) *)
}

val net_names : string list
(** The six network keys in canonical serialization order. *)

val snapshot : t -> snapshot
(** Capture the agent's full mutable state. Networks and optimizer
    moments are deep-copied; replay transitions are shared (they are
    immutable once observed). *)

val restore : t -> snapshot -> unit
(** Overwrite the agent's state with a snapshot, in place — existing
    references to [actor t] remain valid. A blit rather than an
    interpolation, so it recovers weights that have gone NaN/Inf.
    Raises [Invalid_argument] on shape/capacity mismatch or a snapshot
    missing a section. *)

val reseed : t -> salt:int -> unit
(** Decorrelate the agent's PRNG stream (see {!Canopy_util.Prng.reseed});
    used after a divergence rollback so the retried segment explores
    differently instead of replaying the faulting trajectory. *)

val finite : t -> bool
(** Cheap divergence probe: [false] iff some learned parameter of some
    network is NaN or infinite (one summing pass per parameter array;
    a non-finite value poisons its sum). Batch-norm running statistics
    are not probed — the full [Netcheck] at snapshot boundaries covers
    them. *)

val save : t -> dir:string -> unit
(** Write actor and critic checkpoints into [dir] (created if needed). *)

val load_actor : t -> string -> unit
(** Replace the live and target actor with a checkpoint. *)
