type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminal : bool;
  truncated : bool;
}

type t = {
  data : transition option array;
  mutable next : int;
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Replay_buffer.create: capacity";
  { data = Array.make capacity None; next = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len

let add t tr =
  t.data.(t.next) <- Some tr;
  t.next <- (t.next + 1) mod capacity t;
  t.len <- min (capacity t) (t.len + 1)

let sample t rng ~batch_size =
  if t.len = 0 then invalid_arg "Replay_buffer.sample: empty";
  if batch_size <= 0 then invalid_arg "Replay_buffer.sample: batch_size";
  Array.init batch_size (fun _ ->
      match t.data.(Canopy_util.Prng.int rng t.len) with
      | Some tr -> tr
      | None -> assert false)

let clear t =
  Array.fill t.data 0 (capacity t) None;
  t.next <- 0;
  t.len <- 0

let cursor t = t.next

(* Storage order (slot 0 .. len-1), NOT insertion order: [sample] indexes
   raw slots, so a checkpoint that preserves slot layout and [cursor]
   replays identical batches from an identical PRNG state. *)
let iter f t =
  for i = 0 to t.len - 1 do
    match t.data.(i) with Some tr -> f tr | None -> assert false
  done

let of_seq ~capacity:cap ?cursor seq =
  let t = create ~capacity:cap in
  Seq.iter
    (fun tr ->
      if t.len >= cap then
        invalid_arg "Replay_buffer.of_seq: more transitions than capacity";
      t.data.(t.len) <- Some tr;
      t.len <- t.len + 1)
    seq;
  t.next <- t.len mod cap;
  (match cursor with
  | None -> ()
  | Some c ->
      let valid =
        if t.len < cap then c = t.len else c >= 0 && c < cap
      in
      if not valid then
        invalid_arg
          (Printf.sprintf
             "Replay_buffer.of_seq: cursor %d inconsistent with len %d \
              capacity %d"
             c t.len cap);
      t.next <- c);
  t
