type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminal : bool;
  truncated : bool;
}

type t = {
  data : transition option array;
  mutable next : int;
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Replay_buffer.create: capacity";
  { data = Array.make capacity None; next = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len

let add t tr =
  t.data.(t.next) <- Some tr;
  t.next <- (t.next + 1) mod capacity t;
  t.len <- min (capacity t) (t.len + 1)

let sample t rng ~batch_size =
  if t.len = 0 then invalid_arg "Replay_buffer.sample: empty";
  if batch_size <= 0 then invalid_arg "Replay_buffer.sample: batch_size";
  Array.init batch_size (fun _ ->
      match t.data.(Canopy_util.Prng.int rng t.len) with
      | Some tr -> tr
      | None -> assert false)

let clear t =
  Array.fill t.data 0 (capacity t) None;
  t.next <- 0;
  t.len <- 0
