(* The [canopy-train v2] checkpoint container.

   Layout (line-oriented, byte-counted payloads):

     canopy-train v2 <crc32> <nbytes>      outer checksum, see below
     fingerprint <string>
     section <name> <nbytes> <crc32>
     <nbytes bytes of payload>
     section <name> <nbytes> <crc32>
     <payload>
     ...

   The outer CRC on line 1 covers every byte after that line — including
   the fingerprint line and all section headers — so tampering with a
   header or the fingerprint is caught even though the per-section CRCs
   only guard payloads. Per-section CRCs localize the diagnostic: a load
   failure names the corrupt section instead of just "bad file".

   Agent state is stored as one section per network (each a complete
   [canopy-mlp v1] payload, so the actor section doubles as a v1 actor
   checkpoint), one per optimizer, plus [replay], [prng] and [counters].
   Callers may append extra sections (the trainer stores its progress
   counters and the epoch curve this way); unknown sections are preserved
   by [decode] and ignored by [restore]. *)

module Prng = Canopy_util.Prng
module Crc32 = Canopy_util.Crc32
module Atomic_file = Canopy_util.Atomic_file
open Canopy_nn

let magic = "canopy-train v2"

let fail fmt = Printf.ksprintf failwith fmt

(* ------------------------------------------------------------------ *)
(* Section payload codecs                                              *)
(* ------------------------------------------------------------------ *)

let float_line buf xs =
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%h" x))
    xs;
  Buffer.add_char buf '\n'

let parse_float ~what s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail "Agent_snapshot: %s: malformed float %S" what s

let parse_int ~what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "Agent_snapshot: %s: malformed integer %S" what s

let parse_float_line ~what line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")
  |> List.map (parse_float ~what)
  |> Array.of_list

let words line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

(* A cursor over the lines of one section payload. *)
let line_reader ~name payload =
  let lines = ref (String.split_on_char '\n' payload) in
  fun () ->
    match !lines with
    | [] -> fail "Agent_snapshot: section %s: unexpected end" name
    | l :: rest ->
        lines := rest;
        l

let encode_optimizer snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "t_step %d\n" snap.Optimizer.step_count);
  Buffer.add_string buf
    (Printf.sprintf "slots %d\n" (List.length snap.Optimizer.moments));
  List.iter
    (fun (idx, m, v) ->
      Buffer.add_string buf
        (Printf.sprintf "slot %d %d\n" idx (Array.length m));
      float_line buf m;
      float_line buf v)
    snap.Optimizer.moments;
  Buffer.contents buf

let decode_optimizer ~name payload =
  let next = line_reader ~name payload in
  let what = "section " ^ name in
  let step_count =
    match words (next ()) with
    | [ "t_step"; n ] -> parse_int ~what n
    | _ -> fail "Agent_snapshot: %s: expected t_step" what
  in
  let count =
    match words (next ()) with
    | [ "slots"; n ] -> parse_int ~what n
    | _ -> fail "Agent_snapshot: %s: expected slots" what
  in
  let moments = ref [] in
  for _ = 1 to count do
    let idx, len =
      match words (next ()) with
      | [ "slot"; idx; len ] -> (parse_int ~what idx, parse_int ~what len)
      | _ -> fail "Agent_snapshot: %s: expected slot header" what
    in
    let m = parse_float_line ~what (next ()) in
    let v = parse_float_line ~what (next ()) in
    if Array.length m <> len || Array.length v <> len then
      fail "Agent_snapshot: %s: slot %d expects %d moments, found %d/%d" what
        idx len (Array.length m) (Array.length v);
    moments := (idx, m, v) :: !moments
  done;
  { Optimizer.step_count; moments = List.rev !moments }

let encode_replay (snap : Td3.snapshot) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "transitions %d %d %d\n"
       (Array.length snap.transitions)
       snap.cursor snap.capacity);
  Array.iter
    (fun (tr : Replay_buffer.transition) ->
      float_line buf tr.state;
      float_line buf tr.action;
      Buffer.add_string buf
        (Printf.sprintf "reward %h terminal %d truncated %d\n" tr.reward
           (if tr.terminal then 1 else 0)
           (if tr.truncated then 1 else 0));
      float_line buf tr.next_state)
    snap.transitions;
  Buffer.contents buf

let decode_replay payload =
  let name = "replay" in
  let next = line_reader ~name payload in
  let what = "section replay" in
  let count, cursor, capacity =
    match words (next ()) with
    | [ "transitions"; n; cur; cap ] ->
        (parse_int ~what n, parse_int ~what cur, parse_int ~what cap)
    | _ -> fail "Agent_snapshot: %s: expected transitions header" what
  in
  let parse_bool ~what s =
    match s with
    | "0" -> false
    | "1" -> true
    | _ -> fail "Agent_snapshot: %s: malformed flag %S" what s
  in
  let transitions =
    Array.init count (fun i ->
        let what = Printf.sprintf "section replay: transition %d" i in
        let state = parse_float_line ~what (next ()) in
        let action = parse_float_line ~what (next ()) in
        let reward, terminal, truncated =
          match words (next ()) with
          | [ "reward"; r; "terminal"; t; "truncated"; tr ] ->
              (parse_float ~what r, parse_bool ~what t, parse_bool ~what tr)
          | _ -> fail "Agent_snapshot: %s: expected reward line" what
        in
        let next_state = parse_float_line ~what (next ()) in
        { Replay_buffer.state; action; reward; next_state; terminal; truncated })
  in
  (transitions, cursor, capacity)

(* ------------------------------------------------------------------ *)
(* Container framing                                                   *)
(* ------------------------------------------------------------------ *)

let sections_of_agent agent =
  let snap = Td3.snapshot agent in
  List.map (fun (name, net) -> (name, Checkpoint.to_string net)) snap.nets
  @ List.map
      (fun (name, opt_snap) -> (name, encode_optimizer opt_snap))
      snap.moments
  @ [
      ("replay", encode_replay snap);
      ("prng", Printf.sprintf "state %Lx\n" snap.rng_state);
      ("counters", Printf.sprintf "update_calls %d\n" snap.update_count);
    ]

let encode ~fingerprint ?(extra = []) agent =
  if String.contains fingerprint '\n' then
    invalid_arg "Agent_snapshot.encode: fingerprint contains newline";
  let body = Buffer.create (1 lsl 16) in
  Buffer.add_string body (Printf.sprintf "fingerprint %s\n" fingerprint);
  List.iter
    (fun (name, payload) ->
      Buffer.add_string body
        (Printf.sprintf "section %s %d %s\n" name (String.length payload)
           (Crc32.to_hex (Crc32.string payload)));
      Buffer.add_string body payload)
    (sections_of_agent agent @ extra);
  let body = Buffer.contents body in
  Printf.sprintf "%s %s %d\n%s" magic
    (Crc32.to_hex (Crc32.string body))
    (String.length body) body

let decode s =
  (* Line 1: magic + outer checksum over the remainder. *)
  let nl =
    match String.index_opt s '\n' with
    | Some i -> i
    | None -> fail "Agent_snapshot: truncated file (no header line)"
  in
  let header = String.sub s 0 nl in
  let body = String.sub s (nl + 1) (String.length s - nl - 1) in
  (match words header with
  | [ "canopy-train"; "v2"; crc; nbytes ] ->
      let nbytes = parse_int ~what:"header" nbytes in
      if String.length body <> nbytes then
        fail "Agent_snapshot: truncated file: header declares %d bytes, found %d"
          nbytes (String.length body);
      (match Crc32.of_hex crc with
      | Some expected when expected = Crc32.string body -> ()
      | Some _ -> fail "Agent_snapshot: checksum mismatch (file corrupt)"
      | None -> fail "Agent_snapshot: malformed header checksum %S" crc)
  | _ -> fail "Agent_snapshot: bad magic (expected %S)" magic);
  (* Body: fingerprint line, then byte-counted sections. *)
  let pos = ref 0 in
  let read_line () =
    match String.index_from_opt body !pos '\n' with
    | None -> fail "Agent_snapshot: truncated body"
    | Some i ->
        let line = String.sub body !pos (i - !pos) in
        pos := i + 1;
        line
  in
  let fingerprint =
    let line = read_line () in
    match String.index_opt line ' ' with
    | Some i when String.sub line 0 i = "fingerprint" ->
        String.sub line (i + 1) (String.length line - i - 1)
    | _ -> fail "Agent_snapshot: expected fingerprint line"
  in
  let sections = ref [] in
  while !pos < String.length body do
    match words (read_line ()) with
    | [ "section"; name; nbytes; crc ] ->
        let nbytes = parse_int ~what:("section " ^ name) nbytes in
        if !pos + nbytes > String.length body then
          fail "Agent_snapshot: section %s: truncated payload (%d of %d bytes)"
            name
            (String.length body - !pos)
            nbytes;
        let payload = String.sub body !pos nbytes in
        pos := !pos + nbytes;
        (match Crc32.of_hex crc with
        | Some expected when expected = Crc32.string payload -> ()
        | Some _ ->
            fail "Agent_snapshot: section %s: checksum mismatch (corrupt)" name
        | None ->
            fail "Agent_snapshot: section %s: malformed checksum %S" name crc);
        sections := (name, payload) :: !sections
    | _ -> fail "Agent_snapshot: expected section header at byte %d" !pos
  done;
  (fingerprint, List.rev !sections)

let section ~name sections =
  match List.assoc_opt name sections with
  | Some payload -> payload
  | None -> fail "Agent_snapshot: missing section %s" name

let snapshot_of_sections sections =
  let nets =
    List.map
      (fun name -> (name, Checkpoint.of_string (section ~name sections)))
      Td3.net_names
  in
  let moments =
    List.map
      (fun name -> (name, decode_optimizer ~name (section ~name sections)))
      [ "opt_actor"; "opt_critic1"; "opt_critic2" ]
  in
  let transitions, cursor, capacity = decode_replay (section ~name:"replay" sections) in
  let rng_state =
    match words (section ~name:"prng" sections) with
    | [ "state"; hex ] -> (
        match Int64.of_string_opt ("0x" ^ hex) with
        | Some s -> s
        | None -> fail "Agent_snapshot: section prng: malformed state %S" hex)
    | _ -> fail "Agent_snapshot: section prng: expected state line"
  in
  let update_count =
    match words (section ~name:"counters" sections) with
    | [ "update_calls"; n ] -> parse_int ~what:"section counters" n
    | _ -> fail "Agent_snapshot: section counters: expected update_calls"
  in
  {
    Td3.nets;
    moments;
    transitions;
    cursor;
    capacity;
    rng_state;
    update_count;
  }

let restore agent sections = Td3.restore agent (snapshot_of_sections sections)
let write ~path contents = Atomic_file.write path contents

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let actor_of_string s =
  if starts_with ~prefix:Checkpoint.magic s then Checkpoint.of_string s
  else if starts_with ~prefix:magic s then
    let _fingerprint, sections = decode s in
    Checkpoint.of_string (section ~name:"actor" sections)
  else fail "Agent_snapshot: unrecognized checkpoint format"

let actor_of_file path = actor_of_string (read path)
