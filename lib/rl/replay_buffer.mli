(** Uniform-sampling experience replay for off-policy RL. *)

type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminal : bool;
      (** the environment reached a true absorbing state: the return after
          this transition is exactly [reward], so TD targets must not
          bootstrap past it *)
  truncated : bool;
      (** the episode was cut off by an artificial horizon (e.g. the
          trace's [duration_ms] time limit) while the MDP itself would
          have continued; TD targets should still bootstrap from
          [next_state]. Distinguishing this from [terminal] avoids the
          classic time-limit bias (treating every episode end as
          absorbing zeroes the bootstrap and skews value estimates). *)
}

type t

val create : capacity:int -> t
(** Requires [capacity > 0]. Once full, new transitions overwrite the
    oldest ones. *)

val capacity : t -> int
val length : t -> int
val add : t -> transition -> unit

val sample : t -> Canopy_util.Prng.t -> batch_size:int -> transition array
(** Uniform sample with replacement. Raises [Invalid_argument] when the
    buffer is empty. *)

val clear : t -> unit
