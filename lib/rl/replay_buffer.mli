(** Uniform-sampling experience replay for off-policy RL. *)

type transition = {
  state : float array;
  action : float array;
  reward : float;
  next_state : float array;
  terminal : bool;
      (** the environment reached a true absorbing state: the return after
          this transition is exactly [reward], so TD targets must not
          bootstrap past it *)
  truncated : bool;
      (** the episode was cut off by an artificial horizon (e.g. the
          trace's [duration_ms] time limit) while the MDP itself would
          have continued; TD targets should still bootstrap from
          [next_state]. Distinguishing this from [terminal] avoids the
          classic time-limit bias (treating every episode end as
          absorbing zeroes the bootstrap and skews value estimates). *)
}

type t

val create : capacity:int -> t
(** Requires [capacity > 0]. Once full, new transitions overwrite the
    oldest ones. *)

val capacity : t -> int
val length : t -> int
val add : t -> transition -> unit

val sample : t -> Canopy_util.Prng.t -> batch_size:int -> transition array
(** Uniform sample with replacement. Raises [Invalid_argument] when the
    buffer is empty. *)

val clear : t -> unit

val cursor : t -> int
(** Index of the slot the next {!add} will overwrite. Together with
    {!iter}'s storage order this pins down the full internal layout, which
    checkpoints must preserve: {!sample} draws by raw slot index, so two
    buffers with the same contents but rotated layouts replay different
    batches. *)

val iter : (transition -> unit) -> t -> unit
(** Iterate in storage order (slot [0] to [length t - 1]), not insertion
    order. *)

val of_seq : capacity:int -> ?cursor:int -> transition Seq.t -> t
(** Rebuild a buffer whose storage slots [0..n-1] hold the sequence's
    elements in order, with the write cursor at [cursor] (default: [n mod
    capacity]). [of_seq ~capacity ~cursor:(cursor t) (List.to_seq (collected
    iter t))] is an exact clone. Raises [Invalid_argument] if the sequence
    exceeds [capacity] or the cursor is inconsistent (it must equal the
    length while the buffer is filling, and lie in [\[0, capacity)] once
    full). *)
