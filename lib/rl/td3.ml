open Canopy_nn
open Canopy_tensor
module Prng = Canopy_util.Prng
module Pool = Canopy_util.Pool

type config = {
  state_dim : int;
  action_dim : int;
  hidden : int;
  gamma : float;
  tau : float;
  actor_lr : float;
  critic_lr : float;
  policy_noise : float;
  noise_clip : float;
  policy_delay : int;
  exploration_noise : float;
  batch_size : int;
  buffer_capacity : int;
  warmup : int;
}

let default_config ~state_dim ~action_dim =
  {
    state_dim;
    action_dim;
    hidden = 64;
    gamma = 0.99;
    tau = 0.005;
    actor_lr = 1e-3;
    critic_lr = 1e-3;
    policy_noise = 0.2;
    noise_clip = 0.5;
    policy_delay = 2;
    exploration_noise = 0.1;
    batch_size = 64;
    buffer_capacity = 50_000;
    warmup = 256;
  }

type kernel = Batched | Per_sample

type t = {
  cfg : config;
  rng : Prng.t;
  mutable actor : Mlp.t;
  mutable actor_target : Mlp.t;
  critic1 : Mlp.t;
  critic2 : Mlp.t;
  critic1_target : Mlp.t;
  critic2_target : Mlp.t;
  opt_actor : Optimizer.t;
  opt_critic1 : Optimizer.t;
  opt_critic2 : Optimizer.t;
  mutable buffer : Replay_buffer.t;
  mutable update_calls : int;
  (* Per-shard gradient shadows of the critics (parameters shared,
     accumulators private), grown on demand and reused across updates.
     The critics' parameter arrays are mutated only in place (assign,
     soft_update, optimizer steps), so cached shadows never go stale. *)
  mutable critic1_shards : Mlp.t array;
  mutable critic2_shards : Mlp.t array;
}

let create ~rng cfg =
  if cfg.state_dim <= 0 || cfg.action_dim <= 0 then
    invalid_arg "Td3.create: dims";
  let actor =
    Mlp.actor ~rng ~in_dim:cfg.state_dim ~hidden:cfg.hidden
      ~out_dim:cfg.action_dim
  in
  let critic () =
    Mlp.critic ~rng ~state_dim:cfg.state_dim ~action_dim:cfg.action_dim
      ~hidden:cfg.hidden
  in
  let critic1 = critic () and critic2 = critic () in
  {
    cfg;
    rng;
    actor;
    actor_target = Mlp.copy actor;
    critic1;
    critic2;
    critic1_target = Mlp.copy critic1;
    critic2_target = Mlp.copy critic2;
    opt_actor = Optimizer.adam ~lr:cfg.actor_lr ();
    opt_critic1 = Optimizer.adam ~lr:cfg.critic_lr ();
    opt_critic2 = Optimizer.adam ~lr:cfg.critic_lr ();
    buffer = Replay_buffer.create ~capacity:cfg.buffer_capacity;
    update_calls = 0;
    critic1_shards = [||];
    critic2_shards = [||];
  }

let config t = t.cfg
let actor t = t.actor
let buffer_size t = Replay_buffer.length t.buffer
let updates_done t = t.update_calls

let clamp_action = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

let select_action ?(explore = false) t state =
  let a = Mlp.forward t.actor state in
  if explore then
    Array.map
      (fun x ->
        clamp_action
          (x +. Prng.gaussian_scaled t.rng ~mu:0. ~sigma:t.cfg.exploration_noise))
      a
  else Array.map clamp_action a

let observe t tr =
  if Array.length tr.Replay_buffer.state <> t.cfg.state_dim then
    invalid_arg "Td3.observe: state dim";
  Replay_buffer.add t.buffer tr

(* Q-value of a single (state, action) pair under a critic, eval mode. *)
let q_eval critic state action =
  (Mlp.forward critic (Array.append state action)).(0)

let q_values t ~state ~action =
  (q_eval t.critic1 state action, q_eval t.critic2 state action)

(* Target-policy smoothing noise, clipped. Both kernels draw this in
   row-major order (per transition, then per action dimension) so their
   PRNG streams — and hence their parameter trajectories — coincide. *)
let smoothing_noise t =
  let cfg = t.cfg in
  Canopy_util.Mathx.clamp ~lo:(-.cfg.noise_clip) ~hi:cfg.noise_clip
    (Prng.gaussian_scaled t.rng ~mu:0. ~sigma:cfg.policy_noise)

(* A transition bootstraps through its next state unless it landed in a
   true absorbing state. Time-limit truncation ([truncated = true]) is not
   absorbing: the MDP would have continued, so the TD target keeps the
   [gamma * min Q'] term. *)
let bootstraps tr = not tr.Replay_buffer.terminal

(* ------------------------------------------------------------------ *)
(* Batched kernels: one GEMM-backed pass per network per direction.    *)
(* ------------------------------------------------------------------ *)

let states_of batch = Mat.of_rows (Array.map (fun tr -> tr.Replay_buffer.state) batch)

(* ------------------------------------------------------------------ *)
(* Data-parallel critic passes.                                        *)
(*                                                                     *)
(* The batch is cut into fixed 16-row shards; each shard runs its      *)
(* forward/backward through a gradient shadow of the critic (shared    *)
(* parameters, private accumulators), and the shard gradients are then *)
(* combined by a pairwise stride-doubling tree whose shape depends     *)
(* only on the shard count. Whether to shard is a pure function of the *)
(* batch size — never the pool width — and a critic's forward/backward *)
(* is row-local (dense + leaky-relu only, no batch statistics), so     *)
(* results are bit-identical at any domain count (DESIGN §10).         *)
(* ------------------------------------------------------------------ *)

let shard_rows = 16
let use_shards n = n >= 2 * shard_rows
let nshards_for n = (n + shard_rows - 1) / shard_rows

let shards_for t critic ~nshards =
  let cur =
    if critic == t.critic1 then t.critic1_shards else t.critic2_shards
  in
  if Array.length cur >= nshards then cur
  else begin
    let grown =
      Array.init nshards (fun s ->
          if s < Array.length cur then cur.(s) else Mlp.grad_shadow critic)
    in
    if critic == t.critic1 then t.critic1_shards <- grown
    else t.critic2_shards <- grown;
    grown
  end

(* Pairwise tree reduction of the shard gradients into [shards.(0)]:
   stride doubling merges (0,1) (2,3) … then (0,2) (4,6) …, so the
   summation tree is a fixed function of [nshards] alone. *)
let reduce_shards shards nshards =
  let stride = ref 1 in
  while !stride < nshards do
    let i = ref 0 in
    while !i + !stride < nshards do
      List.iter2
        (fun (_, gdst) (_, gsrc) ->
          for k = 0 to Array.length gdst - 1 do
            gdst.(k) <- gdst.(k) +. gsrc.(k)
          done)
        (Mlp.params shards.(!i))
        (Mlp.params shards.(!i + !stride));
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done

(* Run [f] once per shard of [0..n), on the pool when one is available.
   Shard results land in disjoint state (each shard's shadow, disjoint
   output rows), so any assignment of shards to domains is equivalent;
   the inline fallback covers re-entrant calls from inside a task. *)
let for_each_shard n f =
  let nshards = nshards_for n in
  let run s = f s ~lo:(s * shard_rows) ~hi:(min n ((s + 1) * shard_rows)) in
  if Pool.in_task () then
    for s = 0 to nshards - 1 do
      run s
    done
  else
    Pool.parallel_for_chunks ~chunk:1 nshards (fun ~lo ~hi ->
        for s = lo to hi - 1 do
          run s
        done)

(* One sharded critic fit: per-shard squared-error backward into the
   shadows, tree-reduce, then clip/step through the reduced gradients
   (the shadow's [params] share the critic's value arrays, so the
   optimizer updates the real network; moments are keyed by position
   and the shapes match the unsharded path). *)
let fit_critic_sharded t critic opt inputs targets ~n =
  let inv_n = 1. /. float_of_int n in
  let nshards = nshards_for n in
  let shards = shards_for t critic ~nshards in
  for_each_shard n (fun s ~lo ~hi ->
      let shadow = shards.(s) in
      Mlp.zero_grad shadow;
      let preds, tape = Mlp.forward_train shadow (Mat.sub_rows inputs ~lo ~hi) in
      let dout =
        Mat.init ~rows:(hi - lo) ~cols:1 (fun i _ ->
            2. *. (Mat.get preds i 0 -. targets.(lo + i)) *. inv_n)
      in
      ignore (Mlp.backward ~input_grad:false shadow tape dout));
  reduce_shards shards nshards;
  let params = Mlp.params shards.(0) in
  Optimizer.clip_gradients ~norm:10. params;
  Optimizer.step opt params;
  Mlp.bump_generation critic

let critic_update_batched t (batch : Replay_buffer.transition array) =
  let cfg = t.cfg in
  let n = Array.length batch in
  let next_states =
    Mat.of_rows (Array.map (fun tr -> tr.Replay_buffer.next_state) batch)
  in
  (* Bellman targets with target-policy smoothing and clipped double-Q. *)
  let a' = Mlp.forward_batch t.actor_target next_states in
  for i = 0 to n - 1 do
    for j = 0 to cfg.action_dim - 1 do
      Mat.set a' i j (clamp_action (Mat.get a' i j +. smoothing_noise t))
    done
  done;
  let next_inputs = Mat.concat_cols next_states a' in
  let q1' = Mlp.forward_batch t.critic1_target next_inputs in
  let q2' = Mlp.forward_batch t.critic2_target next_inputs in
  let targets = Array.make n 0. in
  for i = 0 to n - 1 do
    let tr = batch.(i) in
    let bootstrap =
      if bootstraps tr then
        cfg.gamma *. Float.min (Mat.get q1' i 0) (Mat.get q2' i 0)
      else 0.
    in
    targets.(i) <- tr.reward +. bootstrap
  done;
  let inputs =
    Mat.concat_cols (states_of batch)
      (Mat.of_rows (Array.map (fun tr -> tr.Replay_buffer.action) batch))
  in
  if use_shards n then begin
    fit_critic_sharded t t.critic1 t.opt_critic1 inputs targets ~n;
    fit_critic_sharded t t.critic2 t.opt_critic2 inputs targets ~n
  end
  else begin
    let inv_n = 1. /. float_of_int n in
    let fit critic opt =
      Mlp.zero_grad critic;
      let preds, tape = Mlp.forward_train critic inputs in
      let dout =
        Mat.init ~rows:n ~cols:1 (fun i _ ->
            2. *. (Mat.get preds i 0 -. targets.(i)) *. inv_n)
      in
      ignore (Mlp.backward ~input_grad:false critic tape dout);
      let params = Mlp.params critic in
      Optimizer.clip_gradients ~norm:10. params;
      Optimizer.step opt params;
      Mlp.bump_generation critic
    in
    fit t.critic1 t.opt_critic1;
    fit t.critic2 t.opt_critic2
  end

let actor_update_batched t (batch : Replay_buffer.transition array) =
  let cfg = t.cfg in
  let n = Array.length batch in
  let states = states_of batch in
  Mlp.zero_grad t.actor;
  let actions, actor_tape = Mlp.forward_train t.actor states in
  (* Deterministic policy gradient: maximize Q1(s, pi(s)), i.e. descend
     -Q1. The critic is only a conduit for gradients here; its own
     gradient accumulators are zeroed again before its next fit. A
     critic's passes are row-local, so the sharded conduit reproduces
     the full-batch [daction] bit for bit — only the actor's own passes
     (batch-norm couples its samples) must stay full-batch. *)
  let critic_inputs = Mat.concat_cols states actions in
  let inv_n = 1. /. float_of_int n in
  let daction =
    if use_shards n then begin
      let nshards = nshards_for n in
      let shards = shards_for t t.critic1 ~nshards in
      let da = Mat.create_uninit ~rows:n ~cols:cfg.action_dim in
      for_each_shard n (fun s ~lo ~hi ->
          let shadow = shards.(s) in
          Mlp.zero_grad shadow;
          let _, tape =
            Mlp.forward_train shadow (Mat.sub_rows critic_inputs ~lo ~hi)
          in
          let dout = Mat.init ~rows:(hi - lo) ~cols:1 (fun _ _ -> -.inv_n) in
          let dinputs = Mlp.backward shadow tape dout in
          for i = lo to hi - 1 do
            for j = 0 to cfg.action_dim - 1 do
              Mat.set da i j (Mat.get dinputs (i - lo) (cfg.state_dim + j))
            done
          done);
      da
    end
    else begin
      Mlp.zero_grad t.critic1;
      let _, critic_tape = Mlp.forward_train t.critic1 critic_inputs in
      let dout = Mat.init ~rows:n ~cols:1 (fun _ _ -> -.inv_n) in
      let dinputs = Mlp.backward t.critic1 critic_tape dout in
      Mat.cols_slice dinputs ~pos:cfg.state_dim ~len:cfg.action_dim
    end
  in
  ignore (Mlp.backward ~input_grad:false t.actor actor_tape daction);
  let params = Mlp.params t.actor in
  Optimizer.clip_gradients ~norm:10. params;
  Optimizer.step t.opt_actor params;
  Mlp.bump_generation t.actor

(* ------------------------------------------------------------------ *)
(* Per-sample reference kernels (the pre-batching implementation).     *)
(* Kept as an independent code path for equivalence tests and the      *)
(* batched-vs-reference benchmark.                                     *)
(* ------------------------------------------------------------------ *)

let critic_update_per_sample t (batch : Replay_buffer.transition array) =
  let cfg = t.cfg in
  let n = Array.length batch in
  let targets = Array.make n 0. in
  for i = 0 to n - 1 do
    let tr = batch.(i) in
    let a' = Mlp.forward t.actor_target tr.Replay_buffer.next_state in
    let a' = Array.map (fun x -> clamp_action (x +. smoothing_noise t)) a' in
    let q1 = q_eval t.critic1_target tr.next_state a' in
    let q2 = q_eval t.critic2_target tr.next_state a' in
    let bootstrap =
      if bootstraps tr then cfg.gamma *. Float.min q1 q2 else 0.
    in
    targets.(i) <- tr.reward +. bootstrap
  done;
  let inputs =
    Array.map (fun tr -> Array.append tr.Replay_buffer.state tr.action) batch
  in
  let fit critic opt =
    Mlp.zero_grad critic;
    let preds, tape = Mlp.forward_train_rows critic inputs in
    let dout =
      Array.mapi
        (fun i q -> [| 2. *. (q.(0) -. targets.(i)) /. float_of_int n |])
        preds
    in
    ignore (Mlp.backward_rows critic tape dout);
    let params = Mlp.params critic in
    Optimizer.clip_gradients ~norm:10. params;
    Optimizer.step opt params;
    Mlp.bump_generation critic
  in
  fit t.critic1 t.opt_critic1;
  fit t.critic2 t.opt_critic2

let actor_update_per_sample t (batch : Replay_buffer.transition array) =
  let cfg = t.cfg in
  let n = Array.length batch in
  let states = Array.map (fun tr -> tr.Replay_buffer.state) batch in
  Mlp.zero_grad t.actor;
  let actions, actor_tape = Mlp.forward_train_rows t.actor states in
  Mlp.zero_grad t.critic1;
  let critic_inputs =
    Array.mapi (fun i s -> Array.append s actions.(i)) states
  in
  let _, critic_tape = Mlp.forward_train_rows t.critic1 critic_inputs in
  (* Each row needs its own gradient cell: [Array.make n [| ... |]] would
     alias one array across all rows, so every in-place write during
     backprop would be applied n times. *)
  let dout = Array.init n (fun _ -> [| -1. /. float_of_int n |]) in
  let dinputs = Mlp.backward_rows t.critic1 critic_tape dout in
  let daction =
    Array.map (fun din -> Array.sub din cfg.state_dim cfg.action_dim) dinputs
  in
  ignore (Mlp.backward_rows t.actor actor_tape daction);
  let params = Mlp.params t.actor in
  Optimizer.clip_gradients ~norm:10. params;
  Optimizer.step t.opt_actor params;
  Mlp.bump_generation t.actor

let soft_updates t =
  let tau = t.cfg.tau in
  Mlp.soft_update ~tau ~src:t.actor ~dst:t.actor_target;
  Mlp.soft_update ~tau ~src:t.critic1 ~dst:t.critic1_target;
  Mlp.soft_update ~tau ~src:t.critic2 ~dst:t.critic2_target

let update ?(kernel = Batched) t =
  if Replay_buffer.length t.buffer >= max t.cfg.warmup t.cfg.batch_size
  then begin
    t.update_calls <- t.update_calls + 1;
    let batch =
      Replay_buffer.sample t.buffer t.rng ~batch_size:t.cfg.batch_size
    in
    (match kernel with
    | Batched -> critic_update_batched t batch
    | Per_sample -> critic_update_per_sample t batch);
    if t.update_calls mod t.cfg.policy_delay = 0 then begin
      (match kernel with
      | Batched -> actor_update_batched t batch
      | Per_sample -> actor_update_per_sample t batch);
      soft_updates t
    end
  end

(* ------------------------------------------------------------------ *)
(* Snapshot / restore: the complete mutable training state, captured    *)
(* by value so a later restore rewinds the agent bit-for-bit.           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  nets : (string * Mlp.t) list;
  moments : (string * Optimizer.snapshot) list;
  transitions : Replay_buffer.transition array;
  cursor : int;
  capacity : int;
  rng_state : int64;
  update_count : int;
}

let net_names =
  [ "actor"; "actor_target"; "critic1"; "critic2"; "critic1_target";
    "critic2_target" ]

let nets_of t =
  [
    ("actor", t.actor);
    ("actor_target", t.actor_target);
    ("critic1", t.critic1);
    ("critic2", t.critic2);
    ("critic1_target", t.critic1_target);
    ("critic2_target", t.critic2_target);
  ]

let opts_of t =
  [
    ("opt_actor", t.opt_actor);
    ("opt_critic1", t.opt_critic1);
    ("opt_critic2", t.opt_critic2);
  ]

let snapshot t =
  let transitions = ref [] in
  Replay_buffer.iter (fun tr -> transitions := tr :: !transitions) t.buffer;
  {
    nets = List.map (fun (name, net) -> (name, Mlp.copy net)) (nets_of t);
    moments =
      List.map (fun (name, opt) -> (name, Optimizer.snapshot opt)) (opts_of t);
    (* Transitions are immutable once observed, so sharing them with the
       live buffer is safe. *)
    transitions = Array.of_list (List.rev !transitions);
    cursor = Replay_buffer.cursor t.buffer;
    capacity = Replay_buffer.capacity t.buffer;
    rng_state = Prng.state t.rng;
    update_count = t.update_calls;
  }

let restore t snap =
  if snap.capacity <> t.cfg.buffer_capacity then
    invalid_arg "Td3.restore: buffer capacity mismatch";
  List.iter
    (fun (name, live) ->
      match List.assoc_opt name snap.nets with
      | Some saved -> Mlp.assign ~src:saved ~dst:live
      | None -> invalid_arg ("Td3.restore: snapshot missing network " ^ name))
    (nets_of t);
  List.iter
    (fun (name, opt) ->
      match List.assoc_opt name snap.moments with
      | Some saved -> Optimizer.restore opt saved
      | None -> invalid_arg ("Td3.restore: snapshot missing optimizer " ^ name))
    (opts_of t);
  t.buffer <-
    Replay_buffer.of_seq ~capacity:snap.capacity ~cursor:snap.cursor
      (Array.to_seq snap.transitions);
  Prng.set_state t.rng snap.rng_state;
  t.update_calls <- snap.update_count

let reseed t ~salt = Prng.reseed t.rng ~salt

(* Cheap per-step divergence probe: a single pass summing every learned
   parameter of every network — any NaN or Inf poisons its sum. Batch-norm
   running statistics are excluded ([Mlp.params] covers learned parameters
   only); the full [Netcheck] pass at snapshot boundaries covers those. *)
let finite t =
  List.for_all
    (fun (_, net) ->
      List.for_all
        (fun (value, _) ->
          let s = ref 0. in
          Array.iter (fun x -> s := !s +. x) value;
          Float.is_finite !s)
        (Mlp.params net))
    (nets_of t)

let save t ~dir =
  Canopy_util.Atomic_file.mkdir_p dir;
  Checkpoint.save t.actor (Filename.concat dir "actor.ckpt");
  Checkpoint.save t.critic1 (Filename.concat dir "critic1.ckpt");
  Checkpoint.save t.critic2 (Filename.concat dir "critic2.ckpt")

let load_actor t path =
  let net = Checkpoint.load path in
  if Mlp.in_dim net <> t.cfg.state_dim || Mlp.out_dim net <> t.cfg.action_dim
  then invalid_arg "Td3.load_actor: shape mismatch";
  t.actor <- net;
  t.actor_target <- Mlp.copy net
