(** The [canopy-train v2] full-state training checkpoint.

    A sectioned, checksummed text container carrying everything a
    training run needs to resume bit-for-bit: the six TD3 networks (each
    a complete [canopy-mlp v1] payload), the three Adam moment sets, the
    replay buffer with its exact storage layout, the splitmix64 PRNG
    state, and the gradient-step counter — plus caller-supplied extra
    sections (the trainer stores its step/epoch progress and the reward
    curve this way).

    Integrity is layered: line 1 carries a CRC-32 and byte count over the
    entire body (catching header/fingerprint tampering and truncation),
    and every section header carries a CRC-32 over its payload (so a load
    failure names the corrupt section). All writes go through
    {!Canopy_util.Atomic_file}, so a crash mid-save leaves the previous
    checkpoint intact rather than a torn file. *)

open Canopy_nn

val magic : string
(** ["canopy-train v2"], the first token of every container. *)

val encode : fingerprint:string -> ?extra:(string * string) list -> Td3.t -> string
(** Serialize the agent's full {!Td3.snapshot} plus [extra]
    [(name, payload)] sections. [fingerprint] is an opaque
    configuration digest stored in the clear and verified by callers on
    resume; it must not contain a newline. *)

val decode : string -> string * (string * string) list
(** [(fingerprint, sections)] in file order. Raises [Failure] with a
    precise diagnostic on bad magic, truncation, outer-checksum mismatch,
    or a per-section checksum mismatch (naming the section). *)

val restore : Td3.t -> (string * string) list -> unit
(** Rebuild a {!Td3.snapshot} from decoded sections and {!Td3.restore}
    the agent in place. Extra/unknown sections are ignored. Raises
    [Failure] on missing or malformed agent sections, [Invalid_argument]
    on shape mismatch with the live agent. *)

val write : path:string -> string -> unit
(** Atomic write of an encoded container (stage + rename). *)

val read : string -> string
(** Read a whole checkpoint file (binary-safe). *)

val actor_of_string : string -> Mlp.t
(** Load an actor network from either format: a bare [canopy-mlp v1]
    checkpoint, or the [actor] section of a [canopy-train v2] container.
    Raises [Failure] on unrecognized or corrupt input. *)

val actor_of_file : string -> Mlp.t
(** {!actor_of_string} over a file's contents. *)
