(** Millisecond-granularity bottleneck-link emulator.

    Reproduces the Mahimahi link model the paper evaluates on: a
    trace-driven bottleneck where each millisecond offers a number of
    MTU-sized packet delivery opportunities (wasted when the queue is
    empty), a droptail FIFO buffer in front of it, and a fixed propagation
    delay so that [RTT = minRTT + queueing delay]. The reverse (ACK) path
    is uncongested.

    The sender transmits whenever fewer packets are in flight than the
    current congestion window; the window itself is set from outside each
    tick, which is what lets a learned controller override its TCP
    backbone's suggestion (Eq. 1). Packets dropped at the queue surface to
    the sender as a loss event one minRTT later, approximating dup-ACK
    detection. *)

type ack = {
  now_ms : int;  (** time the ACK reaches the sender *)
  seq : int;
  rtt_ms : int;  (** minRTT + queueing delay for this packet *)
  delivered : int;  (** cumulative delivered count including this packet *)
}
(** Feedback for one acknowledged packet. *)

type handlers = {
  on_ack : ack -> unit;
  on_loss : now_ms:int -> unit;  (** one call per lost packet *)
}

val null_handlers : handlers

val chain : handlers -> handlers -> handlers
(** Invoke both, first argument first. *)

type impairments = {
  random_loss : float;  (** probability of non-congestive packet loss *)
  ack_jitter_ms : int;  (** max extra delay added to each ACK's return *)
  reorder_prob : float;
      (** probability that a delivered packet's feedback is held back by
          [reorder_ms], letting later packets' ACKs overtake it *)
  reorder_ms : int;  (** extra delay applied to reordered packets *)
  seed : int;  (** PRNG seed for the impairment processes *)
}
(** Optional link pathologies beyond droptail congestion: wireless-style
    random loss, return-path jitter and packet reordering. All feed the
    measurement noise the robustness property is about. *)

val no_impairments : impairments

type config = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;  (** two-way propagation delay, >= 2 *)
  buffer_pkts : int;  (** droptail queue capacity, >= 1 *)
  mtu_bytes : int;
  initial_cwnd : float;
  impairments : impairments;
}

val default_mtu : int
(** 1500 bytes. *)

val bdp_pkts : mbps:float -> min_rtt_ms:int -> mtu_bytes:int -> int
(** Bandwidth-delay product in packets, at least 1. *)

type t

val create : config -> t
val config : t -> config
val now_ms : t -> int

val cwnd : t -> float
val set_cwnd : t -> float -> unit
(** Clamped below at 1 packet. *)

val inflight : t -> int
val queue_len : t -> int

val tick : t -> handlers -> unit
(** Advance the simulation by one millisecond: deliver due ACKs and loss
    notifications (invoking the handlers), drain the bottleneck according
    to the trace, then let the sender fill the window. *)

val run : t -> handlers -> ms:int -> unit
(** [tick] repeated [ms] times. *)

(** Cumulative counters since creation. *)
type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  capacity_pkts : float;  (** delivery opportunities offered by the trace *)
  rtt_samples : Canopy_util.Fbuf.t;  (** per-ACK RTT in ms *)
}

val stats : t -> stats
val utilization : t -> float
(** Delivered packets over offered capacity so far; 0 before any tick. *)

val loss_rate : t -> float
(** Dropped over sent; 0 before any send. *)

val avg_qdelay_ms : t -> float
val qdelay_array_ms : t -> float array
(** Per-ACK queueing delay samples (RTT − minRTT). *)
