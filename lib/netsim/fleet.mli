(** Struct-of-arrays fleet of independent bottleneck links.

    A fleet holds thousands of {!Env}-equivalent links in flat per-flow
    arrays (cwnd/inflight/seq/delivered/dropped/credit plus ring-buffer
    bottleneck queues and return paths) and advances all of them through
    blocks of milliseconds at once. Per-flow stepping is an exact
    transliteration of [Env.tick] — same phase order, same
    float-operation order, same per-flow PRNG streams — so a fleet of N
    links reproduces N scalar [Env]s bit-for-bit; the determinism tests
    pin this.

    Links sharing a trace (by physical equality, at equal MTU) form a
    trace family: [run] computes one packets-per-ms table per family and
    every member flow reads it, instead of one trace lookup per flow per
    millisecond. The per-flow loop is chunked over
    [Canopy_util.Pool.default ()] with pure chunking; flows share no
    mutable state, so results are bit-identical at any domain count
    (sequential included). *)

type t

val create : Env.config array -> t
(** One link per config, all starting at time 0 with empty queues. Same
    per-link validation as [Env.create]. Raises [Invalid_argument] on an
    empty array. *)

val flows : t -> int
val now_ms : t -> int
val config : t -> flow:int -> Env.config

val cwnd : t -> flow:int -> float

val set_cwnd : t -> flow:int -> float -> unit
(** Clamped to at least 1, as [Env.set_cwnd]. *)

val inflight : t -> flow:int -> int
val queue_len : t -> flow:int -> int

val run :
  ?after_tick:(int -> unit) -> t -> Env.handlers array -> ms:int -> unit
(** [run t handlers ~ms] advances every flow by [ms] milliseconds;
    [handlers.(i)] receives flow [i]'s ack/loss events exactly as the
    corresponding [Env] would deliver them. [after_tick i] (if given)
    runs after each of flow [i]'s milliseconds — the hook a congestion
    controller backbone uses to refresh the flow's cwnd mid-interval.
    Handlers and [after_tick] execute inside pool chunks and therefore
    must touch only flow-local state (no cross-flow writes, no shared
    accumulators); this is what keeps fleet stepping race-free and
    bit-identical at any domain count. *)

val tick : ?after_tick:(int -> unit) -> t -> Env.handlers array -> unit
(** [run ~ms:1]. *)

(** {2 Per-flow counters and metrics}

    Definitions match [Env]'s bitwise ([utilization], [loss_rate],
    [avg_qdelay_ms] reproduce [Env.utilization] / [Env.loss_rate] /
    [Env.avg_qdelay_ms] exactly on identical histories). *)

val sent : t -> flow:int -> int
val delivered : t -> flow:int -> int
val dropped : t -> flow:int -> int
val capacity_pkts : t -> flow:int -> float
val utilization : t -> flow:int -> float
val loss_rate : t -> flow:int -> float

val avg_qdelay_ms : t -> flow:int -> float
(** Mean queueing delay over all acked packets; [0.] before any ack. *)

val throughput_mbps : t -> flow:int -> float
(** Delivered payload rate over the whole run; [0.] at time 0. *)
