type ack = { now_ms : int; seq : int; rtt_ms : int; delivered : int }
type handlers = { on_ack : ack -> unit; on_loss : now_ms:int -> unit }

let null_handlers = { on_ack = (fun _ -> ()); on_loss = (fun ~now_ms:_ -> ()) }

let chain a b =
  {
    on_ack =
      (fun ack ->
        a.on_ack ack;
        b.on_ack ack);
    on_loss =
      (fun ~now_ms ->
        a.on_loss ~now_ms;
        b.on_loss ~now_ms);
  }

type impairments = {
  random_loss : float;
  ack_jitter_ms : int;
  reorder_prob : float;
  reorder_ms : int;
  seed : int;
}

let no_impairments =
  {
    random_loss = 0.;
    ack_jitter_ms = 0;
    reorder_prob = 0.;
    reorder_ms = 0;
    seed = 0;
  }

type config = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int;
  buffer_pkts : int;
  mtu_bytes : int;
  initial_cwnd : float;
  impairments : impairments;
}

let default_mtu = 1500

let bdp_pkts ~mbps ~min_rtt_ms ~mtu_bytes =
  let pkts = mbps *. 125. *. float_of_int min_rtt_ms /. float_of_int mtu_bytes in
  max 1 (int_of_float (Float.ceil pkts))

(* Events scheduled on the (uncongested) return path; arrival times are
   pushed in non-decreasing order so a plain FIFO suffices. *)
type return_event =
  | Ev_ack of { seq : int; sent_ms : int }
  | Ev_loss

type t = {
  cfg : config;
  mutable now_ms : int;
  mutable cwnd : float;
  mutable inflight : int;
  mutable next_seq : int;
  queue : (int * int) Queue.t; (* (seq, sent_ms) waiting at the bottleneck *)
  mutable queue_len : int;
  mutable credit : float; (* fractional delivery opportunities *)
  return_path : (int * return_event) Queue.t; (* (arrival_ms, event) *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable capacity_pkts : float;
  rtt_samples : Canopy_util.Fbuf.t;
  rng : Canopy_util.Prng.t;
  mutable last_scheduled_ms : int; (* watermark for the append fast path *)
}

let create cfg =
  if cfg.min_rtt_ms < 2 then invalid_arg "Env.create: min_rtt_ms";
  if cfg.buffer_pkts < 1 then invalid_arg "Env.create: buffer_pkts";
  if cfg.mtu_bytes <= 0 then invalid_arg "Env.create: mtu_bytes";
  if cfg.initial_cwnd < 1. then invalid_arg "Env.create: initial_cwnd";
  if cfg.impairments.random_loss < 0. || cfg.impairments.random_loss >= 1.
  then invalid_arg "Env.create: random_loss";
  if cfg.impairments.ack_jitter_ms < 0 then
    invalid_arg "Env.create: ack_jitter_ms";
  if cfg.impairments.reorder_prob < 0. || cfg.impairments.reorder_prob >= 1.
  then invalid_arg "Env.create: reorder_prob";
  if cfg.impairments.reorder_ms < 0 then invalid_arg "Env.create: reorder_ms";
  {
    cfg;
    now_ms = 0;
    cwnd = cfg.initial_cwnd;
    inflight = 0;
    next_seq = 0;
    queue = Queue.create ();
    queue_len = 0;
    credit = 0.;
    return_path = Queue.create ();
    sent = 0;
    delivered = 0;
    dropped = 0;
    capacity_pkts = 0.;
    rtt_samples = Canopy_util.Fbuf.create ();
    rng = Canopy_util.Prng.create cfg.impairments.seed;
    last_scheduled_ms = 0;
  }

let config t = t.cfg
let now_ms t = t.now_ms
let cwnd t = t.cwnd
let set_cwnd t w = t.cwnd <- Float.max 1. w
let inflight t = t.inflight
let queue_len t = t.queue_len

(* Sorted insertion: with ACK jitter the return path is no longer
   monotone in arrival time. The O(1) append fast-path (watermark check)
   covers the jitter-free case; the rebuild only triggers under jitter. *)
let schedule t arrival ev =
  if arrival >= t.last_scheduled_ms then begin
    t.last_scheduled_ms <- arrival;
    Queue.push (arrival, ev) t.return_path
  end
  else begin
    let items = Queue.fold (fun acc x -> x :: acc) [] t.return_path in
    Queue.clear t.return_path;
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      ((arrival, ev) :: List.rev items)
    |> List.iter (fun x -> Queue.push x t.return_path)
  end

let process_return_path t handlers =
  let continue = ref true in
  while !continue && not (Queue.is_empty t.return_path) do
    let arrival, ev = Queue.peek t.return_path in
    if arrival > t.now_ms then continue := false
    else begin
      ignore (Queue.pop t.return_path);
      match ev with
      | Ev_ack { seq; sent_ms } ->
          t.inflight <- max 0 (t.inflight - 1);
          t.delivered <- t.delivered + 1;
          let rtt = t.now_ms - sent_ms in
          Canopy_util.Fbuf.push t.rtt_samples (float_of_int rtt);
          handlers.on_ack
            { now_ms = t.now_ms; seq; rtt_ms = rtt; delivered = t.delivered }
      | Ev_loss ->
          t.inflight <- max 0 (t.inflight - 1);
          handlers.on_loss ~now_ms:t.now_ms
    end
  done

let drain_bottleneck t =
  let ppms =
    Canopy_trace.Trace.packets_per_ms ~mtu_bytes:t.cfg.mtu_bytes t.cfg.trace
      t.now_ms
  in
  t.capacity_pkts <- t.capacity_pkts +. ppms;
  t.credit <- t.credit +. ppms;
  let opportunities = int_of_float (Float.floor t.credit) in
  t.credit <- t.credit -. float_of_int opportunities;
  let used = min opportunities t.queue_len in
  for _ = 1 to used do
    let seq, sent_ms = Queue.pop t.queue in
    t.queue_len <- t.queue_len - 1;
    let imp = t.cfg.impairments in
    if
      imp.random_loss > 0.
      && Canopy_util.Prng.float t.rng 1. < imp.random_loss
    then begin
      (* non-congestive (e.g. wireless) loss after the bottleneck *)
      t.dropped <- t.dropped + 1;
      schedule t (t.now_ms + t.cfg.min_rtt_ms) Ev_loss
    end
    else begin
      (* The packet reaches the receiver after the forward propagation
         delay and its ACK returns after the rest of minRTT (plus any
         return-path jitter): without jitter the ACK arrives exactly
         minRTT after the dequeue instant. *)
      let jitter =
        if imp.ack_jitter_ms = 0 then 0
        else Canopy_util.Prng.int t.rng (imp.ack_jitter_ms + 1)
      in
      (* Packet reordering: with probability [reorder_prob] this
         packet's feedback is held back an extra [reorder_ms], so ACKs
         of later packets overtake it — out-of-order delivery as the
         sender observes it. Both draws are gated on their knobs so a
         reorder-free config consumes exactly the pre-reorder PRNG
         stream. *)
      let reorder =
        if
          imp.reorder_prob > 0.
          && Canopy_util.Prng.float t.rng 1. < imp.reorder_prob
        then imp.reorder_ms
        else 0
      in
      schedule t
        (t.now_ms + t.cfg.min_rtt_ms + jitter + reorder)
        (Ev_ack { seq; sent_ms })
    end
  done

let sender_fill t =
  let window = max 1 (int_of_float (Float.floor t.cwnd)) in
  while t.inflight < window do
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    t.sent <- t.sent + 1;
    t.inflight <- t.inflight + 1;
    if t.queue_len < t.cfg.buffer_pkts then begin
      Queue.push (seq, t.now_ms) t.queue;
      t.queue_len <- t.queue_len + 1
    end
    else begin
      (* Droptail: the sender learns about the loss one minRTT later,
         approximating dup-ACK detection. *)
      t.dropped <- t.dropped + 1;
      schedule t (t.now_ms + t.cfg.min_rtt_ms) Ev_loss
    end
  done

let tick t handlers =
  t.now_ms <- t.now_ms + 1;
  process_return_path t handlers;
  (* Fill before draining so a packet can use a delivery opportunity in
     the millisecond it arrives (Mahimahi semantics): an uncongested path
     then yields RTT = minRTT exactly. *)
  sender_fill t;
  drain_bottleneck t

let run t handlers ~ms =
  if ms < 0 then invalid_arg "Env.run: ms";
  for _ = 1 to ms do
    tick t handlers
  done

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  capacity_pkts : float;
  rtt_samples : Canopy_util.Fbuf.t;
}

let stats (t : t) =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    capacity_pkts = t.capacity_pkts;
    rtt_samples = t.rtt_samples;
  }

let utilization (t : t) =
  if t.capacity_pkts <= 0. then 0.
  else Float.min 1. (float_of_int t.delivered /. t.capacity_pkts)

let loss_rate (t : t) =
  if t.sent = 0 then 0. else float_of_int t.dropped /. float_of_int t.sent

let qdelay_array_ms (t : t) =
  let min_rtt = float_of_int t.cfg.min_rtt_ms in
  Array.map
    (fun rtt -> Float.max 0. (rtt -. min_rtt))
    (Canopy_util.Fbuf.to_array t.rtt_samples)

let avg_qdelay_ms t =
  let samples = qdelay_array_ms t in
  Canopy_util.Stats.mean samples
