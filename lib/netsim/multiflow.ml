type config = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int array;
  buffer_pkts : int;
  mtu_bytes : int;
  initial_cwnd : float;
}

type return_event =
  | Ev_ack of { flow : int; seq : int; sent_ms : int }
  | Ev_loss of { flow : int }

type flow_state = {
  min_rtt_ms : int;
  start_ms : int; (* the flow does not send before this time *)
  mutable cwnd : float;
  mutable inflight : int;
  mutable next_seq : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable qdelay_sum_ms : float; (* over acked packets, in ack order *)
}

type t = {
  cfg : config;
  mutable now_ms : int;
  flows : flow_state array;
  queue : (int * int * int) Queue.t; (* (flow, seq, sent_ms) *)
  mutable queue_len : int;
  mutable credit : float;
  return_path : (int * return_event) Queue.t;
  mutable capacity_pkts : float;
  mutable last_scheduled_ms : int;
}

let create ?start_ms (cfg : config) =
  let n = Array.length cfg.min_rtt_ms in
  if n = 0 then invalid_arg "Multiflow.create: no flows";
  Array.iter
    (fun r -> if r < 2 then invalid_arg "Multiflow.create: min_rtt_ms")
    cfg.min_rtt_ms;
  if cfg.buffer_pkts < 1 then invalid_arg "Multiflow.create: buffer_pkts";
  if cfg.initial_cwnd < 1. then invalid_arg "Multiflow.create: initial_cwnd";
  let start_ms =
    match start_ms with
    | None -> Array.make n 0
    | Some s ->
        if Array.length s <> n then invalid_arg "Multiflow.create: start_ms";
        Array.iter
          (fun x -> if x < 0 then invalid_arg "Multiflow.create: start_ms")
          s;
        s
  in
  {
    cfg;
    now_ms = 0;
    flows =
      Array.mapi
        (fun i min_rtt_ms ->
          {
            min_rtt_ms;
            start_ms = start_ms.(i);
            cwnd = cfg.initial_cwnd;
            inflight = 0;
            next_seq = 0;
            sent = 0;
            delivered = 0;
            dropped = 0;
            qdelay_sum_ms = 0.;
          })
        cfg.min_rtt_ms;
    queue = Queue.create ();
    queue_len = 0;
    credit = 0.;
    return_path = Queue.create ();
    capacity_pkts = 0.;
    last_scheduled_ms = 0;
  }

let flows t = Array.length t.flows
let now_ms t = t.now_ms
let cwnd t ~flow = t.flows.(flow).cwnd
let set_cwnd t ~flow w = t.flows.(flow).cwnd <- Float.max 1. w
let inflight t ~flow = t.flows.(flow).inflight
let queue_len t = t.queue_len

let process_return_path t handlers =
  let continue = ref true in
  while !continue && not (Queue.is_empty t.return_path) do
    let arrival, ev = Queue.peek t.return_path in
    if arrival > t.now_ms then continue := false
    else begin
      ignore (Queue.pop t.return_path);
      match ev with
      | Ev_ack { flow; seq; sent_ms } ->
          let f = t.flows.(flow) in
          f.inflight <- max 0 (f.inflight - 1);
          f.delivered <- f.delivered + 1;
          let rtt = t.now_ms - sent_ms in
          f.qdelay_sum_ms <-
            f.qdelay_sum_ms
            +. Float.max 0. (float_of_int rtt -. float_of_int f.min_rtt_ms);
          handlers.(flow).Env.on_ack
            {
              Env.now_ms = t.now_ms;
              seq;
              rtt_ms = rtt;
              delivered = f.delivered;
            }
      | Ev_loss { flow } ->
          let f = t.flows.(flow) in
          f.inflight <- max 0 (f.inflight - 1);
          handlers.(flow).Env.on_loss ~now_ms:t.now_ms
    end
  done

(* Return-path events are scheduled at sent/dequeue time plus each
   flow's own minRTT, so arrival order is not globally monotone when
   flows have different delays. The O(1) watermark fast-path covers the
   homogeneous-RTT case; heterogeneous mixes trigger an ordered rebuild. *)
let schedule t arrival ev =
  if arrival >= t.last_scheduled_ms then begin
    t.last_scheduled_ms <- arrival;
    Queue.push (arrival, ev) t.return_path
  end
  else begin
    let items = Queue.fold (fun acc x -> x :: acc) [] t.return_path in
    Queue.clear t.return_path;
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      ((arrival, ev) :: List.rev items)
    |> List.iter (fun x -> Queue.push x t.return_path)
  end

let drain_bottleneck t =
  let ppms =
    Canopy_trace.Trace.packets_per_ms ~mtu_bytes:t.cfg.mtu_bytes t.cfg.trace
      t.now_ms
  in
  t.capacity_pkts <- t.capacity_pkts +. ppms;
  t.credit <- t.credit +. ppms;
  let opportunities = int_of_float (Float.floor t.credit) in
  t.credit <- t.credit -. float_of_int opportunities;
  let used = min opportunities t.queue_len in
  for _ = 1 to used do
    let flow, seq, sent_ms = Queue.pop t.queue in
    t.queue_len <- t.queue_len - 1;
    schedule t
      (t.now_ms + t.flows.(flow).min_rtt_ms)
      (Ev_ack { flow; seq; sent_ms })
  done

let sender_fill t =
  (* Round-robin across flows so no flow systematically grabs the last
     buffer slots within a tick. *)
  let n = Array.length t.flows in
  let blocked = Array.make n false in
  let remaining = ref n in
  let i = ref (t.now_ms mod n) in
  while !remaining > 0 do
    let flow = !i mod n in
    let f = t.flows.(flow) in
    if blocked.(flow) then ()
    else if t.now_ms < f.start_ms then begin
      (* Not arrived yet: no sends, no window fill. *)
      blocked.(flow) <- true;
      decr remaining
    end
    else if f.inflight >= max 1 (int_of_float (Float.floor f.cwnd)) then begin
      blocked.(flow) <- true;
      decr remaining
    end
    else begin
      let seq = f.next_seq in
      f.next_seq <- f.next_seq + 1;
      f.sent <- f.sent + 1;
      f.inflight <- f.inflight + 1;
      if t.queue_len < t.cfg.buffer_pkts then begin
        Queue.push (flow, seq, t.now_ms) t.queue;
        t.queue_len <- t.queue_len + 1
      end
      else begin
        f.dropped <- f.dropped + 1;
        schedule t (t.now_ms + f.min_rtt_ms) (Ev_loss { flow })
      end
    end;
    incr i
  done

let tick t handlers =
  if Array.length handlers <> Array.length t.flows then
    invalid_arg "Multiflow.tick: handlers";
  t.now_ms <- t.now_ms + 1;
  process_return_path t handlers;
  sender_fill t;
  drain_bottleneck t

let run t handlers ~ms =
  if ms < 0 then invalid_arg "Multiflow.run: ms";
  for _ = 1 to ms do
    tick t handlers
  done

let delivered t ~flow = t.flows.(flow).delivered
let dropped t ~flow = t.flows.(flow).dropped
let sent t ~flow = t.flows.(flow).sent

let loss_rate t ~flow =
  let f = t.flows.(flow) in
  if f.sent = 0 then 0. else float_of_int f.dropped /. float_of_int f.sent

let avg_qdelay_ms t ~flow =
  let f = t.flows.(flow) in
  if f.delivered = 0 then 0.
  else f.qdelay_sum_ms /. float_of_int f.delivered

let throughput_mbps t ~flow =
  if t.now_ms = 0 then 0.
  else
    float_of_int t.flows.(flow).delivered
    *. float_of_int t.cfg.mtu_bytes *. 8. /. 1e6
    /. (float_of_int t.now_ms /. 1000.)

let jain_index t =
  Canopy_util.Stats.jain_index
    (Array.map (fun f -> float_of_int f.delivered) t.flows)

let utilization t =
  if t.capacity_pkts <= 0. then 0.
  else begin
    let total =
      Array.fold_left (fun acc f -> acc + f.delivered) 0 t.flows
    in
    Float.min 1. (float_of_int total /. t.capacity_pkts)
  end
