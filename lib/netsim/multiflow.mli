(** Multiple senders sharing one bottleneck link.

    Extends the single-flow {!Env} model to [n] competing flows: one
    trace-driven bottleneck with a shared droptail queue, per-flow
    propagation delays and congestion windows, and per-flow ACK/loss
    feedback. Enables fairness studies (Jain's index, bandwidth shares)
    that a learned controller must not regress — a deployment concern
    adjacent to the paper's single-flow evaluation. *)

type config = {
  trace : Canopy_trace.Trace.t;
  min_rtt_ms : int array;  (** per-flow two-way propagation delay, each >= 2 *)
  buffer_pkts : int;  (** shared droptail queue capacity *)
  mtu_bytes : int;
  initial_cwnd : float;
}

type t

val create : ?start_ms:int array -> config -> t
(** Raises [Invalid_argument] on an empty flow list or invalid sizes.
    [start_ms.(i)] delays flow [i]'s first transmission (default all 0):
    a late-arriving flow holds its window but sends nothing until its
    start time, modelling staggered competing-flow arrivals. The array
    must match the flow count and be non-negative. *)

val flows : t -> int
val now_ms : t -> int
val cwnd : t -> flow:int -> float
val set_cwnd : t -> flow:int -> float -> unit
val inflight : t -> flow:int -> int
val queue_len : t -> int

val tick : t -> Env.handlers array -> unit
(** Advance one millisecond; [handlers.(i)] receives flow [i]'s feedback.
    Raises [Invalid_argument] when the array length differs from the flow
    count. *)

val run : t -> Env.handlers array -> ms:int -> unit

val delivered : t -> flow:int -> int
val dropped : t -> flow:int -> int
val sent : t -> flow:int -> int

val loss_rate : t -> flow:int -> float
(** Dropped over sent for the flow; [0.] before any send. *)

val avg_qdelay_ms : t -> flow:int -> float
(** Mean queueing delay (RTT minus the flow's minRTT) over the flow's
    acked packets; [0.] before any ack. *)

val throughput_mbps : t -> flow:int -> float
(** Average delivered rate of the flow since creation. *)

val jain_index : t -> float
(** Jain's fairness index over per-flow delivered counts
    ([Canopy_util.Stats.jain_index]); 1 when all flows received
    identical shares, [1/n] in the most unfair case. Returns 1 for
    fewer than two flows or before any delivery. *)

val utilization : t -> float
(** Aggregate delivered packets over offered capacity. *)
