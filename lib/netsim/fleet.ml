(* Struct-of-arrays fleet of independent bottleneck links.

   Each flow is an exact transliteration of [Env]: same state, same
   tick order (process return path, sender fill, drain bottleneck), the
   same float-operation order, and the same per-flow PRNG streams — a
   fleet of N links reproduces N [Env]s bit-for-bit (see
   test/test_fleet.ml). What changes is the layout and the driver: all
   per-flow scalars live in flat arrays indexed by flow, the bottleneck
   queue and the return path are per-flow int rings carved out of
   per-flow arrays, and [run] advances every flow through a whole block
   of milliseconds at once so the per-flow loop can be chunked over
   [Canopy_util.Pool] (flows never share state, so parallel execution
   is bit-identical to sequential by construction).

   Trace lookups are hoisted: [run] precomputes one packets-per-ms table
   per trace family (links sharing a trace by physical equality) and
   every flow of the family reads the shared table instead of calling
   [Trace.packets_per_ms] per flow per millisecond. *)

module Trace = Canopy_trace.Trace
module Prng = Canopy_util.Prng
module Pool = Canopy_util.Pool

(* Return-path event kinds (Env.return_event flattened to ints). *)
let ev_ack = 0
let ev_loss = 1

type t = {
  cfgs : Env.config array;
  n : int;
  mutable now_ms : int;
  (* trace families: distinct (trace, mtu) pairs; [family.(i)] indexes
     [fam_trace]/[fam_mtu] *)
  fam_trace : Trace.t array;
  fam_mtu : int array;
  family : int array;
  (* per-flow scalar state, flat *)
  min_rtt : int array;
  buffer : int array;
  random_loss : float array;
  jitter : int array;
  reorder_prob : float array;
  reorder_ms : int array;
  cwnd : float array;
  inflight : int array;
  next_seq : int array;
  sent : int array;
  delivered : int array;
  dropped : int array;
  credit : float array;
  capacity_pkts : float array;
  qdelay_sum_ms : float array;
  last_scheduled : int array;
  (* bottleneck queue: per-flow fixed-capacity ring of (seq, sent_ms);
     capacity = buffer_pkts, the droptail bound *)
  q_seq : int array array;
  q_sent : int array array;
  q_head : int array;
  q_len : int array;
  (* return path: per-flow growable ring of (arrival, kind, seq,
     sent_ms); the outer slots are replaced on growth *)
  r_arrival : int array array;
  r_kind : int array array;
  r_seq : int array array;
  r_sent : int array array;
  r_head : int array;
  r_len : int array;
  rng : Prng.t array;
}

let create cfgs =
  let n = Array.length cfgs in
  if n = 0 then invalid_arg "Fleet.create: no links";
  Array.iter
    (fun (cfg : Env.config) ->
      if cfg.min_rtt_ms < 2 then invalid_arg "Fleet.create: min_rtt_ms";
      if cfg.buffer_pkts < 1 then invalid_arg "Fleet.create: buffer_pkts";
      if cfg.mtu_bytes <= 0 then invalid_arg "Fleet.create: mtu_bytes";
      if cfg.initial_cwnd < 1. then invalid_arg "Fleet.create: initial_cwnd";
      if cfg.impairments.random_loss < 0. || cfg.impairments.random_loss >= 1.
      then invalid_arg "Fleet.create: random_loss";
      if cfg.impairments.ack_jitter_ms < 0 then
        invalid_arg "Fleet.create: ack_jitter_ms";
      if cfg.impairments.reorder_prob < 0. || cfg.impairments.reorder_prob >= 1.
      then invalid_arg "Fleet.create: reorder_prob";
      if cfg.impairments.reorder_ms < 0 then
        invalid_arg "Fleet.create: reorder_ms")
    cfgs;
  (* Dedup trace families by physical equality on the trace (plus mtu,
     which scales the packets-per-ms conversion). *)
  let fams = ref [] (* reversed (trace, mtu) list *) and nfam = ref 0 in
  let family =
    Array.map
      (fun (cfg : Env.config) ->
        let rec find k = function
          | [] -> None
          | (tr, mtu) :: tl ->
              if tr == cfg.trace && mtu = cfg.mtu_bytes then Some (k - 1)
              else find (k - 1) tl
        in
        match find !nfam !fams with
        | Some k -> k
        | None ->
            fams := (cfg.trace, cfg.mtu_bytes) :: !fams;
            incr nfam;
            !nfam - 1)
      cfgs
  in
  let fam_arr = Array.of_list (List.rev !fams) in
  {
    cfgs;
    n;
    now_ms = 0;
    fam_trace = Array.map fst fam_arr;
    fam_mtu = Array.map snd fam_arr;
    family;
    min_rtt = Array.map (fun (c : Env.config) -> c.min_rtt_ms) cfgs;
    buffer = Array.map (fun (c : Env.config) -> c.buffer_pkts) cfgs;
    random_loss =
      Array.map (fun (c : Env.config) -> c.impairments.random_loss) cfgs;
    jitter =
      Array.map (fun (c : Env.config) -> c.impairments.ack_jitter_ms) cfgs;
    reorder_prob =
      Array.map (fun (c : Env.config) -> c.impairments.reorder_prob) cfgs;
    reorder_ms =
      Array.map (fun (c : Env.config) -> c.impairments.reorder_ms) cfgs;
    cwnd = Array.map (fun (c : Env.config) -> c.initial_cwnd) cfgs;
    inflight = Array.make n 0;
    next_seq = Array.make n 0;
    sent = Array.make n 0;
    delivered = Array.make n 0;
    dropped = Array.make n 0;
    credit = Array.make n 0.;
    capacity_pkts = Array.make n 0.;
    qdelay_sum_ms = Array.make n 0.;
    last_scheduled = Array.make n 0;
    q_seq = Array.map (fun (c : Env.config) -> Array.make c.buffer_pkts 0) cfgs;
    q_sent = Array.map (fun (c : Env.config) -> Array.make c.buffer_pkts 0) cfgs;
    q_head = Array.make n 0;
    q_len = Array.make n 0;
    r_arrival = Array.init n (fun _ -> Array.make 16 0);
    r_kind = Array.init n (fun _ -> Array.make 16 0);
    r_seq = Array.init n (fun _ -> Array.make 16 0);
    r_sent = Array.init n (fun _ -> Array.make 16 0);
    r_head = Array.make n 0;
    r_len = Array.make n 0;
    rng = Array.map (fun (c : Env.config) -> Prng.create c.impairments.seed) cfgs;
  }

let flows t = t.n
let now_ms t = t.now_ms
let config t ~flow = t.cfgs.(flow)
let cwnd t ~flow = t.cwnd.(flow)
let set_cwnd t ~flow w = t.cwnd.(flow) <- Float.max 1. w
let inflight t ~flow = t.inflight.(flow)
let queue_len t ~flow = t.q_len.(flow)
let sent t ~flow = t.sent.(flow)
let delivered t ~flow = t.delivered.(flow)
let dropped t ~flow = t.dropped.(flow)
let capacity_pkts t ~flow = t.capacity_pkts.(flow)

(* ------------------------------------------------------------------ *)
(* Return-path ring *)

let ret_push t i arrival kind seq sent_ms =
  let cap = Array.length t.r_arrival.(i) in
  if t.r_len.(i) = cap then begin
    (* Grow ×2, unrolling the ring to offset 0 (order preserved). *)
    let ncap = 2 * cap in
    let head = t.r_head.(i) and len = t.r_len.(i) in
    let grow src =
      let dst = Array.make ncap 0 in
      for k = 0 to len - 1 do
        dst.(k) <- src.((head + k) mod cap)
      done;
      dst
    in
    t.r_arrival.(i) <- grow t.r_arrival.(i);
    t.r_kind.(i) <- grow t.r_kind.(i);
    t.r_seq.(i) <- grow t.r_seq.(i);
    t.r_sent.(i) <- grow t.r_sent.(i);
    t.r_head.(i) <- 0
  end;
  let cap = Array.length t.r_arrival.(i) in
  let tail = (t.r_head.(i) + t.r_len.(i)) mod cap in
  t.r_arrival.(i).(tail) <- arrival;
  t.r_kind.(i).(tail) <- kind;
  t.r_seq.(i).(tail) <- seq;
  t.r_sent.(i).(tail) <- sent_ms;
  t.r_len.(i) <- t.r_len.(i) + 1

(* Mirror of [Env.schedule]: O(1) watermark append in the jitter-free
   case; under jitter, rebuild in exactly the order Env produces (the
   new event consed ahead of the FIFO contents, then stable-sorted by
   arrival — the watermark itself is left untouched, as in Env). *)
let schedule t i arrival kind seq sent_ms =
  if arrival >= t.last_scheduled.(i) then begin
    t.last_scheduled.(i) <- arrival;
    ret_push t i arrival kind seq sent_ms
  end
  else begin
    let len = t.r_len.(i) and head = t.r_head.(i) in
    let cap = Array.length t.r_arrival.(i) in
    let existing =
      List.init len (fun k ->
          let p = (head + k) mod cap in
          (t.r_arrival.(i).(p), t.r_kind.(i).(p), t.r_seq.(i).(p),
           t.r_sent.(i).(p)))
    in
    let sorted =
      List.stable_sort
        (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b)
        ((arrival, kind, seq, sent_ms) :: existing)
    in
    t.r_head.(i) <- 0;
    t.r_len.(i) <- 0;
    List.iter (fun (a, k, s, m) -> ret_push t i a k s m) sorted
  end

(* ------------------------------------------------------------------ *)
(* One millisecond of one flow — the three phases of [Env.tick] *)

let process_return_path t (handlers : Env.handlers array) i ~now =
  let continue = ref true in
  while !continue && t.r_len.(i) > 0 do
    let head = t.r_head.(i) in
    let arrival = t.r_arrival.(i).(head) in
    if arrival > now then continue := false
    else begin
      let kind = t.r_kind.(i).(head) in
      let seq = t.r_seq.(i).(head) and sent_ms = t.r_sent.(i).(head) in
      let cap = Array.length t.r_arrival.(i) in
      t.r_head.(i) <- (head + 1) mod cap;
      t.r_len.(i) <- t.r_len.(i) - 1;
      if kind = ev_ack then begin
        t.inflight.(i) <- max 0 (t.inflight.(i) - 1);
        t.delivered.(i) <- t.delivered.(i) + 1;
        let rtt = now - sent_ms in
        (* Running queueing-delay sum in ack order: dividing by the
           delivered count reproduces [Env.avg_qdelay_ms]'s
           fold-over-samples bitwise. *)
        t.qdelay_sum_ms.(i) <-
          t.qdelay_sum_ms.(i)
          +. Float.max 0. (float_of_int rtt -. float_of_int t.min_rtt.(i));
        handlers.(i).Env.on_ack
          { Env.now_ms = now; seq; rtt_ms = rtt; delivered = t.delivered.(i) }
      end
      else begin
        t.inflight.(i) <- max 0 (t.inflight.(i) - 1);
        handlers.(i).Env.on_loss ~now_ms:now
      end
    end
  done

let sender_fill t i ~now =
  let window = max 1 (int_of_float (Float.floor t.cwnd.(i))) in
  while t.inflight.(i) < window do
    let seq = t.next_seq.(i) in
    t.next_seq.(i) <- seq + 1;
    t.sent.(i) <- t.sent.(i) + 1;
    t.inflight.(i) <- t.inflight.(i) + 1;
    if t.q_len.(i) < t.buffer.(i) then begin
      let cap = t.buffer.(i) in
      let tail = (t.q_head.(i) + t.q_len.(i)) mod cap in
      t.q_seq.(i).(tail) <- seq;
      t.q_sent.(i).(tail) <- now;
      t.q_len.(i) <- t.q_len.(i) + 1
    end
    else begin
      t.dropped.(i) <- t.dropped.(i) + 1;
      schedule t i (now + t.min_rtt.(i)) ev_loss 0 0
    end
  done

let drain_bottleneck t i ~now ~ppms =
  t.capacity_pkts.(i) <- t.capacity_pkts.(i) +. ppms;
  t.credit.(i) <- t.credit.(i) +. ppms;
  let opportunities = int_of_float (Float.floor t.credit.(i)) in
  t.credit.(i) <- t.credit.(i) -. float_of_int opportunities;
  let used = min opportunities t.q_len.(i) in
  for _ = 1 to used do
    let cap = t.buffer.(i) in
    let head = t.q_head.(i) in
    let seq = t.q_seq.(i).(head) and sent_ms = t.q_sent.(i).(head) in
    t.q_head.(i) <- (head + 1) mod cap;
    t.q_len.(i) <- t.q_len.(i) - 1;
    if t.random_loss.(i) > 0. && Prng.float t.rng.(i) 1. < t.random_loss.(i)
    then begin
      t.dropped.(i) <- t.dropped.(i) + 1;
      schedule t i (now + t.min_rtt.(i)) ev_loss 0 0
    end
    else begin
      let jitter =
        if t.jitter.(i) = 0 then 0 else Prng.int t.rng.(i) (t.jitter.(i) + 1)
      in
      (* Same gated draw order as [Env.drain_bottleneck]: jitter, then
         reordering — the per-flow PRNG streams stay aligned bitwise. *)
      let reorder =
        if
          t.reorder_prob.(i) > 0.
          && Prng.float t.rng.(i) 1. < t.reorder_prob.(i)
        then t.reorder_ms.(i)
        else 0
      in
      schedule t i (now + t.min_rtt.(i) + jitter + reorder) ev_ack seq sent_ms
    end
  done

let tick_flow t handlers i ~now ~ppms =
  process_return_path t handlers i ~now;
  (* Fill before draining (Mahimahi semantics), as in [Env.tick]. *)
  sender_fill t i ~now;
  drain_bottleneck t i ~now ~ppms

(* ------------------------------------------------------------------ *)
(* Fleet driver *)

(* Below this much flow·ms work, chunk setup costs more than it saves. *)
let par_threshold = 16_384

(* Chunk choice is a pure function of the workload shape — never of
   scheduling — and the per-flow stepping itself is flow-local, so any
   chunking (including none) produces identical bits. *)
let plan_chunk ~n ~ms =
  if Pool.in_task () then None
  else if Pool.domains (Pool.default ()) < 2 then None
  else if n * ms < par_threshold then None
  else Some (max 1 (8_192 / max 1 ms))

let run ?after_tick t handlers ~ms =
  if Array.length handlers <> t.n then
    invalid_arg "Fleet.run: one handlers record per flow";
  if ms < 0 then invalid_arg "Fleet.run: ms";
  if ms > 0 then begin
    let now0 = t.now_ms in
    (* Shared read-only packets-per-ms table, one row per trace family:
       row f, entry k is the family's delivery opportunities in
       millisecond [now0 + 1 + k]. *)
    let ppms_tab =
      Array.init (Array.length t.fam_trace) (fun f ->
          let tr = t.fam_trace.(f) and mtu = t.fam_mtu.(f) in
          Array.init ms (fun k ->
              Trace.packets_per_ms ~mtu_bytes:mtu tr (now0 + 1 + k)))
    in
    let step_range ~lo ~hi =
      for i = lo to hi - 1 do
        let tab = ppms_tab.(t.family.(i)) in
        for k = 0 to ms - 1 do
          tick_flow t handlers i ~now:(now0 + k + 1) ~ppms:tab.(k);
          match after_tick with Some f -> f i | None -> ()
        done
      done
    in
    (match plan_chunk ~n:t.n ~ms with
    | Some chunk -> Pool.parallel_for_chunks ~chunk t.n step_range
    | None -> step_range ~lo:0 ~hi:t.n);
    t.now_ms <- now0 + ms
  end

let tick ?after_tick t handlers = run ?after_tick t handlers ~ms:1

(* ------------------------------------------------------------------ *)
(* Per-flow metrics (matching Env's definitions bitwise) *)

let utilization t ~flow =
  if t.capacity_pkts.(flow) <= 0. then 0.
  else Float.min 1. (float_of_int t.delivered.(flow) /. t.capacity_pkts.(flow))

let loss_rate t ~flow =
  if t.sent.(flow) = 0 then 0.
  else float_of_int t.dropped.(flow) /. float_of_int t.sent.(flow)

let avg_qdelay_ms t ~flow =
  if t.delivered.(flow) = 0 then 0.
  else t.qdelay_sum_ms.(flow) /. float_of_int t.delivered.(flow)

let throughput_mbps t ~flow =
  if t.now_ms = 0 then 0.
  else
    float_of_int t.delivered.(flow)
    *. float_of_int t.cfgs.(flow).Env.mtu_bytes
    *. 8. /. 1e6
    /. (float_of_int t.now_ms /. 1000.)
