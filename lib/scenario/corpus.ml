module Atomic_file = Canopy_util.Atomic_file

type record = {
  rec_name : string;
  objective : string;
  score : float;
  search_seed : int;
  scn_seed : int;
  vector : float array;
}

let of_search ~search_seed objective (c : Search.candidate) =
  {
    rec_name =
      Printf.sprintf "adv-%s-%d" (Search.objective_name objective) c.scn_seed;
    objective = Search.objective_name objective;
    score = c.score;
    search_seed;
    scn_seed = c.scn_seed;
    vector = c.vector;
  }

let compiled ~duration_ms r =
  Space.compile ~name:r.rec_name ~duration_ms ~seed:r.scn_seed
    (Space.of_vector r.vector)

let trace ~duration_ms r = (compiled ~duration_ms r).Space.trace

let magic = "canopy-scenario v1"

(* Floats as hex literals so save→load round-trips bit-exactly. *)
let to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (magic ^ "\n");
  Printf.bprintf buf "name %s\n" r.rec_name;
  Printf.bprintf buf "objective %s\n" r.objective;
  Printf.bprintf buf "score %h\n" r.score;
  Printf.bprintf buf "search_seed %d\n" r.search_seed;
  Printf.bprintf buf "scn_seed %d\n" r.scn_seed;
  Array.iteri
    (fun i d ->
      Printf.bprintf buf "dim %s %h\n" d.Space.dim_name r.vector.(i))
    Space.dims;
  Buffer.contents buf

let save ~dir ~duration_ms r =
  if Array.length r.vector <> Space.n_dims then
    invalid_arg "Corpus.save: vector length";
  Atomic_file.mkdir_p dir;
  let path = Filename.concat dir (r.rec_name ^ ".scn") in
  Atomic_file.write path (to_string r);
  Canopy_trace.Trace.save ~mtu_bytes:1500 (trace ~duration_ms r)
    (Filename.concat dir (r.rec_name ^ ".trace"));
  path

let parse ~path contents =
  let fail fmt =
    Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt
  in
  let lines =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | m :: _ when m = magic -> ()
  | _ -> fail "not a %s file" magic);
  let fields = Hashtbl.create 16 in
  let dims_tbl = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      if i > 0 then
        match String.split_on_char ' ' line with
        | [ "dim"; name; v ] -> Hashtbl.replace dims_tbl name v
        | [ key; v ] -> Hashtbl.replace fields key v
        | _ -> fail "malformed line %S" line)
    lines;
  let field key =
    match Hashtbl.find_opt fields key with
    | Some v -> v
    | None -> fail "missing field %S" key
  in
  let float_field v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> fail "bad float %S" v
  in
  let int_field key =
    match int_of_string_opt (field key) with
    | Some i -> i
    | None -> fail "bad int in %S" key
  in
  let vector =
    Array.map
      (fun d ->
        match Hashtbl.find_opt dims_tbl d.Space.dim_name with
        | Some v -> float_field v
        | None -> fail "missing dim %S" d.Space.dim_name)
      Space.dims
  in
  {
    rec_name = field "name";
    objective = field "objective";
    score = float_field (field "score");
    search_seed = int_field "search_seed";
    scn_seed = int_field "scn_seed";
    vector;
  }

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse ~path (really_input_string ic (in_channel_length ic)))

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scn")
    |> List.sort String.compare
    |> List.map (fun f -> load_file (Filename.concat dir f))

let env_config ?(history = 5) ~duration_ms r =
  let c = compiled ~duration_ms r in
  let buffer_pkts =
    Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace:c.Space.trace
      ~min_rtt_ms:c.Space.c_min_rtt_ms
  in
  {
    (Canopy_orca.Agent_env.default_config ~trace:c.Space.trace
       ~min_rtt_ms:c.Space.c_min_rtt_ms ~buffer_pkts ~duration_ms)
    with
    Canopy_orca.Agent_env.history;
    impairments = c.Space.impairments;
  }
