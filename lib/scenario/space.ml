module Prng = Canopy_util.Prng
module Trace = Canopy_trace.Trace
module Env = Canopy_netsim.Env

type params = {
  base_mbps : float;
  step_ratio : float;
  step_period_ms : float;
  fade_depth : float;
  fade_period_ms : float;
  min_rtt_ms : float;
  jitter_ms : float;
  loss : float;
  reorder_prob : float;
  reorder_ms : float;
  cross_frac : float;
  cross_on_ms : float;
  cross_off_ms : float;
  arrival_spread_ms : float;
}

type dim = { dim_name : string; lo : float; hi : float }

(* The box. Bounds are chosen so every compiled scenario is a valid
   simulator configuration (Env.create validation passes for any point)
   while still covering conditions far outside the 22-trace suite. *)
let dims =
  [|
    { dim_name = "base_mbps"; lo = 4.; hi = 160. };
    { dim_name = "step_ratio"; lo = 0.05; hi = 1. };
    { dim_name = "step_period_ms"; lo = 200.; hi = 8_000. };
    { dim_name = "fade_depth"; lo = 0.; hi = 0.9 };
    { dim_name = "fade_period_ms"; lo = 400.; hi = 10_000. };
    { dim_name = "min_rtt_ms"; lo = 10.; hi = 150. };
    { dim_name = "jitter_ms"; lo = 0.; hi = 30. };
    { dim_name = "loss"; lo = 0.; hi = 0.08 };
    { dim_name = "reorder_prob"; lo = 0.; hi = 0.5 };
    { dim_name = "reorder_ms"; lo = 0.; hi = 40. };
    { dim_name = "cross_frac"; lo = 0.; hi = 0.8 };
    { dim_name = "cross_on_ms"; lo = 100.; hi = 4_000. };
    { dim_name = "cross_off_ms"; lo = 100.; hi = 4_000. };
    { dim_name = "arrival_spread_ms"; lo = 0.; hi = 4_000. };
  |]

let n_dims = Array.length dims

let clamp v =
  if Array.length v <> n_dims then invalid_arg "Space.clamp: vector length";
  Array.mapi
    (fun i x ->
      let d = dims.(i) in
      Float.min d.hi (Float.max d.lo x))
    v

let of_vector v =
  let v = clamp v in
  {
    base_mbps = v.(0);
    step_ratio = v.(1);
    step_period_ms = v.(2);
    fade_depth = v.(3);
    fade_period_ms = v.(4);
    min_rtt_ms = v.(5);
    jitter_ms = v.(6);
    loss = v.(7);
    reorder_prob = v.(8);
    reorder_ms = v.(9);
    cross_frac = v.(10);
    cross_on_ms = v.(11);
    cross_off_ms = v.(12);
    arrival_spread_ms = v.(13);
  }

let to_vector p =
  [|
    p.base_mbps;
    p.step_ratio;
    p.step_period_ms;
    p.fade_depth;
    p.fade_period_ms;
    p.min_rtt_ms;
    p.jitter_ms;
    p.loss;
    p.reorder_prob;
    p.reorder_ms;
    p.cross_frac;
    p.cross_on_ms;
    p.cross_off_ms;
    p.arrival_spread_ms;
  |]

let sample rng = Array.map (fun d -> Prng.uniform rng d.lo d.hi) dims

(* Every caller clamps to the (finite) box bounds first, so the value is
   always in range for the conversion. *)
let round_pos x =
  max 0 (int_of_float (Float.floor (x +. 0.5))) (* lint-ignore: int-of-float *)

type compiled = {
  trace : Trace.t;
  impairments : Env.impairments;
  c_min_rtt_ms : int;
  arrivals : int array;
}

let n_cross_flows = 2
let ms_per_sample = 20

let compile ?name ~duration_ms ~seed p =
  if duration_ms <= 0 then invalid_arg "Space.compile: duration_ms";
  let p = of_vector (to_vector p) (* re-clamp hand-built records *) in
  let name =
    match name with Some n -> n | None -> Printf.sprintf "adv-%d" seed
  in
  (* Independent child streams, derived before any draw so the trace
     wobble and the arrival offsets never alias (PR-5 style). *)
  let master = Prng.create seed in
  let wobble_rng = Prng.split master 0 in
  let arrival_rng = Prng.split master 1 in
  let n_samples = max 1 (duration_ms / ms_per_sample) in
  let two_pi = 8. *. Float.atan 1. in
  let mbps =
    Array.init n_samples (fun s ->
        let t = float_of_int (s * ms_per_sample) in
        let step =
          if Float.rem t (2. *. p.step_period_ms) < p.step_period_ms then 1.
          else p.step_ratio
        in
        let fade =
          1.
          -. (p.fade_depth *. 0.5
             *. (1. -. Float.cos (two_pi *. t /. p.fade_period_ms)))
        in
        let cross =
          if Float.rem t (p.cross_on_ms +. p.cross_off_ms) < p.cross_on_ms
          then p.cross_frac *. p.base_mbps
          else 0.
        in
        let wobble = Prng.uniform wobble_rng 0.95 1.05 in
        Float.max 0. ((p.base_mbps *. step *. fade *. wobble) -. cross))
  in
  let trace = Trace.of_mbps_array ~name ~ms_per_sample mbps in
  let impairments =
    {
      Env.random_loss = p.loss;
      ack_jitter_ms = round_pos p.jitter_ms;
      reorder_prob = p.reorder_prob;
      reorder_ms = round_pos p.reorder_ms;
      seed;
    }
  in
  let spread = round_pos p.arrival_spread_ms in
  let arrivals =
    Array.init n_cross_flows (fun _ ->
        if spread = 0 then 0 else Prng.int arrival_rng (spread + 1))
  in
  { trace; impairments; c_min_rtt_ms = round_pos p.min_rtt_ms; arrivals }

let pp_params ppf p =
  let v = to_vector p in
  Array.iteri
    (fun i d -> Format.fprintf ppf "%s=%.4g " d.dim_name v.(i))
    dims
