(** The parameterized scenario space the adversarial engine searches.

    A scenario is a point in a fixed-dimension box: bandwidth step and
    fade schedules, delay jitter, non-congestive loss, packet
    reordering, bursty cross-traffic, and competing-flow arrival times.
    {!compile} renders a point deterministically (all stochastic
    details drawn from [Prng.split] child streams of the scenario seed)
    into a bandwidth {!Canopy_trace.Trace.t}, an
    {!Canopy_netsim.Env.impairments} record and the arrival offsets of
    the competing flows — everything the evaluation objectives in
    {!Search} need. The same [(params, seed)] pair always compiles to
    the same scenario, bit for bit, which is what makes archived worst
    cases replayable. *)

type params = {
  base_mbps : float;  (** baseline link capacity *)
  step_ratio : float;  (** low/high ratio of the bandwidth step schedule *)
  step_period_ms : float;  (** half-period of the step schedule *)
  fade_depth : float;  (** capacity fraction removed at the fade bottom *)
  fade_period_ms : float;  (** period of the sinusoidal fade *)
  min_rtt_ms : float;  (** two-way propagation delay *)
  jitter_ms : float;  (** max extra ACK return delay *)
  loss : float;  (** non-congestive loss probability *)
  reorder_prob : float;  (** packet reordering probability *)
  reorder_ms : float;  (** hold-back applied to reordered feedback *)
  cross_frac : float;  (** capacity fraction stolen during cross bursts *)
  cross_on_ms : float;  (** cross-traffic burst duration *)
  cross_off_ms : float;  (** gap between cross-traffic bursts *)
  arrival_spread_ms : float;
      (** window over which competing flows' start times are drawn *)
}

type dim = {
  dim_name : string;
  lo : float;
  hi : float;  (** inclusive box bounds of this coordinate *)
}

val dims : dim array
(** The box, in the fixed coordinate order used by {!of_vector} /
    {!to_vector} and by the corpus file format. *)

val n_dims : int

val of_vector : float array -> params
(** Decode a search vector, clamping every coordinate into its box
    bounds. Raises [Invalid_argument] on a wrong-length vector. *)

val to_vector : params -> float array

val clamp : float array -> float array
(** Fresh vector with every coordinate clamped into its bounds. *)

val sample : Canopy_util.Prng.t -> float array
(** Uniform draw from the box. *)

val round_pos : float -> int
(** Nearest non-negative integer — the single float→int conversion the
    compiler uses for millisecond knobs (inputs are clamped to finite
    box bounds first). *)

type compiled = {
  trace : Canopy_trace.Trace.t;
  impairments : Canopy_netsim.Env.impairments;
  c_min_rtt_ms : int;
  arrivals : int array;
      (** start times of the {!n_cross_flows} competing flows *)
}

val n_cross_flows : int
(** Competing TCP flows in the coexistence mix (2). *)

val compile : ?name:string -> duration_ms:int -> seed:int -> params -> compiled
(** Render the scenario. The trace samples capacity every 20 ms from
    the step × fade × cross-burst schedules plus a small per-sample
    multiplicative wobble; the wobble and the competing-flow arrivals
    are drawn from independent [Prng.split] children of [seed], so the
    result is a pure function of [(params, duration_ms, seed)]. The
    default [name] is ["adv-<seed>"], putting compiled traces in the
    suite's adversarial category. *)

val pp_params : Format.formatter -> params -> unit
