(** The archived worst-case corpus (`_artifacts/scenarios/`).

    Each record is one discovered worst-case scenario: the search
    vector, the scenario seed it compiled with, and the objective score
    the searching policy achieved. Records round-trip exactly (floats
    are stored as hex literals), so an archived scenario replays bit
    for bit; {!save} also renders the compiled trace next to the record
    as a plain Mahimahi file, which is what {!Canopy_trace.Suite} and
    `tracegen` consume. All writes are atomic. *)

type record = {
  rec_name : string;  (** file stem, e.g. ["adv-utility-000042"] *)
  objective : string;  (** {!Search.objective_name} of the search *)
  score : float;  (** the policy-goodness score at discovery time *)
  search_seed : int;  (** seed of the search that found it *)
  scn_seed : int;  (** seed {!Space.compile} must be called with *)
  vector : float array;  (** the scenario point, {!Space.dims} order *)
}

val of_search : search_seed:int -> Search.objective -> Search.candidate -> record
(** Name the candidate ["adv-<objective>-<scn_seed>"] and package it. *)

val save : dir:string -> duration_ms:int -> record -> string
(** Write [<dir>/<rec_name>.scn] (the record) and [<dir>/<rec_name>.trace]
    (the compiled trace, Mahimahi format, rendered at [duration_ms]),
    creating [dir] as needed; both atomically. Returns the record path. *)

val load_file : string -> record
(** Raises [Failure] on malformed or version-mismatched input. *)

val load_dir : string -> record list
(** All [*.scn] records under the directory, sorted by file name;
    [[]] when the directory does not exist. *)

val compiled : duration_ms:int -> record -> Space.compiled
(** Recompile the archived scenario — bit-identical to what the search
    evaluated when [duration_ms] matches the search configuration. *)

val trace : duration_ms:int -> record -> Canopy_trace.Trace.t
(** Just the bandwidth trace, named after the record. *)

val env_config :
  ?history:int -> duration_ms:int -> record -> Canopy_orca.Agent_env.config
(** A training-pool entry for {!Canopy.Trainer}: the compiled trace and
    impairments behind a 2-BDP buffer, default history 5 — append these
    to [Trainer.env_pool] to harden a policy against the corpus. *)
