module Prng = Canopy_util.Prng
module Pool = Canopy_util.Pool
module Eval = Canopy.Eval
module Mlp = Canopy_nn.Mlp

type objective =
  | Min_utility
  | Max_p95_delay
  | Max_violation of Canopy.Property.t * int
  | Min_jain

let objective_name = function
  | Min_utility -> "utility"
  | Max_p95_delay -> "p95"
  | Max_violation _ -> "violation"
  | Min_jain -> "jain"

let objective_of_name = function
  | "utility" -> Min_utility
  | "p95" -> Max_p95_delay
  | "violation" -> Max_violation (Canopy.Property.performance (), 10)
  | "jain" -> Min_jain
  | other -> failwith (Printf.sprintf "unknown objective %S" other)

(* Scalar policy goodness for the utility objective: utilization,
   discounted by the p95 queueing-delay-to-minRTT ratio and the loss
   rate. Monotone in each metric, so minimizing it pushes the search
   toward scenarios that are genuinely bad for the policy rather than
   merely low-bandwidth. *)
let utility ~min_rtt_ms (r : Eval.result) =
  r.Eval.utilization -. r.Eval.loss_rate
  -. (r.Eval.p95_qdelay_ms /. (2. *. float_of_int min_rtt_ms))

type config = {
  seed : int;
  duration_ms : int;
  history : int;
  random_candidates : int;
  cem_rounds : int;
  cem_batch : int;
  elite_frac : float;
}

let default_config ?(seed = 1) () =
  {
    seed;
    duration_ms = 8_000;
    history = 5;
    random_candidates = 24;
    cem_rounds = 3;
    cem_batch = 16;
    elite_frac = 0.25;
  }

let smoke_config ?(seed = 1) () =
  {
    seed;
    duration_ms = 2_000;
    history = 5;
    random_candidates = 16;
    cem_rounds = 2;
    cem_batch = 10;
    elite_frac = 0.25;
  }

type candidate = {
  idx : int;
  vector : float array;
  params : Space.params;
  scn_seed : int;
  score : float;
}

type result = {
  worst : candidate;
  evaluated : int;
  round_best : float list;
}

let score_compiled ?refute_rng ~actor ~history ~duration_ms objective
    (c : Space.compiled) =
  let link =
    Eval.link ~min_rtt_ms:c.Space.c_min_rtt_ms ~bdp:2. ~duration_ms
      c.Space.trace
  in
  match objective with
  | Min_utility ->
      let r, _ =
        Eval.eval_policy ~impairments:c.Space.impairments ~policy:(`Mlp actor)
          ~history link
      in
      utility ~min_rtt_ms:c.Space.c_min_rtt_ms r
  | Max_p95_delay ->
      let r, _ =
        Eval.eval_policy ~impairments:c.Space.impairments ~policy:(`Mlp actor)
          ~history link
      in
      -.r.Eval.p95_qdelay_ms
  | Max_violation (property, n) ->
      let r, _ =
        Eval.eval_policy ~impairments:c.Space.impairments
          ~certificate:(property, n) ?refute_rng ~policy:(`Mlp actor) ~history
          link
      in
      (* Violation pressure = fraction of uncertified components with a
         concrete counterexample; 0 when everything certifies. *)
      -.Option.value ~default:0. r.Eval.refuted
  | Min_jain ->
      let flows =
        Eval.Coexist_canopy (`Mlp actor)
        :: List.init Space.n_cross_flows (fun _ ->
               Eval.Coexist_tcp ("cubic", Eval.cubic_scheme))
      in
      let arrivals = Array.append [| 0 |] c.Space.arrivals in
      let r = Eval.eval_coexist ~history ~arrivals ~flows link in
      r.Eval.jain

(* Lower score first; global evaluation index breaks exact ties so the
   ordering is a pure function of the candidate set. *)
let cmp_candidate a b =
  let c = Float.compare a.score b.score in
  if c <> 0 then c else Int.compare a.idx b.idx

let search ?pool cfg ~actor objective =
  if cfg.random_candidates < 1 then invalid_arg "Search.search: candidates";
  if cfg.cem_batch < 1 then invalid_arg "Search.search: cem_batch";
  if cfg.elite_frac <= 0. || cfg.elite_frac > 1. then
    invalid_arg "Search.search: elite_frac";
  let master = Prng.create cfg.seed in
  (* Child 0 drives all candidate sampling; children 1.. are per-
     candidate streams (scenario seed + refutation), derived on the main
     thread by global index before any fan-out. *)
  let sample_rng = Prng.split master 0 in
  let next_idx = ref 1 in
  let eval_vectors vectors =
    let prepared =
      List.map
        (fun v ->
          let idx = !next_idx in
          incr next_idx;
          let child = Prng.split master idx in
          let scn_seed = Int64.to_int (Prng.bits64 child) land 0x3FFFFFFF in
          (idx, v, scn_seed, child))
        vectors
    in
    Pool.map_list ?pool
      (fun (idx, v, scn_seed, refute_rng) ->
        let params = Space.of_vector v in
        let compiled =
          Space.compile ~duration_ms:cfg.duration_ms ~seed:scn_seed params
        in
        let score =
          score_compiled ~refute_rng ~actor ~history:cfg.history
            ~duration_ms:cfg.duration_ms objective compiled
        in
        { idx; vector = Space.clamp v; params; scn_seed; score })
      prepared
  in
  let random_vectors =
    List.init cfg.random_candidates (fun _ -> Space.sample sample_rng)
  in
  let all = ref (eval_vectors random_vectors) in
  let best () = List.hd (List.sort cmp_candidate !all) in
  let round_best = ref [ (best ()).score ] in
  for _round = 1 to cfg.cem_rounds do
    let sorted = List.sort cmp_candidate !all in
    let k =
      max 2
        (Space.round_pos (cfg.elite_frac *. float_of_int (List.length sorted)))
    in
    let elites = List.filteri (fun i _ -> i < k) sorted in
    let ne = float_of_int (List.length elites) in
    (* Per-coordinate elite mean and stddev, with a floor of 2% of the
       box width so the sampler never collapses to a point. *)
    let mean = Array.make Space.n_dims 0. in
    List.iter
      (fun c -> Array.iteri (fun d x -> mean.(d) <- mean.(d) +. x) c.vector)
      elites;
    Array.iteri (fun d s -> mean.(d) <- s /. ne) mean;
    let sigma = Array.make Space.n_dims 0. in
    List.iter
      (fun c ->
        Array.iteri
          (fun d x ->
            let dx = x -. mean.(d) in
            sigma.(d) <- sigma.(d) +. (dx *. dx))
          c.vector)
      elites;
    Array.iteri
      (fun d s ->
        let width = Space.dims.(d).Space.hi -. Space.dims.(d).Space.lo in
        sigma.(d) <- Float.max (Float.sqrt (s /. ne)) (0.02 *. width))
      sigma;
    let resampled =
      List.init cfg.cem_batch (fun _ ->
          Space.clamp
            (Array.init Space.n_dims (fun d ->
                 Prng.gaussian_scaled sample_rng ~mu:mean.(d) ~sigma:sigma.(d))))
    in
    all := !all @ eval_vectors resampled;
    round_best := (best ()).score :: !round_best
  done;
  {
    worst = best ();
    evaluated = List.length !all;
    round_best = List.rev !round_best;
  }

let suite_worst ?pool ~duration_ms ~history ~actor objective =
  let traces = Canopy_trace.Suite.all ~duration_ms () in
  let clean trace =
    {
      Space.trace;
      impairments = Canopy_netsim.Env.no_impairments;
      c_min_rtt_ms = 40;
      arrivals = Array.make Space.n_cross_flows 0;
    }
  in
  (* Refutation streams (used by Max_violation) are split by trace index
     before the fan-out, per the run_tasks contract. *)
  let master = Prng.create 0 in
  let tasks =
    List.mapi (fun i trace -> (Prng.split master i, trace)) traces
  in
  let scores =
    Pool.map_list ?pool
      (fun (refute_rng, trace) ->
        ( Canopy_trace.Trace.name trace,
          score_compiled ~refute_rng ~actor ~history ~duration_ms objective
            (clean trace) ))
      tasks
  in
  match scores with
  | [] -> invalid_arg "Search.suite_worst: empty suite"
  | first :: rest ->
      List.fold_left
        (fun (bn, bs) (n, s) -> if Float.compare s bs < 0 then (n, s) else (bn, bs))
        first rest
