(** Black-box worst-case search over the scenario space.

    A seeded random-exploration phase followed by CEM-style refinement
    (elite refit, per-coordinate Gaussian resampling clamped to the box)
    minimizes a policy-goodness objective: the minimizer is the worst
    scenario found for the policy. Candidate vectors, scenario seeds and
    refutation streams are all derived sequentially from one master
    [Prng] {i before} the pool fan-out, so a search is bit-reproducible
    from its seed at every domain count. *)

type objective =
  | Min_utility
      (** minimize {!utility} — utilization discounted by tail queueing
          delay and loss *)
  | Max_p95_delay  (** maximize p95 queueing delay *)
  | Max_violation of Canopy.Property.t * int
      (** maximize the refuted fraction of an [n]-component certificate
          computed at every step ({!Canopy.Certify} counters) *)
  | Min_jain
      (** minimize Jain's fairness index against
          {!Space.n_cross_flows} competing Cubic flows with searched
          arrival times *)

val objective_name : objective -> string
(** ["utility" | "p95" | "violation" | "jain"]. *)

val objective_of_name : string -> objective
(** Inverse of {!objective_name} with default property parameters for
    ["violation"]. Raises [Failure] on an unknown name. *)

val utility : min_rtt_ms:int -> Canopy.Eval.result -> float
(** [utilization − loss − p95_qdelay/(2·minRTT)]: the scalar
    "goodness" the [Min_utility] objective minimizes, also used to rank
    suite traces in {!suite_worst}. *)

type config = {
  seed : int;
  duration_ms : int;  (** episode length of every candidate evaluation *)
  history : int;  (** feature frames of the evaluated policy *)
  random_candidates : int;  (** exploration-phase evaluations *)
  cem_rounds : int;
  cem_batch : int;  (** evaluations per refinement round *)
  elite_frac : float;  (** fraction of all candidates refit each round *)
}

val default_config : ?seed:int -> unit -> config
(** seed 1, 8 s episodes, history 5, 24 random candidates, 3 CEM rounds
    of 16, elite fraction 0.25. *)

val smoke_config : ?seed:int -> unit -> config
(** Tiny budget for CI: 2 s episodes, 16 random candidates, 2 CEM
    rounds of 10. *)

type candidate = {
  idx : int;  (** global evaluation index (deterministic tie-break) *)
  vector : float array;
  params : Space.params;
  scn_seed : int;  (** the seed {!Space.compile} was called with *)
  score : float;  (** policy goodness; lower = worse for the policy *)
}

type result = {
  worst : candidate;
  evaluated : int;
  round_best : float list;
      (** best (lowest) score after the random phase and after each
          refinement round *)
}

val score_compiled :
  ?refute_rng:Canopy_util.Prng.t ->
  actor:Canopy_nn.Mlp.t ->
  history:int ->
  duration_ms:int ->
  objective ->
  Space.compiled ->
  float
(** Evaluate one compiled scenario under the objective (lower = worse
    for the policy). [refute_rng] feeds [Max_violation]'s counterexample
    search; omit it only for objectives that never refute. *)

val search :
  ?pool:Canopy_util.Pool.t ->
  config ->
  actor:Canopy_nn.Mlp.t ->
  objective ->
  result
(** Run the full search, fanning candidate evaluations out over the
    (default ambient) pool. Bit-reproducible from [config.seed]. *)

val suite_worst :
  ?pool:Canopy_util.Pool.t ->
  duration_ms:int ->
  history:int ->
  actor:Canopy_nn.Mlp.t ->
  objective ->
  string * float
(** Score every member of the fixed 22-trace suite under the same
    objective (clean links: no impairments, simultaneous arrivals) and
    return the worst (trace name, score) — the baseline the searched
    worst case must beat. *)
