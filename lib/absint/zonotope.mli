(** Zonotope (affine-forms) abstract domain — the "more complex domains"
    extension sketched in the paper's Section 8.

    A zonotope represents each dimension as an affine expression
    [c_i + Σ_k g_{k,i}·ε_k] over shared noise symbols [ε_k ∈ [-1,1]].
    Because the symbols are shared across dimensions, affine layers
    propagate {e exactly} (no |M| widening as in the box domain), which
    tightens certificates for networks whose layers partially cancel.
    Nonlinear activations use DeepZ-style sound linear relaxations, each
    introducing one fresh noise symbol per dimension. *)

open Canopy_tensor

type t

val of_box : Box.t -> t
(** One noise symbol per non-degenerate input dimension. *)

val of_point : Vec.t -> t
val dim : t -> int
val generators : t -> int
(** Number of live noise symbols. *)

val dimension : t -> int -> Interval.t
(** Interval concretization of one dimension. *)

val concretize : t -> Box.t
(** Tightest enclosing box. *)

val affine : Mat.t -> Vec.t -> t -> t
(** Exact image under [x ↦ M·x + b]. *)

val diag_affine : scale:Vec.t -> shift:Vec.t -> t -> t
(** Exact image under an element-wise affine map (inference batch norm). *)

val leaky_relu : slope:float -> t -> t
(** Sound relaxation; exact on dimensions whose interval does not
    straddle zero. *)

val relu : t -> t

val tanh : t -> t
(** Sound min-slope relaxation (DeepZ). *)

val propagate : Canopy_nn.Mlp.t -> t -> t
(** Propagate through a network's inference semantics (same layer set as
    {!Ibp.propagate}). *)

val output_interval : Canopy_nn.Mlp.t -> Box.t -> Interval.t
(** Drop-in replacement for {!Ibp.output_interval}: propagates a zonotope
    and returns its meet with the box-domain result (a reduced product),
    so the answer is sound and never looser than plain IBP. Raises
    [Invalid_argument] for networks with more than one output. *)

val propagate_anet : Anet.t -> t -> t
(** Propagate through the fused verifier IR: one exact {!affine} per
    stage followed by its activation relaxation. Same abstraction as
    {!propagate} — affine maps are exact on zonotopes, so fusing them
    changes results only by rounding. *)

val output_intervals_anet : Anet.t -> Box.t array -> Interval.t array
(** Batched {!output_interval} on the IR: the zonotope half runs per box
    (each box owns its noise symbols), the box-domain half of the reduced
    product comes from one {!Anet.output_intervals} call over the whole
    workload. *)
