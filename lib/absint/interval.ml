type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: nan";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let of_point x = make x x
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let midpoint t = 0.5 *. (t.lo +. t.hi)
let radius t = 0.5 *. (t.hi -. t.lo)
let contains t x = t.lo <= x && x <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let is_point t = t.lo = t.hi
let neg t = { lo = -.t.hi; hi = -.t.lo }
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }

(* Corner products with the zero-annihilation convention: IEEE gives
   0. *. infinity = nan, but for closed intervals a zero endpoint means
   the concrete factor can be exactly 0, whose product with any finite
   value of the other factor is 0 — so 0 is the correct bound. Without
   this, mul/scale on half-infinite operands poison both bounds with
   NaN and [make] rejects the result. *)
let bound_mul x y = if x = 0. || y = 0. then 0. else x *. y

let scale alpha t =
  if alpha = 0. then { lo = 0.; hi = 0. }
  else if alpha > 0. then { lo = alpha *. t.lo; hi = alpha *. t.hi }
  else { lo = alpha *. t.hi; hi = alpha *. t.lo }

let add_scalar c t = { lo = t.lo +. c; hi = t.hi +. c }

let mul a b =
  let p1 = bound_mul a.lo b.lo and p2 = bound_mul a.lo b.hi in
  let p3 = bound_mul a.hi b.lo and p4 = bound_mul a.hi b.hi in
  {
    lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
  }

let div_scalar t c =
  if c = 0. then invalid_arg "Interval.div_scalar: zero";
  scale (1. /. c) t

let monotone f t = make (f t.lo) (f t.hi)
let pow2 t = monotone Canopy_util.Mathx.pow2 t
let tanh t = monotone Float.tanh t
let relu t = monotone (fun x -> Float.max 0. x) t

let leaky_relu ~slope t =
  if slope < 0. || slope > 1. then invalid_arg "Interval.leaky_relu: slope";
  monotone (fun x -> if x >= 0. then x else slope *. x) t

let overlap_fraction ~target out =
  match intersect target out with
  | None -> 0.
  | Some inter ->
      if subset out target then 1.
      else if is_point out then 1. (* point on the boundary of target *)
      else width inter /. width out

let split t n =
  if n <= 0 then invalid_arg "Interval.split: n";
  let w = width t /. float_of_int n in
  List.init n (fun i ->
      let lo = t.lo +. (float_of_int i *. w) in
      let hi = if i = n - 1 then t.hi else lo +. w in
      make lo hi)

let sample rng t = Canopy_util.Prng.uniform rng t.lo t.hi

let equal ?(eps = 1e-12) a b =
  Canopy_util.Mathx.approx_equal ~eps a.lo b.lo
  && Canopy_util.Mathx.approx_equal ~eps a.hi b.hi

let pp ppf t = Format.fprintf ppf "[%.6g, %.6g]" t.lo t.hi
