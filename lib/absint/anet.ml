open Canopy_tensor
open Canopy_nn

type act = Linear | Leaky_relu of float | Relu | Tanh

type stage = {
  w : Mat.t;
  b : Vec.t;
  abs_w : Mat.t;
  act : act;
}

type t = {
  in_dim : int;
  out_dim : int;
  stages : stage list;
  source_generation : int;
}

let in_dim t = t.in_dim
let out_dim t = t.out_dim
let stages t = t.stages
let source_generation t = t.source_generation

(* ------------------------------------------------------------------ *)
(* Extraction: fold every run of affine layers (dense, inference-mode  *)
(* batch norm) into a single fused stage, flushed at each activation.  *)
(* ------------------------------------------------------------------ *)

(* The pending affine (w, b) is owned by the builder: compositions may
   mutate it freely, but a dense layer adopted with no pending prefix
   must be copied — the layer's arrays are mutable and live on in the
   network. *)
let adopt_dense pending (d : Layer.dense) =
  match pending with
  | None -> (Mat.copy d.w, Vec.copy d.b)
  | Some (w0, b0) ->
      (* (W·x + b) ∘ (W0·x + b0) = (W·W0)·x + (W·b0 + b) *)
      let w = Mat.mat_mul d.w w0 in
      let b = Mat.mat_vec d.w b0 in
      Vec.axpy ~alpha:1. ~x:d.b ~y:b;
      (w, b)

(* Inference-mode batch norm is x_i ↦ scale_i·x_i + shift_i with
   scale_i = γ_i/√(σ²_i + ε), shift_i = β_i − scale_i·μ_i — the same
   folding as [Ibp.propagate_layer] and [Layer.bn_affine]. Composing it
   onto a pending affine row-scales W and rewrites b per channel. *)
let adopt_batch_norm pending ~dim (bn : Layer.batch_norm) =
  let scale =
    Vec.init dim (fun i -> bn.gamma.(i) /. sqrt (bn.running_var.(i) +. bn.eps))
  in
  let shift =
    Vec.init dim (fun i -> bn.beta.(i) -. (scale.(i) *. bn.running_mean.(i)))
  in
  match pending with
  | None ->
      let w =
        Mat.init ~rows:dim ~cols:dim (fun i j ->
            if i = j then scale.(i) else 0.)
      in
      (w, Vec.copy shift)
  | Some (w0, b0) ->
      let w =
        Mat.init ~rows:dim ~cols:(Mat.cols w0) (fun i j ->
            scale.(i) *. Mat.get w0 i j)
      in
      let b = Vec.init dim (fun i -> (scale.(i) *. b0.(i)) +. shift.(i)) in
      (w, b)

let identity_affine dim =
  ( Mat.init ~rows:dim ~cols:dim (fun i j -> if i = j then 1. else 0.),
    Vec.create dim )

let stage_of ~act (w, b) = { w; b; abs_w = Mat.abs w; act }

let of_mlp net =
  let source_generation = Mlp.generation net in
  let pending = ref None in
  let dim = ref (Mlp.in_dim net) in
  let rev_stages = ref [] in
  let flush act =
    let affine =
      match !pending with Some wb -> wb | None -> identity_affine !dim
    in
    pending := None;
    rev_stages := stage_of ~act affine :: !rev_stages
  in
  List.iter
    (fun layer ->
      match layer with
      | Layer.Dense d ->
          pending := Some (adopt_dense !pending d);
          dim := Mat.rows d.w
      | Layer.Batch_norm bn ->
          pending := Some (adopt_batch_norm !pending ~dim:!dim bn)
      | Layer.Leaky_relu slope -> flush (Leaky_relu slope)
      | Layer.Relu -> flush Relu
      | Layer.Tanh -> flush Tanh)
    (Mlp.layers net);
  (* A trailing affine run (e.g. a critic's linear head) becomes a
     stage with no activation; nets ending in an activation need no
     extra stage. *)
  (match !pending with Some _ -> flush Linear | None -> ());
  {
    in_dim = Mlp.in_dim net;
    out_dim = Mlp.out_dim net;
    stages = List.rev !rev_stages;
    source_generation;
  }

(* ------------------------------------------------------------------ *)
(* Cache keyed on the network's physical identity and its parameter    *)
(* generation: rollout steps between gradient updates re-certify the   *)
(* same frozen actor, so extraction amortizes to once per update.      *)
(* ------------------------------------------------------------------ *)

(* One cache slot per domain: pool workers certifying in parallel each
   memoize their own extraction instead of racing on a shared ref (the
   extraction is pure, so per-domain copies are merely a few redundant
   [of_mlp] runs, never a correctness hazard). *)
let cache_key : (Mlp.t * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cached net =
  let cache = Domain.DLS.get cache_key in
  match !cache with
  | Some (src, ir) when src == net && ir.source_generation = Mlp.generation net
    ->
      ir
  | _ ->
      let ir = of_mlp net in
      cache := Some (net, ir);
      ir

(* ------------------------------------------------------------------ *)
(* Concrete and abstract evaluation over the fused stages.             *)
(* ------------------------------------------------------------------ *)

let act_fn = function
  | Linear -> fun x -> x
  | Leaky_relu slope -> fun x -> if x >= 0. then x else slope *. x
  | Relu -> Float.max 0.
  | Tanh -> Float.tanh

let forward t x =
  if Vec.dim x <> t.in_dim then invalid_arg "Anet.forward: input dim";
  List.fold_left
    (fun acc stage ->
      let y = Mat.mat_vec stage.w acc in
      Vec.axpy ~alpha:1. ~x:stage.b ~y;
      match stage.act with
      | Linear -> y
      | act ->
          Vec.map_into ~dst:y (act_fn act) y;
          y)
    x t.stages

(* Monotone activation over center–radius pairs, in place: the endpoint
   formula lo = f(c−r), hi = f(c+r), c' = (hi+lo)/2, r' = (hi−lo)/2 —
   the same arithmetic as [Box.map_monotone], applied to every cell of
   the [K × dim] batch at once. *)
let apply_act_batch act c r =
  let f = act_fn act in
  let cd = Mat.raw c and rd = Mat.raw r in
  for i = 0 to Array.length cd - 1 do
    let ci = Array.unsafe_get cd i and ri = Array.unsafe_get rd i in
    let lo = f (ci -. ri) and hi = f (ci +. ri) in
    Array.unsafe_set cd i (0.5 *. (hi +. lo));
    Array.unsafe_set rd i (0.5 *. (hi -. lo))
  done

(* Per-domain scratch arena for the stage buffers of [propagate_batch]:
   slots (2s, 2s+1) hold stage [s]'s center and radius matrices, reused
   across calls (and across the full-size/tail chunk shapes of a pool
   region, via the arena's per-length caching) instead of two fresh
   matrices per stage per chunk. Ownership per DESIGN §10: the arena is
   DLS-owned, so only this domain writes these buffers. *)
let scratch_key : Canopy_util.Scratch.t Domain.DLS.key =
  Domain.DLS.new_key Canopy_util.Scratch.create

(* One fused stage over the whole batch: two GEMMs — c' = c·Wᵀ + b and
   r' = r·|W|ᵀ — then the elementwise activation. |W| is precomputed at
   extraction, so no per-slice [Mat.abs] allocation survives in the hot
   path. Soundness of the radius GEMM: each output radius is a
   non-negatively weighted sum of input radii, so it is the exact image
   of the interval under the affine map up to the same rounding as the
   per-slice [Box.affine] reference (see DESIGN.md §8).

   The result aliases the last stage's scratch slots: callers must
   consume (copy out of) it before this domain's next call. Every cell
   of every slot buffer is overwritten by its stage's GEMMs before any
   read, so a warm arena returns the same bits as a cold one. *)
let propagate_batch t ~centers ~radii =
  let scratch = Domain.DLS.get scratch_key in
  let _, result =
    List.fold_left
      (fun (s, (c, r)) stage ->
        let rows = Mat.rows c and cols = Mat.rows stage.w in
        let c' = Mat.scratch_mat scratch ~slot:(2 * s) ~rows ~cols in
        let r' = Mat.scratch_mat scratch ~slot:((2 * s) + 1) ~rows ~cols in
        Mat.mat_mul_nt_bias_into ~dst:c' c stage.w stage.b;
        Mat.mat_mul_nt_into ~dst:r' r stage.abs_w;
        (match stage.act with
        | Linear -> ()
        | act -> apply_act_batch act c' r');
        (s + 1, (c', r')))
      (0, (centers, radii))
      t.stages
  in
  result

let check_box t box =
  if Box.dim box <> t.in_dim then invalid_arg "Anet.propagate: input dim"

let batch_of_boxes boxes =
  ( Mat.of_rows (Array.map Box.center boxes),
    Mat.of_rows (Array.map Box.dev boxes) )

let propagate t box =
  check_box t box;
  let centers, radii = batch_of_boxes [| box |] in
  let c, r = propagate_batch t ~centers ~radii in
  Box.make ~center:(Mat.row c 0) ~dev:(Mat.row r 0)

(* Per-box cost of the batched transfer, for the parallel-dispatch
   threshold: one GEMM row per stage, costed by the kernel's own
   estimate (the radius GEMM rides along). Pure function of the IR
   shape, so chunking derived from it is deterministic. Exported: this
   is the one cost model for IR sweeps — [Zonotope] derives its per-box
   estimate from it rather than restating the formula. *)
let per_box_flops t =
  List.fold_left
    (fun acc stage ->
      (* [abs_w] has the stage's input width as its column count — the
         same shape the batch matrix would have. *)
      acc + Mat.mat_mul_nt_row_flops stage.abs_w stage.w)
    0 t.stages

(* Boxes [lo, hi) through the batched transfer, results into [out]. Each
   output row of the stage GEMMs depends only on the matching input row,
   so a sub-batch reproduces the full batch's rows bit for bit — chunking
   the workload cannot change any interval (DESIGN §10). *)
let output_intervals_range t boxes out ~lo ~hi =
  let centers, radii = batch_of_boxes (Array.sub boxes lo (hi - lo)) in
  let c, r = propagate_batch t ~centers ~radii in
  for k = lo to hi - 1 do
    let ck = Mat.get c (k - lo) 0 and rk = Mat.get r (k - lo) 0 in
    out.(k) <- Interval.make (ck -. rk) (ck +. rk)
  done

let output_intervals t boxes =
  if t.out_dim <> 1 then invalid_arg "Anet.output_intervals: out_dim";
  let n = Array.length boxes in
  if n = 0 then [||]
  else begin
    Array.iter (check_box t) boxes;
    let out = Array.make n (Interval.make 0. 0.) in
    (match Mat.plan_chunks ~rows:n ~row_flops:(per_box_flops t) with
    | Some chunk ->
        Canopy_util.Pool.parallel_for_chunks ~chunk n
          (output_intervals_range t boxes out)
    | None -> output_intervals_range t boxes out ~lo:0 ~hi:n);
    out
  end

let output_interval t box = (output_intervals t [| box |]).(0)
