(** Closed real intervals [\[lo, hi\]].

    The scalar building block of the box abstract domain (Section 3.2).
    All transformers here are sound: for any concrete input in the input
    interval, the concrete result lies in the result interval. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]. Raises [Invalid_argument] if [lo > hi] or either bound is
    NaN. *)

val of_point : float -> t
(** Degenerate interval [\[x, x\]]. *)

val lo : t -> float
val hi : t -> float
val width : t -> float
val midpoint : t -> float
val radius : t -> float

val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val intersect : t -> t -> t option
val hull : t -> t -> t
(** Smallest interval containing both. *)

val is_point : t -> bool

(* Arithmetic transformers *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val mul : t -> t -> t
(** General interval product (min/max of the four corner products).
    Corner products of a zero endpoint with an infinite one follow the
    zero-annihilation convention (the bound is 0, not NaN), so products
    of half-infinite intervals stay well-formed. [scale] is hardened the
    same way. *)

val div_scalar : t -> float -> t
(** Division by a non-zero scalar. *)

val monotone : (float -> float) -> t -> t
(** Lift a non-decreasing function exactly. The caller is responsible for
    monotonicity. *)

val pow2 : t -> t
(** [2^x], exact (monotone). *)

val tanh : t -> t
val relu : t -> t
val leaky_relu : slope:float -> t -> t
(** Exact for any slope in [\[0,1\]]. *)

val overlap_fraction : target:t -> t -> float
(** The interval distance D of Eq. 7: 0 when disjoint from [target], 1 when
    fully contained, otherwise [|target ∩ out| / |out|]. A point output
    collapses to membership (1 inside, 0 outside). *)

val split : t -> int -> t list
(** [split t n] partitions [t] into [n] equal-width, contiguous
    sub-intervals (the symbolic components of Section 5). Requires
    [n > 0]. *)

val sample : Canopy_util.Prng.t -> t -> float
(** Uniform sample from the interval. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
