open Canopy_tensor

type t = {
  c : Vec.t;  (** center *)
  gens : Vec.t list;  (** one coefficient vector per noise symbol *)
}

let of_box box =
  let n = Box.dim box in
  let center = Box.center box in
  let dev = Box.dev box in
  let gens = ref [] in
  for i = n - 1 downto 0 do
    if dev.(i) > 0. then begin
      let g = Vec.create n in
      g.(i) <- dev.(i);
      gens := g :: !gens
    end
  done;
  { c = center; gens = !gens }

let of_point v = { c = Vec.copy v; gens = [] }
let dim t = Vec.dim t.c
let generators t = List.length t.gens

let radius t i =
  List.fold_left (fun acc g -> acc +. Float.abs g.(i)) 0. t.gens

let dimension t i =
  let r = radius t i in
  Interval.make (t.c.(i) -. r) (t.c.(i) +. r)

let concretize t =
  Box.of_intervals (Array.init (dim t) (fun i -> dimension t i))

let affine m b t =
  if Mat.cols m <> dim t then invalid_arg "Zonotope.affine: dims";
  let c = Mat.mat_vec m t.c in
  Vec.axpy ~alpha:1. ~x:b ~y:c;
  { c; gens = List.map (fun g -> Mat.mat_vec m g) t.gens }

let diag_affine ~scale ~shift t =
  if Vec.dim scale <> dim t || Vec.dim shift <> dim t then
    invalid_arg "Zonotope.diag_affine: dims";
  {
    c = Vec.init (dim t) (fun i -> (scale.(i) *. t.c.(i)) +. shift.(i));
    gens = List.map (fun g -> Vec.mul scale g) t.gens;
  }

(* Apply a per-dimension sound linear relaxation y = λ_i·x + mid_i ± rad_i.
   Fresh noise symbols carry the rad_i terms; one symbol per dimension
   with rad_i > 0 (errors of distinct dimensions are independent, so they
   must not share a symbol). *)
let relax t per_dim =
  let n = dim t in
  let lambda = Vec.create n and mid = Vec.create n and rad = Vec.create n in
  for i = 0 to n - 1 do
    let l, m, r = per_dim i (dimension t i) in
    lambda.(i) <- l;
    mid.(i) <- m;
    rad.(i) <- r
  done;
  let c = Vec.init n (fun i -> (lambda.(i) *. t.c.(i)) +. mid.(i)) in
  let gens = List.map (fun g -> Vec.mul lambda g) t.gens in
  let fresh = ref [] in
  for i = n - 1 downto 0 do
    if rad.(i) > 0. then begin
      let g = Vec.create n in
      g.(i) <- rad.(i);
      fresh := g :: !fresh
    end
  done;
  { c; gens = gens @ !fresh }

let leaky_relu ~slope t =
  if slope < 0. || slope > 1. then invalid_arg "Zonotope.leaky_relu: slope";
  let f x = if x >= 0. then x else slope *. x in
  relax t (fun _ iv ->
      let l = Interval.lo iv and u = Interval.hi iv in
      if l >= 0. then (1., 0., 0.)
      else if u <= 0. then (slope, 0., 0.)
      else begin
        (* Straddling zero: chord slope; the residual f(x) − λx is
           piecewise linear with extrema at the endpoints (equal by the
           chord construction) and at the kink. *)
        let lambda = (f u -. f l) /. (u -. l) in
        let at_end = f l -. (lambda *. l) in
        let lo = Float.min at_end 0. and hi = Float.max at_end 0. in
        (lambda, 0.5 *. (lo +. hi), 0.5 *. (hi -. lo))
      end)

let relu t = leaky_relu ~slope:0. t

let tanh t =
  relax t (fun _ iv ->
      let l = Interval.lo iv and u = Interval.hi iv in
      if l = u then (0., Float.tanh l, 0.)
      else begin
        (* DeepZ relaxation for S-shaped activations: slope = minimum
           endpoint derivative, residual bounded by the endpoint values. *)
        let d x =
          let th = Float.tanh x in
          1. -. (th *. th)
        in
        let lambda = Float.min (d l) (d u) in
        let mu1 =
          0.5 *. (Float.tanh u +. Float.tanh l -. (lambda *. (u +. l)))
        in
        let delta =
          0.5 *. (Float.tanh u -. Float.tanh l -. (lambda *. (u -. l)))
        in
        (lambda, mu1, Float.abs delta)
      end)

let propagate net t =
  if dim t <> Canopy_nn.Mlp.in_dim net then
    invalid_arg "Zonotope.propagate: input dim";
  List.fold_left
    (fun acc layer ->
      match layer with
      | Canopy_nn.Layer.Dense d -> affine d.w d.b acc
      | Canopy_nn.Layer.Batch_norm bn ->
          let n = Vec.dim bn.gamma in
          let scale =
            Vec.init n (fun i ->
                bn.gamma.(i) /. sqrt (bn.running_var.(i) +. bn.eps))
          in
          let shift =
            Vec.init n (fun i ->
                bn.beta.(i) -. (scale.(i) *. bn.running_mean.(i)))
          in
          diag_affine ~scale ~shift acc
      | Canopy_nn.Layer.Leaky_relu slope -> leaky_relu ~slope acc
      | Canopy_nn.Layer.Relu -> relu acc
      | Canopy_nn.Layer.Tanh -> tanh acc)
    t (Canopy_nn.Mlp.layers net)

(* Reduced product with the box domain: both are sound, so their
   intersection is sound and never looser than either. The box's
   per-dimension monotone transformers can beat the zonotope's linear
   relaxations on saturated activations, and vice versa on affine
   cancellation. *)
let meet_ibp zono ibp =
  match Interval.intersect zono ibp with
  | Some tight -> tight
  | None ->
      (* Both are sound over-approximations of a non-empty set, so they
         must overlap; guard against FP rounding at the boundary. *)
      Interval.hull zono ibp

let output_interval net box =
  if Canopy_nn.Mlp.out_dim net <> 1 then
    invalid_arg "Zonotope.output_interval: out_dim";
  let zono = dimension (propagate net (of_box box)) 0 in
  meet_ibp zono (Ibp.output_interval net box)

(* The IR-based path: one fused affine (exact on zonotopes) per stage
   instead of a dense/batch-norm pair, sharing the extraction — and the
   folded batch-norm arithmetic — with the box engine. *)
let propagate_anet ir t =
  if dim t <> Anet.in_dim ir then
    invalid_arg "Zonotope.propagate_anet: input dim";
  List.fold_left
    (fun acc (stage : Anet.stage) ->
      let acc = affine stage.w stage.b acc in
      match stage.act with
      | Anet.Linear -> acc
      | Anet.Leaky_relu slope -> leaky_relu ~slope acc
      | Anet.Relu -> relu acc
      | Anet.Tanh -> tanh acc)
    t (Anet.stages ir)

let output_intervals_anet ir boxes =
  if Anet.out_dim ir <> 1 then
    invalid_arg "Zonotope.output_intervals_anet: out_dim";
  (* The zonotope transfer is inherently per-box (each box spawns its own
     noise symbols), but the reduced-product partner is the batched
     center–radius pass, evaluated for the whole workload in one shot. *)
  let ibp = Anet.output_intervals ir boxes in
  let n = Array.length boxes in
  let eval k =
    let zono = dimension (propagate_anet ir (of_box boxes.(k))) 0 in
    meet_ibp zono ibp.(k)
  in
  (* Boxes are independent, so any partition is bit-identical to the
     sequential sweep. Per-box cost scales the IR's own estimate by the
     noise-symbol budget (≈ in_dim generators survive each stage), which
     is a pure function of the IR shape — chunking stays deterministic. *)
  let row_flops = Anet.per_box_flops ir * (Anet.in_dim ir + 1) in
  match Canopy_tensor.Mat.plan_chunks ~rows:n ~row_flops with
  | Some chunk ->
      let out = Array.make n ibp.(0) in
      Canopy_util.Pool.parallel_for_chunks ~chunk n (fun ~lo ~hi ->
          for k = lo to hi - 1 do
            out.(k) <- eval k
          done);
      out
  | None -> Array.init n eval
