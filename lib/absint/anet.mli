(** The verifier IR: an [Mlp] normalized to fused affine stages.

    Every run of affine layers — dense, inference-mode batch norm — is
    collapsed into a single stage [x ↦ W·x + b] with [|W|] precomputed,
    followed by at most one elementwise activation. Extraction happens
    once per parameter generation ({!cached}); the abstract domains then
    propagate through three fused stages instead of eight layers, and the
    batched center–radius transfer ({!output_intervals}) evaluates a
    whole [K]-box workload as two GEMMs per stage:
    [c' = c·Wᵀ + b], [r' = r·|W|ᵀ].

    Walking [Mlp.layers] anywhere else is forbidden by the
    [mlp-layer-walk] lint rule: this builder is the one place the
    batch-norm folding arithmetic may be restated outside [lib/nn]. *)

open Canopy_tensor
open Canopy_nn

type act = Linear | Leaky_relu of float | Relu | Tanh

type stage = {
  w : Mat.t;  (** fused weight, [out × in] *)
  b : Vec.t;  (** fused bias, length [out] *)
  abs_w : Mat.t;  (** elementwise [|w|], precomputed at extraction *)
  act : act;  (** activation applied after the affine map *)
}

type t

val of_mlp : Mlp.t -> t
(** Extract the IR from the network's current parameters. The result is
    an immutable snapshot: later parameter updates do not affect it. *)

val cached : Mlp.t -> t
(** {!of_mlp} memoized against the network's physical identity and
    {!Mlp.generation}, so the many certify calls between two gradient
    updates share one extraction. *)

val in_dim : t -> int
val out_dim : t -> int
val stages : t -> stage list
val source_generation : t -> int
(** The {!Mlp.generation} the IR was extracted at. *)

val forward : t -> Vec.t -> Vec.t
(** Concrete evaluation through the fused stages. Agrees with
    [Mlp.forward] on the source network up to reassociation rounding
    (≲1e-9 relative); used by the soundness audit and fusion tests. *)

val propagate : t -> Box.t -> Box.t
(** Abstract image of one box under the network (the K=1 case of the
    batched transfer). Sound for the same reason as [Ibp.propagate];
    bounds agree with it to reassociation rounding. *)

val output_intervals : t -> Box.t array -> Interval.t array
(** Batched scalar-output bound: all boxes pushed through each stage as
    two GEMMs ([c' = c·Wᵀ + b], [r' = r·|W|ᵀ]) plus one elementwise
    activation pass. Raises [Invalid_argument] unless [out_dim t = 1]
    and every box matches [in_dim t]. *)

val output_interval : t -> Box.t -> Interval.t
(** [output_intervals] on a single box. *)

val per_box_flops : t -> int
(** Estimated flops to push one box through the batched transfer —
    derived from the GEMM kernels' own per-row cost model. The one cost
    estimate for IR sweeps: {!output_intervals} plans its chunks with
    it, and [Zonotope] scales it by its noise-symbol budget instead of
    restating the formula. Pure in the IR shape, so any chunking derived
    from it is deterministic. *)
