(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) at a laptop scale, plus bechamel timing
   benchmarks for the training-step kernels (Table 3).

   Usage:
     dune exec bench/main.exe                 # everything, quick scale
     dune exec bench/main.exe -- fig5 fig10   # selected experiments
     CANOPY_BENCH_SCALE=full dune exec bench/main.exe

   Trained models are cached under _artifacts/ so repeated invocations
   skip training. *)

module Eval = Canopy.Eval
module Trainer = Canopy.Trainer
module Property = Canopy.Property
module Certify = Canopy.Certify
module Suite = Canopy_trace.Suite
module Trace = Canopy_trace.Trace
module Stats = Canopy_util.Stats

let artifacts_dir = "_artifacts"

(* ------------------------------------------------------------------ *)
(* Scale *)

type scale = {
  label : string;
  train_steps : int;
  trace_ms : int;
  eval_components : int;
  train_envs : int;
}

let quick =
  {
    label = "quick";
    train_steps = 2500;
    trace_ms = 10_000;
    eval_components = 50;
    train_envs = 6;
  }

let full =
  {
    label = "full";
    train_steps = 10_000;
    trace_ms = 30_000;
    eval_components = 50;
    train_envs = 8;
  }

let scale =
  match Sys.getenv_opt "CANOPY_BENCH_SCALE" with
  | Some "full" -> full
  | _ -> quick

let min_rtt_ms = 40
let history = 5

(* ------------------------------------------------------------------ *)
(* Models *)

let train_pool () =
  Trainer.env_pool ~n:scale.train_envs ~bw_range_mbps:(6., 96.)
    ~rtt_range_ms:(20, 80) ~duration_ms:8_000 ~seed:5 ()

let model_config ~lambda ~property ~n_components =
  Trainer.default_config ~seed:5 ~lambda ~property ~n_components
    ~total_steps:scale.train_steps ~envs:(train_pool ()) ()

type model = { name : string; actor : Canopy_nn.Mlp.t;
               curve : Trainer.epoch list }

let get_model ~name ~lambda ~property ~n_components =
  let tag = Printf.sprintf "%s-%s-%d" name scale.label scale.train_steps in
  Format.printf "[model %s: %s]@." name
    (if Sys.file_exists (Filename.concat artifacts_dir (tag ^ ".actor.ckpt"))
     then "cached"
     else "training...");
  Format.print_flush ();
  let actor, curve =
    Trainer.load_or_train ~cache_dir:artifacts_dir ~tag
      (model_config ~lambda ~property ~n_components)
  in
  { name; actor; curve }

let orca () =
  get_model ~name:"orca" ~lambda:0. ~property:(Property.performance ())
    ~n_components:5

let canopy_perf () =
  get_model ~name:"canopy-perf" ~lambda:0.25
    ~property:(Property.performance ()) ~n_components:5

let canopy_rob () =
  get_model ~name:"canopy-rob" ~lambda:0.25 ~property:(Property.robustness ())
    ~n_components:5

(* ------------------------------------------------------------------ *)
(* Helpers *)

let traces () = Suite.all ~duration_ms:scale.trace_ms ()

let by_category ts =
  ( List.filter (fun t -> Suite.category_of t = Suite.Synthetic) ts,
    List.filter (fun t -> Suite.category_of t = Suite.Real) ts )

let header fmt = Format.printf ("@.=== " ^^ fmt ^^ " ===@.")

(* CSV mirrors of the printed tables, for plotting. *)
let csv_write name ~columns rows =
  let dir = Filename.concat artifacts_dir "csv" in
  Canopy_util.Atomic_file.mkdir_p dir;
  let path = Filename.concat dir (name ^ ".csv") in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    rows;
  Canopy_util.Atomic_file.write path (Buffer.contents buf)

(* Machine-readable perf records ([BENCH_*.json]) are assembled in a
   buffer and land via the stage+rename path, so a bench interrupted
   mid-write can never leave a torn perf-history file at the repo root.
   Every repo-root BENCH_* snapshot additionally lands as a timestamped
   copy under [_artifacts/bench_history/], so successive runs build a
   local perf history instead of overwriting each other (smoke runs
   write to temp paths and are excluded). *)
let json_write path emit =
  let buf = Buffer.create 4096 in
  emit buf;
  let contents = Buffer.contents buf in
  Canopy_util.Atomic_file.write path contents;
  let base = Filename.basename path in
  if Filename.dirname path = "." && String.length base > 6
     && String.sub base 0 6 = "BENCH_"
  then begin
    let dir = Filename.concat artifacts_dir "bench_history" in
    Canopy_util.Atomic_file.mkdir_p dir;
    let tm = Unix.localtime (Unix.gettimeofday ()) in
    let stamp =
      Printf.sprintf "%04d%02d%02dT%02d%02d%02d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
    in
    let stem = Filename.remove_extension base in
    Canopy_util.Atomic_file.write
      (Filename.concat dir (Printf.sprintf "%s-%s.json" stem stamp))
      contents
  end

(* Per-case FCC/FCS from collected step certificates. *)
let percase_stats steps case =
  let per_step =
    List.filter_map
      (fun (s : Eval.step_record) ->
        match s.certificate with
        | None -> None
        | Some cert ->
            let comps =
              Array.to_list cert.Certify.components
              |> List.filter (fun c -> c.Certify.case = case)
            in
            if comps = [] then None
            else begin
              let certified =
                List.length (List.filter (fun c -> c.Certify.certified) comps)
              in
              Some
                ( float_of_int certified /. float_of_int (List.length comps),
                  certified = List.length comps )
            end)
      steps
  in
  match per_step with
  | [] -> (0., 0., 0.)
  | _ ->
      let n = float_of_int (List.length per_step) in
      let fccs = Array.of_list (List.map fst per_step) in
      let fcs =
        float_of_int (List.length (List.filter snd per_step)) /. n
      in
      (Stats.mean fccs, Stats.stddev fccs, fcs)

(* Certified evaluation of one model over a trace list; returns per-trace
   step lists for per-case analysis. *)
let certified_runs model property bdp ts =
  List.map
    (fun trace ->
      let link = Eval.link ~min_rtt_ms ~bdp trace in
      let _, steps =
        Eval.eval_policy ~name:model.name
          ~certificate:(property, scale.eval_components) ~collect_steps:true
          ~policy:(`Mlp model.actor) ~history link
      in
      (trace, steps))
    ts

let print_fcc_fcs_table ?csv ~cases models property bdp =
  let synth, real = by_category (traces ()) in
  (* Archived worst-case scenarios (PR 9's search artifacts) join the
     grid as a third category, so certified metrics are reported on the
     conditions that actually broke earlier policies, not only the
     fixed suite. *)
  let adversarial =
    Suite.adversarial ~dir:(Filename.concat artifacts_dir "scenarios") ()
  in
  let categories =
    [ ("synthetic", synth); ("real", real) ]
    @ (if adversarial = [] then [] else [ ("adversarial", adversarial) ])
  in
  Format.printf "%-12s %-10s %-12s %-18s %-10s@." "model" "category" "case"
    "FCC (mean ± std)" "FCS";
  let rows = ref [] in
  List.iter
    (fun model ->
      List.iter
        (fun (cat_name, ts) ->
          let runs = certified_runs model property bdp ts in
          let all_steps = List.concat_map snd runs in
          List.iter
            (fun case ->
              let fcc_mean, fcc_std, fcs = percase_stats all_steps case in
              Format.printf "%-12s %-10s %-12s %6.3f ± %-9.3f %6.3f@."
                model.name cat_name (Property.case_name case) fcc_mean fcc_std
                fcs;
              rows :=
                [ model.name; cat_name; Property.case_name case;
                  Printf.sprintf "%.4f" fcc_mean;
                  Printf.sprintf "%.4f" fcc_std; Printf.sprintf "%.4f" fcs ]
                :: !rows)
            cases)
        categories)
    models;
  Option.iter
    (fun name ->
      csv_write name
        ~columns:[ "model"; "category"; "case"; "fcc_mean"; "fcc_std"; "fcs" ]
        (List.rev !rows))
    csv

(* Plain (uncertified) evaluation of a learned model over traces. *)
let policy_results model bdp ?noise ts =
  List.map
    (fun trace ->
      let link = Eval.link ~min_rtt_ms ~bdp trace in
      fst
        (Eval.eval_policy ~name:model.name ?noise ~policy:(`Mlp model.actor) ~history
           link))
    ts

let tcp_results name make bdp ts =
  List.map
    (fun trace -> Eval.eval_tcp ~name make (Eval.link ~min_rtt_ms ~bdp trace))
    ts

let print_empirical_table ?csv schemes bdp =
  let synth, real = by_category (traces ()) in
  Format.printf "%-12s %-10s %-8s %-12s %-12s %-8s@." "scheme" "category"
    "util%" "avg-qdelay" "p95-qdelay" "loss%";
  let rows = ref [] in
  List.iter
    (fun (name, results_of) ->
      List.iter
        (fun (cat_name, ts) ->
          let m = Eval.mean_results cat_name (results_of bdp ts) in
          Format.printf "%-12s %-10s %7.1f %9.1fms %9.1fms %7.2f@." name
            cat_name
            (100. *. m.Eval.utilization)
            m.Eval.avg_qdelay_ms m.Eval.p95_qdelay_ms
            (100. *. m.Eval.loss_rate);
          rows :=
            [ name; cat_name;
              Printf.sprintf "%.4f" m.Eval.utilization;
              Printf.sprintf "%.2f" m.Eval.avg_qdelay_ms;
              Printf.sprintf "%.2f" m.Eval.p95_qdelay_ms;
              Printf.sprintf "%.5f" m.Eval.loss_rate ]
            :: !rows)
        [ ("synthetic", synth); ("real", real) ])
    schemes;
  Option.iter
    (fun name ->
      csv_write name
        ~columns:
          [ "scheme"; "category"; "utilization"; "avg_qdelay_ms";
            "p95_qdelay_ms"; "loss_rate" ]
        (List.rev !rows))
    csv

(* Certificates for the first [n_steps] monitoring steps of a run. *)
let component_distribution model property bdp trace n_steps =
  let link = Eval.link ~min_rtt_ms ~bdp trace in
  let _, steps =
    Eval.eval_policy ~name:model.name
      ~certificate:(property, scale.eval_components) ~collect_steps:true
      ~policy:(`Mlp model.actor) ~history link
  in
  let window = List.filteri (fun i _ -> i < n_steps) steps in
  List.map
    (fun (s : Eval.step_record) ->
      match s.certificate with None -> assert false | Some c -> c)
    window

(* ------------------------------------------------------------------ *)
(* Table 1: observed network states *)

let table1 () =
  header "Table 1: observed network states (one monitoring interval each)";
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:4_000 ~period_ms:1_000
      ~low_mbps:12. ~high_mbps:48. ()
  in
  let cfg =
    Canopy_orca.Agent_env.default_config ~trace ~min_rtt_ms
      ~buffer_pkts:
        (Canopy_cc.Runner.buffer_of_bdp ~bdp_multiplier:2. ~trace ~min_rtt_ms)
      ~duration_ms:4_000
  in
  let env = Canopy_orca.Agent_env.create cfg in
  ignore (Canopy_orca.Agent_env.reset env);
  Format.printf "%-6s %-10s %-6s %-10s %-5s %-5s %-9s@." "step" "THR(Mbps)"
    "loss" "DELAY(ms)" "n" "m" "sRTT(ms)";
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    incr step;
    let res = Canopy_orca.Agent_env.step env ~action:0. in
    let o = res.Canopy_orca.Agent_env.observation in
    if !step <= 15 then
      Format.printf "%-6d %-10.2f %-6d %-10.2f %-5d %-5d %-9.1f@." !step
        o.Canopy_orca.Observation.thr_mbps o.loss_pkts o.avg_qdelay_ms o.n_acks
        o.interval_ms o.srtt_ms;
    finished := res.Canopy_orca.Agent_env.finished
  done;
  Format.printf "(%d monitoring intervals in total)@." !step

(* ------------------------------------------------------------------ *)
(* Table 2: training environment characteristics *)

let table2 () =
  header "Table 2: training environment grid (stable links, 2 BDP buffers)";
  Format.printf "%-26s %-12s %-10s %-12s@." "link" "bw (Mbps)" "minRTT"
    "buffer (pkts)";
  List.iter
    (fun (cfg : Canopy_orca.Agent_env.config) ->
      Format.printf "%-26s %-12.1f %-10d %-12d@."
        (Trace.name cfg.trace)
        (Trace.avg_mbps cfg.trace)
        cfg.min_rtt_ms cfg.buffer_pkts)
    (train_pool ())

(* ------------------------------------------------------------------ *)
(* Fig 1: robustness to observation noise (sending-rate view) *)

let fig1 () =
  header "Figure 1: Orca vs Canopy under +/-5%% delay noise";
  let orca = orca () and canopy = canopy_rob () in
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:scale.trace_ms
      ~period_ms:2_000 ~low_mbps:24. ~high_mbps:96. ()
  in
  let link = Eval.link ~min_rtt_ms ~bdp:2. trace in
  Format.printf "%-12s %-7s %-8s %-12s %-12s@." "model" "noise" "util%"
    "avg-qdelay" "p95-qdelay";
  let deltas =
    List.map
      (fun model ->
        let clean, _ =
          Eval.eval_policy ~name:model.name ~policy:(`Mlp model.actor) ~history link
        in
        let noisy, _ =
          Eval.eval_policy ~name:model.name ~noise:(23, 0.05)
            ~policy:(`Mlp model.actor) ~history link
        in
        List.iter
          (fun (label, (r : Eval.result)) ->
            Format.printf "%-12s %-7s %7.1f %9.1fms %9.1fms@." model.name label
              (100. *. r.utilization) r.avg_qdelay_ms r.p95_qdelay_ms)
          [ ("clean", clean); ("+/-5%", noisy) ];
        (model.name, Eval.noise_delta ~clean ~noisy))
      [ orca; canopy ]
  in
  Format.printf "@.change caused by noise (closer to zero = more robust):@.";
  List.iter
    (fun (name, (d : Eval.noise_delta)) ->
      Format.printf "  %-12s util %+6.1f%%  avg delay %+6.1f%%  p95 %+6.1f%%@."
        name d.d_utilization_pct d.d_avg_qdelay_pct d.d_p95_qdelay_pct)
    deltas;
  (* Random noise samples only a few points of the ±5%% ball; the
     certificate bounds the worst case over the whole ball. Aggregate the
     bound over a mix of trace regimes. *)
  Format.printf
    "@.certified worst-case CWND swing under any +/-5%% perturbation@.";
  Format.printf "(mean over five trace regimes, 50 steps each):@.";
  let swing_traces =
    [
      trace;
      Canopy_trace.Synthetic.triangle ~duration_ms:scale.trace_ms
        ~cycle_ms:5_000 ~floor_mbps:12. ~peak_mbps:96. ();
      Canopy_trace.Synthetic.ramp_drop ~duration_ms:scale.trace_ms
        ~cycle_ms:5_000 ~floor_mbps:12. ~peak_mbps:96. ();
      Canopy_trace.Lte.generate ~name:"lte-att" ~seed:101
        ~duration_ms:scale.trace_ms ();
      Canopy_trace.Lte.generate ~name:"lte-verizon" ~seed:202
        ~duration_ms:scale.trace_ms ();
    ]
  in
  List.iter
    (fun model ->
      let certs =
        List.concat_map
          (fun t ->
            component_distribution model (Property.robustness ()) 2. t 50)
          swing_traces
      in
      let worst (c : Certify.t) =
        Array.fold_left
          (fun acc comp ->
            let out = comp.Certify.output in
            Float.max acc
              (Float.max
                 (Float.abs (Canopy_absint.Interval.lo out))
                 (Float.abs (Canopy_absint.Interval.hi out))))
          0. c.components
      in
      let swings = Array.of_list (List.map worst certs) in
      Format.printf
        "  %-12s mean %5.1f%%  p95 %5.1f%%  max %5.1f%% of CWND@." model.name
        (100. *. Stats.mean swings)
        (100. *. Stats.percentile swings 95.)
        (100. *. Array.fold_left Float.max 0. swings))
    [ orca; canopy ]

(* ------------------------------------------------------------------ *)
(* Fig 2: bad states (sending-rate collapse) *)

let fig2 () =
  header "Figure 2: bad-state analysis (Orca vs Canopy, performance property)";
  let orca = orca () and canopy = canopy_perf () in
  let trace =
    Canopy_trace.Synthetic.ramp_drop ~duration_ms:scale.trace_ms
      ~cycle_ms:5_000 ~floor_mbps:12. ~peak_mbps:96. ()
  in
  let link = Eval.link ~min_rtt_ms ~bdp:2. trace in
  Format.printf "%-12s %-8s %-14s %-16s %-22s@." "model" "util%"
    "bad steps (%)" "max bad streak" "mean cwnd/suggestion";
  List.iter
    (fun model ->
      let res, steps =
        Eval.eval_policy ~name:model.name ~collect_steps:true
          ~policy:(`Mlp model.actor) ~history link
      in
      (* a step is "bad" when delivered throughput is below 40% of the
         trace's average capacity *)
      let capacity = Trace.avg_mbps trace in
      let bad =
        List.map (fun (s : Eval.step_record) -> s.thr_mbps < 0.4 *. capacity)
          steps
      in
      let nbad = List.length (List.filter Fun.id bad) in
      let max_streak =
        List.fold_left
          (fun (best, cur) b ->
            if b then (max best (cur + 1), cur + 1) else (best, 0))
          (0, 0) bad
        |> fst
      in
      let ratio =
        Stats.mean
          (Array.of_list
             (List.map
                (fun (s : Eval.step_record) ->
                  s.cwnd_enforced /. Float.max 1. s.cwnd_tcp)
                steps))
      in
      Format.printf "%-12s %7.1f %13.1f %16d %22.2f@." model.name
        (100. *. res.Eval.utilization)
        (100. *. float_of_int nbad /. float_of_int (List.length steps))
        max_streak ratio)
    [ orca; canopy ];
  (* The Fig.-2 mechanism in certificate terms: a controller can enter a
     bad state when, under small observed delays, its certificate still
     admits window decreases (small-delay components left uncertified). *)
  Format.printf
    "@.small-delay components provably increasing the window (higher = fewer \
     admissible bad states):@.";
  List.iter
    (fun model ->
      let certs =
        component_distribution model (Property.performance ()) 2. trace 100
      in
      let per_step =
        Array.of_list
          (List.map
             (fun (c : Certify.t) ->
               let comps =
                 Array.to_list c.components
                 |> List.filter (fun comp ->
                        comp.Certify.case = Property.Small_delay)
               in
               float_of_int
                 (List.length
                    (List.filter (fun comp -> comp.Certify.certified) comps))
               /. float_of_int (List.length comps))
             certs)
      in
      Format.printf "  %-12s %5.1f%% of components (mean over %d steps)@."
        model.name
        (100. *. Stats.mean per_step)
        (Array.length per_step))
    [ orca; canopy ]

(* ------------------------------------------------------------------ *)
(* Figs 5/6: FCC & FCS for the performance property *)

let fig5 () =
  header "Figure 5: FCC/FCS, performance property, shallow buffers (1 BDP)";
  print_fcc_fcs_table ~csv:"fig5"
    ~cases:[ Property.Large_delay; Property.Small_delay ]
    [ orca (); canopy_perf () ]
    (Property.performance ()) 1.

let fig6 () =
  header "Figure 6: FCC/FCS, performance property, large buffers (5 BDP)";
  print_fcc_fcs_table ~csv:"fig6"
    ~cases:[ Property.Large_delay; Property.Small_delay ]
    [ orca (); canopy_perf () ]
    (Property.performance ()) 5.

(* ------------------------------------------------------------------ *)
(* Fig 7: component output distribution over 50 steps *)

let fig7 () =
  header "Figure 7: per-component dCWND bounds over 50 steps (y = dCWND)";
  let orca = orca () and canopy = canopy_perf () in
  let traces =
    [
      Canopy_trace.Synthetic.step_fluctuation ~duration_ms:scale.trace_ms
        ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ();
      Canopy_trace.Lte.generate ~name:"lte-att" ~seed:101
        ~duration_ms:scale.trace_ms ();
    ]
  in
  List.iteri
    (fun i trace ->
      Format.printf "@.-- trace %d: %s@." (i + 1) (Trace.name trace);
      Format.printf "%-12s %-12s %-22s %-14s %-18s@." "model" "case"
        "certified comps/step" "steps full" "mean out width";
      List.iter
        (fun model ->
          let certs =
            component_distribution model (Property.performance ()) 2. trace 50
          in
          List.iter
            (fun case ->
              let comps =
                List.concat_map
                  (fun (c : Certify.t) ->
                    Array.to_list c.components
                    |> List.filter (fun comp -> comp.Certify.case = case))
                  certs
              in
              let certified =
                List.length (List.filter (fun c -> c.Certify.certified) comps)
              in
              let full_steps =
                List.length
                  (List.filter
                     (fun (c : Certify.t) ->
                       Array.for_all
                         (fun comp ->
                           comp.Certify.case <> case || comp.certified)
                         c.components)
                     certs)
              in
              let width =
                Stats.mean
                  (Array.of_list
                     (List.map
                        (fun c -> Canopy_absint.Interval.width c.Certify.output)
                        comps))
              in
              Format.printf "%-12s %-12s %14.1f/%-5d %10d/%-3d %18.1f@."
                model.name
                (Property.case_name case)
                (float_of_int certified /. float_of_int (List.length certs))
                scale.eval_components full_steps (List.length certs) width)
            [ Property.Large_delay; Property.Small_delay ])
        [ orca; canopy ])
    traces

(* ------------------------------------------------------------------ *)
(* Fig 8: FCC & FCS for the robustness property *)

let fig8 () =
  header "Figure 8: FCC/FCS, robustness property, 2 BDP buffers";
  print_fcc_fcs_table ~csv:"fig8" ~cases:[ Property.Noise ]
    [ orca (); canopy_rob () ]
    (Property.robustness ()) 2.

(* ------------------------------------------------------------------ *)
(* Fig 9: CWNDCHANGE bounds over 50 steps *)

let fig9 () =
  header
    "Figure 9: per-component CWNDCHANGE bounds over 50 steps (target +/-0.01)";
  let orca = orca () and canopy = canopy_rob () in
  let traces =
    [
      Canopy_trace.Synthetic.triangle ~duration_ms:scale.trace_ms
        ~cycle_ms:5_000 ~floor_mbps:12. ~peak_mbps:96. ();
      Canopy_trace.Lte.generate ~name:"lte-verizon" ~seed:202
        ~duration_ms:scale.trace_ms ();
    ]
  in
  List.iteri
    (fun i trace ->
      Format.printf "@.-- trace %d: %s@." (i + 1) (Trace.name trace);
      Format.printf "%-12s %-22s %-14s %-18s@." "model" "certified comps/step"
        "steps full" "mean change width";
      List.iter
        (fun model ->
          let certs =
            component_distribution model (Property.robustness ()) 2. trace 50
          in
          let comps =
            List.concat_map
              (fun (c : Certify.t) -> Array.to_list c.components)
              certs
          in
          let certified =
            List.length (List.filter (fun c -> c.Certify.certified) comps)
          in
          let full_steps =
            List.length (List.filter (fun (c : Certify.t) -> c.fcs) certs)
          in
          let width =
            Stats.mean
              (Array.of_list
                 (List.map
                    (fun c -> Canopy_absint.Interval.width c.Certify.output)
                    comps))
          in
          Format.printf "%-12s %14.1f/%-5d %10d/%-3d %18.4f@." model.name
            (float_of_int certified /. float_of_int (List.length certs))
            scale.eval_components full_steps (List.length certs) width)
        [ orca; canopy ])
    traces

(* ------------------------------------------------------------------ *)
(* Figs 10/11: empirical performance vs baselines *)

let empirical_schemes () =
  let orca = orca () and canopy = canopy_perf () in
  [
    ("canopy", fun bdp ts -> policy_results canopy bdp ts);
    ("orca", fun bdp ts -> policy_results orca bdp ts);
    ("cubic", fun bdp ts -> tcp_results "cubic" Eval.cubic_scheme bdp ts);
    ("vegas", fun bdp ts -> tcp_results "vegas" Eval.vegas_scheme bdp ts);
    ("bbr", fun bdp ts -> tcp_results "bbr" Eval.bbr_scheme bdp ts);
    ("vivace", fun bdp ts -> tcp_results "vivace" Eval.vivace_scheme bdp ts);
  ]

let fig10 () =
  header "Figure 10: utilization & delays, shallow buffers (1 BDP)";
  print_empirical_table ~csv:"fig10" (empirical_schemes ()) 1.

let fig11 () =
  header "Figure 11: utilization & delays, large buffers (5 BDP)";
  print_empirical_table ~csv:"fig11" (empirical_schemes ()) 5.

(* ------------------------------------------------------------------ *)
(* Fig 12: metric changes under noise *)

let fig12 () =
  header "Figure 12: %% change of metrics under +/-5%% delay noise";
  let orca = orca () and canopy = canopy_rob () in
  let synth, real = by_category (traces ()) in
  Format.printf "%-12s %-10s %-12s %-12s %-10s@." "model" "category"
    "d-avg-delay%" "d-p95-delay%" "d-util%";
  List.iter
    (fun model ->
      List.iter
        (fun (cat_name, ts) ->
          let clean =
            Eval.mean_results cat_name (policy_results model 2. ts)
          in
          let noisy =
            Eval.mean_results cat_name
              (policy_results model 2. ~noise:(23, 0.05) ts)
          in
          let d = Eval.noise_delta ~clean ~noisy in
          Format.printf "%-12s %-10s %+11.1f %+11.1f %+9.1f@." model.name
            cat_name d.Eval.d_avg_qdelay_pct d.d_p95_qdelay_pct
            d.d_utilization_pct)
        [ ("synthetic", synth); ("real", real) ])
    [ orca; canopy ]

(* ------------------------------------------------------------------ *)
(* Fig 13: sensitivity to N and lambda *)

let fig13 () =
  header "Figure 13: sensitivity to N (components) and lambda";
  let configs =
    [
      ("N1-l0.25", 1, 0.25);
      ("N5-l0.25", 5, 0.25);
      ("N10-l0.25", 10, 0.25);
      ("N5-l0.50", 5, 0.5);
      ("N5-l0.75", 5, 0.75);
    ]
  in
  let synth, _ = by_category (traces ()) in
  Format.printf "%-12s %-8s %-12s %-12s@." "config" "util%" "avg-qdelay"
    "p95-qdelay";
  List.iter
    (fun (name, n, lambda) ->
      let model =
        get_model ~name:("sens-" ^ name) ~lambda
          ~property:(Property.performance ()) ~n_components:n
      in
      let m = Eval.mean_results "synthetic" (policy_results model 2. synth) in
      Format.printf "%-12s %7.1f %9.1fms %9.1fms@." name
        (100. *. m.Eval.utilization)
        m.Eval.avg_qdelay_ms m.Eval.p95_qdelay_ms)
    configs

(* ------------------------------------------------------------------ *)
(* Fig 14: training curves *)

let fig14 () =
  header "Figure 14: training curves (raw / verifier / overall reward)";
  let orca = orca () and canopy = canopy_perf () in
  List.iter
    (fun model ->
      Format.printf "@.-- %s@." model.name;
      Format.printf "%-6s %-8s %-8s %-10s %-8s@." "epoch" "raw" "verifier"
        "overall" "fcc";
      List.iter
        (fun (e : Trainer.epoch) ->
          Format.printf "%-6d %-8.3f %-8.3f %-10.3f %-8.3f@." e.Trainer.epoch
            e.raw_reward e.verifier_reward e.combined_reward e.fcc)
        model.curve;
      match (model.curve, List.rev model.curve) with
      | first :: _, last :: _ ->
          Format.printf "verifier reward %s over training (%.3f -> %.3f)@."
            (if last.Trainer.verifier_reward >= first.Trainer.verifier_reward
             then "rose"
             else "fell")
            first.Trainer.verifier_reward last.Trainer.verifier_reward
      | _ -> ())
    [ orca; canopy ]

(* ------------------------------------------------------------------ *)
(* Table 3: epoch rates (bechamel timing of the training-step kernels) *)

let table3 () =
  header "Table 3: epoch rates (training steps per second)";
  let open Bechamel in
  let make_step ~with_verifier ~n_components =
    (* One full training interaction: environment step + TD3 update,
       optionally preceded by certificate construction as in Canopy. *)
    let envs = train_pool () in
    let env = Canopy_orca.Agent_env.create (List.hd envs) in
    ignore (Canopy_orca.Agent_env.reset env);
    let rng = Canopy_util.Prng.create 7 in
    let agent =
      Canopy_rl.Td3.create ~rng
        {
          (Canopy_rl.Td3.default_config
             ~state_dim:(history * Canopy_orca.Observation.feature_count)
             ~action_dim:1)
          with
          hidden = 64;
          warmup = 64;
          batch_size = 64;
        }
    in
    let property = Property.performance () in
    fun () ->
      let s = Canopy_orca.Agent_env.state env in
      let a = Canopy_rl.Td3.select_action ~explore:true agent s in
      if with_verifier then
        ignore
          (Certify.certify ~actor:(Canopy_rl.Td3.actor agent) ~property
             ~n_components ~history ~state:s
             ~cwnd_tcp:(Canopy_orca.Agent_env.cwnd_tcp env)
             ~prev_cwnd:(Canopy_orca.Agent_env.prev_cwnd_enforced env) ());
      let res = Canopy_orca.Agent_env.step env ~action:a.(0) in
      Canopy_rl.Td3.observe agent
        {
          Canopy_rl.Replay_buffer.state = s;
          action = a;
          reward = res.Canopy_orca.Agent_env.raw_reward;
          next_state = res.Canopy_orca.Agent_env.state;
          terminal = false;
          truncated = res.Canopy_orca.Agent_env.finished;
        };
      Canopy_rl.Td3.update agent;
      if res.Canopy_orca.Agent_env.finished then
        ignore (Canopy_orca.Agent_env.reset env)
  in
  (* Verifier-only kernels at the paper's network width (hidden 256):
     the per-epoch complexity model of Section 6.6 is
     O(C3) = 2N · O(Verifier) + O(Orca), so the verifier latency must
     scale linearly with N. *)
  let make_verify ~n_components =
    let rng = Canopy_util.Prng.create 9 in
    let actor =
      Canopy_nn.Mlp.actor ~rng
        ~in_dim:(history * Canopy_orca.Observation.feature_count)
        ~hidden:256 ~out_dim:1
    in
    let property = Property.performance () in
    let state =
      Array.make (history * Canopy_orca.Observation.feature_count) 0.4
    in
    fun () ->
      ignore
        (Certify.certify ~actor ~property ~n_components ~history ~state
           ~cwnd_tcp:100. ~prev_cwnd:90. ())
  in
  let tests =
    [
      ("step-orca", make_step ~with_verifier:false ~n_components:1);
      ("step-c3-N1", make_step ~with_verifier:true ~n_components:1);
      ("step-c3-N5", make_step ~with_verifier:true ~n_components:5);
      ("step-c3-N10", make_step ~with_verifier:true ~n_components:10);
      ("verify-N1", make_verify ~n_components:1);
      ("verify-N5", make_verify ~n_components:5);
      ("verify-N10", make_verify ~n_components:10);
      ("verify-N50", make_verify ~n_components:50);
    ]
  in
  let grouped =
    Test.make_grouped ~name:"epoch"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "%-18s %-14s %-14s@." "kernel" "ns/run" "runs/s";
  List.iter
    (fun (name, _) ->
      let key = "epoch/" ^ name in
      match Hashtbl.find_opt results key with
      | Some result -> (
          match Analyze.OLS.estimates result with
          | Some [ ns ] when ns > 0. ->
              Format.printf "%-18s %14.0f %14.1f@." name ns (1e9 /. ns)
          | _ -> Format.printf "%-18s (no estimate)@." name)
      | None -> Format.printf "%-18s (missing)@." name)
    tests;
  Format.printf
    "@.The step-* rows are full training interactions (simulated link +@.";
  Format.printf
    "TD3 update); the verify-* rows isolate certificate construction at@.";
  Format.printf
    "the paper's 256-wide actor, whose latency grows linearly with N as@.";
  Format.printf "in the Section-6.6 complexity model.@."

(* [--smoke]: tiny iteration counts for the perf-tracking experiments
   (kernels, certify) so dune's @check can exercise them end to end;
   their JSON records then go to temp files to keep checkouts clean. *)
let smoke_mode = ref false

(* ------------------------------------------------------------------ *)
(* kernels: batched vs per-sample training kernels (BENCH_train_step) *)

let kernels () =
  header "kernels: batched vs per-sample training-step timings";
  let open Bechamel in
  let module Mat = Canopy_tensor.Mat in
  let module Td3 = Canopy_rl.Td3 in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  let action_dim = 1 in
  let hidden = 64 in
  let rand_vec rng n =
    let v = Array.make n 0. in
    for i = 0 to n - 1 do
      v.(i) <- Canopy_util.Prng.uniform rng (-1.) 1.
    done;
    v
  in
  (* A TD3 agent past warmup over a synthetic replay buffer, so the
     measured closure is training updates only, no environment in the
     loop. One measured op covers one full policy period —
     [policy_delay] consecutive updates (critics every call, actor and
     target nets on the last) — so every sample does identical work
     whatever phase the agent is in and however many ops bechamel packs
     into it; the table and JSON report per-update times. *)
  let policy_period =
    (Td3.default_config ~state_dim ~action_dim).Td3.policy_delay
  in
  let make_update kernel ~batch_size =
    let rng = Canopy_util.Prng.create 11 in
    let agent =
      Td3.create ~rng
        {
          (Td3.default_config ~state_dim ~action_dim) with
          hidden;
          batch_size;
          warmup = batch_size;
          buffer_capacity = 4_096;
        }
    in
    let data = Canopy_util.Prng.create 13 in
    for _ = 1 to 1_024 do
      Td3.observe agent
        {
          Canopy_rl.Replay_buffer.state = rand_vec data state_dim;
          action = rand_vec data action_dim;
          reward = Canopy_util.Prng.uniform data (-1.) 1.;
          next_state = rand_vec data state_dim;
          terminal = false;
          truncated = false;
        }
    done;
    fun () ->
      for _ = 1 to policy_period do
        Td3.update ~kernel agent
      done
  in
  let make_actor_forward ~batch_size =
    let rng = Canopy_util.Prng.create 17 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:state_dim ~hidden ~out_dim:action_dim
    in
    let states =
      Mat.init ~rows:batch_size ~cols:state_dim (fun i j ->
          Float.sin (float_of_int ((i * state_dim) + j)))
    in
    fun () -> ignore (Canopy_nn.Mlp.forward_batch actor states)
  in
  let make_critic_fit ~batch_size =
    let rng = Canopy_util.Prng.create 19 in
    let critic = Canopy_nn.Mlp.critic ~rng ~state_dim ~action_dim ~hidden in
    let opt = Canopy_nn.Optimizer.adam ~lr:1e-3 () in
    let dim = state_dim + action_dim in
    let inputs =
      Mat.init ~rows:batch_size ~cols:dim (fun i j ->
          Float.sin (float_of_int ((i * dim) + j)))
    in
    let targets = Array.init batch_size (fun i -> Float.cos (float_of_int i)) in
    let inv_n = 1. /. float_of_int batch_size in
    fun () ->
      Canopy_nn.Mlp.zero_grad critic;
      let preds, tape = Canopy_nn.Mlp.forward_train critic inputs in
      let dout =
        Mat.init ~rows:batch_size ~cols:1 (fun i _ ->
            2. *. (Mat.get preds i 0 -. targets.(i)) *. inv_n)
      in
      ignore (Canopy_nn.Mlp.backward critic tape dout);
      let params = Canopy_nn.Mlp.params critic in
      Canopy_nn.Optimizer.clip_gradients ~norm:10. params;
      Canopy_nn.Optimizer.step opt params
  in
  (* (name, batch size, units of work per closure call, closure). *)
  let tests =
    [
      ("actor_forward_b64", 64, 1, make_actor_forward ~batch_size:64);
      ("actor_forward_b256", 256, 1, make_actor_forward ~batch_size:256);
      ("critic_fit_b64", 64, 1, make_critic_fit ~batch_size:64);
      ("critic_fit_b256", 256, 1, make_critic_fit ~batch_size:256);
      ( "td3_update_batched_b64",
        64,
        policy_period,
        make_update Td3.Batched ~batch_size:64 );
      ( "td3_update_batched_b256",
        256,
        policy_period,
        make_update Td3.Batched ~batch_size:256 );
      ( "td3_update_per_sample_b64",
        64,
        policy_period,
        make_update Td3.Per_sample ~batch_size:64 );
      ( "td3_update_per_sample_b256",
        256,
        policy_period,
        make_update Td3.Per_sample ~batch_size:256 );
    ]
  in
  let grouped =
    Test.make_grouped ~name:"kernels"
      (List.map (fun (name, _, _, f) -> Test.make ~name (Staged.stage f)) tests)
  in
  (* Stabilizing/compacting the GC before every sample (bechamel's
     default) perturbs the steady-state heap a training loop actually
     runs with and makes the update timings swing by tens of percent
     across runs; a sustained-throughput measurement wants the heap in
     steady state, so both are disabled here (for every kernel alike). *)
  let cfg =
    if !smoke_mode then
      Benchmark.cfg ~limit:25 ~quota:(Time.second 0.05) ~stabilize:false
        ~compaction:false ()
    else
      Benchmark.cfg ~limit:4000 ~quota:(Time.second 2.0) ~stabilize:false
        ~compaction:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let ns_of name =
    match Hashtbl.find_opt results ("kernels/" ^ name) with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ ns ] when ns > 0. -> Some ns
        | _ -> None)
    | None -> None
  in
  Format.printf "%-26s %-14s %-14s@." "kernel" "ns/op" "ops/s";
  let measured =
    List.filter_map
      (fun (name, batch, per_op, _) ->
        match ns_of name with
        | Some ns ->
            let ns = ns /. float_of_int per_op in
            Format.printf "%-26s %14.0f %14.1f@." name ns (1e9 /. ns);
            Some (name, batch, ns)
        | None ->
            Format.printf "%-26s (no estimate)@." name;
            None)
      tests
  in
  let speedup b =
    let find n = List.find_opt (fun (name, _, _) -> name = n) measured in
    match
      ( find (Printf.sprintf "td3_update_per_sample_b%d" b),
        find (Printf.sprintf "td3_update_batched_b%d" b) )
    with
    | Some (_, _, ref_ns), Some (_, _, bat_ns) when bat_ns > 0. ->
        Some (ref_ns /. bat_ns)
    | _ -> None
  in
  let s64 = speedup 64 and s256 = speedup 256 in
  List.iter
    (fun (b, s) ->
      match s with
      | Some s ->
          Format.printf "TD3 update speedup, batched vs per-sample, b%d: %.2fx%s@."
            b s
            (if b = 64 && not !smoke_mode then
               if s >= 3. then "  (>= 3x: OK)" else "  (below 3x target!)"
             else "")
      | None -> ())
    [ (64, s64); (256, s256) ];
  (* Machine-readable record. Full runs overwrite BENCH_train_step.json
     in the working directory so the perf history is trackable; smoke
     runs (tiny iteration counts, e.g. under dune's @check) exercise the
     emitter but write to a temp file to keep checkouts clean. *)
  let json_path =
    if !smoke_mode then Filename.temp_file "canopy-bench-train-step" ".json"
    else "BENCH_train_step.json"
  in
  json_write json_path (fun buf ->
      Printf.bprintf buf
        "{\n  \"bench\": \"train_step\",\n  \"mode\": %S,\n  \"hidden\": %d,\n\
        \  \"state_dim\": %d,\n  \"action_dim\": %d,\n  \"entries\": [\n"
        (if !smoke_mode then "smoke" else "full")
        hidden state_dim action_dim;
      let last = List.length measured - 1 in
      List.iteri
        (fun i (name, batch, ns) ->
          Printf.bprintf buf
            "    {\"name\": %S, \"batch\": %d, \"ns_per_op\": %.1f}%s\n" name
            batch ns
            (if i = last then "" else ","))
        measured;
      Printf.bprintf buf "  ]";
      Option.iter
        (fun s -> Printf.bprintf buf ",\n  \"speedup_update_b64\": %.3f" s)
        s64;
      Option.iter
        (fun s -> Printf.bprintf buf ",\n  \"speedup_update_b256\": %.3f" s)
        s256;
      Printf.bprintf buf "\n}\n");
  Format.printf "wrote %s@." json_path

(* ------------------------------------------------------------------ *)
(* certify: batched IR engine vs per-slice reference (BENCH_certify) *)

let certify_bench () =
  header "certify: batched verifier IR vs per-slice reference";
  let open Bechamel in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  let property = Property.performance () in
  let state = Array.make state_dim 0.4 in
  (* Certificate construction at the paper's verification width
     (hidden 256, as in Table 3) and at the training width the
     per-step certificate actually runs at inside the C3 loop
     (hidden 64, matching Td3.default_config). Each (shape, workload)
     point is measured under both engines; the fused-IR cache is warm
     after the first call of each kernel, which is exactly the regime
     certify runs in between gradient updates. *)
  let make_cert ~hidden ~engine ~domain ~n_components =
    let rng = Canopy_util.Prng.create 9 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:state_dim ~hidden ~out_dim:1
    in
    fun () ->
      ignore
        (Certify.certify ~engine ~domain ~actor ~property ~n_components
           ~history ~state ~cwnd_tcp:100. ~prev_cwnd:90. ())
  in
  let make_adaptive ~hidden ~engine =
    let rng = Canopy_util.Prng.create 9 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:state_dim ~hidden ~out_dim:1
    in
    fun () ->
      ignore
        (Certify.certify_adaptive ~engine ~domain:Certify.Box_domain ~actor
           ~property ~initial_components:2 ~max_components:50 ~history ~state
           ~cwnd_tcp:100. ~prev_cwnd:90. ())
  in
  let engines =
    [ ("batched", Certify.Batched); ("per_slice", Certify.Per_slice) ]
  in
  let tests =
    List.concat_map
      (fun (ename, engine) ->
        [
          ( Printf.sprintf "cert_box_N5_%s" ename,
            make_cert ~hidden:256 ~engine ~domain:Certify.Box_domain
              ~n_components:5 );
          ( Printf.sprintf "cert_box_N20_%s" ename,
            make_cert ~hidden:256 ~engine ~domain:Certify.Box_domain
              ~n_components:20 );
          ( Printf.sprintf "cert_zono_N5_%s" ename,
            make_cert ~hidden:256 ~engine ~domain:Certify.Zonotope_domain
              ~n_components:5 );
          ( Printf.sprintf "cert_adaptive_%s" ename,
            make_adaptive ~hidden:256 ~engine );
          ( Printf.sprintf "train_cert_N5_%s" ename,
            make_cert ~hidden:64 ~engine ~domain:Certify.Box_domain
              ~n_components:5 );
          ( Printf.sprintf "train_cert_N20_%s" ename,
            make_cert ~hidden:64 ~engine ~domain:Certify.Box_domain
              ~n_components:20 );
        ])
      engines
  in
  let grouped =
    Test.make_grouped ~name:"certify"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests)
  in
  (* Same steady-state-heap rationale as the kernels experiment. *)
  let cfg =
    if !smoke_mode then
      Benchmark.cfg ~limit:10 ~quota:(Time.second 0.05) ~stabilize:false
        ~compaction:false ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:false
        ~compaction:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let ns_of name =
    match Hashtbl.find_opt results ("certify/" ^ name) with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ ns ] when ns > 0. -> Some ns
        | _ -> None)
    | None -> None
  in
  Format.printf "%-26s %-14s %-14s@." "kernel" "ns/cert" "certs/s";
  let measured =
    List.filter_map
      (fun (name, _) ->
        match ns_of name with
        | Some ns ->
            Format.printf "%-26s %14.0f %14.1f@." name ns (1e9 /. ns);
            Some (name, ns)
        | None ->
            Format.printf "%-26s (no estimate)@." name;
            None)
      tests
  in
  let speedup base =
    match
      ( List.assoc_opt (base ^ "_per_slice") measured,
        List.assoc_opt (base ^ "_batched") measured )
    with
    | Some ref_ns, Some bat_ns when bat_ns > 0. -> Some (ref_ns /. bat_ns)
    | _ -> None
  in
  let bases =
    [
      "cert_box_N5"; "cert_box_N20"; "cert_zono_N5"; "cert_adaptive";
      "train_cert_N5"; "train_cert_N20";
    ]
  in
  let speedups = List.map (fun b -> (b, speedup b)) bases in
  List.iter
    (fun (b, s) ->
      match s with
      | Some s ->
          Format.printf "certify speedup, batched vs per-slice, %s: %.2fx%s@."
            b s
            (if b = "cert_box_N5" && not !smoke_mode then
               if s >= 3. then "  (>= 3x: OK)" else "  (below 3x target!)"
             else "")
      | None -> ())
    speedups;
  let json_path =
    if !smoke_mode then Filename.temp_file "canopy-bench-certify" ".json"
    else "BENCH_certify.json"
  in
  json_write json_path (fun buf ->
      Printf.bprintf buf
        "{\n  \"bench\": \"certify\",\n  \"mode\": %S,\n  \"hidden\": 256,\n\
        \  \"train_hidden\": 64,\n  \"state_dim\": %d,\n  \"entries\": [\n"
        (if !smoke_mode then "smoke" else "full")
        state_dim;
      let last = List.length measured - 1 in
      List.iteri
        (fun i (name, ns) ->
          Printf.bprintf buf "    {\"name\": %S, \"ns_per_cert\": %.1f}%s\n"
            name ns
            (if i = last then "" else ","))
        measured;
      Printf.bprintf buf "  ]";
      List.iter
        (fun (b, s) ->
          Option.iter
            (fun s -> Printf.bprintf buf ",\n  \"speedup_%s\": %.3f" b s)
            s)
        speedups;
      Printf.bprintf buf "\n}\n");
  Format.printf "wrote %s@." json_path

(* ------------------------------------------------------------------ *)
(* par: deterministic domain pool, sequential vs parallel (BENCH_par) *)

let par_bench () =
  header "par: domain-pool parallel gemm / certify / eval vs sequential";
  let open Bechamel in
  let module Mat = Canopy_tensor.Mat in
  let module Pool = Canopy_util.Pool in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  (* [recommended_domain_count] is the portable core-count probe OCaml
     gives us; it is the denominator every speedup claim below is
     conditioned on. On a host with [domains > num_cores] the extra
     domains time-slice one core, so the multi-domain rows measure
     oversubscription — they are recorded, but their speedup entries
     carry a [skipped_reason] instead of standing as a claim. *)
  let num_cores = Domain.recommended_domain_count () in
  let counts = List.sort_uniq Int.compare [ 1; 2; num_cores ] in
  let pools = List.map (fun d -> (d, Pool.create ~domains:d ())) counts in
  let pool_of d = List.assoc d pools in
  (* Creating the multi-domain pools above fired the one-shot grain
     calibration (if nothing pinned it first); capture what the GEMM
     dispatch will actually use before the probes pin tiny grains. *)
  let cal = Mat.calibration () in
  Format.printf
    "grain calibration (%s): min_flops=%d chunk_flops=%d \
     chunk_overhead_ns=%.0f flops_per_ns=%.2f@."
    cal.Mat.source cal.Mat.min_flops cal.Mat.chunk_flops
    cal.Mat.chunk_overhead_ns cal.Mat.flops_per_ns;
  if num_cores = 1 then
    Format.printf
      "single-core machine: parallel rows measure oversubscription and \
       their speedups are marked skipped.@.";
  (* -- bit-exactness probes: every parallel path must reproduce its
     1-domain result exactly on a 2-domain pool. The grain is forced down
     so even these small probe workloads actually chunk. *)
  let with_tiny_grain f =
    let min_flops, chunk_flops = Mat.parallel_grain () in
    Fun.protect
      ~finally:(fun () -> Mat.set_parallel_grain ~min_flops ~chunk_flops)
      (fun () ->
        Mat.set_parallel_grain ~min_flops:1 ~chunk_flops:1;
        f ())
  in
  let under d f =
    Pool.set_default (pool_of d);
    f ()
  in
  let probes_run = ref [] in
  let probe name got =
    probes_run := name :: !probes_run;
    if not got then failwith (Printf.sprintf "par: %s differs across domain counts" name);
    Format.printf "probe %-18s seq == par(2 domains): OK@." name
  in
  with_tiny_grain (fun () ->
      let rng = Canopy_util.Prng.create 33 in
      let mat rows cols =
        Mat.init ~rows ~cols (fun _ _ -> Canopy_util.Prng.uniform rng (-1.) 1.)
      in
      (* 37 rows trips the packed-panel nt path (>= 12 rows), so this
         probe pins the B-panel packing + 4x4 micro-kernel, not just the
         direct loops. *)
      let a = mat 37 29 and b = mat 41 29 in
      let bias = Array.init 41 (fun i -> Float.sin (float_of_int i)) in
      let run () =
        let dst = Mat.create ~rows:37 ~cols:41 in
        Mat.mat_mul_nt_bias_into ~dst a b bias;
        Array.map Int64.bits_of_float (Mat.raw dst)
      in
      probe "gemm_packed" (under 1 run = under 2 run);
      (* 300 shared dims span multiple 128-column k-blocks of the cache-
         blocked [mat_mul_into], so the store/reload accumulation across
         block boundaries is exercised too. *)
      let ab = mat 24 300 and bb = mat 300 17 in
      let run_blocked () =
        let dst = Mat.create ~rows:24 ~cols:17 in
        Mat.mat_mul_into ~dst ab bb;
        Array.map Int64.bits_of_float (Mat.raw dst)
      in
      probe "gemm_blocked" (under 1 run_blocked = under 2 run_blocked);
      (* Full TD3 gradient steps (sharded critic fits + actor conduit,
         policy delay 2 so the second update moves the actor and the
         targets): every learned parameter of all six networks must come
         out bit-identical whatever the pool width. *)
      let module Td3 = Canopy_rl.Td3 in
      let arng = Canopy_util.Prng.create 51 in
      let tcfg =
        {
          (Td3.default_config ~state_dim:4 ~action_dim:2) with
          Td3.hidden = 32;
          batch_size = 64;
          warmup = 64;
          buffer_capacity = 256;
        }
      in
      let agent = Td3.create ~rng:arng tcfg in
      let data = Canopy_util.Prng.create 52 in
      let rv n =
        Array.init n (fun _ -> Canopy_util.Prng.uniform data (-1.) 1.)
      in
      for _ = 1 to 256 do
        Td3.observe agent
          {
            Canopy_rl.Replay_buffer.state = rv 4;
            action = rv 2;
            reward = Canopy_util.Prng.uniform data (-1.) 1.;
            next_state = rv 4;
            terminal = false;
            truncated = false;
          }
      done;
      let snap0 = Td3.snapshot agent in
      let run_td3 d =
        Td3.restore agent snap0;
        under d (fun () ->
            Td3.update ~kernel:Td3.Batched agent;
            Td3.update ~kernel:Td3.Batched agent);
        let snap = Td3.snapshot agent in
        List.concat_map
          (fun (_, net) ->
            List.map
              (fun (v, _) -> Array.map Int64.bits_of_float v)
              (Canopy_nn.Mlp.params net))
          snap.Td3.nets
      in
      probe "td3_update" (run_td3 1 = run_td3 2);
      let prng = Canopy_util.Prng.create 9 in
      let actor =
        Canopy_nn.Mlp.actor ~rng:prng ~in_dim:state_dim ~hidden:32 ~out_dim:1
      in
      let state = Array.make state_dim 0.4 in
      let property = Property.performance () in
      let cert () =
        Certify.certify ~engine:Certify.Batched ~domain:Certify.Box_domain
          ~actor ~property ~n_components:50 ~history ~state ~cwnd_tcp:100.
          ~prev_cwnd:90. ()
      in
      probe "certify" (under 1 cert = under 2 cert);
      let links =
        List.map (Eval.link ~min_rtt_ms)
          (List.filteri (fun i _ -> i < 2) (Suite.all ~duration_ms:2_000 ()))
      in
      let tasks =
        List.map
          (fun l () -> Eval.eval_tcp ~name:"cubic" Eval.cubic_scheme l)
          links
      in
      let sweep () = Eval.run_tasks tasks in
      probe "eval_sweep" (under 1 sweep = under 2 sweep));
  (* Probe coverage is part of the contract: a refactor that silently
     stops routing a workload through its parallel path would otherwise
     pass the equality probes vacuously. [--smoke] runs exactly this. *)
  List.iter
    (fun name ->
      if not (List.mem name !probes_run) then
        failwith (Printf.sprintf "par: bit-equality probe %s did not run" name))
    [ "gemm_packed"; "gemm_blocked"; "td3_update"; "certify"; "eval_sweep" ];
  (* -- timings: each workload at every domain count; d=1 is the
     sequential reference row. *)
  let gemm_work =
    let rng = Canopy_util.Prng.create 21 in
    let dim = 256 in
    let mat rows cols =
      Mat.init ~rows ~cols (fun _ _ -> Canopy_util.Prng.uniform rng (-1.) 1.)
    in
    let a = mat dim dim and b = mat dim dim in
    let bias = Array.init dim (fun i -> Float.cos (float_of_int i)) in
    let dst = Mat.create ~rows:dim ~cols:dim in
    fun () -> Mat.mat_mul_nt_bias_into ~dst a b bias
  in
  let certify_work =
    let rng = Canopy_util.Prng.create 9 in
    let actor =
      Canopy_nn.Mlp.actor ~rng ~in_dim:state_dim ~hidden:256 ~out_dim:1
    in
    let state = Array.make state_dim 0.4 in
    let property = Property.performance () in
    fun () ->
      ignore
        (Certify.certify ~engine:Certify.Batched ~domain:Certify.Box_domain
           ~actor ~property ~n_components:50 ~history ~state ~cwnd_tcp:100.
           ~prev_cwnd:90. ())
  in
  let eval_work =
    let duration_ms = if !smoke_mode then 2_000 else scale.trace_ms in
    let links =
      List.map (Eval.link ~min_rtt_ms)
        (List.filteri (fun i _ -> i < 6) (Suite.all ~duration_ms ()))
    in
    let tasks =
      List.map
        (fun l () -> Eval.eval_tcp ~name:"cubic" Eval.cubic_scheme l)
        links
    in
    fun () -> ignore (Eval.run_tasks tasks)
  in
  let workloads =
    [ ("gemm", gemm_work); ("certify", certify_work); ("eval_sweep", eval_work) ]
  in
  let tests =
    List.concat_map
      (fun (wname, work) ->
        List.map
          (fun (d, pool) ->
            ( Printf.sprintf "%s_d%d" wname d,
              wname,
              d,
              fun () ->
                (* Selecting the pool inside the closure keeps each
                   bechamel sample self-contained; the set_default cost
                   is a mutex flip, noise against ms-scale workloads. *)
                Pool.set_default pool;
                work () ))
          pools)
      workloads
  in
  let grouped =
    Test.make_grouped ~name:"par"
      (List.map (fun (name, _, _, f) -> Test.make ~name (Staged.stage f)) tests)
  in
  (* Same steady-state-heap rationale as the kernels experiment. *)
  let cfg =
    if !smoke_mode then
      Benchmark.cfg ~limit:6 ~quota:(Time.second 0.05) ~stabilize:false
        ~compaction:false ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.5) ~stabilize:false
        ~compaction:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let ns_of name =
    match Hashtbl.find_opt results ("par/" ^ name) with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ ns ] when ns > 0. -> Some ns
        | _ -> None)
    | None -> None
  in
  Format.printf "%-22s %-14s %-14s@." "workload" "ns/op" "ops/s";
  let measured =
    List.filter_map
      (fun (name, wname, d, _) ->
        match ns_of name with
        | Some ns ->
            Format.printf "%-22s %14.0f %14.1f@." name ns (1e9 /. ns);
            Some (name, wname, d, ns)
        | None ->
            Format.printf "%-22s (no estimate)@." name;
            None)
      tests
  in
  let par_counts =
    List.filter_map (fun (d, _) -> if d > 1 then Some d else None) pools
  in
  let speedup_at wname d =
    let find d =
      List.find_map
        (fun (_, w, d', ns) -> if w = wname && d' = d then Some ns else None)
        measured
    in
    match (find 1, find d) with
    | Some seq_ns, Some par_ns when par_ns > 0. -> Some (seq_ns /. par_ns)
    | _ -> None
  in
  (* A ratio taken with more domains than cores measures the scheduler's
     time-slicing, not parallelism: record it, but mark it skipped so it
     never reads as a speedup claim. *)
  let skipped_reason d =
    if d > num_cores then
      Some
        (Printf.sprintf
           "%d domains oversubscribe %d core%s: ratio measures \
            time-slicing, not parallel speedup"
           d num_cores
           (if num_cores = 1 then "" else "s"))
    else None
  in
  let speedups =
    List.concat_map
      (fun (w, _) ->
        List.filter_map
          (fun d ->
            Option.map (fun s -> (w, d, s, skipped_reason d)) (speedup_at w d))
          par_counts)
      workloads
  in
  List.iter
    (fun (w, d, s, skip) ->
      Format.printf "par speedup, %d domains vs sequential, %s: %.2fx%s@." d w
        s
        (match skip with None -> "" | Some _ -> "  [skipped: oversubscribed]"))
    speedups;
  let json_path =
    if !smoke_mode then Filename.temp_file "canopy-bench-par" ".json"
    else "BENCH_par.json"
  in
  json_write json_path (fun buf ->
      Printf.bprintf buf
        "{\n  \"bench\": \"par\",\n  \"mode\": %S,\n\
        \  \"num_cores\": %d,\n  \"domain_counts\": [%s],\n\
        \  \"calibration\": {\"source\": %S, \"min_flops\": %d, \
         \"chunk_flops\": %d, \"chunk_overhead_ns\": %.1f, \
         \"flops_per_ns\": %.3f},\n\
        \  \"entries\": [\n"
        (if !smoke_mode then "smoke" else "full")
        num_cores
        (String.concat ", " (List.map (fun (d, _) -> string_of_int d) pools))
        cal.Mat.source cal.Mat.min_flops cal.Mat.chunk_flops
        cal.Mat.chunk_overhead_ns cal.Mat.flops_per_ns;
      let last = List.length measured - 1 in
      List.iteri
        (fun i (name, wname, d, ns) ->
          Printf.bprintf buf
            "    {\"name\": %S, \"workload\": %S, \"domains\": %d, \
             \"ns_per_op\": %.1f}%s\n"
            name wname d ns
            (if i = last then "" else ","))
        measured;
      Printf.bprintf buf "  ],\n  \"speedups\": [\n";
      let last = List.length speedups - 1 in
      List.iteri
        (fun i (w, d, s, skip) ->
          Printf.bprintf buf
            "    {\"workload\": %S, \"domains\": %d, \"ratio\": %.3f%s}%s\n" w
            d s
            (match skip with
            | None -> ""
            | Some reason -> Printf.sprintf ", \"skipped_reason\": %S" reason)
            (if i = last then "" else ","))
        speedups;
      Printf.bprintf buf "  ]\n}\n");
  Format.printf "wrote %s@." json_path;
  (* Leave the 1-domain pool as the ambient default (at_exit reaps it)
     and reap the sized ones now. *)
  Pool.set_default (pool_of 1);
  List.iter (fun (d, p) -> if d <> 1 then Pool.shutdown p) pools

(* ------------------------------------------------------------------ *)
(* Fleet: vectorized simulator throughput + batched policy serving *)

let fleet_bench () =
  header "fleet: vectorized links, one policy GEMM per decision tick";
  let module Mat = Canopy_tensor.Mat in
  let module Pool = Canopy_util.Pool in
  let module Mlp = Canopy_nn.Mlp in
  let module Agent_env = Canopy_orca.Agent_env in
  let module Fleet_env = Canopy_orca.Fleet_env in
  let module Fleet_eval = Canopy.Fleet_eval in
  let num_cores = Domain.recommended_domain_count () in
  let counts = List.sort_uniq Int.compare [ 1; 2; num_cores ] in
  let pools = List.map (fun d -> (d, Pool.create ~domains:d ())) counts in
  let pool_of d = List.assoc d pools in
  let under d f =
    Pool.set_default (pool_of d);
    f ()
  in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  let actor =
    Mlp.actor
      ~rng:(Canopy_util.Prng.create 3)
      ~in_dim:state_dim ~hidden:64 ~out_dim:1
  in
  let clamp = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. in
  (* One episode config per flow: capacities staggered across the fleet
     so flows genuinely diverge, optional impairments to exercise the
     per-flow PRNG and the jittered-return resort path. *)
  let mk_cfg ?(interval = 40) ?(buffer = 160)
      ?(impair = Canopy_netsim.Env.no_impairments) ~duration_ms i =
    let mbps = 12. +. (6. *. float_of_int (i mod 7)) in
    let trace =
      Trace.constant
        ~name:(Printf.sprintf "fleet-c%02d" (i mod 7))
        ~duration_ms ~mbps
    in
    {
      (Agent_env.default_config ~trace ~min_rtt_ms ~buffer_pkts:buffer
         ~duration_ms)
      with
      Agent_env.interval_ms = Some interval;
      impairments = impair;
    }
  in
  (* -- bit-exactness probes ---------------------------------------- *)
  let probes_run = ref [] in
  let probe name got =
    probes_run := name :: !probes_run;
    if not got then
      failwith (Printf.sprintf "fleet: %s trajectories differ" name);
    Format.printf "probe %-16s OK@." name
  in
  (* A full-episode trajectory fingerprint: per decision tick the bits
     of every flow's state row, action, reward and enforced window.
     Anything the sim or the serving path computes differently shows up
     here. *)
  let fleet_trajectory cfgs =
    let env = Fleet_env.create cfgs in
    let n = Fleet_env.flows env in
    let x = Mat.create ~rows:n ~cols:(Fleet_env.state_dim env) in
    let y = Mat.create_uninit ~rows:n ~cols:1 in
    let actions = Array.make n 0. in
    let bits = ref [] in
    let push a = bits := Array.map Int64.bits_of_float a :: !bits in
    let fin = ref false in
    while not !fin do
      Fleet_env.write_states env ~dst:x;
      push (Array.copy (Mat.raw x));
      Mlp.forward_eval_into ~dst:y actor x;
      for i = 0 to n - 1 do
        actions.(i) <- clamp (Mat.raw y).(i)
      done;
      let r = Fleet_env.step env ~actions in
      push actions;
      push r.Fleet_env.rewards;
      push r.Fleet_env.cwnd_enforced;
      fin := r.Fleet_env.finished
    done;
    List.rev !bits
  in
  let scalar_trajectory cfgs =
    let envs = Array.map Agent_env.create cfgs in
    let n = Array.length envs in
    let bits = ref [] in
    let push a = bits := Array.map Int64.bits_of_float a :: !bits in
    let fin = ref false in
    while not !fin do
      let states =
        Array.concat (Array.to_list (Array.map Agent_env.state envs))
      in
      push states;
      let steps =
        Array.mapi
          (fun i env ->
            let action = clamp (Mlp.forward actor (Agent_env.state envs.(i))).(0) in
            (action, Agent_env.step env ~action))
          envs
      in
      push (Array.map fst steps);
      push (Array.map (fun (_, r) -> r.Agent_env.raw_reward) steps);
      push (Array.map (fun (_, r) -> r.Agent_env.cwnd_enforced) steps);
      fin := (snd steps.(n - 1)).Agent_env.finished
    done;
    List.rev !bits
  in
  (* 6 flows, one with wireless-style impairments (loss + jitter +
     reordering) so the per-flow PRNG stream, the jittered-return-path
     resort and the reorder hold-back are all in the comparison. *)
  let probe_cfgs =
    Array.init 6 (fun i ->
        let impair =
          if i = 4 then
            {
              Canopy_netsim.Env.random_loss = 0.01;
              ack_jitter_ms = 2;
              reorder_prob = 0.05;
              reorder_ms = 6;
              seed = 7;
            }
          else Canopy_netsim.Env.no_impairments
        in
        mk_cfg ~impair ~duration_ms:800 i)
  in
  probe "fleet_vs_scalar"
    (under 1 (fun () -> fleet_trajectory probe_cfgs)
    = scalar_trajectory probe_cfgs);
  (* 64 flows at a 300 ms cadence put each advancement call at
     64 × 300 = 19 200 flow·ms, above the fleet's parallel threshold
     (16 384), so the multi-domain runs genuinely chunk. *)
  let domain_cfgs =
    Array.init 64 (fun i ->
        let impair =
          if i mod 9 = 0 then
            {
              Canopy_netsim.Env.random_loss = 0.005;
              ack_jitter_ms = 1;
              reorder_prob = 0.02;
              reorder_ms = 4;
              seed = 100 + i;
            }
          else Canopy_netsim.Env.no_impairments
        in
        mk_cfg ~interval:300 ~impair ~duration_ms:1_200 i)
  in
  let ref_traj = under 1 (fun () -> fleet_trajectory domain_cfgs) in
  probe "fleet_domains"
    (List.for_all
       (fun d -> under d (fun () -> fleet_trajectory domain_cfgs) = ref_traj)
       (List.filter (fun d -> d <> 1) counts));
  List.iter
    (fun name ->
      if not (List.mem name !probes_run) then
        failwith (Printf.sprintf "fleet: probe %s never ran" name))
    [ "fleet_vs_scalar"; "fleet_domains" ];
  (* -- throughput -------------------------------------------------- *)
  (* Long fleet episodes are timed wall-clock (as [ablation] does)
     rather than via bechamel: one run is seconds at the large sizes
     and the quantity of interest is aggregate flow·ms/s, not ns/op. *)
  let sizes =
    if !smoke_mode then [ (32, 400) ]
    else [ (1_000, 1_600); (10_000, 800); (100_000, 400) ]
  in
  let time_fleet ~flows:n ~duration_ms d =
    under d (fun () ->
        let cfgs =
          Array.init n
            (mk_cfg ~buffer:(if n >= 100_000 then 64 else 160) ~duration_ms)
        in
        let env = Fleet_env.create cfgs in
        let t0 = Unix.gettimeofday () in
        let r = Fleet_eval.serve ~policy:(`Mlp actor) env in
        let wall = Unix.gettimeofday () -. t0 in
        (r, wall))
  in
  let entries =
    List.concat_map
      (fun (n, duration_ms) ->
        List.map
          (fun d ->
            let r, wall = time_fleet ~flows:n ~duration_ms d in
            let flow_ms = float_of_int (n * duration_ms) in
            let decisions = float_of_int (n * r.Fleet_eval.decision_ticks) in
            Format.printf
              "fleet %6d flows, %4d ms, %d domain%s: %.2fs wall, %.2e \
               flow·ms/s, %.2e decisions/s (jain %.3f, util %.1f%%)@."
              n duration_ms d
              (if d = 1 then " " else "s")
              wall (flow_ms /. wall) (decisions /. wall)
              r.Fleet_eval.jain
              (100. *. r.Fleet_eval.mean_utilization);
            (n, duration_ms, d, r.Fleet_eval.decision_ticks, wall,
             flow_ms /. wall, decisions /. wall))
          counts)
      sizes
  in
  (* Scalar baseline at the smallest size: the same episodes driven one
     [Agent_env] at a time with per-flow [Mlp.forward] inference — what
     the fleet's batching replaces. *)
  let base_n, base_dur = List.hd sizes in
  let scalar_wall =
    let cfgs = Array.init base_n (mk_cfg ~duration_ms:base_dur) in
    let t0 = Unix.gettimeofday () in
    ignore (scalar_trajectory cfgs : Int64.t array list);
    Unix.gettimeofday () -. t0
  in
  let fleet_wall_1d =
    match
      List.find_opt (fun (n, dur, d, _, _, _, _) ->
          n = base_n && dur = base_dur && d = 1)
        entries
    with
    | Some (_, _, _, _, w, _, _) -> w
    | None -> nan
  in
  let speedup = scalar_wall /. fleet_wall_1d in
  Format.printf
    "scalar baseline, %d flows: %.2fs wall — fleet(1 domain) speedup %.2fx@."
    base_n scalar_wall speedup;
  let json_path =
    if !smoke_mode then Filename.temp_file "canopy-bench-fleet" ".json"
    else "BENCH_fleet.json"
  in
  json_write json_path (fun buf ->
      Printf.bprintf buf
        "{\n  \"bench\": \"fleet\",\n  \"mode\": %S,\n\
        \  \"num_cores\": %d,\n  \"domain_counts\": [%s],\n\
        \  \"probes\": [%s],\n  \"entries\": [\n"
        (if !smoke_mode then "smoke" else "full")
        num_cores
        (String.concat ", " (List.map string_of_int counts))
        (String.concat ", "
           (List.rev_map (fun p -> Printf.sprintf "%S" p) !probes_run));
      let last = List.length entries - 1 in
      List.iteri
        (fun i (n, dur, d, ticks, wall, fps, dps) ->
          Printf.bprintf buf
            "    {\"flows\": %d, \"duration_ms\": %d, \"domains\": %d, \
             \"decision_ticks\": %d, \"wall_s\": %.3f, \
             \"flow_ms_per_sec\": %.1f, \"decisions_per_sec\": %.1f%s}%s\n"
            n dur d ticks wall fps dps
            (match
               if d > num_cores then
                 Some
                   (Printf.sprintf
                      "%d domains oversubscribe %d core%s: measures \
                       time-slicing, not parallel speedup"
                      d num_cores
                      (if num_cores = 1 then "" else "s"))
               else None
             with
            | None -> ""
            | Some reason -> Printf.sprintf ", \"skipped_reason\": %S" reason)
            (if i = last then "" else ","))
        entries;
      Printf.bprintf buf
        "  ],\n\
        \  \"scalar_baseline\": {\"flows\": %d, \"duration_ms\": %d, \
         \"wall_s\": %.3f, \"fleet_wall_s\": %.3f, \"speedup\": %.3f}\n}\n"
        base_n base_dur scalar_wall fleet_wall_1d speedup);
  Format.printf "wrote %s@." json_path;
  Pool.set_default (pool_of 1);
  List.iter (fun (d, p) -> if d <> 1 then Pool.shutdown p) pools

(* ------------------------------------------------------------------ *)
(* distill: piecewise-affine tree serving vs the MLP actor
   (BENCH_distill) *)

let distill_bench () =
  header "distill: piecewise-affine tree serving vs MLP actor";
  let open Bechamel in
  let module Mat = Canopy_tensor.Mat in
  let module Pool = Canopy_util.Pool in
  let module Tree = Canopy_distill.Tree in
  let module Fit = Canopy_distill.Fit in
  let model = canopy_perf () in
  let actor = model.actor in
  let num_cores = Domain.recommended_domain_count () in
  (* -- distillation cost: harvest the served policy over a stratified
     link set, then fit the tree; both walls are part of the record. *)
  let harvest_cfgs =
    (* one shared decision interval: the batched fleet harvest needs a
       homogeneous tick across flows *)
    Array.of_list
      (List.map
         (fun cfg -> { cfg with Canopy_orca.Agent_env.interval_ms = Some 40 })
         (Trainer.env_pool
            ~n:(if !smoke_mode then 2 else 6)
            ~duration_ms:(if !smoke_mode then 2_000 else 8_000)
            ~seed:7 ()))
  in
  let t0 = Unix.gettimeofday () in
  let xs, ys = Canopy_distill.Harvest.collect ~actor harvest_cfgs in
  let harvest_wall = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let tree =
    Fit.fit ~config:{ Fit.default_config with max_leaves = 64 } ~xs ~ys ()
  in
  let fit_wall = Unix.gettimeofday () -. t0 in
  let fidelity = Fit.mse tree ~xs ~ys in
  Format.printf
    "distilled %d states -> %d leaves (depth %d) in %.2fs harvest + %.2fs \
     fit; fidelity MSE %.3e@."
    (Array.length ys) (Tree.n_leaves tree) (Tree.depth tree) harvest_wall
    fit_wall fidelity;
  let d = Tree.in_dim tree in
  (* -- bit-exactness probe for the pool-parallel tree serving: the
     batched path must reproduce its 1-domain result exactly on a
     2-domain pool (tiny grain so the probe workload actually chunks).
     Coverage is asserted — [--smoke] runs exactly this. *)
  let saved_pool = Pool.default () in
  let probes_run = ref 0 in
  let counts = List.sort_uniq Int.compare [ 1; 2; num_cores ] in
  let pools = List.map (fun dn -> (dn, Pool.create ~domains:dn ())) counts in
  (let min_flops, chunk_flops = Mat.parallel_grain () in
   Fun.protect
     ~finally:(fun () -> Mat.set_parallel_grain ~min_flops ~chunk_flops)
     (fun () ->
       Mat.set_parallel_grain ~min_flops:1 ~chunk_flops:1;
       let probe_xs =
         Mat.init ~rows:2_048 ~cols:d (fun i j ->
             Float.sin (float_of_int ((i * d) + j)))
       in
       let serve dn =
         Pool.set_default (List.assoc dn pools);
         let dst = Mat.create ~rows:2_048 ~cols:1 in
         Tree.predict_rows_into ~dst tree probe_xs;
         Array.map Int64.bits_of_float (Mat.raw dst)
       in
       let reference = serve 1 in
       List.iter
         (fun dn ->
           if dn <> 1 then begin
             if serve dn <> reference then
               failwith
                 (Printf.sprintf
                    "distill: tree serving differs at %d domains" dn);
             incr probes_run;
             Format.printf
               "probe tree_serve        seq == par(%d domains): OK@." dn
           end)
         counts));
  Pool.set_default saved_pool;
  if !probes_run = 0 then
    failwith "distill: no tree-serving bit-equality probe ran";
  (* -- ns/decision: both policies through the one serving entry point
     ([Policy.predict_rows_into], exactly the scalar-eval and fleet
     paths) at small and large batches. *)
  let batches = if !smoke_mode then [ 1; 1_000 ] else [ 1; 1_000; 100_000 ] in
  let make_serve policy ~batch =
    let xsb =
      Mat.init ~rows:batch ~cols:d (fun i j ->
          Float.sin (float_of_int ((i * d) + j)))
    in
    let dst = Mat.create ~rows:batch ~cols:1 in
    fun () -> Canopy.Policy.predict_rows_into ~dst policy xsb
  in
  let tests =
    List.concat_map
      (fun b ->
        [
          (Printf.sprintf "mlp_b%d" b, "mlp", b, make_serve (`Mlp actor) ~batch:b);
          ( Printf.sprintf "tree_b%d" b,
            "tree",
            b,
            make_serve (`Tree tree) ~batch:b );
        ])
      batches
  in
  let grouped =
    Test.make_grouped ~name:"distill"
      (List.map (fun (name, _, _, f) -> Test.make ~name (Staged.stage f)) tests)
  in
  let cfg =
    if !smoke_mode then
      Benchmark.cfg ~limit:25 ~quota:(Time.second 0.05) ~stabilize:false
        ~compaction:false ()
    else
      Benchmark.cfg ~limit:4000 ~quota:(Time.second 2.0) ~stabilize:false
        ~compaction:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let ns_of name =
    match Hashtbl.find_opt results ("distill/" ^ name) with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ ns ] when ns > 0. -> Some ns
        | _ -> None)
    | None -> None
  in
  Format.printf "%-16s %-8s %-16s %-16s@." "policy" "batch" "ns/decision"
    "decisions/s";
  let measured =
    List.filter_map
      (fun (name, kind, batch, _) ->
        match ns_of name with
        | Some ns ->
            let ns = ns /. float_of_int batch in
            Format.printf "%-16s %-8d %16.1f %16.0f@." kind batch ns (1e9 /. ns);
            Some (name, kind, batch, ns)
        | None ->
            Format.printf "%-16s %-8d (no estimate)@." kind batch;
            None)
      tests
  in
  let speedup b =
    let find k =
      List.find_opt (fun (_, kind, batch, _) -> kind = k && batch = b) measured
    in
    match (find "mlp", find "tree") with
    | Some (_, _, _, mlp_ns), Some (_, _, _, tree_ns) when tree_ns > 0. ->
        Some (mlp_ns /. tree_ns)
    | _ -> None
  in
  let speedups = List.filter_map (fun b -> Option.map (fun s -> (b, s)) (speedup b)) batches in
  List.iter
    (fun (b, s) ->
      let target = if b = 1 then Some 10. else if b = 100_000 then Some 2. else None in
      Format.printf "tree vs mlp speedup, batch %d: %.2fx%s@." b s
        (match target with
        | Some t when not !smoke_mode ->
            if s >= t then Printf.sprintf "  (>= %.0fx: OK)" t
            else Printf.sprintf "  (below %.0fx target!)" t
        | _ -> ""))
    speedups;
  (* -- utility delta: both policies over the evaluation suite, mean
     utilization per category (the fidelity-in-deployment check; smoke
     uses a 2-trace subset). *)
  let suite_traces =
    let all = traces () in
    if !smoke_mode then List.filteri (fun i _ -> i < 2) all else all
  in
  let eval_of policy trace =
    let link = Eval.link ~min_rtt_ms ~bdp:2. trace in
    fst (Eval.eval_policy ~policy ~history link)
  in
  let utility =
    List.filter_map
      (fun (cat_name, cat) ->
        let ts =
          List.filter (fun t -> Suite.category_of t = cat) suite_traces
        in
        if ts = [] then None
        else begin
          let mean policy =
            (Eval.mean_results cat_name (List.map (eval_of policy) ts))
              .Eval.utilization
          in
          let mlp_u = mean (`Mlp actor) and tree_u = mean (`Tree tree) in
          let delta_pct =
            if Float.abs mlp_u < 1e-9 then 0.
            else 100. *. (tree_u -. mlp_u) /. mlp_u
          in
          Format.printf
            "utility %-10s mlp=%5.1f%% tree=%5.1f%% delta=%+.2f%%%s@." cat_name
            (100. *. mlp_u) (100. *. tree_u) delta_pct
            (if not !smoke_mode && Float.abs delta_pct > 5. then
               "  (outside 5% target!)"
             else "");
          Some (cat_name, mlp_u, tree_u, delta_pct)
        end)
      [ ("synthetic", Suite.Synthetic); ("real", Suite.Real) ]
  in
  (* Machine-readable record; smoke runs exercise the emitter on a temp
     path exactly like the other perf benches. *)
  let json_path =
    if !smoke_mode then Filename.temp_file "canopy-bench-distill" ".json"
    else "BENCH_distill.json"
  in
  json_write json_path (fun buf ->
      Printf.bprintf buf
        "{\n  \"bench\": \"distill\",\n  \"mode\": %S,\n  \"num_cores\": %d,\n\
        \  \"tree\": {\"samples\": %d, \"leaves\": %d, \"depth\": %d, \
         \"harvest_wall_s\": %.3f, \"fit_wall_s\": %.3f, \"fidelity_mse\": \
         %.6e},\n\
        \  \"probes_run\": %d,\n  \"entries\": [\n"
        (if !smoke_mode then "smoke" else "full")
        num_cores (Array.length ys) (Tree.n_leaves tree) (Tree.depth tree)
        harvest_wall fit_wall fidelity !probes_run;
      let last = List.length measured - 1 in
      List.iteri
        (fun i (name, kind, batch, ns) ->
          Printf.bprintf buf
            "    {\"name\": %S, \"policy\": %S, \"batch\": %d, \
             \"ns_per_decision\": %.1f}%s\n"
            name kind batch ns
            (if i = last then "" else ","))
        measured;
      Printf.bprintf buf "  ],\n  \"speedups\": [\n";
      let last = List.length speedups - 1 in
      List.iteri
        (fun i (b, s) ->
          Printf.bprintf buf "    {\"batch\": %d, \"tree_vs_mlp\": %.3f}%s\n" b
            s
            (if i = last then "" else ","))
        speedups;
      Printf.bprintf buf "  ],\n  \"utility\": [\n";
      let last = List.length utility - 1 in
      List.iteri
        (fun i (cat, mlp_u, tree_u, delta_pct) ->
          Printf.bprintf buf
            "    {\"category\": %S, \"mlp_utilization\": %.4f, \
             \"tree_utilization\": %.4f, \"delta_pct\": %.3f}%s\n"
            cat mlp_u tree_u delta_pct
            (if i = last then "" else ","))
        utility;
      Printf.bprintf buf "  ]\n}\n");
  Format.printf "wrote %s@." json_path;
  List.iter (fun (_, p) -> Pool.shutdown p) pools

(* ------------------------------------------------------------------ *)
(* Ablation: verifier domain and subdivision strategy *)

let ablation () =
  header
    "Ablation: abstract domain and subdivision (DESIGN.md, Section-8 \
     directions)";
  let model = canopy_perf () in
  let trace =
    Canopy_trace.Synthetic.step_fluctuation ~duration_ms:scale.trace_ms
      ~period_ms:2_000 ~low_mbps:12. ~high_mbps:48. ()
  in
  (* Collect representative verification contexts from a live run. *)
  let link = Eval.link ~min_rtt_ms ~bdp:2. trace in
  let _, steps =
    Eval.eval_policy ~name:model.name ~collect_steps:true ~policy:(`Mlp model.actor)
      ~history link
  in
  let contexts =
    List.filteri (fun i _ -> i mod 2 = 0 && i < 200) steps
    |> List.map (fun (s : Eval.step_record) ->
           (s.cwnd_tcp, s.cwnd_enforced))
  in
  let state = Array.make (history * Canopy_orca.Observation.feature_count) 0.4 in
  let property = Property.performance () in
  let run_config name certify_fn =
    let t0 = Unix.gettimeofday () in
    let fccs =
      List.map
        (fun (cwnd_tcp, prev_cwnd) ->
          (certify_fn ~cwnd_tcp ~prev_cwnd : Certify.t).Certify.fcc)
        contexts
    in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%-24s fcc=%6.3f   %8.1f ms total (%d contexts)@." name
      (Stats.mean (Array.of_list fccs))
      (1000. *. dt) (List.length contexts)
  in
  Format.printf "%-24s %-12s %-12s@." "verifier" "mean FCC" "wall time";
  run_config "box N=5" (fun ~cwnd_tcp ~prev_cwnd ->
      Certify.certify ~actor:model.actor ~property ~n_components:5 ~history
        ~state ~cwnd_tcp ~prev_cwnd ());
  run_config "box N=50" (fun ~cwnd_tcp ~prev_cwnd ->
      Certify.certify ~actor:model.actor ~property ~n_components:50 ~history
        ~state ~cwnd_tcp ~prev_cwnd ());
  run_config "zonotope N=5" (fun ~cwnd_tcp ~prev_cwnd ->
      Certify.certify ~domain:Certify.Zonotope_domain ~actor:model.actor
        ~property ~n_components:5 ~history ~state ~cwnd_tcp ~prev_cwnd ());
  run_config "zonotope N=50" (fun ~cwnd_tcp ~prev_cwnd ->
      Certify.certify ~domain:Certify.Zonotope_domain ~actor:model.actor
        ~property ~n_components:50 ~history ~state ~cwnd_tcp ~prev_cwnd ());
  run_config "adaptive 2->50" (fun ~cwnd_tcp ~prev_cwnd ->
      Certify.certify_adaptive ~actor:model.actor ~property
        ~initial_components:2 ~max_components:50 ~history ~state ~cwnd_tcp
        ~prev_cwnd ());
  Format.printf
    "@.Mean FCC compares how much of the precondition each verifier can@.";
  Format.printf
    "prove; subdivision and the zonotope product both tighten the plain@.";
  Format.printf "box domain at different compute costs.@.";
  (* Incompleteness analysis (Section 8): of the components the box
     verifier leaves uncertified, how many are REAL violations (a
     concrete counterexample exists) vs possibly spurious
     over-approximation? *)
  let real = ref 0 and open_ = ref 0 in
  let refute_rng = Canopy_util.Prng.create 2027 in
  List.iter
    (fun (cwnd_tcp, prev_cwnd) ->
      let cert =
        Certify.certify ~actor:model.actor ~property ~n_components:5 ~history
          ~state ~cwnd_tcp ~prev_cwnd ()
      in
      Array.iter
        (fun comp ->
          if not comp.Certify.certified then
            match
              Certify.refute ~rng:refute_rng ~actor:model.actor ~property
                ~history ~state ~cwnd_tcp ~prev_cwnd comp
            with
            | Certify.Violation _ -> incr real
            | Certify.Unknown -> incr open_)
        cert.Certify.components)
    contexts;
  Format.printf
    "@.uncertified box-N=5 components: %d with a concrete counterexample \
     (real),@.%d left open (possibly spurious over-approximation).@."
    !real !open_

(* ------------------------------------------------------------------ *)
(* Figs 15-19: trace samples *)

let traces_fig () =
  header "Figures 15-19: trace families (capacity profile samples)";
  List.iter
    (fun trace ->
      Format.printf "%-26s |" (Trace.name trace);
      let dur = Trace.duration_ms trace in
      for i = 0 to 19 do
        let ms = i * dur / 20 in
        let frac =
          Trace.mbps_at trace ms /. Float.max 1. (Trace.max_mbps trace)
        in
        let c =
          if frac > 0.8 then '#'
          else if frac > 0.6 then '+'
          else if frac > 0.4 then '='
          else if frac > 0.2 then '-'
          else '.'
        in
        Format.print_char c
      done;
      Format.printf "| %a@." Trace.pp trace)
    (traces ())

(* ------------------------------------------------------------------ *)
(* Driver *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("table3", table3);
    ("kernels", kernels);
    ("certify", certify_bench);
    ("par", par_bench);
    ("fleet", fleet_bench);
    ("distill", distill_bench);
    ("ablation", ablation);
    ("traces", traces_fig);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  smoke_mode := List.mem "--smoke" args;
  let names = List.filter (fun a -> a <> "--smoke") args in
  let requested =
    match names with
    | _ :: _ when not (List.mem "all" names) -> names
    | _ -> List.map fst experiments
  in
  Format.printf "canopy bench: scale=%s, steps=%d, traces=%dms, N_eval=%d@."
    scale.label scale.train_steps scale.trace_ms scale.eval_components;
  if not (Sys.file_exists artifacts_dir) then Sys.mkdir artifacts_dir 0o755;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          Format.printf "[%s done in %.1fs]@." name
            (Unix.gettimeofday () -. t0)
      | None -> Format.printf "unknown experiment %S (skipped)@." name)
    requested
