(* Tests for canopy_netsim: the Mahimahi-style link emulator. These pin
   down the physical invariants the congestion controllers rely on:
   RTT = minRTT + queueing delay, droptail loss, delivery bounded by
   trace capacity, and ACK-clocked conservation of packets. *)

module Env = Canopy_netsim.Env
module Trace = Canopy_trace.Trace

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make_env ?(mbps = 12.) ?(duration = 10_000) ?(min_rtt = 20)
    ?(buffer = 100) ?(cwnd = 10.) () =
  Env.create
    {
      Env.trace = Trace.constant ~name:"c" ~duration_ms:duration ~mbps;
      min_rtt_ms = min_rtt;
      buffer_pkts = buffer;
      mtu_bytes = Env.default_mtu;
      initial_cwnd = cwnd;
      impairments = Env.no_impairments;
    }

let test_bdp_pkts () =
  (* 12 Mbps × 100 ms = 1.2 Mbit = 150 kB = 100 MTU packets *)
  check_int "bdp" 100 (Env.bdp_pkts ~mbps:12. ~min_rtt_ms:100 ~mtu_bytes:1500);
  check_int "at least 1" 1 (Env.bdp_pkts ~mbps:0.01 ~min_rtt_ms:2 ~mtu_bytes:1500)

let test_config_validation () =
  let bad f = Alcotest.check_raises "rejects" (Invalid_argument f) in
  bad "Env.create: min_rtt_ms" (fun () ->
      ignore (Env.create
        { Env.trace = Trace.constant ~name:"c" ~duration_ms:10 ~mbps:1.;
          min_rtt_ms = 1; buffer_pkts = 1; mtu_bytes = 1500;
          initial_cwnd = 2.; impairments = Env.no_impairments }));
  bad "Env.create: buffer_pkts" (fun () ->
      ignore (Env.create
        { Env.trace = Trace.constant ~name:"c" ~duration_ms:10 ~mbps:1.;
          min_rtt_ms = 10; buffer_pkts = 0; mtu_bytes = 1500;
          initial_cwnd = 2.; impairments = Env.no_impairments }))

let test_rtt_equals_min_rtt_when_uncongested () =
  (* cwnd far below BDP: queue stays empty, every RTT is exactly minRTT. *)
  let env = make_env ~mbps:48. ~min_rtt:30 ~cwnd:4. () in
  Env.run env Env.null_handlers ~ms:2000;
  let rtts = Canopy_util.Fbuf.to_array (Env.stats env).Env.rtt_samples in
  check_bool "has acks" true (Array.length rtts > 0);
  Array.iter (fun r -> check_float "rtt = minRTT" 30. r) rtts;
  check_float "no queueing delay" 0. (Env.avg_qdelay_ms env)

let test_first_ack_timing () =
  (* With an empty queue the first packet's ACK arrives after exactly one
     minRTT (plus the 1ms send tick). *)
  let env = make_env ~min_rtt:25 ~cwnd:2. () in
  let first_ack = ref (-1) in
  let handlers =
    {
      Env.on_ack =
        (fun ack -> if !first_ack < 0 then first_ack := ack.Env.now_ms);
      on_loss = (fun ~now_ms:_ -> ());
    }
  in
  Env.run env handlers ~ms:100;
  check_int "first ack time" 26 !first_ack

let test_queue_builds_when_overdriven () =
  (* cwnd far above BDP: queue fills, RTT inflates by queueing delay. *)
  let env = make_env ~mbps:12. ~min_rtt:20 ~buffer:50 ~cwnd:60. () in
  Env.run env Env.null_handlers ~ms:3000;
  check_bool "queueing delay appears" true (Env.avg_qdelay_ms env > 5.)

let test_droptail_loss () =
  (* cwnd exceeding BDP + buffer must overflow the droptail queue. *)
  let env = make_env ~mbps:12. ~min_rtt:20 ~buffer:10 ~cwnd:100. () in
  let losses = ref 0 in
  let handlers =
    { Env.on_ack = (fun _ -> ()); on_loss = (fun ~now_ms:_ -> incr losses) }
  in
  Env.run env handlers ~ms:2000;
  check_bool "drops observed" true ((Env.stats env).Env.dropped > 0);
  (* drain in-flight loss notifications before comparing the counters *)
  Env.set_cwnd env 1.;
  Env.run env handlers ~ms:100;
  check_int "handler saw every drop" (Env.stats env).Env.dropped !losses;
  check_bool "loss rate positive" true (Env.loss_rate env > 0.)

let test_no_loss_when_window_fits () =
  let env = make_env ~mbps:12. ~min_rtt:20 ~buffer:100 ~cwnd:10. () in
  Env.run env Env.null_handlers ~ms:5000;
  check_int "no drops" 0 (Env.stats env).Env.dropped;
  check_float "zero loss rate" 0. (Env.loss_rate env)

let test_delivery_bounded_by_capacity () =
  let env = make_env ~mbps:12. ~min_rtt:20 ~cwnd:1000. ~buffer:10_000 () in
  Env.run env Env.null_handlers ~ms:5000;
  let st = Env.stats env in
  check_bool "delivered <= capacity" true
    (float_of_int st.Env.delivered <= st.Env.capacity_pkts +. 1.);
  check_bool "utilization <= 1" true (Env.utilization env <= 1.)

let test_full_utilization_with_big_window () =
  (* A window comfortably above BDP (but inside the buffer) should keep
     the bottleneck busy: utilization near 1. *)
  let env = make_env ~mbps:12. ~min_rtt:20 ~buffer:100 ~cwnd:60. () in
  Env.run env Env.null_handlers ~ms:10_000;
  check_bool "near-full utilization" true (Env.utilization env > 0.95)

let test_packet_conservation () =
  (* Every sent packet is eventually delivered or dropped (after the
     pipeline drains). *)
  let env = make_env ~mbps:12. ~min_rtt:20 ~buffer:20 ~cwnd:50. () in
  Env.run env Env.null_handlers ~ms:3000;
  (* stop sending: shrink window to zero-ish and drain *)
  Env.set_cwnd env 1.;
  Env.run env Env.null_handlers ~ms:2000;
  let st = Env.stats env in
  check_bool "conservation" true
    (st.Env.delivered + st.Env.dropped + Env.inflight env >= st.Env.sent);
  check_bool "inflight small after drain" true
    (Env.inflight env <= 2)

let test_set_cwnd_clamps () =
  let env = make_env () in
  Env.set_cwnd env 0.1;
  check_float "clamped to 1" 1. (Env.cwnd env)

let test_acks_monotone_time () =
  let env = make_env ~cwnd:30. () in
  let last = ref 0 in
  let handlers =
    {
      Env.on_ack =
        (fun ack ->
          check_bool "non-decreasing ack time" true (ack.Env.now_ms >= !last);
          last := ack.Env.now_ms);
      on_loss = (fun ~now_ms:_ -> ());
    }
  in
  Env.run env handlers ~ms:2000

let test_ack_seq_delivered_consistency () =
  let env = make_env ~cwnd:5. () in
  let count = ref 0 in
  let handlers =
    {
      Env.on_ack =
        (fun ack ->
          incr count;
          check_int "delivered counts acks" !count ack.Env.delivered);
      on_loss = (fun ~now_ms:_ -> ());
    }
  in
  Env.run env handlers ~ms:1000

let test_capacity_wasted_when_idle () =
  (* With a tiny window the trace offers more opportunities than used;
     utilization must reflect the waste rather than clamp to 1. *)
  let env = make_env ~mbps:96. ~min_rtt:40 ~cwnd:2. () in
  Env.run env Env.null_handlers ~ms:5000;
  check_bool "low utilization" true (Env.utilization env < 0.2)

let test_zero_capacity_interval () =
  (* Failure injection: a trace segment with zero capacity stalls the
     link; packets queue (or drop) and delivery resumes afterwards. *)
  let trace =
    Trace.of_segments ~name:"blackout"
      [ (1000, 12.); (500, 0.); (1000, 12.) ]
  in
  let env =
    Env.create
      {
        Env.trace;
        min_rtt_ms = 20;
        buffer_pkts = 50;
        mtu_bytes = Env.default_mtu;
        initial_cwnd = 10.;
        impairments = Env.no_impairments;
      }
  in
  Env.run env Env.null_handlers ~ms:2500;
  let st = Env.stats env in
  check_bool "delivered something" true (st.Env.delivered > 0);
  (* RTT spikes during blackout must exceed minRTT + 100ms *)
  let rtts = Canopy_util.Fbuf.to_array st.Env.rtt_samples in
  check_bool "blackout inflates rtt" true
    (Array.exists (fun r -> r > 120.) rtts)

let test_chain_handlers () =
  let a = ref 0 and b = ref 0 in
  let mk r =
    { Env.on_ack = (fun _ -> incr r); on_loss = (fun ~now_ms:_ -> ()) }
  in
  let env = make_env ~cwnd:5. () in
  Env.run env (Env.chain (mk a) (mk b)) ~ms:500;
  check_bool "both invoked" true (!a > 0);
  check_int "equally" !a !b

let test_deterministic_replay () =
  let run () =
    let env = make_env ~mbps:24. ~cwnd:40. ~buffer:30 () in
    Env.run env Env.null_handlers ~ms:4000;
    let st = Env.stats env in
    (st.Env.sent, st.Env.delivered, st.Env.dropped)
  in
  check_bool "identical runs" true (run () = run ())

let suite =
  [
    ("bdp computation", `Quick, test_bdp_pkts);
    ("config validation", `Quick, test_config_validation);
    ("uncongested rtt = minRTT", `Quick, test_rtt_equals_min_rtt_when_uncongested);
    ("first ack timing", `Quick, test_first_ack_timing);
    ("queue builds when overdriven", `Quick, test_queue_builds_when_overdriven);
    ("droptail loss", `Quick, test_droptail_loss);
    ("no loss when window fits", `Quick, test_no_loss_when_window_fits);
    ("delivery bounded by capacity", `Quick, test_delivery_bounded_by_capacity);
    ("full utilization with big window", `Quick, test_full_utilization_with_big_window);
    ("packet conservation", `Quick, test_packet_conservation);
    ("set_cwnd clamps", `Quick, test_set_cwnd_clamps);
    ("ack times monotone", `Quick, test_acks_monotone_time);
    ("ack delivered counter", `Quick, test_ack_seq_delivered_consistency);
    ("capacity wasted when idle", `Quick, test_capacity_wasted_when_idle);
    ("zero-capacity blackout", `Quick, test_zero_capacity_interval);
    ("handler chaining", `Quick, test_chain_handlers);
    ("deterministic replay", `Quick, test_deterministic_replay);
  ]

let impaired ?(random_loss = 0.) ?(ack_jitter_ms = 0) ?(reorder_prob = 0.)
    ?(reorder_ms = 0) () =
  Env.create
    {
      Env.trace = Trace.constant ~name:"c" ~duration_ms:10_000 ~mbps:24.;
      min_rtt_ms = 20;
      buffer_pkts = 200;
      mtu_bytes = Env.default_mtu;
      initial_cwnd = 20.;
      impairments =
        { Env.random_loss; ack_jitter_ms; reorder_prob; reorder_ms; seed = 42 };
    }

let test_random_loss_injected () =
  (* A window that fits comfortably would see zero congestive drops; with
     random loss enabled, drops must appear at roughly the set rate. *)
  let env = impaired ~random_loss:0.02 () in
  Env.run env Env.null_handlers ~ms:8000;
  let st = Env.stats env in
  check_bool "drops appear without congestion" true (st.Env.dropped > 0);
  let rate = float_of_int st.Env.dropped /. float_of_int st.Env.sent in
  check_bool
    (Printf.sprintf "rate near 2%% (got %.3f)" rate)
    true
    (rate > 0.005 && rate < 0.05)

let test_no_impairments_no_loss () =
  let env = impaired () in
  Env.run env Env.null_handlers ~ms:8000;
  check_int "clean link" 0 (Env.stats env).Env.dropped

let test_ack_jitter_spreads_rtt () =
  let env = impaired ~ack_jitter_ms:15 () in
  Env.run env Env.null_handlers ~ms:5000;
  let rtts = Canopy_util.Fbuf.to_array (Env.stats env).Env.rtt_samples in
  let mn = Array.fold_left Float.min rtts.(0) rtts in
  let mx = Array.fold_left Float.max rtts.(0) rtts in
  check_bool "floor at minRTT" true (mn >= 20.);
  check_bool "jitter visible" true (mx -. mn >= 5.);
  (* bound: minRTT + jitter + the initial window burst's queueing (the
     20-packet initial window drains at 2 pkts/ms -> up to 10 ms) *)
  check_bool "jitter bounded" true (mx <= 20. +. 15. +. 11.)

let test_jitter_keeps_conservation () =
  let env = impaired ~ack_jitter_ms:25 ~random_loss:0.01 () in
  Env.run env Env.null_handlers ~ms:4000;
  Env.set_cwnd env 1.;
  Env.run env Env.null_handlers ~ms:1000;
  let st = Env.stats env in
  check_bool "conservation with impairments" true
    (st.Env.delivered + st.Env.dropped + Env.inflight env >= st.Env.sent)

let test_impairment_validation () =
  let mk impairments =
    ignore
      (Env.create
         {
           Env.trace = Trace.constant ~name:"c" ~duration_ms:10 ~mbps:1.;
           min_rtt_ms = 10;
           buffer_pkts = 1;
           mtu_bytes = 1500;
           initial_cwnd = 2.;
           impairments;
         })
  in
  Alcotest.check_raises "loss prob" (Invalid_argument "Env.create: random_loss")
    (fun () -> mk { Env.no_impairments with random_loss = 1.5 });
  Alcotest.check_raises "reorder prob"
    (Invalid_argument "Env.create: reorder_prob") (fun () ->
      mk { Env.no_impairments with reorder_prob = -0.1 });
  Alcotest.check_raises "reorder ms" (Invalid_argument "Env.create: reorder_ms")
    (fun () -> mk { Env.no_impairments with reorder_prob = 0.1; reorder_ms = -1 })

let test_reorder_spreads_rtt () =
  (* Reordering holds some ACKs back by reorder_ms: the RTT distribution
     acquires a visible tail while the floor stays at minRTT. *)
  let env = impaired ~reorder_prob:0.3 ~reorder_ms:12 () in
  Env.run env Env.null_handlers ~ms:5000;
  let rtts = Canopy_util.Fbuf.to_array (Env.stats env).Env.rtt_samples in
  let mn = Array.fold_left Float.min rtts.(0) rtts in
  let mx = Array.fold_left Float.max rtts.(0) rtts in
  check_bool "floor at minRTT" true (mn >= 20.);
  check_bool "reorder tail visible" true (mx -. mn >= 10.);
  check_bool "no drops from reordering" true ((Env.stats env).Env.dropped = 0)

let test_reorder_out_of_order_acks () =
  (* Held-back feedback means later sequence numbers overtake earlier
     ones: the ACKed seq stream must not be monotone. *)
  let env = impaired ~reorder_prob:0.3 ~reorder_ms:12 () in
  let out_of_order = ref false in
  let last_seq = ref (-1) in
  let handlers =
    {
      Env.on_ack =
        (fun ack ->
          if ack.Env.seq < !last_seq then out_of_order := true;
          last_seq := max !last_seq ack.Env.seq);
      on_loss = (fun ~now_ms:_ -> ());
    }
  in
  Env.run env handlers ~ms:5000;
  check_bool "acks overtake" true !out_of_order

let test_reorder_zero_prob_noop () =
  (* reorder_prob = 0 must leave the PRNG stream untouched: the run is
     bit-identical to one with no reorder fields set at all. *)
  let run env =
    Env.run env Env.null_handlers ~ms:4000;
    let st = Env.stats env in
    (st.Env.sent, st.Env.delivered, st.Env.dropped,
     Canopy_util.Fbuf.to_array st.Env.rtt_samples)
  in
  let a = run (impaired ~random_loss:0.02 ~ack_jitter_ms:3 ()) in
  let b =
    run
      (impaired ~random_loss:0.02 ~ack_jitter_ms:3 ~reorder_prob:0.
         ~reorder_ms:50 ())
  in
  check_bool "zero-prob reordering is a no-op" true (a = b)

let impairment_suite =
  [
    ("random loss injected", `Quick, test_random_loss_injected);
    ("no impairments no loss", `Quick, test_no_impairments_no_loss);
    ("ack jitter spreads rtt", `Quick, test_ack_jitter_spreads_rtt);
    ("jitter keeps conservation", `Quick, test_jitter_keeps_conservation);
    ("impairment validation", `Quick, test_impairment_validation);
    ("reorder spreads rtt", `Quick, test_reorder_spreads_rtt);
    ("reorder out-of-order acks", `Quick, test_reorder_out_of_order_acks);
    ("reorder zero prob noop", `Quick, test_reorder_zero_prob_noop);
  ]

let suite = suite @ impairment_suite

(* ------------------------------------------------------------------ *)
(* Property-based invariants *)

let qcheck_netsim =
  let open QCheck in
  [
    Test.make ~name:"delivery never exceeds offered capacity" ~count:50
      (make
         Gen.(
           let* mbps = float_range 1. 200. in
           let* cwnd = float_range 2. 2000. in
           let* buffer = int_range 5 500 in
           let* min_rtt = int_range 4 200 in
           return (mbps, cwnd, buffer, min_rtt)))
      (fun (mbps, cwnd, buffer, min_rtt) ->
        let env = make_env ~mbps ~min_rtt ~buffer ~cwnd ~duration:4000 () in
        Env.run env Env.null_handlers ~ms:3000;
        let st = Env.stats env in
        float_of_int st.Env.delivered <= st.Env.capacity_pkts +. 1.
        && Env.utilization env <= 1.
        && Env.loss_rate env >= 0.
        && Env.loss_rate env <= 1.);
    Test.make ~name:"all RTT samples at least minRTT" ~count:50
      (make
         Gen.(
           let* mbps = float_range 1. 100. in
           let* cwnd = float_range 2. 500. in
           let* min_rtt = int_range 4 100 in
           return (mbps, cwnd, min_rtt)))
      (fun (mbps, cwnd, min_rtt) ->
        let env = make_env ~mbps ~min_rtt ~cwnd ~duration:3000 () in
        Env.run env Env.null_handlers ~ms:2000;
        Canopy_util.Fbuf.to_array (Env.stats env).Env.rtt_samples
        |> Array.for_all (fun r -> r >= float_of_int min_rtt));
  ]

let suite = suite @ List.map QCheck_alcotest.to_alcotest qcheck_netsim
