(* Aggregated alcotest runner for the whole repository. *)

let () =
  Alcotest.run "canopy"
    [
      ("util", Test_util.suite);
      ("tensor", Test_tensor.suite);
      ("nn", Test_nn.suite);
      ("absint", Test_absint.suite);
      ("trace", Test_trace.suite);
      ("netsim", Test_netsim.suite);
      ("multiflow", Test_multiflow.suite);
      ("fleet", Test_fleet.suite);
      ("cc", Test_cc.suite);
      ("rl", Test_rl.suite);
      ("orca", Test_orca.suite);
      ("core", Test_core.suite);
      ("zonotope", Test_zonotope.suite);
      ("shield", Test_shield.suite);
      ("temporal", Test_temporal.suite);
      ("properties", Test_properties.suite);
      ("analysis", Test_analysis.suite);
      ("scenario", Test_scenario.suite);
      ("distill", Test_distill.suite);
      ("racecheck", Test_racecheck.suite);
      ("pool", Test_pool.suite);
    ]
