(* Tests for canopy_rl: the replay buffer and the TD3 learner. The TD3
   learning test uses a one-step bandit-style environment with a known
   optimal action, which a correct implementation must find quickly. *)

open Canopy_rl
module Prng = Canopy_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tr ?(r = 0.) ?(terminal = false) ?(truncated = false) s a =
  {
    Replay_buffer.state = s;
    action = a;
    reward = r;
    next_state = s;
    terminal;
    truncated;
  }

(* ------------------------------------------------------------------ *)
(* Replay buffer *)

let test_buffer_add_length () =
  let b = Replay_buffer.create ~capacity:4 in
  check_int "empty" 0 (Replay_buffer.length b);
  Replay_buffer.add b (tr [| 0. |] [| 0. |]);
  check_int "one" 1 (Replay_buffer.length b);
  check_int "capacity" 4 (Replay_buffer.capacity b)

let test_buffer_wraps () =
  let b = Replay_buffer.create ~capacity:3 in
  for i = 1 to 10 do
    Replay_buffer.add b (tr ~r:(float_of_int i) [| 0. |] [| 0. |])
  done;
  check_int "bounded" 3 (Replay_buffer.length b);
  (* all samples must come from the last three pushes *)
  let rng = Prng.create 1 in
  let batch = Replay_buffer.sample b rng ~batch_size:50 in
  Array.iter
    (fun t -> check_bool "recent only" true (t.Replay_buffer.reward >= 8.))
    batch

let test_buffer_sample_size () =
  let b = Replay_buffer.create ~capacity:8 in
  Replay_buffer.add b (tr [| 1. |] [| 0.5 |]);
  let rng = Prng.create 2 in
  let batch = Replay_buffer.sample b rng ~batch_size:5 in
  check_int "requested size" 5 (Array.length batch)

let test_buffer_sample_empty_raises () =
  let b = Replay_buffer.create ~capacity:2 in
  let rng = Prng.create 3 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Replay_buffer.sample: empty") (fun () ->
      ignore (Replay_buffer.sample b rng ~batch_size:1))

let test_buffer_clear () =
  let b = Replay_buffer.create ~capacity:2 in
  Replay_buffer.add b (tr [| 0. |] [| 0. |]);
  Replay_buffer.clear b;
  check_int "cleared" 0 (Replay_buffer.length b)

(* ------------------------------------------------------------------ *)
(* TD3 *)

let td3_config ~state_dim =
  {
    (Td3.default_config ~state_dim ~action_dim:1) with
    hidden = 16;
    batch_size = 32;
    warmup = 64;
    buffer_capacity = 4096;
  }

let test_td3_action_bounds () =
  let rng = Prng.create 7 in
  let agent = Td3.create ~rng (td3_config ~state_dim:3) in
  for _ = 1 to 50 do
    let s = Array.init 3 (fun _ -> Prng.uniform rng (-5.) 5.) in
    let a = Td3.select_action ~explore:true agent s in
    check_bool "bounded" true (Float.abs a.(0) <= 1.)
  done

let test_td3_deterministic_without_exploration () =
  let rng = Prng.create 8 in
  let agent = Td3.create ~rng (td3_config ~state_dim:2) in
  let s = [| 0.5; -0.5 |] in
  let a1 = Td3.select_action agent s in
  let a2 = Td3.select_action agent s in
  Alcotest.(check (array (float 0.))) "same action" a1 a2

let test_td3_update_noop_before_warmup () =
  let rng = Prng.create 9 in
  let agent = Td3.create ~rng (td3_config ~state_dim:2) in
  Td3.observe agent (tr [| 0.; 0. |] [| 0. |]);
  Td3.update agent;
  check_int "no update before warmup" 0 (Td3.updates_done agent)

let test_td3_observe_rejects_bad_state () =
  let rng = Prng.create 10 in
  let agent = Td3.create ~rng (td3_config ~state_dim:2) in
  Alcotest.check_raises "bad dim" (Invalid_argument "Td3.observe: state dim")
    (fun () -> Td3.observe agent (tr [| 0. |] [| 0. |]))

let test_td3_learns_bandit () =
  (* One-step environment: reward = -(a - 0.6)^2, episode ends
     immediately. The greedy action must converge near 0.6. *)
  let rng = Prng.create 11 in
  let agent = Td3.create ~rng (td3_config ~state_dim:2) in
  let noise = Prng.create 12 in
  let s = [| 0.3; -0.3 |] in
  for _ = 1 to 1500 do
    let a = Td3.select_action ~explore:true agent s in
    let a0 =
      Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
        (a.(0) +. Prng.gaussian_scaled noise ~mu:0. ~sigma:0.2)
    in
    let r = -.((a0 -. 0.6) ** 2.) in
    Td3.observe agent
      { Replay_buffer.state = s; action = [| a0 |]; reward = r;
        next_state = s; terminal = true; truncated = false };
    Td3.update agent
  done;
  let a = (Td3.select_action agent s).(0) in
  check_bool
    (Printf.sprintf "greedy action near 0.6 (got %.3f)" a)
    true
    (Float.abs (a -. 0.6) < 0.25)

let test_td3_state_dependent_bandit () =
  (* Optimal action flips sign with the state: tests that the actor
     actually conditions on its input. *)
  let rng = Prng.create 13 in
  let agent = Td3.create ~rng (td3_config ~state_dim:1) in
  let noise = Prng.create 14 in
  for i = 1 to 3000 do
    let s = if i mod 2 = 0 then [| 1. |] else [| -1. |] in
    let target = if s.(0) > 0. then 0.5 else -0.5 in
    let a = Td3.select_action ~explore:true agent s in
    let a0 =
      Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
        (a.(0) +. Prng.gaussian_scaled noise ~mu:0. ~sigma:0.2)
    in
    let r = -.((a0 -. target) ** 2.) in
    Td3.observe agent
      { Replay_buffer.state = s; action = [| a0 |]; reward = r;
        next_state = s; terminal = true; truncated = false };
    Td3.update agent
  done;
  let a_pos = (Td3.select_action agent [| 1. |]).(0) in
  let a_neg = (Td3.select_action agent [| -1. |]).(0) in
  check_bool
    (Printf.sprintf "sign split (pos %.3f / neg %.3f)" a_pos a_neg)
    true
    (a_pos > a_neg +. 0.3)

let test_td3_updates_counted () =
  let rng = Prng.create 15 in
  let agent = Td3.create ~rng (td3_config ~state_dim:1) in
  for _ = 1 to 100 do
    Td3.observe agent (tr ~r:0.1 ~terminal:true [| 0.5 |] [| 0. |])
  done;
  for _ = 1 to 10 do
    Td3.update agent
  done;
  check_int "updates counted" 10 (Td3.updates_done agent);
  check_int "buffer size" 100 (Td3.buffer_size agent)

let rand_vec rng n =
  let v = Array.make n 0. in
  for i = 0 to n - 1 do
    v.(i) <- Prng.uniform rng (-1.) 1.
  done;
  v

let test_td3_kernels_agree () =
  (* Batched and per-sample kernels draw PRNG noise in the same order and
     accumulate floating-point sums in the same order, so two agents with
     identical seeds and replay contents must follow identical parameter
     trajectories under either kernel. *)
  let make () =
    let rng = Prng.create 42 in
    let agent = Td3.create ~rng (td3_config ~state_dim:3) in
    let data = Prng.create 43 in
    for i = 1 to 128 do
      Td3.observe agent
        {
          Replay_buffer.state = rand_vec data 3;
          action = rand_vec data 1;
          reward = Prng.uniform data (-1.) 1.;
          next_state = rand_vec data 3;
          terminal = i mod 7 = 0;
          truncated = i mod 5 = 0;
        }
    done;
    agent
  in
  let batched = make () and reference = make () in
  for _ = 1 to 12 do
    Td3.update ~kernel:Td3.Batched batched;
    Td3.update ~kernel:Td3.Per_sample reference
  done;
  check_int "both updated" (Td3.updates_done reference)
    (Td3.updates_done batched);
  List.iteri
    (fun pi ((v_b, _), (v_r, _)) ->
      Alcotest.(check (array (float 1e-9)))
        (Printf.sprintf "actor param %d" pi)
        v_r v_b)
    (List.combine
       (Canopy_nn.Mlp.params (Td3.actor batched))
       (Canopy_nn.Mlp.params (Td3.actor reference)));
  let s = [| 0.2; -0.4; 0.6 |] in
  Alcotest.(check (array (float 1e-9)))
    "greedy action"
    (Td3.select_action reference s)
    (Td3.select_action batched s)

let test_td3_truncation_bootstraps () =
  (* Time-limit bias: a transition with reward 1 looping on one state has
     discounted return 1/(1-gamma) if the episode merely hit a time limit
     (bootstrap continues), but exactly 1 if it truly terminated. The
     critics must learn very different Q-values in the two cases. *)
  let q_after ~terminal ~truncated =
    let rng = Prng.create 21 in
    let agent =
      Td3.create ~rng
        {
          (td3_config ~state_dim:1) with
          gamma = 0.8;
          tau = 0.1;
          actor_lr = 1e-3;
          critic_lr = 1e-2;
        }
    in
    let s = [| 0.5 |] and a = [| 0.2 |] in
    for _ = 1 to 128 do
      Td3.observe agent
        {
          Replay_buffer.state = s;
          action = a;
          reward = 1.;
          next_state = s;
          terminal;
          truncated;
        }
    done;
    for _ = 1 to 600 do
      Td3.update agent
    done;
    let q1, q2 = Td3.q_values agent ~state:s ~action:a in
    Float.min q1 q2
  in
  let q_term = q_after ~terminal:true ~truncated:false in
  let q_trunc = q_after ~terminal:false ~truncated:true in
  (* terminal: Q -> 1; truncated: Q -> 1/(1-0.8) = 5 *)
  check_bool
    (Printf.sprintf "terminal Q near 1 (got %.3f)" q_term)
    true
    (q_term > 0.5 && q_term < 2.);
  check_bool
    (Printf.sprintf "truncated Q bootstraps past reward (got %.3f)" q_trunc)
    true
    (q_trunc > q_term +. 1.)

let test_td3_save_load_actor () =
  let rng = Prng.create 16 in
  let agent = Td3.create ~rng (td3_config ~state_dim:2) in
  let dir = Filename.temp_file "canopy" ".d" in
  Sys.remove dir;
  Td3.save agent ~dir;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let s = [| 0.2; 0.8 |] in
      let before = (Td3.select_action agent s).(0) in
      (* perturb the live actor, then restore from the checkpoint *)
      Td3.load_actor agent (Filename.concat dir "actor.ckpt");
      let after = (Td3.select_action agent s).(0) in
      Alcotest.(check (float 1e-9)) "roundtrip" before after)

(* ------------------------------------------------------------------ *)
(* Snapshots: replay layout, full-agent capture, v2 container *)

let test_buffer_iter_storage_order () =
  let b = Replay_buffer.create ~capacity:3 in
  for i = 1 to 5 do
    Replay_buffer.add b (tr ~r:(float_of_int i) [| 0. |] [| 0. |])
  done;
  (* Slots after five pushes into capacity 3: [4; 5; 3], cursor 2. *)
  let rewards = ref [] in
  Replay_buffer.iter
    (fun t -> rewards := t.Replay_buffer.reward :: !rewards)
    b;
  Alcotest.(check (list (float 0.))) "storage order" [ 4.; 5.; 3. ]
    (List.rev !rewards);
  check_int "cursor" 2 (Replay_buffer.cursor b)

let test_buffer_of_seq_roundtrip () =
  let b = Replay_buffer.create ~capacity:4 in
  for i = 1 to 7 do
    Replay_buffer.add b (tr ~r:(float_of_int i) [| float_of_int i |] [| 0. |])
  done;
  let dump buf =
    let acc = ref [] in
    Replay_buffer.iter (fun t -> acc := t :: !acc) buf;
    List.rev !acc
  in
  let b' =
    Replay_buffer.of_seq ~capacity:4 ~cursor:(Replay_buffer.cursor b)
      (List.to_seq (dump b))
  in
  check_int "length" (Replay_buffer.length b) (Replay_buffer.length b');
  check_int "cursor" (Replay_buffer.cursor b) (Replay_buffer.cursor b');
  check_bool "slots identical" true (dump b = dump b');
  (* The rebuilt buffer must overwrite the same slot next. *)
  Replay_buffer.add b (tr ~r:100. [| 0. |] [| 0. |]);
  Replay_buffer.add b' (tr ~r:100. [| 0. |] [| 0. |]);
  check_bool "next overwrite matches" true (dump b = dump b')

let test_buffer_of_seq_validates () =
  Alcotest.check_raises "overflow"
    (Invalid_argument "Replay_buffer.of_seq: more transitions than capacity")
    (fun () ->
      ignore
        (Replay_buffer.of_seq ~capacity:1
           (List.to_seq [ tr [| 0. |] [| 0. |]; tr [| 0. |] [| 0. |] ])))

(* Deterministic driver for snapshot tests: synthetic states, reward
   from a fixed linear target, exploration noise drawn from the agent's
   own PRNG so the whole trajectory is a function of agent state. *)
let drive agent ~from ~until =
  for i = from to until - 1 do
    let s = [| sin (0.1 *. float_of_int i); cos (0.07 *. float_of_int i) |] in
    let a = Td3.select_action ~explore:true agent s in
    let r = -.Float.abs (a.(0) -. (0.5 *. s.(0))) in
    Td3.observe agent
      { Replay_buffer.state = s; action = a; reward = r;
        next_state = s; terminal = true; truncated = false };
    Td3.update agent
  done

let agent_bits agent =
  let snap = Td3.snapshot agent in
  List.concat_map
    (fun (_, net) ->
      List.concat_map
        (fun (v, _) -> Array.to_list (Array.map Int64.bits_of_float v))
        (Canopy_nn.Mlp.params net))
    snap.Td3.nets

let test_td3_snapshot_restore_bitexact () =
  let cfg =
    { (td3_config ~state_dim:2) with warmup = 32; batch_size = 16;
      buffer_capacity = 64 }
  in
  let agent = Td3.create ~rng:(Prng.create 21) cfg in
  drive agent ~from:0 ~until:60;
  let snap = Td3.snapshot agent in
  drive agent ~from:60 ~until:100;
  let ahead = agent_bits agent in
  (* Restore into a FRESH agent built from a different seed: every piece
     of state must come from the snapshot, none from the constructor. *)
  let agent' = Td3.create ~rng:(Prng.create 9999) cfg in
  Td3.restore agent' snap;
  check_int "updates_done restored" 0
    (abs (Td3.updates_done agent' - snap.Td3.update_count));
  drive agent' ~from:60 ~until:100;
  check_bool "continuation is bit-identical" true (agent_bits agent' = ahead)

let test_td3_finite_detects_nan () =
  let agent = Td3.create ~rng:(Prng.create 22) (td3_config ~state_dim:2) in
  check_bool "fresh agent finite" true (Td3.finite agent);
  (match Canopy_nn.Mlp.params (Td3.actor agent) with
  | (v, _) :: _ -> v.(0) <- Float.nan
  | [] -> Alcotest.fail "no params");
  check_bool "NaN detected" false (Td3.finite agent)

let test_agent_snapshot_container_roundtrip () =
  let cfg =
    { (td3_config ~state_dim:2) with warmup = 32; batch_size = 16;
      buffer_capacity = 64 }
  in
  let agent = Td3.create ~rng:(Prng.create 23) cfg in
  drive agent ~from:0 ~until:50;
  let extra = [ ("trainer", "step 50\n") ] in
  let encoded = Agent_snapshot.encode ~fingerprint:"cfg-abc123" ~extra agent in
  let fingerprint, sections = Agent_snapshot.decode encoded in
  Alcotest.(check string) "fingerprint" "cfg-abc123" fingerprint;
  Alcotest.(check (option string)) "extra section carried" (Some "step 50\n")
    (List.assoc_opt "trainer" sections);
  let agent' = Td3.create ~rng:(Prng.create 4242) cfg in
  Agent_snapshot.restore agent' sections;
  drive agent ~from:50 ~until:80;
  drive agent' ~from:50 ~until:80;
  check_bool "decoded agent continues bit-identically" true
    (agent_bits agent = agent_bits agent')

let test_agent_snapshot_rejects_corruption () =
  let agent =
    Td3.create ~rng:(Prng.create 24)
      { (td3_config ~state_dim:2) with buffer_capacity = 64 }
  in
  drive agent ~from:0 ~until:10;
  let encoded = Agent_snapshot.encode ~fingerprint:"fp" agent in
  (* Pristine container must decode. *)
  ignore (Agent_snapshot.decode encoded);
  let expect_failure what s =
    match Agent_snapshot.decode s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (what ^ ": corrupt container was accepted")
  in
  expect_failure "truncated"
    (String.sub encoded 0 (String.length encoded / 2));
  let mid = String.length encoded / 2 in
  let flipped = Bytes.of_string encoded in
  Bytes.set flipped mid
    (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
  expect_failure "bit flip" (Bytes.to_string flipped);
  expect_failure "bad magic" ("not a checkpoint\n" ^ encoded)

let suite =
  [
    ("buffer add/length", `Quick, test_buffer_add_length);
    ("buffer wraps", `Quick, test_buffer_wraps);
    ("buffer sample size", `Quick, test_buffer_sample_size);
    ("buffer sample empty", `Quick, test_buffer_sample_empty_raises);
    ("buffer clear", `Quick, test_buffer_clear);
    ("td3 action bounds", `Quick, test_td3_action_bounds);
    ("td3 deterministic policy", `Quick, test_td3_deterministic_without_exploration);
    ("td3 warmup gate", `Quick, test_td3_update_noop_before_warmup);
    ("td3 rejects bad state", `Quick, test_td3_observe_rejects_bad_state);
    ("td3 learns bandit", `Slow, test_td3_learns_bandit);
    ("td3 state-dependent bandit", `Slow, test_td3_state_dependent_bandit);
    ("td3 update counting", `Quick, test_td3_updates_counted);
    ("td3 batched = per-sample kernels", `Quick, test_td3_kernels_agree);
    ("td3 truncation bootstraps", `Slow, test_td3_truncation_bootstraps);
    ("td3 save/load actor", `Quick, test_td3_save_load_actor);
    ("buffer iter storage order", `Quick, test_buffer_iter_storage_order);
    ("buffer of_seq roundtrip", `Quick, test_buffer_of_seq_roundtrip);
    ("buffer of_seq validates", `Quick, test_buffer_of_seq_validates);
    ("td3 snapshot/restore bit-exact", `Quick,
      test_td3_snapshot_restore_bitexact);
    ("td3 finite detects NaN", `Quick, test_td3_finite_detects_nan);
    ("agent snapshot container roundtrip", `Quick,
      test_agent_snapshot_container_roundtrip);
    ("agent snapshot rejects corruption", `Quick,
      test_agent_snapshot_rejects_corruption);
  ]
