(* Tests for the canopy core: property definitions (Section 4.2),
   certificate construction and the interval distance (Sections 4.3-4.4),
   the evaluation harness (Section 6.1), and the certificate-in-the-loop
   trainer (Eq. 11). *)

open Canopy
open Canopy_nn
open Canopy_tensor
module Observation = Canopy_orca.Observation
module Interval = Canopy_absint.Interval
module Prng = Canopy_util.Prng

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let history = 5
let state_dim = history * Observation.feature_count

(* An actor computing a = tanh(w · x + b) through the real Mlp machinery,
   with every weight chosen by [weight_of : feature index -> float]. *)
let linear_actor ?(bias = 0.) weight_of =
  let w = Mat.init ~rows:1 ~cols:state_dim (fun _ j -> weight_of j) in
  Mlp.create ~in_dim:state_dim
    [
      Layer.Dense
        {
          w;
          b = [| bias |];
          dw = Mat.create ~rows:1 ~cols:state_dim;
          db = [| 0. |];
        };
      Layer.Tanh;
    ]

let constant_actor a =
  (* tanh(atanh a) = a for |a| < 1 *)
  let bias = 0.5 *. log ((1. +. a) /. (1. -. a)) in
  linear_actor ~bias (fun _ -> 0.)

let mid_state = Array.make state_dim 0.4

(* ------------------------------------------------------------------ *)
(* Property *)

let test_property_defaults () =
  (match Property.performance () with
  | Property.Performance { p; q } ->
      check_float "p" 0.75 p;
      check_float "q" 0.25 q
  | _ -> Alcotest.fail "expected performance");
  match Property.robustness () with
  | Property.Robustness { mu; epsilon } ->
      check_float "mu" 0.05 mu;
      check_float "eps" 0.01 epsilon
  | _ -> Alcotest.fail "expected robustness"

let test_property_validation () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Property.performance: thresholds must be in (0,1)")
    (fun () -> ignore (Property.performance ~p:1.5 ()));
  Alcotest.check_raises "q > p"
    (Invalid_argument "Property.performance: q > p") (fun () ->
      ignore (Property.performance ~p:0.3 ~q:0.6 ()));
  Alcotest.check_raises "mu" (Invalid_argument "Property.robustness: mu")
    (fun () -> ignore (Property.robustness ~mu:2. ()))

let test_property_cases () =
  check_int "performance has 2 cases" 2
    (List.length (Property.cases (Property.performance ())));
  check_int "robustness has 1 case" 1
    (List.length (Property.cases (Property.robustness ())))

let test_property_preconditions () =
  let perf = Property.performance () in
  let large = Property.precondition_delay perf Property.Large_delay in
  check_float "large lo" 0.75 (Interval.lo large);
  check_float "large hi" 1. (Interval.hi large);
  let small = Property.precondition_delay perf Property.Small_delay in
  check_float "small lo" 0. (Interval.lo small);
  check_float "small hi" 0.25 (Interval.hi small);
  let rob = Property.robustness () in
  let noise = Property.precondition_delay rob Property.Noise in
  check_float "noise lo" 0.95 (Interval.lo noise);
  check_float "noise hi" 1.05 (Interval.hi noise)

let test_property_case_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Property.precondition_delay: case mismatch") (fun () ->
      ignore
        (Property.precondition_delay (Property.performance ()) Property.Noise))

(* ------------------------------------------------------------------ *)
(* Certify: structure *)

let certify ?engine ?(actor = constant_actor 0.)
    ?(property = Property.performance ()) ?(n = 5) ?(state = mid_state)
    ?(cwnd_tcp = 100.) ?(prev_cwnd = 100.) () =
  Certify.certify ?engine ~actor ~property ~n_components:n ~history ~state
    ~cwnd_tcp ~prev_cwnd ()

let test_certify_component_counts () =
  let c = certify ~n:5 () in
  check_int "2 cases × 5" 10 (Array.length c.Certify.components);
  let r = certify ~property:(Property.robustness ()) ~n:7 () in
  check_int "robustness × 7" 7 (Array.length r.Certify.components)

let test_certify_delay_indices () =
  Alcotest.(check (list int)) "one per frame" [ 0; 7; 14; 21; 28 ]
    (Certify.delay_indices ~history:5)

let test_certify_distances_in_unit () =
  let c = certify () in
  Array.iter
    (fun comp ->
      check_bool "D in [0,1]" true
        (comp.Certify.distance >= 0. && comp.Certify.distance <= 1.))
    c.Certify.components;
  check_bool "r_verifier in [0,1]" true
    (c.Certify.r_verifier >= 0. && c.Certify.r_verifier <= 1.);
  check_bool "fcc in [0,1]" true (c.Certify.fcc >= 0. && c.Certify.fcc <= 1.)

let test_certify_fcc_consistent () =
  let c = certify () in
  let certified =
    Array.fold_left
      (fun n comp -> if comp.Certify.certified then n + 1 else n)
      0 c.Certify.components
  in
  check_float "fcc is the certified fraction"
    (float_of_int certified /. float_of_int (Array.length c.Certify.components))
    c.Certify.fcc;
  Alcotest.(check bool) "fcs iff all certified"
    (certified = Array.length c.Certify.components)
    c.Certify.fcs

let test_certify_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Certify.certify: n_components")
    (fun () -> ignore (certify ~n:0 ()));
  Alcotest.check_raises "state dim"
    (Invalid_argument "Certify.certify: state dimension") (fun () ->
      ignore (certify ~state:[| 0.1 |] ()))

(* ------------------------------------------------------------------ *)
(* Certify: semantics with hand-built controllers *)

let test_decreasing_controller_satisfies_large_delay () =
  (* A controller that always shrinks the window (a ≈ -1) provably never
     increases CWND: large-delay case fully certified, small-delay fully
     violated, so r_verifier = (1 + 0) / 2. *)
  let c = certify ~actor:(constant_actor (-0.999)) () in
  Array.iter
    (fun comp ->
      match comp.Certify.case with
      | Property.Large_delay ->
          check_bool "large certified" true comp.Certify.certified
      | Property.Small_delay ->
          check_float "small violated" 0. comp.Certify.distance
      | Property.Noise -> Alcotest.fail "unexpected case")
    c.Certify.components;
  check_float "Eq. 8 average" 0.5 c.Certify.r_verifier;
  check_bool "not fcs" false c.Certify.fcs

let test_increasing_controller_satisfies_small_delay () =
  let c = certify ~actor:(constant_actor 0.999) () in
  Array.iter
    (fun comp ->
      match comp.Certify.case with
      | Property.Large_delay ->
          check_float "large violated" 0. comp.Certify.distance
      | Property.Small_delay ->
          check_bool "small certified" true comp.Certify.certified
      | Property.Noise -> Alcotest.fail "unexpected case")
    c.Certify.components;
  check_float "Eq. 8 average" 0.5 c.Certify.r_verifier

let test_ideal_controller_fully_certified () =
  (* Weight < 0 on every delay dimension and a suitable bias: the action
     is strongly negative when all delays are high and strongly positive
     when all delays are low — the behaviour the performance property
     demands. With a large gain, certification succeeds in both cases. *)
  let delay_idx = Certify.delay_indices ~history in
  (* logit = −20·Σ d + 50 crosses zero at Σ d = 2.5, i.e. all five delay
     dims at 0.5 — halfway between q = 0.25 and p = 0.75. All delays at p
     give logit −25 (a ≈ −1); at q, logit +25 (a ≈ +1). *)
  let actor =
    linear_actor ~bias:50.
      (fun j -> if List.mem j delay_idx then -20. else 0.)
  in
  let c = certify ~actor ~cwnd_tcp:100. ~prev_cwnd:100. () in
  check_bool "fully certified" true c.Certify.fcs;
  check_float "r_verifier = 1" 1. c.Certify.r_verifier

let test_perverse_controller_fully_violating () =
  (* The opposite sign convention violates both cases everywhere. *)
  let delay_idx = Certify.delay_indices ~history in
  let actor =
    linear_actor ~bias:(-50.)
      (fun j -> if List.mem j delay_idx then 20. else 0.)
  in
  let c = certify ~actor ~cwnd_tcp:100. ~prev_cwnd:100. () in
  check_float "nothing certified" 0. c.Certify.fcc;
  check_float "r_verifier = 0" 0. c.Certify.r_verifier

let test_constant_controller_robust () =
  (* A controller that ignores its input is perfectly robust. *)
  let c =
    certify ~property:(Property.robustness ()) ~actor:(constant_actor 0.5) ()
  in
  check_bool "fcs" true c.Certify.fcs;
  check_float "fcc 1" 1. c.Certify.fcc

let test_sensitive_controller_not_robust () =
  (* A controller with huge gain on the delay inputs cannot be robust to
     multiplicative noise on them. *)
  let delay_idx = Certify.delay_indices ~history in
  (* Bias places the unperturbed state (all dims 0.4) at the steepest
     part of tanh, so ±5% input noise swings the action across its whole
     range. *)
  let actor =
    linear_actor ~bias:(-.(50. *. 5. *. 0.4))
      (fun j -> if List.mem j delay_idx then 50. else 0.)
  in
  let c = certify ~property:(Property.robustness ()) ~actor () in
  check_bool "violations found" true (c.Certify.fcc < 1.)

let test_certificate_action_bounds_sound () =
  (* The abstract action interval of every component must contain the
     concrete action at sampled delay values inside that component. *)
  let rng = Prng.create 4242 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:16 ~out_dim:1 in
  let property = Property.performance () in
  let c = certify ~actor ~property ~n:4 () in
  let delay_idx = Certify.delay_indices ~history in
  Array.iter
    (fun comp ->
      let case_iv = Property.precondition_delay property comp.Certify.case in
      let slices = Interval.split case_iv 4 in
      let slice = List.nth slices comp.Certify.index in
      for _ = 1 to 25 do
        let d = Interval.sample rng slice in
        let s = Array.copy mid_state in
        List.iter (fun i -> s.(i) <- d) delay_idx;
        let a =
          Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. (Mlp.forward actor s).(0)
        in
        if not (Interval.contains comp.Certify.action a) then
          Alcotest.failf "action %f escapes %s" a
            (Format.asprintf "%a" Interval.pp comp.Certify.action)
      done)
    c.Certify.components

let test_certificate_output_bounds_sound () =
  (* Same soundness check at the ΔCWND level (after Eq. 1). *)
  let rng = Prng.create 777 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:16 ~out_dim:1 in
  let property = Property.performance () in
  let cwnd_tcp = 80. and prev_cwnd = 70. in
  let c = certify ~actor ~property ~n:5 ~cwnd_tcp ~prev_cwnd () in
  let delay_idx = Certify.delay_indices ~history in
  Array.iter
    (fun comp ->
      let case_iv = Property.precondition_delay property comp.Certify.case in
      let slice = List.nth (Interval.split case_iv 5) comp.Certify.index in
      for _ = 1 to 25 do
        let d = Interval.sample rng slice in
        let s = Array.copy mid_state in
        List.iter (fun i -> s.(i) <- d) delay_idx;
        let a =
          Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. (Mlp.forward actor s).(0)
        in
        let dcwnd =
          Canopy_orca.Agent_env.cwnd_of_action ~action:a ~cwnd_tcp -. prev_cwnd
        in
        check_bool "ΔCWND inside bound" true
          (Interval.contains comp.Certify.output dcwnd)
      done)
    c.Certify.components

let test_more_components_tighter_certificates () =
  (* Domain subdivision reduces over-approximation (Section 5): the mean
     certified fraction with N=10 must be at least that with N=1. *)
  let rng = Prng.create 31 in
  let mean_fcc n =
    let acc = ref 0. in
    for seed = 1 to 10 do
      ignore seed;
      let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
      let c = certify ~actor ~n () in
      acc := !acc +. c.Certify.fcc
    done;
    !acc /. 10.
  in
  let rng_state = Prng.copy rng in
  let f1 = mean_fcc 1 in
  (* replay the same actors for the n=10 measurement *)
  ignore rng_state;
  let f10 = mean_fcc 10 in
  check_bool
    (Printf.sprintf "N=10 (%.3f) >= N=1 (%.3f) - slack" f10 f1)
    true
    (f10 >= f1 -. 0.05)

let test_robustness_certificate_soundness () =
  let rng = Prng.create 99 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:16 ~out_dim:1 in
  let property = Property.robustness () in
  let cwnd_tcp = 50. in
  let c =
    certify ~actor ~property ~n:5 ~cwnd_tcp ~state:mid_state ()
  in
  let delay_idx = Certify.delay_indices ~history in
  let a0 =
    Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. (Mlp.forward actor mid_state).(0)
  in
  let cwnd0 = Canopy_orca.Agent_env.cwnd_of_action ~action:a0 ~cwnd_tcp in
  Array.iter
    (fun comp ->
      let factor_iv =
        Property.precondition_delay property Property.Noise
      in
      let slice = List.nth (Interval.split factor_iv 5) comp.Certify.index in
      for _ = 1 to 25 do
        let eta = Interval.sample rng slice in
        let s = Array.copy mid_state in
        List.iter (fun i -> s.(i) <- s.(i) *. eta) delay_idx;
        let a =
          Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1. (Mlp.forward actor s).(0)
        in
        let change =
          (Canopy_orca.Agent_env.cwnd_of_action ~action:a ~cwnd_tcp -. cwnd0)
          /. cwnd0
        in
        check_bool "CWNDCHANGE inside bound" true
          (Interval.contains comp.Certify.output change)
      done)
    c.Certify.components

(* ------------------------------------------------------------------ *)
(* Eval *)

let small_trace =
  Canopy_trace.Synthetic.step_fluctuation ~duration_ms:4000 ~period_ms:1000
    ~low_mbps:12. ~high_mbps:24. ()

let test_eval_tcp_baselines () =
  let link = Eval.link ~min_rtt_ms:30 ~bdp:2. small_trace in
  let cubic = Eval.eval_tcp ~name:"cubic" Eval.cubic_scheme link in
  check_bool "utilization sane" true
    (cubic.Eval.utilization > 0.3 && cubic.Eval.utilization <= 1.);
  check_bool "no certificate for tcp" true (cubic.Eval.fcc = None)

let test_eval_policy_runs () =
  let link = Eval.link ~min_rtt_ms:30 ~bdp:2. small_trace in
  let res, steps =
    Eval.eval_policy ~name:"const" ~collect_steps:true
      ~policy:(`Mlp (constant_actor 0.)) ~history link
  in
  check_bool "steps collected" true (List.length steps > 10);
  check_bool "util positive" true (res.Eval.utilization > 0.);
  check_bool "no fcc without certificate" true (res.Eval.fcc = None)

let test_eval_policy_with_certificate () =
  let link = Eval.link ~min_rtt_ms:30 ~bdp:2. small_trace in
  let res, steps =
    Eval.eval_policy ~certificate:(Property.performance (), 10)
      ~collect_steps:true ~policy:(`Mlp (constant_actor (-0.9))) ~history link
  in
  (match (res.Eval.fcc, res.Eval.fcs) with
  | Some fcc, Some fcs ->
      (* the always-decrease controller certifies the large-delay case
         whenever the backbone suggestion has not outgrown the previous
         enforcement, so a substantial FCC must be reported, and FCS can
         never exceed FCC *)
      check_bool "fcc meaningful" true (fcc >= 0.3 && fcc <= 1.);
      check_bool "fcs <= fcc" true (fcs <= fcc +. 1e-9)
  | _ -> Alcotest.fail "expected certificates");
  List.iter
    (fun s ->
      match s.Eval.certificate with
      | Some c -> check_int "components" 20 (Array.length c.Certify.components)
      | None -> Alcotest.fail "missing step certificate")
    steps

let test_eval_policy_noise_determinism () =
  let link = Eval.link ~min_rtt_ms:30 ~bdp:2. small_trace in
  let run () =
    fst (Eval.eval_policy ~noise:(9, 0.05) ~policy:(`Mlp (constant_actor 0.2))
           ~history link)
  in
  let a = run () and b = run () in
  check_float "seeded noise reproducible" a.Eval.avg_qdelay_ms
    b.Eval.avg_qdelay_ms

let test_eval_mean_results () =
  let r name util =
    {
      Eval.scheme = name;
      trace = name;
      utilization = util;
      avg_thr_mbps = 10.;
      avg_qdelay_ms = 5.;
      p95_qdelay_ms = 10.;
      loss_rate = 0.;
      fcc = Some 0.5;
      fcs = None;
      refuted = None;
    }
  in
  let m = Eval.mean_results "group" [ r "a" 0.4; r "b" 0.8 ] in
  check_float "mean util" 0.6 m.Eval.utilization;
  (match m.Eval.fcc with
  | Some f -> check_float "mean fcc" 0.5 f
  | None -> Alcotest.fail "fcc lost");
  Alcotest.(check string) "group name" "group" m.Eval.trace;
  Alcotest.check_raises "empty" (Invalid_argument "Eval.mean_results: empty")
    (fun () -> ignore (Eval.mean_results "g" []))

let test_eval_noise_delta () =
  let base =
    {
      Eval.scheme = "x";
      trace = "t";
      utilization = 0.8;
      avg_thr_mbps = 10.;
      avg_qdelay_ms = 10.;
      p95_qdelay_ms = 20.;
      loss_rate = 0.;
      fcc = None;
      fcs = None;
      refuted = None;
    }
  in
  let noisy =
    { base with Eval.utilization = 0.6; avg_qdelay_ms = 15.; p95_qdelay_ms = 30. }
  in
  let d = Eval.noise_delta ~clean:base ~noisy in
  check_float "delay +50%" 50. d.Eval.d_avg_qdelay_pct;
  check_float "p95 +50%" 50. d.Eval.d_p95_qdelay_pct;
  check_float "util -25%" (-25.) d.Eval.d_utilization_pct

(* ------------------------------------------------------------------ *)
(* Trainer *)

let test_env_pool_table2 () =
  let pool = Trainer.env_pool ~n:8 ~seed:1 () in
  check_int "pool size" 8 (List.length pool);
  List.iter
    (fun (cfg : Canopy_orca.Agent_env.config) ->
      let bw = Canopy_trace.Trace.avg_mbps cfg.trace in
      check_bool "bw in Table-2 range" true (bw >= 6. && bw <= 192.);
      check_bool "stable link" true
        (Canopy_trace.Trace.min_mbps cfg.trace
        = Canopy_trace.Trace.max_mbps cfg.trace))
    pool

let test_trainer_validation () =
  Alcotest.check_raises "empty pool"
    (Invalid_argument "Trainer.train: empty env pool") (fun () ->
      ignore (Trainer.train (Trainer.default_config ~envs:[] ())));
  let envs = Trainer.env_pool ~n:1 ~seed:1 ~duration_ms:1000 () in
  Alcotest.check_raises "lambda" (Invalid_argument "Trainer.train: lambda")
    (fun () ->
      ignore (Trainer.train { (Trainer.default_config ~envs ()) with lambda = 2. }))

let tiny_config ?(lambda = 0.25) () =
  let envs =
    Trainer.env_pool ~n:2 ~bw_range_mbps:(12., 24.) ~rtt_range_ms:(20, 30)
      ~duration_ms:2000 ~seed:3 ()
  in
  {
    (Trainer.default_config ~lambda ~total_steps:60 ~envs ()) with
    log_every = 20;
  }

let test_trainer_epochs_reported () =
  let seen = ref 0 in
  let _, epochs =
    Trainer.train ~on_epoch:(fun _ -> incr seen) (tiny_config ())
  in
  check_int "3 epochs of 20" 3 (List.length epochs);
  check_int "callback per epoch" 3 !seen;
  List.iteri
    (fun i (e : Trainer.epoch) ->
      check_int "numbered" (i + 1) e.Trainer.epoch;
      check_bool "verifier reward bounded" true
        (e.Trainer.verifier_reward >= 0. && e.Trainer.verifier_reward <= 1.);
      check_bool "fcc bounded" true (e.Trainer.fcc >= 0. && e.Trainer.fcc <= 1.))
    epochs

let test_trainer_combined_reward_identity_lambda0 () =
  (* With λ=0 the combined reward must equal the raw reward. *)
  let _, epochs = Trainer.train (tiny_config ~lambda:0. ()) in
  List.iter
    (fun (e : Trainer.epoch) ->
      check_bool "combined = raw" true
        (Canopy_util.Mathx.approx_equal ~eps:1e-9 e.Trainer.combined_reward
           e.Trainer.raw_reward))
    epochs

let test_trainer_deterministic_given_seed () =
  let run () =
    let _, epochs = Trainer.train (tiny_config ()) in
    List.map (fun (e : Trainer.epoch) -> e.Trainer.raw_reward) epochs
  in
  check_bool "seeded training reproducible" true (run () = run ())

let test_load_or_train_caches () =
  let dir = Filename.temp_file "canopy" ".cache" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let cfg = tiny_config () in
      let actor1, epochs1 =
        Trainer.load_or_train ~cache_dir:dir ~tag:"t" cfg
      in
      check_bool "trained fresh" true (epochs1 <> []);
      let actor2, epochs2 =
        Trainer.load_or_train ~cache_dir:dir ~tag:"t" cfg
      in
      check_int "cache hit restores the curve" (List.length epochs1)
        (List.length epochs2);
      List.iter2
        (fun (a : Trainer.epoch) (b : Trainer.epoch) ->
          check_float "curve values preserved" a.Trainer.raw_reward
            b.Trainer.raw_reward)
        epochs1 epochs2;
      let x = Array.make state_dim 0.3 in
      check_float "same policy" (Mlp.forward actor1 x).(0)
        (Mlp.forward actor2 x).(0))

(* ------------------------------------------------------------------ *)
(* Crash safety: strict curve parsing, resume determinism, watchdog *)

let test_load_curve_strict () =
  let path = Filename.temp_file "canopy-curve" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "epoch,steps,raw,verifier,combined,fcc,rollbacks\n\
         1,20,not-a-float,0.5,0.1,0.5,0\n";
      close_out oc;
      Alcotest.check_raises "malformed row"
        (Failure
           (Printf.sprintf
              "Trainer.load_curve: %s: line 2: malformed row \
               %S"
              path "1,20,not-a-float,0.5,0.1,0.5,0"))
        (fun () -> ignore (Trainer.load_curve path)))

let with_temp_dir f =
  let dir = Filename.temp_file "canopy-snap" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let actor_bits agent =
  List.concat_map
    (fun (v, _) -> Array.to_list (Array.map Int64.bits_of_float v))
    (Mlp.params (Canopy_rl.Td3.actor agent))

let curve_digest epochs =
  List.map
    (fun (e : Trainer.epoch) ->
      (e.Trainer.epoch, e.Trainer.raw_reward, e.Trainer.rollbacks))
    epochs

let test_trainer_resume_determinism () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "snap.ckpt" in
      let cfg = tiny_config () in
      (* Reference: same config trained to completion without ever being
         interrupted (same snapshot cadence, so same trajectory). *)
      let agent_ref, epochs_ref = Trainer.train ~snapshot_every:20 cfg in
      (* Crash mid-run: the simulated power cut propagates out of the
         trainer, leaving the last boundary snapshot on disk. *)
      (match
         Trainer.train ~snapshot_every:20 ~snapshot_path:path
           ~fault_hook:(fun ~step _ ->
             if step = 30 then failwith "simulated crash")
           cfg
       with
      | exception Failure msg when msg = "simulated crash" -> ()
      | _ -> Alcotest.fail "crash hook did not fire");
      check_bool "snapshot persisted before the crash" true
        (Sys.file_exists path);
      (* Resume must land exactly where the uninterrupted run did. *)
      let agent_res, epochs_res =
        Trainer.train ~snapshot_every:20 ~snapshot_path:path ~resume:path cfg
      in
      check_bool "resumed actor bit-identical" true
        (actor_bits agent_res = actor_bits agent_ref);
      check_bool "resumed curve identical" true
        (curve_digest epochs_res = curve_digest epochs_ref))

let test_trainer_resume_rejects_fingerprint_mismatch () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "snap.ckpt" in
      let cfg = tiny_config () in
      let _ = Trainer.train ~snapshot_every:30 ~snapshot_path:path cfg in
      let other = { cfg with lambda = 0.75 } in
      let contains_fingerprint msg =
        let re = "fingerprint" in
        let n = String.length re and m = String.length msg in
        let rec scan i =
          i + n <= m && (String.sub msg i n = re || scan (i + 1))
        in
        scan 0
      in
      match Trainer.train ~snapshot_every:30 ~resume:path other with
      | exception Failure msg ->
          check_bool "diagnostic names the fingerprint mismatch" true
            (contains_fingerprint msg)
      | _ -> Alcotest.fail "config mismatch accepted on resume")

let test_trainer_watchdog_rollback () =
  let cfg = tiny_config () in
  let injected = ref false in
  let agent, epochs =
    Trainer.train ~snapshot_every:20
      ~fault_hook:(fun ~step agent ->
        if step = 10 && not !injected then begin
          injected := true;
          match Mlp.params (Canopy_rl.Td3.actor agent) with
          | (v, _) :: _ -> v.(0) <- Float.nan
          | [] -> Alcotest.fail "no params"
        end)
      cfg
  in
  check_bool "fault was injected" true !injected;
  check_bool "rollback counted" true
    (match List.rev epochs with
    | last :: _ -> last.Trainer.rollbacks >= 1
    | [] -> false);
  check_int "full curve still produced" 3 (List.length epochs);
  check_bool "final agent finite" true (Canopy_rl.Td3.finite agent)

(* ------------------------------------------------------------------ *)
(* Engine equivalence: the batched IR path must reproduce the per-slice
   reference bit-for-bit up to GEMM reassociation (≤ 1e-9) on every
   certificate field, for both domains and both properties. The actor
   shapes here (and everywhere in training) have no consecutive dense
   layers, so IR fusion changes only the evaluation order. *)

let check_interval_close label a b =
  let ok =
    Float.abs (Interval.lo a -. Interval.lo b) <= 1e-9
    && Float.abs (Interval.hi a -. Interval.hi b) <= 1e-9
  in
  if not ok then
    Alcotest.failf "%s: %a <> %a" label Interval.pp a Interval.pp b

let check_certificates_match label (a : Certify.t) (b : Certify.t) =
  Alcotest.(check int)
    (label ^ ": component count")
    (Array.length a.Certify.components)
    (Array.length b.Certify.components);
  Array.iteri
    (fun i (ca : Certify.component) ->
      let cb = b.Certify.components.(i) in
      Alcotest.(check bool) (label ^ ": same case") true (ca.case = cb.case);
      Alcotest.(check int) (label ^ ": same index") ca.index cb.index;
      check_interval_close (label ^ ": slice") ca.slice cb.slice;
      check_interval_close (label ^ ": action") ca.action cb.action;
      check_interval_close (label ^ ": output") ca.output cb.output;
      check_float (label ^ ": distance") ca.distance cb.distance;
      Alcotest.(check bool)
        (label ^ ": certified flag") ca.certified cb.certified)
    a.Certify.components;
  check_float (label ^ ": r_verifier") a.Certify.r_verifier b.Certify.r_verifier;
  check_float (label ^ ": fcc") a.Certify.fcc b.Certify.fcc

let engine_sweep_actors () =
  let rng = Canopy_util.Prng.create 404 in
  List.init 3 (fun _ ->
      Mlp.actor ~rng ~in_dim:state_dim ~hidden:10 ~out_dim:1)

let test_batched_matches_per_slice_certify () =
  List.iter
    (fun actor ->
      List.iter
        (fun (dname, domain) ->
          List.iter
            (fun (pname, property) ->
              let run engine =
                Certify.certify ~engine ~domain ~actor ~property
                  ~n_components:5 ~history ~state:mid_state ~cwnd_tcp:100.
                  ~prev_cwnd:90. ()
              in
              check_certificates_match
                (Printf.sprintf "%s/%s" dname pname)
                (run Certify.Per_slice) (run Certify.Batched))
            [
              ("performance", Property.performance ());
              ("robustness", Property.robustness ());
            ])
        [
          ("box", Certify.Box_domain);
          ("zonotope", Certify.Zonotope_domain);
        ])
    (engine_sweep_actors ())

let test_batched_matches_per_slice_adaptive () =
  List.iter
    (fun actor ->
      List.iter
        (fun (dname, domain) ->
          let run engine =
            Certify.certify_adaptive ~engine ~domain ~actor
              ~property:(Property.performance ()) ~initial_components:2
              ~max_components:24 ~history ~state:mid_state ~cwnd_tcp:100.
              ~prev_cwnd:90. ()
          in
          check_certificates_match
            (Printf.sprintf "adaptive/%s" dname)
            (run Certify.Per_slice) (run Certify.Batched))
        [
          ("box", Certify.Box_domain);
          ("zonotope", Certify.Zonotope_domain);
        ])
    (engine_sweep_actors ())

let suite =
  [
    ("property defaults", `Quick, test_property_defaults);
    ("property validation", `Quick, test_property_validation);
    ("property cases", `Quick, test_property_cases);
    ("property preconditions", `Quick, test_property_preconditions);
    ("property case mismatch", `Quick, test_property_case_mismatch);
    ("certify component counts", `Quick, test_certify_component_counts);
    ("certify delay indices", `Quick, test_certify_delay_indices);
    ("certify distances in [0,1]", `Quick, test_certify_distances_in_unit);
    ("certify fcc consistency", `Quick, test_certify_fcc_consistent);
    ("certify validation", `Quick, test_certify_validation);
    ("decreasing controller: large-delay ✓", `Quick,
      test_decreasing_controller_satisfies_large_delay);
    ("increasing controller: small-delay ✓", `Quick,
      test_increasing_controller_satisfies_small_delay);
    ("ideal controller fully certified", `Quick,
      test_ideal_controller_fully_certified);
    ("perverse controller fully violating", `Quick,
      test_perverse_controller_fully_violating);
    ("constant controller robust", `Quick, test_constant_controller_robust);
    ("sensitive controller not robust", `Quick,
      test_sensitive_controller_not_robust);
    ("certificate action bounds sound", `Quick,
      test_certificate_action_bounds_sound);
    ("certificate output bounds sound", `Quick,
      test_certificate_output_bounds_sound);
    ("subdivision tightens certificates", `Quick,
      test_more_components_tighter_certificates);
    ("robustness certificate sound", `Quick,
      test_robustness_certificate_soundness);
    ("eval tcp baselines", `Quick, test_eval_tcp_baselines);
    ("eval policy runs", `Quick, test_eval_policy_runs);
    ("eval policy with certificate", `Quick, test_eval_policy_with_certificate);
    ("eval noise determinism", `Quick, test_eval_policy_noise_determinism);
    ("eval mean_results", `Quick, test_eval_mean_results);
    ("eval noise_delta", `Quick, test_eval_noise_delta);
    ("trainer env pool (Table 2)", `Quick, test_env_pool_table2);
    ("trainer validation", `Quick, test_trainer_validation);
    ("trainer epochs reported", `Slow, test_trainer_epochs_reported);
    ("trainer λ=0 identity", `Slow, test_trainer_combined_reward_identity_lambda0);
    ("trainer deterministic", `Slow, test_trainer_deterministic_given_seed);
    ("load_or_train caches", `Slow, test_load_or_train_caches);
    ("load_curve strict", `Quick, test_load_curve_strict);
    ("trainer resume determinism", `Slow, test_trainer_resume_determinism);
    ("trainer resume fingerprint check", `Slow,
      test_trainer_resume_rejects_fingerprint_mismatch);
    ("trainer watchdog rollback", `Slow, test_trainer_watchdog_rollback);
    ("batched = per-slice (certify)", `Quick,
      test_batched_matches_per_slice_certify);
    ("batched = per-slice (adaptive)", `Quick,
      test_batched_matches_per_slice_adaptive);
  ]

(* ------------------------------------------------------------------ *)
(* Counterexample search (refute) *)

let test_refute_finds_real_violation () =
  (* The always-grow controller genuinely violates the large-delay case:
     refute must produce a concrete witness with positive ΔCWND. *)
  let actor = constant_actor 0.9 in
  let c = certify ~actor () in
  let uncertified =
    Array.to_list c.Certify.components
    |> List.find (fun comp ->
           comp.Certify.case = Property.Large_delay
           && not comp.Certify.certified)
  in
  match
    Certify.refute ~rng:(Prng.create 11) ~actor
      ~property:(Property.performance ()) ~history
      ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:100. uncertified
  with
  | Certify.Violation { state; output } ->
      check_bool "positive delta" true (output > 0.);
      check_int "witness has state shape" state_dim (Array.length state);
      (* replay the witness concretely: it must reproduce the output *)
      let a =
        Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.
          (Mlp.forward actor state).(0)
      in
      let w = Canopy_orca.Agent_env.cwnd_of_action ~action:a ~cwnd_tcp:100. in
      check_float "witness replays" output (w -. 100.)
  | Certify.Unknown -> Alcotest.fail "expected a concrete violation"

let test_refute_certified_is_unknown () =
  let actor = constant_actor (-0.9) in
  let c = certify ~actor () in
  Array.iter
    (fun comp ->
      if comp.Certify.certified then
        check_bool "certified never refuted" true
          (Certify.refute ~rng:(Prng.create 11) ~actor
             ~property:(Property.performance ()) ~history
             ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:100. comp
          = Certify.Unknown))
    c.Certify.components

let test_refute_witness_inside_slice () =
  let rng = Prng.create 505 in
  let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
  let c = certify ~actor ~n:4 () in
  Array.iter
    (fun comp ->
      match
        Certify.refute ~rng ~actor ~property:(Property.performance ())
          ~history ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:90. comp
      with
      | Certify.Unknown -> ()
      | Certify.Violation { state; _ } ->
          List.iter
            (fun idx ->
              check_bool "delay dims inside the slice" true
                (Interval.contains comp.Certify.slice state.(idx)))
            (Certify.delay_indices ~history))
    c.Certify.components

let test_refute_spurious_component_unknown () =
  (* A controller whose true output range satisfies the property but
     whose IBP bound straddles the boundary: the component is
     uncertified, yet refutation must fail (no real witness exists).
     Construct it via cancellation the box domain cannot see:
     a = tanh(w·d − w·d + ε) ≡ tanh(ε) > 0, but IBP widens w·d − w·d. *)
  let d0 = Observation.delay_index in
  let weights j =
    (* two opposing large weights on the SAME delay input of the newest
       frame via two hidden units *)
    ignore j;
    0.
  in
  ignore weights;
  let w1 = Mat.create ~rows:2 ~cols:state_dim in
  Mat.set w1 0 ((4 * Observation.feature_count) + d0) 30.;
  Mat.set w1 1 ((4 * Observation.feature_count) + d0) 30.;
  let w2 = Mat.of_arrays [| [| 1.; -1. |] |] in
  let actor =
    Mlp.create ~in_dim:state_dim
      [
        Layer.Dense
          { w = w1; b = [| 0.; 0. |]; dw = Mat.create ~rows:2 ~cols:state_dim;
            db = [| 0.; 0. |] };
        Layer.Dense
          { w = w2; b = [| 0.05 |]; dw = Mat.create ~rows:1 ~cols:2;
            db = [| 0. |] };
        Layer.Tanh;
      ]
  in
  (* true action = tanh(30d − 30d + 0.05) = tanh(0.05) > 0 for all d:
     the small-delay case (ΔCWND ≥ 0) truly holds with prev = cwnd_tcp.
     The per-layer box walk widens the cancellation; the IR engine fuses
     the two consecutive denses into W2·W1 = 0 and proves it exactly, so
     this test pins the Per_slice reference. *)
  let c =
    certify ~engine:Certify.Per_slice ~actor ~cwnd_tcp:100. ~prev_cwnd:100. ()
  in
  let small_uncertified =
    Array.to_list c.Certify.components
    |> List.filter (fun comp ->
           comp.Certify.case = Property.Small_delay
           && not comp.Certify.certified)
  in
  check_bool "box domain left components open (over-approximation)" true
    (small_uncertified <> []);
  List.iter
    (fun comp ->
      check_bool "spurious component cannot be refuted" true
        (Certify.refute ~rng:(Prng.create 11) ~actor
           ~property:(Property.performance ()) ~history
           ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:100. comp
        = Certify.Unknown))
    small_uncertified;
  (* and the zonotope domain proves them (the cancellation is affine) *)
  let z =
    Certify.certify ~engine:Certify.Per_slice ~domain:Certify.Zonotope_domain
      ~actor ~property:(Property.performance ()) ~n_components:5 ~history
      ~state:mid_state ~cwnd_tcp:100. ~prev_cwnd:100. ()
  in
  Array.iter
    (fun comp ->
      if comp.Certify.case = Property.Small_delay then
        check_bool "zonotope certifies the cancellation" true
          comp.Certify.certified)
    z.Certify.components;
  (* so does the batched box engine: collapsing consecutive affines in
     the IR removes exactly this over-approximation *)
  let fused = certify ~actor ~cwnd_tcp:100. ~prev_cwnd:100. () in
  Array.iter
    (fun comp ->
      if comp.Certify.case = Property.Small_delay then
        check_bool "fused IR certifies the cancellation" true
          comp.Certify.certified)
    fused.Certify.components

let refute_suite =
  [
    ("refute finds real violation", `Quick, test_refute_finds_real_violation);
    ("refute: certified -> Unknown", `Quick, test_refute_certified_is_unknown);
    ("refute witness inside slice", `Quick, test_refute_witness_inside_slice);
    ("refute distinguishes spurious (zonotope proves)", `Quick,
      test_refute_spurious_component_unknown);
  ]

let suite = suite @ refute_suite

(* ------------------------------------------------------------------ *)
(* Odds and ends: curve io, link defaults *)

let test_curve_csv_roundtrip () =
  let epochs =
    [
      { Trainer.epoch = 1; steps = 100; raw_reward = 0.5;
        verifier_reward = 0.25; combined_reward = 0.4375; fcc = 0.1;
        rollbacks = 0 };
      { Trainer.epoch = 2; steps = 200; raw_reward = -0.25;
        verifier_reward = 1.; combined_reward = 0.0625; fcc = 0.9;
        rollbacks = 1 };
    ]
  in
  let path = Filename.temp_file "canopy" ".curve.csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trainer.save_curve epochs path;
      let back = Trainer.load_curve path in
      check_int "epoch count" 2 (List.length back);
      List.iter2
        (fun (a : Trainer.epoch) (b : Trainer.epoch) ->
          check_int "epoch" a.Trainer.epoch b.Trainer.epoch;
          check_float "raw" a.Trainer.raw_reward b.Trainer.raw_reward;
          check_float "verifier" a.Trainer.verifier_reward
            b.Trainer.verifier_reward;
          check_float "fcc" a.Trainer.fcc b.Trainer.fcc)
        epochs back)

let test_link_defaults () =
  let trace =
    Canopy_trace.Trace.constant ~name:"t" ~duration_ms:7000 ~mbps:10.
  in
  let l = Eval.link trace in
  check_int "duration defaults to trace" 7000 l.Eval.duration_ms;
  check_int "min rtt default" 40 l.Eval.min_rtt_ms;
  check_float "bdp default" 2. l.Eval.bdp_multiplier;
  let l2 = Eval.link ~duration_ms:3000 ~bdp:5. trace in
  check_int "duration override" 3000 l2.Eval.duration_ms;
  check_float "bdp override" 5. l2.Eval.bdp_multiplier

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_shield_verdict_pp () =
  let s = Format.asprintf "%a" Shield.pp_verdict Shield.Unconstrained in
  check_bool "pp unconstrained" true (s = "unconstrained");
  let s =
    Format.asprintf "%a" Shield.pp_verdict
      (Shield.Clamped
         { case = Property.Large_delay; original = 0.9; enforced = 0. })
  in
  check_bool "pp clamped mentions case" true
    (contains_substring s "large-delay")

let misc_suite =
  [
    ("trainer curve csv roundtrip", `Quick, test_curve_csv_roundtrip);
    ("eval link defaults", `Quick, test_link_defaults);
    ("shield verdict pp", `Quick, test_shield_verdict_pp);
  ]

let suite = suite @ misc_suite
