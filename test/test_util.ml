(* Tests for canopy_util: PRNG, statistics, ring buffer, math helpers,
   growable float buffer. *)

open Canopy_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check_bool "different seeds differ" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_split_independent () =
  let parent = Prng.create 11 in
  let child = Prng.split parent 0 in
  let xs = List.init 50 (fun _ -> Prng.bits64 parent) in
  let ys = List.init 50 (fun _ -> Prng.bits64 child) in
  check_bool "streams differ" false (xs = ys)

let test_prng_split_deterministic () =
  let stream idx =
    let child = Prng.split (Prng.create 11) idx in
    List.init 20 (fun _ -> Prng.bits64 child)
  in
  check_bool "same parent state + index replays" true (stream 3 = stream 3);
  check_bool "distinct indices give distinct streams" false
    (stream 0 = stream 1);
  (* Sibling streams from distinct indices stay decorrelated well past
     the first draw. *)
  let pairs = List.combine (stream 4) (stream 5) in
  check_bool "no pointwise collisions" true
    (List.for_all (fun (a, b) -> a <> b) pairs)

let test_prng_split_advances_parent () =
  (* split consumes exactly one draw from the parent, so a split is
     stream-equivalent to one bits64 call. *)
  let a = Prng.create 17 and b = Prng.create 17 in
  ignore (Prng.split a 2);
  ignore (Prng.bits64 b);
  Alcotest.(check int64) "parent advanced by one draw" (Prng.bits64 a)
    (Prng.bits64 b)

let test_prng_split_negative_rejected () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.split: negative index") (fun () ->
      ignore (Prng.split (Prng.create 1) (-1)))

let test_prng_copy_replays () =
  let a = Prng.create 3 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_int_range () =
  let rng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_covers () =
  let rng = Prng.create 9 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int rng 8) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "bucket %d hit" i) true s)
    seen

let test_prng_float_range () =
  let rng = Prng.create 13 in
  for _ = 1 to 1_000 do
    let x = Prng.float rng 2.5 in
    check_bool "in [0, 2.5)" true (x >= 0. && x < 2.5)
  done

let test_prng_uniform_range () =
  let rng = Prng.create 17 in
  for _ = 1 to 1_000 do
    let x = Prng.uniform rng (-3.) 4. in
    check_bool "in [-3, 4)" true (x >= -3. && x < 4.)
  done

let test_prng_gaussian_moments () =
  let rng = Prng.create 23 in
  let n = 20_000 in
  let w = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add w (Prng.gaussian rng)
  done;
  check_bool "mean near 0" true (Float.abs (Stats.Welford.mean w) < 0.05);
  check_bool "stddev near 1" true
    (Float.abs (Stats.Welford.stddev w -. 1.) < 0.05)

let test_prng_gaussian_scaled () =
  let rng = Prng.create 29 in
  let w = Stats.Welford.create () in
  for _ = 1 to 20_000 do
    Stats.Welford.add w (Prng.gaussian_scaled rng ~mu:5. ~sigma:2.)
  done;
  check_bool "mean near 5" true (Float.abs (Stats.Welford.mean w -. 5.) < 0.1);
  check_bool "stddev near 2" true
    (Float.abs (Stats.Welford.stddev w -. 2.) < 0.1)

let test_prng_exponential_mean () =
  let rng = Prng.create 31 in
  let w = Stats.Welford.create () in
  for _ = 1 to 20_000 do
    let x = Prng.exponential rng ~rate:0.5 in
    check_bool "non-negative" true (x >= 0.);
    Stats.Welford.add w x
  done;
  check_bool "mean near 1/rate" true
    (Float.abs (Stats.Welford.mean w -. 2.) < 0.1)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 37 in
  let a = Array.init 20 Fun.id in
  let b = Array.copy a in
  Prng.shuffle rng b;
  Array.sort Int.compare b;
  Alcotest.(check (array int)) "same multiset" a b

let test_prng_choose () =
  let rng = Prng.create 41 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Prng.choose rng a) a)
  done

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_welford_matches_batch () =
  let xs = [| 1.5; 2.5; -3.; 4.25; 0.; 10. |] in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) xs;
  check_int "count" 6 (Stats.Welford.count w);
  check_float "mean" (Stats.mean xs) (Stats.Welford.mean w);
  Alcotest.(check (float 1e-9)) "stddev" (Stats.stddev xs)
    (Stats.Welford.stddev w)

let test_welford_merge () =
  let xs = Array.init 10 float_of_int in
  let ys = Array.init 7 (fun i -> float_of_int (100 + i)) in
  let wa = Stats.Welford.create () and wb = Stats.Welford.create () in
  Array.iter (Stats.Welford.add wa) xs;
  Array.iter (Stats.Welford.add wb) ys;
  let merged = Stats.Welford.merge wa wb in
  let all = Array.append xs ys in
  check_float "merged mean" (Stats.mean all) (Stats.Welford.mean merged);
  Alcotest.(check (float 1e-9)) "merged stddev" (Stats.stddev all)
    (Stats.Welford.stddev merged)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  check_float "mean empty" 0. (Stats.Welford.mean w);
  check_float "variance empty" 0. (Stats.Welford.variance w)

let test_percentile_simple () =
  let xs = [| 3.; 1.; 2.; 5.; 4. |] in
  check_float "p0 = min" 1. (Stats.percentile xs 0.);
  check_float "p100 = max" 5. (Stats.percentile xs 100.);
  check_float "p50 = median" 3. (Stats.percentile xs 50.);
  check_float "median fn" 3. (Stats.median xs)

let test_percentile_interpolates () =
  let xs = [| 0.; 10. |] in
  check_float "p25" 2.5 (Stats.percentile xs 25.);
  check_float "p75" 7.5 (Stats.percentile xs 75.)

let test_percentile_singleton () =
  check_float "singleton" 42. (Stats.percentile [| 42. |] 95.)

let test_percentile_empty_raises () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile [||] 50.))

let test_summarize () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summarize xs in
  check_int "n" 100 s.Stats.n;
  check_float "mean" 50.5 s.Stats.mean;
  check_float "min" 1. s.Stats.min;
  check_float "max" 100. s.Stats.max;
  check_bool "p95 close" true (Float.abs (s.Stats.p95 -. 95.05) < 0.01)

let test_stats_mean_empty () = check_float "mean empty" 0. (Stats.mean [||])

(* Jain's index: exact at the two analytic anchors (both computable
   without rounding), and degenerate inputs defined as perfectly fair. *)
let test_jain_equal_share () =
  check_float "equal allocations" 1. (Stats.jain_index [| 3.; 3.; 3.; 3. |]);
  check_float "singleton" 1. (Stats.jain_index [| 42. |])

let test_jain_single_hog () =
  (* One flow gets everything: J = 1/n, exactly representable for n=4. *)
  check_float "1/n for a single hog" 0.25
    (Stats.jain_index [| 8.; 0.; 0.; 0. |])

let test_jain_degenerate () =
  check_float "empty is fair" 1. (Stats.jain_index [||]);
  check_float "all-zero is fair" 1. (Stats.jain_index [| 0.; 0.; 0. |])

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 in
  check_bool "empty" true (Ring.is_empty r);
  Ring.push r 1;
  Ring.push r 2;
  check_int "length" 2 (Ring.length r);
  check_int "oldest" 1 (Ring.oldest r);
  check_int "newest" 2 (Ring.newest r)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  check_bool "full" true (Ring.is_full r);
  Alcotest.(check (list int)) "kept newest" [ 3; 4; 5 ] (Ring.to_list r);
  check_int "get 0" 3 (Ring.get r 0);
  check_int "get 2" 5 (Ring.get r 2)

let test_ring_clear () =
  let r = Ring.create ~capacity:2 in
  Ring.push r 1;
  Ring.clear r;
  check_bool "cleared" true (Ring.is_empty r);
  Ring.push r 9;
  check_int "reusable" 9 (Ring.newest r)

let test_ring_to_array () =
  let r = Ring.create ~capacity:4 in
  List.iter (Ring.push r) [ 10; 20; 30 ];
  Alcotest.(check (array int)) "array order" [| 10; 20; 30 |] (Ring.to_array r)

let test_ring_fold_iter () =
  let r = Ring.create ~capacity:5 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  check_int "fold sum" 6 (Ring.fold ( + ) 0 r);
  let order = ref [] in
  Ring.iter (fun x -> order := x :: !order) r;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !order

let test_ring_errors () =
  let r = Ring.create ~capacity:2 in
  Alcotest.check_raises "newest empty" (Invalid_argument "Ring.newest: empty")
    (fun () -> ignore (Ring.newest r));
  Alcotest.check_raises "get oob" (Invalid_argument "Ring.get: index")
    (fun () -> ignore (Ring.get r 0))

(* ------------------------------------------------------------------ *)
(* Mathx *)

let test_clamp () =
  check_float "below" 1. (Mathx.clamp ~lo:1. ~hi:2. 0.);
  check_float "above" 2. (Mathx.clamp ~lo:1. ~hi:2. 5.);
  check_float "inside" 1.5 (Mathx.clamp ~lo:1. ~hi:2. 1.5);
  check_int "int clamp" 3 (Mathx.clamp_int ~lo:0 ~hi:3 7)

let test_lerp () =
  check_float "t=0" 2. (Mathx.lerp 2. 8. 0.);
  check_float "t=1" 8. (Mathx.lerp 2. 8. 1.);
  check_float "t=0.5" 5. (Mathx.lerp 2. 8. 0.5)

let test_pow2_log2 () =
  check_float "pow2 3" 8. (Mathx.pow2 3.);
  check_float "pow2 -1" 0.5 (Mathx.pow2 (-1.));
  check_float "log2 8" 3. (Mathx.log2 8.);
  check_bool "roundtrip" true (Mathx.approx_equal (Mathx.log2 (Mathx.pow2 2.7)) 2.7)

let test_sign_round () =
  check_float "sign neg" (-1.) (Mathx.sign (-0.3));
  check_float "sign zero" 0. (Mathx.sign 0.);
  check_float "round_to" 3.14 (Mathx.round_to 2 3.14159)

let test_approx_equal () =
  check_bool "exact" true (Mathx.approx_equal 1. 1.);
  check_bool "close" true (Mathx.approx_equal ~eps:1e-6 1. (1. +. 1e-9));
  check_bool "far" false (Mathx.approx_equal 1. 2.)

(* ------------------------------------------------------------------ *)
(* Fbuf *)

let test_fbuf_push_get () =
  let b = Fbuf.create ~initial_capacity:2 () in
  for i = 1 to 100 do
    Fbuf.push b (float_of_int i)
  done;
  check_int "length" 100 (Fbuf.length b);
  check_float "get 0" 1. (Fbuf.get b 0);
  check_float "get 99" 100. (Fbuf.get b 99);
  check_float "sum" 5050. (Fbuf.sum b);
  check_float "mean" 50.5 (Fbuf.mean b)

let test_fbuf_to_array_clear () =
  let b = Fbuf.create () in
  Fbuf.push b 1.;
  Fbuf.push b 2.;
  Alcotest.(check (array (float 0.))) "array" [| 1.; 2. |] (Fbuf.to_array b);
  Fbuf.clear b;
  check_int "cleared" 0 (Fbuf.length b);
  check_float "mean empty" 0. (Fbuf.mean b)

let test_fbuf_oob () =
  let b = Fbuf.create () in
  Alcotest.check_raises "oob" (Invalid_argument "Fbuf.get: index") (fun () ->
      ignore (Fbuf.get b 0))

(* ------------------------------------------------------------------ *)
(* Property-based *)

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"percentile is within sample bounds" ~count:200
      (pair (list_of_size Gen.(1 -- 40) (float_bound_inclusive 100.))
         (float_bound_inclusive 100.))
      (fun (xs, p) ->
        let a = Array.of_list xs in
        let v = Canopy_util.Stats.percentile a p in
        let lo = Array.fold_left Float.min a.(0) a in
        let hi = Array.fold_left Float.max a.(0) a in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
    Test.make ~name:"welford mean equals batch mean" ~count:200
      (list_of_size Gen.(1 -- 50) (float_range (-50.) 50.))
      (fun xs ->
        let w = Canopy_util.Stats.Welford.create () in
        List.iter (Canopy_util.Stats.Welford.add w) xs;
        Canopy_util.Mathx.approx_equal ~eps:1e-6
          (Canopy_util.Stats.Welford.mean w)
          (Canopy_util.Stats.mean (Array.of_list xs)));
    Test.make ~name:"ring keeps last capacity elements" ~count:200
      (pair (int_range 1 8) (list_of_size Gen.(0 -- 40) int))
      (fun (cap, xs) ->
        let r = Canopy_util.Ring.create ~capacity:cap in
        List.iter (Canopy_util.Ring.push r) xs;
        let expected =
          let n = List.length xs in
          if n <= cap then xs
          else List.filteri (fun i _ -> i >= n - cap) xs
        in
        Canopy_util.Ring.to_list r = expected);
    Test.make ~name:"clamp is idempotent and bounded" ~count:200
      (triple (float_range (-100.) 100.) (float_range (-100.) 100.)
         (float_range (-200.) 200.))
      (fun (a, b, x) ->
        let lo = Float.min a b and hi = Float.max a b in
        let c = Canopy_util.Mathx.clamp ~lo ~hi x in
        c >= lo && c <= hi
        && Canopy_util.Mathx.clamp ~lo ~hi c = c);
  ]

(* ------------------------------------------------------------------ *)
(* Prng snapshot state *)

let test_prng_state_roundtrip () =
  let a = Prng.create 9 in
  for _ = 1 to 17 do
    ignore (Prng.bits64 a)
  done;
  let b = Prng.of_state (Prng.state a) in
  for _ = 1 to 50 do
    Alcotest.(check int64) "of_state replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_set_state () =
  let a = Prng.create 1 and b = Prng.create 2 in
  ignore (Prng.bits64 a);
  Prng.set_state b (Prng.state a);
  Alcotest.(check int64) "set_state aligns streams" (Prng.bits64 a)
    (Prng.bits64 b)

let test_prng_reseed () =
  let mk () =
    let t = Prng.create 5 in
    ignore (Prng.bits64 t);
    t
  in
  let base = mk () and salted = mk () and salted' = mk () in
  Prng.reseed salted ~salt:1;
  Prng.reseed salted' ~salt:1;
  let take t = List.init 20 (fun _ -> Prng.bits64 t) in
  let xs = take base and ys = take salted and ys' = take salted' in
  check_bool "reseed decorrelates" false (xs = ys);
  check_bool "reseed deterministic" true (ys = ys');
  let other = mk () in
  Prng.reseed other ~salt:2;
  check_bool "salts give distinct streams" false (take other = ys)

(* ------------------------------------------------------------------ *)
(* Crc32 *)

let test_crc32_known_vector () =
  (* The standard IEEE 802.3 check value. *)
  Alcotest.(check string) "check vector" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""))

let test_crc32_incremental () =
  let a = "canopy-" and b = "train v2" in
  Alcotest.(check int32) "update extends" (Crc32.string (a ^ b))
    (Crc32.update (Crc32.string a) b)

let test_crc32_hex_roundtrip () =
  let crc = Crc32.string "some payload" in
  (match Crc32.of_hex (Crc32.to_hex crc) with
  | Some back -> Alcotest.(check int32) "roundtrip" crc back
  | None -> Alcotest.fail "of_hex rejected to_hex output");
  check_bool "too short" true (Crc32.of_hex "abc" = None);
  check_bool "non-hex" true (Crc32.of_hex "zzzzzzzz" = None);
  check_bool "sign prefix" true (Crc32.of_hex "-1234567" = None);
  check_bool "underscores" true (Crc32.of_hex "12_45678" = None)

(* ------------------------------------------------------------------ *)
(* Atomic_file *)

let with_temp_dir f =
  let marker = Filename.temp_file "canopy-test" ".tmp" in
  let dir = marker ^ ".d" in
  Atomic_file.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e -> Sys.remove (Filename.concat dir e))
           (Sys.readdir dir)
       with Sys_error _ -> ());
      (try Sys.rmdir dir with Sys_error _ -> ());
      try Sys.remove marker with Sys_error _ -> ())
    (fun () -> f dir)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write_and_overwrite () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "out.txt" in
      Atomic_file.write path "first\n";
      Alcotest.(check string) "written" "first\n" (read_all path);
      Atomic_file.write path "second, longer contents\n";
      Alcotest.(check string) "overwritten" "second, longer contents\n"
        (read_all path);
      (* No staging litter left behind. *)
      Alcotest.(check (list string)) "no temp files" [ "out.txt" ]
        (Array.to_list (Sys.readdir dir)))

let test_atomic_write_failure_keeps_target () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "missing-dir" in
      (* Writing into a nonexistent directory fails... *)
      check_bool "raises" true
        (match Atomic_file.write (Filename.concat path "x") "data" with
        | () -> false
        | exception Sys_error _ -> true))

let test_mkdir_p () =
  with_temp_dir (fun dir ->
      let deep = Filename.concat (Filename.concat dir "a") "b" in
      Atomic_file.mkdir_p deep;
      check_bool "created" true (Sys.is_directory deep);
      (* Idempotent on existing directories. *)
      Atomic_file.mkdir_p deep;
      check_bool "still there" true (Sys.is_directory deep);
      (* A file in the way is an error. *)
      let file = Filename.concat dir "occupied" in
      Atomic_file.write file "x";
      check_bool "non-directory rejected" true
        (match Atomic_file.mkdir_p (Filename.concat file "sub") with
        | () -> false
        | exception (Invalid_argument _ | Sys_error _) -> true))

let suite =
  [
    ("prng determinism", `Quick, test_prng_deterministic);
    ("prng seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng split independence", `Quick, test_prng_split_independent);
    ("prng split deterministic", `Quick, test_prng_split_deterministic);
    ("prng split advances parent", `Quick, test_prng_split_advances_parent);
    ("prng split negative rejected", `Quick, test_prng_split_negative_rejected);
    ("prng copy replays", `Quick, test_prng_copy_replays);
    ("prng int range", `Quick, test_prng_int_range);
    ("prng int covers buckets", `Quick, test_prng_int_covers);
    ("prng float range", `Quick, test_prng_float_range);
    ("prng uniform range", `Quick, test_prng_uniform_range);
    ("prng gaussian moments", `Quick, test_prng_gaussian_moments);
    ("prng gaussian scaled", `Quick, test_prng_gaussian_scaled);
    ("prng exponential mean", `Quick, test_prng_exponential_mean);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("prng choose membership", `Quick, test_prng_choose);
    ("welford matches batch", `Quick, test_welford_matches_batch);
    ("welford merge", `Quick, test_welford_merge);
    ("welford empty", `Quick, test_welford_empty);
    ("percentile simple", `Quick, test_percentile_simple);
    ("percentile interpolates", `Quick, test_percentile_interpolates);
    ("percentile singleton", `Quick, test_percentile_singleton);
    ("percentile empty raises", `Quick, test_percentile_empty_raises);
    ("summarize", `Quick, test_summarize);
    ("mean of empty", `Quick, test_stats_mean_empty);
    ("jain equal share", `Quick, test_jain_equal_share);
    ("jain single hog", `Quick, test_jain_single_hog);
    ("jain degenerate", `Quick, test_jain_degenerate);
    ("ring basic", `Quick, test_ring_basic);
    ("ring eviction", `Quick, test_ring_eviction);
    ("ring clear", `Quick, test_ring_clear);
    ("ring to_array", `Quick, test_ring_to_array);
    ("ring fold/iter", `Quick, test_ring_fold_iter);
    ("ring errors", `Quick, test_ring_errors);
    ("clamp", `Quick, test_clamp);
    ("lerp", `Quick, test_lerp);
    ("pow2/log2", `Quick, test_pow2_log2);
    ("sign/round", `Quick, test_sign_round);
    ("approx_equal", `Quick, test_approx_equal);
    ("fbuf push/get", `Quick, test_fbuf_push_get);
    ("fbuf to_array/clear", `Quick, test_fbuf_to_array_clear);
    ("fbuf out of bounds", `Quick, test_fbuf_oob);
    ("prng state roundtrip", `Quick, test_prng_state_roundtrip);
    ("prng set_state", `Quick, test_prng_set_state);
    ("prng reseed", `Quick, test_prng_reseed);
    ("crc32 known vector", `Quick, test_crc32_known_vector);
    ("crc32 incremental", `Quick, test_crc32_incremental);
    ("crc32 hex roundtrip", `Quick, test_crc32_hex_roundtrip);
    ("atomic write/overwrite", `Quick, test_atomic_write_and_overwrite);
    ("atomic write failure keeps target", `Quick,
      test_atomic_write_failure_keeps_target);
    ("mkdir_p", `Quick, test_mkdir_p);
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck
