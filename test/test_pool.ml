(* Tests for the deterministic domain pool and every parallel path built
   on it: pool lifecycle, chunk decomposition, and bit-exact agreement of
   the parallel GEMM / certification / evaluation kernels with their
   sequential references at domain counts 1, 2 and 4. *)

open Canopy_util
module Mat = Canopy_tensor.Mat
module Vec = Canopy_tensor.Vec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f] with a fresh default pool of [d] domains, restoring the
   previous default (and reaping the temporary pool) afterwards. *)
let with_default_pool d f =
  let saved = Pool.default () in
  let pool = Pool.create ~domains:d () in
  Pool.set_default pool;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default saved;
      Pool.shutdown pool)
    (fun () -> f ())

(* Force the GEMM/certify grain low enough that even test-sized
   workloads chunk, restoring the production grain afterwards. *)
let with_tiny_grain ?(chunk_flops = 1) f =
  let min_flops, saved_chunk = Mat.parallel_grain () in
  Mat.set_parallel_grain ~min_flops:1 ~chunk_flops;
  Fun.protect
    ~finally:(fun () ->
      Mat.set_parallel_grain ~min_flops ~chunk_flops:saved_chunk)
    f

(* ------------------------------------------------------------------ *)
(* Pool lifecycle *)

let test_pool_create_domains () =
  let p = Pool.create ~domains:3 () in
  check_int "requested size" 3 (Pool.domains p);
  Pool.shutdown p;
  let p1 = Pool.create ~domains:(-2) () in
  check_int "clamped to 1" 1 (Pool.domains p1);
  Pool.shutdown p1

let test_pool_reused_across_calls () =
  let p = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      (* Many regions on one pool: workers are spawned once and survive
         between jobs; each region still covers every index exactly
         once. *)
      for _ = 1 to 20 do
        let hits = Array.make 23 0 in
        Pool.parallel_for_chunks ~pool:p ~chunk:4 23 (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              hits.(i) <- hits.(i) + 1
            done);
        Array.iteri
          (fun i h -> check_int (Printf.sprintf "index %d once" i) 1 h)
          hits
      done)

let test_pool_chunk_boundaries () =
  (* The chunk list is a pure function of (n, chunk): ceil(n/chunk)
     half-open ranges, the last one short. *)
  let p = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let ranges = ref [] in
      Pool.parallel_for_chunks ~pool:p ~chunk:4 10 (fun ~lo ~hi ->
          ranges := (lo, hi) :: !ranges);
      Alcotest.(check (list (pair int int)))
        "ceil(10/4) ranges in order"
        [ (0, 4); (4, 8); (8, 10) ]
        (List.rev !ranges);
      Pool.parallel_for_chunks ~pool:p ~chunk:5 0 (fun ~lo:_ ~hi:_ ->
          Alcotest.fail "no chunks for n = 0"))

let test_pool_invalid_args () =
  let p = Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.check_raises "chunk <= 0"
        (Invalid_argument "Pool.parallel_for_chunks: chunk") (fun () ->
          Pool.parallel_for_chunks ~pool:p ~chunk:0 4 (fun ~lo:_ ~hi:_ -> ()));
      Alcotest.check_raises "n < 0"
        (Invalid_argument "Pool.parallel_for_chunks: n") (fun () ->
          Pool.parallel_for_chunks ~pool:p ~chunk:1 (-1) (fun ~lo:_ ~hi:_ ->
              ())))

let test_pool_worker_exception_propagates () =
  let p = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      (* The lowest-index failure wins, whichever domain ran it. *)
      check_bool "failure surfaces" true
        (match
           Pool.parallel_for_chunks ~pool:p ~chunk:1 8 (fun ~lo ~hi:_ ->
               if lo >= 5 then failwith (Printf.sprintf "chunk %d" lo))
         with
        | () -> false
        | exception Failure msg -> msg = "chunk 5");
      (* ... and the pool is still usable afterwards. *)
      let sum = ref 0 in
      let m = Mutex.create () in
      Pool.parallel_for_chunks ~pool:p ~chunk:2 10 (fun ~lo ~hi ->
          let s = ref 0 in
          for i = lo to hi - 1 do
            s := !s + i
          done;
          Mutex.lock m;
          sum := !sum + !s;
          Mutex.unlock m);
      check_int "usable after failure" 45 !sum)

let test_pool_multiple_failures_lowest_wins () =
  let p = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      (* Every chunk fails concurrently: the surfaced exception must be
         the lowest-numbered chunk's, not whichever domain lost the
         race to raise first. *)
      check_bool "all chunks fail, chunk 0 wins" true
        (match
           Pool.parallel_for_chunks ~pool:p ~chunk:1 8 (fun ~lo ~hi:_ ->
               failwith (Printf.sprintf "chunk %d" lo))
         with
        | () -> false
        | exception Failure msg -> msg = "chunk 0");
      (* A scattered subset of failures: still the lowest index. *)
      check_bool "scattered failures, lowest wins" true
        (match
           Pool.parallel_for_chunks ~pool:p ~chunk:1 10 (fun ~lo ~hi:_ ->
               if lo = 3 || lo = 6 || lo = 9 then
                 failwith (Printf.sprintf "chunk %d" lo))
         with
        | () -> false
        | exception Failure msg -> msg = "chunk 3");
      (* Repeated failing regions must not wedge the pool: workers park
         and re-arm cleanly every time. *)
      for round = 1 to 5 do
        (match
           Pool.parallel_for_chunks ~pool:p ~chunk:2 12 (fun ~lo ~hi:_ ->
               if lo >= 4 then failwith "boom")
         with
        | () -> Alcotest.fail "region should have failed"
        | exception Failure _ -> ());
        let hits = Array.make 12 0 in
        Pool.parallel_for_chunks ~pool:p ~chunk:3 12 (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              hits.(i) <- hits.(i) + 1
            done);
        Array.iteri
          (fun i h ->
            check_int (Printf.sprintf "round %d index %d once" round i) 1 h)
          hits
      done)

let test_pool_nested_rejected () =
  let p = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      Alcotest.check_raises "nested parallel region"
        (Invalid_argument "Pool.parallel_for_chunks: nested parallel call")
        (fun () ->
          Pool.parallel_for_chunks ~pool:p ~chunk:1 4 (fun ~lo:_ ~hi:_ ->
              Pool.parallel_for_chunks ~pool:p ~chunk:1 2 (fun ~lo:_ ~hi:_ ->
                  ())));
      (* in_task is visible to kernels inside a task, reset outside. *)
      check_bool "outside" false (Pool.in_task ());
      let seen = ref false in
      Pool.parallel_for_chunks ~pool:p ~chunk:4 4 (fun ~lo:_ ~hi:_ ->
          seen := Pool.in_task ());
      check_bool "inside" true !seen;
      check_bool "reset" false (Pool.in_task ()))

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool: pool has been shut down") (fun () ->
      Pool.parallel_for_chunks ~pool:p ~chunk:1 3 (fun ~lo:_ ~hi:_ -> ()))

let test_pool_map_order () =
  let p = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let input = Array.init 57 (fun i -> i) in
      let out = Pool.map ~pool:p (fun x -> (x * x) + 1) input in
      Alcotest.(check (array int))
        "order preserved"
        (Array.map (fun x -> (x * x) + 1) input)
        out;
      Alcotest.(check (list string))
        "map_list preserves order" [ "a!"; "b!"; "c!" ]
        (Pool.map_list ~pool:p (fun s -> s ^ "!") [ "a"; "b"; "c" ]);
      Alcotest.(check (array int)) "empty" [||] (Pool.map ~pool:p Fun.id [||]))

let test_pool_map_reduce_fold_order () =
  let p = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      (* String concatenation is non-commutative, so this checks the
         combine runs in ascending chunk order regardless of which
         domain computed which part. *)
      let s =
        Pool.map_reduce ~pool:p ~chunk:3 10
          ~map:(fun ~lo ~hi -> Printf.sprintf "[%d,%d)" lo hi)
          ~combine:( ^ ) ""
      in
      Alcotest.(check string) "ascending chunks" "[0,3)[3,6)[6,9)[9,10)" s;
      check_int "n = 0 returns init" 7
        (Pool.map_reduce ~pool:p ~chunk:2 0
           ~map:(fun ~lo:_ ~hi:_ -> 1)
           ~combine:( + ) 7))

(* ------------------------------------------------------------------ *)
(* Bit-exact GEMM: parallel row chunking vs the sequential kernels *)

let mk_mat rng rows cols =
  Mat.init ~rows ~cols (fun _ _ -> Prng.uniform rng (-2.) 2.)

let bits m = Array.map Int64.bits_of_float (Mat.raw m)

(* Shapes chosen to straddle the parallel gates: rows <= 4 never go
   parallel; 5 exercises a single 4-row block plus remainder rows; the
   rest hit chunk boundaries at and off multiples of the 4-aligned
   chunk size. *)
let gemm_shapes = [ (3, 5, 7); (5, 3, 4); (8, 6, 6); (9, 7, 5); (37, 13, 11) ]

let gemm_cases ~domain_counts ~chunk_flops run =
  List.iter
    (fun (m, k, n) ->
      (* Sequential reference: a 1-domain default pool never dispatches. *)
      let reference = with_default_pool 1 (fun () -> run (m, k, n)) in
      List.iter
        (fun d ->
          let got =
            with_default_pool d (fun () ->
                with_tiny_grain ~chunk_flops (fun () -> run (m, k, n)))
          in
          check_bool
            (Printf.sprintf "%dx%dx%d bit-exact at %d domains" m k n d)
            true
            (reference = got))
        domain_counts)
    gemm_shapes

let test_mat_mul_into_bit_exact () =
  gemm_cases ~domain_counts:[ 1; 2; 4 ] ~chunk_flops:1 (fun (m, k, n) ->
      let rng = Prng.create ((m * 1000) + (k * 10) + n) in
      let a = mk_mat rng m k and b = mk_mat rng k n in
      let dst = Mat.create ~rows:m ~cols:n in
      Mat.mat_mul_into ~dst a b;
      bits dst)

let test_mat_mul_nt_bias_into_bit_exact () =
  gemm_cases ~domain_counts:[ 1; 2; 4 ] ~chunk_flops:1 (fun (m, k, n) ->
      let rng = Prng.create ((m * 999) + (k * 7) + n) in
      let a = mk_mat rng m k and b = mk_mat rng n k in
      let bias = Array.init n (fun _ -> Prng.uniform rng (-1.) 1.) in
      let dst = Mat.create ~rows:m ~cols:n in
      Mat.mat_mul_nt_bias_into ~dst a b bias;
      bits dst)

let test_mat_mul_tn_acc_bit_exact () =
  (* tn_acc chunks over a.cols (the dst rows) and accumulates into a
     pre-seeded dst, so seed it identically on both sides. *)
  gemm_cases ~domain_counts:[ 1; 2; 4 ] ~chunk_flops:1 (fun (m, k, n) ->
      let rng = Prng.create ((m * 463) + (k * 31) + n) in
      let a = mk_mat rng m k and b = mk_mat rng m n in
      let dst = Mat.init ~rows:k ~cols:n (fun i j -> float_of_int (i - j)) in
      Mat.mat_mul_tn_acc ~dst a b;
      bits dst)

let test_gemm_bit_exact_coarser_chunks () =
  (* A larger chunk grain moves the chunk boundaries; results must not. *)
  gemm_cases ~domain_counts:[ 2 ] ~chunk_flops:2048 (fun (m, k, n) ->
      let rng = Prng.create ((m * 217) + (k * 5) + n) in
      let a = mk_mat rng m k and b = mk_mat rng n k in
      let bias = Array.init n (fun _ -> Prng.uniform rng (-1.) 1.) in
      let dst = Mat.create ~rows:m ~cols:n in
      Mat.mat_mul_nt_bias_into ~dst a b bias;
      bits dst)

let test_packed_and_blocked_gemm_scratch_bit_exact () =
  (* Shapes big enough to trip the per-domain scratch machinery: >= 12
     rows engages the packed-B panel of the nt kernels, > 128 shared
     dims spans multiple k-blocks of [mat_mul_into]. Each domain count
     gets a fresh pool (cold arenas) and runs the kernel twice — the
     second call reuses warm panels, and both runs must equal the
     1-domain reference bit for bit. *)
  let nt_run (m, k, n) () =
    let rng = Prng.create ((m * 131) + (k * 17) + n) in
    let a = mk_mat rng m k and b = mk_mat rng n k in
    let bias = Array.init n (fun _ -> Prng.uniform rng (-1.) 1.) in
    let dst = Mat.create ~rows:m ~cols:n in
    Mat.mat_mul_nt_bias_into ~dst a b bias;
    bits dst
  in
  let mm_run (m, k, n) () =
    let rng = Prng.create ((m * 911) + (k * 3) + n) in
    let a = mk_mat rng m k and b = mk_mat rng k n in
    let dst = Mat.create ~rows:m ~cols:n in
    Mat.mat_mul_into ~dst a b;
    bits dst
  in
  List.iter
    (fun (label, run) ->
      let reference = with_default_pool 1 run in
      List.iter
        (fun d ->
          with_default_pool d (fun () ->
              with_tiny_grain (fun () ->
                  let cold = run () and warm = run () in
                  check_bool
                    (Printf.sprintf "%s cold arena at %d domains" label d)
                    true (reference = cold);
                  check_bool
                    (Printf.sprintf "%s warm arena at %d domains" label d)
                    true (reference = warm))))
        [ 1; 2; 4 ])
    [
      ("packed nt 24x20x16", nt_run (24, 20, 16));
      ("packed nt 37x33x21", nt_run (37, 33, 21));
      ("blocked mm 16x300x9", mm_run (16, 300, 9));
      ("blocked mm 24x260x17", mm_run (24, 260, 17));
    ]

let test_td3_parallel_update_bit_exact () =
  (* The sharded TD3 update (per-shard gradient shadows + fixed-shape
     tree reduction) against the 1-domain run: two full gradient steps
     (policy delay 2, so the second moves the actor and targets) from
     an identical snapshot, at 1, 2 and 4 domains; both updates in one
     pool also exercise warm shadow reuse. All learned parameters of
     all six networks must agree bit for bit. *)
  let module Td3 = Canopy_rl.Td3 in
  let rng = Prng.create 211 in
  let cfg =
    {
      (Td3.default_config ~state_dim:5 ~action_dim:2) with
      Td3.hidden = 24;
      batch_size = 64;
      warmup = 64;
      buffer_capacity = 512;
    }
  in
  let agent = Td3.create ~rng cfg in
  let data = Prng.create 212 in
  let rv n = Array.init n (fun _ -> Prng.uniform data (-1.) 1.) in
  for i = 1 to 300 do
    Td3.observe agent
      {
        Canopy_rl.Replay_buffer.state = rv 5;
        action = rv 2;
        reward = Prng.uniform data (-1.) 1.;
        next_state = rv 5;
        terminal = i mod 37 = 0;
        truncated = i mod 53 = 0;
      }
  done;
  let snap0 = Td3.snapshot agent in
  let run () =
    Td3.restore agent snap0;
    Td3.update ~kernel:Td3.Batched agent;
    Td3.update ~kernel:Td3.Batched agent;
    let snap = Td3.snapshot agent in
    List.concat_map
      (fun (_, net) ->
        List.map
          (fun (v, _) -> Array.map Int64.bits_of_float v)
          (Canopy_nn.Mlp.params net))
      snap.Td3.nets
  in
  let reference = with_default_pool 1 run in
  List.iter
    (fun d ->
      let got = with_default_pool d (fun () -> with_tiny_grain run) in
      check_bool
        (Printf.sprintf "td3 parameters identical at %d domains" d)
        true (reference = got))
    [ 2; 4 ]

let test_parallel_disabled_switch () =
  (* The master switch forces the sequential path outright. *)
  let run () =
    let rng = Prng.create 77 in
    let a = mk_mat rng 16 8 and b = mk_mat rng 8 6 in
    let dst = Mat.create ~rows:16 ~cols:6 in
    Mat.mat_mul_into ~dst a b;
    bits dst
  in
  let reference = with_default_pool 1 (fun () -> run ()) in
  with_default_pool 2 (fun () ->
      with_tiny_grain (fun () ->
          Mat.set_parallel_enabled false;
          Fun.protect
            ~finally:(fun () -> Mat.set_parallel_enabled true)
            (fun () ->
              check_bool "switch off" false (Mat.parallel_enabled ());
              check_bool "sequential result" true (reference = run ()))))

(* ------------------------------------------------------------------ *)
(* Certification and evaluation: parallel runs vs 1-domain reference *)

let history = 5
let state_dim = history * Canopy_orca.Observation.feature_count

let make_actor seed =
  let rng = Prng.create seed in
  Canopy_nn.Mlp.actor ~rng ~in_dim:state_dim ~hidden:16 ~out_dim:1

let certify_once engine () =
  let actor = make_actor 5 in
  let state = Array.init state_dim (fun i -> 0.3 +. (0.01 *. float_of_int i)) in
  Canopy.Certify.certify ~engine ~domain:Canopy.Certify.Box_domain ~actor
    ~property:(Canopy.Property.performance ()) ~n_components:30 ~history
    ~state ~cwnd_tcp:80. ~prev_cwnd:70. ()

let test_certify_bit_exact_across_pools () =
  let reference = with_default_pool 1 (certify_once Canopy.Certify.Batched) in
  List.iter
    (fun d ->
      let got =
        with_default_pool d (fun () ->
            with_tiny_grain (certify_once Canopy.Certify.Batched))
      in
      check_bool
        (Printf.sprintf "certificate identical at %d domains" d)
        true (reference = got))
    [ 2; 4 ]

let test_certify_adaptive_bit_exact_across_pools () =
  let run () =
    let actor = make_actor 11 in
    let state = Array.make state_dim 0.4 in
    Canopy.Certify.certify_adaptive ~engine:Canopy.Certify.Batched
      ~actor
      ~property:(Canopy.Property.performance ())
      ~max_components:24 ~history ~state ~cwnd_tcp:100. ~prev_cwnd:95. ()
  in
  let reference = with_default_pool 1 run in
  let got = with_default_pool 2 (fun () -> with_tiny_grain run) in
  check_bool "adaptive bisection identical" true (reference = got)

let test_anet_and_zonotope_bit_exact_across_pools () =
  let module Anet = Canopy_absint.Anet in
  let module Box = Canopy_absint.Box in
  let module Interval = Canopy_absint.Interval in
  let actor = make_actor 23 in
  let ir = Anet.of_mlp actor in
  let rng = Prng.create 29 in
  let boxes =
    Array.init 40 (fun _ ->
        Box.of_intervals
          (Array.init state_dim (fun _ ->
               let c = Prng.uniform rng (-0.5) 0.5 in
               Interval.make (c -. 0.05) (c +. 0.05))))
  in
  let run f () =
    Array.map
      (fun iv ->
        (Int64.bits_of_float (Interval.lo iv), Int64.bits_of_float (Interval.hi iv)))
      (f ir boxes)
  in
  List.iter
    (fun (name, f) ->
      let reference = with_default_pool 1 (run f) in
      let got = with_default_pool 2 (fun () -> with_tiny_grain (run f)) in
      check_bool (name ^ " intervals identical") true (reference = got))
    [
      ("anet", Anet.output_intervals);
      ("zonotope", Canopy_absint.Zonotope.output_intervals_anet);
    ]

let test_eval_sweep_bit_exact_across_pools () =
  let module Eval = Canopy.Eval in
  let links =
    List.map
      (Eval.link ~min_rtt_ms:40)
      (List.filteri
         (fun i _ -> i < 3)
         (Canopy_trace.Suite.all ~duration_ms:1_500 ()))
  in
  let tasks =
    List.map (fun l () -> Eval.eval_tcp ~name:"cubic" Eval.cubic_scheme l) links
  in
  let run () = Eval.run_tasks tasks in
  let reference = with_default_pool 1 run in
  let got = with_default_pool 2 run in
  check_bool "sweep results identical" true (reference = got);
  check_int "one result per task" (List.length tasks) (List.length got)

let test_trainer_bit_exact_across_pools () =
  let module Trainer = Canopy.Trainer in
  let config () =
    let envs =
      Trainer.env_pool ~n:2 ~bw_range_mbps:(12., 24.) ~rtt_range_ms:(20, 30)
        ~duration_ms:1500 ~seed:3 ()
    in
    { (Trainer.default_config ~total_steps:40 ~envs ()) with log_every = 20 }
  in
  let curve () =
    let _, epochs = Trainer.train (config ()) in
    List.map
      (fun (e : Trainer.epoch) -> Int64.bits_of_float e.Trainer.raw_reward)
      epochs
  in
  let reference = with_default_pool 1 curve in
  let got = with_default_pool 2 (fun () -> with_tiny_grain curve) in
  check_bool "training curve identical" true (reference = got)

let suite =
  [
    ("pool create/domains", `Quick, test_pool_create_domains);
    ("pool reused across calls", `Quick, test_pool_reused_across_calls);
    ("pool chunk boundaries", `Quick, test_pool_chunk_boundaries);
    ("pool invalid args", `Quick, test_pool_invalid_args);
    ( "pool worker exception propagates",
      `Quick,
      test_pool_worker_exception_propagates );
    ( "pool concurrent failures, lowest wins",
      `Quick,
      test_pool_multiple_failures_lowest_wins );
    ("pool nested call rejected", `Quick, test_pool_nested_rejected);
    ("pool shutdown idempotent", `Quick, test_pool_shutdown_idempotent);
    ("pool map preserves order", `Quick, test_pool_map_order);
    ("pool map_reduce fold order", `Quick, test_pool_map_reduce_fold_order);
    ("mat_mul_into bit-exact", `Quick, test_mat_mul_into_bit_exact);
    ( "mat_mul_nt_bias_into bit-exact",
      `Quick,
      test_mat_mul_nt_bias_into_bit_exact );
    ("mat_mul_tn_acc bit-exact", `Quick, test_mat_mul_tn_acc_bit_exact);
    ("gemm bit-exact, coarser chunks", `Quick, test_gemm_bit_exact_coarser_chunks);
    ( "packed/blocked gemm scratch bit-exact",
      `Quick,
      test_packed_and_blocked_gemm_scratch_bit_exact );
    ("td3 parallel update bit-exact", `Quick, test_td3_parallel_update_bit_exact);
    ("parallel master switch", `Quick, test_parallel_disabled_switch);
    ("certify bit-exact across pools", `Quick, test_certify_bit_exact_across_pools);
    ( "certify_adaptive bit-exact across pools",
      `Quick,
      test_certify_adaptive_bit_exact_across_pools );
    ( "anet/zonotope bit-exact across pools",
      `Quick,
      test_anet_and_zonotope_bit_exact_across_pools );
    ( "eval sweep bit-exact across pools",
      `Quick,
      test_eval_sweep_bit_exact_across_pools );
    ("trainer bit-exact across pools", `Slow, test_trainer_bit_exact_across_pools);
  ]
