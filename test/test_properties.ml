(* Cross-module property-based tests: randomized roundtrips and
   domain-relationship invariants that individual module suites only
   check on fixed instances. *)

open Canopy_nn
open Canopy_absint
module Prng = Canopy_util.Prng

let check_bool = Alcotest.(check bool)

(* Random small MLPs with all supported layer kinds. *)
let random_net rng =
  let hidden = 4 + Prng.int rng 8 in
  let in_dim = 2 + Prng.int rng 6 in
  let mid =
    match Prng.int rng 3 with
    | 0 -> Layer.relu
    | 1 -> Layer.leaky_relu ~slope:0.05 ()
    | _ -> Layer.tanh
  in
  Mlp.create ~in_dim
    [
      Layer.dense ~rng ~in_dim ~out_dim:hidden;
      Layer.batch_norm ~dim:hidden ();
      mid;
      Layer.dense ~rng ~in_dim:hidden ~out_dim:1;
      Layer.tanh;
    ]

let test_checkpoint_roundtrip_random_nets () =
  let rng = Prng.create 2026 in
  for trial = 1 to 25 do
    let net = random_net rng in
    (* move BN stats off their defaults *)
    let batch =
      Array.init 8 (fun _ ->
          Array.init (Mlp.in_dim net) (fun _ -> Prng.uniform rng (-2.) 2.))
    in
    ignore (Mlp.forward_train net (Canopy_tensor.Mat.of_arrays batch));
    let restored = Checkpoint.of_string (Checkpoint.to_string net) in
    for _ = 1 to 10 do
      let x =
        Array.init (Mlp.in_dim net) (fun _ -> Prng.uniform rng (-3.) 3.)
      in
      let a = (Mlp.forward net x).(0) and b = (Mlp.forward restored x).(0) in
      if not (Canopy_util.Mathx.approx_equal ~eps:1e-12 a b) then
        Alcotest.failf "trial %d: %.17g <> %.17g" trial a b
    done
  done

let test_mahimahi_roundtrip_random_rates () =
  let rng = Prng.create 7 in
  for _ = 1 to 25 do
    let mbps = Prng.uniform rng 2. 150. in
    let t =
      Canopy_trace.Trace.constant ~name:"r" ~duration_ms:3000 ~mbps
    in
    let back =
      Canopy_trace.Trace.of_mahimahi ~name:"b" ~mtu_bytes:1500
        (Canopy_trace.Trace.to_mahimahi ~mtu_bytes:1500 t)
    in
    let err =
      Float.abs (Canopy_trace.Trace.avg_mbps back -. mbps) /. mbps
    in
    check_bool
      (Printf.sprintf "rate %.1f preserved (err %.3f)" mbps err)
      true (err < 0.05)
  done

let test_zonotope_product_always_subset_of_ibp () =
  (* The reduced product is, by construction, never looser than IBP —
     across random nets with every activation kind. *)
  let rng = Prng.create 11 in
  for _ = 1 to 25 do
    let net = random_net rng in
    let box =
      Box.of_intervals
        (Array.init (Mlp.in_dim net) (fun _ ->
             let c = Prng.uniform rng (-1.) 1. in
             let r = Prng.float rng 0.6 in
             Interval.make (c -. r) (c +. r)))
    in
    let z = Zonotope.output_interval net box in
    let b = Ibp.output_interval net box in
    check_bool "zonotope ⊆ ibp" true (Interval.subset z b)
  done

let test_temporal_prefix_stability () =
  (* The unrolling is deterministic and forward-only: the bounds at the
     first h steps are independent of the horizon. *)
  let rng = Prng.create 13 in
  let history = 5 in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  for _ = 1 to 10 do
    let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
    let state = Array.init state_dim (fun _ -> Prng.uniform rng 0. 1.) in
    let verify horizon =
      Canopy.Temporal.verify ~actor
        ~property:(Canopy.Property.performance ())
        ~case:Canopy.Property.Large_delay ~horizon ~history ~state
        ~cwnd_tcp:100. ()
    in
    let short = verify 2 and long = verify 5 in
    List.iteri
      (fun i (s : Canopy.Temporal.step_bound) ->
        let l = List.nth long.Canopy.Temporal.steps i in
        check_bool "prefix bounds identical" true
          (Interval.equal ~eps:1e-12 s.Canopy.Temporal.cwnd
             l.Canopy.Temporal.cwnd))
      short.Canopy.Temporal.steps
  done

let test_certify_deterministic () =
  let rng = Prng.create 17 in
  let history = 5 in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  for _ = 1 to 10 do
    let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
    let state = Array.init state_dim (fun _ -> Prng.uniform rng 0. 1.) in
    let run () =
      (Canopy.Certify.certify ~actor
         ~property:(Canopy.Property.performance ()) ~n_components:5 ~history
         ~state ~cwnd_tcp:80. ~prev_cwnd:75. ())
        .Canopy.Certify.r_verifier
    in
    check_bool "same inputs, same certificate" true (run () = run ())
  done

let test_refute_never_contradicts_soundness () =
  (* Any witness returned by refute must itself be inside the abstract
     output bound of its component (the bound is sound). *)
  let rng = Prng.create 23 in
  let history = 5 in
  let state_dim = history * Canopy_orca.Observation.feature_count in
  for _ = 1 to 10 do
    let actor = Mlp.actor ~rng ~in_dim:state_dim ~hidden:8 ~out_dim:1 in
    let state = Array.init state_dim (fun _ -> Prng.uniform rng 0. 1.) in
    let property = Canopy.Property.performance () in
    let cert =
      Canopy.Certify.certify ~actor ~property ~n_components:4 ~history ~state
        ~cwnd_tcp:100. ~prev_cwnd:90. ()
    in
    Array.iter
      (fun comp ->
        match
          Canopy.Certify.refute ~rng:(Prng.create 7) ~actor ~property ~history
            ~state ~cwnd_tcp:100. ~prev_cwnd:90. comp
        with
        | Canopy.Certify.Unknown -> ()
        | Canopy.Certify.Violation { output; _ } ->
            check_bool "witness inside the abstract bound" true
              (Interval.contains comp.Canopy.Certify.output output))
      cert.Canopy.Certify.components
  done

let suite =
  [
    ("checkpoint roundtrip (random nets)", `Quick,
      test_checkpoint_roundtrip_random_nets);
    ("mahimahi roundtrip (random rates)", `Quick,
      test_mahimahi_roundtrip_random_rates);
    ("zonotope product ⊆ IBP (random nets)", `Quick,
      test_zonotope_product_always_subset_of_ibp);
    ("temporal prefix stability", `Quick, test_temporal_prefix_stability);
    ("certify deterministic", `Quick, test_certify_deterministic);
    ("refute witness inside abstract bound", `Quick,
      test_refute_never_contradicts_soundness);
  ]
