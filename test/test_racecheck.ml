(* Tests for the token lexer, the mutable-state inventory, the
   approximate call graph, and the racecheck pass built on top of them.
   Fixture snippets live in string literals (invisible to the repo-wide
   passes, which analyze token streams) or under test/fixtures/ (a
   directory Sources skips). The e2e test at the bottom runs both
   baseline-gated passes over the real tree and asserts the committed
   baseline is exact: no fresh findings, no stale entries. *)

open Canopy_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let lex s = (Lexer.lex s).Lexer.tokens

let idents s =
  Array.to_list (lex s)
  |> List.filter_map (fun (t : Lexer.token) ->
         match t.Lexer.kind with
         | Lexer.Lident n | Lexer.Uident n -> Some n
         | _ -> None)

let strings s =
  Array.to_list (lex s)
  |> List.filter_map (fun (t : Lexer.token) ->
         match t.Lexer.kind with Lexer.String b -> Some b | _ -> None)

let test_lexer_strings_and_comments () =
  let src = "let x = \"a (* not a comment *) b\" (* c \"not code\" *)\n" in
  let lexed = Lexer.lex src in
  Alcotest.(check (list string))
    "string body kept whole"
    [ "a (* not a comment *) b" ]
    (strings src);
  check_int "one comment" 1 (List.length lexed.Lexer.comments);
  check_string "comment body trimmed" "c \"not code\""
    (snd (List.hd lexed.Lexer.comments));
  check_bool "no ident leaked from text" false
    (List.mem "comment" (idents src))

let test_lexer_nested_comments () =
  let src = "(* outer (* inner *) tail *) let y = compare\n" in
  check_bool "nested comment closed at outer level" true
    (idents src = [ "let"; "y"; "compare" ])

let test_lexer_char_vs_type_variable () =
  let src = "let f (x : 'a) = if x = 'a' then 'b' else x\n" in
  let chars =
    Array.to_list (lex src)
    |> List.filter_map (fun (t : Lexer.token) ->
           match t.Lexer.kind with Lexer.Char b -> Some b | _ -> None)
  in
  Alcotest.(check (list string)) "char literals only" [ "a"; "b" ] chars

let test_lexer_quoted_strings () =
  Alcotest.(check (list string))
    "basic quoted string"
    [ {|raw "body" \ unescaped|} ]
    (strings "let s = {|raw \"body\" \\ unescaped|}\n");
  Alcotest.(check (list string))
    "tagged quoted string"
    [ "can contain |} inside" ]
    (strings "let s = {x|can contain |} inside|x}\n")

let test_lexer_positions () =
  let src = "let a = 1\nlet bb = \"s\"\n" in
  let second_let =
    Array.to_list (lex src)
    |> List.find (fun (t : Lexer.token) ->
           t.Lexer.kind = Lexer.Lident "let" && t.Lexer.line = 2)
  in
  check_int "col of line-2 let" 0 second_let.Lexer.col;
  let s =
    Array.to_list (lex src)
    |> List.find (fun (t : Lexer.token) ->
           match t.Lexer.kind with Lexer.String _ -> true | _ -> false)
  in
  check_int "string literal line" 2 s.Lexer.line

(* ------------------------------------------------------------------ *)
(* Inventory *)

let inventory src = Inventory.scan ~path:"lib/demo/demo.ml" (Lexer.lex src)

let test_inventory_classification () =
  let inv =
    inventory
      "let total = ref 0\n\
       let tbl = Hashtbl.create 16\n\
       let hits = Atomic.make 0\n\
       let key = Domain.DLS.new_key (fun () -> ref 0)\n\
       let lock = Mutex.create ()\n\
       let f x = ref x\n\
       let g = fun x -> ref x\n"
  in
  let kind name =
    (List.find (fun (e : Inventory.entry) -> e.Inventory.name = name)
       inv.Inventory.globals)
      .Inventory.kind
  in
  check_int "five globals (parameterized lets excluded)" 5
    (List.length inv.Inventory.globals);
  check_bool "ref classified" true (kind "total" = Inventory.Ref);
  check_bool "hashtbl classified" true (kind "tbl" = Inventory.Hashtbl);
  check_bool "atomic blessed" true (Inventory.blessed (kind "hits"));
  check_bool "dls blessed" true (Inventory.blessed (kind "key"));
  check_bool "mutex blessed" true (Inventory.blessed (kind "lock"));
  check_bool "plain ref not blessed" false (Inventory.blessed (kind "total"))

let test_inventory_mutable_fields () =
  let inv =
    inventory "type t = { mutable count : int; name : string }\nlet z = 1\n"
  in
  check_int "one mutable field" 1 (List.length inv.Inventory.mutable_fields);
  let _, field, _ = List.hd inv.Inventory.mutable_fields in
  check_string "field name" "count" field

let test_inventory_module_of_path () =
  check_string "capitalized basename" "Pool"
    (Inventory.module_of_path "lib/util/pool.ml")

(* ------------------------------------------------------------------ *)
(* Callgraph *)

let build_graph files =
  Callgraph.build (List.map (fun (p, s) -> (p, Lexer.lex s)) files)

let test_callgraph_refs () =
  let cg =
    build_graph
      [
        ("lib/a/alpha.ml", "let helper x = x + 1\nlet unused y = y\n");
        ( "lib/b/beta.ml",
          "module Al = Canopy_a.Alpha\n\
           let local z = z * 2\n\
           let entry v = local (Al.helper (Alpha.helper v))\n" );
      ]
  in
  let beta =
    match Callgraph.find_module cg "Beta" with
    | Some m -> m
    | None -> Alcotest.fail "Beta module missing"
  in
  let entry =
    match Callgraph.find_def cg ~module_:"Beta" ~name:"entry" with
    | Some d -> d
    | None -> Alcotest.fail "entry def missing"
  in
  let refs =
    Callgraph.refs_in_span cg beta ~start:entry.Callgraph.start
      ~stop:entry.Callgraph.stop
    |> List.map (fun (d : Callgraph.def) ->
           d.Callgraph.module_ ^ "." ^ d.Callgraph.name)
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "bare, aliased and qualified refs resolve"
    [ "Alpha.helper"; "Beta.local" ]
    refs;
  check_bool "unused def not referenced" false
    (List.mem "Alpha.unused" refs)

(* ------------------------------------------------------------------ *)
(* Racecheck on inline fixtures *)

let race files = (Racecheck.check_files files).Racecheck.diags

let one_file src = race [ ("lib/demo/demo.ml", src) ]

let test_race_reachable_global_write () =
  let diags =
    one_file
      "let total = ref 0\n\
       let bump n = total := !total + n\n\
       let run pool xs =\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 (Array.length xs)\n\
      \    (fun ~lo ~hi ->\n\
      \      for i = lo to hi - 1 do\n\
      \        bump xs.(i)\n\
      \      done)\n"
  in
  check_int "one finding" 1 (List.length diags);
  let d = List.hd diags in
  check_string "rule" Racecheck.rule_name d.Diagnostic.rule;
  check_int "write line" 2 d.Diagnostic.line;
  check_bool "message names the global" true
    (let rec contains i =
       i + 5 <= String.length d.Diagnostic.message
       && (String.sub d.Diagnostic.message i 5 = "total" || contains (i + 1))
     in
     contains 0)

let test_race_dls_and_atomic_blessed () =
  let diags =
    one_file
      "let key = Domain.DLS.new_key (fun () -> ref 0)\n\
       let hits = Atomic.make 0\n\
       let bump n =\n\
      \  let cell = Domain.DLS.get key in\n\
      \  cell := !cell + n;\n\
      \  Atomic.incr hits\n\
       let run pool n =\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->\n\
      \      bump (hi - lo))\n"
  in
  check_int "DLS and Atomic writes accepted" 0 (List.length diags)

let test_race_mutex_guard () =
  let diags =
    one_file
      "let lock = Mutex.create ()\n\
       let total = ref 0\n\
       let run pool n =\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->\n\
      \      Mutex.lock lock;\n\
      \      total := !total + (hi - lo);\n\
      \      Mutex.unlock lock)\n"
  in
  check_int "mutex-guarded region accepted" 0 (List.length diags)

let test_race_range_disjoint () =
  let diags =
    one_file
      "let out = Array.make 1024 0.\n\
       let run pool n =\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->\n\
      \      for i = lo to hi - 1 do\n\
      \        out.(i) <- float_of_int i\n\
      \      done)\n"
  in
  check_int "range-indexed write accepted" 0 (List.length diags)

let test_race_local_state_clean () =
  let diags =
    one_file
      "let run pool xs =\n\
      \  let acc = Array.make (Array.length xs) 0. in\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 (Array.length xs)\n\
      \    (fun ~lo ~hi ->\n\
      \      let scratch = ref 0. in\n\
      \      for i = lo to hi - 1 do\n\
      \        scratch := !scratch +. xs.(i);\n\
      \        acc.(i) <- !scratch\n\
      \      done)\n"
  in
  check_int "locals and parameters never flagged" 0 (List.length diags)

let test_race_waiver () =
  let diags =
    one_file
      "let total = ref 0\n\
       (* lint-ignore: shared-mutable-in-parallel *)\n\
       let bump n = total := !total + n \
       (* lint-ignore: shared-mutable-in-parallel *)\n\
       let run pool n =\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->\n\
      \      bump (hi - lo))\n"
  in
  check_int "inline waiver accepted" 0 (List.length diags)

let test_race_sequential_write_not_flagged () =
  let diags =
    one_file
      "let total = ref 0\n\
       let bump n = total := !total + n\n\
       let run pool n =\n\
      \  Pool.parallel_for_chunks pool ~chunk:64 n (fun ~lo ~hi ->\n\
      \      ignore (hi - lo));\n\
      \  bump n\n"
  in
  check_int "write after the parallel call is sequential" 0
    (List.length diags)

(* ------------------------------------------------------------------ *)
(* Racecheck on the committed fixture pair *)

let fixture_path name =
  let local = Filename.concat "fixtures" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "fixtures") name

let test_race_seeded_fixture_pair () =
  let load name =
    let p = fixture_path name in
    (p, Sources.read_file p)
  in
  let racy = race [ load "racy_stats.ml" ] in
  check_int "seeded bug flagged" 1 (List.length racy);
  check_string "rule" Racecheck.rule_name (List.hd racy).Diagnostic.rule;
  let fixed = race [ load "dls_stats.ml" ] in
  check_int "DLS twin accepted" 0 (List.length fixed)

(* ------------------------------------------------------------------ *)
(* End-to-end: the committed baseline is exact for both passes *)

let repo_root () =
  let rec up dir =
    if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lint.baseline")
    then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "repo root not found from cwd"
      else up parent
  in
  up (Sys.getcwd ())

let test_e2e_baseline_exact () =
  let root = repo_root () in
  let baseline_path = Filename.concat root "lint.baseline" in
  let diags =
    Lint.run ~root () @ (Racecheck.run ~root ()).Racecheck.diags
  in
  let fresh, _ = Suppress.filter (Suppress.load baseline_path) diags in
  List.iter
    (fun d -> Format.eprintf "fresh: %a@." Diagnostic.pp d)
    fresh;
  check_int "no findings outside the baseline" 0 (List.length fresh);
  let owned rule =
    List.mem_assoc rule Lint.rules || rule = Racecheck.rule_name
  in
  let stale =
    Suppress.stale (Suppress.load_entries baseline_path) ~rules:owned diags
  in
  List.iter
    (fun (e : Suppress.entry) ->
      Format.eprintf "stale: %s %s@." e.Suppress.e_rule e.Suppress.e_rest)
    stale;
  check_int "no stale baseline entries" 0 (List.length stale)

(* The per-domain scratch arenas of this PR must land in the inventory
   as [Domain.DLS] globals — blessed by construction, so they need no
   racecheck baseline waiver. Scanning the real files (not fixtures)
   pins both the classification and the "clean, not baselined" state:
   if a refactor demotes one to a plain ref, this fails before the
   e2e baseline test starts reporting fresh findings. *)
let test_scratch_arenas_blessed () =
  let root = repo_root () in
  let arenas =
    [
      ("lib/tensor/mat.ml", "scratch_key");
      ("lib/absint/anet.ml", "scratch_key");
      ("lib/nn/mlp.ml", "eval_scratch_key");
      ("lib/nn/mlp.ml", "batch_scratch_key");
    ]
  in
  List.iter
    (fun (rel, name) ->
      let path = Filename.concat root rel in
      let inv = Inventory.scan ~path (Lexer.lex (Sources.read_file path)) in
      match
        List.find_opt
          (fun (e : Inventory.entry) -> e.Inventory.name = name)
          inv.Inventory.globals
      with
      | None -> Alcotest.fail (rel ^ ": " ^ name ^ " missing from inventory")
      | Some e ->
          check_bool
            (rel ^ ": " ^ name ^ " classified Domain.DLS")
            true
            (e.Inventory.kind = Inventory.Dls);
          check_bool
            (rel ^ ": " ^ name ^ " blessed")
            true
            (Inventory.blessed e.Inventory.kind))
    arenas;
  let baseline = Sources.read_file (Filename.concat root "lint.baseline") in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (_, name) ->
      check_bool ("no baseline waiver mentions " ^ name) false
        (contains baseline name))
    arenas

(* The fleet's pool-parallel advancement must stay clean by
   construction: every mutable cell it touches is flow-indexed state
   reached through the chunked [lo, hi) range, so the racecheck pass
   should find nothing to baseline. An entry naming fleet.ml under the
   race rule would mean someone waived a real shared-mutable finding
   instead of fixing the layout. *)
let test_fleet_parallel_unbaselined () =
  let root = repo_root () in
  let entries =
    Suppress.load_entries (Filename.concat root "lint.baseline")
  in
  let offending =
    List.filter
      (fun (e : Suppress.entry) ->
        e.Suppress.e_rule = Racecheck.rule_name
        &&
        let hay = e.Suppress.e_rest in
        let needle = "lib/netsim/fleet.ml" in
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0)
      entries
  in
  check_int "no racecheck baseline entry for fleet.ml" 0
    (List.length offending)

let suite =
  [
    Alcotest.test_case "lexer: strings and comments" `Quick
      test_lexer_strings_and_comments;
    Alcotest.test_case "lexer: nested comments" `Quick
      test_lexer_nested_comments;
    Alcotest.test_case "lexer: char vs type variable" `Quick
      test_lexer_char_vs_type_variable;
    Alcotest.test_case "lexer: quoted strings" `Quick
      test_lexer_quoted_strings;
    Alcotest.test_case "lexer: line/col positions" `Quick
      test_lexer_positions;
    Alcotest.test_case "inventory: classification" `Quick
      test_inventory_classification;
    Alcotest.test_case "inventory: mutable fields" `Quick
      test_inventory_mutable_fields;
    Alcotest.test_case "inventory: module_of_path" `Quick
      test_inventory_module_of_path;
    Alcotest.test_case "callgraph: reference resolution" `Quick
      test_callgraph_refs;
    Alcotest.test_case "racecheck: reachable global write" `Quick
      test_race_reachable_global_write;
    Alcotest.test_case "racecheck: DLS/Atomic blessed" `Quick
      test_race_dls_and_atomic_blessed;
    Alcotest.test_case "racecheck: mutex guard" `Quick test_race_mutex_guard;
    Alcotest.test_case "racecheck: range-disjoint writes" `Quick
      test_race_range_disjoint;
    Alcotest.test_case "racecheck: local state clean" `Quick
      test_race_local_state_clean;
    Alcotest.test_case "racecheck: inline waiver" `Quick test_race_waiver;
    Alcotest.test_case "racecheck: sequential write unflagged" `Quick
      test_race_sequential_write_not_flagged;
    Alcotest.test_case "racecheck: seeded fixture pair" `Quick
      test_race_seeded_fixture_pair;
    Alcotest.test_case "racecheck: scratch arenas blessed as DLS" `Quick
      test_scratch_arenas_blessed;
    Alcotest.test_case "racecheck: fleet parallel region unbaselined" `Quick
      test_fleet_parallel_unbaselined;
    Alcotest.test_case "e2e: committed baseline exact" `Quick
      test_e2e_baseline_exact;
  ]
