(* Tests for the runtime shield: action projection into the performance
   property's admissible set, and end-to-end enforcement on the
   simulator. *)

open Canopy
module Observation = Canopy_orca.Observation
module Agent_env = Canopy_orca.Agent_env

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let history = 5
let state_dim = history * Observation.feature_count

let state_with_delay d =
  let s = Array.make state_dim 0.4 in
  List.iter (fun i -> s.(i) <- d) (Certify.delay_indices ~history);
  s

let shield () = Shield.create ~property:(Property.performance ()) ~history

let test_rejects_robustness () =
  Alcotest.check_raises "robustness rejected"
    (Invalid_argument "Shield.create: robustness is not runtime-enforceable")
    (fun () ->
      ignore (Shield.create ~property:(Property.robustness ()) ~history))

let test_rejects_bad_history () =
  Alcotest.check_raises "history" (Invalid_argument "Shield.create: history")
    (fun () ->
      ignore (Shield.create ~property:(Property.performance ()) ~history:0))

let test_unconstrained_between_thresholds () =
  let sh = shield () in
  let action, verdict =
    Shield.filter sh ~state:(state_with_delay 0.5) ~cwnd_tcp:100.
      ~prev_cwnd:100. ~action:0.9
  in
  check_float "passthrough" 0.9 action;
  check_bool "unconstrained" true (verdict = Shield.Unconstrained)

let test_clamps_growth_under_high_delay () =
  let sh = shield () in
  let action, verdict =
    Shield.filter sh ~state:(state_with_delay 0.9) ~cwnd_tcp:100.
      ~prev_cwnd:100. ~action:0.9
  in
  (* prev = cwnd_tcp: the boundary action is 0 (keep the window). *)
  check_float "clamped to boundary" 0. action;
  (match verdict with
  | Shield.Clamped { case; original; enforced } ->
      check_bool "large-delay case" true (case = Property.Large_delay);
      check_float "original preserved" 0.9 original;
      check_float "enforced" 0. enforced
  | Shield.Unconstrained -> Alcotest.fail "expected clamp");
  check_int "intervention counted" 1 (Shield.interventions sh)

let test_clamp_respects_eq1 () =
  (* After clamping, the Eq.-1 window must not exceed prev_cwnd. *)
  let sh = shield () in
  List.iter
    (fun (cwnd_tcp, prev_cwnd) ->
      let action, _ =
        Shield.filter sh ~state:(state_with_delay 0.8) ~cwnd_tcp ~prev_cwnd
          ~action:1.
      in
      let w = Agent_env.cwnd_of_action ~action ~cwnd_tcp in
      check_bool
        (Printf.sprintf "window bounded (tcp=%g prev=%g)" cwnd_tcp prev_cwnd)
        true
        (w <= prev_cwnd +. 1e-6 || action = -1.))
    [ (100., 100.); (100., 50.); (50., 120.); (10., 3.); (400., 200.) ]

let test_allows_shrink_under_high_delay () =
  let sh = shield () in
  let action, verdict =
    Shield.filter sh ~state:(state_with_delay 0.9) ~cwnd_tcp:100.
      ~prev_cwnd:100. ~action:(-0.7)
  in
  check_float "shrinking action untouched" (-0.7) action;
  check_bool "no intervention" true (verdict = Shield.Unconstrained)

let test_clamps_shrink_under_low_delay () =
  let sh = shield () in
  let action, verdict =
    Shield.filter sh ~state:(state_with_delay 0.1) ~cwnd_tcp:100.
      ~prev_cwnd:100. ~action:(-0.9)
  in
  check_float "clamped up to boundary" 0. action;
  (match verdict with
  | Shield.Clamped { case; _ } ->
      check_bool "small-delay case" true (case = Property.Small_delay)
  | Shield.Unconstrained -> Alcotest.fail "expected clamp");
  let w = Agent_env.cwnd_of_action ~action ~cwnd_tcp:100. in
  check_bool "window kept" true (w >= 100. -. 1e-6)

let test_allows_growth_under_low_delay () =
  let sh = shield () in
  let action, verdict =
    Shield.filter sh ~state:(state_with_delay 0.1) ~cwnd_tcp:100.
      ~prev_cwnd:100. ~action:0.8
  in
  check_float "growing action untouched" 0.8 action;
  check_bool "no intervention" true (verdict = Shield.Unconstrained)

let test_mixed_history_not_applicable () =
  (* One low frame among high ones: neither precondition holds. *)
  let sh = shield () in
  let s = state_with_delay 0.9 in
  s.(Observation.delay_index) <- 0.1;
  let action, verdict =
    Shield.filter sh ~state:s ~cwnd_tcp:100. ~prev_cwnd:100. ~action:1.
  in
  check_float "untouched" 1. action;
  check_bool "unconstrained" true (verdict = Shield.Unconstrained)

let test_counters () =
  let sh = shield () in
  ignore
    (Shield.filter sh ~state:(state_with_delay 0.5) ~cwnd_tcp:100.
       ~prev_cwnd:100. ~action:0.);
  ignore
    (Shield.filter sh ~state:(state_with_delay 0.9) ~cwnd_tcp:100.
       ~prev_cwnd:100. ~action:1.);
  check_int "steps" 2 (Shield.steps sh);
  check_int "interventions" 1 (Shield.interventions sh)

let test_end_to_end_enforcement () =
  (* Deploy a window-greedy policy (a ≡ 1) behind a shield on a congested
     link and check the recorded trajectory never grows the window after
     five consecutive high-delay observations. *)
  let actor =
    (* dense 0 weights, bias atanh(0.99): action ~ 0.99 always *)
    let open Canopy_nn in
    let bias = 0.5 *. log ((1. +. 0.99) /. (1. -. 0.99)) in
    Mlp.create ~in_dim:state_dim
      [
        Layer.Dense
          {
            w = Canopy_tensor.Mat.create ~rows:1 ~cols:state_dim;
            b = [| bias |];
            dw = Canopy_tensor.Mat.create ~rows:1 ~cols:state_dim;
            db = [| 0. |];
          };
        Layer.Tanh;
      ]
  in
  let trace =
    Canopy_trace.Trace.constant ~name:"tight" ~duration_ms:8_000 ~mbps:12.
  in
  (* a deep buffer lets queueing delay exceed 3x the propagation RTT, so
     the normalized delay can actually cross p = 0.75 *)
  let link = Eval.link ~min_rtt_ms:40 ~bdp:6. trace in
  let sh = shield () in
  let _, steps =
    Eval.eval_policy ~name:"greedy" ~shield:sh ~collect_steps:true
      ~policy:(`Mlp actor) ~history link
  in
  check_bool "shield intervened" true (Shield.interventions sh > 0);
  let recent = Canopy_util.Ring.create ~capacity:history in
  let prev = ref 10. in
  List.iter
    (fun (s : Eval.step_record) ->
      if
        Canopy_util.Ring.is_full recent
        && Canopy_util.Ring.fold (fun acc d -> acc && d >= 0.75) true recent
      then
        check_bool "no growth under sustained high delay" true
          (s.cwnd_enforced <= !prev +. 1e-6);
      Canopy_util.Ring.push recent s.delay_norm;
      prev := s.cwnd_enforced)
    steps

let test_shield_keeps_policy_when_compliant () =
  (* A policy that already satisfies the property sees zero
     interventions. *)
  let sh = shield () in
  for _ = 1 to 20 do
    let a, _ =
      Shield.filter sh ~state:(state_with_delay 0.9) ~cwnd_tcp:100.
        ~prev_cwnd:120. ~action:(-0.2)
    in
    check_float "kept" (-0.2) a
  done;
  check_int "no interventions" 0 (Shield.interventions sh)

let suite =
  [
    ("rejects robustness", `Quick, test_rejects_robustness);
    ("rejects bad history", `Quick, test_rejects_bad_history);
    ("unconstrained mid-range", `Quick, test_unconstrained_between_thresholds);
    ("clamps growth at high delay", `Quick, test_clamps_growth_under_high_delay);
    ("clamp respects Eq. 1", `Quick, test_clamp_respects_eq1);
    ("allows shrink at high delay", `Quick, test_allows_shrink_under_high_delay);
    ("clamps shrink at low delay", `Quick, test_clamps_shrink_under_low_delay);
    ("allows growth at low delay", `Quick, test_allows_growth_under_low_delay);
    ("mixed history not applicable", `Quick, test_mixed_history_not_applicable);
    ("intervention counters", `Quick, test_counters);
    ("end-to-end enforcement", `Quick, test_end_to_end_enforcement);
    ("no intervention when compliant", `Quick,
      test_shield_keeps_policy_when_compliant);
  ]
