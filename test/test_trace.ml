(* Tests for canopy_trace: trace construction, replay semantics,
   Mahimahi-format io, and the synthetic/LTE trace generators. *)

open Canopy_trace

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Trace core *)

let two_step = Trace.of_segments ~name:"two" [ (100, 10.); (200, 40.) ]

let test_segments_lookup () =
  check_float "first segment" 10. (Trace.mbps_at two_step 0);
  check_float "still first" 10. (Trace.mbps_at two_step 99);
  check_float "second" 40. (Trace.mbps_at two_step 100);
  check_float "late second" 40. (Trace.mbps_at two_step 299)

let test_wraparound () =
  check_float "wraps" 10. (Trace.mbps_at two_step 300);
  check_float "wraps into second" 40. (Trace.mbps_at two_step 450)

let test_duration_name () =
  check_int "duration" 300 (Trace.duration_ms two_step);
  Alcotest.(check string) "name" "two" (Trace.name two_step);
  Alcotest.(check string) "rename" "other"
    (Trace.name (Trace.rename "other" two_step))

let test_aggregates () =
  check_float "avg" 30. (Trace.avg_mbps two_step);
  check_float "min" 10. (Trace.min_mbps two_step);
  check_float "max" 40. (Trace.max_mbps two_step)

let test_scale () =
  let s = Trace.scale 0.5 two_step in
  check_float "scaled avg" 15. (Trace.avg_mbps s);
  check_float "scaled at" 5. (Trace.mbps_at s 0)

let test_constant () =
  let c = Trace.constant ~name:"c" ~duration_ms:1000 ~mbps:24. in
  check_float "everywhere" 24. (Trace.mbps_at c 999);
  check_float "avg" 24. (Trace.avg_mbps c)

let test_packets_per_ms () =
  (* 12 Mbps = 1500 B/ms = exactly one MTU packet per ms. *)
  let c = Trace.constant ~name:"c" ~duration_ms:10 ~mbps:12. in
  check_float "1 pkt/ms" 1. (Trace.packets_per_ms ~mtu_bytes:1500 c 0)

let test_invalid_segments () =
  Alcotest.check_raises "empty" (Invalid_argument "Trace.of_segments: empty")
    (fun () -> ignore (Trace.of_segments ~name:"x" []));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Trace.of_segments: duration") (fun () ->
      ignore (Trace.of_segments ~name:"x" [ (0, 1.) ]));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Trace.of_segments: rate") (fun () ->
      ignore (Trace.of_segments ~name:"x" [ (10, -1.) ]))

let test_of_mbps_array () =
  let t = Trace.of_mbps_array ~name:"arr" ~ms_per_sample:50 [| 10.; 20. |] in
  check_int "duration" 100 (Trace.duration_ms t);
  check_float "sample 0" 10. (Trace.mbps_at t 49);
  check_float "sample 1" 20. (Trace.mbps_at t 50)

(* ------------------------------------------------------------------ *)
(* Mahimahi io *)

let test_mahimahi_render () =
  let c = Trace.constant ~name:"c" ~duration_ms:5 ~mbps:24. in
  (* 24 Mbps = 2 packets per ms -> two lines per timestamp *)
  let lines =
    String.split_on_char '\n' (Trace.to_mahimahi ~mtu_bytes:1500 c)
    |> List.filter (fun l -> l <> "")
  in
  check_int "line count" 10 (List.length lines);
  Alcotest.(check string) "first ts" "1" (List.hd lines)

let test_mahimahi_roundtrip_rate () =
  let c = Trace.constant ~name:"c" ~duration_ms:2000 ~mbps:36. in
  let parsed =
    Trace.of_mahimahi ~name:"back" ~mtu_bytes:1500
      (Trace.to_mahimahi ~mtu_bytes:1500 c)
  in
  check_bool "avg rate preserved" true
    (Float.abs (Trace.avg_mbps parsed -. 36.) < 1.)

let test_mahimahi_file_roundtrip () =
  let c = Trace.constant ~name:"c" ~duration_ms:1000 ~mbps:12. in
  let path = Filename.temp_file "canopy" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save ~mtu_bytes:1500 c path;
      let back = Trace.load ~name:"loaded" ~mtu_bytes:1500 path in
      check_bool "rate" true (Float.abs (Trace.avg_mbps back -. 12.) < 1.))

let test_mahimahi_rejects_garbage () =
  Alcotest.check_raises "garbage"
    (Failure "Trace.of_mahimahi: bad timestamp") (fun () ->
      ignore (Trace.of_mahimahi ~name:"x" ~mtu_bytes:1500 "1\nfoo\n"));
  Alcotest.check_raises "empty" (Failure "Trace.of_mahimahi: empty trace")
    (fun () -> ignore (Trace.of_mahimahi ~name:"x" ~mtu_bytes:1500 "\n"))

(* ------------------------------------------------------------------ *)
(* Synthetic generators (Figs. 15-17) *)

let test_step_fluctuation_alternates () =
  let t =
    Synthetic.step_fluctuation ~duration_ms:4000 ~period_ms:1000 ~low_mbps:10.
      ~high_mbps:50. ()
  in
  check_float "starts high" 50. (Trace.mbps_at t 0);
  check_float "then low" 10. (Trace.mbps_at t 1000);
  check_float "high again" 50. (Trace.mbps_at t 2000);
  check_int "duration" 4000 (Trace.duration_ms t)

let test_step_bounds () =
  let t =
    Synthetic.step_fluctuation ~duration_ms:10_000 ~period_ms:700 ~low_mbps:6.
      ~high_mbps:96. ()
  in
  check_float "min" 6. (Trace.min_mbps t);
  check_float "max" 96. (Trace.max_mbps t)

let test_ramp_drop_shape () =
  let t =
    Synthetic.ramp_drop ~duration_ms:8000 ~cycle_ms:4000 ~floor_mbps:10.
      ~peak_mbps:50. ()
  in
  check_float "starts at floor" 10. (Trace.mbps_at t 0);
  check_bool "grows" true (Trace.mbps_at t 3900 > Trace.mbps_at t 200);
  (* after the cycle boundary, back to floor *)
  check_float "drops back" 10. (Trace.mbps_at t 4000);
  check_bool "peak reached" true (Trace.max_mbps t >= 49.)

let test_triangle_shape () =
  let t =
    Synthetic.triangle ~duration_ms:4000 ~cycle_ms:4000 ~floor_mbps:10.
      ~peak_mbps:50. ()
  in
  let mid = Trace.mbps_at t 2000 in
  check_bool "mid near peak" true (mid > 40.);
  check_bool "symmetric-ish" true
    (Float.abs (Trace.mbps_at t 1000 -. Trace.mbps_at t 3000) < 10.)

let test_standard_suite_size () =
  let suite = Synthetic.standard_suite () in
  check_int "18 synthetic traces" 18 (List.length suite);
  List.iter
    (fun t ->
      check_bool "within Table-2 range" true
        (Trace.min_mbps t >= 6. && Trace.max_mbps t <= 192.))
    suite

let test_standard_suite_distinct_names () =
  let names = List.map Trace.name (Synthetic.standard_suite ()) in
  check_int "names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* ------------------------------------------------------------------ *)
(* LTE generator (Figs. 18-19) *)

let test_lte_deterministic () =
  let a = Lte.generate ~name:"a" ~seed:5 ~duration_ms:5000 () in
  let b = Lte.generate ~name:"b" ~seed:5 ~duration_ms:5000 () in
  for ms = 0 to 4999 do
    if Trace.mbps_at a ms <> Trace.mbps_at b ms then
      Alcotest.failf "diverges at %d" ms
  done

let test_lte_seed_changes_trace () =
  let a = Lte.generate ~name:"a" ~seed:1 ~duration_ms:5000 () in
  let b = Lte.generate ~name:"b" ~seed:2 ~duration_ms:5000 () in
  let differs = ref false in
  for ms = 0 to 4999 do
    if Trace.mbps_at a ms <> Trace.mbps_at b ms then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_lte_is_variable () =
  let t = Lte.generate ~name:"t" ~seed:3 ~duration_ms:30_000 () in
  check_bool "has fades" true (Trace.min_mbps t < 10.);
  check_bool "has peaks" true (Trace.max_mbps t > 30.);
  check_bool "positive" true (Trace.min_mbps t > 0.)

let test_lte_suite () =
  let suite = Lte.standard_suite () in
  check_int "4 real-world-like traces" 4 (List.length suite);
  List.iter
    (fun t -> check_bool "nonempty" true (Trace.duration_ms t > 0))
    suite

(* ------------------------------------------------------------------ *)
(* Suite *)

let test_full_suite_22 () =
  check_int "22 traces" 22 (List.length (Suite.all ()))

let test_suite_categories () =
  let all = Suite.all () in
  let synth, real =
    List.partition (fun t -> Suite.category_of t = Suite.Synthetic) all
  in
  check_int "18 synthetic" 18 (List.length synth);
  check_int "4 real" 4 (List.length real)

let suite =
  [
    ("segment lookup", `Quick, test_segments_lookup);
    ("wraparound replay", `Quick, test_wraparound);
    ("duration/name", `Quick, test_duration_name);
    ("aggregates", `Quick, test_aggregates);
    ("scale", `Quick, test_scale);
    ("constant trace", `Quick, test_constant);
    ("packets per ms", `Quick, test_packets_per_ms);
    ("invalid segments", `Quick, test_invalid_segments);
    ("of_mbps_array", `Quick, test_of_mbps_array);
    ("mahimahi render", `Quick, test_mahimahi_render);
    ("mahimahi rate roundtrip", `Quick, test_mahimahi_roundtrip_rate);
    ("mahimahi file roundtrip", `Quick, test_mahimahi_file_roundtrip);
    ("mahimahi rejects garbage", `Quick, test_mahimahi_rejects_garbage);
    ("step fluctuation alternates", `Quick, test_step_fluctuation_alternates);
    ("step bounds", `Quick, test_step_bounds);
    ("ramp-drop shape", `Quick, test_ramp_drop_shape);
    ("triangle shape", `Quick, test_triangle_shape);
    ("synthetic suite size/ranges", `Quick, test_standard_suite_size);
    ("synthetic names unique", `Quick, test_standard_suite_distinct_names);
    ("lte deterministic", `Quick, test_lte_deterministic);
    ("lte seed sensitivity", `Quick, test_lte_seed_changes_trace);
    ("lte variability", `Quick, test_lte_is_variable);
    ("lte suite of 4", `Quick, test_lte_suite);
    ("full suite of 22", `Quick, test_full_suite_22);
    ("suite categories", `Quick, test_suite_categories);
  ]
