(* Tests for the symbolic distillation stack: checkpoint round-trips,
   exactness/soundness of the per-leaf interval bounds (grid-sampling
   audit over random boxes), fidelity against the committed fixture
   actor, bit-equality of batched tree serving across domain counts, and
   scalar-vs-fleet serving agreement for both policy kinds. *)

module Tree = Canopy_distill.Tree
module Fit = Canopy_distill.Fit
module Harvest = Canopy_distill.Harvest
module Interval = Canopy_absint.Interval
module Mat = Canopy_tensor.Mat
module Prng = Canopy_util.Prng
module Pool = Canopy_util.Pool
module Agent_env = Canopy_orca.Agent_env
module Fleet_env = Canopy_orca.Fleet_env
module Trace = Canopy_trace.Trace
module Policy = Canopy.Policy
module Eval = Canopy.Eval
module Fleet_eval = Canopy.Fleet_eval
module Certify = Canopy.Certify
module Property = Canopy.Property

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bits a = Array.map Int64.bits_of_float a
let clamp = Canopy_util.Mathx.clamp ~lo:(-1.) ~hi:1.

let fixture name =
  let local = Filename.concat "fixtures" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "fixtures") name

(* Same helper as test_pool: a fresh default pool of [d] domains for the
   duration of [f], previous default restored afterwards. *)
let with_default_pool d f =
  let saved = Pool.default () in
  let pool = Pool.create ~domains:d () in
  Pool.set_default pool;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default saved;
      Pool.shutdown pool)
    (fun () -> f ())

let with_tiny_grain f =
  let min_flops, saved_chunk = Mat.parallel_grain () in
  Mat.set_parallel_grain ~min_flops:1 ~chunk_flops:1;
  Fun.protect
    ~finally:(fun () ->
      Mat.set_parallel_grain ~min_flops ~chunk_flops:saved_chunk)
    f

(* Synthetic regression data with genuine piecewise-affine structure so
   the fitter has real splits to discover. *)
let synthetic_data ~rng ~n ~d =
  let xs = Mat.init ~rows:n ~cols:d (fun _ _ -> Prng.float rng 1.) in
  let raw = Mat.raw xs in
  let ys =
    Array.init n (fun i ->
        let x0 = raw.(i * d) and x1 = raw.((i * d) + 1) in
        if x0 < 0.4 then (0.8 *. x0) -. (0.3 *. x1) +. 0.1
        else (-0.5 *. x0) +. (0.6 *. x1) -. 0.2)
  in
  (xs, ys)

let fitted_tree ?(n = 2_000) ?(d = 7) ?(max_leaves = 16) ~seed () =
  let rng = Prng.create seed in
  let xs, ys = synthetic_data ~rng ~n ~d in
  let config = { Fit.default_config with max_leaves; min_samples_leaf = 16 } in
  (Fit.fit ~config ~xs ~ys (), xs, ys)

(* ------------------------------------------------------------------ *)
(* Fitting basics *)

let test_fit_improves_on_constant () =
  let tree, xs, ys = fitted_tree ~seed:3 () in
  let n = float_of_int (Array.length ys) in
  let mean = Canopy_util.Mathx.sum ys /. n in
  let var =
    Canopy_util.Mathx.sum (Array.map (fun y -> (y -. mean) ** 2.) ys) /. n
  in
  let m = Fit.mse tree ~xs ~ys in
  check_bool "multi-leaf" true (Tree.n_leaves tree > 1);
  check_bool
    (Printf.sprintf "mse %.2e well below variance %.2e" m var)
    true
    (m < 0.05 *. var)

let test_fit_deterministic () =
  let t1, _, _ = fitted_tree ~seed:5 () in
  let t2, _, _ = fitted_tree ~seed:5 () in
  check_bool "same structure and models" true
    (Tree.to_string t1 = Tree.to_string t2)

(* ------------------------------------------------------------------ *)
(* Checkpoint round-trip *)

let test_checkpoint_roundtrip_bit_exact () =
  let tree, xs, _ = fitted_tree ~seed:7 () in
  let path = Filename.temp_file "canopy_tree" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tree.save path tree;
      let back = Tree.load path in
      check_bool "serialization identical" true
        (Tree.to_string tree = Tree.to_string back);
      let raw = Mat.raw xs in
      let d = Tree.in_dim tree in
      for i = 0 to 99 do
        let x = Array.sub raw (i * d) d in
        check_bool "prediction bits identical" true
          (Int64.bits_of_float (Tree.predict tree x)
          = Int64.bits_of_float (Tree.predict back x))
      done)

(* naive substring search so the corruption test needs no regex library *)
let find_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then invalid_arg "find_sub"
    else if String.sub haystack i nn = needle then i
    else go (i + 1)
  in
  go 0

(* One valid tiny checkpoint, then targeted corruptions of every layer of
   the format: magic, counts, node structure, leaf-model arity, float
   syntax, NaN, truncation, trailing garbage. *)
let test_checkpoint_rejects_corruption () =
  let good =
    "canopy-tree v1\n\
     in_dim 2\n\
     nodes 3\n\
     leaves 2\n\
     split 0 0x1p-1 1 2\n\
     leaf 0\n\
     leaf 1\n\
     0x1p-1 0x0p+0 0x1p-2\n\
     0x0p+0 0x1p-3 0x0p+0\n"
  in
  let t = Tree.of_string good in
  check_int "parses: leaves" 2 (Tree.n_leaves t);
  check_bool "predicts left model" true (Tree.predict t [| 0.; 0. |] = 0.25);
  let rejects label text =
    check_bool label true
      (match Tree.of_string text with
      | _ -> false
      | exception Failure _ -> true)
  in
  let replace ~bad ~by =
    let i = find_sub good bad in
    String.sub good 0 i ^ by
    ^ String.sub good
        (i + String.length bad)
        (String.length good - i - String.length bad)
  in
  rejects "bad magic" (replace ~bad:"canopy-tree v1" ~by:"canopy-mlp v1");
  rejects "truncated" (String.sub good 0 (String.length good / 2));
  rejects "trailing garbage" (good ^ "extra\n");
  rejects "malformed float" (replace ~bad:"0x1p-1 0x0p+0" ~by:"0xZp-1 0x0p+0");
  rejects "nan model" (replace ~bad:"0x1p-3" ~by:"nan");
  rejects "wrong leaf arity"
    (replace ~bad:"0x0p+0 0x1p-3 0x0p+0" ~by:"0x0p+0 0x1p-3");
  rejects "child before parent"
    (replace ~bad:"split 0 0x1p-1 1 2" ~by:"split 0 0x1p-1 0 2");
  rejects "bad count" (replace ~bad:"nodes 3" ~by:"nodes 4");
  rejects "malformed count" (replace ~bad:"in_dim 2" ~by:"in_dim two")

(* ------------------------------------------------------------------ *)
(* Leaf-bound exactness: sampling audit over random boxes *)

let test_output_interval_sound_and_exact () =
  let tree, _, _ = fitted_tree ~seed:11 () in
  let d = Tree.in_dim tree in
  let rng = Prng.create 13 in
  for _ = 1 to 10_000 do
    let center = Array.init d (fun _ -> Prng.float rng 1.) in
    let radius = 0.25 *. Prng.float rng 1. in
    let box =
      Array.init d (fun j ->
          Interval.make (center.(j) -. radius) (center.(j) +. radius))
    in
    let exact = Tree.output_interval ~exact:true tree box in
    let conservative = Tree.output_interval ~exact:false tree box in
    (* soundness: every sampled point's prediction lies in the bound *)
    for _ = 1 to 8 do
      let x = Array.init d (fun j -> Interval.sample rng box.(j)) in
      check_bool "sampled prediction inside exact bound" true
        (Interval.contains exact (Tree.predict tree x))
    done;
    (* the exact reading never widens past the conservative one *)
    check_bool "exact subset of conservative" true
      (Interval.subset exact conservative)
  done

(* A degenerate (point) box must produce a degenerate bound that equals
   the concrete prediction to the bit — the "exact" in exact
   certification — except on the measure-zero closed cell boundaries,
   where the hull must still contain the prediction. *)
let test_point_box_bit_exact () =
  let tree, _, _ = fitted_tree ~seed:15 () in
  let d = Tree.in_dim tree in
  let rng = Prng.create 17 in
  for _ = 1 to 1_000 do
    let x = Array.init d (fun _ -> Prng.float rng 1.) in
    let box = Array.map Interval.of_point x in
    let iv = Tree.output_interval ~exact:true tree box in
    let y = Tree.predict tree x in
    if Interval.is_point iv then begin
      check_bool "lo bit-equal" true
        (Int64.bits_of_float (Interval.lo iv) = Int64.bits_of_float y);
      check_bool "hi bit-equal" true
        (Int64.bits_of_float (Interval.hi iv) = Int64.bits_of_float y)
    end
    else check_bool "hull spans prediction" true (Interval.contains iv y)
  done

(* ------------------------------------------------------------------ *)
(* Distillation of the committed fixture actor *)

let agent_cfg ~duration_ms i =
  let mbps = 16. +. (8. *. float_of_int (i mod 3)) in
  let trace =
    Trace.constant ~name:(Printf.sprintf "a%d" (i mod 3)) ~duration_ms ~mbps
  in
  {
    (Agent_env.default_config ~trace ~min_rtt_ms:40 ~buffer_pkts:120
       ~duration_ms)
    with
    Agent_env.interval_ms = Some 40;
  }

let distilled_fixture =
  lazy
    (let actor = Canopy.Trainer.load_actor (fixture "actor_h8.ckpt") in
     let cfgs = Array.init 4 (fun i -> agent_cfg ~duration_ms:2_000 i) in
     let xs, ys = Harvest.collect ~actor cfgs in
     let config =
       { Fit.default_config with max_leaves = 32; min_samples_leaf = 8 }
     in
     (actor, Fit.fit ~config ~xs ~ys (), xs, ys))

let test_fidelity_fixture_actor () =
  let actor, tree, xs, ys = Lazy.force distilled_fixture in
  let m = Fit.mse tree ~xs ~ys in
  (* regression bound: the distilled tree reproduces the fixture actor's
     served actions to a small fraction of the [-1,1] action range *)
  check_bool (Printf.sprintf "fidelity MSE %.2e below 5e-3" m) true (m < 5e-3);
  (* and a constant predictor is measurably worse *)
  let n = float_of_int (Array.length ys) in
  let mean = Canopy_util.Mathx.sum ys /. n in
  let var =
    Canopy_util.Mathx.sum (Array.map (fun y -> (y -. mean) ** 2.) ys) /. n
  in
  check_bool "beats the constant predictor" true (m < var);
  (* utility stays close on a held-out link *)
  let link =
    Eval.link ~min_rtt_ms:40 ~bdp:2.
      (Trace.constant ~name:"held-out" ~duration_ms:4_000 ~mbps:24.)
  in
  let mlp_r, _ = Eval.eval_policy ~policy:(`Mlp actor) ~history:5 link in
  let tree_r, _ = Eval.eval_policy ~policy:(`Tree tree) ~history:5 link in
  let delta =
    Float.abs (tree_r.Eval.utilization -. mlp_r.Eval.utilization)
    /. Float.max 1e-9 mlp_r.Eval.utilization
  in
  check_bool
    (Printf.sprintf "utility delta %.1f%% within 5%%" (100. *. delta))
    true (delta < 0.05)

(* ------------------------------------------------------------------ *)
(* certify_tree: the exact reading dominates the conservative one *)

let test_certify_tree_exact_dominates () =
  let _, tree, xs, _ = Lazy.force distilled_fixture in
  let history = 5 in
  let raw = Mat.raw xs in
  let d = Tree.in_dim tree in
  let rows = Mat.rows xs in
  List.iter
    (fun property ->
      for k = 0 to 9 do
        let state = Array.sub raw (k * 17 mod rows * d) d in
        let run conservative =
          Certify.certify_tree ~conservative ~tree ~property ~n_components:10
            ~history ~state ~cwnd_tcp:80. ~prev_cwnd:80. ()
        in
        let exact = run false and conservative = run true in
        check_bool "fcc: exact >= conservative" true
          (exact.Certify.fcc >= conservative.Certify.fcc);
        check_bool "r_verifier: exact >= conservative" true
          (exact.Certify.r_verifier >= conservative.Certify.r_verifier);
        (* per component, the exact action interval is a subset *)
        Array.iteri
          (fun i (c : Certify.component) ->
            check_bool "action subset" true
              (Interval.subset c.action
                 conservative.Certify.components.(i).Certify.action))
          exact.Certify.components
      done)
    [ Property.performance (); Property.robustness () ]

(* Sampling audit of certify_tree itself: concrete states drawn from a
   component's precondition slice must act inside its abstract action
   interval. *)
let test_certify_tree_sound () =
  let _, tree, xs, _ = Lazy.force distilled_fixture in
  let history = 5 in
  let d = Tree.in_dim tree in
  let raw = Mat.raw xs in
  let rows = Mat.rows xs in
  let rng = Prng.create 29 in
  let property = Property.performance () in
  let delay_idx = Certify.delay_indices ~history in
  for k = 0 to 19 do
    let state = Array.sub raw (k * 9 mod rows * d) d in
    let c =
      Certify.certify_tree ~tree ~property ~n_components:5 ~history ~state
        ~cwnd_tcp:80. ~prev_cwnd:80. ()
    in
    Array.iter
      (fun (comp : Certify.component) ->
        for _ = 1 to 20 do
          let s = Array.copy state in
          List.iter
            (fun idx -> s.(idx) <- Interval.sample rng comp.slice)
            delay_idx;
          let a = clamp (Tree.predict tree s) in
          check_bool "concrete action within abstract bound" true
            (Interval.contains comp.action a)
        done)
      c.Certify.components
  done

(* ------------------------------------------------------------------ *)
(* Batched serving: domain-sweep bit-equality *)

let test_predict_rows_domains_bit_identical () =
  let tree, xs, _ = fitted_tree ~n:4_096 ~seed:21 () in
  let rows = Mat.rows xs in
  let run () =
    with_tiny_grain (fun () ->
        let dst = Mat.create ~rows ~cols:1 in
        Tree.predict_rows_into ~dst tree xs;
        bits (Array.copy (Mat.raw dst)))
  in
  let reference = with_default_pool 1 run in
  (* the batched path agrees with scalar predict row by row *)
  let raw = Mat.raw xs in
  let d = Tree.in_dim tree in
  Array.iteri
    (fun i b ->
      check_bool "row equals scalar predict" true
        (b = Int64.bits_of_float (Tree.predict tree (Array.sub raw (i * d) d))))
    reference;
  List.iter
    (fun dn ->
      let got = with_default_pool dn run in
      check_bool (Printf.sprintf "%d domains == sequential" dn) true
        (got = reference))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Policy variant: scalar and fleet serving cannot drift *)

(* One Agent_env episode served exactly like Eval.eval_policy does it:
   a 1-row matrix through Policy.predict_rows_into, clamped. *)
let scalar_trajectory policy cfg =
  let env = Agent_env.create cfg in
  let d = Policy.in_dim policy in
  let xrow = Mat.create ~rows:1 ~cols:d
  and yrow = Mat.create ~rows:1 ~cols:1 in
  let acc = ref [] in
  let fin = ref false in
  while not !fin do
    Array.blit (Agent_env.state env) 0 (Mat.raw xrow) 0 d;
    Policy.predict_rows_into ~dst:yrow policy xrow;
    let a = clamp (Mat.raw yrow).(0) in
    let r = Agent_env.step env ~action:a in
    acc := Int64.bits_of_float r.Agent_env.cwnd_enforced :: !acc;
    fin := r.Agent_env.finished
  done;
  List.rev !acc

let fleet_trajectory policy cfg =
  let acc = ref [] in
  let _ =
    Fleet_eval.run ~policy
      ~on_tick:(fun ~tick:_ ~actions:_ ~result ->
        acc := Int64.bits_of_float result.Fleet_env.cwnd_enforced.(0) :: !acc)
      [| cfg |]
  in
  List.rev !acc

(* Mixed decision intervals (the trainer's stratified pool derives them
   from min-RTT) must harvest as one fleet per interval, not trip
   Fleet_env's homogeneity check. *)
let test_harvest_mixed_intervals () =
  let actor, _, _, _ = Lazy.force distilled_fixture in
  let with_interval ms i =
    { (agent_cfg ~duration_ms:1_200 i) with Agent_env.interval_ms = Some ms }
  in
  let cfgs = [| with_interval 40 0; with_interval 60 1; with_interval 40 2 |] in
  let xs, ys = Harvest.collect ~actor cfgs in
  (* per interval group: flows * (duration / interval) rows *)
  let expected = (2 * (1_200 / 40)) + (1 * (1_200 / 60)) in
  check_int "rows across interval groups" expected (Mat.rows xs);
  check_int "one action per row" expected (Array.length ys);
  (* group harvests match what each homogeneous sub-pool produces *)
  let solo_xs, solo_ys = Harvest.collect ~actor [| with_interval 60 1 |] in
  let sd = Mat.cols xs in
  let raw = Mat.raw xs and solo_raw = Mat.raw solo_xs in
  let offset = 2 * (1_200 / 40) in
  let ok = ref true in
  for t = 0 to (1_200 / 60) - 1 do
    (* interval-60 rows sit after the interval-40 group; within the
       mixed fleet its single flow occupies one row per tick *)
    for j = 0 to sd - 1 do
      if
        Int64.bits_of_float raw.(((offset + t) * sd) + j)
        <> Int64.bits_of_float solo_raw.((t * sd) + j)
      then ok := false
    done;
    if Int64.bits_of_float ys.(offset + t) <> Int64.bits_of_float solo_ys.(t)
    then ok := false
  done;
  check_bool "mixed-pool group bit-identical to solo harvest" true !ok

let test_scalar_vs_fleet_both_kinds () =
  let actor, tree, _, _ = Lazy.force distilled_fixture in
  let cfg = agent_cfg ~duration_ms:1_200 0 in
  List.iter
    (fun (label, policy) ->
      let scalar = scalar_trajectory policy cfg in
      let fleet = fleet_trajectory policy cfg in
      check_int (label ^ ": same tick count") (List.length scalar)
        (List.length fleet);
      check_bool (label ^ ": cwnd trajectories bit-identical") true
        (scalar = fleet))
    [ ("mlp", `Mlp actor); ("tree", `Tree tree) ]

let suite =
  [
    ("fit improves on constant", `Quick, test_fit_improves_on_constant);
    ("fit deterministic", `Quick, test_fit_deterministic);
    ( "checkpoint round-trip bit-exact",
      `Quick,
      test_checkpoint_roundtrip_bit_exact );
    ( "checkpoint rejects corruption",
      `Quick,
      test_checkpoint_rejects_corruption );
    ( "output interval sound + exact (10k boxes)",
      `Quick,
      test_output_interval_sound_and_exact );
    ("point box bit-exact", `Quick, test_point_box_bit_exact);
    ("fidelity vs fixture actor", `Quick, test_fidelity_fixture_actor);
    ( "certify_tree exact dominates conservative",
      `Quick,
      test_certify_tree_exact_dominates );
    ("certify_tree sound (sampled)", `Quick, test_certify_tree_sound);
    ( "predict_rows_into domain sweep",
      `Quick,
      test_predict_rows_domains_bit_identical );
    ("harvest groups mixed intervals", `Quick, test_harvest_mixed_intervals);
    ( "scalar vs fleet, both policy kinds",
      `Quick,
      test_scalar_vs_fleet_both_kinds );
  ]
