(* Tests for canopy_tensor: vector and matrix algebra. *)

open Canopy_tensor

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let vec = Alcotest.testable Vec.pp (Vec.approx_equal ~eps:1e-9)
let mat = Alcotest.testable Mat.pp (Mat.approx_equal ~eps:1e-9)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_create_init () =
  Alcotest.check vec "zeros" [| 0.; 0.; 0. |] (Vec.create 3);
  Alcotest.check vec "init" [| 0.; 1.; 4. |]
    (Vec.init 3 (fun i -> float_of_int (i * i)))

let test_vec_arith () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.check vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  Alcotest.check vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  Alcotest.check vec "mul" [| 4.; 10.; 18. |] (Vec.mul a b);
  Alcotest.check vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a)

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy ~alpha:3. ~x:[| 2.; -1. |] ~y;
  Alcotest.check vec "axpy" [| 7.; -2. |] y

let test_vec_into () =
  let dst = Vec.create 2 in
  Vec.add_into ~dst [| 1.; 2. |] [| 3.; 4. |];
  Alcotest.check vec "add_into" [| 4.; 6. |] dst;
  Vec.sub_into ~dst [| 1.; 2. |] [| 3.; 4. |];
  Alcotest.check vec "sub_into" [| -2.; -2. |] dst;
  Vec.map_into ~dst (fun x -> x *. x) [| 3.; 4. |];
  Alcotest.check vec "map_into" [| 9.; 16. |] dst

let test_vec_dot_norm () =
  check_float "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  check_float "norm_inf" 4. (Vec.norm_inf [| 3.; -4. |]);
  check_float "sum" 6. (Vec.sum [| 1.; 2.; 3. |]);
  check_float "mean" 2. (Vec.mean [| 1.; 2.; 3. |]);
  check_float "mean empty" 0. (Vec.mean [||])

let test_vec_minmax () =
  let a = [| 3.; -1.; 7.; 2. |] in
  check_float "max" 7. (Vec.max_elt a);
  check_float "min" (-1.) (Vec.min_elt a);
  Alcotest.(check int) "argmax" 2 (Vec.argmax a)

let test_vec_concat_slice () =
  let c = Vec.concat [ [| 1. |]; [| 2.; 3. |]; [||] ] in
  Alcotest.check vec "concat" [| 1.; 2.; 3. |] c;
  Alcotest.check vec "slice" [| 2.; 3. |] (Vec.slice c ~pos:1 ~len:2)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let m23 = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |]

let test_mat_shape_access () =
  Alcotest.(check int) "rows" 2 (Mat.rows m23);
  Alcotest.(check int) "cols" 3 (Mat.cols m23);
  check_float "get" 6. (Mat.get m23 1 2);
  Alcotest.check vec "row" [| 4.; 5.; 6. |] (Mat.row m23 1)

let test_mat_set_copy () =
  let m = Mat.copy m23 in
  Mat.set m 0 0 42.;
  check_float "set" 42. (Mat.get m 0 0);
  check_float "original untouched" 1. (Mat.get m23 0 0)

let test_mat_transpose () =
  let t = Mat.transpose m23 in
  Alcotest.(check int) "t rows" 3 (Mat.rows t);
  check_float "t(2,1)" 6. (Mat.get t 2 1);
  Alcotest.check mat "double transpose" m23 (Mat.transpose t)

let test_mat_arith () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 10.; 20. |]; [| 30.; 40. |] |] in
  Alcotest.check mat "add"
    (Mat.of_arrays [| [| 11.; 22. |]; [| 33.; 44. |] |])
    (Mat.add a b);
  Alcotest.check mat "sub"
    (Mat.of_arrays [| [| 9.; 18. |]; [| 27.; 36. |] |])
    (Mat.sub b a);
  Alcotest.check mat "scale"
    (Mat.of_arrays [| [| 2.; 4. |]; [| 6.; 8. |] |])
    (Mat.scale 2. a);
  Alcotest.check mat "abs"
    (Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |])
    (Mat.abs (Mat.scale (-1.) a))

let test_mat_vec () =
  Alcotest.check vec "mat_vec" [| 14.; 32. |] (Mat.mat_vec m23 [| 1.; 2.; 3. |]);
  let dst = Vec.create 2 in
  Mat.mat_vec_into ~dst m23 [| 1.; 2.; 3. |];
  Alcotest.check vec "mat_vec_into" [| 14.; 32. |] dst

let test_mat_tvec () =
  Alcotest.check vec "mat_tvec" [| 9.; 12.; 15. |]
    (Mat.mat_tvec m23 [| 1.; 2. |])

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  Alcotest.check mat "matmul"
    (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |])
    (Mat.mat_mul a b)

let test_mat_identity_mul () =
  let id = Mat.init ~rows:3 ~cols:3 (fun i j -> if i = j then 1. else 0.) in
  Alcotest.check mat "I * Mᵀ" (Mat.transpose m23)
    (Mat.mat_mul id (Mat.transpose m23))

let test_mat_mul_into () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let dst = Mat.init ~rows:2 ~cols:2 (fun _ _ -> 99.) in
  Mat.mat_mul_into ~dst a b;
  Alcotest.check mat "overwrites dst"
    (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |])
    dst

let test_mat_mul_nt () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let b = Mat.of_arrays [| [| 1.; 0.; 1. |]; [| 0.; 1.; 0. |] |] in
  (* a·bᵀ computed two ways *)
  Alcotest.check mat "nt = mul with transpose"
    (Mat.mat_mul a (Mat.transpose b))
    (Mat.mat_mul_nt a b);
  let dst = Mat.create ~rows:2 ~cols:2 in
  Mat.mat_mul_nt_into ~dst a b;
  Alcotest.check mat "nt_into" (Mat.mat_mul_nt a b) dst;
  (* each row is exactly mat_vec of the other operand *)
  Alcotest.check vec "row = mat_vec" (Mat.mat_vec b (Mat.row a 1))
    (Mat.row (Mat.mat_mul_nt a b) 1)

let test_mat_mul_tn_acc () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let b = Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let dst = Mat.init ~rows:2 ~cols:2 (fun _ _ -> 1. ) in
  Mat.mat_mul_tn_acc ~dst a b;
  Alcotest.check mat "accumulates aᵀ·b"
    (Mat.add
       (Mat.init ~rows:2 ~cols:2 (fun _ _ -> 1.))
       (Mat.mat_mul (Mat.transpose a) b))
    dst

let test_mat_row_ops () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Mat.add_row m [| 10.; 20. |];
  Alcotest.check mat "add_row broadcasts"
    (Mat.of_arrays [| [| 11.; 22. |]; [| 13.; 24. |] |])
    m;
  let dst = [| 1.; 1. |] in
  Mat.col_sum_acc ~dst m;
  Alcotest.check vec "col_sum_acc" [| 25.; 47. |] dst;
  Mat.set_row m 0 [| -1.; -2. |];
  Alcotest.check vec "set_row" [| -1.; -2. |] (Mat.row m 0);
  let sq = Mat.create ~rows:2 ~cols:2 in
  Mat.map_into ~dst:sq (fun x -> x *. x) m;
  Alcotest.check mat "map_into" (Mat.map (fun x -> x *. x) m) sq;
  Mat.map_into ~dst:m (fun x -> -.x) m;
  Alcotest.check vec "map_into in place" [| 1.; 2. |] (Mat.row m 0)

let test_mat_pack_slice () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check mat "of_rows" (Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |]) m;
  let c = Mat.concat_cols m (Mat.of_arrays [| [| 5. |]; [| 6. |] |]) in
  Alcotest.check mat "concat_cols"
    (Mat.of_arrays [| [| 1.; 2.; 5. |]; [| 3.; 4.; 6. |] |])
    c;
  Alcotest.check mat "cols_slice middle"
    (Mat.of_arrays [| [| 2. |]; [| 4. |] |])
    (Mat.cols_slice c ~pos:1 ~len:1);
  Alcotest.check mat "cols_slice roundtrip" m (Mat.cols_slice c ~pos:0 ~len:2)

let test_mat_kernel_dim_checks () =
  let a = Mat.create ~rows:2 ~cols:3 in
  Alcotest.check_raises "nt dims"
    (Invalid_argument "Mat.mat_mul_nt_into: dims") (fun () ->
      ignore (Mat.mat_mul_nt a (Mat.create ~rows:2 ~cols:4)));
  Alcotest.check_raises "tn dims" (Invalid_argument "Mat.mat_mul_tn_acc: dims")
    (fun () ->
      Mat.mat_mul_tn_acc ~dst:(Mat.create ~rows:3 ~cols:3) a
        (Mat.create ~rows:3 ~cols:3));
  Alcotest.check_raises "add_row dims" (Invalid_argument "Mat.add_row: dims")
    (fun () -> Mat.add_row a [| 1. |]);
  Alcotest.check_raises "concat rows"
    (Invalid_argument "Mat.concat_cols: rows") (fun () ->
      ignore (Mat.concat_cols a (Mat.create ~rows:3 ~cols:1)))

let test_mat_outer_acc () =
  let m = Mat.create ~rows:2 ~cols:3 in
  Mat.outer_acc m [| 1.; 2. |] [| 3.; 4.; 5. |];
  Mat.outer_acc m [| 1.; 0. |] [| 1.; 1.; 1. |];
  Alcotest.check mat "outer accumulated"
    (Mat.of_arrays [| [| 4.; 5.; 6. |]; [| 6.; 8.; 10. |] |])
    m

let test_mat_axpy_frobenius () =
  let x = Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let y = Mat.create ~rows:2 ~cols:2 in
  Mat.axpy ~alpha:3. ~x ~y;
  check_float "frobenius" (3. *. sqrt 2.) (Mat.frobenius y)

let test_mat_raw_shares () =
  let m = Mat.create ~rows:2 ~cols:2 in
  (Mat.raw m).(3) <- 9.;
  check_float "raw shares storage" 9. (Mat.get m 1 1)

let test_mat_errors () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged")
    (fun () -> ignore (Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |]));
  Alcotest.check_raises "mat_vec dims" (Invalid_argument "Mat.mat_vec: dims")
    (fun () -> ignore (Mat.mat_vec m23 [| 1. |]))

(* ------------------------------------------------------------------ *)
(* Property-based: algebraic identities *)

let gen_mat rows cols =
  QCheck.Gen.(
    array_size (return (rows * cols)) (float_range (-10.) 10.)
    |> map (fun data ->
           Mat.init ~rows ~cols (fun i j -> data.((i * cols) + j))))

let gen_vecn n = QCheck.Gen.(array_size (return n) (float_range (-10.) 10.))

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"adjoint identity (Ax)·y = x·(Aᵀy)" ~count:100
      (make
         Gen.(
           let* m = gen_mat 3 4 in
           let* x = gen_vecn 4 in
           let* y = gen_vecn 3 in
           return (m, x, y)))
      (fun (m, x, y) ->
        Canopy_util.Mathx.approx_equal ~eps:1e-6
          (Vec.dot (Mat.mat_vec m x) y)
          (Vec.dot x (Mat.mat_tvec m y)));
    Test.make ~name:"matmul consistent with mat_vec" ~count:100
      (make
         Gen.(
           let* a = gen_mat 3 2 in
           let* b = gen_mat 2 4 in
           let* x = gen_vecn 4 in
           return (a, b, x)))
      (fun (a, b, x) ->
        Vec.approx_equal ~eps:1e-6
          (Mat.mat_vec (Mat.mat_mul a b) x)
          (Mat.mat_vec a (Mat.mat_vec b x)));
    Test.make ~name:"|M| dominates M elementwise" ~count:100
      (make (gen_mat 4 4))
      (fun m ->
        let a = Mat.abs m in
        let ok = ref true in
        for i = 0 to 3 do
          for j = 0 to 3 do
            if Mat.get a i j < Float.abs (Mat.get m i j) -. 1e-12 then
              ok := false
          done
        done;
        !ok);
    Test.make ~name:"vec add commutes" ~count:100
      (make Gen.(pair (gen_vecn 5) (gen_vecn 5)))
      (fun (a, b) -> Vec.approx_equal (Vec.add a b) (Vec.add b a));
    Test.make ~name:"mat_mul_nt a b = a · bᵀ" ~count:100
      (make Gen.(pair (gen_mat 3 5) (gen_mat 4 5)))
      (fun (a, b) ->
        Mat.approx_equal ~eps:1e-9 (Mat.mat_mul_nt a b)
          (Mat.mat_mul a (Mat.transpose b)));
    Test.make ~name:"mat_mul_tn_acc dst a b = dst + aᵀ · b" ~count:100
      (make
         Gen.(
           let* dst = gen_mat 4 3 in
           let* a = gen_mat 5 4 in
           let* b = gen_mat 5 3 in
           return (dst, a, b)))
      (fun (dst0, a, b) ->
        let dst = Mat.copy dst0 in
        Mat.mat_mul_tn_acc ~dst a b;
        Mat.approx_equal ~eps:1e-6 dst
          (Mat.add dst0 (Mat.mat_mul (Mat.transpose a) b)));
    Test.make ~name:"col_sum_acc = fold of rows" ~count:100
      (make (gen_mat 6 3))
      (fun m ->
        let dst = Vec.create 3 in
        Mat.col_sum_acc ~dst m;
        let expect = Vec.create 3 in
        for i = 0 to 5 do
          Vec.axpy ~alpha:1. ~x:(Mat.row m i) ~y:expect
        done;
        Vec.approx_equal ~eps:1e-9 dst expect);
  ]

let suite =
  [
    ("vec create/init", `Quick, test_vec_create_init);
    ("vec arithmetic", `Quick, test_vec_arith);
    ("vec axpy", `Quick, test_vec_axpy);
    ("vec _into variants", `Quick, test_vec_into);
    ("vec dot/norms", `Quick, test_vec_dot_norm);
    ("vec min/max/argmax", `Quick, test_vec_minmax);
    ("vec concat/slice", `Quick, test_vec_concat_slice);
    ("vec dimension mismatch", `Quick, test_vec_dim_mismatch);
    ("mat shape/access", `Quick, test_mat_shape_access);
    ("mat set/copy", `Quick, test_mat_set_copy);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat arithmetic", `Quick, test_mat_arith);
    ("mat mat_vec", `Quick, test_mat_vec);
    ("mat mat_tvec", `Quick, test_mat_tvec);
    ("mat mat_mul", `Quick, test_mat_mul);
    ("mat identity mul", `Quick, test_mat_identity_mul);
    ("mat mat_mul_into", `Quick, test_mat_mul_into);
    ("mat mat_mul_nt", `Quick, test_mat_mul_nt);
    ("mat mat_mul_tn_acc", `Quick, test_mat_mul_tn_acc);
    ("mat row ops", `Quick, test_mat_row_ops);
    ("mat pack/concat/slice", `Quick, test_mat_pack_slice);
    ("mat kernel dim checks", `Quick, test_mat_kernel_dim_checks);
    ("mat outer_acc", `Quick, test_mat_outer_acc);
    ("mat axpy/frobenius", `Quick, test_mat_axpy_frobenius);
    ("mat raw shares storage", `Quick, test_mat_raw_shares);
    ("mat errors", `Quick, test_mat_errors);
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck
