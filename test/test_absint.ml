(* Tests for canopy_absint: interval arithmetic, the box domain, and
   soundness of interval bound propagation through real networks — the
   property underpinning every certificate in the paper (γ(f♯(s♯)) ⊇
   {f(s) : s ∈ γ(s♯)}). *)

open Canopy_absint
open Canopy_nn
module Prng = Canopy_util.Prng

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let interval = Alcotest.testable Interval.pp (Interval.equal ~eps:1e-12)

(* ------------------------------------------------------------------ *)
(* Interval *)

let test_interval_make () =
  let i = Interval.make (-1.) 2. in
  check_float "lo" (-1.) (Interval.lo i);
  check_float "hi" 2. (Interval.hi i);
  check_float "width" 3. (Interval.width i);
  check_float "midpoint" 0.5 (Interval.midpoint i);
  check_float "radius" 1.5 (Interval.radius i)

let test_interval_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (Interval.make 1. 0.));
  Alcotest.check_raises "nan" (Invalid_argument "Interval.make: nan")
    (fun () -> ignore (Interval.make Float.nan 0.))

let test_interval_membership () =
  let i = Interval.make 0. 1. in
  check_bool "contains" true (Interval.contains i 0.5);
  check_bool "boundary" true (Interval.contains i 1.);
  check_bool "outside" false (Interval.contains i 1.5);
  check_bool "subset" true (Interval.subset (Interval.make 0.2 0.8) i);
  check_bool "not subset" false (Interval.subset (Interval.make 0.2 1.2) i)

let test_interval_intersect_hull () =
  let a = Interval.make 0. 2. and b = Interval.make 1. 3. in
  (match Interval.intersect a b with
  | Some i -> Alcotest.check interval "intersect" (Interval.make 1. 2.) i
  | None -> Alcotest.fail "expected overlap");
  check_bool "disjoint" true
    (Interval.intersect a (Interval.make 5. 6.) = None);
  Alcotest.check interval "hull" (Interval.make 0. 3.) (Interval.hull a b)

let test_interval_arith () =
  let a = Interval.make 1. 2. and b = Interval.make (-1.) 3. in
  Alcotest.check interval "add" (Interval.make 0. 5.) (Interval.add a b);
  Alcotest.check interval "sub" (Interval.make (-2.) 3.) (Interval.sub a b);
  Alcotest.check interval "neg" (Interval.make (-2.) (-1.)) (Interval.neg a);
  Alcotest.check interval "scale pos" (Interval.make 2. 4.)
    (Interval.scale 2. a);
  Alcotest.check interval "scale neg" (Interval.make (-4.) (-2.))
    (Interval.scale (-2.) a);
  Alcotest.check interval "add_scalar" (Interval.make 0. 1.)
    (Interval.add_scalar (-1.) a);
  Alcotest.check interval "div_scalar" (Interval.make 0.5 1.)
    (Interval.div_scalar a 2.)

let test_interval_mul () =
  let a = Interval.make (-2.) 3. and b = Interval.make (-1.) 4. in
  Alcotest.check interval "mul mixed" (Interval.make (-8.) 12.)
    (Interval.mul a b)

let test_interval_mul_infinity_corners () =
  (* 0. *. infinity = nan in IEEE; the corner products must follow the
     zero-annihilation convention or half-infinite operands poison both
     bounds with NaN (and Interval.make rejects the result). *)
  let inf = Float.infinity in
  let full = Interval.make (-.inf) inf in
  Alcotest.check interval "0-width times full line" (Interval.of_point 0.)
    (Interval.mul (Interval.of_point 0.) full);
  Alcotest.check interval "full line times 0-width" (Interval.of_point 0.)
    (Interval.mul full (Interval.of_point 0.));
  let m = Interval.mul (Interval.make 0. 5.) (Interval.make 0. inf) in
  check_bool "no NaN bounds" true
    (not (Float.is_nan (Interval.lo m) || Float.is_nan (Interval.hi m)));
  check_float "lo" 0. (Interval.lo m);
  check_bool "hi is +inf" true (Interval.hi m = inf);
  check_bool "contains finite products" true
    (Interval.contains m (5. *. 1e300));
  let n = Interval.mul (Interval.make (-.inf) 0.) (Interval.make 0. 3.) in
  check_bool "neg half-line lo" true (Interval.lo n = -.inf);
  check_float "neg half-line hi" 0. (Interval.hi n)

let test_interval_scale_zero_infinite () =
  let full = Interval.make Float.neg_infinity Float.infinity in
  Alcotest.check interval "scale 0" (Interval.of_point 0.)
    (Interval.scale 0. full);
  Alcotest.check interval "scale -0" (Interval.of_point 0.)
    (Interval.scale (-0.) full);
  (* approx_equal can't compare infinite bounds (inf - inf = nan), so
     check the endpoints directly *)
  let s = Interval.scale 2. (Interval.make 0. Float.infinity) in
  check_float "scale 2 half-line lo" 0. (Interval.lo s);
  check_bool "scale 2 half-line hi" true (Interval.hi s = Float.infinity)

let test_interval_monotone_maps () =
  let a = Interval.make (-1.) 1. in
  Alcotest.check interval "pow2" (Interval.make 0.5 2.) (Interval.pow2 a);
  Alcotest.check interval "relu" (Interval.make 0. 1.) (Interval.relu a);
  Alcotest.check interval "leaky" (Interval.make (-0.01) 1.)
    (Interval.leaky_relu ~slope:0.01 a);
  let t = Interval.tanh a in
  check_bool "tanh sym" true
    (Canopy_util.Mathx.approx_equal (Interval.lo t) (-.Interval.hi t))

let test_overlap_fraction_cases () =
  (* Eq. 7's three regimes. *)
  let target = Interval.make 0. 10. in
  check_float "disjoint -> 0" 0.
    (Interval.overlap_fraction ~target (Interval.make 11. 12.));
  check_float "contained -> 1" 1.
    (Interval.overlap_fraction ~target (Interval.make 2. 3.));
  check_float "partial -> ratio" 0.5
    (Interval.overlap_fraction ~target (Interval.make (-5.) 5.));
  check_float "point inside -> 1" 1.
    (Interval.overlap_fraction ~target (Interval.of_point 5.));
  check_float "point outside -> 0" 0.
    (Interval.overlap_fraction ~target (Interval.of_point 11.))

let test_overlap_fraction_infinite_target () =
  (* The performance property uses half-line postconditions. *)
  let target = Interval.make Float.neg_infinity 0. in
  check_float "all negative -> 1" 1.
    (Interval.overlap_fraction ~target (Interval.make (-3.) (-1.)));
  check_float "straddling -> ratio" 0.25
    (Interval.overlap_fraction ~target (Interval.make (-1.) 3.));
  check_float "all positive -> 0" 0.
    (Interval.overlap_fraction ~target (Interval.make 1. 2.))

let test_split_partition () =
  let i = Interval.make 0. 1. in
  let parts = Interval.split i 4 in
  Alcotest.(check int) "count" 4 (List.length parts);
  check_float "first lo" 0. (Interval.lo (List.nth parts 0));
  check_float "last hi" 1. (Interval.hi (List.nth parts 3));
  (* contiguous: each piece starts where the previous ended *)
  List.iteri
    (fun idx p ->
      if idx > 0 then
        check_float
          (Printf.sprintf "contiguous %d" idx)
          (Interval.hi (List.nth parts (idx - 1)))
          (Interval.lo p))
    parts

let test_split_one () =
  Alcotest.check interval "split 1 = identity" (Interval.make 2. 5.)
    (List.hd (Interval.split (Interval.make 2. 5.) 1))

let test_interval_sample () =
  let rng = Prng.create 7 in
  let i = Interval.make (-2.) 5. in
  for _ = 1 to 500 do
    check_bool "sample member" true (Interval.contains i (Interval.sample rng i))
  done

(* ------------------------------------------------------------------ *)
(* Box *)

let test_box_roundtrip () =
  let ivs = [| Interval.make 0. 1.; Interval.make (-2.) 2. |] in
  let b = Box.of_intervals ivs in
  Alcotest.(check int) "dim" 2 (Box.dim b);
  Alcotest.check interval "dim0" ivs.(0) (Box.dimension b 0);
  Alcotest.check interval "dim1" ivs.(1) (Box.dimension b 1)

let test_box_of_point () =
  let b = Box.of_point [| 1.; 2. |] in
  check_bool "contains point" true (Box.contains b [| 1.; 2. |]);
  check_float "volume 0" 0. (Box.volume b)

let test_box_with_dimension () =
  let b = Box.of_point [| 1.; 2.; 3. |] in
  let b = Box.with_dimension b 1 (Interval.make 0. 4.) in
  Alcotest.check interval "updated" (Interval.make 0. 4.) (Box.dimension b 1);
  Alcotest.check interval "others kept" (Interval.of_point 3.)
    (Box.dimension b 2)

let test_box_negative_dev_rejected () =
  Alcotest.check_raises "negative dev"
    (Invalid_argument "Box.make: deviation") (fun () ->
      ignore (Box.make ~center:[| 0. |] ~dev:[| -1. |]))

let test_box_volume_subset () =
  let big = Box.of_intervals [| Interval.make 0. 2.; Interval.make 0. 3. |] in
  let small =
    Box.of_intervals [| Interval.make 0.5 1.; Interval.make 1. 2. |]
  in
  check_float "volume" 6. (Box.volume big);
  check_bool "subset" true (Box.subset small big);
  check_bool "not subset" false (Box.subset big small)

let test_box_affine_known () =
  (* x ∈ [0,2] × [1,1]; M = [[1, -1]]; b = [10]  →  [10-1+0, 10-1+2]=[9,11] *)
  let box = Box.of_intervals [| Interval.make 0. 2.; Interval.of_point 1. |] in
  let m = Canopy_tensor.Mat.of_arrays [| [| 1.; -1. |] |] in
  let out = Box.affine m [| 10. |] box in
  Alcotest.check interval "affine image" (Interval.make 9. 11.)
    (Box.dimension out 0)

let test_box_hull () =
  let a = Box.of_intervals [| Interval.make 0. 1. |] in
  let b = Box.of_intervals [| Interval.make 2. 3. |] in
  Alcotest.check interval "hull" (Interval.make 0. 3.)
    (Box.dimension (Box.hull a b) 0)

let test_box_map_monotone () =
  let b = Box.of_intervals [| Interval.make (-2.) 1. |] in
  let out = Box.map_monotone (fun x -> Float.max 0. x) b in
  Alcotest.check interval "relu image" (Interval.make 0. 1.)
    (Box.dimension out 0)

(* ------------------------------------------------------------------ *)
(* IBP soundness *)

let random_net rng =
  Mlp.actor ~rng ~in_dim:6 ~hidden:12 ~out_dim:1

let test_ibp_point_box_is_exact () =
  let rng = Prng.create 99 in
  let net = random_net rng in
  let x = Array.init 6 (fun i -> 0.1 *. float_of_int (i - 3)) in
  let out = Ibp.output_interval net (Box.of_point x) in
  let concrete = (Mlp.forward net x).(0) in
  check_bool "degenerate box = concrete forward" true
    (Float.abs (Interval.lo out -. concrete) < 1e-9
    && Float.abs (Interval.hi out -. concrete) < 1e-9)

let test_ibp_soundness_sampling () =
  (* For random boxes, every concrete forward of a sampled point must lie
     inside the propagated interval. *)
  let rng = Prng.create 2024 in
  for trial = 1 to 20 do
    let net = random_net rng in
    let ivs =
      Array.init 6 (fun _ ->
          let c = Prng.uniform rng (-1.) 1. in
          let r = Prng.float rng 0.5 in
          Interval.make (c -. r) (c +. r))
    in
    let box = Box.of_intervals ivs in
    let out = Ibp.output_interval net box in
    for _ = 1 to 50 do
      let x = Box.sample rng box in
      let y = (Mlp.forward net x).(0) in
      if not (Interval.contains out y) then
        Alcotest.failf "trial %d: concrete %f escapes %s" trial y
          (Format.asprintf "%a" Interval.pp out)
    done
  done

let test_ibp_monotone_in_box_width () =
  (* Widening the input box can only widen the output interval. *)
  let rng = Prng.create 31337 in
  let net = random_net rng in
  let center = Array.make 6 0.2 in
  let narrow = Box.make ~center ~dev:(Array.make 6 0.05) in
  let wide = Box.make ~center ~dev:(Array.make 6 0.2) in
  let o_narrow = Ibp.output_interval net narrow in
  let o_wide = Ibp.output_interval net wide in
  check_bool "nested outputs" true (Interval.subset o_narrow o_wide)

let test_ibp_tanh_output_bounded () =
  let rng = Prng.create 5 in
  let net = random_net rng in
  let box =
    Box.of_intervals (Array.init 6 (fun _ -> Interval.make (-10.) 10.))
  in
  let out = Ibp.output_interval net box in
  check_bool "within tanh range" true
    (Interval.lo out >= -1. && Interval.hi out <= 1.)

let test_ibp_batchnorm_running_stats () =
  (* After training-mode batches move the BN statistics, certification
     must still bound the eval-mode forward pass. *)
  let rng = Prng.create 17 in
  let net = random_net rng in
  let batch =
    Array.init 16 (fun _ -> Array.init 6 (fun _ -> Prng.uniform rng (-1.) 1.))
  in
  ignore (Mlp.forward_train net (Canopy_tensor.Mat.of_arrays batch));
  let box =
    Box.of_intervals (Array.init 6 (fun _ -> Interval.make (-0.5) 0.5))
  in
  let out = Ibp.output_interval net box in
  for _ = 1 to 200 do
    let x = Box.sample rng box in
    check_bool "still sound" true (Interval.contains out (Mlp.forward net x).(0))
  done

let test_ibp_dimension_mismatch () =
  let rng = Prng.create 3 in
  let net = random_net rng in
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Ibp.propagate: input dim") (fun () ->
      ignore (Ibp.propagate net (Box.of_point [| 0. |])))

let test_propagate_layer_relu () =
  let box = Box.of_intervals [| Interval.make (-1.) 2. |] in
  let out = Ibp.propagate_layer Layer.Relu box in
  Alcotest.check interval "relu layer" (Interval.make 0. 2.)
    (Box.dimension out 0)

(* ------------------------------------------------------------------ *)
(* Anet: the verifier IR *)

let check_close label a b =
  if not (Canopy_util.Mathx.approx_equal ~eps:1e-9 a b) then
    Alcotest.failf "%s: %.17g <> %.17g" label a b

let random_boxes rng n dim =
  Array.init n (fun _ ->
      Box.of_intervals
        (Array.init dim (fun _ ->
             let c = Prng.uniform rng (-1.) 1. in
             let r = Prng.float rng 0.6 in
             Interval.make (c -. r) (c +. r))))

let test_anet_extraction_shape () =
  let rng = Prng.create 41 in
  let actor = Mlp.actor ~rng ~in_dim:6 ~hidden:12 ~out_dim:1 in
  let ir = Anet.of_mlp actor in
  check_bool "actor in_dim" true (Anet.in_dim ir = 6);
  check_bool "actor out_dim" true (Anet.out_dim ir = 1);
  (match Anet.stages ir with
  | [ s1; s2; s3 ] ->
      let is_leaky = function Anet.Leaky_relu _ -> true | _ -> false in
      check_bool "stage 1 leaky" true (is_leaky s1.Anet.act);
      check_bool "stage 2 leaky" true (is_leaky s2.Anet.act);
      check_bool "stage 3 tanh" true (s3.Anet.act = Anet.Tanh)
  | stages ->
      Alcotest.failf "actor fused to %d stages, wanted 3"
        (List.length stages));
  let critic = Mlp.critic ~rng ~state_dim:5 ~action_dim:1 ~hidden:8 in
  match List.rev (Anet.stages (Anet.of_mlp critic)) with
  | last :: _ -> check_bool "critic ends linear" true (last.Anet.act = Anet.Linear)
  | [] -> Alcotest.fail "critic IR has no stages"

let test_anet_forward_matches_mlp () =
  (* Extraction invariance: fusing dense∘batch-norm runs must not change
     the concrete function, even after training batches have moved the
     BN statistics. *)
  let rng = Prng.create 43 in
  for _ = 1 to 10 do
    let net = random_net rng in
    let batch =
      Array.init 8 (fun _ -> Array.init 6 (fun _ -> Prng.uniform rng (-1.) 1.))
    in
    ignore (Mlp.forward_train net (Canopy_tensor.Mat.of_arrays batch));
    let ir = Anet.of_mlp net in
    for _ = 1 to 20 do
      let x = Array.init 6 (fun _ -> Prng.uniform rng (-2.) 2.) in
      check_close "fused forward" (Mlp.forward net x).(0) (Anet.forward ir x).(0)
    done
  done

let test_anet_propagate_matches_ibp () =
  (* The IR has no consecutive dense layers in these shapes, so the
     fused bounds agree with layer-by-layer IBP to rounding. *)
  let rng = Prng.create 47 in
  for _ = 1 to 10 do
    let net = random_net rng in
    let ir = Anet.of_mlp net in
    Array.iter
      (fun box ->
        let a = Box.dimension (Anet.propagate ir box) 0 in
        let b = Ibp.output_interval net box in
        check_close "lo" (Interval.lo b) (Interval.lo a);
        check_close "hi" (Interval.hi b) (Interval.hi a))
      (random_boxes rng 5 6)
  done

let test_anet_batched_matches_single () =
  let rng = Prng.create 53 in
  let net = random_net rng in
  let ir = Anet.cached net in
  let boxes = random_boxes rng 7 6 in
  let batched = Anet.output_intervals ir boxes in
  Array.iteri
    (fun i box ->
      let single = Anet.output_interval ir box in
      check_close "batched lo" (Interval.lo single) (Interval.lo batched.(i));
      check_close "batched hi" (Interval.hi single) (Interval.hi batched.(i)))
    boxes

let test_anet_zonotope_ir_path () =
  let rng = Prng.create 59 in
  for _ = 1 to 5 do
    let net = random_net rng in
    let ir = Anet.cached net in
    let boxes = random_boxes rng 4 6 in
    let fused = Zonotope.output_intervals_anet ir boxes in
    Array.iteri
      (fun i box ->
        let single = Zonotope.output_interval net box in
        check_close "zono lo" (Interval.lo single) (Interval.lo fused.(i));
        check_close "zono hi" (Interval.hi single) (Interval.hi fused.(i)))
      boxes
  done

let test_anet_cache_tracks_generation () =
  let rng = Prng.create 61 in
  let net = random_net rng in
  let ir = Anet.cached net in
  check_bool "cache hit is physical" true (Anet.cached net == ir);
  let batch =
    Array.init 4 (fun _ -> Array.init 6 (fun _ -> Prng.uniform rng (-1.) 1.))
  in
  ignore (Mlp.forward_train net (Canopy_tensor.Mat.of_arrays batch));
  let ir' = Anet.cached net in
  check_bool "generation bump invalidates" true (not (ir' == ir));
  check_bool "snapshot records generation" true
    (Anet.source_generation ir' = Mlp.generation net);
  (* the old snapshot still reflects the pre-update parameters *)
  check_bool "old snapshot is stale" true
    (Anet.source_generation ir < Anet.source_generation ir')

let test_anet_point_box_is_exact () =
  let rng = Prng.create 67 in
  let net = random_net rng in
  let ir = Anet.of_mlp net in
  let x = Array.init 6 (fun i -> 0.15 *. float_of_int (i - 2)) in
  let out = Anet.output_interval ir (Box.of_point x) in
  let concrete = (Mlp.forward net x).(0) in
  check_bool "degenerate box pins the forward value" true
    (Float.abs (Interval.lo out -. concrete) < 1e-9
    && Float.abs (Interval.hi out -. concrete) < 1e-9)

let test_anet_dimension_mismatch () =
  let rng = Prng.create 71 in
  let ir = Anet.of_mlp (random_net rng) in
  Alcotest.check_raises "propagate dim"
    (Invalid_argument "Anet.propagate: input dim") (fun () ->
      ignore (Anet.propagate ir (Box.of_point [| 0. |])))

(* ------------------------------------------------------------------ *)
(* Property-based *)

let gen_interval =
  QCheck.Gen.(
    let* a = float_range (-50.) 50. in
    let* w = float_range 0. 20. in
    return (Interval.make a (a +. w)))

let qcheck =
  let open QCheck in
  [
    Test.make ~name:"interval add is sound on samples" ~count:100
      (make Gen.(triple gen_interval gen_interval (float_bound_inclusive 1.)))
      (fun (a, b, t) ->
        let x = Canopy_util.Mathx.lerp (Interval.lo a) (Interval.hi a) t in
        let y = Canopy_util.Mathx.lerp (Interval.lo b) (Interval.hi b) t in
        Interval.contains (Interval.add a b) (x +. y));
    Test.make ~name:"interval mul is sound on endpoints" ~count:200
      (make Gen.(pair gen_interval gen_interval))
      (fun (a, b) ->
        let m = Interval.mul a b in
        List.for_all
          (fun (x, y) -> Interval.contains m (x *. y))
          [
            (Interval.lo a, Interval.lo b);
            (Interval.lo a, Interval.hi b);
            (Interval.hi a, Interval.lo b);
            (Interval.hi a, Interval.hi b);
            (Interval.midpoint a, Interval.midpoint b);
          ]);
    Test.make ~name:"split pieces cover and partition" ~count:200
      (make Gen.(pair gen_interval (int_range 1 16)))
      (fun (i, n) ->
        let parts = Interval.split i n in
        List.length parts = n
        && Canopy_util.Mathx.approx_equal ~eps:1e-9
             (Interval.lo (List.hd parts))
             (Interval.lo i)
        && Canopy_util.Mathx.approx_equal ~eps:1e-9
             (Interval.hi (List.nth parts (n - 1)))
             (Interval.hi i)
        && List.for_all (fun p -> Interval.subset p i) parts);
    Test.make ~name:"overlap fraction in [0,1]" ~count:200
      (make Gen.(pair gen_interval gen_interval))
      (fun (target, out) ->
        let d = Interval.overlap_fraction ~target out in
        d >= 0. && d <= 1.);
    Test.make ~name:"hull contains both arguments" ~count:200
      (make Gen.(pair gen_interval gen_interval))
      (fun (a, b) ->
        let h = Interval.hull a b in
        Interval.subset a h && Interval.subset b h);
  ]

let suite =
  [
    ("interval make/accessors", `Quick, test_interval_make);
    ("interval invalid", `Quick, test_interval_invalid);
    ("interval membership", `Quick, test_interval_membership);
    ("interval intersect/hull", `Quick, test_interval_intersect_hull);
    ("interval arithmetic", `Quick, test_interval_arith);
    ("interval multiplication", `Quick, test_interval_mul);
    ("interval mul 0*inf corners", `Quick, test_interval_mul_infinity_corners);
    ("interval scale 0*inf corners", `Quick, test_interval_scale_zero_infinite);
    ("interval monotone maps", `Quick, test_interval_monotone_maps);
    ("overlap fraction (Eq. 7)", `Quick, test_overlap_fraction_cases);
    ("overlap fraction half-lines", `Quick, test_overlap_fraction_infinite_target);
    ("split partitions", `Quick, test_split_partition);
    ("split n=1", `Quick, test_split_one);
    ("interval sampling", `Quick, test_interval_sample);
    ("box interval roundtrip", `Quick, test_box_roundtrip);
    ("box of point", `Quick, test_box_of_point);
    ("box with_dimension", `Quick, test_box_with_dimension);
    ("box rejects negative dev", `Quick, test_box_negative_dev_rejected);
    ("box volume/subset", `Quick, test_box_volume_subset);
    ("box affine image", `Quick, test_box_affine_known);
    ("box hull", `Quick, test_box_hull);
    ("box monotone map", `Quick, test_box_map_monotone);
    ("ibp point box exact", `Quick, test_ibp_point_box_is_exact);
    ("ibp soundness (sampling)", `Quick, test_ibp_soundness_sampling);
    ("ibp monotone in width", `Quick, test_ibp_monotone_in_box_width);
    ("ibp tanh range", `Quick, test_ibp_tanh_output_bounded);
    ("ibp sound after BN updates", `Quick, test_ibp_batchnorm_running_stats);
    ("ibp dimension mismatch", `Quick, test_ibp_dimension_mismatch);
    ("propagate_layer relu", `Quick, test_propagate_layer_relu);
    ("anet extraction shape", `Quick, test_anet_extraction_shape);
    ("anet forward = mlp forward", `Quick, test_anet_forward_matches_mlp);
    ("anet propagate = ibp", `Quick, test_anet_propagate_matches_ibp);
    ("anet batched = single", `Quick, test_anet_batched_matches_single);
    ("anet zonotope IR path", `Quick, test_anet_zonotope_ir_path);
    ("anet cache tracks generation", `Quick, test_anet_cache_tracks_generation);
    ("anet point box exact", `Quick, test_anet_point_box_is_exact);
    ("anet dimension mismatch", `Quick, test_anet_dimension_mismatch);
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck
