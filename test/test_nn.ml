(* Tests for canopy_nn: layer semantics, gradient correctness via finite
   differences, optimizers, checkpointing, target-network updates. *)

open Canopy_nn
open Canopy_tensor

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let rng () = Canopy_util.Prng.create 1234

(* ------------------------------------------------------------------ *)
(* Layer forward semantics *)

let test_dense_forward () =
  let d =
    Layer.Dense
      {
        w = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |];
        b = [| 0.5; -0.5 |];
        dw = Mat.create ~rows:2 ~cols:2;
        db = Vec.create 2;
      }
  in
  let y = Layer.forward1 Layer.Eval d [| 1.; 1. |] in
  Alcotest.(check (array (float 1e-9))) "dense" [| 3.5; 6.5 |] y

let test_leaky_relu_forward () =
  let l = Layer.leaky_relu ~slope:0.1 () in
  let y = Layer.forward1 Layer.Eval l [| -2.; 0.; 3. |] in
  Alcotest.(check (array (float 1e-9))) "leaky" [| -0.2; 0.; 3. |] y

let test_relu_tanh_forward () =
  let y = Layer.forward1 Layer.Eval Layer.relu [| -1.; 2. |] in
  Alcotest.(check (array (float 1e-9))) "relu" [| 0.; 2. |] y;
  let y = Layer.forward1 Layer.Eval Layer.tanh [| 0.; 100. |] in
  check_float "tanh 0" 0. y.(0);
  check_bool "tanh sat" true (y.(1) > 0.999)

let test_batch_norm_identity_init () =
  (* Fresh BN with running stats (mean 0, var 1) is ~identity in eval. *)
  let bn = Layer.batch_norm ~eps:1e-12 ~dim:3 () in
  let x = [| 0.5; -1.; 2. |] in
  let y = Layer.forward1 Layer.Eval bn x in
  Array.iteri
    (fun i v -> check_bool "near identity" true (Float.abs (v -. x.(i)) < 1e-5))
    y

let test_batch_norm_normalizes_batch () =
  let bn = Layer.batch_norm ~dim:1 () in
  let batch = Mat.of_arrays [| [| 10. |]; [| 20. |]; [| 30. |] |] in
  let out, _ = Layer.forward Layer.Train bn batch in
  let o i = Mat.get out i 0 in
  let mean = (o 0 +. o 1 +. o 2) /. 3. in
  check_bool "batch output centered" true (Float.abs mean < 1e-9);
  check_bool "ordered" true (o 0 < o 1 && o 1 < o 2)

let test_batch_norm_updates_running_stats () =
  match Layer.batch_norm ~momentum:0.5 ~dim:1 () with
  | Layer.Batch_norm bn as layer ->
      let batch = Mat.of_arrays [| [| 10. |]; [| 20. |] |] in
      ignore (Layer.forward Layer.Train layer batch);
      (* running mean moves halfway from 0 toward the batch mean 15 *)
      check_float "running mean" 7.5 bn.running_mean.(0)
  | _ -> assert false

let test_out_dim () =
  let d = Layer.dense ~rng:(rng ()) ~in_dim:4 ~out_dim:7 in
  Alcotest.(check int) "dense out" 7 (Layer.out_dim ~in_dim:4 d);
  Alcotest.(check int) "tanh out" 5 (Layer.out_dim ~in_dim:5 Layer.tanh)

(* ------------------------------------------------------------------ *)
(* Gradient checks: compare backprop against central finite differences
   of a scalar loss L = sum(output) over a small random network. *)

let fd_epsilon = 1e-5

let loss_of net batch =
  (* deterministic loss: run in Train mode via forward_train to exercise
     the same code path as backward, but batch-norm running stats update
     makes repeated forwards impure — so gradient-check networks avoid BN
     batch mode by using batch size 1 (falls back to running stats). *)
  let out, _ = Mlp.forward_train net batch in
  Array.fold_left ( +. ) 0. (Mat.raw out)

let gradient_check ?(eps = 2e-3) net rows =
  let batch = Mat.of_arrays rows in
  Mlp.zero_grad net;
  let out, tape = Mlp.forward_train net batch in
  let dout = Mat.init ~rows:(Mat.rows out) ~cols:(Mat.cols out) (fun _ _ -> 1.) in
  ignore (Mlp.backward net tape dout);
  let params = Mlp.params net in
  List.iteri
    (fun pi (value, grad) ->
      Array.iteri
        (fun i _ ->
          let saved = value.(i) in
          value.(i) <- saved +. fd_epsilon;
          let lp = loss_of net batch in
          value.(i) <- saved -. fd_epsilon;
          let lm = loss_of net batch in
          value.(i) <- saved;
          let numeric = (lp -. lm) /. (2. *. fd_epsilon) in
          let analytic = grad.(i) in
          let denom = Float.max 1. (Float.abs numeric) in
          if Float.abs (numeric -. analytic) /. denom > eps then
            Alcotest.failf "param %d[%d]: numeric %.6f vs analytic %.6f" pi i
              numeric analytic)
        value)
    params

let test_grad_dense_tanh () =
  let r = rng () in
  let net =
    Mlp.create ~in_dim:3
      [ Layer.dense ~rng:r ~in_dim:3 ~out_dim:4; Layer.tanh;
        Layer.dense ~rng:r ~in_dim:4 ~out_dim:2 ]
  in
  gradient_check net [| [| 0.3; -0.7; 1.1 |] |]

let test_grad_leaky_relu () =
  let r = rng () in
  let net =
    Mlp.create ~in_dim:2
      [
        Layer.dense ~rng:r ~in_dim:2 ~out_dim:5;
        Layer.leaky_relu ~slope:0.05 ();
        Layer.dense ~rng:r ~in_dim:5 ~out_dim:1;
      ]
  in
  gradient_check net [| [| 0.9; -0.4 |] |]

let test_grad_relu () =
  let r = rng () in
  let net =
    Mlp.create ~in_dim:2
      [ Layer.dense ~rng:r ~in_dim:2 ~out_dim:4; Layer.relu;
        Layer.dense ~rng:r ~in_dim:4 ~out_dim:1 ]
  in
  gradient_check net [| [| 0.35; 0.6 |] |]

let test_grad_batchnorm_eval_path () =
  (* Batch of one: BN uses running statistics (an affine map); gradients
     through gamma/beta and the input must still be exact. *)
  let r = rng () in
  let net =
    Mlp.create ~in_dim:2
      [
        Layer.dense ~rng:r ~in_dim:2 ~out_dim:3;
        Layer.batch_norm ~dim:3 ();
        Layer.leaky_relu ();
        Layer.dense ~rng:r ~in_dim:3 ~out_dim:1;
      ]
  in
  gradient_check net [| [| 0.2; -0.8 |] |]

let test_grad_batchnorm_batch_stats () =
  (* Full BN backward through batch statistics: compare against finite
     differences of a frozen copy of the network (running-stat updates
     would otherwise change the loss between evaluations). We sidestep
     impurity by setting momentum to 0 so running stats never change. *)
  let r = rng () in
  let net =
    Mlp.create ~in_dim:2
      [
        Layer.dense ~rng:r ~in_dim:2 ~out_dim:3;
        Layer.batch_norm ~momentum:0. ~dim:3 ();
        Layer.tanh;
        Layer.dense ~rng:r ~in_dim:3 ~out_dim:1;
      ]
  in
  gradient_check net [| [| 0.2; -0.8 |]; [| 1.0; 0.4 |]; [| -0.5; 0.1 |] |]

let test_backward_input_gradient () =
  (* dL/dx for L = sum(W x + b) must equal column sums of W. *)
  let w = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let net =
    Mlp.create ~in_dim:2
      [
        Layer.Dense
          { w; b = Vec.create 2; dw = Mat.create ~rows:2 ~cols:2;
            db = Vec.create 2 };
      ]
  in
  let _, tape = Mlp.forward_train net (Mat.of_arrays [| [| 0.1; 0.2 |] |]) in
  let dx = Mlp.backward net tape (Mat.of_arrays [| [| 1.; 1. |] |]) in
  Alcotest.(check (array (float 1e-9))) "input grad" [| 4.; 6. |] (Mat.row dx 0)

(* ------------------------------------------------------------------ *)
(* Batched kernels vs the per-sample reference path. The batched
   implementation accumulates in the same order as the reference, so the
   two must agree to ~1e-9 (in practice bitwise) — otherwise the
   verifier's certificates would describe a different network than the
   one training deploys. *)

let batched_vs_rows_once net ~n ~in_dim ~out_dim ~seed =
  let rows =
    Array.init n (fun i ->
        Array.init in_dim (fun j ->
            Float.sin (float_of_int (((seed + i) * in_dim) + j))))
  in
  let dout_rows =
    Array.init n (fun i ->
        Array.init out_dim (fun j ->
            Float.cos (float_of_int (((seed + i) * out_dim) + j))))
  in
  let refnet = Mlp.copy net in
  (* batched pass *)
  Mlp.zero_grad net;
  let out_b, tape = Mlp.forward_train net (Mat.of_rows rows) in
  let din_b = Mlp.backward net tape (Mat.of_rows dout_rows) in
  (* per-sample reference pass *)
  Mlp.zero_grad refnet;
  let out_r, rtape = Mlp.forward_train_rows refnet rows in
  let din_r = Mlp.backward_rows refnet rtape dout_rows in
  let check_rows what m vs =
    Array.iteri
      (fun i v ->
        Alcotest.(check (array (float 1e-9)))
          (Printf.sprintf "%s row %d" what i)
          v (Mat.row m i))
      vs
  in
  check_rows "forward" out_b out_r;
  check_rows "input grad" din_b din_r;
  List.iteri
    (fun pi ((v_b, g_b), (v_r, g_r)) ->
      Alcotest.(check (array (float 1e-9)))
        (Printf.sprintf "param %d value" pi)
        v_r v_b;
      Alcotest.(check (array (float 1e-9)))
        (Printf.sprintf "param %d grad" pi)
        g_r g_b)
    (List.combine (Mlp.params net) (Mlp.params refnet));
  (* running statistics must have moved identically (eval forwards agree) *)
  let x = Array.init in_dim (fun j -> 0.1 *. float_of_int (j + 1)) in
  Alcotest.(check (array (float 1e-9)))
    "eval forward after training pass" (Mlp.forward refnet x)
    (Mlp.forward net x)

let test_batched_matches_rows_actor () =
  (* dense + batch-norm + leaky-relu + tanh, i.e. every layer kind *)
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:4 ~hidden:8 ~out_dim:2 in
  batched_vs_rows_once net ~n:5 ~in_dim:4 ~out_dim:2 ~seed:17

let test_batched_matches_rows_critic () =
  let net = Mlp.critic ~rng:(rng ()) ~state_dim:5 ~action_dim:2 ~hidden:8 in
  batched_vs_rows_once net ~n:7 ~in_dim:7 ~out_dim:1 ~seed:23

let test_batched_matches_rows_relu_stack () =
  let r = rng () in
  let net =
    Mlp.create ~in_dim:3
      [
        Layer.dense ~rng:r ~in_dim:3 ~out_dim:6;
        Layer.relu;
        Layer.batch_norm ~momentum:0.3 ~dim:6 ();
        Layer.dense ~rng:r ~in_dim:6 ~out_dim:2;
      ]
  in
  batched_vs_rows_once net ~n:9 ~in_dim:3 ~out_dim:2 ~seed:31

let test_forward_batch_matches_forward1 () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:3 ~hidden:8 ~out_dim:1 in
  let rows =
    Array.init 6 (fun i ->
        Array.init 3 (fun j -> Float.sin (float_of_int ((i * 3) + j))))
  in
  let out = Mlp.forward_batch net (Mat.of_rows rows) in
  Array.iteri
    (fun i x ->
      Alcotest.(check (array (float 1e-9)))
        (Printf.sprintf "sample %d" i)
        (Mlp.forward net x) (Mat.row out i))
    rows

(* ------------------------------------------------------------------ *)
(* Batched eval inference (fleet serving path) *)

(* [forward_eval_into] is the one-GEMM-per-tick serving primitive: its
   claim is not closeness but bit-identity per row with [Mlp.forward],
   which is what the fleet-vs-scalar equivalence proofs lean on. The
   nets below get a few training steps first so batch-norm running
   stats are non-trivial before the eval path folds them in. *)

let eval_net () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:6 ~hidden:16 ~out_dim:2 in
  let warm =
    Mat.of_rows
      (Array.init 8 (fun i ->
           Array.init 6 (fun j -> Float.cos (float_of_int ((i * 7) + j)))))
  in
  for _ = 1 to 3 do
    ignore (Mlp.forward_train net warm)
  done;
  net

let bits a = Array.map Int64.bits_of_float a

let test_forward_eval_into_matches_forward () =
  let net = eval_net () in
  (* 17 rows trips the >=12-row packed-panel GEMM, so the batched path
     under test is the one the fleet actually runs, not a fallback. *)
  let rows =
    Array.init 17 (fun i ->
        Array.init 6 (fun j -> Float.sin (float_of_int ((i * 11) + j))))
  in
  let dst = Mat.create_uninit ~rows:17 ~cols:2 in
  Mlp.forward_eval_into ~dst net (Mat.of_rows rows);
  Array.iteri
    (fun i x ->
      check_bool
        (Printf.sprintf "row %d bit-identical to Mlp.forward" i)
        true
        (bits (Mat.row dst i) = bits (Mlp.forward net x)))
    rows

let test_forward_eval_into_warm_equals_cold () =
  let net = eval_net () in
  let x =
    Mat.of_rows
      (Array.init 13 (fun i ->
           Array.init 6 (fun j -> Float.sin (float_of_int ((i * 5) + j)))))
  in
  let run () =
    let dst = Mat.create ~rows:13 ~cols:2 in
    (* Poison dst: the into-path must overwrite every cell. *)
    Array.fill (Mat.raw dst) 0 (13 * 2) Float.nan;
    Mlp.forward_eval_into ~dst net x;
    bits (Mat.raw dst)
  in
  let cold = run () in
  (* Steady state: scratch slots are warm now; results must not move. *)
  check_bool "warm == cold" true (run () = cold);
  check_bool "third call stable" true (run () = cold)

let test_forward_eval_wrapper_matches_into () =
  let net = eval_net () in
  let x =
    Mat.of_rows
      (Array.init 5 (fun i ->
           Array.init 6 (fun j -> Float.cos (float_of_int ((i * 3) + j)))))
  in
  let dst = Mat.create_uninit ~rows:5 ~cols:2 in
  Mlp.forward_eval_into ~dst net x;
  check_bool "forward_eval == forward_eval_into" true
    (bits (Mat.raw (Mlp.forward_eval net x)) = bits (Mat.raw dst))

let test_forward_eval_into_shape_checks () =
  let net = eval_net () in
  let x = Mat.create ~rows:3 ~cols:6 in
  check_bool "bad dst cols rejected" true
    (match
       Mlp.forward_eval_into ~dst:(Mat.create ~rows:3 ~cols:3) net x
     with
    | () -> false
    | exception Invalid_argument _ -> true);
  check_bool "bad dst rows rejected" true
    (match
       Mlp.forward_eval_into ~dst:(Mat.create ~rows:2 ~cols:2) net x
     with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mlp structure *)

let test_mlp_actor_shape () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:35 ~hidden:16 ~out_dim:1 in
  Alcotest.(check int) "in" 35 (Mlp.in_dim net);
  Alcotest.(check int) "out" 1 (Mlp.out_dim net);
  let y = Mlp.forward net (Array.make 35 0.3) in
  check_bool "tanh bounded" true (Float.abs y.(0) <= 1.)

let test_mlp_critic_shape () =
  let net = Mlp.critic ~rng:(rng ()) ~state_dim:6 ~action_dim:1 ~hidden:8 in
  Alcotest.(check int) "in" 7 (Mlp.in_dim net);
  Alcotest.(check int) "out" 1 (Mlp.out_dim net)

let test_mlp_bad_shape_rejected () =
  Alcotest.check_raises "dense mismatch"
    (Invalid_argument "Mlp.create: dense expects 3 inputs, got 2") (fun () ->
      ignore
        (Mlp.create ~in_dim:2 [ Layer.dense ~rng:(rng ()) ~in_dim:3 ~out_dim:1 ]))

let test_mlp_copy_independent () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:4 ~hidden:8 ~out_dim:1 in
  let dup = Mlp.copy net in
  let x = [| 0.1; 0.2; 0.3; 0.4 |] in
  check_float "same output" (Mlp.forward net x).(0) (Mlp.forward dup x).(0);
  (* mutate the copy's first dense layer *)
  (match Mlp.layers dup with
  | Layer.Dense d :: _ -> Mat.set d.w 0 0 (Mat.get d.w 0 0 +. 10.)
  | _ -> assert false);
  check_bool "independent storage" true
    ((Mlp.forward net x).(0) <> (Mlp.forward dup x).(0))

let test_soft_update () =
  let src = Mlp.actor ~rng:(rng ()) ~in_dim:3 ~hidden:4 ~out_dim:1 in
  let dst = Mlp.copy src in
  (* push dst away, then tau=1 must restore equality with src *)
  (match Mlp.layers dst with
  | Layer.Dense d :: _ -> Mat.set d.w 0 0 99.
  | _ -> assert false);
  Mlp.soft_update ~tau:1. ~src ~dst;
  let x = [| 0.5; -0.5; 0.25 |] in
  check_float "tau=1 copies" (Mlp.forward src x).(0) (Mlp.forward dst x).(0)

let test_soft_update_partial () =
  let r = rng () in
  let src = Mlp.create ~in_dim:1 [ Layer.dense ~rng:r ~in_dim:1 ~out_dim:1 ] in
  let dst = Mlp.copy src in
  (match (Mlp.layers src, Mlp.layers dst) with
  | [ Layer.Dense s ], [ Layer.Dense d ] ->
      Mat.set s.w 0 0 10.;
      Mat.set d.w 0 0 0.;
      Mlp.soft_update ~tau:0.1 ~src ~dst;
      check_float "polyak step" 1. (Mat.get d.w 0 0)
  | _ -> assert false)

let test_param_count () =
  let net = Mlp.critic ~rng:(rng ()) ~state_dim:3 ~action_dim:1 ~hidden:8 in
  (* dense(4->8): 32+8; dense(8->8): 64+8; dense(8->1): 8+1 = 121 *)
  Alcotest.(check int) "param count" 121 (Mlp.param_count net)

(* ------------------------------------------------------------------ *)
(* Optimizers *)

let quadratic_minimize opt =
  (* minimize f(x) = (x - 3)^2 with the optimizer API *)
  let x = [| 0. |] and g = [| 0. |] in
  for _ = 1 to 2000 do
    g.(0) <- 2. *. (x.(0) -. 3.);
    Optimizer.step opt [ (x, g) ]
  done;
  x.(0)

let test_sgd_converges () =
  let x = quadratic_minimize (Optimizer.sgd ~lr:0.05 ()) in
  check_bool "sgd near 3" true (Float.abs (x -. 3.) < 1e-3)

let test_sgd_momentum_converges () =
  let x = quadratic_minimize (Optimizer.sgd ~momentum:0.9 ~lr:0.01 ()) in
  check_bool "sgd+momentum near 3" true (Float.abs (x -. 3.) < 1e-3)

let test_adam_converges () =
  let x = quadratic_minimize (Optimizer.adam ~lr:0.05 ()) in
  check_bool "adam near 3" true (Float.abs (x -. 3.) < 1e-3)

let test_clip_gradients () =
  let g1 = [| 3.; 0. |] and g2 = [| 0.; 4. |] in
  Optimizer.clip_gradients ~norm:2.5 [ ([| 0.; 0. |], g1); ([| 0.; 0. |], g2) ];
  let total = sqrt ((g1.(0) ** 2.) +. (g2.(1) ** 2.)) in
  check_bool "clipped to norm" true (Float.abs (total -. 2.5) < 1e-9)

let test_clip_noop_below_norm () =
  let g = [| 0.3; 0.4 |] in
  Optimizer.clip_gradients ~norm:10. [ ([| 0.; 0. |], g) ];
  Alcotest.(check (array (float 1e-12))) "unchanged" [| 0.3; 0.4 |] g

let test_set_lr () =
  let opt = Optimizer.adam ~lr:0.1 () in
  Optimizer.set_lr opt 0.01;
  check_float "lr updated" 0.01 (Optimizer.lr opt)

let test_mlp_regression_learns () =
  (* Train a small MLP to fit y = 2x - 1 on [-1,1]; the loss must drop by
     a large factor. Exercises forward_train/backward/Adam end to end. *)
  let r = rng () in
  let net =
    Mlp.create ~in_dim:1
      [
        Layer.dense ~rng:r ~in_dim:1 ~out_dim:16;
        Layer.leaky_relu ();
        Layer.dense ~rng:r ~in_dim:16 ~out_dim:1;
      ]
  in
  let opt = Optimizer.adam ~lr:1e-2 () in
  let data = Array.init 32 (fun i -> -1. +. (2. *. float_of_int i /. 31.)) in
  let loss () =
    Array.fold_left
      (fun acc x ->
        let y = (Mlp.forward net [| x |]).(0) in
        acc +. (((2. *. x) -. 1. -. y) ** 2.))
      0. data
    /. 32.
  in
  let initial = loss () in
  for _ = 1 to 300 do
    Mlp.zero_grad net;
    let batch = Mat.init ~rows:32 ~cols:1 (fun i _ -> data.(i)) in
    let preds, tape = Mlp.forward_train net batch in
    let dout =
      Mat.init ~rows:32 ~cols:1 (fun i _ ->
          2. *. (Mat.get preds i 0 -. ((2. *. data.(i)) -. 1.)) /. 32.)
    in
    ignore (Mlp.backward net tape dout);
    Optimizer.step opt (Mlp.params net)
  done;
  let final = loss () in
  check_bool
    (Printf.sprintf "loss dropped (%.4f -> %.4f)" initial final)
    true
    (final < initial /. 20.)

(* ------------------------------------------------------------------ *)
(* Checkpointing *)

let test_checkpoint_roundtrip_string () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:6 ~hidden:8 ~out_dim:1 in
  let restored = Checkpoint.of_string (Checkpoint.to_string net) in
  let x = Array.init 6 (fun i -> 0.1 *. float_of_int i) in
  check_float "same output" (Mlp.forward net x).(0)
    (Mlp.forward restored x).(0);
  Alcotest.(check int) "same layer count"
    (List.length (Mlp.layers net))
    (List.length (Mlp.layers restored))

let test_checkpoint_roundtrip_file () =
  let net = Mlp.critic ~rng:(rng ()) ~state_dim:3 ~action_dim:2 ~hidden:4 in
  let path = Filename.temp_file "canopy" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save net path;
      let restored = Checkpoint.load path in
      let x = [| 1.; -1.; 0.5; 0.2; -0.3 |] in
      check_float "same output" (Mlp.forward net x).(0)
        (Mlp.forward restored x).(0))

let test_checkpoint_preserves_running_stats () =
  let net =
    Mlp.create ~in_dim:2
      [ Layer.dense ~rng:(rng ()) ~in_dim:2 ~out_dim:2;
        Layer.batch_norm ~dim:2 () ]
  in
  (* push some batches through to move the running statistics *)
  ignore (Mlp.forward_train net (Mat.of_arrays [| [| 5.; 1. |]; [| 7.; -1. |] |]));
  let restored = Checkpoint.of_string (Checkpoint.to_string net) in
  let x = [| 2.; 3. |] in
  Alcotest.(check (array (float 1e-12)))
    "eval path identical" (Mlp.forward net x) (Mlp.forward restored x)

let test_checkpoint_rejects_garbage () =
  Alcotest.check_raises "bad magic" (Failure "Checkpoint: bad magic")
    (fun () -> ignore (Checkpoint.of_string "not a checkpoint\n"))

let expect_checkpoint_failure what s =
  match Checkpoint.of_string s with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail (what ^ ": corrupt checkpoint was accepted")

let test_checkpoint_rejects_truncated () =
  let full = Checkpoint.to_string (Mlp.actor ~rng:(rng ()) ~in_dim:4 ~hidden:6 ~out_dim:1) in
  (* Cut mid-file (half) and mid-last-line (all but 3 bytes). *)
  expect_checkpoint_failure "half"
    (String.sub full 0 (String.length full / 2));
  expect_checkpoint_failure "tail clipped"
    (String.sub full 0 (String.length full - 3))

let test_checkpoint_rejects_corrupted_field () =
  let full = Checkpoint.to_string (Mlp.critic ~rng:(rng ()) ~state_dim:2 ~action_dim:1 ~hidden:3) in
  (* Smash a float into a non-numeric token. *)
  let corrupted =
    match String.index_opt full 'x' with
    | Some i ->
        String.sub full 0 i ^ "q" ^ String.sub full (i + 1) (String.length full - i - 1)
    | None -> Alcotest.fail "expected %h floats in checkpoint"
  in
  expect_checkpoint_failure "corrupted float" corrupted

let test_checkpoint_rejects_trailing_garbage () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:3 ~hidden:4 ~out_dim:1 in
  let full = Checkpoint.to_string net in
  (* Trailing whitespace/newlines are fine... *)
  (match Checkpoint.of_string (full ^ "\n\n") with
  | _ -> ());
  (* ...but content after the declared layer count is not: a concatenated
     or partially overwritten file must fail loudly. *)
  expect_checkpoint_failure "appended second checkpoint" (full ^ full);
  expect_checkpoint_failure "appended junk line" (full ^ "leftover junk\n")

(* ------------------------------------------------------------------ *)
(* Optimizer snapshot / restore and Mlp.assign *)

let net_bits net =
  List.concat_map
    (fun (v, _) -> Array.to_list (Array.map Int64.bits_of_float v))
    (Mlp.params net)

let test_optimizer_snapshot_restore () =
  (* Two identical nets and optimizers; snapshot one mid-training, let it
     run ahead, restore, and re-run: trajectories must match bit-for-bit. *)
  let mk () = Mlp.actor ~rng:(Canopy_util.Prng.create 7) ~in_dim:2 ~hidden:4 ~out_dim:1 in
  let step net opt i =
    Mlp.zero_grad net;
    let x = Mat.of_arrays [| [| 0.3 *. float_of_int i; -0.1 |]; [| 0.9; 0.4 |] |] in
    let preds, tape = Mlp.forward_train net x in
    let dout = Mat.init ~rows:2 ~cols:1 (fun r _ -> Mat.get preds r 0 -. 0.5) in
    ignore (Mlp.backward ~input_grad:false net tape dout);
    Optimizer.step opt (Mlp.params net)
  in
  let net = mk () in
  let opt = Optimizer.adam ~lr:1e-2 () in
  for i = 1 to 5 do step net opt i done;
  let net_snap = Mlp.copy net in
  let opt_snap = Optimizer.snapshot opt in
  for i = 6 to 10 do step net opt i done;
  let ahead = net_bits net in
  (* Rewind and replay. *)
  Mlp.assign ~src:net_snap ~dst:net;
  Optimizer.restore opt opt_snap;
  for i = 6 to 10 do step net opt i done;
  check_bool "replay is bit-identical" true (net_bits net = ahead)

let test_optimizer_snapshot_is_deep () =
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:2 ~hidden:3 ~out_dim:1 in
  let opt = Optimizer.adam ~lr:1e-2 () in
  Mlp.zero_grad net;
  let preds, tape = Mlp.forward_train net (Mat.of_arrays [| [| 1.; 2. |]; [| 0.5; 1.5 |] |]) in
  ignore preds;
  ignore (Mlp.backward ~input_grad:false net tape (Mat.init ~rows:2 ~cols:1 (fun _ _ -> 0.1)));
  Optimizer.step opt (Mlp.params net);
  let snap = Optimizer.snapshot opt in
  (match snap.Optimizer.moments with
  | (_, m, _) :: _ ->
      let before = m.(0) in
      m.(0) <- 1e9;
      let snap2 = Optimizer.snapshot opt in
      (match snap2.Optimizer.moments with
      | (_, m2, _) :: _ ->
          check_bool "mutating a snapshot does not touch the optimizer" true
            (m2.(0) = before)
      | [] -> Alcotest.fail "no slots")
  | [] -> Alcotest.fail "no slots after an Adam step")

let test_assign_recovers_nan () =
  (* The rollback path must overwrite weights that are already NaN; a
     Polyak update with tau=1 would propagate them instead. *)
  let src = Mlp.actor ~rng:(Canopy_util.Prng.create 3) ~in_dim:2 ~hidden:3 ~out_dim:1 in
  let dst = Mlp.copy src in
  (match Mlp.params dst with
  | (v, _) :: _ -> v.(0) <- Float.nan
  | [] -> Alcotest.fail "no params");
  let gen = Mlp.generation dst in
  Mlp.assign ~src ~dst;
  check_bool "NaN overwritten" true (net_bits dst = net_bits src);
  Alcotest.(check int) "assign bumps generation" (gen + 1) (Mlp.generation dst);
  let x = [| 0.25; -0.75 |] in
  check_float "same output after assign" (Mlp.forward src x).(0)
    (Mlp.forward dst x).(0)

let test_generation_counter () =
  (* The parameter-generation counter keys the verifier-IR cache: any
     mutation path must bump it, and reads must not. *)
  let net = Mlp.actor ~rng:(rng ()) ~in_dim:3 ~hidden:4 ~out_dim:1 in
  Alcotest.(check int) "fresh net" 0 (Mlp.generation net);
  ignore (Mlp.forward net [| 0.1; 0.2; 0.3 |]);
  Alcotest.(check int) "eval forward does not bump" 0 (Mlp.generation net);
  ignore (Mlp.forward_train net (Mat.of_arrays [| [| 0.1; 0.2; 0.3 |] |]));
  Alcotest.(check int) "forward_train bumps" 1 (Mlp.generation net);
  ignore (Mlp.forward_train_rows net [| [| 0.1; 0.2; 0.3 |] |]);
  Alcotest.(check int) "forward_train_rows bumps" 2 (Mlp.generation net);
  Mlp.bump_generation net;
  Alcotest.(check int) "explicit bump" 3 (Mlp.generation net)

let test_generation_soft_update_bumps_dst () =
  let src = Mlp.actor ~rng:(rng ()) ~in_dim:3 ~hidden:4 ~out_dim:1 in
  let dst = Mlp.copy src in
  let src_gen = Mlp.generation src and dst_gen = Mlp.generation dst in
  Mlp.soft_update ~tau:0.5 ~src ~dst;
  Alcotest.(check int) "src untouched" src_gen (Mlp.generation src);
  Alcotest.(check int) "dst bumped" (dst_gen + 1) (Mlp.generation dst)

let suite =
  [
    ("dense forward", `Quick, test_dense_forward);
    ("leaky relu forward", `Quick, test_leaky_relu_forward);
    ("relu/tanh forward", `Quick, test_relu_tanh_forward);
    ("batchnorm identity at init", `Quick, test_batch_norm_identity_init);
    ("batchnorm normalizes batch", `Quick, test_batch_norm_normalizes_batch);
    ("batchnorm running stats", `Quick, test_batch_norm_updates_running_stats);
    ("layer out_dim", `Quick, test_out_dim);
    ("gradient: dense+tanh", `Quick, test_grad_dense_tanh);
    ("gradient: leaky relu", `Quick, test_grad_leaky_relu);
    ("gradient: relu", `Quick, test_grad_relu);
    ("gradient: batchnorm eval path", `Quick, test_grad_batchnorm_eval_path);
    ("gradient: batchnorm batch stats", `Quick, test_grad_batchnorm_batch_stats);
    ("input gradient", `Quick, test_backward_input_gradient);
    ("batched = rows: actor", `Quick, test_batched_matches_rows_actor);
    ("batched = rows: critic", `Quick, test_batched_matches_rows_critic);
    ("batched = rows: relu+bn stack", `Quick, test_batched_matches_rows_relu_stack);
    ("forward_batch = forward1", `Quick, test_forward_batch_matches_forward1);
    ( "forward_eval_into = forward (bits)",
      `Quick,
      test_forward_eval_into_matches_forward );
    ( "forward_eval_into warm = cold",
      `Quick,
      test_forward_eval_into_warm_equals_cold );
    ( "forward_eval wrapper = into",
      `Quick,
      test_forward_eval_wrapper_matches_into );
    ( "forward_eval_into shape checks",
      `Quick,
      test_forward_eval_into_shape_checks );
    ("mlp actor shape", `Quick, test_mlp_actor_shape);
    ("mlp critic shape", `Quick, test_mlp_critic_shape);
    ("mlp bad shape rejected", `Quick, test_mlp_bad_shape_rejected);
    ("mlp copy independent", `Quick, test_mlp_copy_independent);
    ("soft update tau=1", `Quick, test_soft_update);
    ("soft update partial", `Quick, test_soft_update_partial);
    ("param count", `Quick, test_param_count);
    ("sgd converges", `Quick, test_sgd_converges);
    ("sgd momentum converges", `Quick, test_sgd_momentum_converges);
    ("adam converges", `Quick, test_adam_converges);
    ("gradient clipping", `Quick, test_clip_gradients);
    ("gradient clip noop", `Quick, test_clip_noop_below_norm);
    ("set_lr", `Quick, test_set_lr);
    ("mlp regression learns", `Quick, test_mlp_regression_learns);
    ("checkpoint string roundtrip", `Quick, test_checkpoint_roundtrip_string);
    ("checkpoint file roundtrip", `Quick, test_checkpoint_roundtrip_file);
    ("checkpoint running stats", `Quick, test_checkpoint_preserves_running_stats);
    ("checkpoint rejects garbage", `Quick, test_checkpoint_rejects_garbage);
    ("checkpoint rejects truncated", `Quick, test_checkpoint_rejects_truncated);
    ("checkpoint rejects corrupted field", `Quick,
      test_checkpoint_rejects_corrupted_field);
    ("checkpoint rejects trailing garbage", `Quick,
      test_checkpoint_rejects_trailing_garbage);
    ("optimizer snapshot/restore replay", `Quick,
      test_optimizer_snapshot_restore);
    ("optimizer snapshot is deep", `Quick, test_optimizer_snapshot_is_deep);
    ("assign recovers NaN dst", `Quick, test_assign_recovers_nan);
    ("generation counter", `Quick, test_generation_counter);
    ("generation: soft update bumps dst", `Quick,
      test_generation_soft_update_bumps_dst);
  ]
