(* Tests for canopy_analysis: lint rule positives/negatives on fixture
   snippets, baseline suppression, the soundness audit (which must be
   clean over the real transformers), and netcheck rejections. *)

open Canopy_analysis
module Prng = Canopy_util.Prng
module Vec = Canopy_tensor.Vec
module Layer = Canopy_nn.Layer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rules_of diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.rule) diags)

let lint s = Lint.check_source ~path:"fixture.ml" s

(* ------------------------------------------------------------------ *)
(* Lint: positives *)

let test_lint_polymorphic_compare () =
  let diags = lint "let sorted = Array.sort compare xs\n" in
  Alcotest.(check (list string)) "flagged" [ "polymorphic-compare" ]
    (rules_of diags);
  check_int "line" 1 (List.hd diags).Diagnostic.line;
  let diags = lint "let c = Stdlib.compare a b\n" in
  Alcotest.(check (list string)) "Stdlib.compare flagged"
    [ "polymorphic-compare" ] (rules_of diags)

let test_lint_float_min_max () =
  let fixture = "let lo = min 0.5 x\nlet m = Array.fold_left max xs.(0) xs\n" in
  let diags = lint fixture in
  check_int "both lines flagged" 2 (List.length diags);
  Alcotest.(check (list string)) "rule" [ "float-min-max" ] (rules_of diags)

let test_lint_int_of_float () =
  let diags = lint "let n = int_of_float (x /. step)\n" in
  Alcotest.(check (list string)) "flagged" [ "int-of-float" ] (rules_of diags)

let test_lint_obj_magic () =
  let diags = lint "let y = Obj.magic x\n" in
  Alcotest.(check (list string)) "flagged" [ "obj-magic" ] (rules_of diags)

let test_lint_catch_all () =
  let diags = lint "let v = try f x with _ -> 0\n" in
  Alcotest.(check (list string)) "flagged" [ "catch-all-exn" ] (rules_of diags)

let test_lint_array_make_alias () =
  let diags = lint "let dout = Array.make n [| -1. /. float_of_int n |]\n" in
  Alcotest.(check (list string))
    "array literal" [ "array-make-alias" ] (rules_of diags);
  let diags = lint "let grid = Array.make rows (Array.make cols 0.)\n" in
  Alcotest.(check (list string))
    "nested make" [ "array-make-alias" ] (rules_of diags);
  let diags = lint "let m = Array.make (rows * cols) [| 0. |]\n" in
  Alcotest.(check (list string))
    "parenthesized count" [ "array-make-alias" ] (rules_of diags)

let test_lint_mlp_layer_walk () =
  let fixture = "let n = List.length (Mlp.layers net)\n" in
  let at path = rules_of (Lint.check_source ~path fixture) in
  let p parts = String.concat Filename.dir_sep parts in
  Alcotest.(check (list string)) "flagged outside lib/nn"
    [ "mlp-layer-walk" ]
    (at (p [ "lib"; "core"; "certify.ml" ]));
  Alcotest.(check (list string)) "flagged in bin"
    [ "mlp-layer-walk" ]
    (at (p [ "bin"; "check.ml" ]));
  Alcotest.(check (list string)) "exempt under lib/nn" []
    (at (p [ "lib"; "nn"; "mlp.ml" ]));
  Alcotest.(check (list string)) "exempt in the IR builder" []
    (at (p [ "lib"; "absint"; "anet.ml" ]))

let test_lint_non_atomic_write () =
  let fixture = "let oc = open_out path in\n" in
  let at path = rules_of (Lint.check_source ~path fixture) in
  let p parts = String.concat Filename.dir_sep parts in
  Alcotest.(check (list string)) "flagged in lib"
    [ "non-atomic-write" ]
    (at (p [ "lib"; "core"; "trainer.ml" ]));
  Alcotest.(check (list string)) "open_out_bin flagged too"
    [ "non-atomic-write" ]
    (rules_of
       (Lint.check_source
          ~path:(p [ "bin"; "train.ml" ])
          "let oc = open_out_bin path in\n"));
  Alcotest.(check (list string)) "exempt in the atomic writer itself" []
    (at (p [ "lib"; "util"; "atomic_file.ml" ]));
  Alcotest.(check (list string)) "waivable inline" []
    (rules_of
       (lint "let oc = open_out p (* lint-ignore: non-atomic-write *)\n"))

let test_lint_raw_domain_spawn () =
  let fixture = "let d = Domain.spawn (fun () -> work ())\n" in
  let at path = rules_of (Lint.check_source ~path fixture) in
  let p parts = String.concat Filename.dir_sep parts in
  Alcotest.(check (list string)) "flagged in lib"
    [ "raw-domain-spawn" ]
    (at (p [ "lib"; "core"; "trainer.ml" ]));
  Alcotest.(check (list string)) "Thread.create flagged too"
    [ "raw-domain-spawn" ]
    (rules_of
       (Lint.check_source
          ~path:(p [ "bin"; "train.ml" ])
          "let t = Thread.create run ()\n"));
  Alcotest.(check (list string)) "exempt in the pool itself" []
    (at (p [ "lib"; "util"; "pool.ml" ]));
  Alcotest.(check (list string)) "waivable inline" []
    (rules_of
       (lint "let d = Domain.spawn f (* lint-ignore: raw-domain-spawn *)\n"))

let test_lint_array_make_scalar_clean () =
  let fixture =
    "let a = Array.make n 0.\n\
     let b = Array.make (capacity t) None\n\
     let c = Array.make n first\n\
     let d = Array.make_matrix rows cols 0.\n"
  in
  check_int "scalar/identity fills clean" 0 (List.length (lint fixture))

(* ------------------------------------------------------------------ *)
(* Lint: negatives *)

let test_lint_typed_comparators_clean () =
  let fixture =
    "let () = Array.sort Float.compare xs\n\
     let c = Int.compare a b\n\
     let lo = Float.min 0.5 x\n\
     let hi = List.fold_left Float.max xs.(0) xs\n\
     let n = List.fold_left max 1 timestamps\n\
     let cmp = Interval.compare_width a b\n"
  in
  check_int "clean" 0 (List.length (lint fixture))

let test_lint_ignores_comments_and_strings () =
  let fixture =
    "(* Array.sort compare is bad; int_of_float too *)\n\
     let doc = \"use Obj.magic with _ -> never\"\n\
     (* nested (* with _ -> *) still a comment *)\n\
     let s = \"escaped \\\" quote then compare\"\n"
  in
  check_int "clean" 0 (List.length (lint fixture))

let test_lint_quoted_strings_clean () =
  (* Rule keywords inside quoted-string literals — which the pre-lexer
     line scanner could not skip — must never fire. *)
  let fixture =
    "let doc = {|Array.sort compare xs; Obj.magic; int_of_float|}\n\
     let tagged = {err|try f x with _ -> min 0.5 y|err}\n\
     let multi = {|line one int_of_float\n\
     line two Obj.magic|}\n"
  in
  check_int "quoted strings clean" 0 (List.length (lint fixture))

let test_lint_every_rule_keyword_in_text_clean () =
  (* One fixture per rule with its trigger inside a comment and inside
     a string: the token-stripped scanner must report nothing. *)
  let triggers =
    [
      "Array.sort compare xs";
      "min 0.5 x";
      "int_of_float x";
      "Obj.magic x";
      "try f x with _ -> 0";
      "Array.make n [| 0. |]";
      "Mlp.layers net";
      "Domain.spawn f";
    ]
  in
  List.iter
    (fun trig ->
      let fixture =
        Printf.sprintf "(* %s *)\nlet s = \"%s\"\n" trig
          (String.concat "\\\"" (String.split_on_char '"' trig))
      in
      check_int
        (Printf.sprintf "clean for %S in text" trig)
        0
        (List.length (lint fixture)))
    triggers

let test_lint_inline_waiver () =
  let fixture =
    "let a = Array.sort compare xs (* lint-ignore: polymorphic-compare *)\n\
     let b = int_of_float x (* lint-ignore *)\n\
     let c = int_of_float y (* lint-ignore: polymorphic-compare *)\n"
  in
  let diags = lint fixture in
  (* line 3's waiver names a different rule, so int-of-float survives *)
  check_int "only unwaived finding" 1 (List.length diags);
  check_int "line 3" 3 (List.hd diags).Diagnostic.line

let test_lint_field_decls_not_flagged () =
  let fixture = "type summary = {\n  min : float;\n  max : float;\n}\n" in
  check_int "record fields clean" 0 (List.length (lint fixture))

(* ------------------------------------------------------------------ *)
(* Lint: missing-mli (needs real files) *)

let test_lint_missing_mli () =
  let root = Filename.temp_file "canopy_lint" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  Sys.mkdir (Filename.concat root "bin") 0o755;
  let write rel contents =
    let oc = open_out (Filename.concat root rel) in
    output_string oc contents;
    close_out oc
  in
  write "lib/good.ml" "let x = 1\n";
  write "lib/good.mli" "val x : int\n";
  write "lib/bad.ml" "let y = 2\n";
  write "bin/main.ml" "let () = ()\n";
  let files = Sources.find_files ~root ~dirs:[ "lib"; "bin" ] ~ext:".ml" in
  let diags = Lint.check_missing_mli ~root files in
  check_int "one finding" 1 (List.length diags);
  let d = List.hd diags in
  Alcotest.(check string) "rule" "missing-mli" d.Diagnostic.rule;
  Alcotest.(check string) "file" (Filename.concat "lib" "bad.ml") d.file

(* ------------------------------------------------------------------ *)
(* Suppression baseline *)

let test_baseline_roundtrip () =
  let diags =
    lint "let a = int_of_float x\nlet b = Array.sort compare xs\n"
  in
  check_int "two findings" 2 (List.length diags);
  let path = Filename.temp_file "canopy_baseline" ".txt" in
  Suppress.save path diags;
  let fresh, suppressed = Suppress.filter (Suppress.load path) diags in
  check_int "all suppressed" 0 (List.length fresh);
  check_int "count" 2 suppressed;
  (* a new finding on different source text is not suppressed *)
  let other = lint "let c = int_of_float z\n" in
  let fresh, _ = Suppress.filter (Suppress.load path) other in
  check_int "different text survives" 1 (List.length fresh);
  Sys.remove path

let test_baseline_survives_renumbering () =
  let v1 = lint "let a = int_of_float x\n" in
  let path = Filename.temp_file "canopy_baseline" ".txt" in
  Suppress.save path v1;
  (* same source line, shifted down two lines *)
  let v2 = lint "let pad = 0\nlet pad2 = 1\nlet a = int_of_float x\n" in
  let fresh, suppressed = Suppress.filter (Suppress.load path) v2 in
  check_int "still suppressed" 0 (List.length fresh);
  check_int "count" 1 suppressed;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Soundness audit *)

let test_audit_clean_10k () =
  let result = Soundcheck.run ~seed:2026 ~samples:10_000 () in
  check_int "samples" 10_000 result.samples;
  List.iter
    (fun v -> Alcotest.failf "%s" (Format.asprintf "%a" Soundcheck.pp_violation v))
    result.violations;
  check_int "violations" 0 result.violation_count;
  (* every transformer actually received samples *)
  List.iter
    (fun (op, n) -> if n = 0 then Alcotest.failf "op %s never sampled" op)
    result.per_op

let test_audit_determinism () =
  let a = Soundcheck.run ~seed:7 ~samples:500 () in
  let b = Soundcheck.run ~seed:7 ~samples:500 () in
  check_int "same violation count" a.violation_count b.violation_count;
  check_int "violations (expected clean)" 0 a.violation_count

let test_audit_covers_anet_ops () =
  (* The verifier-IR transfer functions are part of the audited surface. *)
  List.iter
    (fun op ->
      check_bool (op ^ " registered") true (List.mem op Soundcheck.op_names))
    [ "anet.propagate"; "anet.ibp.batched"; "anet.zonotope" ]

(* ------------------------------------------------------------------ *)
(* Netcheck *)

let test_netcheck_accepts_fresh_actor () =
  let rng = Prng.create 11 in
  let net = Canopy_nn.Mlp.actor ~rng ~in_dim:10 ~hidden:16 ~out_dim:1 in
  check_int "clean" 0 (List.length (Netcheck.check_mlp net))

let test_netcheck_rejects_dim_mismatch () =
  let rng = Prng.create 12 in
  (* dense expects 8 inputs but the stack feeds it 4 *)
  let layers =
    [ Layer.dense ~rng ~in_dim:8 ~out_dim:3; Layer.relu ]
  in
  let diags = Netcheck.check_layers ~in_dim:4 layers in
  check_bool "dimension mismatch reported" true
    (List.exists (fun d -> d.Diagnostic.rule = "net-dim-mismatch") diags)

let test_netcheck_rejects_nonfinite_weight () =
  let rng = Prng.create 13 in
  let net = Canopy_nn.Mlp.actor ~rng ~in_dim:4 ~hidden:8 ~out_dim:1 in
  (match Canopy_nn.Mlp.layers net with
  | Layer.Dense d :: _ -> (Canopy_tensor.Mat.raw d.w).(0) <- Float.nan
  | _ -> Alcotest.fail "expected dense first");
  let diags = Netcheck.check_mlp net in
  check_bool "non-finite reported" true
    (List.exists (fun d -> d.Diagnostic.rule = "net-nonfinite-param") diags)

let test_netcheck_rejects_uninitialized_bn () =
  let bn =
    match Layer.batch_norm ~dim:4 () with
    | Layer.Batch_norm bn -> bn
    | _ -> assert false
  in
  Vec.fill bn.running_var 0.;
  let diags = Netcheck.check_layers ~in_dim:4 [ Layer.Batch_norm bn ] in
  check_bool "uninitialized stats reported" true
    (List.exists (fun d -> d.Diagnostic.rule = "net-bn-uninitialized") diags)

let test_netcheck_assert_valid_raises () =
  let rng = Prng.create 14 in
  let net = Canopy_nn.Mlp.actor ~rng ~in_dim:4 ~hidden:8 ~out_dim:1 in
  (match Canopy_nn.Mlp.layers net with
  | Layer.Dense d :: _ -> d.b.(0) <- Float.infinity
  | _ -> Alcotest.fail "expected dense first");
  check_bool "raises" true
    (try
       Netcheck.assert_valid ~what:"poisoned" net;
       false
     with Invalid_argument _ -> true)

let test_netcheck_checkpoint_roundtrip () =
  let rng = Prng.create 15 in
  let net = Canopy_nn.Mlp.actor ~rng ~in_dim:5 ~hidden:8 ~out_dim:1 in
  let path = Filename.temp_file "canopy_netcheck" ".ckpt" in
  Canopy_nn.Checkpoint.save net path;
  (match Netcheck.check_checkpoint path with
  | Ok [] -> ()
  | Ok diags ->
      Alcotest.failf "unexpected findings: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Diagnostic.pp) diags))
  | Error msg -> Alcotest.failf "unexpected error: %s" msg);
  (* corrupt the checkpoint: netcheck must reject, not crash *)
  let oc = open_out path in
  output_string oc "canopy-mlp v1\nin_dim 5\nlayers 1\ndense 2 5\n1 2 3\n";
  close_out oc;
  (match Netcheck.check_checkpoint path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed checkpoint accepted");
  Sys.remove path

let suite =
  [
    ("lint: polymorphic compare", `Quick, test_lint_polymorphic_compare);
    ("lint: float min/max", `Quick, test_lint_float_min_max);
    ("lint: int_of_float", `Quick, test_lint_int_of_float);
    ("lint: Obj.magic", `Quick, test_lint_obj_magic);
    ("lint: catch-all handler", `Quick, test_lint_catch_all);
    ("lint: Array.make aliasing", `Quick, test_lint_array_make_alias);
    ("lint: Mlp.layers walk", `Quick, test_lint_mlp_layer_walk);
    ("lint: non-atomic write", `Quick, test_lint_non_atomic_write);
    ("lint: raw domain spawn", `Quick, test_lint_raw_domain_spawn);
    ("lint: Array.make scalar clean", `Quick, test_lint_array_make_scalar_clean);
    ("lint: typed comparators clean", `Quick, test_lint_typed_comparators_clean);
    ("lint: comments/strings ignored", `Quick,
     test_lint_ignores_comments_and_strings);
    ("lint: quoted strings clean", `Quick, test_lint_quoted_strings_clean);
    ("lint: rule keywords in text clean", `Quick,
     test_lint_every_rule_keyword_in_text_clean);
    ("lint: inline waiver", `Quick, test_lint_inline_waiver);
    ("lint: record fields clean", `Quick, test_lint_field_decls_not_flagged);
    ("lint: missing mli", `Quick, test_lint_missing_mli);
    ("baseline roundtrip", `Quick, test_baseline_roundtrip);
    ("baseline survives renumbering", `Quick,
     test_baseline_survives_renumbering);
    ("audit: clean over 10k points", `Slow, test_audit_clean_10k);
    ("audit: deterministic", `Quick, test_audit_determinism);
    ("audit: anet ops registered", `Quick, test_audit_covers_anet_ops);
    ("netcheck: fresh actor ok", `Quick, test_netcheck_accepts_fresh_actor);
    ("netcheck: dim mismatch", `Quick, test_netcheck_rejects_dim_mismatch);
    ("netcheck: non-finite weight", `Quick,
     test_netcheck_rejects_nonfinite_weight);
    ("netcheck: uninitialized batch-norm", `Quick,
     test_netcheck_rejects_uninitialized_bn);
    ("netcheck: assert_valid raises", `Quick,
     test_netcheck_assert_valid_raises);
    ("netcheck: checkpoint roundtrip", `Quick,
     test_netcheck_checkpoint_roundtrip);
  ]
